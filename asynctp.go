// Package asynctp is an asynchronous transaction processing library: a
// from-scratch reproduction of Hseush & Pu, "A Practical Technique for
// Asynchronous Transaction Processing" (ICDCS 1995).
//
// The library combines two techniques that relax the synchronous nature
// of serializable OLTP:
//
//   - Epsilon serializability (ESR): transactions carry an ε-spec
//     bounding how much inconsistency they may import or export;
//     divergence control (a 2PL variant) grants bounded read/write
//     conflicts instead of blocking.
//   - Transaction chopping (Shasha et al.): an off-line restructuring
//     splitting transactions into pieces that commit independently.
//
// And it implements the paper's three combined methods:
//
//	Method 1 — SR-chopping under divergence control (ESR¹)
//	Method 2 — ESR-chopping under concurrency control (ESR²)
//	Method 3 — ESR-chopping under divergence control (ESR³)
//
// # Declaring transactions
//
// Transactions are declared programs — ordered operation lists over keys
// with declared write bounds, so the chopper can see every access and
// every rollback statement:
//
//	xfer := asynctp.MustProgram("transfer",
//		asynctp.AddOp("checking", -100),
//		asynctp.AddOp("savings", +100),
//	).WithSpec(asynctp.SpecOf(500)) // ε = $5.00
//
// # Running a job stream
//
// A Runner prepares the chopping for a declared stream (program types
// plus instance counts) and executes submitted instances under the
// chosen method:
//
//	r, err := asynctp.NewRunner(asynctp.Config{
//		Method:   asynctp.Method3ESRChopDC,
//		Store:    asynctp.NewStoreFrom(initial),
//		Programs: []*asynctp.Program{xfer, audit},
//		Counts:   []int{100, 10},
//	})
//	res, err := r.Submit(ctx, 0)
//
// # Distributed execution
//
// The site package's Cluster runs transactions across simulated sites
// either under two-phase commit or as chopped pieces flowing through
// recoverable queues (the paper's Section 4), exposed here as
// NewCluster/ClusterConfig.
package asynctp

import (
	"asynctp/internal/chop"
	"asynctp/internal/core"
	"asynctp/internal/history"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Value, Fuzz, Limit and Spec form the metric value model.
type (
	// Value is a point in the metric value space (integer cents).
	Value = metric.Value
	// Fuzz is an amount of inconsistency.
	Fuzz = metric.Fuzz
	// Limit is an inconsistency limit, possibly infinite.
	Limit = metric.Limit
	// Spec is a full ε-spec (import and export limits).
	Spec = metric.Spec
)

// Key names a data item.
type Key = storage.Key

// Store is the in-memory journaled key-value store.
type Store = storage.Store

// Program, Op and friends declare transactions.
type (
	// Program is a declared transaction.
	Program = txn.Program
	// Op is one operation of a program.
	Op = txn.Op
)

// Runner types.
type (
	// Config configures a Runner.
	Config = core.Config
	// Runner executes a declared job stream under one method.
	Runner = core.Runner
	// InstanceResult is one submitted instance's outcome.
	InstanceResult = core.InstanceResult
	// Method selects the off-line × on-line combination.
	Method = core.Method
	// Distribution selects the ε-distribution policy.
	Distribution = core.Distribution
	// EngineKind selects the on-line engine family.
	EngineKind = core.EngineKind
)

// Engine kinds (locking is the default).
const (
	EngineLocking    = core.EngineLocking
	EngineOptimistic = core.EngineOptimistic
	EngineTimestamp  = core.EngineTimestamp
	EngineRepair     = core.EngineRepair
	EngineRepairSkip = core.EngineRepairSkip
)

// Methods (Table 1 plus baselines).
const (
	// BaselineSRCC is classic serializable OLTP.
	BaselineSRCC = core.BaselineSRCC
	// BaselineESRDC is plain ESR without chopping.
	BaselineESRDC = core.BaselineESRDC
	// SRChopCC is Shasha's chopping under concurrency control.
	SRChopCC = core.SRChopCC
	// Method1SRChopDC is ESR¹.
	Method1SRChopDC = core.Method1SRChopDC
	// Method2ESRChopCC is ESR².
	Method2ESRChopCC = core.Method2ESRChopCC
	// Method3ESRChopDC is ESR³.
	Method3ESRChopDC = core.Method3ESRChopDC
)

// Distribution policies.
const (
	// Static splits ε evenly over restricted pieces off-line.
	Static = core.Static
	// Dynamic propagates leftover limits at runtime (Figure 2).
	Dynamic = core.Dynamic
	// Naive splits over all pieces (ablation baseline).
	Naive = core.Naive
	// Proportional splits by conflict exposure.
	Proportional = core.Proportional
)

// Chopping analysis types.
type (
	// Chopped is one program with a chosen partition.
	Chopped = chop.Chopped
	// Stream is a declared job stream with instance counts.
	Stream = chop.Stream
	// StreamItem is one program type and its count.
	StreamItem = chop.StreamItem
	// StreamAnalysis is the multiplicity-aware chopping analysis.
	StreamAnalysis = chop.StreamAnalysis
)

// History checking.
type (
	// HistoryRecorder records histories for serializability checking.
	HistoryRecorder = history.Recorder
	// HistoryGroup identifies an original transaction when checking a
	// chopped execution.
	HistoryGroup = history.Group
)

// Distributed execution.
type (
	// SiteID names a simulated site.
	SiteID = simnet.SiteID
	// ClusterConfig configures a distributed cluster.
	ClusterConfig = site.Config
	// Cluster is a set of simulated sites.
	Cluster = site.Cluster
	// ClusterResult is one distributed submission's outcome.
	ClusterResult = site.Result
	// Strategy selects 2PC vs chopped recoverable queues.
	Strategy = site.Strategy
)

// Distributed strategies.
const (
	// TwoPhaseCommit runs distributed transactions under blocking 2PC.
	TwoPhaseCommit = site.TwoPhaseCommit
	// ChoppedQueues chops at site boundaries with recoverable queues.
	ChoppedQueues = site.ChoppedQueues
)

// Program construction.
var (
	// NewProgram builds a validated program.
	NewProgram = txn.NewProgram
	// MustProgram is NewProgram that panics on error.
	MustProgram = txn.MustProgram
	// ReadOp reads a key.
	ReadOp = txn.ReadOp
	// AddOp adds a delta (commutes with other adds; bound = |delta|).
	AddOp = txn.AddOp
	// SetOp assigns a value (unbounded delta).
	SetOp = txn.SetOp
	// TransformOp writes f(old) with a declared bound.
	TransformOp = txn.TransformOp
	// WithAbortIf attaches a rollback predicate to an op.
	WithAbortIf = txn.WithAbortIf
)

// Limits and specs.
var (
	// LimitOf returns a finite limit.
	LimitOf = metric.LimitOf
	// SpecOf returns a Spec with the same bound on both sides.
	SpecOf = metric.SpecOf
	// Distance is the metric-space distance.
	Distance = metric.Distance
)

// Infinite is the unbounded limit; Strict and Unbounded are the extreme
// ε-specs.
var (
	Infinite  = metric.Infinite
	Strict    = metric.Strict
	Unbounded = metric.Unbounded
)

// NewStore returns an empty store; NewStoreFrom seeds one.
var (
	NewStore     = storage.New
	NewStoreFrom = storage.NewFrom
)

// NewRunner prepares a chopping for the configured job stream and builds
// the execution stack.
var NewRunner = core.NewRunner

// NewCluster builds and starts a distributed cluster.
var NewCluster = site.NewCluster

// Chopping entry points.
var (
	// Whole returns a program unchopped.
	Whole = chop.Whole
	// Finest returns the finest rollback-safe chopping.
	Finest = chop.Finest
	// FromCuts builds a chopping with explicit boundaries.
	FromCuts = chop.FromCuts
	// StreamOf builds a Stream with count 1 per program.
	StreamOf = chop.StreamOf
	// AnalyzeStream analyzes given choppings against a stream.
	AnalyzeStream = chop.AnalyzeStream
	// FindSRStream computes an SR-chopping for a stream.
	FindSRStream = chop.FindSRStream
	// FindESRStream computes an ESR-chopping for a stream.
	FindESRStream = chop.FindESRStream
)
