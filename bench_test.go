// Benchmark harness: one bench per paper table/figure plus the
// micro-benchmarks behind them. The macro benches (Table1, Figure2, E1,
// E2) regenerate the corresponding experiment tables; run them with
// -benchtime=1x for a single regeneration, or let the framework repeat
// them for stable timings. EXPERIMENTS.md records the shape comparison
// against the paper.
package asynctp_test

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"asynctp"
	"asynctp/internal/chop"
	"asynctp/internal/core"
	"asynctp/internal/experiments"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
	"asynctp/internal/workload"
)

// ---------------------------------------------------------------------
// T1 — Table 1 (macro): regenerate the correctness matrix.
// ---------------------------------------------------------------------

func BenchmarkTable1Matrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table1(42)
		if err != nil {
			b.Fatal(err)
		}
		if strings.Contains(rep.Table.String(), "VIOLATION") {
			b.Fatal("correctness violation in Table 1")
		}
	}
}

// ---------------------------------------------------------------------
// F1/F3 — chopping analysis on the paper's figures (micro).
// ---------------------------------------------------------------------

func BenchmarkFigure1Analysis(b *testing.B) {
	set := chop.Figure1Example()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := chop.Analyze(set)
		if a.HasSCCycle {
			b.Fatal("unexpected SC-cycle")
		}
	}
}

func BenchmarkFigure3Analysis(b *testing.B) {
	set := chop.Figure3Example()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := chop.Analyze(set)
		if a.InterSibling[0].Cmp(metric.LimitOf(10)) != 0 {
			b.Fatal("wrong Z^is")
		}
	}
}

// ---------------------------------------------------------------------
// F2 — ε-distribution policies (macro): one full stream per iteration.
// ---------------------------------------------------------------------

func BenchmarkStaticVsDynamic(b *testing.B) {
	for _, dist := range []core.Distribution{core.Static, core.Dynamic, core.Proportional, core.Naive} {
		b.Run(dist.String(), func(b *testing.B) {
			w, err := workload.NewBank(workload.BankConfig{
				Branches: 1, AccountsPerBranch: 4,
				InitialBalance: 100000, TransferAmount: 100,
				TransferTypes: 2, TransferCount: 20, AuditCount: 10,
				Epsilon: 6000, IntraBranch: true, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := workload.RunnerFor(w, core.Method1SRChopDC, dist, false)
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(context.Background(), r, w, 8, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if res.MaxDeviation > 6000 {
					b.Fatalf("deviation %d > ε", res.MaxDeviation)
				}
				b.ReportMetric(res.ThroughputTPS, "txn/s")
				b.ReportMetric(float64(res.Retries), "retries")
			}
		})
	}
}

// ---------------------------------------------------------------------
// E1 — Section 5 method comparison: per-method throughput of the same
// contended stream.
// ---------------------------------------------------------------------

func BenchmarkMethods(b *testing.B) {
	for _, method := range core.Methods() {
		b.Run(method.String(), func(b *testing.B) {
			w, err := workload.NewBank(workload.BankConfig{
				Branches: 1, AccountsPerBranch: 4,
				InitialBalance: 1000000, TransferAmount: 100,
				TransferTypes: 2, TransferCount: 20, AuditCount: 10,
				Epsilon: 8000, IntraBranch: true, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := workload.ConfigFor(w, method, core.Static, false)
				cfg.OpDelay = 50 * time.Microsecond
				r, err := core.NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(context.Background(), r, w, 12, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.ThroughputTPS, "txn/s")
			}
		})
	}
}

// ---------------------------------------------------------------------
// E2 — Section 4 distributed comparison: one cross-branch transfer per
// iteration on a prepared cluster.
// ---------------------------------------------------------------------

func benchCluster(b *testing.B, strategy site.Strategy, oneWay time.Duration) *site.Cluster {
	b.Helper()
	c, err := site.NewCluster(site.Config{
		Strategy: strategy,
		Latency:  oneWay,
		Seed:     1,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 1 << 40},
			"LA": {"la:Y": 1 << 40},
		},
		RetransmitEvery: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	xfer := txn.MustProgram("xfer",
		txn.AddOp("ny:X", -100), txn.AddOp("la:Y", 100))
	if err := c.RegisterPrograms([]*txn.Program{xfer}); err != nil {
		b.Fatal(err)
	}
	return c
}

func BenchmarkDistributed2PCvsQueues(b *testing.B) {
	for _, oneWay := range []time.Duration{0, 5 * time.Millisecond} {
		for _, strategy := range []site.Strategy{site.TwoPhaseCommit, site.ChoppedQueues} {
			name := fmt.Sprintf("%s/oneway=%s", strategy, oneWay)
			b.Run(name, func(b *testing.B) {
				c := benchCluster(b, strategy, oneWay)
				ctx := context.Background()
				var sumInit time.Duration
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := c.Submit(ctx, 0)
					if err != nil {
						b.Fatal(err)
					}
					sumInit += res.Initiation
				}
				b.StopTimer()
				b.ReportMetric(float64(sumInit.Microseconds())/float64(b.N), "init-µs/txn")
			})
		}
	}
}

// ---------------------------------------------------------------------
// E3 — ε splitting: concurrent transfers and audits under distributed
// divergence control.
// ---------------------------------------------------------------------

func BenchmarkDistributedEpsilonSplit(b *testing.B) {
	c, err := site.NewCluster(site.Config{
		Strategy: site.ChoppedQueues,
		UseDC:    true,
		Seed:     1,
		Placement: func(k storage.Key) simnet.SiteID {
			if strings.HasPrefix(string(k), "ny:") {
				return "NY"
			}
			return "LA"
		},
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 1 << 40},
			"LA": {"la:Y": 1 << 40},
		},
		RetransmitEvery: 5 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	spec := metric.SpecOf(1000000)
	if err := c.RegisterPrograms([]*txn.Program{
		txn.MustProgram("xfer", txn.AddOp("ny:X", -400000), txn.AddOp("la:Y", 400000)).WithSpec(spec),
		txn.MustProgram("audit", txn.ReadOp("ny:X"), txn.ReadOp("la:Y")).WithSpec(spec),
	}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for j := 0; j < 2; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := c.Submit(ctx, 0); err != nil {
					b.Error(err)
				}
			}()
		}
		if _, err := c.Submit(ctx, 1); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}

// ---------------------------------------------------------------------
// E4 — hazard analysis cost (micro).
// ---------------------------------------------------------------------

func BenchmarkHazardDetection(b *testing.B) {
	set := chop.HazardExample()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := chop.Analyze(set)
		if len(a.UpdateUpdateViolations) == 0 {
			b.Fatal("hazard missed")
		}
	}
}

// ---------------------------------------------------------------------
// Algorithmic micro-benchmarks: the off-line phase itself.
// ---------------------------------------------------------------------

func BenchmarkFindESRStream(b *testing.B) {
	w, err := workload.NewBank(workload.BankConfig{
		Branches: 4, AccountsPerBranch: 8,
		InitialBalance: 100000, TransferAmount: 100,
		TransferTypes: 12, TransferCount: 25, AuditCount: 5,
		Epsilon: 100000, IntraBranch: true, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	stream := make(chop.Stream, len(w.Programs))
	for i, p := range w.Programs {
		stream[i] = chop.StreamItem{Program: p, Count: w.Counts[i]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chop.FindESRStream(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecutorTransfer(b *testing.B) {
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{"x": 1 << 40, "y": 0})
	r, err := asynctp.NewRunner(asynctp.Config{
		Method: asynctp.BaselineSRCC,
		Store:  store,
		Programs: []*asynctp.Program{
			asynctp.MustProgram("xfer", asynctp.AddOp("x", -1), asynctp.AddOp("y", 1)),
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Submit(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDivergenceControlAbsorb(b *testing.B) {
	// Steady-state fuzzy grants: an update holds X while queries read
	// through it.
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{"x": 1 << 40, "y": 0})
	r, err := asynctp.NewRunner(asynctp.Config{
		Method: asynctp.BaselineESRDC,
		Store:  store,
		Programs: []*asynctp.Program{
			asynctp.MustProgram("xfer",
				asynctp.AddOp("x", -1), asynctp.AddOp("y", 1)).WithSpec(asynctp.Unbounded),
			asynctp.MustProgram("audit",
				asynctp.ReadOp("x"), asynctp.ReadOp("y")).WithSpec(asynctp.Unbounded),
		},
		Counts: []int{1 << 20, 1 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := r.Submit(ctx, i%2); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// ---------------------------------------------------------------------
// E5 — the three divergence-control engine families on one workload.
// ---------------------------------------------------------------------

func BenchmarkEngines(b *testing.B) {
	for _, kind := range []core.EngineKind{core.EngineLocking, core.EngineOptimistic, core.EngineTimestamp} {
		b.Run(kind.String(), func(b *testing.B) {
			w, err := workload.NewBank(workload.BankConfig{
				Branches: 1, AccountsPerBranch: 4,
				InitialBalance: 1 << 30, TransferAmount: 100,
				TransferTypes: 2, TransferCount: 20, AuditCount: 10,
				Epsilon: 8000, IntraBranch: true, Seed: 7,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cfg := workload.ConfigFor(w, core.BaselineESRDC, core.Static, false)
				cfg.OpDelay = 50 * time.Microsecond
				cfg.Engine = kind
				r, err := core.NewRunner(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := workload.Run(context.Background(), r, w, 12, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if res.MaxDeviation > 8000 {
					b.Fatalf("deviation %d > ε", res.MaxDeviation)
				}
				b.ReportMetric(res.ThroughputTPS, "txn/s")
			}
		})
	}
}
