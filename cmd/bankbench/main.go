// Command bankbench regenerates the centralized experiments: Table 1,
// Figures 1–3, and the Section 5 method comparison (E1).
//
// Usage:
//
//	bankbench [-run t1,f1,f2,f3,e1] [-seed N] [-eps 1000,4000,16000]
//	          [-trace f] [-tracewall f] [-tracetext f]
//	          [-metrics addr] [-metricsdump f]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"asynctp/internal/experiments"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bankbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bankbench", flag.ContinueOnError)
	which := fs.String("run", "t1,f1,f2,f3,e1,e4,e5", "comma-separated experiment ids")
	seed := fs.Int64("seed", 42, "workload seed")
	epsArg := fs.String("eps", "1000,4000,16000", "ε sweep for e1 (comma-separated)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	prof := profiling.Register(fs)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "bankbench: profile:", perr)
		}
	}()
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}
	experiments.SetObsPlane(plane)
	defer func() {
		if plane != nil {
			for _, line := range plane.Summary() {
				fmt.Fprintln(os.Stderr, "obs:", line)
			}
		}
		if oerr := stopObs(); oerr != nil {
			fmt.Fprintln(os.Stderr, "bankbench: obs:", oerr)
		}
	}()
	var epsilons []metric.Fuzz
	for _, part := range strings.Split(*epsArg, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("bad ε %q: %w", part, err)
		}
		epsilons = append(epsilons, metric.Fuzz(v))
	}

	for _, id := range strings.Split(*which, ",") {
		var (
			rep *experiments.Report
			err error
		)
		switch strings.TrimSpace(id) {
		case "t1":
			rep, err = experiments.Table1(*seed)
		case "f1":
			rep, err = experiments.Figure1()
		case "f2":
			rep, err = experiments.Figure2Distribution(*seed)
		case "f3":
			rep, err = experiments.Figure3()
		case "e1":
			rep, err = experiments.MethodComparison(*seed, epsilons)
		case "e4":
			rep, err = experiments.UpdateUpdateHazard()
		case "e5":
			rep, err = experiments.EngineComparison(*seed)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *jsonOut {
			out, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(out)
		} else {
			fmt.Println(rep.String())
		}
	}
	return nil
}
