package main

import "testing"

func TestRunFastExperiments(t *testing.T) {
	// f1, f3 and e4 are pure analyses — instant.
	if err := run([]string{"-run", "f1,f3,e4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-eps", "abc", "-run", "f1"}); err == nil {
		t.Error("bad ε accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}
