// Command chaosbench runs the E7 chaos harness: bank-transfer chains
// under deterministic, seeded fault schedules (baseline, degraded,
// partition, crash-storm), comparing chopped recoverable queues against
// bounded-wait 2PC on the same timeline. Reported per scenario and
// strategy: settled-chain rate, 2PC timeout/presumed aborts,
// conservation of money, and the worst audit deviation against the
// in-flight ε bound.
//
// With -kill9 it runs E9 instead: child processes executing the chain
// workload over the disk driver are SIGKILLed at WAL crash points
// (mid-append, pre-fsync, after a torn write), restarted from their
// real files, and the surviving image is audited for conservation,
// exactly-once application, chain completeness, and the ε bound.
//
// Usage:
//
//	chaosbench [-scenarios baseline,degraded,partition,crash-storm]
//	           [-chains 16] [-amount 5] [-seed 42] [-stagger 10ms] [-json]
//	           [-driver mem|disk] [-dir path]
//	           [-kill9] [-kill9-cycles 3]
//	           [-trace f] [-tracewall f] [-tracetext f]
//	           [-metrics addr] [-metricsdump f]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asynctp/internal/experiments"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/profiling"
)

func main() {
	// A kill -9 workload child re-execs this binary with the child
	// environment set; it must not parse parent flags.
	if experiments.Kill9IsChild() {
		if err := experiments.Kill9Child(); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench (kill9 child):", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chaosbench", flag.ContinueOnError)
	scenArg := fs.String("scenarios", strings.Join(experiments.ChaosScenarios(), ","),
		"comma-separated chaos scenarios")
	chains := fs.Int("chains", 16, "transfer chains per scenario run")
	amount := fs.Int64("amount", 5, "per-chain transfer amount")
	seed := fs.Int64("seed", 42, "schedule + network seed (same seed, same storm)")
	stagger := fs.Duration("stagger", 10*time.Millisecond,
		"pacing between chain submissions")
	driverName := fs.String("driver", "mem", "storage driver: mem or disk")
	dir := fs.String("dir", "", "disk-driver root (default: a fresh temp dir)")
	kill9 := fs.Bool("kill9", false, "run the E9 kill -9 durability harness instead of E7")
	kill9Cycles := fs.Int("kill9-cycles", 3, "SIGKILL crash/restart cycles before verification")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	prof := profiling.Register(fs)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "chaosbench: profile:", perr)
		}
	}()
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}
	defer func() {
		if oerr := stopObs(); oerr != nil {
			fmt.Fprintln(os.Stderr, "chaosbench: obs:", oerr)
		}
	}()

	root := *dir
	if root == "" && (*kill9 || *driverName == "disk") {
		root, err = os.MkdirTemp("", "chaosbench-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(root)
	}

	var rep *experiments.Report
	if *kill9 {
		bin, err := os.Executable()
		if err != nil {
			return err
		}
		rep, err = experiments.RunKill9(experiments.Kill9Config{
			Bin:    bin,
			Dir:    root,
			Seed:   *seed,
			Chains: *chains,
			Amount: metric.Value(*amount),
			Cycles: *kill9Cycles,
		})
		if err != nil {
			return err
		}
	} else {
		var scenarios []string
		for _, part := range strings.Split(*scenArg, ",") {
			if s := strings.TrimSpace(part); s != "" {
				scenarios = append(scenarios, s)
			}
		}
		rep, err = experiments.Chaos(experiments.ChaosConfig{
			Scenarios: scenarios,
			Chains:    *chains,
			Amount:    metric.Value(*amount),
			Seed:      *seed,
			Stagger:   *stagger,
			Plane:     plane,
			Driver:    *driverName,
			Dir:       root,
		})
		if err != nil {
			return err
		}
	}
	// Fold the observability plane's headline counters (and, when a
	// tenant serving layer ran, its per-tenant breakdown) into the
	// stderr report alongside the chaos claims.
	for _, line := range plane.Summary() {
		fmt.Fprintln(os.Stderr, "obs:", line)
	}
	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	fmt.Println(rep)
	if !rep.Passed() {
		// An invariant violation is exactly what the flight recorder is
		// armed for: dump the recent span tail before failing.
		if plane.TriggerFlight("chaosbench: chaos claim failed") {
			fmt.Fprintln(os.Stderr, "chaosbench: flight recorder dumped recent spans")
		}
		return fmt.Errorf("one or more chaos claims failed")
	}
	return nil
}
