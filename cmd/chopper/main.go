// Command chopper is the off-line chopping analyzer: it reads a declared
// job stream (JSON) or one of the paper's built-in examples, finds the
// SR-chopping and the ESR-chopping, and reports the chopping graph
// analysis — SC-cycles, C-cycles, restricted pieces, edge weights,
// inter-sibling fuzziness — optionally as Graphviz DOT.
//
// Usage:
//
//	chopper -example figure1|figure3|hazard [-dot] [-cycles N]
//	chopper -input stream.json [-dot] [-cycles N]
//
// JSON input format:
//
//	{"programs": [
//	  {"name": "xfer", "count": 10, "import": 500, "export": 500,
//	   "ops": [
//	     {"op": "add",  "key": "X", "delta": -100},
//	     {"op": "add",  "key": "X", "delta": -100, "abortIfBelow": 100},
//	     {"op": "read", "key": "Y"},
//	     {"op": "set",  "key": "Z", "value": 5}
//	   ]}
//	]}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"asynctp/internal/chop"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chopper:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("chopper", flag.ContinueOnError)
	example := fs.String("example", "", "built-in example: figure1, figure3, hazard")
	input := fs.String("input", "", "JSON job stream file")
	dot := fs.Bool("dot", false, "emit Graphviz DOT of the chopping graph")
	cycles := fs.Int("cycles", 0, "list up to N SC-cycle witnesses")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *example != "":
		return runExample(*example, *dot, *cycles)
	case *input != "":
		return runInput(*input, *dot, *cycles)
	default:
		return errors.New("need -example or -input (see -h)")
	}
}

// runExample analyzes a built-in paper example.
func runExample(name string, dot bool, cycles int) error {
	var set *chop.Set
	switch name {
	case "figure1":
		set = chop.Figure1Example()
	case "figure3":
		set = chop.Figure3Example()
	case "hazard":
		set = chop.HazardExample()
	default:
		return fmt.Errorf("unknown example %q", name)
	}
	a := chop.Analyze(set)
	fmt.Print(a.String())
	printDetails(a)
	printCycles(a, cycles)
	if dot {
		fmt.Println()
		fmt.Print(a.DOT())
	}
	return nil
}

// printCycles lists SC-cycle witnesses.
func printCycles(a *chop.Analysis, max int) {
	ws := a.SCWitnesses(max)
	if len(ws) == 0 {
		return
	}
	fmt.Println("SC-cycles:")
	for _, w := range ws {
		fmt.Printf("  %s\n", a.WitnessString(w))
	}
}

// jsonOp is one operation in the JSON input.
type jsonOp struct {
	Op           string        `json:"op"`
	Key          string        `json:"key"`
	Delta        metric.Value  `json:"delta"`
	Value        metric.Value  `json:"value"`
	Bound        *metric.Value `json:"bound"`
	AbortIfBelow *metric.Value `json:"abortIfBelow"`
}

// jsonProgram is one declared program in the JSON input.
type jsonProgram struct {
	Name   string        `json:"name"`
	Count  int           `json:"count"`
	Import *metric.Value `json:"import"`
	Export *metric.Value `json:"export"`
	Ops    []jsonOp      `json:"ops"`
}

// jsonStream is the JSON input root.
type jsonStream struct {
	Programs []jsonProgram `json:"programs"`
}

// buildStream converts the JSON declaration to a chop.Stream.
func buildStream(js jsonStream) (chop.Stream, error) {
	var stream chop.Stream
	for pi, jp := range js.Programs {
		var ops []txn.Op
		for oi, jo := range jp.Ops {
			var op txn.Op
			switch jo.Op {
			case "read":
				op = txn.ReadOp(storage.Key(jo.Key))
			case "add":
				op = txn.AddOp(storage.Key(jo.Key), jo.Delta)
			case "set":
				op = txn.SetOp(storage.Key(jo.Key), jo.Value)
			default:
				return nil, fmt.Errorf("program %d op %d: unknown op %q", pi, oi, jo.Op)
			}
			if jo.Bound != nil {
				op.Bound = metric.LimitOf(metric.Fuzz(*jo.Bound))
			}
			if jo.AbortIfBelow != nil {
				floor := *jo.AbortIfBelow
				op = txn.WithAbortIf(op, func(v metric.Value) bool { return v < floor })
			}
			ops = append(ops, op)
		}
		p, err := txn.NewProgram(jp.Name, ops...)
		if err != nil {
			return nil, err
		}
		spec := metric.Unbounded
		if jp.Import != nil {
			spec.Import = metric.LimitOf(metric.Fuzz(*jp.Import))
		}
		if jp.Export != nil {
			spec.Export = metric.LimitOf(metric.Fuzz(*jp.Export))
		}
		count := jp.Count
		if count < 1 {
			count = 1
		}
		stream = append(stream, chop.StreamItem{Program: p.WithSpec(spec), Count: count})
	}
	if len(stream) == 0 {
		return nil, errors.New("no programs declared")
	}
	return stream, nil
}

// runInput analyzes a JSON job stream.
func runInput(path string, dot bool, cycles int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var js jsonStream
	if err := json.Unmarshal(raw, &js); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	stream, err := buildStream(js)
	if err != nil {
		return err
	}

	sr, err := chop.FindSRStream(stream)
	if err != nil {
		return fmt.Errorf("SR-chopping: %w", err)
	}
	esr, err := chop.FindESRStream(stream)
	if err != nil {
		return fmt.Errorf("ESR-chopping: %w", err)
	}
	fmt.Println("declared stream:")
	for _, item := range stream {
		fmt.Printf("  %-12s count=%-4d ε=%s\n", item.Program.Name, item.Count, item.Program.Spec)
	}
	fmt.Println("\nchopping comparison (pieces per transaction):")
	fmt.Printf("  %-12s %-6s %-6s %s\n", "transaction", "SR", "ESR", "Z^is (ESR)")
	for ti, item := range stream {
		fmt.Printf("  %-12s %-6d %-6d %s\n", item.Program.Name,
			sr.Choppings[ti].NumPieces(), esr.Choppings[ti].NumPieces(),
			esr.InterSibling[ti])
	}
	fmt.Println("\nESR-chopping analysis:")
	fmt.Print(esr.Analysis.String())
	printDetails(esr.Analysis)
	printCycles(esr.Analysis, cycles)
	if dot {
		fmt.Println()
		fmt.Print(esr.Analysis.DOT())
	}
	return nil
}

// printDetails lists restricted pieces and weighted edges.
func printDetails(a *chop.Analysis) {
	fmt.Println("pieces:")
	for v := 0; v < a.Set.NumPieces(); v++ {
		restricted := ""
		if a.Restricted[v] {
			restricted = " [restricted: on a C-cycle]"
		}
		fmt.Printf("  %s%s\n", a.Set.Piece(v).Program.Name, restricted)
	}
	fmt.Println("edges:")
	for _, e := range a.Edges {
		inSC := ""
		if e.InSCCycle {
			inSC = " [on SC-cycle]"
		}
		uu := ""
		if e.UpdateUpdate && e.InSCCycle {
			uu = " [UPDATE-UPDATE HAZARD]"
		}
		fmt.Printf("  %s %s—%s w=%s%s%s\n",
			e.Kind, a.Set.Piece(e.U).Program.Name, a.Set.Piece(e.V).Program.Name,
			e.Weight, inSC, uu)
	}
}
