package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunExamples(t *testing.T) {
	for _, name := range []string{"figure1", "figure3", "hazard"} {
		if err := run([]string{"-example", name}); err != nil {
			t.Errorf("example %s: %v", name, err)
		}
	}
	if err := run([]string{"-example", "nope"}); err == nil {
		t.Error("unknown example accepted")
	}
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-example", "figure3", "-dot", "-cycles", "3"}); err != nil {
		t.Errorf("dot output: %v", err)
	}
}

func TestRunJSONInput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "stream.json")
	const input = `{"programs": [
	  {"name": "xfer", "count": 10, "import": 5000, "export": 5000,
	   "ops": [
	     {"op": "add", "key": "X", "delta": -100, "abortIfBelow": 100},
	     {"op": "add", "key": "Y", "delta": 100}
	   ]},
	  {"name": "audit", "count": 5, "import": 5000, "export": 0,
	   "ops": [
	     {"op": "read", "key": "X"},
	     {"op": "read", "key": "Y"}
	   ]}
	]}`
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path}); err != nil {
		t.Fatalf("json input: %v", err)
	}
	if err := run([]string{"-input", path, "-dot"}); err != nil {
		t.Fatalf("json input with dot: %v", err)
	}
	if err := run([]string{"-input", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunJSONValidation(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"bad-json":   `{`,
		"no-progs":   `{"programs": []}`,
		"bad-op":     `{"programs": [{"name": "t", "ops": [{"op": "frob", "key": "x"}]}]}`,
		"no-name":    `{"programs": [{"name": "", "ops": [{"op": "read", "key": "x"}]}]}`,
		"empty-prog": `{"programs": [{"name": "t", "ops": []}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := run([]string{"-input", path}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestSetOpWithBound(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	const input = `{"programs": [
	  {"name": "seteдр", "count": 2,
	   "ops": [{"op": "set", "key": "X", "value": 5, "bound": 50}]}
	]}`
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", path}); err != nil {
		t.Fatalf("set with bound: %v", err)
	}
}
