// Command conformance runs the E8 conformance harness: the declared
// bank workload swept across every method × engine stack under the
// deterministic seeded scheduler, every recorded history checked by the
// serial-replay ε-oracle; the deliberately mis-budgeted control the
// oracle must catch by query name; and the chopping fuzzer — random
// chopping sets cross-checked against brute-force SC-cycle and
// restricted-piece references, plus random workloads driven end to end.
//
// The whole report is a pure function of -seed: same seed, same
// interleavings, same table, same verdicts. CI runs it twice and diffs.
//
// Usage:
//
//	conformance [-seed 1] [-budget 200] [-seeds 5]
//	            [-fuzz-choppings 1000] [-fuzz-runs 40] [-json]
//	            [-trace f] [-tracewall f] [-tracetext f]
//	            [-metrics addr] [-metricsdump f]
//
// Exits non-zero when any conformance claim fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"asynctp/internal/experiments"
	"asynctp/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "conformance:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master seed (same seed, same report)")
	budget := fs.Int("budget", 200, "oracle serial-order enumeration budget per run")
	seeds := fs.Int("seeds", 5, "scheduler seeds swept per scenario")
	fuzzChoppings := fs.Int("fuzz-choppings", 1000, "random choppings cross-checked vs brute force")
	fuzzRuns := fs.Int("fuzz-runs", 40, "random end-to-end conformance runs")
	jsonOut := fs.Bool("json", false, "emit the report as JSON")
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}
	defer func() {
		if oerr := stopObs(); oerr != nil {
			fmt.Fprintln(os.Stderr, "conformance: obs:", oerr)
		}
	}()
	rep, err := experiments.Conformance(experiments.ConformanceConfig{
		Seed:          *seed,
		Seeds:         *seeds,
		Budget:        *budget,
		FuzzChoppings: *fuzzChoppings,
		FuzzRuns:      *fuzzRuns,
		Plane:         plane,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		out, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	}
	fmt.Println(rep)
	if !rep.Passed() {
		return fmt.Errorf("one or more conformance claims failed")
	}
	return nil
}
