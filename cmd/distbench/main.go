// Command distbench benchmarks the distributed piece pipeline over the
// simulated WAN: three sites, NY→LA→CHI transfer chains chopped into
// three pieces, activations and settlement reports riding the
// recoverable queues. It measures what the batched transport buys over
// the legacy wire (one frame per message) at a given one-way latency
// and loss rate.
//
// Suites:
//
//	pieces — distributed piece throughput (pieces/s; latency columns
//	         are initiation percentiles, the user-visible latency)
//	settle — settled chains per second (latency columns are settlement
//	         percentiles: every piece committed)
//
// Both suites come from the same run per (variant, workers) cell.
// The JSON report uses the perfbench schema, so CI gates it with
// `perfbench -compare BENCH_4.json new.json`.
//
// Usage:
//
//	distbench -quick -out dist.json
//	distbench -suites pieces -variants batched,unbatched -latency 1ms
//	distbench -minspeedup 3.0        # fail unless batched ≥ 3x legacy
//	distbench -quick -dc -trace trace.json -metricsdump prom.txt
//	perfbench -compare BENCH_4.json dist.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"asynctp/internal/experiments"
	"asynctp/internal/obs"
	"asynctp/internal/profiling"
)

// Result is one measured (suite, variant, workers) cell. The first
// fields mirror perfbench's schema — suite/variant/workers key the
// -compare gate, tps is the gated metric — and the trailing fields add
// the wire-cost accounting the batching work is about. perfbench
// ignores fields it does not know.
type Result struct {
	Suite   string  `json:"suite"`
	Variant string  `json:"variant"`
	Workers int     `json:"workers"`
	Txns    int     `json:"txns"`
	TPS     float64 `json:"tps"`
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	// FramesPerTxn is network frames per settled chain; MsgsPerTxn is
	// application messages per chain. Their ratio is the coalescing
	// factor the batch transport achieves.
	FramesPerTxn float64 `json:"frames_per_txn"`
	MsgsPerTxn   float64 `json:"msgs_per_txn"`
	Conserved    bool    `json:"conserved"`
}

// File is the serialized report (perfbench-compatible superset).
type File struct {
	Schema  string    `json:"schema"`
	Date    time.Time `json:"date"`
	GOOS    string    `json:"goos"`
	GOARCH  string    `json:"goarch"`
	CPUs    int       `json:"cpus"`
	Quick   bool      `json:"quick"`
	Latency string    `json:"latency"`
	Loss    float64   `json:"loss"`
	Results []Result  `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "distbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("distbench", flag.ContinueOnError)
	suitesArg := fs.String("suites", "pieces,settle", "comma-separated suites: pieces,settle")
	variantsArg := fs.String("variants", "batched,unbatched", "comma-separated transports: batched,unbatched")
	workersArg := fs.String("workers", "4", "comma-separated per-site worker-pool sizes")
	latency := fs.Duration("latency", time.Millisecond, "simulated one-way WAN latency")
	jitter := fs.Float64("jitter", 0, "latency jitter fraction (0..1)")
	loss := fs.Float64("loss", 0, "silent frame-loss fraction (0..1)")
	seed := fs.Int64("seed", 42, "network RNG seed")
	txns := fs.Int("txns", 0, "chain transactions per cell (0 = 1500, or 600 with -quick)")
	submitters := fs.Int("submitters", 0, "closed-loop submitters (0 = 64, or 48 with -quick)")
	quick := fs.Bool("quick", false, "CI mode: smaller stream")
	minSpeedup := fs.Float64("minspeedup", 0, "fail unless batched pieces/s >= this multiple of unbatched (0 disables)")
	useDC := fs.Bool("dc", false, "run sites under divergence control and interleave ε-audits")
	audits := fs.Int("audits", 0, "audit transactions to interleave with -dc (0 = txns/10)")
	out := fs.String("out", "", "write JSON report to this file (default stdout)")
	prof := profiling.Register(fs)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The legacy wire's costs are superlinear in outbox depth (full-outbox
	// retransmission per commit), so the stream must be deep enough for the
	// batched/unbatched contrast to be about the transport, not the idle
	// pipeline. 600 chains over 48 submitters keeps -quick past that knee
	// while still finishing in a couple of seconds.
	nTxns, nSub := 1500, 64
	if *quick {
		nTxns, nSub = 600, 48
	}
	if *txns > 0 {
		nTxns = *txns
	}
	if *submitters > 0 {
		nSub = *submitters
	}
	var workers []int
	for _, part := range strings.Split(*workersArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", part)
		}
		workers = append(workers, n)
	}
	suites := strings.Split(*suitesArg, ",")
	for _, s := range suites {
		switch strings.TrimSpace(s) {
		case "pieces", "settle":
		default:
			return fmt.Errorf("unknown suite %q", s)
		}
	}

	stopProfiles, err := prof.Start()
	if err != nil {
		return err
	}
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}

	file := &File{
		Schema:  "asynctp/perfbench/v1",
		Date:    time.Now().UTC(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Quick:   *quick,
		Latency: latency.String(),
		Loss:    *loss,
	}
	// piecesPerSec[workers] tracks the batched/unbatched ratio per pool
	// size for the -minspeedup gate.
	type cellRate struct{ batched, unbatched float64 }
	rates := map[int]*cellRate{}
	for _, w := range workers {
		rates[w] = &cellRate{}
		for _, variant := range strings.Split(*variantsArg, ",") {
			variant = strings.TrimSpace(variant)
			res, err := experiments.RunDistBench(experiments.DistBenchConfig{
				Variant:    variant,
				Latency:    *latency,
				Jitter:     *jitter,
				LossRate:   *loss,
				Seed:       *seed,
				Workers:    w,
				Submitters: nSub,
				Txns:       nTxns,
				UseDC:      *useDC,
				Audits:     *audits,
				Plane:      plane,
			})
			if err != nil {
				return fmt.Errorf("%s/workers=%d: %w", variant, w, err)
			}
			if !res.Conserved {
				return fmt.Errorf("%s/workers=%d: money not conserved — measurement void", variant, w)
			}
			switch variant {
			case experiments.VariantBatched:
				rates[w].batched = res.PiecesPerSec
			case experiments.VariantUnbatched:
				rates[w].unbatched = res.PiecesPerSec
			}
			for _, suite := range suites {
				suite = strings.TrimSpace(suite)
				row := Result{
					Suite:        "dist-" + suite,
					Variant:      variant,
					Workers:      w,
					Txns:         res.Txns,
					FramesPerTxn: res.FramesPerTxn,
					MsgsPerTxn:   res.MsgsPerTxn,
					Conserved:    res.Conserved,
				}
				switch suite {
				case "pieces":
					row.TPS = res.PiecesPerSec
					row.P50us = float64(res.InitP50.Microseconds())
					row.P99us = float64(res.InitP99.Microseconds())
				case "settle":
					row.TPS = res.TPS
					row.P50us = float64(res.SettleP50.Microseconds())
					row.P99us = float64(res.SettleP99.Microseconds())
				}
				file.Results = append(file.Results, row)
				fmt.Fprintf(os.Stderr, "%-12s %-10s workers=%-3d %9.0f /s  p50=%7.0fµs p99=%7.0fµs  %5.1f frames/txn %5.1f msgs/txn\n",
					row.Suite, row.Variant, row.Workers, row.TPS, row.P50us, row.P99us,
					row.FramesPerTxn, row.MsgsPerTxn)
			}
		}
		if r := rates[w]; r.batched > 0 && r.unbatched > 0 {
			fmt.Fprintf(os.Stderr, "workers=%-3d batched/unbatched piece throughput: %.2fx\n",
				w, r.batched/r.unbatched)
		}
	}
	if *minSpeedup > 0 {
		for w, r := range rates {
			if r.batched == 0 || r.unbatched == 0 {
				return fmt.Errorf("-minspeedup needs both batched and unbatched variants")
			}
			if ratio := r.batched / r.unbatched; ratio < *minSpeedup {
				return fmt.Errorf("workers=%d: batched is only %.2fx unbatched, want >= %.2fx",
					w, ratio, *minSpeedup)
			}
		}
	}
	if err := stopProfiles(); err != nil {
		return err
	}
	if plane != nil {
		for _, line := range plane.Summary() {
			fmt.Fprintln(os.Stderr, "obs:", line)
		}
	}
	if err := stopObs(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
