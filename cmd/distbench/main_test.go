package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSmoke drives the CLI end to end on a tiny workload and checks
// the report: both variants, both suites, perfbench-compatible keys,
// and conservation on every cell.
func TestRunSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "dist.json")
	err := run([]string{
		"-quick",
		"-txns", "48",
		"-submitters", "8",
		"-latency", "200us",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "asynctp/perfbench/v1" {
		t.Errorf("schema = %q, want perfbench-compatible", f.Schema)
	}
	// 2 suites x 2 variants x 1 worker pool.
	if len(f.Results) != 4 {
		t.Fatalf("results = %d, want 4: %+v", len(f.Results), f.Results)
	}
	seen := map[string]bool{}
	for _, r := range f.Results {
		seen[r.Suite+"/"+r.Variant] = true
		if !r.Conserved {
			t.Errorf("%s/%s: not conserved", r.Suite, r.Variant)
		}
		if r.TPS <= 0 {
			t.Errorf("%s/%s: tps = %f", r.Suite, r.Variant, r.TPS)
		}
		if r.Txns != 48 {
			t.Errorf("%s/%s: txns = %d, want 48", r.Suite, r.Variant, r.Txns)
		}
	}
	for _, k := range []string{
		"dist-pieces/batched", "dist-pieces/unbatched",
		"dist-settle/batched", "dist-settle/unbatched",
	} {
		if !seen[k] {
			t.Errorf("missing cell %s", k)
		}
	}
}

// TestRunRejectsBadFlags covers flag validation.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-suites", "nope"}); err == nil {
		t.Error("bad suite accepted")
	}
	if err := run([]string{"-workers", "zero"}); err == nil {
		t.Error("bad workers accepted")
	}
}
