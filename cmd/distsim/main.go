// Command distsim regenerates the distributed experiments of Section 4:
// 2PC vs chopped recoverable queues across WAN latencies (E2), the
// availability comparison under a site crash (E2b), and the ε-spec
// splitting example (E3).
//
// Usage:
//
//	distsim [-run e2,e2b,e3] [-latencies 1ms,10ms,40ms] [-n 5]
//	        [-trace f] [-tracewall f] [-tracetext f]
//	        [-metrics addr] [-metricsdump f]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"asynctp/internal/experiments"
	"asynctp/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "distsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("distsim", flag.ContinueOnError)
	which := fs.String("run", "e2,e2b,e3", "comma-separated experiment ids")
	latArg := fs.String("latencies", "1ms,10ms,40ms", "one-way latencies for e2")
	n := fs.Int("n", 5, "transactions per latency point (e2)")
	jsonOut := fs.Bool("json", false, "emit reports as JSON")
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}
	experiments.SetObsPlane(plane)
	defer func() {
		if plane != nil {
			for _, line := range plane.Summary() {
				fmt.Fprintln(os.Stderr, "obs:", line)
			}
		}
		if oerr := stopObs(); oerr != nil {
			fmt.Fprintln(os.Stderr, "distsim: obs:", oerr)
		}
	}()
	var lats []time.Duration
	for _, part := range strings.Split(*latArg, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad latency %q: %w", part, err)
		}
		lats = append(lats, d)
	}

	for _, id := range strings.Split(*which, ",") {
		var (
			rep *experiments.Report
			err error
		)
		switch strings.TrimSpace(id) {
		case "e2":
			rep, err = experiments.Distributed2PCvsQueues(lats, *n)
		case "e2b":
			rep, err = experiments.DistributedAvailability()
		case "e3":
			rep, err = experiments.DistributedEpsilonSplit()
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *jsonOut {
			out, err := rep.JSON()
			if err != nil {
				return err
			}
			fmt.Println(out)
		} else {
			fmt.Println(rep.String())
		}
	}
	return nil
}
