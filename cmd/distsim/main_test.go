package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-run", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-latencies", "abc", "-run", "e3"}); err == nil {
		t.Error("bad latency accepted")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunE3(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	if err := run([]string{"-run", "e3"}); err != nil {
		t.Fatal(err)
	}
}
