// Command loadbench drives the YCSB-style open-loop load rig against a
// chopped-transaction cluster — in one process (simnet or TCP loopback)
// or as one OS process per site wired through the real TCP transport.
//
// The workload is a declared program table (Zipfian key skew, read/
// update mix, conserving transfers) built identically in every process
// from the shared seed; arrivals are Poisson (open loop, with shedding
// beyond -maxinflight) or a closed worker loop. Scenario scripts
// (baseline, degraded, partition, high-load) set the wire knobs and a
// timed fault schedule. Every run ends with a settlement audit: queues
// quiesce, the cluster-wide record total must equal the seeded total.
//
// With -tenants N the rig instead stands up the multi-tenant serving
// layer (internal/tenant) in one process: N key-disjoint tenants over
// partition-parallel runners, tenant-selection skew set by -skew, and
// per-tenant admission budgets (-tenantrate, -tenanteps) deciding how
// much hot-tenant overflow is served degraded (spending ε on stale
// reads) before shedding. The stderr report folds in the observability
// plane's per-tenant admitted/degraded/shed/ε breakdown.
//
// The JSON report uses the perfbench schema, so CI gates it with
// `perfbench -compare BENCH_net.json new.json`.
//
// Usage:
//
//	loadbench -quick -out load.json                # in-process simnet
//	loadbench -net tcp -scenarios baseline         # in-process TCP loopback
//	loadbench -multi -txns 1000000 -mode closed    # one OS process per site
//	loadbench -tenants 16 -skew 0.99 -rate 800 \
//	          -tenantrate 30 -tenanteps 100000     # serving-layer mode
//	perfbench -compare BENCH_net.json load.json
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/transport"
	"asynctp/internal/workload"
)

// Environment variables carrying a child process's parameters. The
// child is this same binary re-executed (the kill9 pattern): main
// diverts on ASYNCTP_LOAD_CHILD before flag parsing.
const (
	envChild = "ASYNCTP_LOAD_CHILD"
	envSite  = "ASYNCTP_LOAD_SITE"
	envAddrs = "ASYNCTP_LOAD_ADDRS" // site=host:port, comma-separated
	envCfg   = "ASYNCTP_LOAD_CFG"   // sharedConfig JSON
)

// sharedConfig is everything parent and children must agree on; it
// rides one env var as JSON so the program tables, placement, and
// arrival draws are built identically in every process.
type sharedConfig struct {
	Records        int      `json:"records"`
	Sites          []string `json:"sites"`
	Theta          float64  `json:"theta"`
	ReadFraction   float64  `json:"read_fraction"`
	ProgramTypes   int      `json:"program_types"`
	ReadSpan       int      `json:"read_span"`
	TransferAmount int64    `json:"transfer_amount"`
	InitialBalance int64    `json:"initial_balance"`
	Epsilon        int64    `json:"epsilon"`
	Seed           int64    `json:"seed"`

	Mode        string  `json:"mode"` // open | closed
	Rate        float64 `json:"rate"` // per-process arrivals/sec (open)
	Txns        int     `json:"txns"` // per-process arrivals to offer
	Workers     int     `json:"workers"`
	MaxInFlight int     `json:"max_in_flight"`
	Scenario    string  `json:"scenario"`

	// Spans turns on the child's span store (proc = site ID); the dump
	// ships back over the SPANS barrier for the parent to merge.
	// MetricsDump, when set, makes each child write one Prometheus
	// snapshot to MetricsDump+"."+site before the EXIT barrier.
	// StallAfterNS arms the child's chain-stall flight recorder.
	Spans        bool   `json:"spans,omitempty"`
	SpanLimit    int    `json:"span_limit,omitempty"`
	MetricsDump  string `json:"metrics_dump,omitempty"`
	StallAfterNS int64  `json:"stall_after_ns,omitempty"`
}

func (sc sharedConfig) siteIDs() []simnet.SiteID {
	ids := make([]simnet.SiteID, len(sc.Sites))
	for i, s := range sc.Sites {
		ids[i] = simnet.SiteID(s)
	}
	return ids
}

func (sc sharedConfig) workload() (*workload.Workload, error) {
	return workload.NewYCSB(workload.YCSBConfig{
		Records:        sc.Records,
		Sites:          sc.siteIDs(),
		Theta:          sc.Theta,
		ReadFraction:   sc.ReadFraction,
		ProgramTypes:   sc.ProgramTypes,
		ReadSpan:       sc.ReadSpan,
		TransferAmount: metric.Value(sc.TransferAmount),
		InitialBalance: metric.Value(sc.InitialBalance),
		Epsilon:        metric.Fuzz(sc.Epsilon),
		Seed:           sc.Seed,
	})
}

// Result is one measured (suite, variant, workers) cell in the
// perfbench schema; suite/variant/workers key the -compare gate, tps is
// the gated metric, and the trailing fields carry the open-loop
// accounting (perfbench ignores fields it does not know).
type Result struct {
	Suite   string  `json:"suite"` // load-open | load-closed
	Variant string  `json:"variant"`
	Workers int     `json:"workers"`
	Txns    int     `json:"txns"` // offered arrivals
	TPS     float64 `json:"tps"`  // committed/sec (settlement)
	P50us   float64 `json:"p50_us"`
	P99us   float64 `json:"p99_us"`
	// InitP50us/InitP99us are initiation-latency percentiles — the
	// user-visible latency the paper's chopping is supposed to shrink.
	InitP50us   float64 `json:"init_p50_us"`
	InitP99us   float64 `json:"init_p99_us"`
	Started     int     `json:"started"`
	Shed        int     `json:"shed"`
	Committed   int     `json:"committed"`
	RolledBack  int     `json:"rolledback"`
	Errors      int     `json:"errors"`
	Procs       int     `json:"procs"`
	Net         string  `json:"net"` // sim | tcp | tcp-multi | local
	OfferedRate float64 `json:"offered_rate"`
	Conserved   bool    `json:"conserved"`
	// Degraded/EpsCharged carry the -tenants mode's ε-spend shedding
	// accounting (zero elsewhere).
	Degraded   int   `json:"degraded,omitempty"`
	EpsCharged int64 `json:"eps_charged,omitempty"`
}

// File is the serialized report (perfbench-compatible superset).
type File struct {
	Schema  string    `json:"schema"`
	Date    time.Time `json:"date"`
	GOOS    string    `json:"goos"`
	GOARCH  string    `json:"goarch"`
	CPUs    int       `json:"cpus"`
	Quick   bool      `json:"quick"`
	Mode    string    `json:"mode"`
	Net     string    `json:"net"`
	Results []Result  `json:"results"`
}

func main() {
	if os.Getenv(envChild) == "1" {
		if err := childMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "loadbench child:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadbench", flag.ContinueOnError)
	scenariosArg := fs.String("scenarios", "baseline", "comma-separated scenarios: baseline,degraded,partition,high-load")
	mode := fs.String("mode", "open", "arrival process: open (Poisson) or closed (worker loop)")
	netKind := fs.String("net", "sim", "wire for single-process runs: sim or tcp (loopback)")
	multi := fs.Bool("multi", false, "one OS process per site over real TCP (overrides -net)")
	rate := fs.Float64("rate", 20000, "open-loop offered arrivals/sec (total, split across processes)")
	txns := fs.Int("txns", 0, "arrivals to offer per scenario (0 = 20000, or 4000 with -quick)")
	workers := fs.Int("workers", 32, "closed-loop workers (total, split across processes)")
	maxInFlight := fs.Int("maxinflight", 4096, "open-loop in-flight cap per process; beyond it arrivals shed")
	records := fs.Int("records", 0, "YCSB records (0 = 2000, or 500 with -quick)")
	theta := fs.Float64("theta", 0.9, "Zipfian skew in [0,1)")
	readFrac := fs.Float64("readfrac", 0.25, "fraction of program types that are span reads")
	types := fs.Int("types", 64, "program-table size")
	span := fs.Int("span", 4, "records per read program")
	amount := fs.Int64("amount", 5, "max transfer delta")
	balance := fs.Int64("balance", 1000, "initial balance per record")
	epsilon := fs.Int64("epsilon", 1_000_000, "ε-spec for the program table")
	sitesArg := fs.String("sites", "NY,LA,CHI", "comma-separated site IDs")
	seed := fs.Int64("seed", 42, "table + arrival RNG seed")
	quick := fs.Bool("quick", false, "CI mode: smaller stream")
	out := fs.String("out", "", "write JSON report to this file (default stdout)")
	nTenants := fs.Int("tenants", 0, "run the multi-tenant serving layer with this many tenants instead of the cluster rig")
	parts := fs.Int("parts", 8, "partitions for -tenants mode (capped at the tenant count)")
	skew := fs.Float64("skew", 0.99, "tenant-selection Zipfian skew for -tenants mode")
	tenantRate := fs.Float64("tenantrate", 0, "per-tenant admitted txn/s budget for -tenants mode (0 = unlimited)")
	tenantEps := fs.Float64("tenanteps", 0, "per-tenant ε/s degrade allowance for -tenants mode (0 = unlimited)")
	spanGate := fs.Float64("spangate", 0, "fail unless at least this fraction of span trees merge fully connected (0 disables)")
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	nTxns, nRecords := 20000, 2000
	if *quick {
		nTxns, nRecords = 4000, 500
	}
	if *txns > 0 {
		nTxns = *txns
	}
	if *records > 0 {
		nRecords = *records
	}
	switch *mode {
	case "open", "closed":
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	switch *netKind {
	case "sim", "tcp":
	default:
		return fmt.Errorf("unknown net %q", *netKind)
	}
	var sites []string
	for _, s := range strings.Split(*sitesArg, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sites = append(sites, s)
		}
	}
	if len(sites) < 1 {
		return fmt.Errorf("need at least one site")
	}

	shared := sharedConfig{
		Records:        nRecords,
		Sites:          sites,
		Theta:          *theta,
		ReadFraction:   *readFrac,
		ProgramTypes:   *types,
		ReadSpan:       *span,
		TransferAmount: *amount,
		InitialBalance: *balance,
		Epsilon:        *epsilon,
		Seed:           *seed,
		Mode:           *mode,
		Rate:           *rate,
		Txns:           nTxns,
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
	}
	wire := *netKind
	if *multi {
		wire = "tcp-multi"
	}
	// In multi mode span recording happens in the children (one store
	// per OS process); the parent merges their dumps over the SPANS
	// barrier and writes the exports itself. Strip the span and
	// metricsdump destinations from the parent's plane so stopObs does
	// not overwrite them with an empty single-process merge.
	spanOut := *obsFlags
	if *multi {
		shared.Spans = obsFlags.SpansEnabled()
		shared.SpanLimit = obsFlags.SpanLimit
		shared.MetricsDump = obsFlags.MetricsDump
		shared.StallAfterNS = int64(obsFlags.StallAfter)
		obsFlags.Spans, obsFlags.SpansWall, obsFlags.CritPath = "", "", 0
		obsFlags.FlightDump, obsFlags.StallAfter = "", 0
		obsFlags.MetricsDump = ""
	}
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}
	defer func() {
		if oerr := stopObs(); oerr != nil {
			fmt.Fprintln(os.Stderr, "loadbench: obs:", oerr)
		}
	}()
	if *nTenants > 0 {
		wire = "local"
	}
	file := &File{
		Schema: "asynctp/perfbench/v1",
		Date:   time.Now().UTC(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Quick:  *quick,
		Mode:   *mode,
		Net:    wire,
	}
	if *nTenants > 0 {
		// Multi-tenant serving-layer mode: the per-tenant breakdown in
		// plane.Summary() is part of the report, so a plane is always
		// built even when no -trace/-metrics destination was requested.
		if plane == nil {
			plane = obs.NewPlane(nil, nil, obs.NewRegistry())
		}
		row, err := runTenantsMode(tenantsConfig{
			Tenants:     *nTenants,
			Partitions:  *parts,
			Skew:        *skew,
			Epsilon:     metric.Fuzz(*epsilon),
			Rate:        *tenantRate,
			EpsRate:     *tenantEps,
			Mode:        *mode,
			OfferedRate: *rate,
			Txns:        nTxns,
			Workers:     *workers,
			MaxInFlight: *maxInFlight,
			Seed:        *seed,
		}, plane)
		if err != nil {
			return err
		}
		if !row.Conserved {
			return fmt.Errorf("tenants mode: value not conserved — measurement void")
		}
		file.Results = append(file.Results, row)
		fmt.Fprintf(os.Stderr, "%-12s %-10s procs=%d %9.0f txn/s  p50=%7.0fµs p99=%7.0fµs  offered=%d degraded=%d shed=%d ε=%d\n",
			row.Suite, row.Variant, row.Procs, row.TPS, row.P50us, row.P99us, row.Txns, row.Degraded, row.Shed, row.EpsCharged)
		reportSummary(plane)
		return writeReport(file, *out)
	}
	var spanDumps []obs.ProcSpans
	for _, name := range strings.Split(*scenariosArg, ",") {
		sc, err := workload.ScenarioByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		shared.Scenario = sc.Name
		var row Result
		if *multi {
			var dumps []obs.ProcSpans
			row, dumps, err = runMulti(shared, sc)
			if dumps != nil {
				// With several scenarios the instance sequences restart
				// per run, so only one scenario's dumps can merge; the
				// last wins (CI runs a single scenario).
				spanDumps = dumps
			}
		} else {
			row, err = runLocal(shared, sc, *netKind, plane)
		}
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		if !row.Conserved {
			return fmt.Errorf("scenario %s: value not conserved — measurement void", sc.Name)
		}
		file.Results = append(file.Results, row)
		fmt.Fprintf(os.Stderr, "%-12s %-10s procs=%d %9.0f txn/s  settle p50=%7.0fµs p99=%7.0fµs  offered=%d shed=%d\n",
			row.Suite, row.Variant, row.Procs, row.TPS, row.P50us, row.P99us, row.Txns, row.Shed)
	}
	if *multi && shared.Spans {
		if err := exportMergedSpans(spanOut, spanDumps, *spanGate); err != nil {
			return err
		}
	} else if *spanGate > 0 && plane.SpansOn() {
		m := obs.MergeSpans([]obs.ProcSpans{plane.Spans.Dump()})
		if err := checkSpanGate(m, *spanGate); err != nil {
			return err
		}
	}
	reportSummary(plane)
	return writeReport(file, *out)
}

// exportMergedSpans merges the child span dumps into the canonical
// cross-process trace, writes the requested exports, reports the
// connectivity/orphan accounting on stderr, and applies the -spangate
// connectivity floor.
func exportMergedSpans(spanOut obs.Flags, dumps []obs.ProcSpans, gate float64) error {
	m := obs.MergeSpans(dumps)
	write := func(path string, export func(io.Writer, *obs.Merged) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := export(f, m); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(spanOut.Spans, obs.ExportCanonicalSpans); err != nil {
		return err
	}
	if err := write(spanOut.SpansWall, obs.ExportWallSpans); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "spans: %d merged from %d procs, %d traces, %.2f%% connected, %d orphaned, %d evicted\n",
		m.Spans, len(m.Procs), len(m.Traces), 100*m.ConnectedFraction(), m.Orphans, m.Evicted)
	if spanOut.CritPath > 0 {
		obs.AnalyzeCriticalPath(m, spanOut.CritPath).WriteText(os.Stderr)
	}
	return checkSpanGate(m, gate)
}

// checkSpanGate fails the run when the fully-connected span-tree
// fraction is below the gate (a CI floor on trace propagation).
func checkSpanGate(m *obs.Merged, gate float64) error {
	if gate <= 0 {
		return nil
	}
	if frac := m.ConnectedFraction(); frac < gate {
		return fmt.Errorf("spangate: %.4f of %d span trees fully connected, need %.4f (%d orphans, %d evicted)",
			frac, len(m.Traces), gate, m.Orphans, m.Evicted)
	}
	return nil
}

// reportSummary folds the observability plane's headline counters —
// including the per-tenant admitted/degraded/shed/ε breakdown when the
// serving layer ran — into the stderr report. Nil-safe.
func reportSummary(plane *obs.Plane) {
	for _, line := range plane.Summary() {
		fmt.Fprintln(os.Stderr, "obs:", line)
	}
}

func writeReport(file *File, out string) error {
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// ---------------------------------------------------------------------
// Single-process runs (simnet or TCP loopback)
// ---------------------------------------------------------------------

func runLocal(shared sharedConfig, sc workload.Scenario, netKind string, plane *obs.Plane) (Result, error) {
	w, err := shared.workload()
	if err != nil {
		return Result{}, err
	}
	cfg := site.Config{
		Strategy:          site.ChoppedQueues,
		Placement:         workload.YCSBPlacement,
		Initial:           workload.SplitInitial(w.Initial, workload.YCSBPlacement),
		RetransmitEvery:   5 * time.Millisecond,
		AllowCompensation: true,
		Seed:              shared.Seed,
		Latency:           sc.Latency,
		Jitter:            sc.Jitter,
		LossRate:          sc.LossRate,
		Obs:               plane,
	}
	if netKind == "tcp" {
		listen := make(map[simnet.SiteID]string, len(shared.Sites))
		for _, id := range shared.siteIDs() {
			listen[id] = "127.0.0.1:0"
		}
		cfg.Net = transport.New(transport.Config{
			Listen:   listen,
			LossRate: sc.LossRate,
			Latency:  sc.Latency,
			Jitter:   sc.Jitter,
			Seed:     shared.Seed,
		})
	}
	c, err := site.NewCluster(cfg)
	if err != nil {
		return Result{}, err
	}
	defer c.Close()
	if err := c.RegisterPrograms(w.Programs); err != nil {
		return Result{}, err
	}
	var sched *fault.Schedule
	if sc.Script != nil {
		sched = sc.Script(shared.Seed, shared.siteIDs())
		sched.Run(c)
		defer sched.Stop()
	}
	all := make([]int, len(w.Programs))
	for i := range all {
		all[i] = i
	}
	res, err := runArrivals(c, shared, sc, all, shared.Txns, shared.Rate*sc.RateFactor, shared.Workers)
	if err != nil {
		return Result{}, err
	}
	if sched != nil {
		sched.Stop()
	}
	total, err := quiesceAndSum(c, shared.siteIDs())
	if err != nil {
		return Result{}, err
	}
	row := rowFrom(shared, sc, res, 1, netKind)
	row.Conserved = total == w.Total()
	return row, nil
}

func runArrivals(sub workload.Submitter, shared sharedConfig, sc workload.Scenario, programs []int, txns int, rate float64, workers int) (*workload.ArrivalResult, error) {
	acfg := workload.ArrivalConfig{
		Total:       txns,
		Programs:    programs,
		Seed:        shared.Seed,
		MaxInFlight: shared.MaxInFlight,
	}
	if shared.Mode == "open" {
		acfg.Mode = workload.OpenLoop
		acfg.Rate = rate
	} else {
		acfg.Mode = workload.ClosedLoop
		acfg.Workers = workers
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	return workload.RunArrivals(ctx, sub, acfg)
}

// quiesceAndSum waits for every local site's queues to drain (stable
// across consecutive polls, so a remote retransmit arriving between
// checks restarts the clock) and returns the cluster-wide record total,
// skipping "__"-prefixed piece markers.
func quiesceAndSum(c *site.Cluster, sites []simnet.SiteID) (metric.Value, error) {
	deadline := time.Now().Add(60 * time.Second)
	stable := 0
	for stable < 3 {
		idle := true
		for _, id := range sites {
			if s := c.Site(id); s != nil && !s.QueuesIdle() {
				idle = false
			}
		}
		if idle {
			stable++
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("queues did not quiesce")
		}
		time.Sleep(10 * time.Millisecond)
	}
	var total metric.Value
	for _, id := range sites {
		s := c.Site(id)
		if s == nil {
			continue
		}
		for _, k := range s.Store.Keys() {
			if strings.HasPrefix(string(k), "__") {
				continue
			}
			total += s.Store.Get(k)
		}
	}
	return total, nil
}

func rowFrom(shared sharedConfig, sc workload.Scenario, res *workload.ArrivalResult, procs int, wire string) Result {
	return Result{
		Suite:       "load-" + shared.Mode,
		Variant:     sc.Name,
		Workers:     shared.Workers,
		Txns:        res.Offered,
		TPS:         res.ThroughputTPS,
		P50us:       float64(res.Settlement.Percentile(50).Microseconds()),
		P99us:       float64(res.Settlement.Percentile(99).Microseconds()),
		InitP50us:   float64(res.Initiation.Percentile(50).Microseconds()),
		InitP99us:   float64(res.Initiation.Percentile(99).Microseconds()),
		Started:     res.Started,
		Shed:        res.Shed,
		Committed:   res.Committed,
		RolledBack:  res.RolledBack,
		Errors:      res.Errors,
		Procs:       procs,
		Net:         wire,
		OfferedRate: shared.Rate * sc.RateFactor,
	}
}

// ---------------------------------------------------------------------
// Multi-process runs: one OS process per site, real TCP between them
// ---------------------------------------------------------------------

// childReport is what each site process sends back over the RESULT
// line: its arrival accounting plus the post-quiesce local ledger sum
// (the parent checks global conservation as Σ local sums).
type childReport struct {
	Offered, Started, Shed                     int
	Committed, RolledBack, Compensated, Errors int
	ElapsedNS                                  int64
	InitP50us, InitP99us                       float64
	SettleP50us, SettleP99us                   float64
	LocalSum                                   int64
}

// childProc is the parent's handle on one spawned site process.
type childProc struct {
	site  simnet.SiteID
	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string
	errs  chan error
}

func (cp *childProc) expect(want string, timeout time.Duration) (string, error) {
	select {
	case line, ok := <-cp.lines:
		if !ok {
			return "", fmt.Errorf("%s: child exited before %s", cp.site, want)
		}
		if !strings.HasPrefix(line, want) {
			return "", fmt.Errorf("%s: got %q, want %s", cp.site, line, want)
		}
		return line, nil
	case err := <-cp.errs:
		return "", fmt.Errorf("%s: %w", cp.site, err)
	case <-time.After(timeout):
		return "", fmt.Errorf("%s: timed out waiting for %s", cp.site, want)
	}
}

func (cp *childProc) send(line string) error {
	_, err := io.WriteString(cp.stdin, line+"\n")
	return err
}

// readLine returns the next raw stdout line (the SPANS block's span
// payload, which has no fixed prefix to expect()).
func (cp *childProc) readLine(timeout time.Duration) (string, error) {
	select {
	case line, ok := <-cp.lines:
		if !ok {
			return "", fmt.Errorf("%s: child exited mid-block", cp.site)
		}
		return line, nil
	case err := <-cp.errs:
		return "", fmt.Errorf("%s: %w", cp.site, err)
	case <-time.After(timeout):
		return "", fmt.Errorf("%s: timed out reading span block", cp.site)
	}
}

// readSpanDump consumes one child's SPANS barrier block:
//
//	SPANS <proc> <total> <evicted> <n>
//	<span JSON> × n
//	ENDSPANS
func (cp *childProc) readSpanDump() (obs.ProcSpans, error) {
	header, err := cp.expect("SPANS ", 2*time.Minute)
	if err != nil {
		return obs.ProcSpans{}, err
	}
	var ps obs.ProcSpans
	var n int
	if _, err := fmt.Sscanf(header, "SPANS %s %d %d %d", &ps.Proc, &ps.Total, &ps.Evicted, &n); err != nil {
		return obs.ProcSpans{}, fmt.Errorf("%s: bad SPANS header %q: %w", cp.site, header, err)
	}
	ps.Spans = make([]obs.Span, 0, n)
	for i := 0; i < n; i++ {
		line, err := cp.readLine(time.Minute)
		if err != nil {
			return obs.ProcSpans{}, err
		}
		var sp obs.Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			return obs.ProcSpans{}, fmt.Errorf("%s: bad span line %d: %w", cp.site, i, err)
		}
		ps.Spans = append(ps.Spans, sp)
	}
	if _, err := cp.expect("ENDSPANS", time.Minute); err != nil {
		return obs.ProcSpans{}, err
	}
	return ps, nil
}

// allocPorts reserves one loopback port per site by binding and
// immediately closing a listener. The tiny window between close and the
// child's re-bind is the standard pre-allocation race; SO_REUSE
// semantics on loopback make it reliable in practice.
func allocPorts(sites []string) (map[string]string, error) {
	addrs := make(map[string]string, len(sites))
	for _, s := range sites {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[s] = l.Addr().String()
		l.Close()
	}
	return addrs, nil
}

func runMulti(shared sharedConfig, sc workload.Scenario) (Result, []obs.ProcSpans, error) {
	bin, err := os.Executable()
	if err != nil {
		return Result{}, nil, err
	}
	addrs, err := allocPorts(shared.Sites)
	if err != nil {
		return Result{}, nil, err
	}
	var addrParts []string
	for s, a := range addrs {
		addrParts = append(addrParts, s+"="+a)
	}
	sort.Strings(addrParts)

	// Per-process shares of the offered load. The table partition by
	// origin site is what each child draws from, so the global stream
	// is the union of disjoint local streams.
	perTxns := shared.Txns / len(shared.Sites)
	perRate := shared.Rate * sc.RateFactor / float64(len(shared.Sites))
	perWorkers := shared.Workers / len(shared.Sites)
	if perWorkers < 1 {
		perWorkers = 1
	}

	children := make([]*childProc, 0, len(shared.Sites))
	defer func() {
		for _, cp := range children {
			cp.stdin.Close()
			cp.cmd.Process.Kill()
			cp.cmd.Wait()
		}
	}()
	for i, s := range shared.Sites {
		per := shared
		per.Txns = perTxns
		if i == 0 {
			per.Txns += shared.Txns % len(shared.Sites)
		}
		per.Rate = perRate
		per.Workers = perWorkers
		perJSON, err := json.Marshal(per)
		if err != nil {
			return Result{}, nil, err
		}
		cmd := exec.Command(bin)
		cmd.Env = append(os.Environ(),
			envChild+"=1",
			envSite+"="+s,
			envAddrs+"="+strings.Join(addrParts, ","),
			envCfg+"="+string(perJSON),
		)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return Result{}, nil, err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return Result{}, nil, err
		}
		if err := cmd.Start(); err != nil {
			return Result{}, nil, err
		}
		cp := &childProc{
			site:  simnet.SiteID(s),
			cmd:   cmd,
			stdin: stdin,
			lines: make(chan string, 8),
			errs:  make(chan error, 1),
		}
		go func(r io.Reader) {
			scan := bufio.NewScanner(r)
			scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
			for scan.Scan() {
				cp.lines <- scan.Text()
			}
			if err := scan.Err(); err != nil {
				cp.errs <- err
			}
			close(cp.lines)
		}(stdout)
		children = append(children, cp)
	}

	for _, cp := range children {
		if _, err := cp.expect("READY", 60*time.Second); err != nil {
			return Result{}, nil, err
		}
	}
	start := time.Now()
	for _, cp := range children {
		if err := cp.send("GO"); err != nil {
			return Result{}, nil, err
		}
	}
	for _, cp := range children {
		if _, err := cp.expect("DONE", 30*time.Minute); err != nil {
			return Result{}, nil, err
		}
	}
	for _, cp := range children {
		if err := cp.send("AUDIT"); err != nil {
			return Result{}, nil, err
		}
	}
	reports := make([]childReport, 0, len(children))
	for _, cp := range children {
		line, err := cp.expect("RESULT ", 2*time.Minute)
		if err != nil {
			return Result{}, nil, err
		}
		var rep childReport
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "RESULT ")), &rep); err != nil {
			return Result{}, nil, fmt.Errorf("%s: bad RESULT: %w", cp.site, err)
		}
		reports = append(reports, rep)
	}
	var dumps []obs.ProcSpans
	if shared.Spans {
		for _, cp := range children {
			ps, err := cp.readSpanDump()
			if err != nil {
				return Result{}, nil, err
			}
			dumps = append(dumps, ps)
		}
	}
	for _, cp := range children {
		if err := cp.send("EXIT"); err != nil {
			return Result{}, nil, err
		}
	}
	for _, cp := range children {
		if err := cp.cmd.Wait(); err != nil {
			return Result{}, nil, fmt.Errorf("%s: %w", cp.site, err)
		}
	}
	elapsed := time.Since(start)

	row := Result{
		Suite:       "load-" + shared.Mode,
		Variant:     sc.Name,
		Workers:     shared.Workers,
		Procs:       len(children),
		Net:         "tcp-multi",
		OfferedRate: shared.Rate * sc.RateFactor,
	}
	var localSum int64
	var maxElapsed time.Duration
	for _, rep := range reports {
		row.Txns += rep.Offered
		row.Started += rep.Started
		row.Shed += rep.Shed
		row.Committed += rep.Committed
		row.RolledBack += rep.RolledBack
		row.Errors += rep.Errors
		localSum += rep.LocalSum
		if d := time.Duration(rep.ElapsedNS); d > maxElapsed {
			maxElapsed = d
		}
		// Percentiles cannot be merged exactly across processes; take
		// the worst child's, the conservative bound.
		if rep.SettleP50us > row.P50us {
			row.P50us = rep.SettleP50us
		}
		if rep.SettleP99us > row.P99us {
			row.P99us = rep.SettleP99us
		}
		if rep.InitP50us > row.InitP50us {
			row.InitP50us = rep.InitP50us
		}
		if rep.InitP99us > row.InitP99us {
			row.InitP99us = rep.InitP99us
		}
	}
	if maxElapsed <= 0 {
		maxElapsed = elapsed
	}
	row.TPS = float64(row.Committed) / maxElapsed.Seconds()
	w, err := shared.workload()
	if err != nil {
		return Result{}, nil, err
	}
	row.Conserved = metric.Value(localSum) == w.Total()
	if !row.Conserved {
		fmt.Fprintf(os.Stderr, "conservation: sum of local ledgers %d, want %d (drift %d)\n",
			localSum, int64(w.Total()), localSum-int64(w.Total()))
	}
	return row, dumps, nil
}

// ---------------------------------------------------------------------
// Child mode: one site, run by the parent over a stdin/stdout barrier
// ---------------------------------------------------------------------

// childMain runs one site process: build the (identical) program table,
// bring up the TCP transport, then follow the parent's barrier protocol
// — READY → GO → run local-origin arrivals → DONE → AUDIT → quiesce +
// local ledger sum → RESULT {json} → EXIT.
func childMain(stdin io.Reader, stdout io.Writer) error {
	var shared sharedConfig
	if err := json.Unmarshal([]byte(os.Getenv(envCfg)), &shared); err != nil {
		return fmt.Errorf("bad %s: %w", envCfg, err)
	}
	self := simnet.SiteID(os.Getenv(envSite))
	addrs := map[simnet.SiteID]string{}
	for _, part := range strings.Split(os.Getenv(envAddrs), ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) == 2 {
			addrs[simnet.SiteID(kv[0])] = kv[1]
		}
	}
	if addrs[self] == "" {
		return fmt.Errorf("site %q has no address in %s", self, envAddrs)
	}
	sc, err := workload.ScenarioByName(shared.Scenario)
	if err != nil {
		return err
	}
	w, err := shared.workload()
	if err != nil {
		return err
	}
	peers := make(map[simnet.SiteID]string)
	for id, a := range addrs {
		if id != self {
			peers[id] = a
		}
	}
	tn := transport.New(transport.Config{
		Listen:   map[simnet.SiteID]string{self: addrs[self]},
		Peers:    peers,
		LossRate: sc.LossRate,
		Latency:  sc.Latency,
		Jitter:   sc.Jitter,
		Seed:     shared.Seed + int64(len(peers)),
	})
	// Disjoint instance-ID ranges per process: markers are keyed
	// (inst, piece), so two processes minting from the same sequence
	// would collide in a common peer's dedup table and silently drop
	// each other's pieces.
	instBase := uint64(0)
	for i, s := range shared.Sites {
		if simnet.SiteID(s) == self {
			instBase = uint64(i+1) << 40
		}
	}
	// The child's own observability plane: a span store named after the
	// site (the merge key), a metrics registry when the parent asked for
	// per-child dumps, and the chain-stall flight recorder (dumping to
	// stderr, which the parent forwards).
	var plane *obs.Plane
	var reg *obs.Registry
	stopWatch := func() {}
	if shared.Spans || shared.MetricsDump != "" {
		if shared.MetricsDump != "" {
			reg = obs.NewRegistry()
		}
		plane = obs.NewPlane(nil, nil, reg)
		if shared.Spans {
			plane.EnableSpans(string(self), shared.SpanLimit)
			if shared.StallAfterNS > 0 {
				plane.EnableFlightRecorder("", 256)
				stopWatch = plane.StartStallWatch(time.Duration(shared.StallAfterNS), 0)
			}
		}
	}
	defer stopWatch()
	split := workload.SplitInitial(w.Initial, workload.YCSBPlacement)
	c, err := site.NewCluster(site.Config{
		Strategy:          site.ChoppedQueues,
		Placement:         workload.YCSBPlacement,
		Initial:           map[simnet.SiteID]map[storage.Key]metric.Value{self: split[self]},
		Net:               tn,
		RetransmitEvery:   5 * time.Millisecond,
		AllowCompensation: true,
		Seed:              shared.Seed,
		InstanceBase:      instBase,
		Obs:               plane,
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterPrograms(w.Programs); err != nil {
		return err
	}
	local := w.LocalPrograms(workload.YCSBPlacement, self)
	if len(local) == 0 {
		return fmt.Errorf("site %s owns no program origins; grow -types", self)
	}

	in := bufio.NewScanner(stdin)
	expect := func(want string) error {
		if !in.Scan() {
			return fmt.Errorf("parent closed stdin before %s", want)
		}
		if got := strings.TrimSpace(in.Text()); got != want {
			return fmt.Errorf("got %q, want %s", got, want)
		}
		return nil
	}
	fmt.Fprintln(stdout, "READY")
	if err := expect("GO"); err != nil {
		return err
	}
	var sched *fault.Schedule
	if sc.Script != nil {
		// Every child runs the same script with the same seed, so cuts
		// are applied (symmetrically) on both sides of each link.
		sched = sc.Script(shared.Seed, shared.siteIDs())
		sched.Run(c)
	}
	res, err := runArrivals(c, shared, sc, local, shared.Txns, shared.Rate, shared.Workers)
	if err != nil {
		return err
	}
	if sched != nil {
		sched.Stop()
	}
	fmt.Fprintln(stdout, "DONE")
	if err := expect("AUDIT"); err != nil {
		return err
	}
	localSum, err := quiesceAndSum(c, []simnet.SiteID{self})
	if err != nil {
		return err
	}
	rep := childReport{
		Offered: res.Offered, Started: res.Started, Shed: res.Shed,
		Committed: res.Committed, RolledBack: res.RolledBack,
		Compensated: res.Compensated, Errors: res.Errors,
		ElapsedNS:   int64(res.Elapsed),
		InitP50us:   float64(res.Initiation.Percentile(50).Microseconds()),
		InitP99us:   float64(res.Initiation.Percentile(99).Microseconds()),
		SettleP50us: float64(res.Settlement.Percentile(50).Microseconds()),
		SettleP99us: float64(res.Settlement.Percentile(99).Microseconds()),
		LocalSum:    int64(localSum),
	}
	data, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "RESULT "+string(data))
	if shared.Spans {
		if err := writeSpanDump(stdout, plane.Spans.Dump()); err != nil {
			return err
		}
	}
	// Flush the metrics snapshot BEFORE the EXIT barrier: once EXIT is
	// acknowledged the parent may reap the process at any point, and a
	// dump racing SIGKILL is how children used to lose their metrics.
	if shared.MetricsDump != "" {
		path := shared.MetricsDump + "." + string(self)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := reg.WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return expect("EXIT")
}

// writeSpanDump streams this process's span-store dump to the parent
// over the stdout barrier: a sized header, one span JSON per line, and
// a terminator. Line-oriented so the parent's scanner handles it with a
// bounded buffer regardless of how many spans the ring holds.
func writeSpanDump(stdout io.Writer, ps obs.ProcSpans) error {
	bw := bufio.NewWriterSize(stdout, 1<<16)
	fmt.Fprintf(bw, "SPANS %s %d %d %d\n", ps.Proc, ps.Total, ps.Evicted, len(ps.Spans))
	for _, sp := range ps.Spans {
		line, err := json.Marshal(sp)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	fmt.Fprintln(bw, "ENDSPANS")
	return bw.Flush()
}
