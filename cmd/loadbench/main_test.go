package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestMain lets the test binary serve as a loadbench child: runMulti
// re-execs os.Executable(), which under `go test` is this binary.
func TestMain(m *testing.M) {
	if os.Getenv(envChild) == "1" {
		if err := childMain(os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func loadFile(t *testing.T, path string) File {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != "asynctp/perfbench/v1" {
		t.Errorf("schema = %q, want perfbench-compatible", f.Schema)
	}
	return f
}

func checkRow(t *testing.T, r Result, wantTxns, wantProcs int) {
	t.Helper()
	if !r.Conserved {
		t.Errorf("%s/%s: not conserved", r.Suite, r.Variant)
	}
	if r.Errors != 0 {
		t.Errorf("%s/%s: %d errors", r.Suite, r.Variant, r.Errors)
	}
	if r.TPS <= 0 {
		t.Errorf("%s/%s: tps = %f", r.Suite, r.Variant, r.TPS)
	}
	if r.Txns != wantTxns {
		t.Errorf("%s/%s: txns = %d, want %d", r.Suite, r.Variant, r.Txns, wantTxns)
	}
	if r.Started != r.Committed+r.RolledBack+r.Errors {
		t.Errorf("%s/%s: started %d != outcomes %d+%d+%d",
			r.Suite, r.Variant, r.Started, r.Committed, r.RolledBack, r.Errors)
	}
	if r.Procs != wantProcs {
		t.Errorf("%s/%s: procs = %d, want %d", r.Suite, r.Variant, r.Procs, wantProcs)
	}
}

// TestRunSmokeSim drives the CLI end to end on the in-process simnet
// across every scenario.
func TestRunSmokeSim(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-quick",
		"-txns", "400",
		"-rate", "4000",
		"-types", "24",
		"-records", "120",
		"-scenarios", "baseline,degraded,partition,high-load",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := loadFile(t, out)
	if len(f.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(f.Results))
	}
	for _, r := range f.Results {
		if r.Suite != "load-open" {
			t.Errorf("suite = %q, want load-open", r.Suite)
		}
		checkRow(t, r, 400, 1)
	}
}

// TestRunSmokeTCP runs the same pipeline over TCP loopback sockets in
// closed-loop mode.
func TestRunSmokeTCP(t *testing.T) {
	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-quick",
		"-txns", "400",
		"-mode", "closed",
		"-workers", "16",
		"-net", "tcp",
		"-types", "24",
		"-records", "120",
		"-scenarios", "baseline",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := loadFile(t, out)
	if len(f.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(f.Results))
	}
	if f.Results[0].Suite != "load-closed" {
		t.Errorf("suite = %q, want load-closed", f.Results[0].Suite)
	}
	checkRow(t, f.Results[0], 400, 1)
}

// TestRunMulti spawns one OS process per site (this test binary,
// re-execed via TestMain) wired over real TCP, and checks the merged
// report: global conservation as the sum of per-process ledgers, and
// the offered stream fully accounted across children.
func TestRunMulti(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process run in -short mode")
	}
	out := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-multi",
		"-txns", "600",
		"-rate", "4000",
		"-types", "24",
		"-records", "120",
		"-scenarios", "baseline",
		"-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := loadFile(t, out)
	if len(f.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(f.Results))
	}
	checkRow(t, f.Results[0], 600, 3)
	if f.Net != "tcp-multi" {
		t.Errorf("net = %q, want tcp-multi", f.Net)
	}
}
