package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/tenant"
	"asynctp/internal/workload"
)

// tenantsConfig parameterizes loadbench's single-process multi-tenant
// mode: instead of the chopped-transaction cluster, the rig stands up
// the internal/tenant serving layer (partition-parallel runners plus
// admission control) and drives it with the shared arrival knobs. The
// tenant-selection skew is its own dial — a hot tenant, not a hot key —
// and the per-tenant request/ε budgets decide how much of the overflow
// is degraded through stale reads before shedding begins.
type tenantsConfig struct {
	Tenants     int
	Partitions  int
	Skew        float64 // Zipfian θ over tenants
	Epsilon     metric.Fuzz
	Rate        float64 // per-tenant admitted txn/s budget (0 = unlimited)
	EpsRate     float64 // per-tenant ε/s degrade allowance (0 = unlimited)
	Mode        string
	OfferedRate float64
	Txns        int
	Workers     int
	MaxInFlight int
	Seed        int64
}

// runTenantsMode builds the mix, serves it, drives it, and audits
// conservation across the partition stores. The plane (never nil here)
// collects the per-tenant admitted/degraded/shed/ε breakdown that the
// caller folds into the stderr report via plane.Summary().
func runTenantsMode(cfg tenantsConfig, plane *obs.Plane) (Result, error) {
	ws, err := workload.NewTenantMix(workload.TenantMixConfig{
		Tenants:        cfg.Tenants,
		TransferCount:  1,
		AuditCount:     1,
		Amount:         5,
		InitialBalance: 1 << 30,
		Epsilon:        cfg.Epsilon,
	})
	if err != nil {
		return Result{}, err
	}
	tenants := make([]tenant.Tenant, len(ws))
	for i, w := range ws {
		tenants[i] = tenant.Tenant{
			Name:     w.Name,
			Programs: w.Programs,
			Counts:   w.Counts,
			Initial:  w.Initial,
			Rate:     cfg.Rate,
			Burst:    4,
			EpsRate:  cfg.EpsRate,
			EpsBurst: cfg.EpsRate / 2,
		}
	}
	parts := cfg.Partitions
	if parts > cfg.Tenants {
		parts = cfg.Tenants
	}
	s, err := tenant.New(tenant.Config{
		Partitions: parts,
		Pools:      1,
		Workers:    parts,
		Method:     core.BaselineESRDC,
		Engine:     core.EngineLocking,
		Obs:        plane,
	}, tenants)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := workload.NewZipfian(rng, cfg.Tenants, cfg.Skew)
	nprogs := len(ws[0].Programs)
	pick := func(r *rand.Rand) tenant.Pick {
		return tenant.Pick{
			Tenant: fmt.Sprintf("t%d", zipf.Next()),
			TI:     r.Intn(nprogs),
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	dres := tenant.Drive(ctx, s, tenant.DriveConfig{
		OpenLoop:    cfg.Mode == "open",
		Rate:        cfg.OfferedRate,
		Total:       cfg.Txns,
		Workers:     cfg.Workers,
		MaxInFlight: cfg.MaxInFlight,
		Seed:        cfg.Seed,
		Pick:        pick,
	})

	// Conservation: transfers shuffle value inside each tenant's hot
	// pool (log counters grow by design), so the hot keys must still sum
	// to the seeded total.
	var want, got metric.Value
	for _, w := range ws {
		for key, v := range w.Initial {
			if strings.Contains(string(key), ":h") {
				want += v
			}
		}
	}
	for k := 0; k < s.Partitions(); k++ {
		st := s.Store(k)
		if st == nil {
			continue
		}
		for _, key := range st.Keys() {
			if strings.Contains(string(key), ":h") {
				got += st.Get(key)
			}
		}
	}

	row := Result{
		Suite:       "load-tenants",
		Variant:     fmt.Sprintf("theta=%.2f", cfg.Skew),
		Workers:     cfg.Workers,
		Txns:        dres.Offered,
		TPS:         dres.CommittedTPS,
		Started:     dres.Admitted,
		Shed:        dres.Shed + dres.Dropped,
		Degraded:    dres.Degraded,
		EpsCharged:  int64(dres.EpsCharged),
		Committed:   dres.Committed,
		RolledBack:  dres.RolledBack,
		Errors:      dres.Errors,
		Procs:       1,
		Net:         "local",
		OfferedRate: cfg.OfferedRate,
		Conserved:   got == want,
	}
	if dres.NormalLatency.N() > 0 {
		row.P50us = float64(dres.NormalLatency.Percentile(50).Microseconds())
		row.P99us = float64(dres.NormalLatency.Percentile(99).Microseconds())
	}
	return row, nil
}
