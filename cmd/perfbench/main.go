// Command perfbench is the hot-path regression harness: it runs the E1
// method-comparison and E5 engine-comparison bank workloads plus the
// divergence-control absorb micro-benchmark at several worker counts,
// measuring throughput, latency percentiles, and allocations per
// committed transaction. Results are written as JSON so CI can compare a
// fresh run against the committed baseline (BENCH_baseline.json).
//
// The wal suite (not in the default set; baseline BENCH_wal.json)
// benchmarks the disk driver's write-ahead log appender directly:
// fsync-per-append vs group-commit, plus the group-commit speedup ratio
// at each worker count — the number that justifies sharing one fsync
// across a commit cohort.
//
// The contention suite (not in the default set; baseline
// BENCH_contention.json) sweeps Zipfian skew θ ∈ {0.6, 0.9, 0.99} over a
// hot-key transfer stream and compares abort-retry (optimistic DC)
// against the repair engine with and without ε-skip. Ratio rows
// (variant "repair-speedup/theta=…") carry repair ÷ abort-retry
// throughput so the compare gate — and the -minspeedup assertion —
// catch a collapse of the repair win itself.
//
// The tenants suite (not in the default set; baseline
// BENCH_tenants.json) measures the multi-tenant serving layer
// (internal/tenant): partition-parallel capacity against the
// single-runner architecture ("partition-speedup", gated by
// -minpartspeedup), and ε-spend load shedding under 2× hot-tenant
// overload ("shed-headroom" = 2× uncontended p99 ÷ overload admitted
// p99, gated by -minshedheadroom).
//
// Usage:
//
//	perfbench [-suites e1,e5,absorb,wal,contention,tenants]
//	          [-workers 1,4,8,16]
//	          [-quick] [-minspeedup X]
//	          [-minpartspeedup X] [-minshedheadroom X]
//	          [-out BENCH.json] [-opdelay 50us] [-seed N]
//	          [-cpuprofile f] [-memprofile f] [-mutexprofile f]
//	          [-trace f] [-tracewall f] [-tracetext f]
//	          [-metrics addr] [-metricsdump f]
//	perfbench -compare BENCH_baseline.json BENCH_new.json
//
// Compare mode exits non-zero only on a ≥2× throughput regression; drift
// beyond ±30% is reported but tolerated (single-run numbers on shared CI
// machines are noisy — the hard gate is reserved for collapse-sized
// regressions). Baseline cells with no counterpart in the new run are
// warned about per suite — a silently skipped suite must not read as a
// green gate — but do not fail the comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"asynctp"
	"asynctp/internal/core"
	"asynctp/internal/obs"
	"asynctp/internal/profiling"
	"asynctp/internal/stats"
	"asynctp/internal/storage/wal"
	"asynctp/internal/workload"
)

// Result is one measured (suite, variant, workers) cell.
type Result struct {
	Suite   string `json:"suite"`
	Variant string `json:"variant"`
	Workers int    `json:"workers"`
	// Txns is the number of committed transactions measured.
	Txns int `json:"txns"`
	// TPS is committed transactions per second.
	TPS float64 `json:"tps"`
	// P50us and P99us are per-transaction latency percentiles (µs).
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
	// AllocsPerTxn is heap allocations per committed transaction,
	// measured with runtime.MemStats over the whole run (includes
	// harness overhead; comparable run-to-run, not an absolute).
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	// Retries counts system-abort resubmissions.
	Retries int `json:"retries"`
}

// File is the serialized benchmark report.
type File struct {
	Schema  string    `json:"schema"`
	Date    time.Time `json:"date"`
	GOOS    string    `json:"goos"`
	GOARCH  string    `json:"goarch"`
	CPUs    int       `json:"cpus"`
	Quick   bool      `json:"quick"`
	OpDelay string    `json:"op_delay"`
	Results []Result  `json:"results"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perfbench", flag.ContinueOnError)
	suitesArg := fs.String("suites", "e1,e5,absorb", "comma-separated suites: e1,e5,absorb,wal,contention,tenants")
	workersArg := fs.String("workers", "1,4,8,16", "comma-separated worker counts")
	quick := fs.Bool("quick", false, "CI mode: smaller stream, workers 1,4 unless -workers given")
	out := fs.String("out", "", "write JSON report to this file (default stdout)")
	opDelay := fs.Duration("opdelay", 50*time.Microsecond, "simulated per-operation work for e1/e5")
	seed := fs.Int64("seed", 42, "workload seed")
	minSpeedup := fs.Float64("minspeedup", 0,
		"fail unless every contention repair-speedup/theta=0.99 row is at least this ratio (0 disables)")
	minPartSpeedup := fs.Float64("minpartspeedup", 0,
		"fail unless every tenants partition-speedup row is at least this ratio (0 disables)")
	minShedHeadroom := fs.Float64("minshedheadroom", 0,
		"fail unless every tenants shed-headroom row is at least this ratio (0 disables)")
	compare := fs.Bool("compare", false, "compare two report files: perfbench -compare old.json new.json")
	prof := profiling.Register(fs)
	obsFlags := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compare {
		if fs.NArg() != 2 {
			return fmt.Errorf("-compare needs exactly two report files")
		}
		return compareFiles(fs.Arg(0), fs.Arg(1))
	}

	workersDefault := !flagSet(fs, "workers")
	var workers []int
	src := *workersArg
	if *quick && workersDefault {
		src = "1,4"
	}
	for _, part := range strings.Split(src, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad worker count %q", part)
		}
		workers = append(workers, n)
	}

	stopProfiles, err := prof.Start()
	if err != nil {
		return err
	}
	plane, stopObs, err := obsFlags.Build()
	if err != nil {
		return err
	}

	file := &File{
		Schema:  "asynctp/perfbench/v1",
		Date:    time.Now().UTC(),
		GOOS:    runtime.GOOS,
		GOARCH:  runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		Quick:   *quick,
		OpDelay: opDelay.String(),
	}
	for _, suite := range strings.Split(*suitesArg, ",") {
		suite = strings.TrimSpace(suite)
		for _, w := range workers {
			var (
				res []Result
				err error
			)
			switch suite {
			case "e1":
				res, err = runE1(w, *quick, *opDelay, *seed, plane)
			case "e5":
				res, err = runE5(w, *quick, *opDelay, *seed, plane)
			case "absorb":
				res, err = runAbsorb(w, *quick, plane)
			case "wal":
				res, err = runWAL(w, *quick)
			case "contention":
				res, err = runContention(w, *quick, *seed, plane)
			case "tenants":
				res, err = runTenants(w, *quick, *seed, plane)
			default:
				err = fmt.Errorf("unknown suite %q", suite)
			}
			if err != nil {
				return fmt.Errorf("%s/workers=%d: %w", suite, w, err)
			}
			file.Results = append(file.Results, res...)
			for _, r := range res {
				fmt.Fprintf(os.Stderr, "%-8s %-12s workers=%-3d %9.0f txn/s  p50=%6.0fµs p99=%6.0fµs  %5.1f allocs/txn\n",
					r.Suite, r.Variant, r.Workers, r.TPS, r.P50us, r.P99us, r.AllocsPerTxn)
			}
		}
	}
	if err := stopProfiles(); err != nil {
		return err
	}
	if *minSpeedup > 0 {
		if err := checkMinSpeedup(file.Results, *minSpeedup); err != nil {
			return err
		}
	}
	if *minPartSpeedup > 0 {
		if err := checkMinRatio(file.Results, "tenants", "partition-speedup", *minPartSpeedup); err != nil {
			return err
		}
	}
	if *minShedHeadroom > 0 {
		if err := checkMinRatio(file.Results, "tenants", "shed-headroom", *minShedHeadroom); err != nil {
			return err
		}
	}
	if plane != nil {
		for _, line := range plane.Summary() {
			fmt.Fprintln(os.Stderr, "obs:", line)
		}
	}
	if err := stopObs(); err != nil {
		return err
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// flagSet reports whether a flag was explicitly provided.
func flagSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// bankFor builds the shared E1/E5 bank workload.
func bankFor(quick bool, seed int64) (*workload.Workload, error) {
	transfers, audits := 20, 10
	if quick {
		transfers, audits = 10, 4
	}
	return workload.NewBank(workload.BankConfig{
		Branches: 1, AccountsPerBranch: 4,
		InitialBalance: 1 << 30, TransferAmount: 100,
		TransferTypes: 2, TransferCount: transfers, AuditCount: audits,
		Epsilon: 8000, IntraBranch: true, Seed: seed,
	})
}

// measureWorkload runs one (method, engine) bank configuration and
// converts the workload result plus alloc counters into a Result.
func measureWorkload(suite, variant string, method core.Method, engine core.EngineKind,
	w *workload.Workload, workers int, opDelay time.Duration, seed int64, plane *obs.Plane) (Result, error) {
	cfg := workload.ConfigFor(w, method, core.Static, false)
	cfg.OpDelay = opDelay
	cfg.Engine = engine
	cfg.Obs = plane
	r, err := core.NewRunner(cfg)
	if err != nil {
		return Result{}, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := workload.Run(context.Background(), r, w, workers, seed)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Result{}, err
	}
	out := Result{
		Suite:   suite,
		Variant: variant,
		Workers: workers,
		Txns:    res.Committed,
		TPS:     res.ThroughputTPS,
		Retries: res.Retries,
	}
	if res.Latency.N() > 0 {
		out.P50us = float64(res.Latency.Percentile(50).Microseconds())
		out.P99us = float64(res.Latency.Percentile(99).Microseconds())
	}
	if res.Committed > 0 {
		out.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(res.Committed)
	}
	return out, nil
}

// runE1 is the Section 5 method comparison: the three headline methods
// on the contended bank stream.
func runE1(workers int, quick bool, opDelay time.Duration, seed int64, plane *obs.Plane) ([]Result, error) {
	methods := []core.Method{core.BaselineSRCC, core.BaselineESRDC, core.Method1SRChopDC}
	var out []Result
	for _, m := range methods {
		w, err := bankFor(quick, seed)
		if err != nil {
			return nil, err
		}
		r, err := measureWorkload("e1", m.String(), m, core.EngineLocking, w, workers, opDelay, seed, plane)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// runE5 is the engine-family comparison: locking vs optimistic vs
// timestamp divergence control on the same stream.
func runE5(workers int, quick bool, opDelay time.Duration, seed int64, plane *obs.Plane) ([]Result, error) {
	engines := []core.EngineKind{core.EngineLocking, core.EngineOptimistic, core.EngineTimestamp}
	var out []Result
	for _, e := range engines {
		w, err := bankFor(quick, seed)
		if err != nil {
			return nil, err
		}
		r, err := measureWorkload("e5", e.String(), core.BaselineESRDC, e, w, workers, opDelay, seed, plane)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// contentionThetas is the Zipfian skew sweep: mild, skewed, and the
// classic YCSB hot-spot where nearly every transfer hits the same keys.
var contentionThetas = []float64{0.6, 0.9, 0.99}

// contentionReps mirrors absorbReps: best-of-N suppresses scheduler
// hiccups on shared runners without hiding real regressions.
const contentionReps = 3

// contentionOpDelay is the per-op work for the contention suite. Unlike
// e1/e5 it sits at SimWork's sleep scale on purpose: the suite measures
// how engines handle overlapping transactions, and ops that model
// blocking work (I/O, messages — the paper's asynchronous setting) let
// workers overlap even on a single-core runner, where sub-millisecond
// spinning work would serialize the stream and hide the contention
// entirely. It deliberately ignores -opdelay so the committed baseline
// is reproducible.
const contentionOpDelay = time.Millisecond

// runContention sweeps Zipfian skew over the hot-key transfer stream and
// compares abort-retry (optimistic DC) against the repair engine with
// and without ε-skip. At each θ it adds a dimensionless
// "repair-speedup/theta=…" row (repair ÷ abort-retry throughput): under
// heavy skew the abort-retry engine redoes whole transactions per
// validation failure while repair re-executes only the stale hot ops,
// and the ratio row is what the -compare gate and -minspeedup hold on to.
func runContention(workers int, quick bool, seed int64, plane *obs.Plane) ([]Result, error) {
	transfers, audits := 60, 16
	if quick {
		transfers, audits = 25, 8
	}
	engines := []core.EngineKind{core.EngineOptimistic, core.EngineRepair, core.EngineRepairSkip}
	var out []Result
	for _, theta := range contentionThetas {
		w, err := workload.NewContention(workload.ContentionConfig{
			Keys: 8, Theta: theta,
			TransferTypes: 8, TransferCount: transfers,
			AuditCount: audits, AuditSpan: 0,
			Amount: 10, InitialBalance: 1 << 30,
			Epsilon: 50000, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		byEngine := make(map[core.EngineKind]Result, len(engines))
		for _, e := range engines {
			variant := fmt.Sprintf("%s/theta=%.2f", e, theta)
			best := Result{}
			for rep := 0; rep < contentionReps; rep++ {
				r, err := measureWorkload("contention", variant, core.BaselineESRDC, e, w, workers, contentionOpDelay, seed, plane)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", variant, err)
				}
				if r.TPS > best.TPS {
					best = r
				}
			}
			byEngine[e] = best
			out = append(out, best)
		}
		ratio := Result{
			Suite:   "contention",
			Variant: fmt.Sprintf("repair-speedup/theta=%.2f", theta),
			Workers: workers,
			Txns:    byEngine[core.EngineRepair].Txns,
		}
		if abortRetry := byEngine[core.EngineOptimistic].TPS; abortRetry > 0 {
			ratio.TPS = byEngine[core.EngineRepair].TPS / abortRetry
		}
		out = append(out, ratio)
	}
	return out, nil
}

// checkMinSpeedup enforces the ISSUE acceptance bar: at the YCSB
// hot-spot skew the repair engine must beat abort-retry by the given
// factor. It fails if no θ=0.99 ratio row was produced (e.g. the
// contention suite was not in -suites), so the CI gate cannot silently
// pass by not measuring.
func checkMinSpeedup(results []Result, min float64) error {
	checked := 0
	for _, r := range results {
		if r.Suite != "contention" || !strings.HasPrefix(r.Variant, "repair-speedup/theta=0.99") {
			continue
		}
		checked++
		if r.TPS < min {
			return fmt.Errorf("contention %s workers=%d: repair speedup %.2fx < required %.2fx",
				r.Variant, r.Workers, r.TPS, min)
		}
		fmt.Fprintf(os.Stderr, "minspeedup: %s workers=%d %.2fx >= %.2fx ok\n",
			r.Variant, r.Workers, r.TPS, min)
	}
	if checked == 0 {
		return fmt.Errorf("-minspeedup set but no contention repair-speedup/theta=0.99 rows were measured")
	}
	return nil
}

// checkMinRatio enforces a floor on a suite's ratio rows (variants with
// the given prefix carry their ratio in the TPS field). Like
// checkMinSpeedup it fails when no matching row was measured, so a gate
// cannot silently pass by not running its suite.
func checkMinRatio(results []Result, suite, variantPrefix string, min float64) error {
	checked := 0
	for _, r := range results {
		if r.Suite != suite || !strings.HasPrefix(r.Variant, variantPrefix) {
			continue
		}
		checked++
		if r.TPS < min {
			return fmt.Errorf("%s %s workers=%d: ratio %.2fx < required %.2fx",
				suite, r.Variant, r.Workers, r.TPS, min)
		}
		fmt.Fprintf(os.Stderr, "min %s: %s workers=%d %.2fx >= %.2fx ok\n",
			variantPrefix, r.Variant, r.Workers, r.TPS, min)
	}
	if checked == 0 {
		return fmt.Errorf("-min gate set but no %s %s rows were measured", suite, variantPrefix)
	}
	return nil
}

// runAbsorb is the divergence-control absorb micro-benchmark: an update
// stream holding a hot key while an audit stream reads through it, all
// conflicts absorbed (unbounded ε). No simulated op work — this measures
// the arbitration hot path itself.
// absorbReps is how many times each absorb measurement repeats; the
// best repetition is reported. The absorb suite has no simulated op
// work, so a single pass lasts well under a second and a scheduler
// hiccup on a shared 1-core runner can halve one pass's throughput —
// best-of-N suppresses those dips without hiding real regressions
// (a real regression slows every repetition).
const absorbReps = 3

func runAbsorb(workers int, quick bool, plane *obs.Plane) ([]Result, error) {
	total := 200000
	if quick {
		total = 50000
	}
	best := Result{}
	for rep := 0; rep < absorbReps; rep++ {
		res, err := runAbsorbOnce(workers, total, plane)
		if err != nil {
			return nil, err
		}
		if res.TPS > best.TPS {
			best = res
		}
	}
	return []Result{best}, nil
}

func runAbsorbOnce(workers, total int, plane *obs.Plane) (Result, error) {
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{"x": 1 << 40, "y": 0})
	r, err := asynctp.NewRunner(asynctp.Config{
		Method: asynctp.BaselineESRDC,
		Store:  store,
		Obs:    plane,
		Programs: []*asynctp.Program{
			asynctp.MustProgram("xfer",
				asynctp.AddOp("x", -1), asynctp.AddOp("y", 1)).WithSpec(asynctp.Unbounded),
			asynctp.MustProgram("audit",
				asynctp.ReadOp("x"), asynctp.ReadOp("y")).WithSpec(asynctp.Unbounded),
		},
		Counts: []int{1 << 20, 1 << 20},
	})
	if err != nil {
		return Result{}, err
	}
	ctx := context.Background()
	lat := stats.NewRecorder()
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	perWorker := total / workers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				t0 := time.Now()
				_, err := r.Submit(ctx, (id+j)%2)
				d := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				lat.Add(d)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		return Result{}, firstErr
	}
	n := perWorker * workers
	res := Result{
		Suite:   "absorb",
		Variant: "esr-dc",
		Workers: workers,
		Txns:    n,
		TPS:     float64(n) / elapsed.Seconds(),
		P50us:   float64(lat.Percentile(50).Microseconds()),
		P99us:   float64(lat.Percentile(99).Microseconds()),
	}
	if n > 0 {
		res.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return res, nil
}

// runWAL benchmarks the disk driver's WAL appender in its two durability
// modes on the same record stream: fsync-per-append (SyncEvery <= 0,
// every commit pays a full fsync) vs group-commit (a 200µs window shares
// one fsync across the cohort of concurrent appenders). A third
// dimensionless row reports the speedup ratio group-commit/fsync-each so
// the compare gate catches a collapse of the batching win itself, not
// just absolute drift. At workers=1 the ratio is expected to sit below
// 1 — a lone appender pays the window latency with nobody to share the
// fsync — which is exactly the tradeoff the row documents.
func runWAL(workers int, quick bool) ([]Result, error) {
	total := 2000
	if quick {
		total = 800
	}
	each, err := runWALBest("fsync-each", 0, workers, total)
	if err != nil {
		return nil, err
	}
	group, err := runWALBest("group-commit", 200*time.Microsecond, workers, total)
	if err != nil {
		return nil, err
	}
	ratio := Result{Suite: "wal", Variant: "speedup", Workers: workers, Txns: group.Txns}
	if each.TPS > 0 {
		ratio.TPS = group.TPS / each.TPS
	}
	return []Result{each, group, ratio}, nil
}

// walReps mirrors absorbReps: a single WAL pass is fsync-bound and
// short, so one scheduler hiccup can halve a pass; best-of-N suppresses
// the dips without hiding a real regression.
const walReps = 3

func runWALBest(variant string, window time.Duration, workers, total int) (Result, error) {
	best := Result{}
	for rep := 0; rep < walReps; rep++ {
		res, err := runWALOnce(variant, window, workers, total)
		if err != nil {
			return Result{}, err
		}
		if res.TPS > best.TPS {
			best = res
		}
	}
	return best, nil
}

// runWALOnce appends total batch records (shaped like a settled piece
// commit: two account deltas, an applied marker, a watermark) from
// workers concurrent goroutines and reports durable appends per second.
func runWALOnce(variant string, window time.Duration, workers, total int) (Result, error) {
	dir, err := os.MkdirTemp("", "perfbench-wal-*")
	if err != nil {
		return Result{}, err
	}
	defer os.RemoveAll(dir)
	opts := []wal.Option{wal.WithSegmentBytes(8 << 20)}
	if window > 0 {
		opts = append(opts, wal.WithGroupCommit(window, 256))
	}
	w, err := wal.Open(dir, opts...)
	if err != nil {
		return Result{}, err
	}
	defer w.Close()

	lat := stats.NewRecorder()
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	perWorker := total / workers
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				lsn := uint64(id*perWorker + j + 1)
				rec := wal.BatchRecord(lsn, []wal.KV{
					{Key: "acct/A", Val: int64(j)},
					{Key: "acct/B", Val: -int64(j)},
					{Key: "__applied/1/2", Val: 1},
					{Key: "__wm/NY", Val: int64(lsn)},
				})
				t0 := time.Now()
				err := w.Append(rec)
				d := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				lat.Add(d)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if firstErr != nil {
		return Result{}, firstErr
	}
	n := perWorker * workers
	res := Result{
		Suite:   "wal",
		Variant: variant,
		Workers: workers,
		Txns:    n,
		TPS:     float64(n) / elapsed.Seconds(),
		P50us:   float64(lat.Percentile(50).Microseconds()),
		P99us:   float64(lat.Percentile(99).Microseconds()),
	}
	if n > 0 {
		res.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(n)
	}
	return res, nil
}

// ---------------------------------------------------------------------
// Compare mode: the CI regression gate.
// ---------------------------------------------------------------------

// driftTolerance is the report-only drift band: single-run numbers on a
// shared machine wobble, so ±30% only warns.
const driftTolerance = 0.30

// failFactor is the hard gate: new throughput below old/2 fails the run.
const failFactor = 2.0

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func key(r Result) string {
	return fmt.Sprintf("%s/%s/workers=%d", r.Suite, r.Variant, r.Workers)
}

func compareFiles(oldPath, newPath string) error {
	oldF, err := loadFile(oldPath)
	if err != nil {
		return err
	}
	newF, err := loadFile(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldF.Results))
	for _, r := range oldF.Results {
		oldBy[key(r)] = r
	}
	newKeys := make(map[string]bool, len(newF.Results))
	for _, r := range newF.Results {
		newKeys[key(r)] = true
	}
	// Baseline coverage: a suite present in the baseline but absent from
	// the run usually means a CI invocation drifted (-suites or -workers
	// narrowed) and its gate silently stopped measuring. Warn — grouped
	// per suite, tolerated — so the drift is visible without failing
	// deliberate partial runs.
	missingBySuite := make(map[string]int)
	for _, or := range oldF.Results {
		if !newKeys[key(or)] {
			missingBySuite[or.Suite]++
		}
	}
	for suite, n := range missingBySuite {
		fmt.Printf("WARN    suite %q: %d baseline cell(s) not present in this run (gate not exercised)\n", suite, n)
	}
	failures := 0
	for _, nr := range newF.Results {
		or, ok := oldBy[key(nr)]
		if !ok {
			fmt.Printf("NEW     %-40s %9.0f txn/s (no baseline)\n", key(nr), nr.TPS)
			continue
		}
		if or.TPS <= 0 {
			continue
		}
		ratio := nr.TPS / or.TPS
		status := "ok"
		switch {
		case ratio < 1/failFactor:
			status = "FAIL"
			failures++
		case ratio < 1-driftTolerance:
			status = "slower (tolerated)"
		case ratio > 1+driftTolerance:
			status = "faster"
		}
		fmt.Printf("%-7s %-40s %9.0f -> %9.0f txn/s  (%.2fx)\n", status, key(nr), or.TPS, nr.TPS, ratio)
	}
	if failures > 0 {
		return fmt.Errorf("%d cell(s) regressed by more than %.0fx", failures, failFactor)
	}
	return nil
}
