package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckMinRatio(t *testing.T) {
	rows := []Result{
		{Suite: "tenants", Variant: "partition-speedup/parts=8", Workers: 8, TPS: 4.5},
		{Suite: "tenants", Variant: "shed-headroom", Workers: 8, TPS: 1.7},
		{Suite: "tenants", Variant: "uncontended", Workers: 8, TPS: 400},
	}
	if err := checkMinRatio(rows, "tenants", "partition-speedup", 3); err != nil {
		t.Errorf("4.5x vs floor 3: %v", err)
	}
	if err := checkMinRatio(rows, "tenants", "shed-headroom", 1); err != nil {
		t.Errorf("1.7 vs floor 1: %v", err)
	}
	if err := checkMinRatio(rows, "tenants", "partition-speedup", 5); err == nil {
		t.Error("4.5x vs floor 5 must fail")
	}
	// A gate whose rows were never measured must fail loudly, not pass.
	if err := checkMinRatio(rows, "tenants", "no-such-variant", 1); err == nil {
		t.Error("gate with zero matching rows must fail")
	}
	if err := checkMinRatio(nil, "tenants", "partition-speedup", 1); err == nil {
		t.Error("gate over an empty result set must fail")
	}
}

func writeBenchFile(t *testing.T, path string, results []Result) {
	t.Helper()
	data, err := json.Marshal(File{Schema: "asynctp/perfbench/v1", Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns what it printed.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	saved := os.Stdout
	os.Stdout = w
	ferr := fn()
	os.Stdout = saved
	w.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String(), ferr
}

func TestCompareWarnsOnMissingSuite(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, []Result{
		{Suite: "e1", Variant: "base", Workers: 8, TPS: 1000},
		{Suite: "tenants", Variant: "partition-speedup/parts=8", Workers: 8, TPS: 4.5},
		{Suite: "tenants", Variant: "shed-headroom", Workers: 8, TPS: 1.5},
	})
	writeBenchFile(t, newPath, []Result{
		{Suite: "e1", Variant: "base", Workers: 8, TPS: 980},
	})
	out, err := captureStdout(t, func() error { return compareFiles(oldPath, newPath) })
	if err != nil {
		t.Fatalf("missing suite must warn, not fail: %v", err)
	}
	if !strings.Contains(out, `WARN    suite "tenants": 2 baseline cell(s)`) {
		t.Errorf("want grouped tenants WARN line, got:\n%s", out)
	}
	if strings.Contains(out, `suite "e1"`) && strings.Contains(out, "WARN    suite \"e1\"") {
		t.Errorf("covered suite must not be warned about:\n%s", out)
	}
}

func TestCompareFailsOnCollapse(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchFile(t, oldPath, []Result{{Suite: "e1", Variant: "base", Workers: 8, TPS: 1000}})
	writeBenchFile(t, newPath, []Result{{Suite: "e1", Variant: "base", Workers: 8, TPS: 400}})
	if _, err := captureStdout(t, func() error { return compareFiles(oldPath, newPath) }); err == nil {
		t.Error("a >2x collapse must fail the comparison")
	}
}
