package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/storage"
	"asynctp/internal/tenant"
	"asynctp/internal/workload"
)

// The tenants suite measures the multi-tenant serving layer: N
// key-disjoint tenants, each a mini-bank of hot-pair transfers plus an
// ε-tolerant audit, served through internal/tenant. Execution is serial
// per partition — the layer's whole concurrency model — so the capacity
// question is what partition-parallelism buys: the same serial-runner
// server with 1 partition versus 8, on the same offered stream. At
// sleep-scale op delays the partitions' blocking ops overlap even on
// one core, which is exactly the asynchronous-processing setting the
// paper targets.
//
// Rows per worker count:
//
//	single-runner          the layer with 1 partition: one serial
//	                       runner, the pre-partitioning architecture
//	partitioned/parts=8    the same mix and clients over 8 partitions
//	partition-speedup/...  ratio of the two (the -minpartspeedup gate)
//	uncontended            open loop at 0.4× measured capacity, uniform
//	                       tenant load, admission budgets engaged
//	overload-shed/...      open loop at 2× capacity with θ=0.99 tenant
//	                       skew, same budgets: the hot tenant burns its
//	                       rate slice, degrades queries through its ε
//	                       allowance, and sheds the rest
//	shed-headroom          (2 × uncontended p99) ÷ overload admitted
//	                       p99; ≥ 1 means ε-spend shedding kept
//	                       admitted-transaction latency within 2× of
//	                       the uncontended box (-minshedheadroom gate)
//
// Ratio rows carry the ratio in the TPS field (bigger = better), so the
// -compare collapse gate guards them like any throughput cell. Every
// serving-layer row hard-fails on the conservation audit across the
// partition stores, and the open-loop rows additionally audit each
// tenant's charged ε against its declared spend budget.

// tenantsOpDelay mirrors contentionOpDelay: per-op work at SimWork's
// sleep scale, so ops model blocking work and overlap even on a
// single-core runner. It deliberately ignores -opdelay so the committed
// baseline is reproducible.
const tenantsOpDelay = time.Millisecond

const (
	tenantsCount     = 16
	tenantsParts     = 8
	tenantsPools     = 2
	tenantsTheta     = 0.99
	tenantsAuditFrac = 8    // one audit per this many picks
	tenantsEpsilon   = 5000 // ε-spec of the mix's transfers and audits
)

// tenantsMix builds the per-tenant workloads shared by every row.
func tenantsMix() ([]*workload.Workload, error) {
	return workload.NewTenantMix(workload.TenantMixConfig{
		Tenants:       tenantsCount,
		HotKeys:       2,
		TransferTypes: 2,
		TransferCount: 64,
		AuditCount:    16,
		Amount:        10, InitialBalance: 1 << 30,
		Epsilon: tenantsEpsilon,
	})
}

// tenantsBudget is the per-tenant admission configuration the open-loop
// rows share. Budgets are sized from measured capacity — not from the
// offered rate — so overload cannot buy extra admission: each tenant
// keeps roughly its fair slice of the box on the normal path, with a
// small burst so queues stay short, and may spend ε on degraded reads
// beyond it.
type tenantsBudget struct {
	rate, burst       float64
	epsRate, epsBurst float64
}

func budgetFor(capacity float64) tenantsBudget {
	return tenantsBudget{
		// 0.55 × capacity total keeps per-partition utilisation low
		// enough that admitted requests see near-empty mailboxes.
		rate:  0.55 * capacity / tenantsCount,
		burst: 2,
		// Enough ε/sec to degrade a few dozen audits: the hot tenant's
		// overflow queries get stale answers instead of rejections.
		epsRate:  40 * tenantsEpsilon,
		epsBurst: 20 * tenantsEpsilon,
	}
}

// tenantsPick draws (tenant, program) with the given tenant skew: a
// Zipfian over tenants (θ=0 uniform) and an audit every
// tenantsAuditFrac-th pick, transfers otherwise.
func tenantsPick(zipf *workload.Zipfian, nprogs int) func(*rand.Rand) tenant.Pick {
	n := 0
	return func(rng *rand.Rand) tenant.Pick {
		t := zipf.Next()
		n++
		ti := rng.Intn(nprogs - 1) // transfer types
		if n%tenantsAuditFrac == 0 {
			ti = nprogs - 1 // the audit is always the last program
		}
		return tenant.Pick{Tenant: fmt.Sprintf("t%d", t), TI: ti}
	}
}

// tenantsServe builds the serving layer over the mix with the given
// partition count and admission budgets (zero budget = unlimited).
func tenantsServe(ws []*workload.Workload, parts int, b tenantsBudget, plane *obs.Plane) (*tenant.Serve, error) {
	tenants := make([]tenant.Tenant, len(ws))
	for i, w := range ws {
		tenants[i] = tenant.Tenant{
			Name:     w.Name,
			Programs: w.Programs,
			Counts:   w.Counts,
			Initial:  w.Initial,
			Rate:     b.rate, Burst: b.burst,
			EpsRate: b.epsRate, EpsBurst: b.epsBurst,
		}
	}
	pools := tenantsPools
	if parts < pools {
		pools = parts
	}
	return tenant.New(tenant.Config{
		Partitions: parts,
		Pools:      pools,
		Workers:    parts,
		Method:     core.BaselineESRDC,
		Engine:     core.EngineLocking,
		OpDelay:    tenantsOpDelay,
		Obs:        plane,
		// Deterministic balanced placement: tenant i on partition
		// i % parts.
		Assign: func(name string) int {
			var i int
			fmt.Sscanf(name, "t%d", &i)
			return i % parts
		},
	}, tenants)
}

// tenantsAudit verifies conservation across the layer's partition
// stores: transfers only shuffle value inside each tenant's hot pool
// (the log counters grow by design), so the hot keys must still sum to
// the seeded total.
func tenantsAudit(s *tenant.Serve, ws []*workload.Workload) error {
	hot := func(key storage.Key) bool { return strings.Contains(string(key), ":h") }
	var want metric.Value
	for _, w := range ws {
		for key, v := range w.Initial {
			if hot(key) {
				want += v
			}
		}
	}
	var got metric.Value
	for k := 0; k < s.Partitions(); k++ {
		st := s.Store(k)
		if st == nil {
			continue
		}
		for _, key := range st.Keys() {
			if hot(key) {
				got += st.Get(key)
			}
		}
	}
	if got != want {
		return fmt.Errorf("conservation audit: hot accounts sum to %d, want %d", got, want)
	}
	return nil
}

// tenantsReps mirrors contentionReps: best-of-N suppresses scheduler
// hiccups on a shared 1-core runner without hiding real regressions.
const tenantsReps = 2

// runTenants produces the suite's six rows for one worker count.
func runTenants(workers int, quick bool, seed int64, plane *obs.Plane) ([]Result, error) {
	total := 600
	if quick {
		total = 300
	}

	single, err := runTenantsClosed("single-runner", 1, workers, total, seed, plane)
	if err != nil {
		return nil, err
	}
	part, err := runTenantsClosed(fmt.Sprintf("partitioned/parts=%d", tenantsParts),
		tenantsParts, workers, total, seed, plane)
	if err != nil {
		return nil, err
	}
	ratio := Result{
		Suite:   "tenants",
		Variant: fmt.Sprintf("partition-speedup/parts=%d", tenantsParts),
		Workers: workers,
		Txns:    part.Txns,
	}
	if single.TPS > 0 {
		ratio.TPS = part.TPS / single.TPS
	}
	out := []Result{single, part, ratio}

	// Rows 4–6: the shedding story, driven open-loop off the measured
	// partitioned capacity so the offered rates track the machine, with
	// identical per-tenant budgets on both rows — only the offered load
	// and skew differ.
	capacity := part.TPS
	if capacity <= 0 {
		return nil, fmt.Errorf("tenants: partitioned capacity measured as 0")
	}
	budget := budgetFor(capacity)
	uncontended, err := runTenantsOpenLoop("uncontended", 0, capacity*0.4, total*2, workers, budget, seed, plane)
	if err != nil {
		return nil, err
	}
	overload, err := runTenantsOpenLoop(fmt.Sprintf("overload-shed/theta=%.2f", tenantsTheta),
		tenantsTheta, capacity*2, total*3, workers, budget, seed, plane)
	if err != nil {
		return nil, err
	}
	headroom := Result{
		Suite:   "tenants",
		Variant: "shed-headroom",
		Workers: workers,
		Txns:    overload.Txns,
	}
	if overload.P99us > 0 {
		headroom.TPS = 2 * uncontended.P99us / overload.P99us
	}
	return append(out, uncontended, overload, headroom), nil
}

// runTenantsClosed measures serving capacity at the given partition
// count: a closed loop of `workers` clients drawing uniform tenant
// picks, admission wide open. Best of tenantsReps.
func runTenantsClosed(variant string, parts, workers, total int, seed int64, plane *obs.Plane) (Result, error) {
	best := Result{}
	for rep := 0; rep < tenantsReps; rep++ {
		r, err := runTenantsClosedOnce(variant, parts, workers, total, seed+int64(rep), plane)
		if err != nil {
			return Result{}, err
		}
		if r.TPS > best.TPS {
			best = r
		}
	}
	return best, nil
}

func runTenantsClosedOnce(variant string, parts, workers, total int, seed int64, plane *obs.Plane) (Result, error) {
	ws, err := tenantsMix()
	if err != nil {
		return Result{}, err
	}
	s, err := tenantsServe(ws, parts, tenantsBudget{}, plane)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(seed))
	zipf := workload.NewZipfian(rng, tenantsCount, 0) // uniform: capacity is a balanced-load property
	dres := tenant.Drive(context.Background(), s, tenant.DriveConfig{
		Total:   total,
		Workers: workers,
		Seed:    seed,
		Pick:    tenantsPick(zipf, len(ws[0].Programs)),
	})
	if dres.Errors > 0 || dres.Shed > 0 {
		return Result{}, fmt.Errorf("%s: %d errors, %d shed on an unlimited run", variant, dres.Errors, dres.Shed)
	}
	if err := tenantsAudit(s, ws); err != nil {
		return Result{}, fmt.Errorf("%s: %w", variant, err)
	}
	out := Result{
		Suite:   "tenants",
		Variant: variant,
		Workers: workers,
		Txns:    dres.Committed,
		TPS:     dres.CommittedTPS,
		Retries: dres.Retries,
	}
	if dres.NormalLatency.N() > 0 {
		out.P50us = float64(dres.NormalLatency.Percentile(50).Microseconds())
		out.P99us = float64(dres.NormalLatency.Percentile(99).Microseconds())
	}
	return out, nil
}

// runTenantsOpenLoop measures the serving layer under Poisson arrivals
// at the given rate with per-tenant admission budgets engaged. θ=0
// offers uniform tenant load; θ=0.99 is the hot-tenant overload. The
// reported latency is the admitted (normal-path) committed p99 — the
// number the shed-headroom gate holds on to; degraded serves are
// µs-scale and recorded separately so they cannot flatter it. The run
// hard-fails on conservation or per-tenant ε budget violations.
func runTenantsOpenLoop(variant string, theta, rate float64, total, workers int,
	b tenantsBudget, seed int64, plane *obs.Plane) (Result, error) {
	ws, err := tenantsMix()
	if err != nil {
		return Result{}, err
	}
	s, err := tenantsServe(ws, tenantsParts, b, plane)
	if err != nil {
		return Result{}, err
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(seed))
	zipf := workload.NewZipfian(rng, tenantsCount, theta)
	dres := tenant.Drive(context.Background(), s, tenant.DriveConfig{
		OpenLoop: true,
		Rate:     rate,
		Total:    total,
		Workers:  workers,
		Seed:     seed,
		Pick:     tenantsPick(zipf, len(ws[0].Programs)),
	})
	if dres.Errors > 0 {
		return Result{}, fmt.Errorf("%s: %d submit errors", variant, dres.Errors)
	}
	if err := tenantsAudit(s, ws); err != nil {
		return Result{}, fmt.Errorf("%s: %w", variant, err)
	}
	// Per-tenant ε budget audit: no tenant's charged divergence may
	// exceed its declared spend allowance over the run.
	decl := tenant.Tenant{EpsRate: b.epsRate, EpsBurst: b.epsBurst}
	for name, st := range s.Stats().Tenants {
		if !st.Allowed(decl, dres.Elapsed) {
			return Result{}, fmt.Errorf("%s: tenant %s ε budget audit failed: charged %d over %v",
				variant, name, st.EpsCharged, dres.Elapsed)
		}
	}
	out := Result{
		Suite:   "tenants",
		Variant: variant,
		Workers: workers,
		Txns:    dres.Committed,
		TPS:     dres.CommittedTPS,
		Retries: dres.Retries,
	}
	if dres.NormalLatency.N() > 0 {
		out.P50us = float64(dres.NormalLatency.Percentile(50).Microseconds())
		out.P99us = float64(dres.NormalLatency.Percentile(99).Microseconds())
	}
	fmt.Fprintf(os.Stderr, "tenants %-24s offered=%d admitted=%d degraded=%d shed=%d dropped=%d ε=%d\n",
		variant, dres.Offered, dres.Admitted, dres.Degraded, dres.Shed, dres.Dropped, dres.EpsCharged)
	return out, nil
}
