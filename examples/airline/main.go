// Airline: the reservation workload motivating rollback-safety. A
// reservation checks availability and may roll back ("sold out"), so
// any chopping must keep the check in the first piece; the booking
// counter update can then commit asynchronously. The example oversells
// a small flight on purpose: exactly Seats reservations commit, the
// rest roll back, and the seats+booked invariant holds throughout —
// while a load-factor query runs under ESR with a small ε.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"asynctp"
)

const (
	seats    = 25
	attempts = 40
	epsilon  = 10 // the query tolerates being ±10 bookings stale
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{
		"seats":  seats,
		"booked": 0,
	})

	// A reservation decrements seats unless sold out, then increments
	// the booking counter. The rollback statement is in the FIRST op, so
	// the finest rollback-safe chopping may split the counter update off.
	reserve := asynctp.MustProgram("reserve",
		asynctp.WithAbortIf(
			asynctp.AddOp("seats", -1),
			func(v asynctp.Value) bool { return v <= 0 },
		),
		asynctp.AddOp("booked", 1),
	).WithSpec(asynctp.SpecOf(epsilon))

	loadFactor := asynctp.MustProgram("loadfactor",
		asynctp.ReadOp("seats"),
		asynctp.ReadOp("booked"),
	).WithSpec(asynctp.Spec{Import: asynctp.LimitOf(epsilon), Export: asynctp.LimitOf(0)})

	runner, err := asynctp.NewRunner(asynctp.Config{
		Method:   asynctp.Method1SRChopDC,
		Store:    store,
		Programs: []*asynctp.Program{reserve, loadFactor},
		Counts:   []int{attempts, 6},
	})
	if err != nil {
		return err
	}

	fmt.Println("chopping:")
	for ti := 0; ti < runner.Set().NumTxns(); ti++ {
		c := runner.Set().Chopping(ti)
		fmt.Printf("  %-10s → %d piece(s)\n", runner.Set().Original(ti).Name, c.NumPieces())
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed, soldOut := 0, 0
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := runner.Submit(ctx, 0)
			if err != nil {
				log.Printf("reserve: %v", err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if res.RolledBack {
				soldOut++
			} else if res.Committed {
				committed++
			}
		}()
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := runner.Submit(ctx, 1)
			if err != nil {
				log.Printf("query: %v", err)
				return
			}
			fmt.Printf("  load factor sample: seats+booked = %d (true value %d, ε = %d)\n",
				res.SumReads(), seats, epsilon)
		}()
	}
	wg.Wait()

	fmt.Printf("\nreservations committed: %d, sold out: %d (capacity %d)\n",
		committed, soldOut, seats)
	fmt.Printf("final: seats=%d booked=%d (invariant seats+booked=%d holds: %v)\n",
		store.Get("seats"), store.Get("booked"), seats,
		store.Get("seats")+store.Get("booked") == seats)
	if committed != seats {
		return fmt.Errorf("oversold or undersold: %d commits for %d seats", committed, seats)
	}
	return nil
}
