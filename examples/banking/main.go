// Banking: the paper's Section 4 scenario — a transfer between a New
// York and a Los Angeles branch over a slow WAN, run first under
// two-phase commit and then as chopped pieces flowing through
// recoverable queues. The example prints the latency the user sees
// (initiation), the settlement latency, the message counts, and then
// demonstrates availability: with LA crashed, the chopped transfer still
// initiates, and it settles once LA recovers.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"asynctp"
)

const oneWay = 25 * time.Millisecond // one-way NY↔LA latency

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// placement puts ny:* keys at NY, the rest at LA.
func placement(k asynctp.Key) asynctp.SiteID {
	if strings.HasPrefix(string(k), "ny:") {
		return "NY"
	}
	return "LA"
}

// programs returns the cross-branch transfer and audit with ε = $10,000
// (the paper's numbers), which the cluster splits $5,000 per piece.
func programs() []*asynctp.Program {
	spec := asynctp.SpecOf(1000000)
	return []*asynctp.Program{
		asynctp.MustProgram("transfer",
			asynctp.AddOp("ny:X", -400000), // $4,000 — under the piece ε
			asynctp.AddOp("la:Y", 400000),
		).WithSpec(spec),
		asynctp.MustProgram("audit",
			asynctp.ReadOp("ny:X"),
			asynctp.ReadOp("la:Y"),
		).WithSpec(spec),
	}
}

func newCluster(strategy asynctp.Strategy) (*asynctp.Cluster, error) {
	return asynctp.NewCluster(asynctp.ClusterConfig{
		Strategy:  strategy,
		UseDC:     true,
		Latency:   oneWay,
		Seed:      1,
		Placement: placement,
		Initial: map[asynctp.SiteID]map[asynctp.Key]asynctp.Value{
			"NY": {"ny:X": 100000000},
			"LA": {"la:Y": 100000000},
		},
		RetransmitEvery: 10 * time.Millisecond,
	})
}

func run() error {
	ctx := context.Background()

	fmt.Printf("one-way NY↔LA latency: %v\n\n", oneWay)
	for _, strategy := range []asynctp.Strategy{asynctp.TwoPhaseCommit, asynctp.ChoppedQueues} {
		c, err := newCluster(strategy)
		if err != nil {
			return err
		}
		if err := c.RegisterPrograms(programs()); err != nil {
			return err
		}
		before := c.Net.Stats().Sent
		res, err := c.Submit(ctx, 0)
		if err != nil {
			return err
		}
		time.Sleep(4*oneWay + 50*time.Millisecond) // drain queue acks
		msgs := c.Net.Stats().Sent - before
		fmt.Printf("%-16s initiation=%-8v settlement=%-8v messages=%d\n",
			strategy, res.Initiation.Round(time.Millisecond),
			res.Settlement.Round(time.Millisecond), msgs)
		c.Close()
	}

	// Availability: crash LA mid-stream.
	fmt.Println("\navailability under LA crash (chopped queues):")
	c, err := newCluster(asynctp.ChoppedQueues)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterPrograms(programs()); err != nil {
		return err
	}
	c.Site("LA").Crash()
	fmt.Println("  LA crashed; submitting a transfer anyway…")
	done := make(chan *asynctp.ClusterResult, 1)
	go func() {
		res, err := c.Submit(ctx, 0)
		if err != nil {
			log.Printf("submit: %v", err)
			return
		}
		done <- res
	}()
	// Watch the NY debit land while LA is down.
	for c.Site("NY").Store.Get("ny:X") != 100000000-400000 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("  NY debit committed while LA down (ny:X = %d)\n", c.Site("NY").Store.Get("ny:X"))
	time.Sleep(100 * time.Millisecond)
	fmt.Println("  recovering LA…")
	c.Site("LA").Recover()
	res := <-done
	fmt.Printf("  settled after recovery: committed=%v settlement=%v\n",
		res.Committed, res.Settlement.Round(time.Millisecond))
	total := c.Site("NY").Store.Get("ny:X") + c.Site("LA").Store.Get("la:Y")
	fmt.Printf("  money conserved: %v (total %d)\n", total == 200000000, total)
	return nil
}
