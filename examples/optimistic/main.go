// Optimistic: the same ESR workload under the three divergence-control
// families of the paper's reference [12] — the lock-based controller the
// paper prototyped on Encina, the validation-based (optimistic) one, and
// timestamp ordering. Readers never block under the non-locking engines,
// so a read-mostly workload finishes far faster; the price appears as
// aborts (redone work) once non-commuting writers contend.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"asynctp"
)

const (
	transfers = 40
	audits    = 40
	epsilon   = 20000
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// drive runs the declared stream and reports elapsed time plus engine
// counters.
func drive(kind asynctp.EngineKind) (time.Duration, string, error) {
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{
		"X": 1000000, "Y": 1000000,
	})
	spec := asynctp.SpecOf(epsilon)
	programs := []*asynctp.Program{
		asynctp.MustProgram("xfer",
			asynctp.AddOp("X", -100), asynctp.AddOp("Y", 100)).WithSpec(spec),
		asynctp.MustProgram("audit",
			asynctp.ReadOp("X"), asynctp.ReadOp("Y")).WithSpec(spec),
	}
	runner, err := asynctp.NewRunner(asynctp.Config{
		Method:   asynctp.BaselineESRDC,
		Store:    store,
		Programs: programs,
		Counts:   []int{transfers, audits},
		Engine:   kind,
		OpDelay:  200 * time.Microsecond, // operations take time
	})
	if err != nil {
		return 0, "", err
	}
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for ti, count := range []int{transfers, audits} {
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				if _, err := runner.Submit(ctx, ti); err != nil {
					log.Printf("submit: %v", err)
				}
			}(ti)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var detail string
	switch kind {
	case asynctp.EngineOptimistic:
		st := runner.ODCStats()
		detail = fmt.Sprintf("validation aborts=%d absorbed=%d", st.Aborts, st.Absorbed)
	case asynctp.EngineTimestamp:
		st := runner.TDCStats()
		detail = fmt.Sprintf("timestamp aborts=%d absorbed=%d", st.Aborts, st.Absorbed)
	default:
		ls := runner.LockStats()
		ds := runner.DCStats()
		detail = fmt.Sprintf("lock blocks=%d fuzzy grants=%d", ls.Blocks, ds.Absorbed)
	}
	if total := store.SumAll(); total != 2000000 {
		return 0, "", fmt.Errorf("money not conserved: %d", total)
	}
	return elapsed, detail, nil
}

func run() error {
	for _, kind := range []asynctp.EngineKind{
		asynctp.EngineLocking, asynctp.EngineOptimistic, asynctp.EngineTimestamp,
	} {
		elapsed, detail, err := drive(kind)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s elapsed=%-10v %s\n", kind, elapsed.Round(time.Millisecond), detail)
	}
	fmt.Println("\nsame ε guarantees, same conserved total — different concurrency")
	fmt.Println("mechanics: locking blocks conflicting readers; the other engines")
	fmt.Println("let them run and charge the ε accounts after the fact.")
	return nil
}
