// Payroll: the paper's third motivating domain — "a payroll system may
// limit the salary raise for each employee per year". Raises are
// bounded writes, so their conflicts with the payroll-total report have
// finite C-edge weights, and the report can run under ESR while raises
// post concurrently. The example compares classic serializable
// execution against Method 1: same final state, but the ESR run admits
// report/raise interleavings instead of blocking them.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"asynctp"
)

const (
	employees  = 8
	raise      = 5000 // $50.00 per raise, the declared bound
	raisesEach = 5
	reports    = 4
	epsilon    = 100000 // the report tolerates $1,000.00 of staleness
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// build declares the payroll stream.
func build() (map[asynctp.Key]asynctp.Value, []*asynctp.Program, []int) {
	initial := make(map[asynctp.Key]asynctp.Value)
	var programs []*asynctp.Program
	var counts []int
	spec := asynctp.SpecOf(epsilon)
	var reportOps []asynctp.Op
	for e := 0; e < employees; e++ {
		key := asynctp.Key(fmt.Sprintf("salary:%d", e))
		initial[key] = 500000 // $5,000.00
		programs = append(programs, asynctp.MustProgram(
			fmt.Sprintf("raise:%d", e),
			asynctp.AddOp(key, raise),
		).WithSpec(spec))
		counts = append(counts, raisesEach)
		reportOps = append(reportOps, asynctp.ReadOp(key))
	}
	programs = append(programs, asynctp.MustProgram("report", reportOps...).WithSpec(spec))
	counts = append(counts, reports)
	return initial, programs, counts
}

// drive runs the full stream and returns (fuzzy grants, blocked count).
func drive(method asynctp.Method) (uint64, uint64, asynctp.Value, error) {
	initial, programs, counts := build()
	store := asynctp.NewStoreFrom(initial)
	runner, err := asynctp.NewRunner(asynctp.Config{
		Method:   method,
		Store:    store,
		Programs: programs,
		Counts:   counts,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for ti, count := range counts {
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				if _, err := runner.Submit(ctx, ti); err != nil {
					log.Printf("submit: %v", err)
				}
			}(ti)
		}
	}
	wg.Wait()
	stats := runner.LockStats()
	return stats.FuzzyGrants, stats.Blocks, store.SumAll(), nil
}

func run() error {
	wantTotal := asynctp.Value(employees*500000 + employees*raisesEach*raise)
	for _, method := range []asynctp.Method{asynctp.BaselineSRCC, asynctp.Method1SRChopDC} {
		grants, blocks, total, err := drive(method)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s fuzzy-grants=%-4d blocks=%-4d final-payroll=%d (want %d: %v)\n",
			method, grants, blocks, total, wantTotal, total == wantTotal)
	}
	fmt.Println("\nboth methods post every raise exactly once; the ESR run lets")
	fmt.Println("reports read through raise conflicts within ε instead of blocking.")
	return nil
}
