// Quickstart: declare a transfer and an audit, let the library find an
// ESR-chopping, and run the stream under Method 3 (ESR-chopping +
// divergence control), printing the chopping analysis and the observed
// inconsistency, which stays within the declared ε.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"asynctp"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The bank: two accounts, $100.00 each (values are cents).
	store := asynctp.NewStoreFrom(map[asynctp.Key]asynctp.Value{
		"checking": 10000,
		"savings":  10000,
	})

	// The declared job stream: 20 transfers of $1.00 and 5 audits, each
	// tolerating ε = $50.00 of inconsistency.
	xfer := asynctp.MustProgram("transfer",
		asynctp.AddOp("checking", -100),
		asynctp.AddOp("savings", +100),
	).WithSpec(asynctp.SpecOf(5000))
	audit := asynctp.MustProgram("audit",
		asynctp.ReadOp("checking"),
		asynctp.ReadOp("savings"),
	).WithSpec(asynctp.SpecOf(5000))

	runner, err := asynctp.NewRunner(asynctp.Config{
		Method:   asynctp.Method3ESRChopDC,
		Store:    store,
		Programs: []*asynctp.Program{xfer, audit},
		Counts:   []int{20, 5},
	})
	if err != nil {
		return err
	}

	// What did the off-line phase decide?
	sa := runner.StreamAnalysis()
	fmt.Println("chopping analysis:")
	for ti := 0; ti < runner.Set().NumTxns(); ti++ {
		fmt.Printf("  %-8s → %d piece(s), Z^is = %s\n",
			runner.Set().Original(ti).Name,
			runner.Set().Chopping(ti).NumPieces(),
			sa.InterSibling[ti])
	}

	// Run the whole declared stream concurrently.
	ctx := context.Background()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var worst asynctp.Fuzz
	for ti, count := range []int{20, 5} {
		for i := 0; i < count; i++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				res, err := runner.Submit(ctx, ti)
				if err != nil {
					log.Printf("submit: %v", err)
					return
				}
				if ti == 1 { // audit
					dev := asynctp.Distance(res.SumReads(), 20000)
					mu.Lock()
					if dev > worst {
						worst = dev
					}
					mu.Unlock()
				}
			}(ti)
		}
	}
	wg.Wait()

	fmt.Printf("\nfinal balances: checking=%d savings=%d (total %d, conserved)\n",
		store.Get("checking"), store.Get("savings"), store.SumAll())
	fmt.Printf("worst audit deviation: %d (ε = 5000)\n", worst)
	fmt.Printf("fuzzy conflict grants: %d\n", runner.LockStats().FuzzyGrants)
	if worst > 5000 {
		return fmt.Errorf("ε exceeded: %d", worst)
	}
	return nil
}
