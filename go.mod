module asynctp

go 1.22
