package chop

import (
	"fmt"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// FindSR computes the finest SR-chopping of the programs (Shasha et
// al.): start from the finest rollback-safe chopping and repeatedly merge
// sibling pieces that are connected in the C-edge-only subgraph, until no
// SC-cycle remains.
func FindSR(programs []*txn.Program) (*Set, *Analysis, error) {
	chopped := make([]*Chopped, len(programs))
	for i, p := range programs {
		chopped[i] = Finest(p)
	}
	return refineSR(chopped)
}

// refineSR runs the merge-to-fixpoint loop for SR-choppings: while some
// S edge lies on an SC-cycle (shares a biconnected block with a C edge),
// merge its two sibling pieces. Each merge removes at least one piece, so
// the loop terminates; in the worst case every transaction collapses back
// to a single piece, which is trivially SC-cycle free.
func refineSR(chopped []*Chopped) (*Set, *Analysis, error) {
	maxRounds := 1
	for _, c := range chopped {
		maxRounds += len(c.Original.Ops)
	}
	for rounds := 0; ; rounds++ {
		s, err := NewSet(chopped...)
		if err != nil {
			return nil, nil, err
		}
		a := Analyze(s)
		if !a.HasSCCycle {
			return s, a, nil
		}
		if rounds > maxRounds {
			return nil, nil, fmt.Errorf("chop: SR refinement did not converge")
		}
		merged := false
		for _, e := range a.Edges {
			if e.Kind == SEdge && e.InSCCycle {
				if mergeSEdge(s, chopped, e) {
					merged = true
					break
				}
			}
		}
		if !merged {
			// HasSCCycle without an S edge on it is impossible; the guard
			// keeps a bug from looping forever.
			return nil, nil, fmt.Errorf("chop: SC-cycle without mergeable siblings")
		}
	}
}

// FindESR computes an ESR-chopping (Definition 1): the finest
// rollback-safe chopping, refined until (a) no SC-cycle contains a C edge
// between two update pieces, and (b) every transaction's inter-sibling
// fuzziness Z^is_t fits its ε-spec. Because C-edge weights may keep some
// SC-cycles, the result is generally finer than the SR-chopping —
// transactions with generous ε-specs stay chopped where SR would merge.
func FindESR(programs []*txn.Program) (*Set, *Analysis, error) {
	chopped := make([]*Chopped, len(programs))
	for i, p := range programs {
		chopped[i] = Finest(p)
	}
	maxRounds := 1
	for _, p := range programs {
		maxRounds += len(p.Ops)
	}
	for rounds := 0; ; rounds++ {
		s, err := NewSet(chopped...)
		if err != nil {
			return nil, nil, err
		}
		a := Analyze(s)
		violations := a.CheckESR()
		if len(violations) == 0 {
			return s, a, nil
		}
		if rounds > maxRounds {
			return nil, nil, fmt.Errorf("chop: ESR refinement did not converge (violations: %v)", violations)
		}
		if !mergeForViolation(s, a, chopped, violations[0]) {
			return nil, nil, fmt.Errorf("chop: cannot resolve violation %+v", violations[0])
		}
	}
}

// mergeForViolation merges one sibling pair chosen to fix v, updating
// chopped in place. It reports whether a merge happened.
func mergeForViolation(s *Set, a *Analysis, chopped []*Chopped, v ESRViolation) bool {
	switch v.Kind {
	case "update-update":
		// The offending C edge lies in a biconnected block that must also
		// contain an S edge (that is what put it on an SC-cycle). Merging
		// that S edge's endpoints removes this cycle family.
		blockOf := a.Graph.BlockOfEdge(nil)
		target := blockOf[v.Edge]
		for _, e := range a.Edges {
			if e.Kind == SEdge && blockOf[e.ID] == target {
				return mergeSEdge(s, chopped, e)
			}
		}
		return false
	case "inter-sibling":
		// Merge the heaviest S edge of the violating transaction:
		// infinite weight first, then the largest finite weight.
		best := -1
		for _, e := range a.Edges {
			if e.Kind != SEdge || s.Piece(e.U).Txn != v.Txn {
				continue
			}
			if best == -1 || a.Edges[best].Weight.Cmp(e.Weight) < 0 {
				best = e.ID
			}
		}
		if best == -1 {
			return false
		}
		return mergeSEdge(s, chopped, a.Edges[best])
	default:
		return false
	}
}

// mergeSEdge merges the sibling pieces joined by S edge e.
func mergeSEdge(s *Set, chopped []*Chopped, e Edge) bool {
	pu, pv := s.Piece(e.U), s.Piece(e.V)
	if pu.Txn != pv.Txn {
		return false
	}
	chopped[pu.Txn] = chopped[pu.Txn].merge(pu.Index, pv.Index)
	return true
}

// Assignment holds one ε-spec per piece vertex: the Limit_p each piece
// runs under.
type Assignment []metric.Spec

// StaticDistribution implements Section 2.2.1 on analysis a with the
// transactions' own ε-specs: each transaction's limit is split evenly
// over its restricted pieces; unrestricted pieces get ∞ so divergence
// control never blocks them (their accounted fuzziness is fictitious —
// they cannot close a conflict cycle).
func StaticDistribution(a *Analysis) Assignment {
	specs := make([]metric.Spec, a.Set.NumTxns())
	for ti := range specs {
		specs[ti] = a.Set.Original(ti).Spec
	}
	return StaticDistributionWithSpecs(a, specs)
}

// StaticDistributionWithSpecs is StaticDistribution with per-transaction
// ε-specs overridden — Method 3 passes Limit^DC_t = Limit_t − Z^is_t.
func StaticDistributionWithSpecs(a *Analysis, specs []metric.Spec) Assignment {
	assign := make(Assignment, a.Set.NumPieces())
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		vs := a.Set.TxnPieces(ti)
		restricted := 0
		for _, v := range vs {
			if a.Restricted[v] {
				restricted++
			}
		}
		for _, v := range vs {
			if !a.Restricted[v] {
				assign[v] = metric.Unbounded
				continue
			}
			assign[v] = metric.Spec{
				Import: specs[ti].Import.Div(restricted),
				Export: specs[ti].Export.Div(restricted),
			}
		}
	}
	return assign
}

// ProportionalDistribution generalizes the static distribution beyond the
// paper's "for simplicity, equal weights" assumption: each restricted
// piece receives a share of the transaction's ε proportional to its
// conflict exposure — the total weight of its incident C edges that lie
// on C-cycles. Pieces in heavier conflict neighborhoods accumulate
// fuzziness faster, so they get more budget; unrestricted pieces still
// get ∞. Pieces with infinite exposure fall back to an even split.
func ProportionalDistribution(a *Analysis) Assignment {
	assign := make(Assignment, a.Set.NumPieces())
	// Exposure per vertex: incident C edges on C-cycles.
	cOnly := func(id int) bool { return a.Edges[id].Kind == CEdge }
	onCCycle := a.Graph.EdgesOnCycle(cOnly)
	exposure := make([]metric.Limit, a.Set.NumPieces())
	for v := range exposure {
		exposure[v] = metric.Zero
	}
	for id, e := range a.Edges {
		if e.Kind != CEdge || !onCCycle[id] {
			continue
		}
		exposure[e.U] = exposure[e.U].AddLimit(e.Weight)
		exposure[e.V] = exposure[e.V].AddLimit(e.Weight)
	}
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		vs := a.Set.TxnPieces(ti)
		spec := a.Set.Original(ti).Spec
		var restricted []int
		total := metric.Fuzz(0)
		even := false
		for _, v := range vs {
			if !a.Restricted[v] {
				assign[v] = metric.Unbounded
				continue
			}
			restricted = append(restricted, v)
			if exposure[v].IsInfinite() {
				even = true
			} else {
				total = total.Add(exposure[v].Bound())
			}
		}
		if len(restricted) == 0 {
			continue
		}
		if even || total == 0 {
			for _, v := range restricted {
				assign[v] = metric.Spec{
					Import: spec.Import.Div(len(restricted)),
					Export: spec.Export.Div(len(restricted)),
				}
			}
			continue
		}
		for _, v := range restricted {
			share := exposure[v].Bound()
			assign[v] = metric.Spec{
				Import: scaleLimit(spec.Import, share, total),
				Export: scaleLimit(spec.Export, share, total),
			}
		}
	}
	return assign
}

// scaleLimit returns limit × share / total, preserving ∞.
func scaleLimit(limit metric.Limit, share, total metric.Fuzz) metric.Limit {
	if limit.IsInfinite() {
		return limit
	}
	if total == 0 {
		return metric.Zero
	}
	return metric.LimitOf(metric.Fuzz(int64(limit.Bound()) * int64(share) / int64(total)))
}

// NaiveDistribution splits each transaction's ε-spec evenly over ALL its
// pieces, ignoring the restricted/unrestricted distinction. It exists as
// the ablation baseline the paper argues against: unrestricted pieces
// burn quota on fictitious conflicts.
func NaiveDistribution(a *Analysis) Assignment {
	assign := make(Assignment, a.Set.NumPieces())
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		vs := a.Set.TxnPieces(ti)
		spec := a.Set.Original(ti).Spec
		for _, v := range vs {
			assign[v] = metric.Spec{
				Import: spec.Import.Div(len(vs)),
				Export: spec.Export.Div(len(vs)),
			}
		}
	}
	return assign
}
