package chop

import (
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func TestFindSRMergesTransferUnderAudit(t *testing.T) {
	// Transfer + full audit: chopping the transfer creates an SC-cycle,
	// so the finest SR-chopping is the whole transfer.
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y"))
	s, a, err := FindSR([]*txn.Program{xfer, audit})
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSCCycle {
		t.Fatal("FindSR left an SC-cycle")
	}
	if got := s.Chopping(0).NumPieces(); got != 1 {
		t.Errorf("xfer pieces = %d, want 1 (merged)", got)
	}
	// The audit cannot stay chopped either: with the transfer whole, its
	// two read pieces still close an SC-cycle through the transfer.
	if got := s.Chopping(1).NumPieces(); got != 1 {
		t.Errorf("audit pieces = %d, want 1", got)
	}
}

func TestFindSRKeepsIndependentPieces(t *testing.T) {
	// Partners touch only one account each: the transfer stays chopped.
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100))
	onlyX := txn.MustProgram("onlyX", txn.ReadOp("X"))
	onlyY := txn.MustProgram("onlyY", txn.ReadOp("Y"))
	s, a, err := FindSR([]*txn.Program{xfer, onlyX, onlyY})
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSCCycle {
		t.Fatal("unexpected SC-cycle")
	}
	if got := s.Chopping(0).NumPieces(); got != 2 {
		t.Errorf("xfer pieces = %d, want 2 (chop preserved)", got)
	}
}

func TestFindSRRollbackSafety(t *testing.T) {
	w := txn.MustProgram("withdraw",
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("fee", 1),
		txn.AddOp("log", 1),
	)
	s, a, err := FindSR([]*txn.Program{w})
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSCCycle {
		t.Fatal("single txn cannot have SC-cycle")
	}
	// 3 pieces (rollback is in op 0); all cuts after the rollback.
	if got := s.Chopping(0).NumPieces(); got != 3 {
		t.Errorf("pieces = %d, want 3", got)
	}
	if err := s.Chopping(0).Validate(); err != nil {
		t.Errorf("result not rollback-safe: %v", err)
	}
}

func TestFindESRFinerThanSR(t *testing.T) {
	// With a generous ε-spec, ESR-chopping keeps the transfer chopped
	// where SR-chopping must merge it (E1's central claim).
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.SpecOf(500))
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Spec{Import: metric.LimitOf(500), Export: metric.Zero})
	programs := []*txn.Program{xfer, audit}

	sSR, _, err := FindSR(programs)
	if err != nil {
		t.Fatal(err)
	}
	sESR, aESR, err := FindESR(programs)
	if err != nil {
		t.Fatal(err)
	}
	if got := sSR.Chopping(0).NumPieces(); got != 1 {
		t.Fatalf("SR xfer pieces = %d, want 1", got)
	}
	if got := sESR.Chopping(0).NumPieces(); got != 2 {
		t.Errorf("ESR xfer pieces = %d, want 2 (finer than SR)", got)
	}
	if !aESR.IsESR() {
		t.Errorf("FindESR result invalid: %v", aESR.CheckESR())
	}
}

func TestFindESRMergesWhenBudgetTight(t *testing.T) {
	// Z^is would be 200; with Limit = 150 the chopping must merge back.
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.SpecOf(150))
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Spec{Import: metric.LimitOf(500), Export: metric.Zero})
	s, a, err := FindESR([]*txn.Program{xfer, audit})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Chopping(0).NumPieces(); got != 1 {
		t.Errorf("tight-budget ESR xfer pieces = %d, want 1", got)
	}
	if !a.IsESR() {
		t.Errorf("result invalid: %v", a.CheckESR())
	}
}

func TestFindESRRejectsUpdateUpdateCycles(t *testing.T) {
	// Transfer + interest poster (both update): the update-update hazard
	// forces a merge no matter how generous the ε-specs are.
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.Unbounded)
	interest := func(v metric.Value) metric.Value { return v + v/10 }
	poster := txn.MustProgram("interest",
		txn.TransformOp("X", interest, metric.LimitOf(500)),
		txn.TransformOp("Y", interest, metric.LimitOf(500)),
	).WithSpec(metric.Unbounded)
	s, a, err := FindESR([]*txn.Program{xfer, poster})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.UpdateUpdateViolations) != 0 {
		t.Errorf("violations remain: %v", a.CheckESR())
	}
	// At least one of the two transactions had to merge fully.
	p0, p1 := s.Chopping(0).NumPieces(), s.Chopping(1).NumPieces()
	if p0 == 2 && p1 == 2 {
		t.Errorf("both stayed chopped (%d, %d); hazard unresolved", p0, p1)
	}
}

func TestFindESRUpwardCompatibleWithStrictSpecs(t *testing.T) {
	// With ε = 0 everywhere, ESR-chopping must coincide with SR-chopping
	// (the paper's upward compatibility).
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y"))
	programs := []*txn.Program{xfer, audit}
	sSR, _, err := FindSR(programs)
	if err != nil {
		t.Fatal(err)
	}
	sESR, _, err := FindESR(programs)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < sSR.NumTxns(); ti++ {
		if sSR.Chopping(ti).NumPieces() != sESR.Chopping(ti).NumPieces() {
			t.Errorf("txn %d: SR %d pieces vs ESR %d pieces", ti,
				sSR.Chopping(ti).NumPieces(), sESR.Chopping(ti).NumPieces())
		}
	}
}

func TestFindSRBankBatchMixedOutcome(t *testing.T) {
	// xferAB's partners touch one account each, so it stays chopped;
	// auditCD spans both of xferCD's accounts, so xferCD (and a chopped
	// auditCD) must merge back.
	programs := []*txn.Program{
		txn.MustProgram("xferAB", txn.AddOp("A", -10), txn.AddOp("B", 10)),
		txn.MustProgram("xferCD", txn.AddOp("C", -10), txn.AddOp("D", 10)),
		txn.MustProgram("auditA", txn.ReadOp("A")),
		txn.MustProgram("auditB", txn.ReadOp("B")),
		txn.MustProgram("auditCD", txn.ReadOp("C"), txn.ReadOp("D")),
	}
	s, a, err := FindSR(programs)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSCCycle {
		t.Fatal("SC-cycle left after FindSR")
	}
	want := []int{2, 1, 1, 1, 1}
	for ti, w := range want {
		if got := s.Chopping(ti).NumPieces(); got != w {
			t.Errorf("txn %s pieces = %d, want %d", s.Original(ti).Name, got, w)
		}
	}
}

func TestFindSRFullyEntangledMergesEverything(t *testing.T) {
	// Four chained transfers plus two wide audits: the audits bridge
	// every transfer's accounts, so the finest SR-chopping is all-whole.
	accounts := []string{"A", "B", "C", "D", "E", "F"}
	var programs []*txn.Program
	for i := 0; i < 4; i++ {
		from, to := accounts[i], accounts[i+2]
		programs = append(programs, txn.MustProgram(
			"xfer"+from+to,
			txn.AddOp(storage.Key(from), -10), txn.AddOp(storage.Key(to), 10)))
	}
	programs = append(programs,
		txn.MustProgram("auditLeft", txn.ReadOp("A"), txn.ReadOp("B"), txn.ReadOp("C")),
		txn.MustProgram("auditRight", txn.ReadOp("D"), txn.ReadOp("E"), txn.ReadOp("F")))
	s, a, err := FindSR(programs)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSCCycle {
		t.Fatal("SC-cycle left after FindSR")
	}
	for ti := 0; ti < s.NumTxns(); ti++ {
		if got := s.Chopping(ti).NumPieces(); got != 1 {
			t.Errorf("txn %s pieces = %d, want 1", s.Original(ti).Name, got)
		}
	}
}

func TestStaticDistributionDividesExactly(t *testing.T) {
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.SpecOf(500))
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Spec{Import: metric.LimitOf(500), Export: metric.Zero})
	t1c, err := FromCuts(xfer, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	s := MustSet(t1c, Whole(audit))
	a := Analyze(s)
	assign := StaticDistribution(a)
	// Both xfer pieces are on the SC-cycle; here each is restricted only
	// if it is on a C-cycle. The SC-cycle here is not a C-cycle, so both
	// pieces are unrestricted and get ∞.
	if !assign[0].Export.IsInfinite() || !assign[1].Export.IsInfinite() {
		t.Errorf("pieces on SC-but-not-C cycles should be unrestricted: %v, %v",
			assign[0], assign[1])
	}
}
