package chop

import (
	"fmt"
	"strings"

	"asynctp/internal/graph"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// EdgeKind distinguishes the two chopping-graph edge types.
type EdgeKind int

// Edge kinds.
const (
	// SEdge connects two sibling pieces of one transaction.
	SEdge EdgeKind = iota + 1
	// CEdge connects two conflicting pieces of different transactions.
	CEdge
)

// String renders the kind.
func (k EdgeKind) String() string {
	switch k {
	case SEdge:
		return "S"
	case CEdge:
		return "C"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Edge is one chopping-graph edge with its analysis attributes.
type Edge struct {
	// ID is the graph edge ID.
	ID int
	// Kind is S or C.
	Kind EdgeKind
	// U, V are the endpoint vertices.
	U, V int
	// Keys are the conflicting keys (C edges only), sorted.
	Keys []storage.Key
	// Weight is W_C for C edges (the potential fuzziness of the
	// conflict, from declared write bounds) and W_S for S edges
	// (Equation 4, filled in by the analysis).
	Weight metric.Limit
	// InSCCycle reports whether the edge lies on some simple cycle
	// containing both an S and a C edge.
	InSCCycle bool
	// UpdateUpdate marks C edges whose endpoints are both update pieces.
	UpdateUpdate bool
}

// Analysis is the full chopping-graph analysis of a Set.
type Analysis struct {
	// Set is the analyzed chopping.
	Set *Set
	// Graph is the chopping graph; vertices are Set piece indices.
	Graph *graph.Graph
	// Edges describe every graph edge, indexed by edge ID.
	Edges []Edge
	// HasSCCycle reports whether any SC-cycle exists.
	HasSCCycle bool
	// SCWitness is one SC-cycle as a vertex sequence (first == last)
	// when HasSCCycle.
	SCWitness []int
	// Restricted marks pieces associated with C-cycles (Section 2.2):
	// only they can take part in a runtime conflict cycle. Endpoints of
	// a multi-key C edge count too — two pieces conflicting on several
	// keys form a 2-vertex runtime conflict cycle on their own.
	Restricted []bool
	// InterSibling is Z^is_t per transaction: the worst-case fuzziness
	// the chopping itself can introduce (sum of its S-edge weights).
	InterSibling []metric.Limit
	// UpdateUpdateViolations lists C edges between two update pieces
	// that lie on an SC-cycle — the Definition 1 condition (2) hazard
	// that corrupts the database permanently.
	UpdateUpdateViolations []int
}

// Analyze builds the chopping graph of s and runs every check.
func Analyze(s *Set) *Analysis {
	a := &Analysis{Set: s, Graph: graph.New(s.NumPieces())}
	addEdge := func(e Edge) {
		id, err := a.Graph.AddEdge(e.U, e.V)
		if err != nil {
			// Vertices come from the Set itself; failure is a programming
			// error, not an input error.
			panic(fmt.Sprintf("chop: internal edge (%d,%d): %v", e.U, e.V, err))
		}
		e.ID = id
		a.Edges = append(a.Edges, e)
	}

	// S edges: a clique among each transaction's pieces.
	for ti := 0; ti < s.NumTxns(); ti++ {
		vs := s.TxnPieces(ti)
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				addEdge(Edge{Kind: SEdge, U: vs[i], V: vs[j]})
			}
		}
	}
	// C edges: one per conflicting piece pair from different transactions.
	pieces := s.Pieces()
	for u := 0; u < len(pieces); u++ {
		for v := u + 1; v < len(pieces); v++ {
			pu, pv := pieces[u], pieces[v]
			if pu.Txn == pv.Txn {
				continue
			}
			keys, weight := conflictKeysAndWeight(pu.Program.Ops, pv.Program.Ops)
			if len(keys) == 0 {
				continue
			}
			addEdge(Edge{
				Kind: CEdge, U: u, V: v, Keys: keys, Weight: weight,
				UpdateUpdate: pu.UpdatePiece && pv.UpdatePiece,
			})
		}
	}

	cOnly := func(id int) bool { return a.Edges[id].Kind == CEdge }

	// Edge ∈ some SC-cycle ⇔ its biconnected block (full graph) contains
	// both kinds: any two edges of one block lie on a common simple
	// cycle, so an S and a C edge sharing a block yields an SC-cycle, and
	// conversely an SC-cycle's edges all share a block.
	blockOf := a.Graph.BlockOfEdge(nil)
	blockHasS := map[int]bool{}
	blockHasC := map[int]bool{}
	blockSize := map[int]int{}
	for id, b := range blockOf {
		if b < 0 {
			continue
		}
		blockSize[b]++
		if a.Edges[id].Kind == SEdge {
			blockHasS[b] = true
		} else {
			blockHasC[b] = true
		}
	}
	for id := range a.Edges {
		b := blockOf[id]
		// A block of one edge is a bridge: on no cycle at all.
		a.Edges[id].InSCCycle = b >= 0 && blockSize[b] > 1 && blockHasS[b] && blockHasC[b]
		if a.Edges[id].InSCCycle && a.Edges[id].UpdateUpdate {
			a.UpdateUpdateViolations = append(a.UpdateUpdateViolations, id)
		}
		if a.Edges[id].InSCCycle {
			a.HasSCCycle = true
		}
	}
	if a.HasSCCycle {
		a.SCWitness = a.findSCWitness(blockOf)
	}

	// Restricted pieces: vertices on a C-cycle (C-only subgraph).
	a.Restricted = a.Graph.VerticesOnCycle(cOnly)
	// A single C edge carrying two or more conflict keys is itself a
	// runtime conflict hazard the simple-cycle view cannot represent:
	// the two pieces can interleave with opposite orientations on
	// different keys (u before v on one key, v before u on another),
	// forming a 2-vertex runtime conflict cycle. Mark both endpoints
	// restricted so divergence control prices those conflicts instead
	// of treating the pieces as unbounded.
	for _, e := range a.Edges {
		if e.Kind == CEdge && len(e.Keys) >= 2 {
			a.Restricted[e.U] = true
			a.Restricted[e.V] = true
		}
	}

	// S-edge weights (Equation 4): W_S(s) = Σ W_C(c) over C edges that
	// touch either endpoint of s and lie on an SC-cycle. Then Z^is_t.
	a.InterSibling = make([]metric.Limit, s.NumTxns())
	for ti := range a.InterSibling {
		a.InterSibling[ti] = metric.Zero
	}
	// Incident C-edges-in-SC-cycle per vertex.
	incident := make([][]int, s.NumPieces())
	for id, e := range a.Edges {
		if e.Kind == CEdge && e.InSCCycle {
			incident[e.U] = append(incident[e.U], id)
			incident[e.V] = append(incident[e.V], id)
		}
	}
	for id := range a.Edges {
		e := &a.Edges[id]
		if e.Kind != SEdge {
			continue
		}
		w := metric.Zero
		seen := map[int]bool{}
		for _, cid := range incident[e.U] {
			if !seen[cid] {
				seen[cid] = true
				w = w.AddLimit(a.Edges[cid].Weight)
			}
		}
		for _, cid := range incident[e.V] {
			if !seen[cid] {
				seen[cid] = true
				w = w.AddLimit(a.Edges[cid].Weight)
			}
		}
		e.Weight = w
		ti := pieces[e.U].Txn
		a.InterSibling[ti] = a.InterSibling[ti].AddLimit(w)
	}
	return a
}

// findSCWitness builds one SC-cycle illustration from the first S edge
// on an SC-cycle. See witnessForSEdge.
func (a *Analysis) findSCWitness(blockOf []int) []int {
	for id, e := range a.Edges {
		if e.Kind != SEdge || !e.InSCCycle {
			continue
		}
		if w := a.witnessForSEdge(e, id, blockOf); w != nil {
			return w
		}
	}
	return nil
}

// witnessForSEdge closes S edge e with a path between its endpoints that
// avoids the S edge itself, stays inside its block, and uses at least one
// C edge. The result is a closed walk (first == last vertex); block
// theory guarantees a simple cycle exists, and the walk found this way is
// simple in all but pathological multigraph cases.
func (a *Analysis) witnessForSEdge(e Edge, id int, blockOf []int) []int {
	block := blockOf[id]
	path := a.pathWithCEdge(e.U, e.V, func(other int) bool {
		return other != id && blockOf[other] == block
	})
	if path == nil {
		return nil
	}
	witness := []int{e.V} // walk back from V to U, then close via s
	at := e.V
	for _, eid := range path {
		u, v := a.Graph.Endpoints(eid)
		if u == at {
			at = v
		} else {
			at = u
		}
		witness = append(witness, at)
	}
	witness = append(witness, e.V)
	return witness
}

// SCWitnesses returns up to max SC-cycle illustrations, one per S edge
// that lies on an SC-cycle — the enumeration the chopper CLI prints so
// users can see every sibling pair that needs merging (or budgeting).
func (a *Analysis) SCWitnesses(max int) [][]int {
	if max <= 0 || !a.HasSCCycle {
		return nil
	}
	blockOf := a.Graph.BlockOfEdge(nil)
	var out [][]int
	for id, e := range a.Edges {
		if len(out) >= max {
			break
		}
		if e.Kind != SEdge || !e.InSCCycle {
			continue
		}
		if w := a.witnessForSEdge(e, id, blockOf); w != nil {
			out = append(out, w)
		}
	}
	return out
}

// WitnessString renders a witness walk with piece names.
func (a *Analysis) WitnessString(witness []int) string {
	names := make([]string, len(witness))
	for i, v := range witness {
		names[i] = a.Set.Piece(v).Program.Name
	}
	return strings.Join(names, " → ")
}

// pathWithCEdge finds edge IDs of a shortest u→v path through the
// filtered subgraph that uses at least one C edge, via BFS over
// (vertex, sawC) states. Returns nil if none exists.
func (a *Analysis) pathWithCEdge(u, v int, filter graph.EdgeFilter) []int {
	n := a.Graph.NumVertices()
	type state struct {
		vert int
		sawC bool
	}
	prevEdge := make(map[state]int, 2*n)
	prevState := make(map[state]state, 2*n)
	start := state{vert: v} // walk from v so the path reads v→u
	queue := []state{start}
	seen := map[state]bool{start: true}
	var goal *state
	for len(queue) > 0 && goal == nil {
		cur := queue[0]
		queue = queue[1:]
		for id := 0; id < a.Graph.NumEdges(); id++ {
			if filter != nil && !filter(id) {
				continue
			}
			eu, ev := a.Graph.Endpoints(id)
			var to int
			switch cur.vert {
			case eu:
				to = ev
			case ev:
				to = eu
			default:
				continue
			}
			next := state{vert: to, sawC: cur.sawC || a.Edges[id].Kind == CEdge}
			if seen[next] {
				continue
			}
			seen[next] = true
			prevEdge[next] = id
			prevState[next] = cur
			if next.vert == u && next.sawC {
				goal = &next
				break
			}
			queue = append(queue, next)
		}
	}
	if goal == nil {
		return nil
	}
	var path []int
	for at := *goal; at != start; at = prevState[at] {
		path = append(path, prevEdge[at])
	}
	// Path currently lists edges u→…→v; reverse to v→…→u walk order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// conflictKeysAndWeight returns the keys on which the op lists conflict
// and the C-edge weight W_C: for each conflicting key, the declared bound
// of the writing side's writes (both sides when both write). Unbounded
// writes make the weight ∞. The conflict model matches txn.OpsConflict:
// read-read pairs and pairs of commuting writes do not conflict.
func conflictKeysAndWeight(a, b []txn.Op) ([]storage.Key, metric.Limit) {
	type access struct {
		read     bool
		commW    bool // commutative writes only
		noncommW bool // at least one non-commutative write
	}
	collect := func(ops []txn.Op) map[storage.Key]access {
		m := make(map[storage.Key]access)
		for _, op := range ops {
			acc := m[op.Key]
			switch {
			case op.Kind != txn.OpWrite:
				acc.read = true
			case op.Commutative:
				acc.commW = true
			default:
				acc.noncommW = true
			}
			m[op.Key] = acc
		}
		return m
	}
	writes := func(acc access) bool { return acc.commW || acc.noncommW }
	am, bm := collect(a), collect(b)
	var keys []storage.Key
	weight := metric.Zero
	for _, k := range sortedKeys(am) {
		bacc, ok := bm[k]
		if !ok {
			continue
		}
		aacc := am[k]
		conflict := (aacc.read && writes(bacc)) || (bacc.read && writes(aacc)) ||
			(aacc.noncommW && writes(bacc)) || (bacc.noncommW && writes(aacc))
		if !conflict {
			continue // read-read, or commuting increments only
		}
		keys = append(keys, k)
		if writes(aacc) {
			weight = weight.AddLimit(pieceWriteBound(a, k))
		}
		if writes(bacc) {
			weight = weight.AddLimit(pieceWriteBound(b, k))
		}
	}
	return keys, weight
}

// IsSR reports whether the chopping is an SR-chopping (Theorem 1):
// rollback-safe (guaranteed by construction) and SC-cycle free.
func (a *Analysis) IsSR() bool { return !a.HasSCCycle }

// ESRViolation describes why a chopping fails the ESR-chopping test.
type ESRViolation struct {
	// Kind is "update-update" or "inter-sibling".
	Kind string
	// Txn is the transaction concerned (inter-sibling violations).
	Txn int
	// Edge is the offending C edge (update-update violations).
	Edge int
	// Detail is a human-readable explanation.
	Detail string
}

// CheckESR evaluates Definition 1: the chopping is an ESR-chopping iff it
// is rollback-safe (by construction), has no update-update C edge on an
// SC-cycle, and every transaction's inter-sibling fuzziness is within its
// ε-spec (export limit for update ETs, import limit for query ETs).
func (a *Analysis) CheckESR() []ESRViolation {
	var violations []ESRViolation
	for _, id := range a.UpdateUpdateViolations {
		e := a.Edges[id]
		violations = append(violations, ESRViolation{
			Kind: "update-update",
			Edge: id,
			Detail: fmt.Sprintf("C edge %s—%s (keys %v) joins two update pieces on an SC-cycle",
				a.Set.Piece(e.U).Program.Name, a.Set.Piece(e.V).Program.Name, e.Keys),
		})
	}
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		limit := a.epsilonLimit(ti)
		zis := a.InterSibling[ti]
		if zis.Cmp(limit) > 0 {
			violations = append(violations, ESRViolation{
				Kind: "inter-sibling",
				Txn:  ti,
				Detail: fmt.Sprintf("Z^is(%s) = %s exceeds Limit = %s",
					a.Set.Original(ti).Name, zis, limit),
			})
		}
	}
	return violations
}

// IsESR reports whether the chopping is an ESR-chopping.
func (a *Analysis) IsESR() bool { return len(a.CheckESR()) == 0 }

// epsilonLimit returns the Limit_t that Condition 5 compares Z^is_t
// against: the side of the ε-spec the chopped transaction's fuzziness
// counts toward.
func (a *Analysis) epsilonLimit(ti int) metric.Limit {
	p := a.Set.Original(ti)
	if p.Class() == txn.Update {
		return p.Spec.Export
	}
	return p.Spec.Import
}

// DCLimit returns Limit^DC_t = Limit_t − Z^is_t (Equation 6): the part of
// transaction ti's ε-spec left for divergence control after reserving the
// inter-sibling fuzziness the chopping itself may cause. The reservation
// applies to both the import and export side.
func (a *Analysis) DCLimit(ti int) metric.Spec {
	spec := a.Set.Original(ti).Spec
	zis := a.InterSibling[ti]
	if zis.IsInfinite() {
		return metric.Spec{Import: metric.Zero, Export: metric.Zero}
	}
	return metric.Spec{
		Import: spec.Import.Sub(zis.Bound()),
		Export: spec.Export.Sub(zis.Bound()),
	}
}

// SEdgeBetween returns the S edge joining vertices u and v, if any.
func (a *Analysis) SEdgeBetween(u, v int) (Edge, bool) {
	for _, e := range a.Edges {
		if e.Kind == SEdge && ((e.U == u && e.V == v) || (e.U == v && e.V == u)) {
			return e, true
		}
	}
	return Edge{}, false
}

// String summarizes the analysis for reports.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chopping: %d txns, %d pieces, %d edges\n",
		a.Set.NumTxns(), a.Set.NumPieces(), len(a.Edges))
	fmt.Fprintf(&b, "SC-cycle: %v", a.HasSCCycle)
	if a.HasSCCycle {
		names := make([]string, len(a.SCWitness))
		for i, v := range a.SCWitness {
			names[i] = a.Set.Piece(v).Program.Name
		}
		fmt.Fprintf(&b, " (witness: %s)", strings.Join(names, " → "))
	}
	b.WriteString("\n")
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		fmt.Fprintf(&b, "Z^is(%s) = %s\n", a.Set.Original(ti).Name, a.InterSibling[ti])
	}
	fmt.Fprintf(&b, "SR-chopping: %v, ESR-chopping: %v\n", a.IsSR(), a.IsESR())
	return b.String()
}

// DOT renders the chopping graph in Graphviz format: pieces grouped per
// transaction, S edges dashed, C edges solid and labeled with their keys
// and weights, restricted pieces shaded.
func (a *Analysis) DOT() string {
	var b strings.Builder
	b.WriteString("graph chopping {\n  node [shape=box];\n")
	for ti := 0; ti < a.Set.NumTxns(); ti++ {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n", ti, a.Set.Original(ti).Name)
		for _, v := range a.Set.TxnPieces(ti) {
			style := ""
			if a.Restricted[v] {
				style = ", style=filled, fillcolor=lightgray"
			}
			fmt.Fprintf(&b, "    v%d [label=%q%s];\n", v, a.Set.Piece(v).Program.Name, style)
		}
		b.WriteString("  }\n")
	}
	for _, e := range a.Edges {
		switch e.Kind {
		case SEdge:
			fmt.Fprintf(&b, "  v%d -- v%d [style=dashed, label=\"S\"];\n", e.U, e.V)
		case CEdge:
			keyParts := make([]string, len(e.Keys))
			for i, k := range e.Keys {
				keyParts[i] = string(k)
			}
			fmt.Fprintf(&b, "  v%d -- v%d [label=\"C:%s w=%s\"];\n",
				e.U, e.V, strings.Join(keyParts, ","), e.Weight)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
