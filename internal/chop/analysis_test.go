package chop

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// figure1Set reproduces the paper's Figure 1: transaction t chopped into
// five pieces p1..p5 (writing a, b, c, d, e respectively) amid seven other
// transactions t1..t7 plus two extra single-edge partners t8, t9. Three
// C-cycles touch p1, p3, and p5; p2 and p4 are unrestricted; there is no
// SC-cycle.
func figure1Set(t *testing.T) *Set {
	t.Helper()
	limit51 := metric.Spec{Import: metric.LimitOf(51), Export: metric.LimitOf(51)}
	tMain := txn.MustProgram("t",
		txn.AddOp("a", 1), txn.AddOp("b", 1), txn.AddOp("c", 1),
		txn.AddOp("d", 1), txn.AddOp("e", 1),
	).WithSpec(limit51)
	tc, err := FromCuts(tMain, []int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Triangle C-cycle {p1, t1, t2} via keys a, m.
	t1 := txn.MustProgram("t1", txn.ReadOp("a"), txn.AddOp("m", 1))
	t2 := txn.MustProgram("t2", txn.ReadOp("m"), txn.ReadOp("a"))
	// 4-cycle {p3, t3, t4, t5} via keys c, n, o.
	t3 := txn.MustProgram("t3", txn.ReadOp("c"), txn.AddOp("n", 1))
	t4 := txn.MustProgram("t4", txn.ReadOp("n"), txn.AddOp("o", 1))
	t5 := txn.MustProgram("t5", txn.ReadOp("o"), txn.ReadOp("c"))
	// Triangle {p5, t6, t7} via keys e, q.
	t6 := txn.MustProgram("t6", txn.ReadOp("e"), txn.AddOp("q", 1))
	t7 := txn.MustProgram("t7", txn.ReadOp("q"), txn.ReadOp("e"))
	// Acyclic C edges onto p2 and p4.
	t8 := txn.MustProgram("t8", txn.ReadOp("b"))
	t9 := txn.MustProgram("t9", txn.ReadOp("d"))

	return MustSet(tc,
		Whole(t1), Whole(t2), Whole(t3), Whole(t4), Whole(t5),
		Whole(t6), Whole(t7), Whole(t8), Whole(t9))
}

func TestFigure1NoSCCycle(t *testing.T) {
	a := Analyze(figure1Set(t))
	if a.HasSCCycle {
		t.Fatalf("Figure 1 chopping reported SC-cycle: %v", a.SCWitness)
	}
	if !a.IsSR() {
		t.Error("Figure 1 chopping should be an SR-chopping")
	}
}

func TestFigure1RestrictedPieces(t *testing.T) {
	s := figure1Set(t)
	a := Analyze(s)
	// p1 (vertex 0), p3 (2), p5 (4) restricted; p2 (1), p4 (3) not.
	wantRestricted := map[int]bool{0: true, 1: false, 2: true, 3: false, 4: true}
	for v, want := range wantRestricted {
		if a.Restricted[v] != want {
			t.Errorf("Restricted[%s] = %v, want %v",
				s.Piece(v).Program.Name, a.Restricted[v], want)
		}
	}
}

func TestFigure1StaticDistribution(t *testing.T) {
	s := figure1Set(t)
	a := Analyze(s)
	assign := StaticDistribution(a)
	// Limit 51 over 3 restricted pieces → 17 each; unrestricted get ∞.
	for _, v := range []int{0, 2, 4} {
		if assign[v].Import.Cmp(metric.LimitOf(17)) != 0 || assign[v].Export.Cmp(metric.LimitOf(17)) != 0 {
			t.Errorf("restricted %s spec = %s, want 17/17",
				s.Piece(v).Program.Name, assign[v])
		}
	}
	for _, v := range []int{1, 3} {
		if !assign[v].Import.IsInfinite() || !assign[v].Export.IsInfinite() {
			t.Errorf("unrestricted %s spec = %s, want inf/inf",
				s.Piece(v).Program.Name, assign[v])
		}
	}
	// The other transactions keep their own (whole) assignment: each is
	// one piece; restricted ones split by 1.
	for v := 5; v < s.NumPieces(); v++ {
		if a.Restricted[v] {
			want := s.Original(s.Piece(v).Txn).Spec
			if assign[v].Import.Cmp(want.Import) != 0 {
				t.Errorf("whole txn %s import = %s, want %s",
					s.Piece(v).Program.Name, assign[v].Import, want.Import)
			}
		}
	}
}

func TestFigure1NaiveDistributionAblation(t *testing.T) {
	s := figure1Set(t)
	a := Analyze(s)
	assign := NaiveDistribution(a)
	// 51 over all 5 pieces → 10 each, including unrestricted ones.
	for v := 0; v < 5; v++ {
		if assign[v].Import.Cmp(metric.LimitOf(10)) != 0 {
			t.Errorf("naive %s import = %s, want 10", s.Piece(v).Program.Name, assign[v].Import)
		}
	}
}

// figure3Set reproduces Figure 3: t1 chopped into p1 (R[X], W[X] bound 2)
// and p2 (W[Q] bound 8); t2 reads X, Y; t3 writes Y (bound 1) and Z
// (bound 4); t4 reads Q, Z. One SC-cycle p1—t2—t3—t4—p2 closed by the S
// edge; W_S = W_c1 + W_c4 = 2 + 8 = 10.
func figure3Set(t *testing.T) *Set {
	t.Helper()
	t1 := txn.MustProgram("t1",
		txn.ReadOp("X"), txn.AddOp("X", 2),
		txn.AddOp("Q", 8),
	).WithSpec(metric.Spec{Import: metric.LimitOf(100), Export: metric.LimitOf(100)})
	t1c, err := FromCuts(t1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	t2 := txn.MustProgram("t2", txn.ReadOp("X"), txn.ReadOp("Y"))
	t3 := txn.MustProgram("t3", txn.AddOp("Y", 1), txn.AddOp("Z", 4))
	t4 := txn.MustProgram("t4", txn.ReadOp("Q"), txn.ReadOp("Z"))
	return MustSet(t1c, Whole(t2), Whole(t3), Whole(t4))
}

func TestFigure3SEdgeWeight(t *testing.T) {
	s := figure3Set(t)
	a := Analyze(s)
	if !a.HasSCCycle {
		t.Fatal("Figure 3 must contain an SC-cycle")
	}
	se, ok := a.SEdgeBetween(s.Vertex(0, 0), s.Vertex(0, 1))
	if !ok {
		t.Fatal("S edge p1—p2 missing")
	}
	// Equation 4: CE(s) = {c1=(p1,t2) w=2, c4=(t4,p2) w=8}; c2, c3 lie on
	// the SC-cycle but touch neither sibling.
	if se.Weight.Cmp(metric.LimitOf(10)) != 0 {
		t.Errorf("W_S = %s, want 10 (= 2 + 8)", se.Weight)
	}
	if a.InterSibling[0].Cmp(metric.LimitOf(10)) != 0 {
		t.Errorf("Z^is(t1) = %s, want 10", a.InterSibling[0])
	}
}

func TestFigure3CEdgeWeights(t *testing.T) {
	s := figure3Set(t)
	a := Analyze(s)
	wantWeights := map[string]int64{
		"t1/p1|t2": 2, "t2|t3": 1, "t3|t4": 4, "t1/p2|t4": 8,
	}
	found := 0
	for _, e := range a.Edges {
		if e.Kind != CEdge {
			continue
		}
		name := s.Piece(e.U).Program.Name + "|" + s.Piece(e.V).Program.Name
		w, ok := wantWeights[name]
		if !ok {
			t.Errorf("unexpected C edge %s", name)
			continue
		}
		found++
		if e.Weight.Cmp(metric.LimitOf(metric.Fuzz(w))) != 0 {
			t.Errorf("W_C(%s) = %s, want %d", name, e.Weight, w)
		}
		if !e.InSCCycle {
			t.Errorf("C edge %s not marked in SC-cycle", name)
		}
	}
	if found != len(wantWeights) {
		t.Errorf("found %d of %d expected C edges", found, len(wantWeights))
	}
}

func TestFigure3IsESRChoppingWithBudget(t *testing.T) {
	a := Analyze(figure3Set(t))
	if a.IsSR() {
		t.Error("Figure 3 has an SC-cycle; not SR")
	}
	if !a.IsESR() {
		t.Errorf("Figure 3 should be a valid ESR-chopping (Z^is=10 ≤ 100): %v", a.CheckESR())
	}
}

func TestFigure3DCLimit(t *testing.T) {
	s := figure3Set(t)
	a := Analyze(s)
	// Equation 6: Limit^DC = 100 − 10 = 90 on both sides.
	dc := a.DCLimit(0)
	if dc.Import.Cmp(metric.LimitOf(90)) != 0 || dc.Export.Cmp(metric.LimitOf(90)) != 0 {
		t.Errorf("DCLimit = %s, want 90/90", dc)
	}
	// Whole transactions reserve nothing.
	dc3 := a.DCLimit(2)
	if dc3.Export.Cmp(s.Original(2).Spec.Export) != 0 {
		t.Errorf("whole txn DCLimit = %s", dc3)
	}
}

func TestFigure3TightBudgetViolation(t *testing.T) {
	// Same chopping with Limit_t1 = 9 < Z^is = 10: not an ESR-chopping.
	s := figure3Set(t)
	tight := s.Original(0).WithSpec(metric.SpecOf(9))
	c, err := FromCuts(tight, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s.ReplaceChopping(0, c)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(s2)
	violations := a.CheckESR()
	if len(violations) != 1 || violations[0].Kind != "inter-sibling" || violations[0].Txn != 0 {
		t.Errorf("violations = %+v", violations)
	}
	if a.IsESR() {
		t.Error("tight-budget chopping accepted as ESR")
	}
}

// hazardSet reproduces the Section 3 update-update hazard: t1 transfers
// 100 from X to Y, chopped; t2 adds 10% interest to X and Y (update ET).
func hazardSet(t *testing.T) *Set {
	t.Helper()
	t1 := txn.MustProgram("t1", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.SpecOf(1000))
	t1c, err := FromCuts(t1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	interest := func(v metric.Value) metric.Value { return v + v/10 }
	t2 := txn.MustProgram("t2",
		txn.TransformOp("X", interest, metric.LimitOf(200)),
		txn.TransformOp("Y", interest, metric.LimitOf(200)),
	).WithSpec(metric.SpecOf(1000))
	return MustSet(t1c, Whole(t2))
}

func TestUpdateUpdateHazardRejected(t *testing.T) {
	a := Analyze(hazardSet(t))
	if !a.HasSCCycle {
		t.Fatal("hazard example must have an SC-cycle")
	}
	if len(a.UpdateUpdateViolations) == 0 {
		t.Fatal("update-update SC-cycle not detected")
	}
	violations := a.CheckESR()
	hasUU := false
	for _, v := range violations {
		if v.Kind == "update-update" {
			hasUU = true
		}
	}
	if !hasUU {
		t.Errorf("CheckESR violations = %+v, want update-update", violations)
	}
	if a.IsESR() {
		t.Error("hazardous chopping accepted as ESR")
	}
}

func TestQueryReaderSCCycleIsNotUpdateUpdate(t *testing.T) {
	// Transfer chopped + read-only audit: SC-cycle exists but both C
	// edges pair an update piece with a query — allowed under ESR when
	// the budget covers Z^is.
	t1 := txn.MustProgram("t1", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.SpecOf(1000))
	t1c, err := FromCuts(t1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Spec{Import: metric.LimitOf(1000), Export: metric.Zero})
	a := Analyze(MustSet(t1c, Whole(audit)))
	if !a.HasSCCycle {
		t.Fatal("expected SC-cycle")
	}
	if len(a.UpdateUpdateViolations) != 0 {
		t.Error("query-update edges misclassified as update-update")
	}
	if !a.IsESR() {
		t.Errorf("valid ESR chopping rejected: %v", a.CheckESR())
	}
	// Z^is(t1) = 100 (X write) + 100 (Y write) = 200.
	if a.InterSibling[0].Cmp(metric.LimitOf(200)) != 0 {
		t.Errorf("Z^is(t1) = %s, want 200", a.InterSibling[0])
	}
}

func TestAnalysisStringAndDOT(t *testing.T) {
	a := Analyze(figure3Set(t))
	s := a.String()
	for _, want := range []string{"SC-cycle: true", "Z^is(t1) = 10", "ESR-chopping: true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	dot := a.DOT()
	for _, want := range []string{"graph chopping", "style=dashed", "w=8", "cluster_0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT() missing %q", want)
		}
	}
}

func TestSCWitnessIsClosedWalk(t *testing.T) {
	a := Analyze(figure3Set(t))
	w := a.SCWitness
	if len(w) < 4 || w[0] != w[len(w)-1] {
		t.Fatalf("witness = %v", w)
	}
	// Witness must start and end at a piece of the chopped transaction.
	if a.Set.Piece(w[0]).Txn != 0 {
		t.Errorf("witness starts at txn %d, want 0", a.Set.Piece(w[0]).Txn)
	}
}

func TestUnboundedWriteMakesInfiniteWeights(t *testing.T) {
	t1 := txn.MustProgram("t1", txn.SetOp("X", 0), txn.AddOp("Y", 1)).
		WithSpec(metric.Unbounded)
	t1c, err := FromCuts(t1, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y"))
	a := Analyze(MustSet(t1c, Whole(audit)))
	foundInf := false
	for _, e := range a.Edges {
		if e.Kind == CEdge && e.Keys[0] == "X" && e.Weight.IsInfinite() {
			foundInf = true
		}
	}
	if !foundInf {
		t.Error("SetOp conflict weight should be infinite")
	}
	if !a.InterSibling[0].IsInfinite() {
		t.Errorf("Z^is = %s, want inf", a.InterSibling[0])
	}
	// With an unbounded spec the ESR check still passes (∞ ≤ ∞).
	if !a.IsESR() {
		t.Errorf("unbounded spec should tolerate infinite Z^is: %v", a.CheckESR())
	}
	// DCLimit collapses to zero: everything is reserved.
	dcl := a.DCLimit(0)
	if dcl.Import.Cmp(metric.Zero) != 0 {
		t.Errorf("DCLimit with infinite Z^is = %s, want 0", dcl)
	}
}

func TestSCWitnessesEnumeration(t *testing.T) {
	// Chopped transfer + chopped audit: two S edges, both on the same
	// SC-cycle family → two witnesses.
	xfer := txn.MustProgram("xfer", txn.AddOp("X", -100), txn.AddOp("Y", 100)).
		WithSpec(metric.Unbounded)
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Unbounded)
	xc, err := FromCuts(xfer, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := FromCuts(audit, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(MustSet(xc, ac))
	ws := a.SCWitnesses(10)
	if len(ws) != 2 {
		t.Fatalf("witnesses = %d, want 2 (one per S edge)", len(ws))
	}
	for _, w := range ws {
		if len(w) < 4 || w[0] != w[len(w)-1] {
			t.Errorf("witness not a closed walk: %v", w)
		}
		if s := a.WitnessString(w); !strings.Contains(s, "→") {
			t.Errorf("WitnessString = %q", s)
		}
	}
	// Limit respected.
	if got := a.SCWitnesses(1); len(got) != 1 {
		t.Errorf("SCWitnesses(1) = %d", len(got))
	}
	if got := a.SCWitnesses(0); got != nil {
		t.Errorf("SCWitnesses(0) = %v", got)
	}
	// No witnesses on SC-cycle-free choppings.
	free := Analyze(Figure1Example())
	if got := free.SCWitnesses(5); got != nil {
		t.Errorf("witnesses on SR-chopping: %v", got)
	}
}

func TestHasSCCycleMatchesBruteForce(t *testing.T) {
	// Random tiny job streams: the block-based SC-cycle test must agree
	// with exhaustive simple-cycle enumeration.
	keys := []storage.Key{"a", "b", "c"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nProgs := rng.Intn(3) + 2
		var chopped []*Chopped
		for pi := 0; pi < nProgs; pi++ {
			nOps := rng.Intn(3) + 1
			var ops []txn.Op
			for oi := 0; oi < nOps; oi++ {
				key := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					ops = append(ops, txn.ReadOp(key))
				} else {
					ops = append(ops, txn.TransformOp(key,
						func(v metric.Value) metric.Value { return v + 1 },
						metric.LimitOf(1)))
				}
			}
			p := txn.MustProgram(fmt.Sprintf("p%d", pi), ops...)
			if rng.Intn(2) == 0 {
				chopped = append(chopped, Finest(p))
			} else {
				chopped = append(chopped, Whole(p))
			}
		}
		set, err := NewSet(chopped...)
		if err != nil {
			return false
		}
		a := Analyze(set)
		want := ReferenceSCCycle(a)
		if a.HasSCCycle != want {
			t.Logf("seed %d: fast=%v brute=%v", seed, a.HasSCCycle, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
