// Package chop implements transaction chopping: Shasha et al.'s
// SR-chopping and this paper's ESR-chopping, together with the chopping
// graph analysis (SC-cycles, C-cycles, restricted pieces, edge weights)
// and the ε-spec distribution policies of Section 2.2.
//
// A chopping partitions each transaction program's operation list into
// contiguous pieces. Each piece runs as an individual transaction; the
// first piece p1 must commit before the others, and rollback-safety
// requires every rollback statement to live in p1 so that once p1
// commits, every other piece can be resubmitted until it commits.
package chop

import (
	"errors"
	"fmt"
	"sort"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Chopped is one transaction program with a chosen partition.
type Chopped struct {
	// Original is the unchopped program.
	Original *txn.Program
	// Cuts are the piece boundaries: piece i spans ops[cuts[i]:cuts[i+1])
	// with implicit cuts 0 and len(Ops). Cuts are strictly increasing and
	// within (0, len(Ops)).
	Cuts []int
}

// Whole returns p unchopped (a single piece).
func Whole(p *txn.Program) *Chopped {
	return &Chopped{Original: p}
}

// Finest returns the finest rollback-safe chopping of p: every operation
// its own piece, except that ops up to the last rollback statement stay in
// the first piece.
func Finest(p *txn.Program) *Chopped {
	first := p.LastRollbackIndex() + 1 // ops [0, first) belong to p1
	if first == 0 {
		first = 1
	}
	var cuts []int
	for i := first; i < len(p.Ops); i++ {
		cuts = append(cuts, i)
	}
	return &Chopped{Original: p, Cuts: cuts}
}

// FromCuts builds a chopping with explicit boundaries.
func FromCuts(p *txn.Program, cuts []int) (*Chopped, error) {
	c := &Chopped{Original: p, Cuts: append([]int(nil), cuts...)}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// FromCutsCompensable builds a chopping with explicit boundaries WITHOUT
// the rollback-safety requirement: rollback statements may live in later
// pieces. Executing such a chopping is only sound with a compensation
// mechanism that can undo committed predecessor pieces (see the site
// package's AllowCompensation); boundary sanity is still checked.
func FromCutsCompensable(p *txn.Program, cuts []int) (*Chopped, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	c := &Chopped{Original: p, Cuts: append([]int(nil), cuts...)}
	n := len(p.Ops)
	prev := 0
	for i, cut := range c.Cuts {
		if cut <= prev || cut >= n {
			return nil, fmt.Errorf("chop: %q cut %d = %d out of order (prev %d, n %d)",
				p.Name, i, cut, prev, n)
		}
		prev = cut
	}
	return c, nil
}

// Validate checks boundary sanity and rollback-safety.
func (c *Chopped) Validate() error {
	if c.Original == nil {
		return errors.New("chop: nil program")
	}
	if err := c.Original.Validate(); err != nil {
		return err
	}
	n := len(c.Original.Ops)
	prev := 0
	for i, cut := range c.Cuts {
		if cut <= prev || cut >= n {
			return fmt.Errorf("chop: %q cut %d = %d out of order (prev %d, n %d)",
				c.Original.Name, i, cut, prev, n)
		}
		prev = cut
	}
	if last := c.Original.LastRollbackIndex(); last >= 0 && len(c.Cuts) > 0 && c.Cuts[0] <= last {
		return fmt.Errorf("chop: %q not rollback-safe: rollback at op %d but first cut at %d",
			c.Original.Name, last, c.Cuts[0])
	}
	return nil
}

// NumPieces returns the number of pieces.
func (c *Chopped) NumPieces() int { return len(c.Cuts) + 1 }

// PieceOps returns the ops of piece i.
func (c *Chopped) PieceOps(i int) []txn.Op {
	start, end := c.pieceSpan(i)
	return c.Original.Ops[start:end]
}

// pieceSpan returns [start, end) op indices of piece i.
func (c *Chopped) pieceSpan(i int) (start, end int) {
	start = 0
	if i > 0 {
		start = c.Cuts[i-1]
	}
	end = len(c.Original.Ops)
	if i < len(c.Cuts) {
		end = c.Cuts[i]
	}
	return start, end
}

// merge coalesces pieces i..j (inclusive) into one and returns the
// resulting chopping. Pieces between i and j are swallowed to keep the
// partition contiguous.
func (c *Chopped) merge(i, j int) *Chopped {
	if i > j {
		i, j = j, i
	}
	var cuts []int
	for idx, cut := range c.Cuts {
		// Cut idx separates piece idx from piece idx+1; drop cuts inside
		// the merged range [i, j).
		if idx >= i && idx < j {
			continue
		}
		cuts = append(cuts, cut)
	}
	return &Chopped{Original: c.Original, Cuts: cuts}
}

// Piece is one materialized piece of a chopping in a Set.
type Piece struct {
	// Txn is the index of the original transaction in the Set.
	Txn int
	// Index is the position within CHOP(t): 0 is the first piece p1.
	Index int
	// Program is the piece as a runnable transaction program (ops are the
	// original's sub-slice; name is "orig/p<i>"). Its ε-spec is assigned
	// by a distribution policy, not here.
	Program *txn.Program
	// UpdatePiece reports whether the piece belongs to an update ET. Per
	// the paper a piece of an update ET is an update piece even when its
	// own ops are all reads.
	UpdatePiece bool
}

// Set is a chopping of a whole transaction set CHOP(T): the unit the
// chopping graph and the correctness conditions are defined over.
type Set struct {
	chopped []*Chopped
	pieces  []Piece
	// firstVertex[t] is the vertex index of t's first piece; pieces of t
	// occupy a contiguous vertex range.
	firstVertex []int
}

// NewSet validates the choppings and materializes pieces.
func NewSet(chopped ...*Chopped) (*Set, error) {
	if len(chopped) == 0 {
		return nil, errors.New("chop: empty transaction set")
	}
	names := make(map[string]bool, len(chopped))
	s := &Set{chopped: chopped}
	for ti, c := range chopped {
		if err := c.Validate(); err != nil {
			return nil, fmt.Errorf("chop: transaction %d: %w", ti, err)
		}
		if names[c.Original.Name] {
			return nil, fmt.Errorf("chop: duplicate program name %q", c.Original.Name)
		}
		names[c.Original.Name] = true
		s.firstVertex = append(s.firstVertex, len(s.pieces))
		isUpdate := c.Original.Class() == txn.Update
		for pi := 0; pi < c.NumPieces(); pi++ {
			name := c.Original.Name
			if c.NumPieces() > 1 {
				name = fmt.Sprintf("%s/p%d", c.Original.Name, pi+1)
			}
			prog := &txn.Program{Name: name, Ops: c.PieceOps(pi), Spec: c.Original.Spec}
			s.pieces = append(s.pieces, Piece{
				Txn:         ti,
				Index:       pi,
				Program:     prog,
				UpdatePiece: isUpdate,
			})
		}
	}
	return s, nil
}

// MustSet is NewSet that panics on error; for fixed workloads and tests.
func MustSet(chopped ...*Chopped) *Set {
	s, err := NewSet(chopped...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumTxns returns the number of original transactions.
func (s *Set) NumTxns() int { return len(s.chopped) }

// NumPieces returns the total number of pieces (chopping-graph vertices).
func (s *Set) NumPieces() int { return len(s.pieces) }

// Pieces returns all pieces in vertex order. The slice is shared; callers
// must not mutate it.
func (s *Set) Pieces() []Piece { return s.pieces }

// Piece returns the piece at vertex v.
func (s *Set) Piece(v int) Piece { return s.pieces[v] }

// Vertex returns the vertex index of piece pi of transaction ti.
func (s *Set) Vertex(ti, pi int) int { return s.firstVertex[ti] + pi }

// TxnPieces returns the vertex indices of transaction ti's pieces.
func (s *Set) TxnPieces(ti int) []int {
	out := make([]int, s.chopped[ti].NumPieces())
	for i := range out {
		out[i] = s.firstVertex[ti] + i
	}
	return out
}

// Original returns original transaction ti's program.
func (s *Set) Original(ti int) *txn.Program { return s.chopped[ti].Original }

// Chopping returns the chopping of transaction ti.
func (s *Set) Chopping(ti int) *Chopped { return s.chopped[ti] }

// ReplaceChopping returns a new Set with transaction ti rechopped.
func (s *Set) ReplaceChopping(ti int, c *Chopped) (*Set, error) {
	next := make([]*Chopped, len(s.chopped))
	copy(next, s.chopped)
	next[ti] = c
	return NewSet(next...)
}

// DependencyParents returns, for transaction ti, the parent of each piece
// in the dependency graph DG(CHOP(t)) derived from the program text: piece
// q's parent is the latest earlier sibling that conflicts with q, or p1
// when none does. p1 has parent -1. The result is a tree rooted at p1, as
// Figure 2 assumes.
func (s *Set) DependencyParents(ti int) []int {
	c := s.chopped[ti]
	n := c.NumPieces()
	parents := make([]int, n)
	parents[0] = -1
	for q := 1; q < n; q++ {
		parent := 0
		qOps := c.PieceOps(q)
		for p := q - 1; p >= 1; p-- {
			if opsListsConflict(c.PieceOps(p), qOps) {
				parent = p
				break
			}
		}
		parents[q] = parent
	}
	return parents
}

// opsListsConflict reports whether any op pair across the lists conflicts.
func opsListsConflict(a, b []txn.Op) bool {
	for _, x := range a {
		for _, y := range b {
			if txn.OpsConflict(x, y) {
				return true
			}
		}
	}
	return false
}

// pieceWriteBound returns the total declared bound of writes to key in
// ops (∞ if any write to key is unbounded, 0 if none).
func pieceWriteBound(ops []txn.Op, key storage.Key) metric.Limit {
	total := metric.Zero
	for _, op := range ops {
		if op.Kind == txn.OpWrite && op.Key == key {
			total = total.AddLimit(op.Bound)
		}
	}
	return total
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[storage.Key]V) []storage.Key {
	keys := make([]storage.Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
