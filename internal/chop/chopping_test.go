package chop

import (
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

func transferProg(name string) *txn.Program {
	return txn.MustProgram(name, txn.AddOp("X", -100), txn.AddOp("Y", 100))
}

func TestWholeSinglePiece(t *testing.T) {
	c := Whole(transferProg("t1"))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumPieces() != 1 || len(c.PieceOps(0)) != 2 {
		t.Errorf("Whole: %d pieces, %d ops", c.NumPieces(), len(c.PieceOps(0)))
	}
}

func TestFinestOnePiecePerOp(t *testing.T) {
	c := Finest(transferProg("t1"))
	if c.NumPieces() != 2 {
		t.Fatalf("Finest pieces = %d, want 2", c.NumPieces())
	}
	if len(c.PieceOps(0)) != 1 || len(c.PieceOps(1)) != 1 {
		t.Error("Finest pieces not singletons")
	}
}

func TestFinestRespectsRollbackSafety(t *testing.T) {
	p := txn.MustProgram("w",
		txn.ReadOp("A"),
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("Y", 100),
		txn.AddOp("Z", 1),
	)
	c := Finest(p)
	// Rollback at op 1: ops 0-1 must stay in p1.
	if c.NumPieces() != 3 {
		t.Fatalf("pieces = %d, want 3", c.NumPieces())
	}
	if len(c.PieceOps(0)) != 2 {
		t.Errorf("p1 has %d ops, want 2 (through last rollback)", len(c.PieceOps(0)))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromCutsValidation(t *testing.T) {
	p := transferProg("t1")
	if _, err := FromCuts(p, []int{1}); err != nil {
		t.Errorf("valid cuts rejected: %v", err)
	}
	for _, cuts := range [][]int{{0}, {2}, {1, 1}, {-1}} {
		if _, err := FromCuts(p, cuts); err == nil {
			t.Errorf("cuts %v accepted", cuts)
		}
	}
	// Rollback-unsafe cut.
	rb := txn.MustProgram("w",
		txn.WithAbortIf(txn.AddOp("X", -1), func(metric.Value) bool { return false }),
		txn.AddOp("Y", 1))
	if _, err := FromCuts(rb, []int{1}); err != nil {
		t.Errorf("cut after rollback rejected: %v", err)
	}
	rb2 := txn.MustProgram("w",
		txn.AddOp("X", -1),
		txn.WithAbortIf(txn.AddOp("Y", 1), func(metric.Value) bool { return false }))
	if _, err := FromCuts(rb2, []int{1}); err == nil {
		t.Error("cut before rollback accepted")
	}
}

func TestMergeKeepsContiguity(t *testing.T) {
	p := txn.MustProgram("t",
		txn.AddOp("A", 1), txn.AddOp("B", 1), txn.AddOp("C", 1), txn.AddOp("D", 1))
	c := Finest(p) // 4 pieces, cuts [1 2 3]
	m := c.merge(1, 2)
	if m.NumPieces() != 3 {
		t.Fatalf("pieces after merge = %d, want 3", m.NumPieces())
	}
	if len(m.PieceOps(1)) != 2 {
		t.Errorf("merged piece ops = %d, want 2", len(m.PieceOps(1)))
	}
	// Merging across a gap swallows the middle.
	m2 := c.merge(0, 3)
	if m2.NumPieces() != 1 {
		t.Errorf("full merge pieces = %d, want 1", m2.NumPieces())
	}
	// Reversed order behaves the same.
	m3 := c.merge(2, 1)
	if m3.NumPieces() != 3 {
		t.Errorf("reversed merge pieces = %d, want 3", m3.NumPieces())
	}
}

func TestNewSetMaterializesPieces(t *testing.T) {
	t1, err := FromCuts(transferProg("xfer"), []int{1})
	if err != nil {
		t.Fatal(err)
	}
	audit := Whole(txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")))
	s, err := NewSet(t1, audit)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTxns() != 2 || s.NumPieces() != 3 {
		t.Fatalf("txns=%d pieces=%d", s.NumTxns(), s.NumPieces())
	}
	p := s.Piece(0)
	if p.Program.Name != "xfer/p1" || !p.UpdatePiece || p.Txn != 0 || p.Index != 0 {
		t.Errorf("piece 0 = %+v", p)
	}
	if s.Piece(2).Program.Name != "audit" {
		t.Errorf("unchopped piece name = %q", s.Piece(2).Program.Name)
	}
	if s.Piece(2).UpdatePiece {
		t.Error("audit marked update piece")
	}
	if got := s.Vertex(0, 1); got != 1 {
		t.Errorf("Vertex(0,1) = %d", got)
	}
	if vs := s.TxnPieces(0); len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Errorf("TxnPieces(0) = %v", vs)
	}
}

func TestNewSetRejectsBadInput(t *testing.T) {
	if _, err := NewSet(); err == nil {
		t.Error("empty set accepted")
	}
	a := Whole(transferProg("same"))
	b := Whole(txn.MustProgram("same", txn.ReadOp("Z")))
	if _, err := NewSet(a, b); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := NewSet(&Chopped{}); err == nil {
		t.Error("nil program accepted")
	}
}

func TestUpdatePieceOfUpdateETEvenIfReadOnly(t *testing.T) {
	// A read-only piece of an update ET is still an update piece.
	p := txn.MustProgram("u", txn.ReadOp("A"), txn.AddOp("B", 1))
	c, err := FromCuts(p, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	s := MustSet(c)
	if !s.Piece(0).UpdatePiece {
		t.Error("read-only piece of update ET not marked update")
	}
	if s.Piece(0).Program.Class() != txn.Query {
		t.Error("piece program class should still derive from its own ops")
	}
}

func TestDependencyParentsChainAndTree(t *testing.T) {
	// Ops: W[A], W[A], W[B] — piece 2 (W[A]) depends on piece 1 (W[A]);
	// piece 3 (W[B]) conflicts with no earlier sibling, parent = p1.
	p := txn.MustProgram("t", txn.AddOp("A", 1), txn.AddOp("A", 2), txn.AddOp("B", 3))
	s := MustSet(Finest(p))
	parents := s.DependencyParents(0)
	want := []int{-1, 0, 0}
	if len(parents) != 3 || parents[0] != want[0] || parents[1] != want[1] || parents[2] != want[2] {
		t.Errorf("parents = %v, want %v", parents, want)
	}
	// A real chain: W[A], R[A]+W[B], R[B]+W[C].
	q := txn.MustProgram("q",
		txn.AddOp("A", 1),
		txn.TransformOp("B", func(v metric.Value) metric.Value { return v }, metric.LimitOf(1)),
		txn.ReadOp("B"),
	)
	s2 := MustSet(Finest(q))
	parents2 := s2.DependencyParents(0)
	if parents2[2] != 1 {
		t.Errorf("chain parents = %v, want piece 2 under piece 1", parents2)
	}
}

func TestReplaceChopping(t *testing.T) {
	s := MustSet(Finest(transferProg("t1")), Whole(transferProg("t2")))
	s2, err := s.ReplaceChopping(0, Whole(transferProg("t1")))
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumPieces() != 2 {
		t.Errorf("pieces after replace = %d, want 2", s2.NumPieces())
	}
	if s.NumPieces() != 3 {
		t.Error("ReplaceChopping mutated the original set")
	}
}
