package chop

import (
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// unevenExposureSet builds a transaction with two restricted pieces in
// C-cycles of very different weight: p1 (writes a, bound 10) sits in a
// heavy triangle, p2 (writes b, bound 1) in a light one.
func unevenExposureSet(t *testing.T) *Set {
	t.Helper()
	main := txn.MustProgram("t",
		txn.AddOp("a", 10), txn.AddOp("b", 1),
	).WithSpec(metric.SpecOf(22))
	mc, err := FromCuts(main, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Heavy triangle on a: p1—t1 (10), t1—t2 (m), t2—p1 (10).
	t1 := txn.MustProgram("t1", txn.ReadOp("a"), txn.AddOp("m", 1))
	t2 := txn.MustProgram("t2", txn.ReadOp("m"), txn.ReadOp("a"))
	// Light triangle on b: p2—t3 (1), t3—t4 (n), t4—p2 (1).
	t3 := txn.MustProgram("t3", txn.ReadOp("b"), txn.AddOp("n", 1))
	t4 := txn.MustProgram("t4", txn.ReadOp("n"), txn.ReadOp("b"))
	return MustSet(mc, Whole(t1), Whole(t2), Whole(t3), Whole(t4))
}

func TestProportionalDistributionFollowsExposure(t *testing.T) {
	s := unevenExposureSet(t)
	a := Analyze(s)
	if a.HasSCCycle {
		t.Fatalf("fixture has SC-cycle: %v", a.SCWitness)
	}
	if !a.Restricted[0] || !a.Restricted[1] {
		t.Fatalf("both pieces should be restricted: %v", a.Restricted[:2])
	}
	prop := ProportionalDistribution(a)
	static := StaticDistribution(a)
	// Static: 22/2 = 11 each. Proportional: exposures 20 vs 2 → 20 and 2.
	if static[0].Export.Cmp(metric.LimitOf(11)) != 0 {
		t.Errorf("static p1 = %s, want 11", static[0].Export)
	}
	if prop[0].Export.Cmp(metric.LimitOf(20)) != 0 {
		t.Errorf("proportional p1 = %s, want 20", prop[0].Export)
	}
	if prop[1].Export.Cmp(metric.LimitOf(2)) != 0 {
		t.Errorf("proportional p2 = %s, want 2", prop[1].Export)
	}
	// Conservation: proportional shares sum to ≤ the original limit.
	sum := prop[0].Export.Bound() + prop[1].Export.Bound()
	if sum > 22 {
		t.Errorf("proportional shares sum to %d > 22", sum)
	}
}

func TestProportionalDistributionEqualExposureMatchesStatic(t *testing.T) {
	a := Analyze(Figure1Example())
	prop := ProportionalDistribution(a)
	static := StaticDistribution(a)
	for v := range prop {
		if prop[v].Export.Cmp(static[v].Export) != 0 {
			t.Errorf("piece %d: proportional %s vs static %s (equal exposures should agree)",
				v, prop[v].Export, static[v].Export)
		}
	}
}

func TestProportionalDistributionInfiniteExposureFallsBack(t *testing.T) {
	// A restricted piece with an unbounded (SetOp) conflict weight makes
	// exposures infinite: fall back to the even split.
	main := txn.MustProgram("t",
		txn.SetOp("a", 5), txn.AddOp("b", 1),
	).WithSpec(metric.SpecOf(10))
	mc, err := FromCuts(main, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	t1 := txn.MustProgram("t1", txn.ReadOp("a"), txn.AddOp("m", 1))
	t2 := txn.MustProgram("t2", txn.ReadOp("m"), txn.ReadOp("a"))
	t3 := txn.MustProgram("t3", txn.ReadOp("b"), txn.AddOp("n", 1))
	t4 := txn.MustProgram("t4", txn.ReadOp("n"), txn.ReadOp("b"))
	a := Analyze(MustSet(mc, Whole(t1), Whole(t2), Whole(t3), Whole(t4)))
	prop := ProportionalDistribution(a)
	if prop[0].Export.Cmp(metric.LimitOf(5)) != 0 || prop[1].Export.Cmp(metric.LimitOf(5)) != 0 {
		t.Errorf("fallback split = %s / %s, want 5 / 5", prop[0].Export, prop[1].Export)
	}
}

func TestProportionalDistributionUnrestrictedInfinite(t *testing.T) {
	a := Analyze(Figure1Example())
	prop := ProportionalDistribution(a)
	for _, v := range a.Set.TxnPieces(0) {
		if !a.Restricted[v] && !prop[v].Export.IsInfinite() {
			t.Errorf("unrestricted piece %d got %s, want inf", v, prop[v].Export)
		}
	}
}
