package chop

import (
	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// Figure1Example reproduces the paper's Figure 1: transaction t chopped
// into five pieces p1..p5 (writing keys a..e) amid partner transactions
// t1..t9. Three C-cycles touch p1, p3 and p5 (restricted); p2 and p4
// hang off acyclic C edges (unrestricted); there is no SC-cycle, so the
// chopping is an SR-chopping. Limit_t is 51, so the paper's static
// distribution assigns 17 to each restricted piece and ∞ to the rest.
func Figure1Example() *Set {
	limit51 := metric.Spec{Import: metric.LimitOf(51), Export: metric.LimitOf(51)}
	tMain := txn.MustProgram("t",
		txn.AddOp("a", 1), txn.AddOp("b", 1), txn.AddOp("c", 1),
		txn.AddOp("d", 1), txn.AddOp("e", 1),
	).WithSpec(limit51)
	tc, err := FromCuts(tMain, []int{1, 2, 3, 4})
	if err != nil {
		panic(err) // fixed example; cannot fail
	}
	// Triangle C-cycle {p1, t1, t2} via keys a, m.
	t1 := txn.MustProgram("t1", txn.ReadOp("a"), txn.AddOp("m", 1))
	t2 := txn.MustProgram("t2", txn.ReadOp("m"), txn.ReadOp("a"))
	// 4-cycle {p3, t3, t4, t5} via keys c, n, o.
	t3 := txn.MustProgram("t3", txn.ReadOp("c"), txn.AddOp("n", 1))
	t4 := txn.MustProgram("t4", txn.ReadOp("n"), txn.AddOp("o", 1))
	t5 := txn.MustProgram("t5", txn.ReadOp("o"), txn.ReadOp("c"))
	// Triangle {p5, t6, t7} via keys e, q.
	t6 := txn.MustProgram("t6", txn.ReadOp("e"), txn.AddOp("q", 1))
	t7 := txn.MustProgram("t7", txn.ReadOp("q"), txn.ReadOp("e"))
	// Acyclic C edges onto p2 and p4.
	t8 := txn.MustProgram("t8", txn.ReadOp("b"))
	t9 := txn.MustProgram("t9", txn.ReadOp("d"))
	return MustSet(tc,
		Whole(t1), Whole(t2), Whole(t3), Whole(t4), Whole(t5),
		Whole(t6), Whole(t7), Whole(t8), Whole(t9))
}

// Figure3Example reproduces the paper's Figure 3: t1 chopped into p1
// (R[X], W[X] with bound 2) and p2 (W[Q] with bound 8); t2 reads X and
// Y; t3 writes Y (bound 1) and Z (bound 4); t4 reads Q and Z. One
// SC-cycle p1—t2—t3—t4—p2 is closed by the S edge; Equation 4 gives
// W_S = W_c1 + W_c4 = 2 + 8 = 10, so Z^is(t1) = 10 and the Method 3
// divergence-control budget is Limit − 10 (Equation 6).
func Figure3Example() *Set {
	t1 := txn.MustProgram("t1",
		txn.ReadOp("X"), txn.AddOp("X", 2),
		txn.AddOp("Q", 8),
	).WithSpec(metric.Spec{Import: metric.LimitOf(100), Export: metric.LimitOf(100)})
	t1c, err := FromCuts(t1, []int{2})
	if err != nil {
		panic(err) // fixed example; cannot fail
	}
	t2 := txn.MustProgram("t2", txn.ReadOp("X"), txn.ReadOp("Y"))
	t3 := txn.MustProgram("t3", txn.AddOp("Y", 1), txn.AddOp("Z", 4))
	t4 := txn.MustProgram("t4", txn.ReadOp("Q"), txn.ReadOp("Z"))
	return MustSet(t1c, Whole(t2), Whole(t3), Whole(t4))
}

// HazardExample reproduces the Section 3 update-update hazard: t1
// transfers 100 from X to Y, chopped into two pieces; t2 posts 10%
// interest to X and Y (an update ET). The chopping graph has an SC-cycle
// whose C edges join two update pieces — executing it can destroy money
// permanently, so Definition 1 rejects it.
func HazardExample() *Set {
	t1 := txn.MustProgram("t1",
		txn.AddOp("X", -100), txn.AddOp("Y", 100),
	).WithSpec(metric.SpecOf(1000))
	t1c, err := FromCuts(t1, []int{1})
	if err != nil {
		panic(err) // fixed example; cannot fail
	}
	interest := func(v metric.Value) metric.Value { return v + v/10 }
	t2 := txn.MustProgram("t2",
		txn.TransformOp("X", interest, metric.LimitOf(200)),
		txn.TransformOp("Y", interest, metric.LimitOf(200)),
	).WithSpec(metric.SpecOf(1000))
	return MustSet(t1c, Whole(t2))
}
