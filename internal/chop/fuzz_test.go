package chop

import (
	"fmt"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// The native fuzz targets decode arbitrary bytes into small chopping
// sets and check structural invariants of the analysis against the
// brute-force references. Sizes are capped so the exponential reference
// stays fast enough for fuzzing throughput.

var fuzzTestKeys = []storage.Key{"a", "b", "c", "d"}

// decodeSet turns fuzz bytes into a chopping set: up to 4 programs of
// up to 3 ops each, each program chopped whole / finest / by cuts. The
// decoder never fails — missing bytes read as zero.
func decodeSet(data []byte) *Set {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}
	nProgs := int(next())%3 + 2
	chopped := make([]*Chopped, nProgs)
	for pi := 0; pi < nProgs; pi++ {
		nOps := int(next())%3 + 1
		ops := make([]txn.Op, 0, nOps)
		for oi := 0; oi < nOps; oi++ {
			b := next()
			key := fuzzTestKeys[int(b)%len(fuzzTestKeys)]
			switch (int(b) / 4) % 3 {
			case 0:
				ops = append(ops, txn.ReadOp(key))
			case 1:
				ops = append(ops, txn.AddOp(key, metric.Value(int(b)%5-2)))
			default:
				d := metric.Value(int(b)%3 + 1)
				ops = append(ops, txn.TransformOp(key,
					func(v metric.Value) metric.Value { return v + d },
					metric.LimitOf(metric.Fuzz(d))))
			}
		}
		eps := metric.Fuzz(int(next())%200 + 1)
		p := txn.MustProgram(fmt.Sprintf("p%d", pi), ops...).WithSpec(metric.SpecOf(eps))
		switch int(next()) % 3 {
		case 0:
			chopped[pi] = Whole(p)
		case 1:
			chopped[pi] = Finest(p)
		default:
			var cuts []int
			mask := next()
			for i := 1; i < len(p.Ops); i++ {
				if mask&(1<<uint(i%8)) != 0 {
					cuts = append(cuts, i)
				}
			}
			c, err := FromCuts(p, cuts)
			if err != nil {
				c = Whole(p)
			}
			chopped[pi] = c
		}
	}
	set, err := NewSet(chopped...)
	if err != nil {
		// Programs are well-formed by construction.
		panic(fmt.Sprintf("chop: fuzz decoder built invalid set: %v", err))
	}
	return set
}

// fuzzSeedCorpus returns byte strings shaped after the paper's running
// examples: a chopped transfer with a read-only audit (Section 3's
// SC-cycle), a triangle C-cycle (Figure 1's restricted pattern), and an
// unchopped conflicting pair (the 2-vertex multi-key hazard).
func fuzzSeedCorpus() [][]byte {
	return [][]byte{
		// Section 3 shape: transfer (2 writes, finest) + audit (2 reads, finest).
		{0, 2, 9, 10, 50, 1, 2, 0, 1, 50, 1},
		// Figure 1 shape: chopped writer + two overlapping reader/writers.
		{1, 3, 8, 1, 9, 51, 1, 2, 0, 6, 30, 0, 2, 2, 1, 30, 0},
		// Multi-key C edge: two whole programs touching the same two keys.
		{0, 2, 8, 9, 40, 0, 2, 0, 1, 40, 0},
		// All zeros: minimal degenerate input.
		{0},
	}
}

// FuzzChop checks, for arbitrary chopping sets, that the block-based
// SC-cycle analysis and the restricted-piece computation agree with the
// brute-force simple-cycle references, and that derived facts
// (IsSR, witnesses, update-update classification) stay consistent.
func FuzzChop(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		set := decodeSet(data)
		a := Analyze(set)
		if want := ReferenceSCCycle(a); a.HasSCCycle != want {
			t.Fatalf("HasSCCycle=%v, brute force=%v (input %v)", a.HasSCCycle, want, data)
		}
		wantR := ReferenceRestricted(a)
		for v := range wantR {
			if a.Restricted[v] != wantR[v] {
				t.Fatalf("Restricted[%d]=%v, brute force=%v (input %v)", v, a.Restricted[v], wantR[v], data)
			}
		}
		if a.IsSR() == a.HasSCCycle {
			t.Fatalf("IsSR=%v with HasSCCycle=%v", a.IsSR(), a.HasSCCycle)
		}
		if a.HasSCCycle {
			w := a.SCWitness
			if len(w) < 4 || w[0] != w[len(w)-1] {
				t.Fatalf("SC witness not a closed walk: %v", w)
			}
		}
		for _, id := range a.UpdateUpdateViolations {
			e := a.Edges[id]
			if e.Kind != CEdge || !e.InSCCycle || !e.UpdateUpdate {
				t.Fatalf("update-update violation edge %d misclassified: %+v", id, e)
			}
		}
	})
}

// FuzzEpsilonDistribute checks every distribution policy on arbitrary
// chopping sets: no transaction's budget is over-distributed — the sum
// of finite per-piece limits never exceeds the transaction's declared
// ε — and unrestricted pieces get ∞ under the restricted-aware
// policies.
func FuzzEpsilonDistribute(f *testing.F) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		set := decodeSet(data)
		a := Analyze(set)
		policies := map[string]Assignment{
			"static":       StaticDistribution(a),
			"proportional": ProportionalDistribution(a),
			"naive":        NaiveDistribution(a),
		}
		for name, assign := range policies {
			if len(assign) != set.NumPieces() {
				t.Fatalf("%s: %d specs for %d pieces", name, len(assign), set.NumPieces())
			}
			for ti := 0; ti < set.NumTxns(); ti++ {
				spec := set.Original(ti).Spec
				var imp, exp metric.Fuzz
				for _, v := range set.TxnPieces(ti) {
					s := assign[v]
					if name != "naive" && !a.Restricted[v] {
						if !s.Import.IsInfinite() || !s.Export.IsInfinite() {
							t.Fatalf("%s: unrestricted piece %d got finite spec %s", name, v, s)
						}
						continue
					}
					if !s.Import.IsInfinite() {
						imp += s.Import.Bound()
					}
					if !s.Export.IsInfinite() {
						exp += s.Export.Bound()
					}
				}
				if !spec.Import.IsInfinite() && imp > spec.Import.Bound() {
					t.Fatalf("%s: txn %d import over-distributed: %d > %s", name, ti, imp, spec.Import)
				}
				if !spec.Export.IsInfinite() && exp > spec.Export.Bound() {
					t.Fatalf("%s: txn %d export over-distributed: %d > %s", name, ti, exp, spec.Export)
				}
			}
		}
	})
}
