package chop

// ReferenceSCCycle is the brute-force SC-cycle detector: it enumerates
// every simple cycle of the chopping graph (vertices distinct, edges
// distinct) and reports whether any contains at least one S edge and at
// least one C edge. Exponential in graph size — it exists solely as the
// independent reference the conformance fuzzer cross-checks the
// biconnected-block analysis against (explore.FuzzerStats and
// TestHasSCCycleMatchesBruteForce). Keep it dumb; its only virtue is
// being obviously correct.
func ReferenceSCCycle(a *Analysis) bool {
	g := a.Graph
	found := false
	var walk func(start, at int, usedV map[int]bool, usedE []bool, path []int)
	walk = func(start, at int, usedV map[int]bool, usedE []bool, path []int) {
		if found {
			return
		}
		for e := 0; e < g.NumEdges(); e++ {
			if usedE[e] {
				continue
			}
			u, v := g.Endpoints(e)
			var to int
			switch at {
			case u:
				to = v
			case v:
				to = u
			default:
				continue
			}
			if to == start && len(path) >= 1 {
				hasS, hasC := a.Edges[e].Kind == SEdge, a.Edges[e].Kind == CEdge
				for _, pe := range path {
					if a.Edges[pe].Kind == SEdge {
						hasS = true
					} else {
						hasC = true
					}
				}
				if hasS && hasC {
					found = true
					return
				}
				continue
			}
			if usedV[to] {
				continue
			}
			usedV[to] = true
			usedE[e] = true
			walk(start, to, usedV, usedE, append(path, e))
			usedV[to] = false
			usedE[e] = false
		}
	}
	for start := 0; start < g.NumVertices() && !found; start++ {
		walk(start, start, map[int]bool{start: true}, make([]bool, g.NumEdges()), nil)
	}
	return found
}

// ReferenceRestricted is the brute-force restricted-piece detector: a
// vertex is restricted when it lies on some simple cycle of the C-only
// subgraph, or when it is an endpoint of a multi-key C edge (the
// 2-vertex runtime conflict cycle the simple-cycle view cannot
// represent). Same role as ReferenceSCCycle: slow, obvious, used only
// to cross-check Analysis.Restricted.
func ReferenceRestricted(a *Analysis) []bool {
	g := a.Graph
	out := make([]bool, g.NumVertices())
	cEdge := func(e int) bool { return a.Edges[e].Kind == CEdge }

	var found bool
	var walk func(start, at int, usedV map[int]bool, usedE []bool, n int)
	walk = func(start, at int, usedV map[int]bool, usedE []bool, n int) {
		if found {
			return
		}
		for e := 0; e < g.NumEdges(); e++ {
			if usedE[e] || !cEdge(e) {
				continue
			}
			u, v := g.Endpoints(e)
			var to int
			switch at {
			case u:
				to = v
			case v:
				to = u
			default:
				continue
			}
			if to == start && n >= 2 {
				found = true
				return
			}
			if to == start || usedV[to] {
				continue
			}
			usedV[to] = true
			usedE[e] = true
			walk(start, to, usedV, usedE, n+1)
			usedV[to] = false
			usedE[e] = false
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		found = false
		walk(v, v, map[int]bool{v: true}, make([]bool, g.NumEdges()), 0)
		out[v] = found
	}
	for _, e := range a.Edges {
		if e.Kind == CEdge && len(e.Keys) >= 2 {
			out[e.U] = true
			out[e.V] = true
		}
	}
	return out
}
