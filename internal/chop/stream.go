package chop

import (
	"errors"
	"fmt"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// StreamItem declares one transaction program and how many instances of
// it the job stream contains.
type StreamItem struct {
	// Program is the transaction type.
	Program *txn.Program
	// Count is the number of instances in the analysis interval (≥ 1).
	Count int
}

// Stream is the declared job stream: the paper's key assumption is that
// chopping knows *all* the transactions that will run during some time
// interval — instances, not just types. Inter-sibling fuzziness scales
// with how many conflicting instances can commit between two sibling
// pieces, so the counts are part of the correctness condition, not a
// tuning knob.
type Stream []StreamItem

// StreamOf builds a Stream with count 1 per program.
func StreamOf(programs []*txn.Program) Stream {
	s := make(Stream, len(programs))
	for i, p := range programs {
		s[i] = StreamItem{Program: p, Count: 1}
	}
	return s
}

// expansionCap bounds how many copies of one program the analysis graph
// materializes. All copies of a program are interchangeable (the
// expansion is symmetric under permuting them), so cycle- and
// block-structure questions are answered identically by a bounded number
// of copies; weights are then scaled analytically by the true counts.
const expansionCap = 3

// StreamAnalysis is the multiplicity-aware chopping analysis.
type StreamAnalysis struct {
	// Stream is the declared job stream.
	Stream Stream
	// Choppings is the uniform chopping applied to every instance of each
	// program, indexed like Stream.
	Choppings []*Chopped
	// Expanded is the capped instance expansion the graph analysis ran
	// over (instances are named "name#k" when Count > 1).
	Expanded *Set
	// Analysis is the chopping-graph analysis of Expanded.
	Analysis *Analysis
	// InterSibling is Z^is per program type, scaled to the full declared
	// counts: for each S edge of one representative instance, each
	// incident in-SC-cycle C-edge pattern is multiplied by the partner
	// type's instance count (count−1 for the instance's own type).
	InterSibling []metric.Limit
	// rep maps (type, piece) to the representative instance's vertex.
	rep [][]int
	// typeOf maps an Expanded transaction index to its Stream index.
	typeOf []int
	// instOf maps an Expanded transaction index to its copy number.
	instOf []int
}

// AnalyzeStream analyzes the given uniform choppings against the stream.
func AnalyzeStream(stream Stream, choppings []*Chopped) (*StreamAnalysis, error) {
	if len(stream) == 0 {
		return nil, errors.New("chop: empty stream")
	}
	if len(choppings) != len(stream) {
		return nil, fmt.Errorf("chop: %d choppings for %d stream items", len(choppings), len(stream))
	}
	sa := &StreamAnalysis{Stream: stream, Choppings: choppings}
	var expanded []*Chopped
	for ti, item := range stream {
		if item.Program == nil {
			return nil, fmt.Errorf("chop: stream item %d has nil program", ti)
		}
		if item.Count < 1 {
			return nil, fmt.Errorf("chop: stream item %d (%s) has count %d",
				ti, item.Program.Name, item.Count)
		}
		if choppings[ti].Original != item.Program {
			return nil, fmt.Errorf("chop: chopping %d is not of program %q", ti, item.Program.Name)
		}
		copies := item.Count
		if copies > expansionCap {
			copies = expansionCap
		}
		for k := 0; k < copies; k++ {
			prog := item.Program
			if item.Count > 1 {
				clone := *item.Program
				clone.Name = fmt.Sprintf("%s#%d", item.Program.Name, k)
				prog = &clone
			}
			expanded = append(expanded, &Chopped{Original: prog, Cuts: choppings[ti].Cuts})
			sa.typeOf = append(sa.typeOf, ti)
			sa.instOf = append(sa.instOf, k)
		}
	}
	set, err := NewSet(expanded...)
	if err != nil {
		return nil, err
	}
	sa.Expanded = set
	sa.Analysis = Analyze(set)

	// Representative vertices: instance #0 of each type.
	sa.rep = make([][]int, len(stream))
	for xi := range expanded {
		if sa.instOf[xi] != 0 {
			continue
		}
		sa.rep[sa.typeOf[xi]] = set.TxnPieces(xi)
	}
	sa.computeScaledInterSibling()
	return sa, nil
}

// computeScaledInterSibling fills InterSibling with count-scaled weights.
func (sa *StreamAnalysis) computeScaledInterSibling() {
	a := sa.Analysis
	// Incident in-SC-cycle C edges per vertex of the expansion.
	incident := make([][]int, sa.Expanded.NumPieces())
	for id, e := range a.Edges {
		if e.Kind == CEdge && e.InSCCycle {
			incident[e.U] = append(incident[e.U], id)
			incident[e.V] = append(incident[e.V], id)
		}
	}
	sa.InterSibling = make([]metric.Limit, len(sa.Stream))
	for ti := range sa.Stream {
		total := metric.Zero
		for _, e := range a.Edges {
			if e.Kind != SEdge {
				continue
			}
			// Only S edges of the representative instance.
			xi := sa.Expanded.Piece(e.U).Txn
			if sa.typeOf[xi] != ti || sa.instOf[xi] != 0 {
				continue
			}
			total = total.AddLimit(sa.scaledSEdgeWeight(e, incident, ti))
		}
		sa.InterSibling[ti] = total
	}
}

// scaledSEdgeWeight computes Equation 4 for S edge e of a representative
// instance of type ti, scaling each C-edge pattern by the true instance
// count of its partner type. Patterns are deduplicated by (sibling-side
// vertex, partner type, partner piece): the capped expansion holds up to
// expansionCap copies of each, but the declared stream holds Count.
func (sa *StreamAnalysis) scaledSEdgeWeight(e Edge, incident [][]int, ti int) metric.Limit {
	type pattern struct {
		side         int // which sibling vertex the edge touches
		partnerType  int
		partnerPiece int
	}
	seen := make(map[pattern]bool)
	total := metric.Zero
	for _, side := range []int{e.U, e.V} {
		for _, cid := range incident[side] {
			ce := sa.Analysis.Edges[cid]
			other := ce.U
			if other == side {
				other = ce.V
			}
			op := sa.Expanded.Piece(other)
			pt := sa.typeOf[op.Txn]
			pat := pattern{side: side, partnerType: pt, partnerPiece: op.Index}
			if seen[pat] {
				continue
			}
			seen[pat] = true
			mult := sa.Stream[pt].Count
			if pt == ti {
				mult-- // an instance does not conflict with itself
			}
			if mult <= 0 {
				continue
			}
			w := ce.Weight
			for i := 1; i < mult; i++ {
				w = w.AddLimit(ce.Weight)
			}
			total = total.AddLimit(w)
		}
	}
	return total
}

// IsSR reports whether the uniform chopping is SR-correct for the stream.
func (sa *StreamAnalysis) IsSR() bool { return !sa.Analysis.HasSCCycle }

// CheckESR evaluates Definition 1 against the stream: no update-update C
// edge on an SC-cycle, and each type's count-scaled Z^is within its
// ε-spec.
func (sa *StreamAnalysis) CheckESR() []ESRViolation {
	var violations []ESRViolation
	for _, id := range sa.Analysis.UpdateUpdateViolations {
		e := sa.Analysis.Edges[id]
		violations = append(violations, ESRViolation{
			Kind: "update-update",
			Edge: id,
			Detail: fmt.Sprintf("C edge %s—%s (keys %v) joins two update pieces on an SC-cycle",
				sa.Expanded.Piece(e.U).Program.Name, sa.Expanded.Piece(e.V).Program.Name, e.Keys),
		})
	}
	for ti, item := range sa.Stream {
		limit := streamEpsilonLimit(item.Program)
		if sa.InterSibling[ti].Cmp(limit) > 0 {
			violations = append(violations, ESRViolation{
				Kind: "inter-sibling",
				Txn:  ti,
				Detail: fmt.Sprintf("Z^is(%s) = %s exceeds Limit = %s (count %d)",
					item.Program.Name, sa.InterSibling[ti], limit, item.Count),
			})
		}
	}
	return violations
}

// IsESR reports whether the chopping is an ESR-chopping for the stream.
func (sa *StreamAnalysis) IsESR() bool { return len(sa.CheckESR()) == 0 }

// streamEpsilonLimit is the ε-spec side Z^is counts against.
func streamEpsilonLimit(p *txn.Program) metric.Limit {
	if p.Class() == txn.Update {
		return p.Spec.Export
	}
	return p.Spec.Import
}

// DCLimit returns Limit^DC for type ti (Equation 6) under the scaled
// inter-sibling reserve.
func (sa *StreamAnalysis) DCLimit(ti int) metric.Spec {
	spec := sa.Stream[ti].Program.Spec
	zis := sa.InterSibling[ti]
	if zis.IsInfinite() {
		return metric.Spec{Import: metric.Zero, Export: metric.Zero}
	}
	return metric.Spec{
		Import: spec.Import.Sub(zis.Bound()),
		Export: spec.Export.Sub(zis.Bound()),
	}
}

// Restricted reports whether piece pi of type ti is associated with a
// C-cycle.
func (sa *StreamAnalysis) Restricted(ti, pi int) bool {
	return sa.Analysis.Restricted[sa.rep[ti][pi]]
}

// PieceSpecs computes the static per-piece ε-spec assignment for type ti
// given its transaction-level spec (Section 2.2.1): the spec divides over
// restricted pieces; unrestricted pieces get ∞.
func (sa *StreamAnalysis) PieceSpecs(ti int, spec metric.Spec) []metric.Spec {
	n := sa.Choppings[ti].NumPieces()
	restricted := 0
	for pi := 0; pi < n; pi++ {
		if sa.Restricted(ti, pi) {
			restricted++
		}
	}
	out := make([]metric.Spec, n)
	for pi := 0; pi < n; pi++ {
		if !sa.Restricted(ti, pi) {
			out[pi] = metric.Unbounded
			continue
		}
		out[pi] = metric.Spec{
			Import: spec.Import.Div(restricted),
			Export: spec.Export.Div(restricted),
		}
	}
	return out
}

// ProportionalPieceSpecs splits the spec over type ti's restricted
// pieces proportionally to each piece's conflict exposure — the total
// weight of its incident on-C-cycle C edges in the expanded graph. With
// equal exposures it reduces to PieceSpecs. Exposures come from the
// capped expansion, so with very skewed instance counts the proportions
// are approximate (the verdicts never are).
func (sa *StreamAnalysis) ProportionalPieceSpecs(ti int, spec metric.Spec) []metric.Spec {
	a := sa.Analysis
	cOnly := func(id int) bool { return a.Edges[id].Kind == CEdge }
	onCCycle := a.Graph.EdgesOnCycle(cOnly)
	exposure := make(map[int]metric.Limit)
	for id, e := range a.Edges {
		if e.Kind != CEdge || !onCCycle[id] {
			continue
		}
		for _, v := range []int{e.U, e.V} {
			cur, ok := exposure[v]
			if !ok {
				cur = metric.Zero
			}
			exposure[v] = cur.AddLimit(e.Weight)
		}
	}
	n := sa.Choppings[ti].NumPieces()
	out := make([]metric.Spec, n)
	var restricted []int
	total := metric.Fuzz(0)
	even := false
	for pi := 0; pi < n; pi++ {
		if !sa.Restricted(ti, pi) {
			out[pi] = metric.Unbounded
			continue
		}
		restricted = append(restricted, pi)
		exp, ok := exposure[sa.rep[ti][pi]]
		if !ok {
			exp = metric.Zero
		}
		if exp.IsInfinite() {
			even = true
		} else {
			total = total.Add(exp.Bound())
		}
	}
	if len(restricted) == 0 {
		return out
	}
	if even || total == 0 {
		for _, pi := range restricted {
			out[pi] = metric.Spec{
				Import: spec.Import.Div(len(restricted)),
				Export: spec.Export.Div(len(restricted)),
			}
		}
		return out
	}
	for _, pi := range restricted {
		share := metric.Fuzz(0)
		if exp, ok := exposure[sa.rep[ti][pi]]; ok {
			share = exp.Bound()
		}
		out[pi] = metric.Spec{
			Import: scaleLimit(spec.Import, share, total),
			Export: scaleLimit(spec.Export, share, total),
		}
	}
	return out
}

// NaivePieceSpecs divides the spec over ALL pieces (the ablation).
func (sa *StreamAnalysis) NaivePieceSpecs(ti int, spec metric.Spec) []metric.Spec {
	n := sa.Choppings[ti].NumPieces()
	out := make([]metric.Spec, n)
	for pi := 0; pi < n; pi++ {
		out[pi] = metric.Spec{Import: spec.Import.Div(n), Export: spec.Export.Div(n)}
	}
	return out
}

// FindSRStream computes a finest-effort SR-chopping for the stream by
// merging, per program type, sibling pairs whose S edge lies on an
// SC-cycle of the expanded graph, to fixpoint.
func FindSRStream(stream Stream) (*StreamAnalysis, error) {
	choppings := make([]*Chopped, len(stream))
	for i, item := range stream {
		choppings[i] = Finest(item.Program)
	}
	maxRounds := streamMaxRounds(stream)
	for rounds := 0; ; rounds++ {
		sa, err := AnalyzeStream(stream, choppings)
		if err != nil {
			return nil, err
		}
		if !sa.Analysis.HasSCCycle {
			return sa, nil
		}
		if rounds > maxRounds {
			return nil, errors.New("chop: SR stream refinement did not converge")
		}
		if !sa.mergeFirstSCEdge(choppings) {
			return nil, errors.New("chop: SC-cycle without mergeable siblings")
		}
	}
}

// FindESRStream computes an ESR-chopping for the stream (Definition 1
// with count-scaled inter-sibling fuzziness).
func FindESRStream(stream Stream) (*StreamAnalysis, error) {
	choppings := make([]*Chopped, len(stream))
	for i, item := range stream {
		choppings[i] = Finest(item.Program)
	}
	maxRounds := streamMaxRounds(stream)
	for rounds := 0; ; rounds++ {
		sa, err := AnalyzeStream(stream, choppings)
		if err != nil {
			return nil, err
		}
		violations := sa.CheckESR()
		if len(violations) == 0 {
			return sa, nil
		}
		if rounds > maxRounds {
			return nil, fmt.Errorf("chop: ESR stream refinement did not converge (%v)", violations)
		}
		if !sa.mergeForStreamViolation(choppings, violations[0]) {
			return nil, fmt.Errorf("chop: cannot resolve violation %+v", violations[0])
		}
	}
}

// streamMaxRounds bounds refinement rounds: every merge removes a piece.
func streamMaxRounds(stream Stream) int {
	n := 1
	for _, item := range stream {
		n += len(item.Program.Ops)
	}
	return n
}

// mergeFirstSCEdge merges the sibling pair (uniformly across the type) of
// the first S edge found on an SC-cycle.
func (sa *StreamAnalysis) mergeFirstSCEdge(choppings []*Chopped) bool {
	for _, e := range sa.Analysis.Edges {
		if e.Kind == SEdge && e.InSCCycle {
			return sa.mergeTypeSEdge(choppings, e)
		}
	}
	return false
}

// mergeTypeSEdge merges the piece range of S edge e in its program type's
// uniform chopping.
func (sa *StreamAnalysis) mergeTypeSEdge(choppings []*Chopped, e Edge) bool {
	pu, pv := sa.Expanded.Piece(e.U), sa.Expanded.Piece(e.V)
	if pu.Txn != pv.Txn {
		return false
	}
	ti := sa.typeOf[pu.Txn]
	choppings[ti] = choppings[ti].merge(pu.Index, pv.Index)
	return true
}

// mergeForStreamViolation resolves one ESR violation by a uniform merge.
func (sa *StreamAnalysis) mergeForStreamViolation(choppings []*Chopped, v ESRViolation) bool {
	switch v.Kind {
	case "update-update":
		blockOf := sa.Analysis.Graph.BlockOfEdge(nil)
		target := blockOf[v.Edge]
		for _, e := range sa.Analysis.Edges {
			if e.Kind == SEdge && blockOf[e.ID] == target {
				return sa.mergeTypeSEdge(choppings, e)
			}
		}
		return false
	case "inter-sibling":
		// Merge the heaviest S edge of the violating type's
		// representative instance.
		best := -1
		for _, e := range sa.Analysis.Edges {
			if e.Kind != SEdge {
				continue
			}
			xi := sa.Expanded.Piece(e.U).Txn
			if sa.typeOf[xi] != v.Txn || sa.instOf[xi] != 0 {
				continue
			}
			if best == -1 || sa.Analysis.Edges[best].Weight.Cmp(e.Weight) < 0 {
				best = e.ID
			}
		}
		if best == -1 {
			return false
		}
		return sa.mergeTypeSEdge(choppings, sa.Analysis.Edges[best])
	default:
		return false
	}
}
