package chop

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func bankStream(xferCount, auditCount int, eps metric.Fuzz) Stream {
	xfer := txn.MustProgram("xfer",
		txn.AddOp("X", -100), txn.AddOp("Y", 100),
	).WithSpec(metric.SpecOf(eps))
	audit := txn.MustProgram("audit",
		txn.ReadOp("X"), txn.ReadOp("Y"),
	).WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	return Stream{
		{Program: xfer, Count: xferCount},
		{Program: audit, Count: auditCount},
	}
}

func TestStreamOfDefaultsToCountOne(t *testing.T) {
	p := txn.MustProgram("t", txn.ReadOp("x"))
	s := StreamOf([]*txn.Program{p})
	if len(s) != 1 || s[0].Count != 1 || s[0].Program != p {
		t.Errorf("StreamOf = %+v", s)
	}
}

func TestAnalyzeStreamValidation(t *testing.T) {
	if _, err := AnalyzeStream(nil, nil); err == nil {
		t.Error("empty stream accepted")
	}
	p := txn.MustProgram("t", txn.ReadOp("x"))
	stream := Stream{{Program: p, Count: 1}}
	if _, err := AnalyzeStream(stream, nil); err == nil {
		t.Error("mismatched choppings accepted")
	}
	if _, err := AnalyzeStream(Stream{{Program: p, Count: 0}}, []*Chopped{Whole(p)}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := AnalyzeStream(Stream{{Program: nil, Count: 1}}, []*Chopped{Whole(p)}); err == nil {
		t.Error("nil program accepted")
	}
	other := txn.MustProgram("other", txn.ReadOp("y"))
	if _, err := AnalyzeStream(stream, []*Chopped{Whole(other)}); err == nil {
		t.Error("chopping of wrong program accepted")
	}
}

func TestInterSiblingScalesWithCounts(t *testing.T) {
	// With the transfer chopped, Z^is(xfer) = auditCount × 200 and
	// Z^is(audit) = xferCount × 200 (each sibling gap admits every
	// conflicting instance once, both C edges incident).
	for _, tc := range []struct {
		xfers, audits int
	}{{1, 1}, {5, 2}, {20, 5}} {
		stream := bankStream(tc.xfers, tc.audits, 1<<40)
		choppings := []*Chopped{Finest(stream[0].Program), Finest(stream[1].Program)}
		sa, err := AnalyzeStream(stream, choppings)
		if err != nil {
			t.Fatal(err)
		}
		wantXfer := metric.Fuzz(tc.audits) * 200
		wantAudit := metric.Fuzz(tc.xfers) * 200
		if sa.InterSibling[0].Cmp(metric.LimitOf(wantXfer)) != 0 {
			t.Errorf("%d/%d: Z^is(xfer) = %s, want %d", tc.xfers, tc.audits, sa.InterSibling[0], wantXfer)
		}
		if sa.InterSibling[1].Cmp(metric.LimitOf(wantAudit)) != 0 {
			t.Errorf("%d/%d: Z^is(audit) = %s, want %d", tc.xfers, tc.audits, sa.InterSibling[1], wantAudit)
		}
	}
}

func TestCommutingTransferInstancesDoNotConflict(t *testing.T) {
	// Multiple chopped transfer instances must not create update-update
	// violations: their AddOps commute.
	stream := bankStream(10, 1, 1<<40)
	choppings := []*Chopped{Finest(stream[0].Program), Whole(stream[1].Program)}
	sa, err := AnalyzeStream(stream, choppings)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range sa.CheckESR() {
		if v.Kind == "update-update" {
			t.Errorf("commuting transfers flagged: %s", v.Detail)
		}
	}
}

func TestNonCommutingInstancesDoConflict(t *testing.T) {
	// SetOp-based updates of the same program DO conflict across
	// instances: with 2+ instances the chopping must merge.
	upd := txn.MustProgram("upd",
		txn.SetOp("X", 1), txn.SetOp("Y", 2),
	).WithSpec(metric.Unbounded)
	audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y")).
		WithSpec(metric.Unbounded)
	stream := Stream{{Program: upd, Count: 2}, {Program: audit, Count: 1}}
	sa, err := FindESRStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := sa.Choppings[0].NumPieces(); got != 1 {
		t.Errorf("non-commuting update stayed chopped: %d pieces", got)
	}
}

func TestFindESRStreamRespectsBudgetScaling(t *testing.T) {
	// ε = 1000: with 5 audits the transfer needs export ≥ 5×200 = 1000 to
	// stay chopped (boundary holds); with 6 audits it must merge.
	ok, err := FindESRStream(bankStream(1, 5, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := ok.Choppings[0].NumPieces(); got != 2 {
		t.Errorf("at-budget transfer pieces = %d, want 2", got)
	}
	tight, err := FindESRStream(bankStream(1, 6, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if got := tight.Choppings[0].NumPieces(); got != 1 {
		t.Errorf("over-budget transfer pieces = %d, want 1", got)
	}
}

func TestPieceSpecsStaticSplit(t *testing.T) {
	// Figure-1 style: restricted pieces split the spec; unrestricted get ∞.
	set := Figure1Example()
	stream := make(Stream, set.NumTxns())
	choppings := make([]*Chopped, set.NumTxns())
	for ti := 0; ti < set.NumTxns(); ti++ {
		stream[ti] = StreamItem{Program: set.Original(ti), Count: 1}
		choppings[ti] = set.Chopping(ti)
	}
	sa, err := AnalyzeStream(stream, choppings)
	if err != nil {
		t.Fatal(err)
	}
	specs := sa.PieceSpecs(0, set.Original(0).Spec)
	if len(specs) != 5 {
		t.Fatalf("specs = %d", len(specs))
	}
	for pi, spec := range specs {
		restricted := sa.Restricted(0, pi)
		if restricted && spec.Export.Cmp(metric.LimitOf(17)) != 0 {
			t.Errorf("restricted piece %d spec = %s, want 17", pi, spec.Export)
		}
		if !restricted && !spec.Export.IsInfinite() {
			t.Errorf("unrestricted piece %d spec = %s, want inf", pi, spec.Export)
		}
	}
	naive := sa.NaivePieceSpecs(0, set.Original(0).Spec)
	for pi, spec := range naive {
		if spec.Export.Cmp(metric.LimitOf(10)) != 0 {
			t.Errorf("naive piece %d = %s, want 10", pi, spec.Export)
		}
	}
}

func TestDCLimitScaledByCounts(t *testing.T) {
	stream := bankStream(10, 5, 100000)
	sa, err := FindESRStream(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Transfer chopped: Z^is(xfer) = 5×200 = 1000 → DC budget 99000.
	if got := sa.DCLimit(0).Export; got.Cmp(metric.LimitOf(99000)) != 0 {
		t.Errorf("DCLimit(xfer).Export = %s, want 99000", got)
	}
}

// randomStream builds a random declared stream over a small key space.
func randomStream(rng *rand.Rand) Stream {
	nPrograms := rng.Intn(4) + 2
	keys := []storage.Key{"a", "b", "c", "d", "e"}
	var stream Stream
	for pi := 0; pi < nPrograms; pi++ {
		nOps := rng.Intn(4) + 1
		var ops []txn.Op
		for oi := 0; oi < nOps; oi++ {
			key := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0:
				ops = append(ops, txn.ReadOp(key))
			case 1, 2:
				ops = append(ops, txn.AddOp(key, metric.Value(rng.Intn(200)-100)))
			default:
				op := txn.TransformOp(key,
					func(v metric.Value) metric.Value { return v / 2 },
					metric.LimitOf(metric.Fuzz(rng.Intn(500))))
				ops = append(ops, op)
			}
		}
		// Sprinkle rollback statements.
		if rng.Intn(3) == 0 {
			idx := rng.Intn(len(ops))
			ops[idx] = txn.WithAbortIf(ops[idx], func(v metric.Value) bool { return v < -1000000 })
		}
		spec := metric.SpecOf(metric.Fuzz(rng.Intn(2000)))
		if rng.Intn(4) == 0 {
			spec = metric.Unbounded
		}
		p := txn.MustProgram(fmt.Sprintf("p%d", pi), ops...).WithSpec(spec)
		stream = append(stream, StreamItem{Program: p, Count: rng.Intn(5) + 1})
	}
	return stream
}

func TestFindSRStreamPropertyNoSCCycle(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng)
		sa, err := FindSRStream(stream)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Result must be SC-cycle free and rollback-safe.
		if sa.Analysis.HasSCCycle {
			return false
		}
		for _, c := range sa.Choppings {
			if err := c.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFindESRStreamPropertyDefinition1(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng)
		sa, err := FindESRStream(stream)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Result must satisfy Definition 1 and rollback-safety.
		if len(sa.CheckESR()) != 0 {
			return false
		}
		for _, c := range sa.Choppings {
			if err := c.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestESRNeverCoarserThanSRProperty(t *testing.T) {
	// The ESR-chopping is always at least as fine as the SR-chopping
	// (SC-cycle-free choppings trivially satisfy Definition 1 when
	// budgets allow, and merging stops earlier).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := randomStream(rng)
		sr, err1 := FindSRStream(stream)
		esr, err2 := FindESRStream(stream)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both fail or both succeed
		}
		totalSR, totalESR := 0, 0
		for i := range stream {
			totalSR += sr.Choppings[i].NumPieces()
			totalESR += esr.Choppings[i].NumPieces()
		}
		return totalESR >= totalSR
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpansionCapDoesNotChangeVerdicts(t *testing.T) {
	// Counts beyond the cap must not change SC-cycle structure: compare
	// count=3 (the cap) with count=10 for cycle-related booleans.
	mk := func(count int) *StreamAnalysis {
		stream := bankStream(count, count, 1<<40)
		choppings := []*Chopped{Finest(stream[0].Program), Finest(stream[1].Program)}
		sa, err := AnalyzeStream(stream, choppings)
		if err != nil {
			t.Fatal(err)
		}
		return sa
	}
	a3, a10 := mk(3), mk(10)
	if a3.Analysis.HasSCCycle != a10.Analysis.HasSCCycle {
		t.Error("cap changed SC-cycle verdict")
	}
	if a3.Restricted(0, 0) != a10.Restricted(0, 0) {
		t.Error("cap changed restrictedness")
	}
}
