// Package commit implements the two-phase commit protocol over the
// simulated network — the synchronous baseline that Section 4 argues
// recoverable-queue chopping can replace.
//
// The protocol is the textbook blocking 2PC: the coordinator sends
// PREPARE to every participant and waits for unanimous YES votes, then
// sends the decision and waits for acknowledgments — two full message
// rounds (four one-way messages per participant) on the critical path.
// Participants that voted YES are *blocked*: they hold their locks in
// the prepared state until the decision arrives, so a coordinator crash
// between the rounds leaves them stuck — the availability hazard the
// paper contrasts with asynchronous piece commits.
//
// Bounded-wait mode (WithTimeouts) converts the unbounded blocking into
// the presumed-abort discipline of multi-shot commit protocols: the
// coordinator retries each round with exponential backoff and, after
// bounded attempts, presumes abort (ErrTimeoutAbort) and logs the
// decision; prepared participants that wait too long for a decision
// query the coordinator, which answers from its decision log — and
// answers "abort" for any transaction it has no record of (presumed
// abort). Under the same fault schedules where chopped pieces keep
// settling, bounded-wait 2PC *measurably* times out and aborts, which
// is exactly the availability comparison the chaos harness asserts.
package commit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/simnet"
)

// Message kinds on the wire.
const (
	// KindPrepare asks a participant to prepare a subtransaction.
	KindPrepare = "2pc.prepare"
	// KindVote carries a participant's YES/NO vote.
	KindVote = "2pc.vote"
	// KindDecision carries the coordinator's commit/abort decision.
	KindDecision = "2pc.decision"
	// KindAck acknowledges a decision.
	KindAck = "2pc.ack"
	// KindQuery asks the coordinator for the decision of a transaction
	// the querying participant is still prepared (in doubt) on.
	KindQuery = "2pc.query"
)

// Errors returned by Execute and used to classify votes.
var (
	// ErrAborted is returned when a participant voted NO for a business
	// reason (a rollback statement fired): the abort is final.
	ErrAborted = errors.New("commit: transaction aborted")
	// ErrSystemAbort is returned when a participant voted NO for a
	// system reason (lock-wait timeout on a distributed deadlock,
	// divergence refusal): the coordinator may retry with a fresh txid.
	ErrSystemAbort = errors.New("commit: system abort, retryable")
	// ErrBusinessVote is the sentinel a Prepare hook wraps to mark its
	// NO vote as a business rollback rather than a system failure.
	ErrBusinessVote = errors.New("commit: business rollback vote")
	// ErrTimeoutAbort is returned in bounded-wait mode when the vote
	// round exhausted its retries: the coordinator presumed abort. It is
	// deliberately distinct from ErrSystemAbort so harnesses can count
	// how often 2PC's blocking window turned into an abort.
	ErrTimeoutAbort = errors.New("commit: vote round timed out, presumed abort")
)

// Timeouts configures bounded-wait 2PC. The zero value disables it
// (legacy unbounded blocking, the paper's strawman).
type Timeouts struct {
	// VoteWait bounds each coordinator wait for the vote round; zero
	// disables bounded-wait mode entirely.
	VoteWait time.Duration
	// AckWait bounds each coordinator wait for decision acks (defaults
	// to VoteWait).
	AckWait time.Duration
	// QueryAfter is how long a prepared participant stays in doubt
	// before querying the coordinator for a stale decision (defaults to
	// 2×VoteWait). Retries back off exponentially, capped at 10×.
	QueryAfter time.Duration
	// MaxRetries bounds the resend attempts per round; waits double
	// after each retry.
	MaxRetries int
}

// enabled reports whether bounded-wait mode is on.
func (t Timeouts) enabled() bool { return t.VoteWait > 0 }

// withDefaults fills derived fields.
func (t Timeouts) withDefaults() Timeouts {
	if !t.enabled() {
		return t
	}
	if t.AckWait <= 0 {
		t.AckWait = t.VoteWait
	}
	if t.QueryAfter <= 0 {
		t.QueryAfter = 2 * t.VoteWait
	}
	return t
}

// DefaultTimeouts returns bounded-wait settings suited to the
// simulation's LAN-scale latencies.
func DefaultTimeouts() Timeouts {
	return Timeouts{VoteWait: 50 * time.Millisecond, MaxRetries: 2}.withDefaults()
}

// Option configures a Node.
type Option func(*Node)

// WithTimeouts enables bounded-wait mode.
func WithTimeouts(t Timeouts) Option {
	return func(n *Node) { n.timeouts = t.withDefaults() }
}

// Observer receives coordinator-side protocol progress: one Round call
// per completed message round (kind "vote" or "ack", with the attempt
// count and the round's wall-clock duration) and one Decision call per
// logged decision. Implementations must be fast and must not call back
// into the node. Nil (the default) disables it.
type Observer interface {
	Round(txid, kind string, attempts int, d time.Duration)
	Decision(txid string, commit bool)
}

// WithObserver installs a protocol observer (see Observer).
func WithObserver(o Observer) Option {
	return func(n *Node) { n.obs = o }
}

// prepareMsg is the PREPARE payload.
type prepareMsg struct {
	TxID    string
	Payload any
}

// voteMsg is the VOTE payload.
type voteMsg struct {
	TxID     string
	Site     simnet.SiteID
	Yes      bool
	Business bool // NO vote caused by a business rollback
	Result   any
}

// decisionMsg is the DECISION payload.
type decisionMsg struct {
	TxID   string
	Commit bool
}

// ackMsg is the ACK payload.
type ackMsg struct {
	TxID string
	Site simnet.SiteID
}

// queryMsg is the stale-decision QUERY payload.
type queryMsg struct {
	TxID string
	Site simnet.SiteID
}

// Hooks are the participant-side callbacks into the local transaction
// engine.
type Hooks struct {
	// Prepare executes/validates the local subtransaction described by
	// payload and leaves it holding its locks. A nil error is a YES
	// vote; the result value rides back to the coordinator on the vote
	// (e.g. the values a read-only subtransaction observed).
	Prepare func(ctx context.Context, txid string, payload any) (any, error)
	// Commit finalizes a prepared subtransaction.
	Commit func(txid string)
	// Abort rolls back a prepared subtransaction.
	Abort func(txid string)
}

// coordState tracks one coordinated transaction.
type coordState struct {
	participants map[simnet.SiteID]bool
	votes        map[simnet.SiteID]bool
	results      map[simnet.SiteID]any
	acks         map[simnet.SiteID]bool
	votedNo      bool
	businessNo   bool
	votesDone    chan struct{}
	acksDone     chan struct{}
}

// inDoubt is a participant-side prepared (blocked) subtransaction
// awaiting its decision. In bounded-wait mode it carries the timer that
// periodically queries the coordinator for a stale decision.
type inDoubt struct {
	coord  simnet.SiteID
	result any
	timer  *time.Timer
}

// Node is one site's 2PC endpoint: it can coordinate transactions and
// participate in others'.
type Node struct {
	site     simnet.SiteID
	net      simnet.Sender
	hooks    Hooks
	timeouts Timeouts
	obs      Observer

	mu       sync.Mutex
	coords   map[string]*coordState
	prepared map[string]*inDoubt // participant-side prepared (blocked) txns
	// preparing tracks in-flight Prepare hooks so that a concurrently
	// delivered decision waits for them (Handle may run concurrently).
	preparing map[string]chan struct{}
	// decided records decisions that arrived before their prepare
	// (possible under network reordering): the late prepare applies the
	// decision immediately instead of blocking forever.
	decided map[string]bool
	// decisions is the coordinator's decision log, consulted to answer
	// stale-decision queries. A transaction with no entry is presumed
	// aborted. (A production log would be truncated once every
	// participant acked; the simulation keeps it whole.)
	decisions map[string]bool
}

// NewNode builds a 2PC endpoint for site.
func NewNode(site simnet.SiteID, net simnet.Sender, hooks Hooks, opts ...Option) *Node {
	n := &Node{
		site:      site,
		net:       net,
		hooks:     hooks,
		coords:    make(map[string]*coordState),
		prepared:  make(map[string]*inDoubt),
		preparing: make(map[string]chan struct{}),
		decided:   make(map[string]bool),
		decisions: make(map[string]bool),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// PreparedCount returns the number of participant-side transactions
// prepared and awaiting a decision — the blocked window the paper warns
// about.
func (n *Node) PreparedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.prepared)
}

// Decision reports this node's logged coordinator decision for txid:
// (commit, true) once decided, (false, false) if unknown — which a
// querying participant must read as presumed abort.
func (n *Node) Decision(txid string) (commit, known bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	commit, known = n.decisions[txid]
	return commit, known
}

// Execute coordinates a distributed transaction with the given
// per-participant payloads. On commit it returns the participants'
// prepare results. It returns ErrAborted if any participant voted NO, or
// ctx.Err() if the protocol could not finish in time (e.g. a participant
// crashed — 2PC blocks).
func (n *Node) Execute(ctx context.Context, txid string, payloads map[simnet.SiteID]any) (map[simnet.SiteID]any, error) {
	if len(payloads) == 0 {
		return nil, errors.New("commit: no participants")
	}
	st := &coordState{
		participants: make(map[simnet.SiteID]bool, len(payloads)),
		votes:        make(map[simnet.SiteID]bool, len(payloads)),
		results:      make(map[simnet.SiteID]any, len(payloads)),
		acks:         make(map[simnet.SiteID]bool, len(payloads)),
		votesDone:    make(chan struct{}),
		acksDone:     make(chan struct{}),
	}
	for site := range payloads {
		st.participants[site] = true
	}
	n.mu.Lock()
	if _, dup := n.coords[txid]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("commit: duplicate txid %q", txid)
	}
	n.coords[txid] = st
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.coords, txid)
		n.mu.Unlock()
	}()

	// Phase 1: PREPARE round.
	voteStart := time.Now()
	voteAttempts := 1
	voteErr := func() error {
		if n.timeouts.enabled() {
			var err error
			voteAttempts, err = n.voteRoundBounded(ctx, txid, st, payloads)
			return err
		}
		for site, payload := range payloads {
			err := n.net.Send(simnet.Message{
				From: n.site, To: site, Kind: KindPrepare,
				Payload: prepareMsg{TxID: txid, Payload: payload},
			})
			if err != nil {
				// Unreachable participant: broadcast abort to whoever got
				// a PREPARE and surface the failure — the protocol could
				// not run, which is different from a NO vote.
				n.logDecision(txid, false)
				n.decide(txid, st, false)
				return fmt.Errorf("commit: prepare %s unreachable: %w", site, err)
			}
		}
		select {
		case <-st.votesDone:
			return nil
		case <-ctx.Done():
			n.logDecision(txid, false)
			n.decide(txid, st, false)
			return ctx.Err()
		}
	}()
	if n.obs != nil {
		n.obs.Round(txid, "vote", voteAttempts, time.Since(voteStart))
	}
	if voteErr != nil {
		return nil, voteErr
	}

	doCommit := !st.votedNo
	// Phase 2: DECISION round. The decision is logged before the first
	// broadcast so stale-decision queries always see it.
	n.logDecision(txid, doCommit)
	if n.obs != nil {
		n.obs.Decision(txid, doCommit)
	}
	n.decide(txid, st, doCommit)
	ackStart := time.Now()
	ackAttempts := 1
	if n.timeouts.enabled() {
		// Bounded ack wait with retransmission. Exhausting the retries is
		// not a failure: the decision is logged, so in-doubt participants
		// resolve themselves through KindQuery once reachable.
		wait := n.timeouts.AckWait
		for attempt := 0; ; attempt++ {
			ackAttempts = attempt + 1
			timer := time.NewTimer(wait)
			select {
			case <-st.acksDone:
				timer.Stop()
			case <-timer.C:
				if attempt < n.timeouts.MaxRetries {
					wait *= 2
					n.decide(txid, st, doCommit) // retransmit
					continue
				}
			case <-ctx.Done():
				timer.Stop()
			}
			break
		}
	} else {
		select {
		case <-st.acksDone:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if n.obs != nil {
		n.obs.Round(txid, "ack", ackAttempts, time.Since(ackStart))
	}
	if !doCommit {
		n.mu.Lock()
		business := st.businessNo
		n.mu.Unlock()
		if business {
			return nil, ErrAborted
		}
		return nil, ErrSystemAbort
	}
	n.mu.Lock()
	results := make(map[simnet.SiteID]any, len(st.results))
	for site, res := range st.results {
		results[site] = res
	}
	n.mu.Unlock()
	return results, nil
}

// voteRoundBounded runs the PREPARE round under bounded-wait rules:
// each attempt (re)sends every prepare — send errors are just another
// way a vote fails to arrive — and waits VoteWait (doubling per retry).
// After MaxRetries the coordinator presumes abort, logs it, broadcasts
// it to whoever prepared, and returns ErrTimeoutAbort. The attempt
// count is returned either way (observer accounting).
func (n *Node) voteRoundBounded(ctx context.Context, txid string, st *coordState, payloads map[simnet.SiteID]any) (int, error) {
	wait := n.timeouts.VoteWait
	for attempt := 0; ; attempt++ {
		for site, payload := range payloads {
			// Errors (down site, cut link) are deliberately ignored: a
			// retry may reach a recovered site, and the timeout bounds
			// the total wait either way.
			_ = n.net.Send(simnet.Message{
				From: n.site, To: site, Kind: KindPrepare,
				Payload: prepareMsg{TxID: txid, Payload: payload},
			})
		}
		timer := time.NewTimer(wait)
		select {
		case <-st.votesDone:
			timer.Stop()
			return attempt + 1, nil
		case <-timer.C:
			if attempt >= n.timeouts.MaxRetries {
				n.logDecision(txid, false)
				n.decide(txid, st, false)
				return attempt + 1, fmt.Errorf("%w: no unanimous vote after %d attempts",
					ErrTimeoutAbort, attempt+1)
			}
			wait *= 2
		case <-ctx.Done():
			timer.Stop()
			n.logDecision(txid, false)
			n.decide(txid, st, false)
			return attempt + 1, ctx.Err()
		}
	}
}

// logDecision records a coordinator decision for stale-decision
// queries.
func (n *Node) logDecision(txid string, commit bool) {
	n.mu.Lock()
	n.decisions[txid] = commit
	n.mu.Unlock()
}

// decide broadcasts the decision to all participants.
func (n *Node) decide(txid string, st *coordState, commit bool) {
	for site := range st.participants {
		_ = n.net.Send(simnet.Message{
			From: n.site, To: site, Kind: KindDecision,
			Payload: decisionMsg{TxID: txid, Commit: commit},
		})
	}
}

// armQuery schedules (or reschedules) the in-doubt participant's
// stale-decision query. Callers must hold n.mu.
func (n *Node) armQuery(txid string, pd *inDoubt, interval time.Duration) {
	pd.timer = time.AfterFunc(interval, func() {
		n.mu.Lock()
		if n.prepared[txid] != pd {
			n.mu.Unlock()
			return // decision arrived; nothing in doubt
		}
		next := interval * 2
		if limit := 10 * n.timeouts.QueryAfter; next > limit {
			next = limit
		}
		n.armQuery(txid, pd, next)
		coord := pd.coord
		n.mu.Unlock()
		// Errors are expected while the coordinator is unreachable; the
		// rescheduled timer retries.
		_ = n.net.Send(simnet.Message{
			From: n.site, To: coord, Kind: KindQuery,
			Payload: queryMsg{TxID: txid, Site: n.site},
		})
	})
}

// Handle processes a 2PC network message; the site dispatch loop routes
// Kind == 2pc.* here.
func (n *Node) Handle(ctx context.Context, msg simnet.Message) {
	switch msg.Kind {
	case KindPrepare:
		pm, ok := msg.Payload.(prepareMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		if pd := n.prepared[pm.TxID]; pd != nil {
			// Duplicate prepare while prepared: the hook must not re-run,
			// but the YES vote may have been lost — resend it with the
			// cached result so a retrying coordinator can make progress.
			result := pd.result
			n.mu.Unlock()
			_ = n.net.Send(simnet.Message{
				From: n.site, To: msg.From, Kind: KindVote,
				Payload: voteMsg{TxID: pm.TxID, Site: n.site, Yes: true, Result: result},
			})
			return
		}
		if _, dup := n.preparing[pm.TxID]; dup {
			n.mu.Unlock()
			return // prepare already in flight
		}
		done := make(chan struct{})
		n.preparing[pm.TxID] = done
		n.mu.Unlock()

		var (
			err    error
			result any
		)
		if n.hooks.Prepare != nil {
			result, err = n.hooks.Prepare(ctx, pm.TxID, pm.Payload)
		}
		n.mu.Lock()
		delete(n.preparing, pm.TxID)
		earlyDecision, hasEarly := n.decided[pm.TxID]
		delete(n.decided, pm.TxID)
		if err == nil && !hasEarly {
			pd := &inDoubt{coord: msg.From, result: result}
			n.prepared[pm.TxID] = pd
			if n.timeouts.enabled() {
				n.armQuery(pm.TxID, pd, n.timeouts.QueryAfter)
			}
		}
		n.mu.Unlock()
		close(done)
		if hasEarly && err == nil {
			// The decision raced ahead of the prepare: apply it now so
			// the subtransaction does not hold its locks forever.
			if earlyDecision {
				if n.hooks.Commit != nil {
					n.hooks.Commit(pm.TxID)
				}
			} else if n.hooks.Abort != nil {
				n.hooks.Abort(pm.TxID)
			}
			return
		}
		_ = n.net.Send(simnet.Message{
			From: n.site, To: msg.From, Kind: KindVote,
			Payload: voteMsg{
				TxID: pm.TxID, Site: n.site, Yes: err == nil,
				Business: errors.Is(err, ErrBusinessVote), Result: result,
			},
		})
	case KindVote:
		vm, ok := msg.Payload.(voteMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		st := n.coords[vm.TxID]
		if st == nil || !st.participants[vm.Site] {
			n.mu.Unlock()
			return
		}
		if _, seen := st.votes[vm.Site]; !seen {
			st.votes[vm.Site] = vm.Yes
			st.results[vm.Site] = vm.Result
			if !vm.Yes {
				st.votedNo = true
				if vm.Business {
					st.businessNo = true
				}
			}
			if len(st.votes) == len(st.participants) {
				close(st.votesDone)
			}
		}
		n.mu.Unlock()
	case KindDecision:
		dm, ok := msg.Payload.(decisionMsg)
		if !ok {
			return
		}
		// Wait out an in-flight prepare for the same transaction.
		n.mu.Lock()
		inFlight := n.preparing[dm.TxID]
		n.mu.Unlock()
		if inFlight != nil {
			select {
			case <-inFlight:
			case <-ctx.Done():
				return
			}
		}
		n.mu.Lock()
		pd := n.prepared[dm.TxID]
		delete(n.prepared, dm.TxID)
		if pd != nil && pd.timer != nil {
			pd.timer.Stop()
		}
		wasPrepared := pd != nil
		if !wasPrepared && inFlight == nil {
			// Decision before its prepare: remember it for the prepare.
			n.decided[dm.TxID] = dm.Commit
		}
		n.mu.Unlock()
		if wasPrepared {
			if dm.Commit {
				if n.hooks.Commit != nil {
					n.hooks.Commit(dm.TxID)
				}
			} else if n.hooks.Abort != nil {
				n.hooks.Abort(dm.TxID)
			}
		}
		_ = n.net.Send(simnet.Message{
			From: n.site, To: msg.From, Kind: KindAck,
			Payload: ackMsg{TxID: dm.TxID, Site: n.site},
		})
	case KindAck:
		am, ok := msg.Payload.(ackMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		st := n.coords[am.TxID]
		if st == nil || !st.participants[am.Site] {
			n.mu.Unlock()
			return
		}
		if !st.acks[am.Site] {
			st.acks[am.Site] = true
			if len(st.acks) == len(st.participants) {
				close(st.acksDone)
			}
		}
		n.mu.Unlock()
	case KindQuery:
		qm, ok := msg.Payload.(queryMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		commit, known := n.decisions[qm.TxID]
		_, active := n.coords[qm.TxID]
		n.mu.Unlock()
		if !known && active {
			return // still deciding; the participant will ask again
		}
		// Presumed abort: a transaction the coordinator has no decision
		// record for was never committed.
		_ = n.net.Send(simnet.Message{
			From: n.site, To: qm.Site, Kind: KindDecision,
			Payload: decisionMsg{TxID: qm.TxID, Commit: known && commit},
		})
	}
}
