// Package commit implements the two-phase commit protocol over the
// simulated network — the synchronous baseline that Section 4 argues
// recoverable-queue chopping can replace.
//
// The protocol is the textbook blocking 2PC: the coordinator sends
// PREPARE to every participant and waits for unanimous YES votes, then
// sends the decision and waits for acknowledgments — two full message
// rounds (four one-way messages per participant) on the critical path.
// Participants that voted YES are *blocked*: they hold their locks in
// the prepared state until the decision arrives, so a coordinator crash
// between the rounds leaves them stuck — the availability hazard the
// paper contrasts with asynchronous piece commits.
package commit

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"asynctp/internal/simnet"
)

// Message kinds on the wire.
const (
	// KindPrepare asks a participant to prepare a subtransaction.
	KindPrepare = "2pc.prepare"
	// KindVote carries a participant's YES/NO vote.
	KindVote = "2pc.vote"
	// KindDecision carries the coordinator's commit/abort decision.
	KindDecision = "2pc.decision"
	// KindAck acknowledges a decision.
	KindAck = "2pc.ack"
)

// Errors returned by Execute and used to classify votes.
var (
	// ErrAborted is returned when a participant voted NO for a business
	// reason (a rollback statement fired): the abort is final.
	ErrAborted = errors.New("commit: transaction aborted")
	// ErrSystemAbort is returned when a participant voted NO for a
	// system reason (lock-wait timeout on a distributed deadlock,
	// divergence refusal): the coordinator may retry with a fresh txid.
	ErrSystemAbort = errors.New("commit: system abort, retryable")
	// ErrBusinessVote is the sentinel a Prepare hook wraps to mark its
	// NO vote as a business rollback rather than a system failure.
	ErrBusinessVote = errors.New("commit: business rollback vote")
)

// prepareMsg is the PREPARE payload.
type prepareMsg struct {
	TxID    string
	Payload any
}

// voteMsg is the VOTE payload.
type voteMsg struct {
	TxID     string
	Site     simnet.SiteID
	Yes      bool
	Business bool // NO vote caused by a business rollback
	Result   any
}

// decisionMsg is the DECISION payload.
type decisionMsg struct {
	TxID   string
	Commit bool
}

// ackMsg is the ACK payload.
type ackMsg struct {
	TxID string
	Site simnet.SiteID
}

// Hooks are the participant-side callbacks into the local transaction
// engine.
type Hooks struct {
	// Prepare executes/validates the local subtransaction described by
	// payload and leaves it holding its locks. A nil error is a YES
	// vote; the result value rides back to the coordinator on the vote
	// (e.g. the values a read-only subtransaction observed).
	Prepare func(ctx context.Context, txid string, payload any) (any, error)
	// Commit finalizes a prepared subtransaction.
	Commit func(txid string)
	// Abort rolls back a prepared subtransaction.
	Abort func(txid string)
}

// coordState tracks one coordinated transaction.
type coordState struct {
	participants map[simnet.SiteID]bool
	votes        map[simnet.SiteID]bool
	results      map[simnet.SiteID]any
	acks         map[simnet.SiteID]bool
	votedNo      bool
	businessNo   bool
	votesDone    chan struct{}
	acksDone     chan struct{}
}

// Node is one site's 2PC endpoint: it can coordinate transactions and
// participate in others'.
type Node struct {
	site  simnet.SiteID
	net   *simnet.Network
	hooks Hooks

	mu       sync.Mutex
	coords   map[string]*coordState
	prepared map[string]bool // participant-side prepared (blocked) txns
	// preparing tracks in-flight Prepare hooks so that a concurrently
	// delivered decision waits for them (Handle may run concurrently).
	preparing map[string]chan struct{}
	// decided records decisions that arrived before their prepare
	// (possible under network reordering): the late prepare applies the
	// decision immediately instead of blocking forever.
	decided map[string]bool
}

// NewNode builds a 2PC endpoint for site.
func NewNode(site simnet.SiteID, net *simnet.Network, hooks Hooks) *Node {
	return &Node{
		site:      site,
		net:       net,
		hooks:     hooks,
		coords:    make(map[string]*coordState),
		prepared:  make(map[string]bool),
		preparing: make(map[string]chan struct{}),
		decided:   make(map[string]bool),
	}
}

// PreparedCount returns the number of participant-side transactions
// prepared and awaiting a decision — the blocked window the paper warns
// about.
func (n *Node) PreparedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.prepared)
}

// Execute coordinates a distributed transaction with the given
// per-participant payloads. On commit it returns the participants'
// prepare results. It returns ErrAborted if any participant voted NO, or
// ctx.Err() if the protocol could not finish in time (e.g. a participant
// crashed — 2PC blocks).
func (n *Node) Execute(ctx context.Context, txid string, payloads map[simnet.SiteID]any) (map[simnet.SiteID]any, error) {
	if len(payloads) == 0 {
		return nil, errors.New("commit: no participants")
	}
	st := &coordState{
		participants: make(map[simnet.SiteID]bool, len(payloads)),
		votes:        make(map[simnet.SiteID]bool, len(payloads)),
		results:      make(map[simnet.SiteID]any, len(payloads)),
		acks:         make(map[simnet.SiteID]bool, len(payloads)),
		votesDone:    make(chan struct{}),
		acksDone:     make(chan struct{}),
	}
	for site := range payloads {
		st.participants[site] = true
	}
	n.mu.Lock()
	if _, dup := n.coords[txid]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("commit: duplicate txid %q", txid)
	}
	n.coords[txid] = st
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		delete(n.coords, txid)
		n.mu.Unlock()
	}()

	// Phase 1: PREPARE round.
	for site, payload := range payloads {
		err := n.net.Send(simnet.Message{
			From: n.site, To: site, Kind: KindPrepare,
			Payload: prepareMsg{TxID: txid, Payload: payload},
		})
		if err != nil {
			// Unreachable participant: broadcast abort to whoever got a
			// PREPARE and surface the failure — the protocol could not
			// run, which is different from a NO vote.
			n.decide(txid, st, false)
			return nil, fmt.Errorf("commit: prepare %s unreachable: %w", site, err)
		}
	}
	select {
	case <-st.votesDone:
	case <-ctx.Done():
		n.decide(txid, st, false)
		return nil, ctx.Err()
	}

	doCommit := !st.votedNo
	// Phase 2: DECISION round.
	n.decide(txid, st, doCommit)
	select {
	case <-st.acksDone:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if !doCommit {
		n.mu.Lock()
		business := st.businessNo
		n.mu.Unlock()
		if business {
			return nil, ErrAborted
		}
		return nil, ErrSystemAbort
	}
	n.mu.Lock()
	results := make(map[simnet.SiteID]any, len(st.results))
	for site, res := range st.results {
		results[site] = res
	}
	n.mu.Unlock()
	return results, nil
}

// decide broadcasts the decision to all participants.
func (n *Node) decide(txid string, st *coordState, commit bool) {
	for site := range st.participants {
		_ = n.net.Send(simnet.Message{
			From: n.site, To: site, Kind: KindDecision,
			Payload: decisionMsg{TxID: txid, Commit: commit},
		})
	}
}

// Handle processes a 2PC network message; the site dispatch loop routes
// Kind == 2pc.* here.
func (n *Node) Handle(ctx context.Context, msg simnet.Message) {
	switch msg.Kind {
	case KindPrepare:
		pm, ok := msg.Payload.(prepareMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		if _, dup := n.preparing[pm.TxID]; dup || n.prepared[pm.TxID] {
			n.mu.Unlock()
			return // duplicate prepare
		}
		done := make(chan struct{})
		n.preparing[pm.TxID] = done
		n.mu.Unlock()

		var (
			err    error
			result any
		)
		if n.hooks.Prepare != nil {
			result, err = n.hooks.Prepare(ctx, pm.TxID, pm.Payload)
		}
		n.mu.Lock()
		delete(n.preparing, pm.TxID)
		earlyDecision, hasEarly := n.decided[pm.TxID]
		delete(n.decided, pm.TxID)
		if err == nil && !hasEarly {
			n.prepared[pm.TxID] = true
		}
		n.mu.Unlock()
		close(done)
		if hasEarly && err == nil {
			// The decision raced ahead of the prepare: apply it now so
			// the subtransaction does not hold its locks forever.
			if earlyDecision {
				if n.hooks.Commit != nil {
					n.hooks.Commit(pm.TxID)
				}
			} else if n.hooks.Abort != nil {
				n.hooks.Abort(pm.TxID)
			}
			return
		}
		_ = n.net.Send(simnet.Message{
			From: n.site, To: msg.From, Kind: KindVote,
			Payload: voteMsg{
				TxID: pm.TxID, Site: n.site, Yes: err == nil,
				Business: errors.Is(err, ErrBusinessVote), Result: result,
			},
		})
	case KindVote:
		vm, ok := msg.Payload.(voteMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		st := n.coords[vm.TxID]
		if st == nil || !st.participants[vm.Site] {
			n.mu.Unlock()
			return
		}
		if _, seen := st.votes[vm.Site]; !seen {
			st.votes[vm.Site] = vm.Yes
			st.results[vm.Site] = vm.Result
			if !vm.Yes {
				st.votedNo = true
				if vm.Business {
					st.businessNo = true
				}
			}
			if len(st.votes) == len(st.participants) {
				close(st.votesDone)
			}
		}
		n.mu.Unlock()
	case KindDecision:
		dm, ok := msg.Payload.(decisionMsg)
		if !ok {
			return
		}
		// Wait out an in-flight prepare for the same transaction.
		n.mu.Lock()
		inFlight := n.preparing[dm.TxID]
		n.mu.Unlock()
		if inFlight != nil {
			select {
			case <-inFlight:
			case <-ctx.Done():
				return
			}
		}
		n.mu.Lock()
		wasPrepared := n.prepared[dm.TxID]
		delete(n.prepared, dm.TxID)
		if !wasPrepared && inFlight == nil {
			// Decision before its prepare: remember it for the prepare.
			n.decided[dm.TxID] = dm.Commit
		}
		n.mu.Unlock()
		if wasPrepared {
			if dm.Commit {
				if n.hooks.Commit != nil {
					n.hooks.Commit(dm.TxID)
				}
			} else if n.hooks.Abort != nil {
				n.hooks.Abort(dm.TxID)
			}
		}
		_ = n.net.Send(simnet.Message{
			From: n.site, To: msg.From, Kind: KindAck,
			Payload: ackMsg{TxID: dm.TxID, Site: n.site},
		})
	case KindAck:
		am, ok := msg.Payload.(ackMsg)
		if !ok {
			return
		}
		n.mu.Lock()
		st := n.coords[am.TxID]
		if st == nil || !st.participants[am.Site] {
			n.mu.Unlock()
			return
		}
		if !st.acks[am.Site] {
			st.acks[am.Site] = true
			if len(st.acks) == len(st.participants) {
				close(st.acksDone)
			}
		}
		n.mu.Unlock()
	}
}
