package commit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// harness wires a coordinator and participants over a network.
type harness struct {
	net    *simnet.Network
	nodes  map[simnet.SiteID]*Node
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// record tracks participant callback invocations.
type record struct {
	mu       sync.Mutex
	prepared []string
	commits  []string
	aborts   []string
	voteNo   bool
	systemNo bool
}

func newHarness(t *testing.T, sites []simnet.SiteID, recs map[simnet.SiteID]*record, opts ...simnet.Option) *harness {
	t.Helper()
	h := &harness{net: simnet.New(opts...), nodes: make(map[simnet.SiteID]*Node)}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	for _, id := range sites {
		rec := recs[id]
		hooks := Hooks{}
		if rec != nil {
			hooks = Hooks{
				Prepare: func(ctx context.Context, txid string, payload any) (any, error) {
					rec.mu.Lock()
					defer rec.mu.Unlock()
					rec.prepared = append(rec.prepared, txid)
					if rec.voteNo {
						return nil, fmt.Errorf("no funds: %w", ErrBusinessVote)
					}
					if rec.systemNo {
						return nil, errors.New("lock timeout")
					}
					return payload, nil
				},
				Commit: func(txid string) {
					rec.mu.Lock()
					defer rec.mu.Unlock()
					rec.commits = append(rec.commits, txid)
				},
				Abort: func(txid string) {
					rec.mu.Lock()
					defer rec.mu.Unlock()
					rec.aborts = append(rec.aborts, txid)
				},
			}
		}
		node := NewNode(id, h.net, hooks)
		h.nodes[id] = node
		inbox, err := h.net.AddSite(id)
		if err != nil {
			t.Fatal(err)
		}
		h.wg.Add(1)
		go func(n *Node, inbox <-chan simnet.Message) {
			defer h.wg.Done()
			for {
				select {
				case msg := <-inbox:
					n.Handle(ctx, msg)
				case <-ctx.Done():
					return
				}
			}
		}(node, inbox)
	}
	t.Cleanup(func() {
		cancel()
		h.wg.Wait()
		h.net.Close()
	})
	return h
}

func TestUnanimousYesCommits(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}, "C": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B", "C"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": "pb", "C": "pc"})
	if err != nil {
		t.Fatal(err)
	}
	if results["B"] != "pb" || results["C"] != "pc" {
		t.Errorf("results = %v", results)
	}
	for id, rec := range recs {
		rec.mu.Lock()
		if len(rec.commits) != 1 || len(rec.aborts) != 0 {
			t.Errorf("%s: commits=%v aborts=%v", id, rec.commits, rec.aborts)
		}
		rec.mu.Unlock()
	}
	// All prepared states resolved.
	if h.nodes["B"].PreparedCount() != 0 || h.nodes["C"].PreparedCount() != 0 {
		t.Error("participants left prepared")
	}
}

func TestOneNoVoteAborts(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}, "C": {voteNo: true}}
	h := newHarness(t, []simnet.SiteID{"A", "B", "C"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1, "C": 2})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// B prepared then aborted; C voted no (never prepared) so no abort
	// callback for it.
	recs["B"].mu.Lock()
	if len(recs["B"].aborts) != 1 || len(recs["B"].commits) != 0 {
		t.Errorf("B: %+v", recs["B"])
	}
	recs["B"].mu.Unlock()
	recs["C"].mu.Lock()
	if len(recs["C"].commits) != 0 {
		t.Errorf("C committed after voting no")
	}
	recs["C"].mu.Unlock()
}

func TestSystemNoVoteIsRetryable(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {systemNo: true}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1})
	if !errors.Is(err, ErrSystemAbort) {
		t.Fatalf("err = %v, want ErrSystemAbort", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatal("system abort classified as business abort")
	}
}

func TestCrashedParticipantBlocksCoordinator(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	h.net.SetDown("B", true)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1})
	if err == nil {
		t.Fatal("commit succeeded with crashed participant")
	}
}

func TestParticipantBlockedWithoutDecision(t *testing.T) {
	// Deliver PREPARE directly (no coordinator listening): the
	// participant stays prepared — the blocking window.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	if err := h.net.Send(simnet.Message{
		From: "ghost-coord", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "stuck", Payload: nil},
	}); err != nil {
		// "ghost-coord" is not a registered site.
		t.Skipf("cannot send from unregistered site: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for h.nodes["B"].PreparedCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("participant never prepared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := h.nodes["B"].PreparedCount(); got != 1 {
		t.Errorf("prepared count = %d, want still 1 (blocked)", got)
	}
}

func TestDuplicateTxIDRejected(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	// Occupy the txid with a transaction that cannot finish (B down).
	h.net.SetDown("B", true)
	bg, bgCancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = h.nodes["A"].Execute(bg, "dup", map[simnet.SiteID]any{"B": 1})
	}()
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := h.nodes["A"].Execute(ctx, "dup", map[simnet.SiteID]any{"B": 1}); err == nil {
		t.Error("duplicate txid accepted")
	}
	bgCancel()
	<-done
}

func TestEmptyParticipants(t *testing.T) {
	h := newHarness(t, []simnet.SiteID{"A"}, nil)
	ctx := context.Background()
	if _, err := h.nodes["A"].Execute(ctx, "t", nil); err == nil {
		t.Error("empty participant set accepted")
	}
}

func TestMessageCountTwoRounds(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1}); err != nil {
		t.Fatal(err)
	}
	// Exactly 4 one-way messages for one participant: prepare, vote,
	// decision, ack.
	if got := h.net.Stats().Sent; got != 4 {
		t.Errorf("messages = %d, want 4", got)
	}
}

func TestLatencyIsTwoRoundTrips(t *testing.T) {
	const oneWay = 25 * time.Millisecond
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs, simnet.WithLatency(oneWay))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*oneWay {
		t.Errorf("2PC finished in %v, want >= %v (4 hops)", elapsed, 4*oneWay)
	}
}

func TestDecisionBeforePrepareIsHonored(t *testing.T) {
	// Goroutine-level reordering can deliver a (abort) decision before
	// its prepare. The node must remember it and apply it when the late
	// prepare completes, instead of leaving the subtransaction prepared
	// forever.
	rec := &record{}
	net := simnet.New()
	defer net.Close()
	if _, err := net.AddSite("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddSite("B"); err != nil {
		t.Fatal(err)
	}
	node := NewNode("B", net, Hooks{
		Prepare: func(ctx context.Context, txid string, payload any) (any, error) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.prepared = append(rec.prepared, txid)
			return nil, nil
		},
		Commit: func(txid string) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.commits = append(rec.commits, txid)
		},
		Abort: func(txid string) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.aborts = append(rec.aborts, txid)
		},
	})
	ctx := context.Background()
	// Decision first, prepare second — delivered synchronously.
	node.Handle(ctx, simnet.Message{From: "A", To: "B", Kind: KindDecision,
		Payload: decisionMsg{TxID: "t9", Commit: false}})
	node.Handle(ctx, simnet.Message{From: "A", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "t9", Payload: nil}})

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.aborts) != 1 {
		t.Errorf("aborts = %v, want the early abort applied", rec.aborts)
	}
	if node.PreparedCount() != 0 {
		t.Error("subtransaction left prepared after early decision")
	}
}

func TestDuplicatePrepareIgnoredWhilePrepared(t *testing.T) {
	// A duplicate prepare arriving while the first is still prepared
	// (no decision yet) must not re-run the hook.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx := context.Background()
	msg := simnet.Message{From: "A", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "tdup", Payload: 1}}
	h.nodes["B"].Handle(ctx, msg)
	h.nodes["B"].Handle(ctx, msg)
	recs["B"].mu.Lock()
	defer recs["B"].mu.Unlock()
	if len(recs["B"].prepared) != 1 {
		t.Errorf("prepare ran %d times, want 1", len(recs["B"].prepared))
	}
	if h.nodes["B"].PreparedCount() != 1 {
		t.Errorf("prepared count = %d, want 1", h.nodes["B"].PreparedCount())
	}
}
