package commit

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// harness wires a coordinator and participants over a network.
type harness struct {
	net    *simnet.Network
	nodes  map[simnet.SiteID]*Node
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// record tracks participant callback invocations.
type record struct {
	mu       sync.Mutex
	prepared []string
	commits  []string
	aborts   []string
	voteNo   bool
	systemNo bool
	// prepareHook, when set, runs inside the Prepare hook (before the
	// vote is determined) — a deterministic injection point for cutting
	// links or blocking mid-protocol.
	prepareHook func(txid string)
}

func newHarness(t *testing.T, sites []simnet.SiteID, recs map[simnet.SiteID]*record, opts ...simnet.Option) *harness {
	t.Helper()
	return newHarnessOpts(t, sites, recs, nil, opts...)
}

// newHarnessOpts additionally applies node options (e.g. WithTimeouts)
// to every node.
func newHarnessOpts(t *testing.T, sites []simnet.SiteID, recs map[simnet.SiteID]*record, nodeOpts []Option, opts ...simnet.Option) *harness {
	t.Helper()
	h := &harness{net: simnet.New(opts...), nodes: make(map[simnet.SiteID]*Node)}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	for _, id := range sites {
		rec := recs[id]
		hooks := Hooks{}
		if rec != nil {
			hooks = Hooks{
				Prepare: func(ctx context.Context, txid string, payload any) (any, error) {
					rec.mu.Lock()
					rec.prepared = append(rec.prepared, txid)
					hook := rec.prepareHook
					voteNo, systemNo := rec.voteNo, rec.systemNo
					rec.mu.Unlock()
					if hook != nil {
						hook(txid)
					}
					if voteNo {
						return nil, fmt.Errorf("no funds: %w", ErrBusinessVote)
					}
					if systemNo {
						return nil, errors.New("lock timeout")
					}
					return payload, nil
				},
				Commit: func(txid string) {
					rec.mu.Lock()
					defer rec.mu.Unlock()
					rec.commits = append(rec.commits, txid)
				},
				Abort: func(txid string) {
					rec.mu.Lock()
					defer rec.mu.Unlock()
					rec.aborts = append(rec.aborts, txid)
				},
			}
		}
		node := NewNode(id, h.net, hooks, nodeOpts...)
		h.nodes[id] = node
		inbox, err := h.net.AddSite(id)
		if err != nil {
			t.Fatal(err)
		}
		h.wg.Add(1)
		go func(n *Node, inbox <-chan simnet.Message) {
			defer h.wg.Done()
			for {
				select {
				case msg := <-inbox:
					n.Handle(ctx, msg)
				case <-ctx.Done():
					return
				}
			}
		}(node, inbox)
	}
	t.Cleanup(func() {
		cancel()
		h.wg.Wait()
		h.net.Close()
	})
	return h
}

func TestUnanimousYesCommits(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}, "C": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B", "C"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	results, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": "pb", "C": "pc"})
	if err != nil {
		t.Fatal(err)
	}
	if results["B"] != "pb" || results["C"] != "pc" {
		t.Errorf("results = %v", results)
	}
	for id, rec := range recs {
		rec.mu.Lock()
		if len(rec.commits) != 1 || len(rec.aborts) != 0 {
			t.Errorf("%s: commits=%v aborts=%v", id, rec.commits, rec.aborts)
		}
		rec.mu.Unlock()
	}
	// All prepared states resolved.
	if h.nodes["B"].PreparedCount() != 0 || h.nodes["C"].PreparedCount() != 0 {
		t.Error("participants left prepared")
	}
}

func TestOneNoVoteAborts(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}, "C": {voteNo: true}}
	h := newHarness(t, []simnet.SiteID{"A", "B", "C"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1, "C": 2})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	// B prepared then aborted; C voted no (never prepared) so no abort
	// callback for it.
	recs["B"].mu.Lock()
	if len(recs["B"].aborts) != 1 || len(recs["B"].commits) != 0 {
		t.Errorf("B: %+v", recs["B"])
	}
	recs["B"].mu.Unlock()
	recs["C"].mu.Lock()
	if len(recs["C"].commits) != 0 {
		t.Errorf("C committed after voting no")
	}
	recs["C"].mu.Unlock()
}

func TestSystemNoVoteIsRetryable(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {systemNo: true}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1})
	if !errors.Is(err, ErrSystemAbort) {
		t.Fatalf("err = %v, want ErrSystemAbort", err)
	}
	if errors.Is(err, ErrAborted) {
		t.Fatal("system abort classified as business abort")
	}
}

func TestCrashedParticipantBlocksCoordinator(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	h.net.SetDown("B", true)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1})
	if err == nil {
		t.Fatal("commit succeeded with crashed participant")
	}
}

func TestParticipantBlockedWithoutDecision(t *testing.T) {
	// Deliver PREPARE directly (no coordinator listening): the
	// participant stays prepared — the blocking window.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	if err := h.net.Send(simnet.Message{
		From: "ghost-coord", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "stuck", Payload: nil},
	}); err != nil {
		// "ghost-coord" is not a registered site.
		t.Skipf("cannot send from unregistered site: %v", err)
	}
	deadline := time.Now().Add(time.Second)
	for h.nodes["B"].PreparedCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("participant never prepared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := h.nodes["B"].PreparedCount(); got != 1 {
		t.Errorf("prepared count = %d, want still 1 (blocked)", got)
	}
}

func TestDuplicateTxIDRejected(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	// Occupy the txid with a transaction that cannot finish (B down).
	h.net.SetDown("B", true)
	bg, bgCancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = h.nodes["A"].Execute(bg, "dup", map[simnet.SiteID]any{"B": 1})
	}()
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := h.nodes["A"].Execute(ctx, "dup", map[simnet.SiteID]any{"B": 1}); err == nil {
		t.Error("duplicate txid accepted")
	}
	bgCancel()
	<-done
}

func TestEmptyParticipants(t *testing.T) {
	h := newHarness(t, []simnet.SiteID{"A"}, nil)
	ctx := context.Background()
	if _, err := h.nodes["A"].Execute(ctx, "t", nil); err == nil {
		t.Error("empty participant set accepted")
	}
}

func TestMessageCountTwoRounds(t *testing.T) {
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1}); err != nil {
		t.Fatal(err)
	}
	// Exactly 4 one-way messages for one participant: prepare, vote,
	// decision, ack.
	if got := h.net.Stats().Sent; got != 4 {
		t.Errorf("messages = %d, want 4", got)
	}
}

func TestLatencyIsTwoRoundTrips(t *testing.T) {
	const oneWay = 25 * time.Millisecond
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs, simnet.WithLatency(oneWay))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*oneWay {
		t.Errorf("2PC finished in %v, want >= %v (4 hops)", elapsed, 4*oneWay)
	}
}

func TestDecisionBeforePrepareIsHonored(t *testing.T) {
	// Goroutine-level reordering can deliver a (abort) decision before
	// its prepare. The node must remember it and apply it when the late
	// prepare completes, instead of leaving the subtransaction prepared
	// forever.
	rec := &record{}
	net := simnet.New()
	defer net.Close()
	if _, err := net.AddSite("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.AddSite("B"); err != nil {
		t.Fatal(err)
	}
	node := NewNode("B", net, Hooks{
		Prepare: func(ctx context.Context, txid string, payload any) (any, error) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.prepared = append(rec.prepared, txid)
			return nil, nil
		},
		Commit: func(txid string) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.commits = append(rec.commits, txid)
		},
		Abort: func(txid string) {
			rec.mu.Lock()
			defer rec.mu.Unlock()
			rec.aborts = append(rec.aborts, txid)
		},
	})
	ctx := context.Background()
	// Decision first, prepare second — delivered synchronously.
	node.Handle(ctx, simnet.Message{From: "A", To: "B", Kind: KindDecision,
		Payload: decisionMsg{TxID: "t9", Commit: false}})
	node.Handle(ctx, simnet.Message{From: "A", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "t9", Payload: nil}})

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.aborts) != 1 {
		t.Errorf("aborts = %v, want the early abort applied", rec.aborts)
	}
	if node.PreparedCount() != 0 {
		t.Error("subtransaction left prepared after early decision")
	}
}

// fastTimeouts are bounded-wait settings small enough for tests.
func fastTimeouts() Timeouts {
	return Timeouts{
		VoteWait:   25 * time.Millisecond,
		AckWait:    25 * time.Millisecond,
		QueryAfter: 40 * time.Millisecond,
		MaxRetries: 1,
	}
}

func TestBoundedWaitPresumesAbortOnCrashedParticipant(t *testing.T) {
	// The legacy coordinator blocks until its context dies; the
	// bounded-wait coordinator retries with backoff, then presumes
	// abort and returns ErrTimeoutAbort well before the context bound.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarnessOpts(t, []simnet.SiteID{"A", "B"}, recs, []Option{WithTimeouts(fastTimeouts())})
	h.net.SetDown("B", true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	_, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1})
	if !errors.Is(err, ErrTimeoutAbort) {
		t.Fatalf("err = %v, want ErrTimeoutAbort", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("presumed abort took %v, want bounded (~75ms of retries)", elapsed)
	}
	// The presumed abort is logged so late queries get a consistent answer.
	if commit, known := h.nodes["A"].Decision("t1"); !known || commit {
		t.Errorf("Decision = (%v, %v), want logged abort", commit, known)
	}
}

func TestBoundedWaitRetryReachesRecoveredParticipant(t *testing.T) {
	// The first prepare transmission fails (participant down); the
	// participant recovers before the retry, which must succeed.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarnessOpts(t, []simnet.SiteID{"A", "B"}, recs,
		[]Option{WithTimeouts(Timeouts{VoteWait: 30 * time.Millisecond, MaxRetries: 2})})
	h.net.SetDown("B", true)
	time.AfterFunc(15*time.Millisecond, func() { h.net.SetDown("B", false) })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := h.nodes["A"].Execute(ctx, "t1", map[simnet.SiteID]any{"B": 1}); err != nil {
		t.Fatalf("retry after recovery failed: %v", err)
	}
	recs["B"].mu.Lock()
	defer recs["B"].mu.Unlock()
	if len(recs["B"].commits) != 1 {
		t.Errorf("commits = %v, want 1", recs["B"].commits)
	}
}

func TestStaleDecisionQueryResolvesPresumedAbort(t *testing.T) {
	// B prepares and votes YES, but the vote is lost because the link is
	// cut from inside B's prepare hook (deterministically, before the
	// vote is sent). The coordinator presumes abort; B is left in doubt
	// holding its locks. After the link heals, B's stale-decision query
	// must learn the abort from the coordinator's decision log.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarnessOpts(t, []simnet.SiteID{"A", "B"}, recs, []Option{WithTimeouts(fastTimeouts())})
	recs["B"].mu.Lock()
	recs["B"].prepareHook = func(string) { h.net.SetPartitioned("A", "B", true) }
	recs["B"].mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err := h.nodes["A"].Execute(ctx, "tq", map[simnet.SiteID]any{"B": 1})
	if !errors.Is(err, ErrTimeoutAbort) {
		t.Fatalf("err = %v, want ErrTimeoutAbort", err)
	}
	if got := h.nodes["B"].PreparedCount(); got != 1 {
		t.Fatalf("B prepared count = %d, want 1 (in doubt)", got)
	}
	h.net.SetPartitioned("A", "B", false)
	deadline := time.Now().Add(5 * time.Second)
	for h.nodes["B"].PreparedCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-doubt participant never resolved via query")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recs["B"].mu.Lock()
	defer recs["B"].mu.Unlock()
	if len(recs["B"].aborts) != 1 || len(recs["B"].commits) != 0 {
		t.Errorf("B: aborts=%v commits=%v, want exactly one abort", recs["B"].aborts, recs["B"].commits)
	}
}

func TestStaleDecisionQueryLearnsCommit(t *testing.T) {
	// B votes YES quickly; C's prepare blocks until released. While the
	// coordinator waits for C, the A-B link is cut, so B never receives
	// the commit decision. The coordinator commits (C acks), exhausts
	// its bounded ack retries toward B, and returns success. B resolves
	// its in-doubt state through a stale-decision query after the heal —
	// and must COMMIT, not presume abort, because the decision log says
	// so.
	release := make(chan struct{})
	recs := map[simnet.SiteID]*record{"B": {}, "C": {}}
	recs["C"].prepareHook = func(string) { <-release }
	h := newHarnessOpts(t, []simnet.SiteID{"A", "B", "C"}, recs, []Option{WithTimeouts(fastTimeouts())})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	type out struct {
		results map[simnet.SiteID]any
		err     error
	}
	done := make(chan out, 1)
	go func() {
		results, err := h.nodes["A"].Execute(ctx, "tc", map[simnet.SiteID]any{"B": "pb", "C": "pc"})
		done <- out{results, err}
	}()
	// Wait until B is prepared (its vote is sent immediately after), cut
	// the A-B link, then release C.
	deadline := time.Now().Add(5 * time.Second)
	for h.nodes["B"].PreparedCount() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("B never prepared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let B's vote land at A
	h.net.SetPartitioned("A", "B", true)
	close(release)
	res := <-done
	if res.err != nil {
		t.Fatalf("Execute = %v, want commit despite unacked B", res.err)
	}
	if commit, known := h.nodes["A"].Decision("tc"); !known || !commit {
		t.Fatalf("Decision = (%v, %v), want logged commit", commit, known)
	}
	// B is in doubt until the heal; then its query must learn COMMIT.
	h.net.SetPartitioned("A", "B", false)
	deadline = time.Now().Add(5 * time.Second)
	for h.nodes["B"].PreparedCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("B never resolved after heal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	recs["B"].mu.Lock()
	defer recs["B"].mu.Unlock()
	if len(recs["B"].commits) != 1 || len(recs["B"].aborts) != 0 {
		t.Errorf("B: commits=%v aborts=%v, want exactly one commit", recs["B"].commits, recs["B"].aborts)
	}
}

func TestDuplicatePrepareResendsVote(t *testing.T) {
	// A duplicate prepare while prepared must not re-run the hook but
	// must re-vote YES (the original vote may have been lost).
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx := context.Background()
	msg := simnet.Message{From: "A", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "tv", Payload: 1}}
	h.nodes["B"].Handle(ctx, msg)
	sent := h.net.Stats().Sent
	h.nodes["B"].Handle(ctx, msg)
	recs["B"].mu.Lock()
	prepares := len(recs["B"].prepared)
	recs["B"].mu.Unlock()
	if prepares != 1 {
		t.Errorf("prepare hook ran %d times, want 1", prepares)
	}
	if got := h.net.Stats().Sent - sent; got != 1 {
		t.Errorf("duplicate prepare sent %d messages, want 1 re-vote", got)
	}
}

func TestDuplicatePrepareIgnoredWhilePrepared(t *testing.T) {
	// A duplicate prepare arriving while the first is still prepared
	// (no decision yet) must not re-run the hook.
	recs := map[simnet.SiteID]*record{"B": {}}
	h := newHarness(t, []simnet.SiteID{"A", "B"}, recs)
	ctx := context.Background()
	msg := simnet.Message{From: "A", To: "B", Kind: KindPrepare,
		Payload: prepareMsg{TxID: "tdup", Payload: 1}}
	h.nodes["B"].Handle(ctx, msg)
	h.nodes["B"].Handle(ctx, msg)
	recs["B"].mu.Lock()
	defer recs["B"].mu.Unlock()
	if len(recs["B"].prepared) != 1 {
		t.Errorf("prepare ran %d times, want 1", len(recs["B"].prepared))
	}
	if h.nodes["B"].PreparedCount() != 1 {
		t.Errorf("prepared count = %d, want 1", h.nodes["B"].PreparedCount())
	}
}
