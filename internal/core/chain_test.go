package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// TestDynamicDistributionMultiPiece exercises Figure 2's leftover
// propagation over a transaction with four restricted pieces running
// under divergence control, concurrently with audits. Every instance
// must commit exactly once per piece, and audits must stay within their
// import limits.
func TestDynamicDistributionMultiPiece(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{
		"a": 100000, "b": 100000, "c": 100000, "d": 100000,
	})
	inc := func(v metric.Value) metric.Value { return v + 1 }
	op := func(k storage.Key) txn.Op {
		return txn.Op{Kind: txn.OpWrite, Key: k, Update: inc, Bound: metric.LimitOf(1)}
	}
	deep := txn.MustProgram("deep", op("a"), op("b"), op("c"), op("d")).
		WithSpec(metric.SpecOf(4000))
	audit := txn.MustProgram("audit",
		txn.ReadOp("a"), txn.ReadOp("b"), txn.ReadOp("c"), txn.ReadOp("d"),
	).WithSpec(metric.SpecOf(4000))

	const deeps, audits = 10, 5
	r, err := NewRunner(Config{
		Method:       Method1SRChopDC,
		Distribution: Dynamic,
		Store:        store,
		Programs:     []*txn.Program{deep, audit},
		Counts:       []int{deeps, audits},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, deeps+audits)
	var mu sync.Mutex
	var worstImported metric.Fuzz
	submit := func(ti int) {
		defer wg.Done()
		res, err := r.Submit(ctx, ti)
		if err != nil {
			errCh <- err
			return
		}
		mu.Lock()
		if res.Imported > worstImported {
			worstImported = res.Imported
		}
		mu.Unlock()
	}
	for i := 0; i < deeps; i++ {
		wg.Add(1)
		go submit(0)
	}
	for i := 0; i < audits; i++ {
		wg.Add(1)
		go submit(1)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every deep instance applied all four increments exactly once.
	for _, k := range []storage.Key{"a", "b", "c", "d"} {
		if got := store.Get(k); got != 100000+deeps {
			t.Errorf("%s = %d, want %d", k, got, 100000+deeps)
		}
	}
	if worstImported > 4000 {
		t.Errorf("imported %d exceeds ε 4000", worstImported)
	}
}
