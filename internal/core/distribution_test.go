package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// TestDistributionBudgetNeverExceedsLimit is the Lemma 1 property test:
// under both the static (off-line, Section 2.2.1) and dynamic
// (runtime, Figure 2) ε-distribution policies, a transaction instance
// whose pieces are all restricted never accumulates more fuzziness
// across them than its declared Limit_t — the distribution can only
// split the budget, never mint it. Instances containing unrestricted
// pieces are excluded: their absorbed fuzziness is fictitious by the
// restrictedness argument and deliberately runs without quota.
func TestDistributionBudgetNeverExceedsLimit(t *testing.T) {
	keys := []storage.Key{"x", "y", "z"}
	for seed := int64(1); seed <= 15; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eps := metric.Fuzz(rng.Intn(400) + 50)
			nProgs := rng.Intn(2) + 2
			programs := make([]*txn.Program, nProgs)
			for pi := range programs {
				nOps := rng.Intn(3) + 1
				ops := make([]txn.Op, 0, nOps)
				for oi := 0; oi < nOps; oi++ {
					key := keys[rng.Intn(len(keys))]
					switch rng.Intn(3) {
					case 0:
						ops = append(ops, txn.ReadOp(key))
					case 1:
						ops = append(ops, txn.AddOp(key, metric.Value(rng.Intn(5)+1)))
					default:
						d := metric.Value(rng.Intn(3) + 1)
						ops = append(ops, txn.TransformOp(key,
							func(v metric.Value) metric.Value { return v + d },
							metric.LimitOf(metric.Fuzz(d))))
					}
				}
				p := txn.MustProgram(fmt.Sprintf("d%d", pi), ops...)
				if p.Class() == txn.Query {
					p = p.WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
				} else {
					p = p.WithSpec(metric.SpecOf(eps))
				}
				programs[pi] = p
			}
			initial := map[storage.Key]metric.Value{}
			for _, k := range keys {
				initial[k] = metric.Value(rng.Intn(500) + 100)
			}

			for _, method := range []Method{BaselineESRDC, Method1SRChopDC, Method3ESRChopDC} {
				for _, dist := range []Distribution{Static, Dynamic} {
					runner, err := NewRunner(Config{
						Method:       method,
						Distribution: dist,
						Store:        storage.NewFrom(initial),
						Programs:     programs,
						Counts:       repeat(2, nProgs),
					})
					if err != nil {
						// The chopping search legitimately rejects some
						// streams; that is not this property's concern.
						continue
					}
					sa, set := runner.StreamAnalysis(), runner.Set()
					allRestricted := make([]bool, nProgs)
					for ti := range allRestricted {
						allRestricted[ti] = true
						for pi := range set.TxnPieces(ti) {
							if !sa.Restricted(ti, pi) {
								allRestricted[ti] = false
							}
						}
					}
					var wg sync.WaitGroup
					results := make([]*InstanceResult, 2*nProgs)
					tis := make([]int, 2*nProgs)
					for i := range results {
						i := i
						ti := i % nProgs
						tis[i] = ti
						wg.Add(1)
						go func() {
							defer wg.Done()
							out, err := runner.Submit(context.Background(), ti)
							if err == nil {
								results[i] = out
							}
						}()
					}
					wg.Wait()
					for i, out := range results {
						if out == nil || !allRestricted[tis[i]] {
							continue
						}
						spec := programs[tis[i]].Spec
						if !spec.Import.IsInfinite() && out.Imported > spec.Import.Bound() {
							t.Errorf("%s/%s: %s imported %d > Limit_t %s",
								method, dist, out.Program, out.Imported, spec.Import)
						}
						if !spec.Export.IsInfinite() && out.Exported > spec.Export.Bound() {
							t.Errorf("%s/%s: %s exported %d > Limit_t %s",
								method, dist, out.Program, out.Exported, spec.Export)
						}
					}
				}
			}
		})
	}
}

// repeat returns a slice of n copies of v.
func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
