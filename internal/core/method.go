// Package core implements the paper's contribution: executing chopped
// epsilon transactions under concurrency control or divergence control —
// the two baselines and the three combined methods of Table 1:
//
//	                │ CC (concurrency ctl) │ DC (divergence ctl)
//	────────────────┼──────────────────────┼────────────────────
//	SR-chopping     │ SR        (Shasha)   │ ESR¹  (Method 1)
//	ESR-chopping    │ ESR²      (Method 2) │ ESR³  (Method 3)
//
// plus the unchopped baselines (classic serializable OLTP, and plain ESR
// with divergence control). A Runner prepares the chopping off-line from
// the declared job stream, then executes program instances: the first
// piece commits first (business rollbacks only fire there), and the
// remaining pieces commit asynchronously, resubmitted on system aborts
// until they commit. For divergence-control methods the ε-spec of each
// transaction is distributed over its pieces statically (Section 2.2.1)
// or dynamically (Figure 2).
package core

import "fmt"

// Method selects the off-line × on-line combination.
type Method int

// Methods: two baselines, the Shasha chopping, and the paper's three
// combinations.
const (
	// BaselineSRCC runs unchopped transactions under two-phase locking:
	// classic serializable OLTP.
	BaselineSRCC Method = iota + 1
	// BaselineESRDC runs unchopped epsilon transactions under divergence
	// control: plain ESR.
	BaselineESRDC
	// SRChopCC runs the finest SR-chopping under concurrency control
	// (Shasha et al.): still serializable w.r.t. the original set.
	SRChopCC
	// Method1SRChopDC runs the SR-chopping under divergence control
	// (ESR¹), distributing each ε-spec over the restricted pieces.
	Method1SRChopDC
	// Method2ESRChopCC runs the (finer) ESR-chopping under concurrency
	// control (ESR²): the inconsistency comes only from inter-sibling
	// fuzziness, bounded off-line.
	Method2ESRChopCC
	// Method3ESRChopDC runs the ESR-chopping under divergence control
	// (ESR³) with the DC budget reduced by the inter-sibling reserve
	// (Equation 6).
	Method3ESRChopDC
)

// String renders the method name.
func (m Method) String() string {
	switch m {
	case BaselineSRCC:
		return "baseline-sr-cc"
	case BaselineESRDC:
		return "baseline-esr-dc"
	case SRChopCC:
		return "sr-chop-cc"
	case Method1SRChopDC:
		return "method1-sr-chop-dc"
	case Method2ESRChopCC:
		return "method2-esr-chop-cc"
	case Method3ESRChopDC:
		return "method3-esr-chop-dc"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists every method in presentation order.
func Methods() []Method {
	return []Method{
		BaselineSRCC, BaselineESRDC, SRChopCC,
		Method1SRChopDC, Method2ESRChopCC, Method3ESRChopDC,
	}
}

// usesDC reports whether the method runs under divergence control.
func (m Method) usesDC() bool {
	switch m {
	case BaselineESRDC, Method1SRChopDC, Method3ESRChopDC:
		return true
	default:
		return false
	}
}

// usesChopping reports whether the method chops at all.
func (m Method) usesChopping() bool {
	switch m {
	case BaselineSRCC, BaselineESRDC:
		return false
	default:
		return true
	}
}

// usesESRChopping reports whether the off-line phase is ESR-chopping.
func (m Method) usesESRChopping() bool {
	return m == Method2ESRChopCC || m == Method3ESRChopDC
}

// UsesDC reports whether the method runs under divergence control.
// Exported for the conformance harness (package explore), which picks
// distribution policies and engines per method.
func (m Method) UsesDC() bool { return m.usesDC() }

// UsesChopping reports whether the method chops at all. Exported for
// the conformance harness.
func (m Method) UsesChopping() bool { return m.usesChopping() }

// Distribution selects the ε-spec distribution policy for DC methods.
type Distribution int

// Distribution policies.
const (
	// Static splits each transaction's limit evenly over its restricted
	// pieces off-line (Section 2.2.1).
	Static Distribution = iota + 1
	// Dynamic propagates leftover limits down the piece dependency tree
	// at runtime (Figure 2).
	Dynamic
	// Naive splits evenly over ALL pieces, ignoring restrictedness — the
	// ablation baseline.
	Naive
	// Proportional splits over restricted pieces proportionally to their
	// conflict exposure (generalizing the paper's equal-weight
	// simplification).
	Proportional
)

// String renders the distribution name.
func (d Distribution) String() string {
	switch d {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Naive:
		return "naive"
	case Proportional:
		return "proportional"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}
