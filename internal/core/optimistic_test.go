package core

import (
	"context"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func TestOptimisticBaselineSRIsSerializable(t *testing.T) {
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineSRCC, 20, 10, true)
	cfg.Optimistic = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit %d sum = %d, want exactly %d", i, got, fx.total)
		}
	}
	grouped := r.Recorder().CheckGrouped(r.GroupOf())
	if !grouped.Serializable {
		t.Errorf("optimistic SR/CC produced non-serializable history: %v", grouped.Cycle)
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	st := r.ODCStats()
	if st.Commits == 0 {
		t.Error("optimistic engine did not run")
	}
	if st.Absorbed != 0 {
		t.Errorf("strict OCC absorbed %d conflicts", st.Absorbed)
	}
}

func TestOptimisticESRDCBoundedDeviation(t *testing.T) {
	const importLimit = 600
	fx := newBankFixture(importLimit, 10000)
	cfg := mixedConfig(fx, BaselineESRDC, 30, 15, false)
	cfg.Optimistic = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 30, 15)
	for i, a := range audits {
		dev := metric.Distance(a.SumReads(), fx.total)
		if dev > importLimit {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, importLimit)
		}
		if a.Imported > importLimit {
			t.Errorf("audit %d imported %d > limit", i, a.Imported)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestOptimisticMethod3(t *testing.T) {
	const budget = 3000
	fx := newBankFixture(budget, budget)
	cfg := mixedConfig(fx, Method3ESRChopDC, 10, 5, false)
	cfg.Optimistic = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 10, 5)
	for i, a := range audits {
		if dev := metric.Distance(a.SumReads(), fx.total); dev > budget {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, budget)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestOptimisticRollback(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 50, "Y": 0})
	withdraw := txn.MustProgram("withdraw",
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("Y", 100),
	)
	r, err := NewRunner(Config{
		Method: SRChopCC, Store: store,
		Programs: []*txn.Program{withdraw}, Optimistic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Submit(context.Background(), 0)
	if err != nil {
		t.Fatalf("rollback surfaced as error: %v", err)
	}
	if !res.RolledBack || res.Committed {
		t.Errorf("result = %+v", res)
	}
	if store.Get("X") != 50 || store.Get("Y") != 0 {
		t.Errorf("state changed: X=%d Y=%d", store.Get("X"), store.Get("Y"))
	}
}

func TestOptimisticLockStatsStayZero(t *testing.T) {
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineSRCC, 5, 2, false)
	cfg.Optimistic = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runMixed(t, r, 5, 2)
	if st := r.LockStats(); st.Grants != 0 || st.Blocks != 0 {
		t.Errorf("lock manager used in optimistic mode: %+v", st)
	}
}

func TestTimestampEngineSRIsSerializable(t *testing.T) {
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineSRCC, 15, 8, true)
	cfg.Engine = EngineTimestamp
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 15, 8)
	for i, a := range audits {
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit %d sum = %d, want exactly %d", i, got, fx.total)
		}
	}
	grouped := r.Recorder().CheckGrouped(r.GroupOf())
	if !grouped.Serializable {
		t.Errorf("timestamp SR/CC produced non-serializable history: %v", grouped.Cycle)
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	if r.TDCStats().Commits == 0 {
		t.Error("timestamp engine did not run")
	}
}

func TestTimestampEngineESRBounded(t *testing.T) {
	const importLimit = 800
	fx := newBankFixture(importLimit, 10000)
	cfg := mixedConfig(fx, BaselineESRDC, 20, 10, false)
	cfg.Engine = EngineTimestamp
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if dev := metric.Distance(a.SumReads(), fx.total); dev > importLimit {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, importLimit)
		}
		if a.Imported > importLimit {
			t.Errorf("audit %d imported %d > limit", i, a.Imported)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestEngineKindStrings(t *testing.T) {
	for _, k := range []EngineKind{EngineLocking, EngineOptimistic, EngineTimestamp, EngineRepair, EngineRepairSkip} {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", int(k))
		}
	}
	if EngineKind(9).String() != "EngineKind(9)" {
		t.Error("unknown kind string")
	}
}
