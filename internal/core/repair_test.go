package core

import (
	"context"
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func TestRepairEngineSRIsSerializable(t *testing.T) {
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineSRCC, 20, 10, true)
	cfg.Engine = EngineRepair
	cfg.VerifyRepairs = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit %d sum = %d, want exactly %d", i, got, fx.total)
		}
	}
	grouped := r.Recorder().CheckGrouped(r.GroupOf())
	if !grouped.Serializable {
		t.Errorf("repair SR/CC produced non-serializable history: %v", grouped.Cycle)
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	st := r.RDCStats()
	if st.Commits == 0 {
		t.Error("repair engine did not run")
	}
	if st.Skips != 0 {
		t.Errorf("plain repair engine skipped %d repairs", st.Skips)
	}
	if msg := r.RepairVerifyFailure(); msg != "" {
		t.Errorf("repair verify: %s", msg)
	}
}

func TestRepairSkipEngineESRBounded(t *testing.T) {
	const importLimit = 800
	fx := newBankFixture(importLimit, 10000)
	cfg := mixedConfig(fx, BaselineESRDC, 20, 10, false)
	cfg.Engine = EngineRepairSkip
	cfg.VerifyRepairs = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if dev := metric.Distance(a.SumReads(), fx.total); dev > importLimit {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, importLimit)
		}
		if a.Imported > importLimit {
			t.Errorf("audit %d imported %d > limit", i, a.Imported)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	if msg := r.RepairVerifyFailure(); msg != "" {
		t.Errorf("repair verify: %s", msg)
	}
}

func TestRepairSkipStrictSpecStaysExact(t *testing.T) {
	// Under a zero import budget the ε-skip engine must behave exactly
	// like the plain repair engine: every audit reads the true total.
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineESRDC, 15, 8, false)
	cfg.Engine = EngineRepairSkip
	cfg.VerifyRepairs = true
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 15, 8)
	for i, a := range audits {
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit %d sum = %d, want exactly %d", i, got, fx.total)
		}
	}
	if st := r.RDCStats(); st.Skips != 0 {
		t.Errorf("Skips = %d under a zero budget", st.Skips)
	}
}

func TestRepairEngineRollback(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 50, "Y": 0})
	withdraw := txn.MustProgram("withdraw",
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("Y", 100),
	)
	r, err := NewRunner(Config{
		Method: SRChopCC, Store: store,
		Programs: []*txn.Program{withdraw}, Engine: EngineRepair,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Submit(context.Background(), 0)
	if err != nil {
		t.Fatalf("rollback surfaced as error: %v", err)
	}
	if !res.RolledBack || res.Committed {
		t.Errorf("result = %+v", res)
	}
	if store.Get("X") != 50 || store.Get("Y") != 0 {
		t.Errorf("state changed: X=%d Y=%d", store.Get("X"), store.Get("Y"))
	}
}

func TestRepairEngineLockStatsStayZero(t *testing.T) {
	fx := newBankFixture(0, 0)
	cfg := mixedConfig(fx, BaselineSRCC, 5, 2, false)
	cfg.Engine = EngineRepair
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	runMixed(t, r, 5, 2)
	if st := r.LockStats(); st.Grants != 0 || st.Blocks != 0 {
		t.Errorf("lock manager used in repair mode: %+v", st)
	}
}
