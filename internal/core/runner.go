package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asynctp/internal/chop"
	"asynctp/internal/dc"
	"asynctp/internal/history"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/odc"
	"asynctp/internal/rdc"
	"asynctp/internal/storage"
	"asynctp/internal/tdc"
	"asynctp/internal/txn"
)

// Config configures a Runner.
type Config struct {
	// Method is the off-line × on-line combination to run.
	Method Method
	// Distribution is the ε-spec distribution policy (DC methods only;
	// defaults to Static).
	Distribution Distribution
	// Store is the backing store.
	Store *storage.Store
	// Programs is the declared job stream: every transaction type that
	// will run. Chopping assumes this knowledge.
	Programs []*txn.Program
	// Counts declares how many instances of each program the job stream
	// contains (defaults to 1 each). Inter-sibling fuzziness — and hence
	// how finely ESR-chopping may cut — scales with these counts, so a
	// workload that will submit N transfers must declare N.
	Counts []int
	// Record attaches a history recorder for correctness checking.
	Record bool
	// LockStripes overrides the lock manager's stripe count (the number
	// of independently-locked lock-table shards). Zero uses
	// lock.DefaultStripes; 1 degenerates to a single-mutex table, which
	// the conformance explorer uses to cross-check that striping does
	// not change behaviour. Ignored by the non-locking engines.
	LockStripes int
	// OpDelay simulates per-operation work while locks are held (see
	// txn.Exec.SetOpDelay); zero disables it.
	OpDelay time.Duration
	// Optimistic swaps the on-line engine from two-phase locking to the
	// validation-based one (package odc): plain OCC for CC methods,
	// optimistic divergence control for DC methods. Shorthand for
	// Engine: EngineOptimistic.
	Optimistic bool
	// Engine selects the on-line engine family explicitly: locking
	// (default), optimistic (odc), timestamp ordering (tdc) — the three
	// DC families of the paper's reference [12] — or transaction repair
	// (rdc, with or without ε-skip), the provenance-based fourth family.
	Engine EngineKind
	// StepHook, when non-nil, gates every engine scheduling point (lock
	// request, operation effect, commit). The conformance explorer uses
	// it to serialize execution deterministically.
	StepHook txn.StepHook
	// WaitObserver, when non-nil, observes lock-wait transitions on the
	// locking engine's lock manager (see lock.WaitObserver). The
	// conformance explorer uses it to keep its one-runner-at-a-time
	// invariant across blocking lock acquisitions.
	WaitObserver lock.WaitObserver
	// SequentialPieces runs each instance's piece dependency tree
	// depth-first on the submitting goroutine instead of spawning child
	// pieces concurrently. Budget distribution (Figure 2) is unchanged.
	// The conformance explorer sets it so the worker set stays static.
	SequentialPieces bool
	// IDBase offsets every owner and group ID the runner mints (they
	// start at IDBase+1). A process hosting many runners that share one
	// observability plane — the tenant partition layer — gives each
	// runner a disjoint base (like site.Config.InstanceBase) so ledger
	// accounts and trace spans never collide across runners. Zero keeps
	// the dense 1,2,3,… sequence.
	IDBase int64
	// Obs, when non-nil, attaches the observability plane: trace spans,
	// ε-provenance ledger pages, and metrics for every transaction,
	// piece, lock wait, and DC debit the runner executes. The shims tee
	// with StepHook/WaitObserver/Record, so the conformance explorer can
	// trace its own runs. Nil keeps every engine fast path nil.
	Obs *obs.Plane
	// VerifyRepairs is a TEST-ONLY knob for the repair engines: every
	// non-skip install re-executes the whole program from scratch and
	// must match the provenance-repaired result exactly (see
	// rdc.Engine.SetVerify and Runner.RepairVerifyFailure). It must
	// never be set in production paths — the check serializes work the
	// repair exists to avoid.
	VerifyRepairs bool
	// BudgetScale is a TEST-ONLY knob that multiplies every DC ε budget
	// by the given factor after the off-line distribution (0 or 1 leaves
	// budgets intact). The conformance harness uses it to mis-budget a
	// run on purpose and assert the serial-replay oracle catches the
	// resulting ESR violation. It must never be set in production paths.
	BudgetScale int
}

// EngineKind selects the on-line engine family.
type EngineKind int

// Engine kinds.
const (
	// EngineLocking is two-phase locking (+ lock-arbiter DC). Default.
	EngineLocking EngineKind = iota
	// EngineOptimistic is backward-validation OCC (+ ε absorption).
	EngineOptimistic
	// EngineTimestamp is timestamp ordering (+ ε absorption).
	EngineTimestamp
	// EngineRepair is provenance-based transaction repair (rdc): on
	// validation failure only the stale ops re-execute, instead of
	// aborting the whole piece.
	EngineRepair
	// EngineRepairSkip is EngineRepair with ε-skip: query repairs whose
	// value delta fits the remaining import budget are charged to the
	// ledger instead of executed.
	EngineRepairSkip
)

// String renders the engine kind.
func (k EngineKind) String() string {
	switch k {
	case EngineLocking:
		return "locking"
	case EngineOptimistic:
		return "optimistic"
	case EngineTimestamp:
		return "timestamp"
	case EngineRepair:
		return "repair"
	case EngineRepairSkip:
		return "repair-skip"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// altEngine is the shared surface of the non-locking engines.
type altEngine interface {
	Run(ctx context.Context, owner lock.Owner, p *txn.Program,
		spec metric.Spec, class txn.Class) (*txn.Outcome, metric.Fuzz, error)
	SetOpDelay(d time.Duration)
}

// InstanceResult describes one submitted transaction instance.
type InstanceResult struct {
	// Program is the original program name.
	Program string
	// Committed reports whether every piece committed.
	Committed bool
	// RolledBack reports a business rollback in the first piece.
	RolledBack bool
	// Outcomes holds each piece's final outcome, indexed by piece.
	Outcomes []*txn.Outcome
	// Retries counts system-abort resubmissions across all pieces.
	Retries int
	// Imported and Exported are the instance's total fuzziness: by
	// Lemma 1, the sum over its pieces (DC methods only).
	Imported, Exported metric.Fuzz
}

// SumReads totals all values read by all pieces (the audit result).
func (ir *InstanceResult) SumReads() metric.Value {
	var total metric.Value
	for _, o := range ir.Outcomes {
		if o != nil {
			total += o.SumReads()
		}
	}
	return total
}

// Runner executes a declared job stream under one method.
type Runner struct {
	cfg     Config
	sa      *chop.StreamAnalysis
	set     *chop.Set       // runtime set: one instance of each type
	assign  [][]metric.Spec // static per-(type, piece) specs (DC methods)
	dcSpecs []metric.Spec   // per-type spec used by DC (Method 3 shrinks it)
	locks   *lock.Manager
	ctl     *dc.Controller
	engine  altEngine   // non-nil for optimistic/timestamp/repair engines
	odcEng  *odc.Engine // concrete handle for stats
	tdcEng  *tdc.Engine // concrete handle for stats
	rdcEng  *rdc.Engine // concrete handle for stats
	exec    *txn.Exec
	rec     *history.Recorder
	gen     txn.IDGen

	// children[ti][pi] lists the dependency-tree children of piece pi of
	// type ti; numPieces[ti] is the piece count. Both are precomputed at
	// construction because Submit is the hot path and DependencyParents
	// allocates a fresh slice per call.
	children  [][][]int
	numPieces []int

	nextGroup atomic.Int64
	mu        sync.Mutex
	groupOf   map[lock.Owner]history.Group
}

// NewRunner prepares the chopping for cfg.Programs and builds the
// execution stack.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.Store == nil {
		return nil, errors.New("core: config needs a store")
	}
	if len(cfg.Programs) == 0 {
		return nil, errors.New("core: config needs programs")
	}
	if cfg.Distribution == 0 {
		cfg.Distribution = Static
	}
	if len(cfg.Counts) != 0 && len(cfg.Counts) != len(cfg.Programs) {
		return nil, fmt.Errorf("core: %d counts for %d programs", len(cfg.Counts), len(cfg.Programs))
	}
	r := &Runner{cfg: cfg, groupOf: make(map[lock.Owner]history.Group)}
	if cfg.IDBase != 0 {
		r.gen.SetBase(cfg.IDBase)
		r.nextGroup.Store(cfg.IDBase)
	}

	stream := make(chop.Stream, len(cfg.Programs))
	for i, p := range cfg.Programs {
		count := 1
		if len(cfg.Counts) > 0 {
			count = cfg.Counts[i]
		}
		stream[i] = chop.StreamItem{Program: p, Count: count}
	}
	var err error
	switch {
	case !cfg.Method.usesChopping():
		chopped := make([]*chop.Chopped, len(cfg.Programs))
		for i, p := range cfg.Programs {
			chopped[i] = chop.Whole(p)
		}
		r.sa, err = chop.AnalyzeStream(stream, chopped)
	case cfg.Method.usesESRChopping():
		r.sa, err = chop.FindESRStream(stream)
	default:
		r.sa, err = chop.FindSRStream(stream)
	}
	if err != nil {
		return nil, err
	}
	// Runtime set: one instance of each type with the chosen chopping;
	// piece programs come from here.
	r.set, err = chop.NewSet(r.sa.Choppings...)
	if err != nil {
		return nil, err
	}
	r.children = make([][][]int, r.set.NumTxns())
	r.numPieces = make([]int, r.set.NumTxns())
	for ti := 0; ti < r.set.NumTxns(); ti++ {
		parents := r.set.DependencyParents(ti)
		kids := make([][]int, len(parents))
		for pi, parent := range parents {
			if parent >= 0 {
				kids[parent] = append(kids[parent], pi)
			}
		}
		r.children[ti] = kids
		r.numPieces[ti] = len(parents)
	}

	if cfg.Engine == EngineLocking && cfg.Optimistic {
		cfg.Engine = EngineOptimistic
	}
	var lockOpts []lock.Option
	if wo := obs.TeeWaitObserver(cfg.WaitObserver, cfg.Obs.WaitObserver()); wo != nil {
		lockOpts = append(lockOpts, lock.WithWaitObserver(wo))
	}
	if cfg.LockStripes > 0 {
		lockOpts = append(lockOpts, lock.WithStripes(cfg.LockStripes))
	}
	switch {
	case cfg.Engine != EngineLocking:
		// Alternative engines replace locks entirely; the lock manager
		// stays around only for API completeness (stats read as zero).
		r.locks = lock.NewManager(lockOpts...)
	case cfg.Method.usesDC():
		r.ctl = dc.NewController()
		r.locks = lock.NewManager(append(lockOpts, lock.WithArbiter(r.ctl))...)
	default:
		r.locks = lock.NewManager(lockOpts...)
	}
	if cfg.Method.usesDC() {
		// Per-transaction budget the engine works with: Method 3 reserves
		// the inter-sibling fuzziness (Equation 6); others use the full
		// ε-spec.
		r.dcSpecs = make([]metric.Spec, r.set.NumTxns())
		r.assign = make([][]metric.Spec, r.set.NumTxns())
		for ti := range r.dcSpecs {
			if cfg.Method == Method3ESRChopDC {
				r.dcSpecs[ti] = r.sa.DCLimit(ti)
			} else {
				r.dcSpecs[ti] = r.set.Original(ti).Spec
			}
			switch cfg.Distribution {
			case Naive:
				r.assign[ti] = r.sa.NaivePieceSpecs(ti, r.dcSpecs[ti])
			case Proportional:
				r.assign[ti] = r.sa.ProportionalPieceSpecs(ti, r.dcSpecs[ti])
			default:
				// Static assignment also seeds Dynamic's unrestricted ∞.
				r.assign[ti] = r.sa.PieceSpecs(ti, r.dcSpecs[ti])
			}
		}
		if cfg.BudgetScale > 1 {
			// TEST-ONLY: inflate every DC budget so divergence control
			// absorbs more than the declared ε-spec permits. The
			// conformance oracle must catch the resulting violation.
			for ti := range r.dcSpecs {
				r.dcSpecs[ti] = scaleSpec(r.dcSpecs[ti], cfg.BudgetScale)
				for pi := range r.assign[ti] {
					r.assign[ti][pi] = scaleSpec(r.assign[ti][pi], cfg.BudgetScale)
				}
			}
		}
	}
	if cfg.Record {
		r.rec = history.NewRecorder()
	}
	// A nil *Recorder must not become a non-nil Observer interface, and
	// the tee collapses back to nil when neither the recorder nor the
	// plane is live, so engines keep their nil fast paths.
	var recObs txn.Observer
	if r.rec != nil {
		recObs = r.rec
	}
	txnObs := obs.TeeTxnObserver(recObs, cfg.Obs.ExecObserver())
	if r.ctl != nil {
		if dcObs := cfg.Obs.DCObserver(); dcObs != nil {
			r.ctl.SetObserver(dcObs)
		}
	}
	switch cfg.Engine {
	case EngineOptimistic:
		r.odcEng = odc.NewEngine(cfg.Store, txnObs)
		r.engine = r.odcEng
	case EngineTimestamp:
		r.tdcEng = tdc.NewEngine(cfg.Store, txnObs)
		r.engine = r.tdcEng
	case EngineRepair, EngineRepairSkip:
		r.rdcEng = rdc.NewEngine(cfg.Store, txnObs)
		r.rdcEng.SetSkip(cfg.Engine == EngineRepairSkip)
		r.rdcEng.SetVerify(cfg.VerifyRepairs)
		// ε-skips are charged like DC absorptions: through the plane's
		// DC-event observer into the ledger and metrics.
		r.rdcEng.SetDCObserver(cfg.Obs.DCObserver())
		if cfg.Obs.SpansOn() {
			r.rdcEng.SetRepairObserver(func(owner lock.Owner, d time.Duration) {
				cfg.Obs.SpanRepair(int64(owner), d)
			})
		}
		r.engine = r.rdcEng
	}
	if r.engine != nil {
		r.engine.SetOpDelay(cfg.OpDelay)
	}
	r.exec = txn.NewExec(cfg.Store, r.locks, txnObs)
	r.exec.SetOpDelay(cfg.OpDelay)
	if cfg.StepHook != nil {
		r.exec.SetStepHook(cfg.StepHook)
		if r.odcEng != nil {
			r.odcEng.SetStepHook(cfg.StepHook)
		}
		if r.tdcEng != nil {
			r.tdcEng.SetStepHook(cfg.StepHook)
		}
		if r.rdcEng != nil {
			r.rdcEng.SetStepHook(cfg.StepHook)
		}
	}
	return r, nil
}

// scaleSpec multiplies both components of an ε-spec (BudgetScale knob).
func scaleSpec(s metric.Spec, n int) metric.Spec {
	return metric.Spec{Import: s.Import.Mul(n), Export: s.Export.Mul(n)}
}

// ODCStats returns the optimistic engine counters (zero otherwise).
func (r *Runner) ODCStats() odc.Stats {
	if r.odcEng == nil {
		return odc.Stats{}
	}
	return r.odcEng.Stats()
}

// TDCStats returns the timestamp engine counters (zero otherwise).
func (r *Runner) TDCStats() tdc.Stats {
	if r.tdcEng == nil {
		return tdc.Stats{}
	}
	return r.tdcEng.Stats()
}

// RDCStats returns the repair engine counters (zero otherwise).
func (r *Runner) RDCStats() rdc.Stats {
	if r.rdcEng == nil {
		return rdc.Stats{}
	}
	return r.rdcEng.Stats()
}

// RepairVerifyFailure returns the repair engine's first self-check
// mismatch ("" when clean or not a repair engine); see
// Config.VerifyRepairs.
func (r *Runner) RepairVerifyFailure() string {
	if r.rdcEng == nil {
		return ""
	}
	return r.rdcEng.VerifyFailure()
}

// Set returns the prepared chopping (one instance per program type).
func (r *Runner) Set() *chop.Set { return r.set }

// StreamAnalysis returns the multiplicity-aware chopping analysis.
func (r *Runner) StreamAnalysis() *chop.StreamAnalysis { return r.sa }

// Analysis returns the chopping-graph analysis of the expanded stream.
func (r *Runner) Analysis() *chop.Analysis { return r.sa.Analysis }

// Recorder returns the history recorder, nil unless Config.Record.
func (r *Runner) Recorder() *history.Recorder { return r.rec }

// LockStats returns the lock manager counters.
func (r *Runner) LockStats() lock.Stats { return r.locks.Stats() }

// DCStats returns divergence-control counters (zero for CC methods).
func (r *Runner) DCStats() dc.Stats {
	if r.ctl == nil {
		return dc.Stats{}
	}
	return r.ctl.Stats()
}

// GroupOf returns the owner→original-transaction grouping for grouped
// history checks.
func (r *Runner) GroupOf() map[lock.Owner]history.Group {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[lock.Owner]history.Group, len(r.groupOf))
	for k, v := range r.groupOf {
		out[k] = v
	}
	return out
}

// enqueueKey carries an upstream admission timestamp through ctx so
// the tracer can attribute pre-runner queueing (tenant mailbox wait)
// to the admit phase of the instance it becomes.
type enqueueKey struct{}

// WithEnqueueTime annotates ctx with the instant the request entered
// an upstream queue; Submit turns the gap until pickup into an admit
// span on the instance's trace.
func WithEnqueueTime(ctx context.Context, t time.Time) context.Context {
	return context.WithValue(ctx, enqueueKey{}, t)
}

// Submit executes one instance of program ti (index into
// Config.Programs) and blocks until every piece finishes. Instances may
// be submitted concurrently from many goroutines.
func (r *Runner) Submit(ctx context.Context, ti int) (*InstanceResult, error) {
	if ti < 0 || ti >= r.set.NumTxns() {
		return nil, fmt.Errorf("core: program index %d out of range", ti)
	}
	group := history.Group(r.nextGroup.Add(1))
	orig := r.set.Original(ti)
	inst := &instance{
		runner: r,
		ti:     ti,
		group:  group,
		result: &InstanceResult{
			Program:  orig.Name,
			Outcomes: make([]*txn.Outcome, r.numPieces[ti]),
		},
	}
	if r.cfg.Obs != nil {
		r.cfg.Obs.TxnBegin(int64(group), orig.Name)
		// Ledger pages carry the ORIGINAL declared ε budget, not the
		// (possibly BudgetScale-inflated) spec DC runs with — that gap is
		// exactly what reconciliation must expose.
		r.cfg.Obs.BindBudget(int64(group), orig.Name, orig.Class().String(),
			r.cfg.Distribution.String(), orig.Spec.Import)
		if enq, ok := ctx.Value(enqueueKey{}).(time.Time); ok {
			r.cfg.Obs.SpanAdmit(uint64(group), enq.UnixNano(), time.Now().UnixNano())
		}
	}
	if err := inst.run(ctx); err != nil {
		r.cfg.Obs.TxnEnd(int64(group), false)
		return inst.result, err
	}
	r.cfg.Obs.TxnEnd(int64(group), inst.result.Committed)
	return inst.result, nil
}

// instance tracks one in-flight submission.
type instance struct {
	runner *Runner
	ti     int
	group  history.Group
	mu     sync.Mutex
	result *InstanceResult
}

// run executes the instance: the first piece synchronously (business
// rollbacks abort the whole instance), then the rest of the dependency
// tree, each piece retried on system aborts until it commits.
func (inst *instance) run(ctx context.Context) error {
	r := inst.runner
	children := r.children[inst.ti]

	// The whole-transaction budget enters at the root (Figure 2:
	// DynamicExecution assigns Limit_t to p1's schedule).
	rootSpec := metric.Unbounded
	if r.cfg.Method.usesDC() {
		rootSpec = r.dcSpecs[inst.ti]
	}
	out, spent, err := inst.runPiece(ctx, 0, rootSpec)
	inst.record(0, out)
	if err != nil {
		if errors.Is(err, txn.ErrRollback) {
			inst.result.RolledBack = true
			return nil // rollback is a defined outcome, not a failure
		}
		return err
	}
	if len(children) == 1 {
		// Single-piece program (unchopped, or a chopping that found no
		// cut): there is nothing to schedule, so skip the walk/scheduler
		// machinery — the closure, wait group, and error channel it
		// allocates are pure overhead on this hot path.
		inst.result.Committed = true
		return nil
	}

	if r.cfg.SequentialPieces {
		// Depth-first on the submitting goroutine: the same budget split
		// as the concurrent path, but a static worker set (one goroutine
		// per instance), which the conformance explorer needs for
		// deterministic scheduling.
		var walk func(pi int, leftover metric.Spec) error
		walk = func(pi int, leftover metric.Spec) error {
			kids := children[pi]
			if len(kids) == 0 {
				return nil
			}
			share := metric.Spec{
				Import: leftover.Import.Div(len(kids)),
				Export: leftover.Export.Div(len(kids)),
			}
			for _, kid := range kids {
				out, kidSpent, err := inst.runPiece(ctx, kid, share)
				inst.record(kid, out)
				if err != nil {
					return fmt.Errorf("piece %d: %w", kid, err)
				}
				if err := walk(kid, kidSpent); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(0, spent); err != nil {
			return err
		}
		inst.result.Committed = true
		return nil
	}

	// Remaining pieces commit asynchronously along the dependency tree.
	var wg sync.WaitGroup
	errs := make(chan error, len(children))
	var schedule func(pi int, leftover metric.Spec)
	schedule = func(pi int, leftover metric.Spec) {
		kids := children[pi]
		if len(kids) == 0 {
			return
		}
		// Figure 2: split the leftover evenly across the scheduled set.
		share := metric.Spec{
			Import: leftover.Import.Div(len(kids)),
			Export: leftover.Export.Div(len(kids)),
		}
		for _, kid := range kids {
			wg.Add(1)
			go func(kid int) {
				defer wg.Done()
				out, spent, err := inst.runPiece(ctx, kid, share)
				inst.record(kid, out)
				if err != nil {
					errs <- fmt.Errorf("piece %d: %w", kid, err)
					return
				}
				schedule(kid, spent)
			}(kid)
		}
	}
	schedule(0, spent)
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	inst.result.Committed = true
	return nil
}

// record stores a piece outcome.
func (inst *instance) record(pi int, out *txn.Outcome) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.result.Outcomes[pi] = out
}

// runPiece executes piece pi with the given available budget, retrying
// system aborts, and returns the outcome plus the leftover budget
// (Figure 2's LO_p). Unrestricted pieces run with ∞ and pass their
// incoming budget through untouched.
func (inst *instance) runPiece(ctx context.Context, pi int, budget metric.Spec) (*txn.Outcome, metric.Spec, error) {
	r := inst.runner
	v := r.set.Vertex(inst.ti, pi)
	piece := r.set.Piece(v)
	prog := piece.Program

	useDC := r.cfg.Method.usesDC()
	unrestricted := useDC && !r.sa.Restricted(inst.ti, pi)
	runSpec := budget
	switch {
	case !useDC:
		runSpec = metric.Unbounded // unused
	case unrestricted:
		runSpec = metric.Unbounded
	case r.cfg.Distribution != Dynamic:
		// Static and naive policies ignore the propagated budget and use
		// the off-line assignment.
		runSpec = r.assign[inst.ti][pi]
	}

	class := txn.Query
	if piece.UpdatePiece {
		class = txn.Update
	}
	for {
		owner := r.gen.Next()
		if r.cfg.Obs != nil {
			// Single-process pieces hang directly off the root span.
			r.cfg.Obs.PieceBegin(int64(owner), int64(inst.group), pi, "", prog.Name, class,
				obs.PieceSpanID(uint64(inst.group), pi, false), obs.RootSpanID(uint64(inst.group)), "")
		}
		if r.rec != nil {
			// The owner→group map exists only for grouped history checks;
			// without a recorder there is no history to group, and the
			// global-mutex map insert would be pure hot-path overhead.
			r.mu.Lock()
			r.groupOf[owner] = inst.group
			r.mu.Unlock()
		}

		var (
			out                *txn.Outcome
			err                error
			imported, exported metric.Fuzz
		)
		if r.engine != nil {
			// Optimistic engine: CC methods validate with a strict spec
			// (plain OCC); DC methods absorb within the piece's budget.
			engineSpec := metric.Strict
			if useDC {
				engineSpec = runSpec
			}
			out, imported, err = r.engine.Run(ctx, owner, prog, engineSpec, class)
		} else {
			if useDC {
				if regErr := r.ctl.Register(owner, dc.Info{
					Class:   class,
					Import:  runSpec.Import,
					Export:  runSpec.Export,
					Program: prog,
				}); regErr != nil {
					return nil, budget, regErr
				}
			}
			out, err = r.exec.Run(ctx, owner, prog)
			if useDC {
				imported, exported = r.ctl.Unregister(owner)
			}
		}
		if r.cfg.Obs != nil {
			// Settle every attempt (aborted ones included) so ledger
			// piece binds never leak; canonical exports drop aborted
			// owners' events anyway.
			r.cfg.Obs.PieceSettle(int64(owner), imported, exported)
		}
		if err == nil {
			if useDC {
				inst.addFuzz(imported, exported)
			}
			leftover := metric.Spec{
				Import: runSpec.Import.Sub(imported),
				Export: runSpec.Export.Sub(exported),
			}
			if unrestricted {
				// Unrestricted pieces consume no quota: pass through what
				// came in (Figure 2's else branch).
				leftover = budget
			}
			return out, leftover, nil
		}
		if (!txn.Retryable(err) && !odc.Retryable(err) && !tdc.Retryable(err) && !rdc.Retryable(err)) || ctx.Err() != nil {
			return out, budget, err
		}
		inst.mu.Lock()
		inst.result.Retries++
		inst.mu.Unlock()
	}
}

// addFuzz accumulates instance-level fuzziness (Lemma 1).
func (inst *instance) addFuzz(imported, exported metric.Fuzz) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.result.Imported = inst.result.Imported.Add(imported)
	inst.result.Exported = inst.result.Exported.Add(exported)
}
