package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// bankFixture is a two-account bank with one transfer and one audit
// program: the minimal workload where chopping vs ESR differences show.
type bankFixture struct {
	store    *storage.Store
	programs []*txn.Program
	total    metric.Value
}

func newBankFixture(importLimit, exportLimit metric.Fuzz) *bankFixture {
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 5000, "Y": 5000})
	xfer := txn.MustProgram("xfer",
		txn.AddOp("X", -100), txn.AddOp("Y", 100),
	).WithSpec(metric.Spec{Import: metric.Zero, Export: metric.LimitOf(exportLimit)})
	audit := txn.MustProgram("audit",
		txn.ReadOp("X"), txn.ReadOp("Y"),
	).WithSpec(metric.Spec{Import: metric.LimitOf(importLimit), Export: metric.Zero})
	return &bankFixture{store: store, programs: []*txn.Program{xfer, audit}, total: 10000}
}

// mixedConfig builds a Config whose declared stream matches the counts
// runMixed will actually submit.
func mixedConfig(fx *bankFixture, method Method, xfers, audits int, record bool) Config {
	return Config{
		Method:   method,
		Store:    fx.store,
		Programs: fx.programs,
		Counts:   []int{xfers, audits},
		Record:   record,
	}
}

// runMixed submits xfers and audits concurrently and returns the audit
// results.
func runMixed(t *testing.T, r *Runner, xfers, audits int) []*InstanceResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	auditResults := make([]*InstanceResult, audits)
	errCh := make(chan error, xfers+audits)
	for i := 0; i < xfers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Submit(ctx, 0); err != nil {
				errCh <- err
			}
		}()
	}
	for i := 0; i < audits; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Submit(ctx, 1)
			if err != nil {
				errCh <- err
				return
			}
			auditResults[i] = res
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("submit: %v", err)
	}
	return auditResults
}

func TestBaselineSRCCIsSerializableAndExact(t *testing.T) {
	fx := newBankFixture(0, 0)
	r, err := NewRunner(mixedConfig(fx, BaselineSRCC, 20, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if !a.Committed {
			t.Fatalf("audit %d not committed", i)
		}
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit %d sum = %d, want exactly %d", i, got, fx.total)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	grouped := r.Recorder().CheckGrouped(r.GroupOf())
	if !grouped.Serializable {
		t.Errorf("baseline SR/CC produced non-serializable history: %v", grouped.Cycle)
	}
	if got := r.DCStats().Absorbed; got != 0 {
		t.Errorf("CC method absorbed %d conflicts", got)
	}
}

func TestSRChopCCSerializableWRTOriginals(t *testing.T) {
	fx := newBankFixture(0, 0)
	r, err := NewRunner(mixedConfig(fx, SRChopCC, 20, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for _, a := range audits {
		if got := a.SumReads(); got != fx.total {
			t.Errorf("audit sum = %d, want exactly %d", got, fx.total)
		}
	}
	grouped := r.Recorder().CheckGrouped(r.GroupOf())
	if !grouped.Serializable {
		t.Errorf("SR-chop/CC not serializable w.r.t. originals: %v", grouped.Cycle)
	}
}

func TestBaselineESRDCBoundedDeviation(t *testing.T) {
	const importLimit = 500
	fx := newBankFixture(importLimit, 10000)
	r, err := NewRunner(mixedConfig(fx, BaselineESRDC, 30, 15, true))
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 30, 15)
	for i, a := range audits {
		got := a.SumReads()
		dev := metric.Distance(got, fx.total)
		if dev > importLimit {
			t.Errorf("audit %d deviation = %d, exceeds ε = %d", i, dev, importLimit)
		}
		if a.Imported > importLimit {
			t.Errorf("audit %d imported %d > limit %d", i, a.Imported, importLimit)
		}
	}
	// Update ETs stay serializable among themselves: money conserved.
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestMethod1SRChopDC(t *testing.T) {
	const importLimit = 600
	fx := newBankFixture(importLimit, 10000)
	r, err := NewRunner(mixedConfig(fx, Method1SRChopDC, 30, 15, true))
	if err != nil {
		t.Fatal(err)
	}
	if !r.StreamAnalysis().IsSR() {
		t.Fatal("method 1 must run an SR-chopping")
	}
	audits := runMixed(t, r, 30, 15)
	for i, a := range audits {
		dev := metric.Distance(a.SumReads(), fx.total)
		if dev > importLimit {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, importLimit)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestMethod2ESRChopCC(t *testing.T) {
	// Budgets sized to the declared stream keep the chopping fine; CC at
	// runtime means the only inconsistency is inter-sibling, bounded by
	// the count-scaled Z^is ≤ ε. With 10 transfers and 5 audits:
	// Z^is(xfer) = 5×200 = 1000 and Z^is(audit) = 10×200 = 2000.
	const importLimit = 2000
	fx := newBankFixture(importLimit, 1000)
	r, err := NewRunner(mixedConfig(fx, Method2ESRChopCC, 10, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Set().Chopping(0).NumPieces(); got != 2 {
		t.Fatalf("ESR-chopping kept xfer whole (%d pieces); fixture broken", got)
	}
	audits := runMixed(t, r, 10, 5)
	for i, a := range audits {
		dev := metric.Distance(a.SumReads(), fx.total)
		if dev > importLimit {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, importLimit)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
	// CC must not have absorbed anything.
	if got := r.LockStats().FuzzyGrants; got != 0 {
		t.Errorf("CC method made %d fuzzy grants", got)
	}
}

func TestMethod3ESRChopDC(t *testing.T) {
	// Import budget 3000 covers Z^is(audit) = 10×200 = 2000 plus a DC
	// allowance of 1000 (Equation 6); the audit deviation must stay
	// within the FULL ε even though both chopping gaps and fuzzy reads
	// contribute.
	const budget = 3000
	fx := newBankFixture(budget, budget)
	r, err := NewRunner(mixedConfig(fx, Method3ESRChopDC, 10, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 10, 5)
	for i, a := range audits {
		dev := metric.Distance(a.SumReads(), fx.total)
		if dev > budget {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, budget)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestRollbackInFirstPieceAbortsInstance(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 50, "Y": 0})
	withdraw := txn.MustProgram("withdraw",
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("Y", 100),
	)
	r, err := NewRunner(Config{
		Method: SRChopCC, Store: store, Programs: []*txn.Program{withdraw}, Record: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Submit(context.Background(), 0)
	if err != nil {
		t.Fatalf("rollback surfaced as error: %v", err)
	}
	if res.Committed || !res.RolledBack {
		t.Errorf("result = %+v, want rolled back", res)
	}
	if store.Get("X") != 50 || store.Get("Y") != 0 {
		t.Errorf("state changed after rollback: X=%d Y=%d", store.Get("X"), store.Get("Y"))
	}
}

func TestRollbackSucceedsWhenFunded(t *testing.T) {
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 500, "Y": 0})
	withdraw := txn.MustProgram("withdraw",
		txn.WithAbortIf(txn.AddOp("X", -100), func(v metric.Value) bool { return v < 100 }),
		txn.AddOp("Y", 100),
	)
	r, err := NewRunner(Config{
		Method: SRChopCC, Store: store, Programs: []*txn.Program{withdraw},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Submit(context.Background(), 0)
	if err != nil || !res.Committed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if store.Get("X") != 400 || store.Get("Y") != 100 {
		t.Errorf("X=%d Y=%d", store.Get("X"), store.Get("Y"))
	}
}

func TestDynamicDistributionPropagatesLeftovers(t *testing.T) {
	const budget = 400
	fx := newBankFixture(budget, budget)
	cfg := mixedConfig(fx, Method1SRChopDC, 20, 10, true)
	cfg.Distribution = Dynamic
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		dev := metric.Distance(a.SumReads(), fx.total)
		if dev > budget {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, budget)
		}
	}
	if got := fx.store.Sum([]storage.Key{"X", "Y"}); got != fx.total {
		t.Errorf("final total = %d, want %d", got, fx.total)
	}
}

func TestNaiveDistributionStillBounded(t *testing.T) {
	const budget = 400
	fx := newBankFixture(budget, budget)
	cfg := mixedConfig(fx, Method1SRChopDC, 20, 10, true)
	cfg.Distribution = Naive
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 20, 10)
	for i, a := range audits {
		if dev := metric.Distance(a.SumReads(), fx.total); dev > budget {
			t.Errorf("audit %d deviation = %d > ε = %d", i, dev, budget)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	fx := newBankFixture(0, 0)
	if _, err := NewRunner(Config{Method: BaselineSRCC, Programs: fx.programs}); err == nil {
		t.Error("missing store accepted")
	}
	if _, err := NewRunner(Config{Method: BaselineSRCC, Store: fx.store}); err == nil {
		t.Error("missing programs accepted")
	}
	if _, err := NewRunner(Config{
		Method: BaselineSRCC, Store: fx.store, Programs: fx.programs, Counts: []int{1},
	}); err == nil {
		t.Error("mismatched counts accepted")
	}
	r, err := NewRunner(Config{Method: BaselineSRCC, Store: fx.store, Programs: fx.programs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(context.Background(), 99); err == nil {
		t.Error("out-of-range program index accepted")
	}
	if _, err := r.Submit(context.Background(), -1); err == nil {
		t.Error("negative program index accepted")
	}
}

func TestMethodStrings(t *testing.T) {
	for _, m := range Methods() {
		if s := m.String(); s == "" || s[0] == 'M' {
			t.Errorf("method %d has suspicious name %q", int(m), s)
		}
	}
	if Method(99).String() != "Method(99)" {
		t.Error("unknown method string")
	}
	for _, d := range []Distribution{Static, Dynamic, Naive} {
		if d.String() == "" {
			t.Errorf("distribution %d has empty name", int(d))
		}
	}
}

func TestInstanceFuzzMatchesLemma1(t *testing.T) {
	// Imported fuzz of an instance equals the sum over its pieces, which
	// the runner accumulates; verify the audit's imported fuzz is within
	// its limit and consistent with nonzero absorption when present.
	const importLimit = 800
	fx := newBankFixture(importLimit, 10000)
	r, err := NewRunner(mixedConfig(fx, BaselineESRDC, 30, 10, false))
	if err != nil {
		t.Fatal(err)
	}
	audits := runMixed(t, r, 30, 10)
	var anyImported bool
	for _, a := range audits {
		if a.Imported > 0 {
			anyImported = true
		}
		if a.Imported > importLimit {
			t.Errorf("imported %d > limit %d", a.Imported, importLimit)
		}
	}
	stats := r.DCStats()
	if anyImported && stats.Absorbed == 0 {
		t.Error("imported fuzz without absorbed conflicts")
	}
}
