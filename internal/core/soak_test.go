package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// TestSoakAllMethodsConserveMoney runs a larger contended stream under
// every method × engine combination and checks the global invariants:
// money conserved, every instance settled, every audit within ε.
func TestSoakAllMethodsConserveMoney(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const (
		accounts = 6
		xferN    = 60
		auditN   = 20
		epsilon  = 50000
		amount   = 250
	)
	for _, method := range Methods() {
		for _, optimistic := range []bool{false, true} {
			name := fmt.Sprintf("%s/optimistic=%v", method, optimistic)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				init := make(map[storage.Key]metric.Value, accounts)
				var auditOps []txn.Op
				for i := 0; i < accounts; i++ {
					k := storage.Key(fmt.Sprintf("acct%d", i))
					init[k] = 1000000
					auditOps = append(auditOps, txn.ReadOp(k))
				}
				spec := metric.SpecOf(epsilon)
				programs := []*txn.Program{
					txn.MustProgram("xferA",
						txn.AddOp("acct0", -amount), txn.AddOp("acct1", amount)).WithSpec(spec),
					txn.MustProgram("xferB",
						txn.AddOp("acct2", -amount), txn.AddOp("acct3", amount)).WithSpec(spec),
					txn.MustProgram("xferC",
						txn.AddOp("acct4", -amount), txn.AddOp("acct5", amount)).WithSpec(spec),
					txn.MustProgram("audit", auditOps...).WithSpec(spec),
				}
				store := storage.NewFrom(init)
				r, err := NewRunner(Config{
					Method:     method,
					Store:      store,
					Programs:   programs,
					Counts:     []int{xferN, xferN, xferN, auditN},
					Optimistic: optimistic,
					OpDelay:    20 * time.Microsecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
				defer cancel()
				type result struct {
					dev metric.Fuzz
					err error
				}
				results := make(chan result, 3*xferN+auditN)
				run := func(ti int, isAudit bool) {
					res, err := r.Submit(ctx, ti)
					if err != nil {
						results <- result{err: err}
						return
					}
					var dev metric.Fuzz
					if isAudit && res.Committed {
						dev = metric.Distance(res.SumReads(), metric.Value(accounts)*1000000)
					}
					results <- result{dev: dev}
				}
				for i := 0; i < xferN; i++ {
					for ti := 0; ti < 3; ti++ {
						go run(ti, false)
					}
				}
				for i := 0; i < auditN; i++ {
					go run(3, true)
				}
				var worst metric.Fuzz
				for i := 0; i < 3*xferN+auditN; i++ {
					res := <-results
					if res.err != nil {
						t.Fatal(res.err)
					}
					if res.dev > worst {
						worst = res.dev
					}
				}
				if total := store.Sum(programs[3].ReadSet()); total != metric.Value(accounts)*1000000 {
					t.Errorf("total = %d, want %d", total, accounts*1000000)
				}
				if worst > epsilon {
					t.Errorf("worst audit deviation %d > ε %d", worst, epsilon)
				}
			})
		}
	}
}
