// Package dc implements two-phase-locking divergence control (DC) for
// epsilon serializability.
//
// DC is "2PL except for the way it handles read-write conflicts"
// (Wu-Yu-Pu): when a read-write conflict arises between a query ET and an
// update ET, the query may import and the update may export a bounded
// amount of fuzziness instead of blocking. The controller plugs into the
// lock manager as its conflict Arbiter:
//
//   - Each running transaction (or chopped piece) registers its class,
//     its import/export limits, and its program (whose declared write
//     bounds price conflicts).
//   - A conflict on key k between query q and update u costs u's declared
//     write bound on k — the worst-case distance the interleaving can put
//     between q's view and a serializable one. Unpredictable writes carry
//     an infinite bound, so conflicts on them are never absorbed and DC
//     degrades to ordinary 2PL (the upward compatibility of ESR).
//   - The conflict is absorbed iff both accounts stay within their
//     limits: Z_import(q)+cost ≤ Limit_import(q) and Z_export(u)+cost ≤
//     Limit_export(u) (Condition 1, Safe(p)). Otherwise the requester
//     blocks exactly as under 2PL.
//
// Update-update conflicts are never absorbed: the paper's environment
// keeps update ETs serializable among themselves.
package dc

import (
	"fmt"
	"sync"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Info describes a registered transaction to the controller.
type Info struct {
	// Class is the ET's class (query or update).
	Class txn.Class
	// Import bounds the fuzziness the ET may observe.
	Import metric.Limit
	// Export bounds the fuzziness the ET may cause others to observe.
	Export metric.Limit
	// Program supplies declared write bounds for pricing conflicts. It
	// must be non-nil for update ETs.
	Program *txn.Program
}

// account is the runtime fuzziness ledger of one registered transaction.
type account struct {
	info     Info
	imported metric.Fuzz
	exported metric.Fuzz
}

// Stats are cumulative controller counters.
type Stats struct {
	// Absorbed counts conflicts granted with fuzziness charging.
	Absorbed uint64
	// Refused counts conflicts that fell back to blocking.
	Refused uint64
	// TotalCharged sums the fuzziness charged over all absorbed
	// conflicts (each conflict charges both sides once; counted once).
	TotalCharged metric.Fuzz
}

// Event describes one arbitration decision, for observers.
type Event struct {
	// Key is the conflicted item.
	Key storage.Key
	// Requester is the transaction that asked for the incompatible grant.
	Requester lock.Owner
	// Absorbed reports whether the conflict was absorbed (granted).
	Absorbed bool
	// Cost is the total fuzziness charged (absorbed events only).
	Cost metric.Fuzz
}

// Controller is a divergence controller: a lock.Arbiter with fuzziness
// accounts.
type Controller struct {
	mu       sync.Mutex
	accounts map[lock.Owner]*account
	stats    Stats
	observer func(Event)
}

var _ lock.Arbiter = (*Controller)(nil)

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{accounts: make(map[lock.Owner]*account)}
}

// SetObserver installs a callback invoked on every arbitration decision,
// in the hook style of the fault package: conformance tooling uses it to
// log exactly which conflict windows were fuzzily granted. The callback
// runs with the controller's mutex held and must not call back into the
// controller or the lock manager. Nil (the default) disables it.
func (c *Controller) SetObserver(fn func(Event)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = fn
}

// notifyLocked reports one decision to the observer.
func (c *Controller) notifyLocked(ev Event) {
	if c.observer != nil {
		c.observer(ev)
	}
}

// Register adds owner's account before it starts executing.
func (c *Controller) Register(owner lock.Owner, info Info) error {
	if info.Class == txn.Update && info.Program == nil {
		return fmt.Errorf("dc: update ET %d registered without program", owner)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.accounts[owner]; dup {
		return fmt.Errorf("dc: owner %d already registered", owner)
	}
	c.accounts[owner] = &account{info: info}
	return nil
}

// Unregister removes owner's account after it finishes. It returns the
// final (imported, exported) fuzziness, both zero if owner was unknown.
func (c *Controller) Unregister(owner lock.Owner) (imported, exported metric.Fuzz) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acct := c.accounts[owner]
	if acct == nil {
		return 0, 0
	}
	delete(c.accounts, owner)
	return acct.imported, acct.exported
}

// Fuzz returns owner's current (imported, exported) fuzziness.
func (c *Controller) Fuzz(owner lock.Owner) (imported, exported metric.Fuzz) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if acct := c.accounts[owner]; acct != nil {
		return acct.imported, acct.exported
	}
	return 0, 0
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// pairing is one query/update pair a conflict decomposes into.
type pairing struct {
	query  *account
	update *account
	cost   metric.Fuzz
}

// Absorb implements lock.Arbiter. It is all-or-nothing: either every
// conflicting pair is priced, affordable, and charged, or nothing changes
// and the requester blocks.
func (c *Controller) Absorb(ci lock.ConflictInfo) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ok, cost := c.absorbLocked(ci)
	c.notifyLocked(Event{Key: ci.Key, Requester: ci.Requester, Absorbed: ok, Cost: cost})
	return ok
}

// absorbLocked performs the arbitration and returns the decision plus the
// total fuzziness charged.
func (c *Controller) absorbLocked(ci lock.ConflictInfo) (bool, metric.Fuzz) {
	req := c.accounts[ci.Requester]
	if req == nil {
		c.stats.Refused++
		return false, 0 // unregistered transactions run plain 2PL
	}
	pairs := make([]pairing, 0, len(ci.Holders))
	for _, h := range ci.Holders {
		holder := c.accounts[h.Owner]
		if holder == nil {
			c.stats.Refused++
			return false, 0
		}
		var p pairing
		switch {
		case req.info.Class == txn.Query && holder.info.Class == txn.Update:
			p = pairing{query: req, update: holder}
		case req.info.Class == txn.Update && holder.info.Class == txn.Query:
			p = pairing{query: holder, update: req}
		default:
			// update-update (or an impossible query-query conflict):
			// never absorbed.
			c.stats.Refused++
			return false, 0
		}
		bound := p.update.info.Program.WriteBound(ci.Key)
		if bound.IsInfinite() {
			c.stats.Refused++
			return false, 0
		}
		p.cost = bound.Bound()
		pairs = append(pairs, p)
	}
	// Affordability check with per-account aggregation: charging is
	// simulated first so that two pairs hitting the same account within
	// one conflict are summed before comparing with the limit.
	pendImport := make(map[*account]metric.Fuzz)
	pendExport := make(map[*account]metric.Fuzz)
	for _, p := range pairs {
		pendImport[p.query] = pendImport[p.query].Add(p.cost)
		pendExport[p.update] = pendExport[p.update].Add(p.cost)
	}
	for acct, add := range pendImport {
		if !acct.info.Import.Allows(acct.imported.Add(add)) {
			c.stats.Refused++
			return false, 0
		}
	}
	for acct, add := range pendExport {
		if !acct.info.Export.Allows(acct.exported.Add(add)) {
			c.stats.Refused++
			return false, 0
		}
	}
	var total metric.Fuzz
	for acct, add := range pendImport {
		acct.imported = acct.imported.Add(add)
		c.stats.TotalCharged = c.stats.TotalCharged.Add(add)
		total = total.Add(add)
	}
	for acct, add := range pendExport {
		acct.exported = acct.exported.Add(add)
	}
	c.stats.Absorbed++
	return true, total
}

// ChargeImport adds fuzziness directly to owner's import account. The
// distributed runtime uses it to carry fuzziness across sites with a
// piece's inputs (the paper's "distribution of actual inconsistency").
// It reports whether the account stays within its limit.
func (c *Controller) ChargeImport(owner lock.Owner, f metric.Fuzz) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	acct := c.accounts[owner]
	if acct == nil {
		return false
	}
	acct.imported = acct.imported.Add(f)
	return acct.info.Import.Allows(acct.imported)
}

// Key is re-exported for documentation completeness.
type Key = storage.Key
