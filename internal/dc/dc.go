// Package dc implements two-phase-locking divergence control (DC) for
// epsilon serializability.
//
// DC is "2PL except for the way it handles read-write conflicts"
// (Wu-Yu-Pu): when a read-write conflict arises between a query ET and an
// update ET, the query may import and the update may export a bounded
// amount of fuzziness instead of blocking. The controller plugs into the
// lock manager as its conflict Arbiter:
//
//   - Each running transaction (or chopped piece) registers its class,
//     its import/export limits, and its program (whose declared write
//     bounds price conflicts).
//   - A conflict on key k between query q and update u costs u's declared
//     write bound on k — the worst-case distance the interleaving can put
//     between q's view and a serializable one. Unpredictable writes carry
//     an infinite bound, so conflicts on them are never absorbed and DC
//     degrades to ordinary 2PL (the upward compatibility of ESR).
//   - The conflict is absorbed iff both accounts stay within their
//     limits: Z_import(q)+cost ≤ Limit_import(q) and Z_export(u)+cost ≤
//     Limit_export(u) (Condition 1, Safe(p)). Otherwise the requester
//     blocks exactly as under 2PL.
//
// Update-update conflicts are never absorbed: the paper's environment
// keeps update ETs serializable among themselves.
//
// # Striping
//
// The owner→account lookup is a sharded read-mostly map (shard RWMutex,
// read path takes only a read lock), and each account carries its own
// mutex over the fuzziness ledger. Absorb locks exactly the accounts a
// conflict involves, in owner order, so fuzziness accounting of
// unrelated ETs never serializes. Counters are atomics and the observer
// is an atomic pointer with a nil fast path, so an idle hook costs one
// atomic load per arbitration.
package dc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Info describes a registered transaction to the controller.
type Info struct {
	// Class is the ET's class (query or update).
	Class txn.Class
	// Import bounds the fuzziness the ET may observe.
	Import metric.Limit
	// Export bounds the fuzziness the ET may cause others to observe.
	Export metric.Limit
	// Program supplies declared write bounds for pricing conflicts. It
	// must be non-nil for update ETs.
	Program *txn.Program
}

// account is the runtime fuzziness ledger of one registered transaction.
type account struct {
	owner lock.Owner
	info  Info

	mu       sync.Mutex
	imported metric.Fuzz
	exported metric.Fuzz
}

// Stats are cumulative controller counters.
type Stats struct {
	// Absorbed counts conflicts granted with fuzziness charging.
	Absorbed uint64
	// Refused counts conflicts that fell back to blocking.
	Refused uint64
	// TotalCharged sums the fuzziness charged over all absorbed
	// conflicts (each conflict charges both sides once; counted once).
	TotalCharged metric.Fuzz
}

// Pair is one query/update decomposition of an absorbed conflict: the
// query side imports Cost fuzziness, the update side exports it. A
// provenance ledger uses the pairs to attribute every debit back to
// both accounts it touched.
type Pair struct {
	Query  lock.Owner
	Update lock.Owner
	Cost   metric.Fuzz
}

// Event describes one arbitration decision, for observers.
type Event struct {
	// Key is the conflicted item.
	Key storage.Key
	// Requester is the transaction that asked for the incompatible grant.
	Requester lock.Owner
	// Absorbed reports whether the conflict was absorbed (granted).
	Absorbed bool
	// Cost is the total fuzziness charged (absorbed events only).
	Cost metric.Fuzz
	// Pairs lists the query/update pairs the conflict decomposed into
	// (absorbed events only). The slice is built only when an observer
	// is installed and must not be retained past the callback.
	Pairs []Pair
}

// acctShard is one shard of the owner→account map.
type acctShard struct {
	mu sync.RWMutex
	m  map[lock.Owner]*account
}

// shardCount is the owner→account shard count (power of two).
const shardCount = 32

// Controller is a divergence controller: a lock.Arbiter with fuzziness
// accounts.
type Controller struct {
	shards [shardCount]*acctShard

	absorbed     atomic.Uint64
	refused      atomic.Uint64
	totalCharged atomic.Int64

	// observer is consulted with a single atomic load on the arbitration
	// path; nil (the default) costs nothing beyond that load.
	observer atomic.Pointer[func(Event)]
	// obsMu serializes observer callbacks so a conformance logger sees
	// decisions one at a time.
	obsMu sync.Mutex
}

var _ lock.Arbiter = (*Controller)(nil)

// NewController returns an empty controller.
func NewController() *Controller {
	c := &Controller{}
	for i := range c.shards {
		c.shards[i] = &acctShard{m: make(map[lock.Owner]*account)}
	}
	return c
}

// shardFor returns owner's shard.
func (c *Controller) shardFor(owner lock.Owner) *acctShard {
	return c.shards[uint64(owner)%shardCount]
}

// lookup returns owner's account or nil.
func (c *Controller) lookup(owner lock.Owner) *account {
	sh := c.shardFor(owner)
	sh.mu.RLock()
	acct := sh.m[owner]
	sh.mu.RUnlock()
	return acct
}

// SetObserver installs a callback invoked on every arbitration decision,
// in the hook style of the fault package: conformance tooling uses it to
// log exactly which conflict windows were fuzzily granted. The callback
// runs while the decision's account locks are held and must not call
// back into the controller or the lock manager; callbacks are serialized.
// Nil (the default) disables it at the cost of one atomic load.
func (c *Controller) SetObserver(fn func(Event)) {
	if fn == nil {
		c.observer.Store(nil)
		return
	}
	c.observer.Store(&fn)
}

// notify reports one decision to the observer (fast path: no observer).
func (c *Controller) notify(ev Event) {
	fn := c.observer.Load()
	if fn == nil {
		return
	}
	c.obsMu.Lock()
	(*fn)(ev)
	c.obsMu.Unlock()
}

// observing reports whether an observer is installed.
func (c *Controller) observing() bool { return c.observer.Load() != nil }

// Register adds owner's account before it starts executing.
func (c *Controller) Register(owner lock.Owner, info Info) error {
	if info.Class == txn.Update && info.Program == nil {
		return fmt.Errorf("dc: update ET %d registered without program", owner)
	}
	sh := c.shardFor(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.m[owner]; dup {
		return fmt.Errorf("dc: owner %d already registered", owner)
	}
	sh.m[owner] = &account{owner: owner, info: info}
	return nil
}

// Unregister removes owner's account after it finishes. It returns the
// final (imported, exported) fuzziness, both zero if owner was unknown.
//
// The caller must have released owner's locks-layer presence first (the
// executor unregisters only after ReleaseAll), so no concurrent Absorb
// can still involve the account.
func (c *Controller) Unregister(owner lock.Owner) (imported, exported metric.Fuzz) {
	sh := c.shardFor(owner)
	sh.mu.Lock()
	acct := sh.m[owner]
	if acct == nil {
		sh.mu.Unlock()
		return 0, 0
	}
	delete(sh.m, owner)
	sh.mu.Unlock()
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.imported, acct.exported
}

// Fuzz returns owner's current (imported, exported) fuzziness.
func (c *Controller) Fuzz(owner lock.Owner) (imported, exported metric.Fuzz) {
	acct := c.lookup(owner)
	if acct == nil {
		return 0, 0
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	return acct.imported, acct.exported
}

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	return Stats{
		Absorbed:     c.absorbed.Load(),
		Refused:      c.refused.Load(),
		TotalCharged: metric.Fuzz(c.totalCharged.Load()),
	}
}

// addCharged accumulates TotalCharged, saturating like metric.Fuzz.Add.
func (c *Controller) addCharged(f metric.Fuzz) {
	for {
		old := c.totalCharged.Load()
		next := int64(metric.Fuzz(old).Add(f))
		if c.totalCharged.CompareAndSwap(old, next) {
			return
		}
	}
}

// pairing is one query/update pair a conflict decomposes into.
type pairing struct {
	query  *account
	update *account
	cost   metric.Fuzz
}

// refuse counts a refusal and notifies any observer.
func (c *Controller) refuse(ci lock.ConflictInfo) bool {
	c.refused.Add(1)
	if c.observing() {
		c.notify(Event{Key: ci.Key, Requester: ci.Requester, Absorbed: false})
	}
	return false
}

// Absorb implements lock.Arbiter. It is all-or-nothing: either every
// conflicting pair is priced, affordable, and charged, or nothing changes
// and the requester blocks.
//
// Only the accounts the conflict involves are locked (in owner order),
// so arbitrations of unrelated ETs proceed in parallel. The invariant
// that makes the lookup safe without a global lock: Absorb runs while
// the requester's stripe mutex is held and every holder still holds the
// conflicted key, and an owner is unregistered only after ReleaseAll —
// which needs that same stripe mutex — completes. Involved accounts are
// therefore always registered for the duration of the call.
func (c *Controller) Absorb(ci lock.ConflictInfo) bool {
	req := c.lookup(ci.Requester)
	if req == nil {
		return c.refuse(ci) // unregistered transactions run plain 2PL
	}
	pairs := make([]pairing, 0, len(ci.Holders))
	involved := make([]*account, 0, len(ci.Holders)+1)
	involved = append(involved, req)
	for _, h := range ci.Holders {
		holder := c.lookup(h.Owner)
		if holder == nil {
			return c.refuse(ci)
		}
		var p pairing
		switch {
		case req.info.Class == txn.Query && holder.info.Class == txn.Update:
			p = pairing{query: req, update: holder}
		case req.info.Class == txn.Update && holder.info.Class == txn.Query:
			p = pairing{query: holder, update: req}
		default:
			// update-update (or an impossible query-query conflict):
			// never absorbed.
			return c.refuse(ci)
		}
		bound := p.update.info.Program.WriteBound(ci.Key)
		if bound.IsInfinite() {
			return c.refuse(ci)
		}
		p.cost = bound.Bound()
		pairs = append(pairs, p)
		involved = append(involved, holder)
	}

	// Lock the involved accounts in owner order (deduplicated) so that
	// concurrent multi-account arbitrations cannot deadlock.
	sort.Slice(involved, func(i, j int) bool { return involved[i].owner < involved[j].owner })
	locked := involved[:0]
	var prev *account
	for _, a := range involved {
		if a == prev {
			continue
		}
		a.mu.Lock()
		locked = append(locked, a)
		prev = a
	}
	unlock := func() {
		for _, a := range locked {
			a.mu.Unlock()
		}
	}

	// Affordability check with per-account aggregation: charging is
	// simulated first so that two pairs hitting the same account within
	// one conflict are summed before comparing with the limit.
	pendImport := make(map[*account]metric.Fuzz)
	pendExport := make(map[*account]metric.Fuzz)
	for _, p := range pairs {
		pendImport[p.query] = pendImport[p.query].Add(p.cost)
		pendExport[p.update] = pendExport[p.update].Add(p.cost)
	}
	for acct, add := range pendImport {
		if !acct.info.Import.Allows(acct.imported.Add(add)) {
			unlock()
			return c.refuse(ci)
		}
	}
	for acct, add := range pendExport {
		if !acct.info.Export.Allows(acct.exported.Add(add)) {
			unlock()
			return c.refuse(ci)
		}
	}
	var total metric.Fuzz
	for acct, add := range pendImport {
		acct.imported = acct.imported.Add(add)
		c.addCharged(add)
		total = total.Add(add)
	}
	for acct, add := range pendExport {
		acct.exported = acct.exported.Add(add)
	}
	c.absorbed.Add(1)
	if c.observing() {
		// The pair list is materialized only on the observer path; the
		// nil-observer fast path stays allocation-identical.
		evPairs := make([]Pair, len(pairs))
		for i, p := range pairs {
			evPairs[i] = Pair{Query: p.query.owner, Update: p.update.owner, Cost: p.cost}
		}
		c.notify(Event{Key: ci.Key, Requester: ci.Requester, Absorbed: true, Cost: total, Pairs: evPairs})
	}
	unlock()
	return true
}

// ChargeImport adds fuzziness directly to owner's import account. The
// distributed runtime uses it to carry fuzziness across sites with a
// piece's inputs (the paper's "distribution of actual inconsistency").
// It reports whether the account stays within its limit.
func (c *Controller) ChargeImport(owner lock.Owner, f metric.Fuzz) bool {
	acct := c.lookup(owner)
	if acct == nil {
		return false
	}
	acct.mu.Lock()
	defer acct.mu.Unlock()
	acct.imported = acct.imported.Add(f)
	return acct.info.Import.Allows(acct.imported)
}

// Key is re-exported for documentation completeness.
type Key = storage.Key
