package dc

import (
	"context"
	"testing"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

var (
	xferProg  = txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	auditProg = txn.MustProgram("audit", txn.ReadOp("x"), txn.ReadOp("y"))
	setProg   = txn.MustProgram("set", txn.SetOp("x", 0))
)

func register(t *testing.T, c *Controller, owner lock.Owner, info Info) {
	t.Helper()
	if err := c.Register(owner, info); err != nil {
		t.Fatal(err)
	}
}

func queryInfo(imp metric.Fuzz) Info {
	return Info{Class: txn.Query, Import: metric.LimitOf(imp), Export: metric.Zero, Program: auditProg}
}

func updateInfo(exp metric.Fuzz) Info {
	return Info{Class: txn.Update, Import: metric.Zero, Export: metric.LimitOf(exp), Program: xferProg}
}

func conflictOn(key string, requester lock.Owner, mode lock.Mode, holders ...lock.HolderInfo) lock.ConflictInfo {
	return lock.ConflictInfo{Key: Key(key), Requester: requester, Mode: mode, Holders: holders}
}

func TestAbsorbQueryReadingUpdatesWrite(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(500)) // xfer: bound 100 on x
	register(t, c, 2, queryInfo(500))

	// Query 2 requests S on x while update 1 holds X.
	ok := c.Absorb(conflictOn("x", 2, lock.Shared, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive}))
	if !ok {
		t.Fatal("affordable conflict refused")
	}
	imp, exp := c.Fuzz(2)
	if imp != 100 || exp != 0 {
		t.Errorf("query fuzz = (%d, %d), want (100, 0)", imp, exp)
	}
	imp, exp = c.Fuzz(1)
	if imp != 0 || exp != 100 {
		t.Errorf("update fuzz = (%d, %d), want (0, 100)", imp, exp)
	}
	st := c.Stats()
	if st.Absorbed != 1 || st.Refused != 0 || st.TotalCharged != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAbsorbUpdateWritingUnderQueriesSLock(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(500))
	register(t, c, 2, queryInfo(500))
	register(t, c, 3, queryInfo(50)) // tight import limit

	// Update 1 requests X on x while queries 2 and 3 hold S: both pairs
	// must be affordable; query 3 cannot afford 100.
	ok := c.Absorb(conflictOn("x", 1, lock.Exclusive,
		lock.HolderInfo{Owner: 2, Mode: lock.Shared},
		lock.HolderInfo{Owner: 3, Mode: lock.Shared}))
	if ok {
		t.Fatal("conflict absorbed although query 3 cannot afford it")
	}
	// Nothing charged on refusal.
	for _, o := range []lock.Owner{1, 2, 3} {
		if imp, exp := c.Fuzz(o); imp != 0 || exp != 0 {
			t.Errorf("owner %d charged on refusal: (%d, %d)", o, imp, exp)
		}
	}
	// Without the poor query it works, charging the update twice... only
	// one pair here.
	ok = c.Absorb(conflictOn("x", 1, lock.Exclusive, lock.HolderInfo{Owner: 2, Mode: lock.Shared}))
	if !ok {
		t.Fatal("affordable single-pair conflict refused")
	}
	if _, exp := c.Fuzz(1); exp != 100 {
		t.Errorf("update export = %d, want 100", exp)
	}
}

func TestAbsorbChargesPerPair(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(200)) // can afford exactly two pairs
	register(t, c, 2, queryInfo(100))
	register(t, c, 3, queryInfo(100))
	ok := c.Absorb(conflictOn("x", 1, lock.Exclusive,
		lock.HolderInfo{Owner: 2, Mode: lock.Shared},
		lock.HolderInfo{Owner: 3, Mode: lock.Shared}))
	if !ok {
		t.Fatal("two affordable pairs refused")
	}
	if _, exp := c.Fuzz(1); exp != 200 {
		t.Errorf("update export = %d, want 200 (two pairs)", exp)
	}
	// A third conflict must now refuse: export exhausted.
	register(t, c, 4, queryInfo(1000))
	if c.Absorb(conflictOn("x", 4, lock.Shared, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive})) {
		t.Error("export-exhausted update still absorbed")
	}
}

func TestUpdateUpdateNeverAbsorbed(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(10000))
	register(t, c, 2, Info{Class: txn.Update, Import: metric.Infinite, Export: metric.Infinite, Program: xferProg})
	if c.Absorb(conflictOn("x", 2, lock.Exclusive, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive})) {
		t.Error("update-update conflict absorbed")
	}
	if got := c.Stats().Refused; got != 1 {
		t.Errorf("Refused = %d, want 1", got)
	}
}

func TestInfiniteWriteBoundRefused(t *testing.T) {
	c := NewController()
	register(t, c, 1, Info{Class: txn.Update, Import: metric.Zero, Export: metric.Infinite, Program: setProg})
	register(t, c, 2, queryInfo(1<<40))
	if c.Absorb(conflictOn("x", 2, lock.Shared, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive})) {
		t.Error("conflict on unbounded write absorbed")
	}
}

func TestUnregisteredOwnersRefused(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(1000))
	// Unregistered requester.
	if c.Absorb(conflictOn("x", 99, lock.Shared, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive})) {
		t.Error("unregistered requester absorbed")
	}
	// Unregistered holder.
	register(t, c, 2, queryInfo(1000))
	if c.Absorb(conflictOn("x", 2, lock.Shared, lock.HolderInfo{Owner: 98, Mode: lock.Exclusive})) {
		t.Error("unregistered holder absorbed")
	}
}

func TestRegisterValidation(t *testing.T) {
	c := NewController()
	if err := c.Register(1, Info{Class: txn.Update}); err == nil {
		t.Error("update without program accepted")
	}
	register(t, c, 2, queryInfo(10))
	if err := c.Register(2, queryInfo(10)); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestUnregisterReturnsFinalFuzz(t *testing.T) {
	c := NewController()
	register(t, c, 1, updateInfo(500))
	register(t, c, 2, queryInfo(500))
	if !c.Absorb(conflictOn("x", 2, lock.Shared, lock.HolderInfo{Owner: 1, Mode: lock.Exclusive})) {
		t.Fatal("absorb failed")
	}
	imp, exp := c.Unregister(2)
	if imp != 100 || exp != 0 {
		t.Errorf("Unregister(2) = (%d, %d), want (100, 0)", imp, exp)
	}
	// Second unregister: zeros.
	imp, exp = c.Unregister(2)
	if imp != 0 || exp != 0 {
		t.Errorf("double Unregister = (%d, %d)", imp, exp)
	}
	if imp, exp := c.Fuzz(2); imp != 0 || exp != 0 {
		t.Errorf("Fuzz after unregister = (%d, %d)", imp, exp)
	}
}

func TestChargeImport(t *testing.T) {
	c := NewController()
	register(t, c, 1, queryInfo(100))
	if !c.ChargeImport(1, 60) {
		t.Error("first charge within limit reported overflow")
	}
	if !c.ChargeImport(1, 40) {
		t.Error("charge at exactly the limit reported overflow")
	}
	if c.ChargeImport(1, 1) {
		t.Error("charge beyond the limit reported ok")
	}
	if c.ChargeImport(99, 1) {
		t.Error("charge on unknown owner reported ok")
	}
}

func TestIntegrationWithLockManager(t *testing.T) {
	// End to end: with DC as arbiter, a query's conflicting read is
	// granted while budgets last, then blocks.
	c := NewController()
	m := lock.NewManager(lock.WithArbiter(c))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	register(t, c, 1, updateInfo(100)) // export allows exactly one conflict
	register(t, c, 2, queryInfo(100))
	register(t, c, 3, queryInfo(100))

	if err := m.Acquire(ctx, 1, "x", lock.Exclusive); err != nil {
		t.Fatal(err)
	}
	// Query 2 reads through the conflict.
	if err := m.Acquire(ctx, 2, "x", lock.Shared); err != nil {
		t.Fatalf("fuzzy grant failed: %v", err)
	}
	// Query 3 must block: update 1's export is exhausted.
	blocked := make(chan error, 1)
	go func() { blocked <- m.Acquire(ctx, 3, "x", lock.Shared) }()
	select {
	case err := <-blocked:
		t.Fatalf("query 3 did not block: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().FuzzyGrants; got != 1 {
		t.Errorf("FuzzyGrants = %d, want 1", got)
	}
}
