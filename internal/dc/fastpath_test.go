package dc

import (
	"sync"
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// absorbFixture registers one query and one update and returns the
// conflict a query read against the update's held write raises.
func absorbFixture(t testing.TB, c *Controller, q, u lock.Owner) lock.ConflictInfo {
	t.Helper()
	upd := txn.MustProgram("upd", txn.AddOp("x", 1))
	if err := c.Register(u, Info{Class: txn.Update, Import: metric.Infinite, Export: metric.Infinite, Program: upd}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(q, Info{Class: txn.Query, Import: metric.Infinite, Export: metric.Infinite}); err != nil {
		t.Fatal(err)
	}
	return lock.ConflictInfo{
		Key:       "x",
		Requester: q,
		Mode:      lock.Shared,
		Holders:   []lock.HolderInfo{{Owner: u, Mode: lock.Exclusive}},
	}
}

// TestAbsorbNoObserverAllocs pins the arbitration hot path's allocation
// budget with no observer installed. The path allocates the pairing and
// involved-account scratch slices plus the two pending-charge maps;
// anything beyond ~8 allocations means a fast-path regression (e.g. the
// observer nil check boxing an Event, or stats moving off atomics).
func TestAbsorbNoObserverAllocs(t *testing.T) {
	c := NewController()
	ci := absorbFixture(t, c, 1, 2)
	allocs := testing.AllocsPerRun(200, func() {
		if !c.Absorb(ci) {
			t.Fatal("absorb refused with unlimited budgets")
		}
	})
	const maxAllocs = 8
	if allocs > maxAllocs {
		t.Errorf("Absorb with nil observer: %.1f allocs/op, want <= %d", allocs, maxAllocs)
	}
}

// TestRefuseNoObserverAllocs pins the refusal fast path: an
// unregistered requester must fall back to 2PL without allocating at
// all (no Event is built when nobody observes).
func TestRefuseNoObserverAllocs(t *testing.T) {
	c := NewController()
	ci := lock.ConflictInfo{
		Key:       "x",
		Requester: 99,
		Mode:      lock.Shared,
		Holders:   []lock.HolderInfo{{Owner: 1, Mode: lock.Exclusive}},
	}
	allocs := testing.AllocsPerRun(200, func() {
		if c.Absorb(ci) {
			t.Fatal("absorbed for unregistered requester")
		}
	})
	if allocs > 0 {
		t.Errorf("refusal with nil observer: %.1f allocs/op, want 0", allocs)
	}
}

// TestObserverSeesEveryDecision checks the slow path still works: with
// an observer installed every absorb and refusal is reported, serialized.
func TestObserverSeesEveryDecision(t *testing.T) {
	c := NewController()
	ci := absorbFixture(t, c, 1, 2)
	var mu sync.Mutex
	var events []Event
	c.SetObserver(func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	if !c.Absorb(ci) {
		t.Fatal("absorb refused")
	}
	refused := lock.ConflictInfo{Key: "x", Requester: 77, Holders: []lock.HolderInfo{{Owner: 2, Mode: lock.Exclusive}}}
	if c.Absorb(refused) {
		t.Fatal("absorbed for unregistered requester")
	}
	c.SetObserver(nil) // back to the fast path
	if !c.Absorb(ci) {
		t.Fatal("absorb refused after observer removal")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(events))
	}
	if !events[0].Absorbed || events[0].Cost == 0 {
		t.Errorf("first event = %+v, want absorbed with cost", events[0])
	}
	if events[1].Absorbed {
		t.Errorf("second event = %+v, want refusal", events[1])
	}
}

// TestAbsorbParallelDisjointAccounts hammers arbitration across many
// disjoint query/update pairs concurrently; under -race this doubles as
// the striped-account contention regression (per-account mutexes, not a
// controller-global one, so unrelated pairs never serialize — and never
// race).
func TestAbsorbParallelDisjointAccounts(t *testing.T) {
	c := NewController()
	const pairs = 64
	cis := make([]lock.ConflictInfo, pairs)
	for i := 0; i < pairs; i++ {
		cis[i] = absorbFixture(t, c, lock.Owner(1000+i), lock.Owner(2000+i))
	}
	const rounds = 200
	var wg sync.WaitGroup
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(ci lock.ConflictInfo) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if !c.Absorb(ci) {
					t.Error("absorb refused with unlimited budgets")
					return
				}
			}
		}(cis[i])
	}
	wg.Wait()
	st := c.Stats()
	if st.Absorbed != pairs*rounds {
		t.Errorf("absorbed = %d, want %d", st.Absorbed, pairs*rounds)
	}
	if st.TotalCharged != metric.Fuzz(pairs*rounds) {
		t.Errorf("total charged = %d, want %d", st.TotalCharged, pairs*rounds)
	}
	for i := 0; i < pairs; i++ {
		imp, _ := c.Fuzz(lock.Owner(1000 + i))
		if imp != metric.Fuzz(rounds) {
			t.Errorf("query %d imported %d, want %d", i, imp, rounds)
		}
		_, exp := c.Fuzz(lock.Owner(2000 + i))
		if exp != metric.Fuzz(rounds) {
			t.Errorf("update %d exported %d, want %d", i, exp, rounds)
		}
	}
}
