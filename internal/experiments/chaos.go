package experiments

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"asynctp/internal/commit"
	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/storage/driver"
	"asynctp/internal/txn"
)

// Chaos scenario names (E7). Each is a deterministic fault.Schedule
// constructed from the config seed; the same seed reproduces the same
// fault timeline.
const (
	// ScenarioBaseline runs with no injected faults (control).
	ScenarioBaseline = "baseline"
	// ScenarioDegraded runs under message loss plus a latency spike.
	ScenarioDegraded = "degraded"
	// ScenarioPartition cuts the LA-CHI link mid-run, then heals it.
	ScenarioPartition = "partition"
	// ScenarioCrashStorm crashes LA and CHI in sequence mid-run and
	// partitions NY-CHI, restarting/healing everything before the end.
	ScenarioCrashStorm = "crash-storm"
)

// ChaosScenarios lists the scenarios in run order.
func ChaosScenarios() []string {
	return []string{ScenarioBaseline, ScenarioDegraded, ScenarioPartition, ScenarioCrashStorm}
}

// ChaosConfig parameterizes the chaos harness.
type ChaosConfig struct {
	// Scenarios selects which fault schedules to run (default: all).
	Scenarios []string
	// Chains is the number of NY→LA→CHI transfer chains per run.
	Chains int
	// Amount is the per-chain transfer amount.
	Amount metric.Value
	// Seed drives the fault schedule and the simulated network.
	Seed int64
	// Stagger paces chain submissions so they overlap the fault window.
	Stagger time.Duration
	// Workers sizes each site's piece-worker pool (0 keeps the site
	// default). Conservation and the fired-fault timeline must not
	// depend on it — the soak test runs the storm at 1 and 8.
	Workers int
	// Plane, when non-nil, observes every scenario cluster (trace spans,
	// metrics, ε-ledger); cmd/chaosbench wires it from -trace/-metrics
	// and Chaos folds its summary into the report notes.
	Plane *obs.Plane
	// Driver selects the storage driver ("mem" default, "disk" persists
	// every site to a WAL under Dir). The scheduled crash/restart faults
	// then exercise real file recovery instead of the simulated journal.
	Driver string
	// Dir roots the disk driver's files; each scenario × strategy run
	// gets its own subdirectory so runs never share state.
	Dir string
}

// withDefaults fills zero fields.
func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if len(cfg.Scenarios) == 0 {
		cfg.Scenarios = ChaosScenarios()
	}
	if cfg.Chains <= 0 {
		cfg.Chains = 16
	}
	if cfg.Amount <= 0 {
		cfg.Amount = 5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Stagger <= 0 {
		cfg.Stagger = 10 * time.Millisecond
	}
	if cfg.Driver == "" {
		cfg.Driver = "mem"
	}
	return cfg
}

// storageDriver builds the configured storage driver for one run; name
// scopes the disk driver's directory so concurrent runs never collide.
func (cfg ChaosConfig) storageDriver(name string) (driver.Driver, error) {
	if cfg.Driver == "mem" {
		return nil, nil // site default
	}
	dir := cfg.Dir
	if dir == "" {
		return nil, errors.New("experiments: disk driver needs ChaosConfig.Dir")
	}
	return driver.New(cfg.Driver, driver.Params{
		Dir:       filepath.Join(dir, name),
		SyncEvery: 200 * time.Microsecond,
		Obs:       cfg.Plane.StorageObserver(),
	})
}

// chaosTotal is the initial money across the three branches.
const chaosTotal = 3 * 10000

// ChaosOutcome is one strategy's result under one scenario.
type ChaosOutcome struct {
	// Settled counts chains that fully settled (every piece committed).
	Settled int
	// TimeoutAborts counts bounded-wait 2PC presumed aborts.
	TimeoutAborts int
	// Failed counts chains that ended in any other error.
	Failed int
	// Conserved reports sum-of-accounts == initial after quiescence.
	Conserved bool
	// MaxAuditDev is the largest deviation any concurrent audit saw from
	// the true total.
	MaxAuditDev metric.Fuzz
	// Audits counts completed audit reads.
	Audits int
	// Fired is the schedule's fired-event log (deterministic for a
	// given seed).
	Fired []string
	// JournalCompacted counts journal entries folded away across all
	// sites during the post-quiescence checkpoint; MaxJournalLen is the
	// largest per-site journal length after it. Long soaks assert the
	// latter stays flat (memory does not grow with run length).
	JournalCompacted int
	MaxJournalLen    int
}

// chaosPlacement maps chain keys to their sites.
func chaosPlacement(k storage.Key) simnet.SiteID {
	switch {
	case strings.HasPrefix(string(k), "ny:"):
		return "NY"
	case strings.HasPrefix(string(k), "la:"):
		return "LA"
	default:
		return "CHI"
	}
}

// chaosSites are the cluster's sites in a fixed order.
var chaosSites = []simnet.SiteID{"NY", "LA", "CHI"}

// chaosCluster builds the three-branch bank used by every scenario.
// Both strategies get bounded-wait commit timeouts: they are inert for
// chopped queues and are what lets 2PC presume abort instead of
// blocking forever when the schedule crashes a participant.
func chaosCluster(strategy site.Strategy, seed int64, plane *obs.Plane, drv driver.Driver, opts ...site.Option) (*site.Cluster, error) {
	return site.NewCluster(site.Config{
		Strategy:  strategy,
		Obs:       plane,
		Storage:   drv,
		Latency:   500 * time.Microsecond,
		Jitter:    0.2,
		Seed:      seed,
		Placement: chaosPlacement,
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 5 * time.Millisecond,
		CommitTimeouts: commit.Timeouts{
			VoteWait:   20 * time.Millisecond,
			MaxRetries: 2,
		},
	}, opts...)
}

// chaosPrograms returns the NY→LA→CHI chain transfer (three pieces at
// three sites) and the three-branch audit.
func chaosPrograms(amount metric.Value) []*txn.Program {
	return []*txn.Program{
		txn.MustProgram("chaos-chain",
			txn.AddOp("ny:A", -amount),
			txn.AddOp("la:B", amount), // passes through LA
			txn.AddOp("la:B", -amount),
			txn.AddOp("chi:C", amount),
		),
		txn.MustProgram("chaos-audit",
			txn.ReadOp("ny:A"), txn.ReadOp("la:B"), txn.ReadOp("chi:C"),
		),
	}
}

// ChaosSchedule builds the named scenario's fault schedule. Schedules
// are single-use, so callers get a fresh one per cluster.
func ChaosSchedule(scenario string, seed int64) (*fault.Schedule, error) {
	sch := fault.NewSchedule(seed)
	switch scenario {
	case ScenarioBaseline:
		// control: no faults
	case ScenarioDegraded:
		sch.DropRateAt(40*time.Millisecond, 0.25).
			LatencySpikeAt(80*time.Millisecond, 5*time.Millisecond, 0.5).
			DropRateAt(260*time.Millisecond, 0).
			LatencySpikeAt(300*time.Millisecond, 500*time.Microsecond, 0.2)
	case ScenarioPartition:
		sch.PartitionAt(40*time.Millisecond, "LA", "CHI").
			HealAt(320*time.Millisecond, "LA", "CHI")
	case ScenarioCrashStorm:
		sch.CrashAt(40*time.Millisecond, "LA").
			PartitionAt(90*time.Millisecond, "NY", "CHI").
			RestartAt(240*time.Millisecond, "LA").
			CrashAt(280*time.Millisecond, "CHI").
			HealAt(320*time.Millisecond, "NY", "CHI").
			RestartAt(430*time.Millisecond, "CHI")
	default:
		return nil, fmt.Errorf("experiments: unknown chaos scenario %q", scenario)
	}
	return sch, nil
}

// RunChaosScenario drives one strategy through one scenario: it paces
// cfg.Chains transfer chains across the fault window while the schedule
// fires, runs concurrent audits, then heals everything, waits for
// quiescence, and checks conservation.
func RunChaosScenario(strategy site.Strategy, scenario string, cfg ChaosConfig) (*ChaosOutcome, error) {
	cfg = cfg.withDefaults()
	var siteOpts []site.Option
	if cfg.Workers > 0 {
		siteOpts = append(siteOpts, site.WithWorkers(cfg.Workers))
	}
	drv, err := cfg.storageDriver(scenario + "-" + strategy.String())
	if err != nil {
		return nil, err
	}
	c, err := chaosCluster(strategy, cfg.Seed, cfg.Plane, drv, siteOpts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.RegisterPrograms(chaosPrograms(cfg.Amount)); err != nil {
		return nil, err
	}
	sch, err := ChaosSchedule(scenario, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sch.Run(c)
	defer sch.Stop()

	out := &ChaosOutcome{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < cfg.Chains; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Pace submissions so they straddle the scheduled faults.
			time.Sleep(time.Duration(i) * cfg.Stagger)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := c.Submit(ctx, 0)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && res.Committed:
				out.Settled++
			case errors.Is(err, commit.ErrTimeoutAbort):
				out.TimeoutAborts++
			default:
				out.Failed++
			}
		}(i)
	}

	// Concurrent audits read the three branches while the storm runs;
	// their observed deviation from the true total is bounded by the
	// money in flight (≤ Chains × Amount under chopping).
	auditStop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-auditStop:
				return
			case <-time.After(25 * time.Millisecond):
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			res, err := c.Submit(ctx, 1)
			cancel()
			if err != nil || res == nil || !res.Committed {
				continue
			}
			dev := metric.Distance(res.SumReads(), chaosTotal)
			mu.Lock()
			out.Audits++
			if dev > out.MaxAuditDev {
				out.MaxAuditDev = dev
			}
			mu.Unlock()
		}
	}()

	wg.Wait()
	sch.Wait()
	close(auditStop)
	auditWG.Wait()
	out.Fired = sch.Fired()

	// Heal the world (idempotent: restarts no-op on live sites), then
	// wait for quiescence and check conservation.
	for _, id := range chaosSites {
		c.RestartSite(id)
	}
	for i, a := range chaosSites {
		for _, b := range chaosSites[i+1:] {
			c.SetPartitioned(a, b, false)
		}
	}
	c.SetLossRate(0)
	c.SetLatency(500*time.Microsecond, 0.2)
	sum := func() metric.Value {
		var total metric.Value
		total += c.Site("NY").Store.Get("ny:A")
		total += c.Site("LA").Store.Get("la:B")
		total += c.Site("CHI").Store.Get("chi:C")
		return total
	}
	deadline := time.Now().Add(10 * time.Second)
	for sum() != chaosTotal && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	out.Conserved = sum() == chaosTotal

	// Post-quiescence checkpoint: fold each site's committed journal so
	// long soaks keep memory flat. Compaction preserves the recovered
	// state exactly, so the conservation verdict above still holds for a
	// site recovered from the compacted journal.
	for _, id := range chaosSites {
		st := c.Site(id).Store
		if j := st.Journal(); len(j) > 0 {
			out.JournalCompacted += st.CompactJournal(j[len(j)-1].LSN)
		}
		if n := st.JournalLen(); n > out.MaxJournalLen {
			out.MaxJournalLen = n
		}
	}
	return out, nil
}

// Chaos runs E7: every selected scenario under both strategies, on the
// same seeded fault schedules, and reports settled-chain rate,
// bounded-wait 2PC presumed aborts, conservation of money, and audit
// ε-compliance. The paper's Section 4 availability claim, as a chaos
// experiment: chopped chains keep settling through crashes and
// partitions that force 2PC into timeout aborts.
func Chaos(cfg ChaosConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "E7",
		Title: "Chaos harness — chopped queues vs bounded-wait 2PC under scheduled faults",
		Table: newTable("scenario", "strategy", "settled", "timeout-aborts", "conserved", "max audit dev"),
	}
	epsilon := metric.Fuzz(cfg.Chains) * metric.Fuzz(cfg.Amount)
	for _, scenario := range cfg.Scenarios {
		outcomes := map[site.Strategy]*ChaosOutcome{}
		for _, strategy := range []site.Strategy{site.ChoppedQueues, site.TwoPhaseCommit} {
			out, err := RunChaosScenario(strategy, scenario, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", scenario, strategy, err)
			}
			outcomes[strategy] = out
			rep.Table.AddRow(
				scenario, strategy.String(),
				fmt.Sprintf("%d/%d", out.Settled, cfg.Chains),
				fmt.Sprintf("%d", out.TimeoutAborts),
				fmt.Sprintf("%v", out.Conserved),
				fmt.Sprintf("%d", out.MaxAuditDev),
			)
		}
		chop, tpc := outcomes[site.ChoppedQueues], outcomes[site.TwoPhaseCommit]
		rep.Notes = append(rep.Notes,
			check(chop.Settled == cfg.Chains,
				fmt.Sprintf("%s: all %d chopped chains settle", scenario, cfg.Chains)),
			check(chop.Conserved && tpc.Conserved,
				fmt.Sprintf("%s: money conserved under both strategies", scenario)),
			check(chop.MaxAuditDev <= epsilon,
				fmt.Sprintf("%s: audit deviation %d within in-flight ε bound %d",
					scenario, chop.MaxAuditDev, epsilon)),
		)
		if scenario == ScenarioCrashStorm {
			rep.Notes = append(rep.Notes,
				check(tpc.TimeoutAborts >= 1,
					fmt.Sprintf("%s: %d 2PC transactions timed out and presumed abort while chopped settled %d/%d",
						scenario, tpc.TimeoutAborts, chop.Settled, cfg.Chains)),
				fmt.Sprintf("%s schedule: %s", scenario, strings.Join(chop.Fired, "; ")),
			)
		}
	}
	if cfg.Plane != nil {
		for _, line := range cfg.Plane.Summary() {
			rep.Notes = append(rep.Notes, "obs: "+line)
		}
	}
	return rep, nil
}
