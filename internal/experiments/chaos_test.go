package experiments

import (
	"testing"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/site"
)

// soakCfg is the deterministic crash-storm configuration shared by the
// soak runs: small enough to keep 5 repetitions inside ordinary `go
// test`, big enough that chains straddle both crashes and the
// partition.
func soakCfg() ChaosConfig {
	return ChaosConfig{
		Chains:  12,
		Amount:  5,
		Seed:    7,
		Stagger: 12 * time.Millisecond,
	}
}

// TestChaosCrashStormSoak is the harness's acceptance gate, repeated
// five times on the same seed: under a schedule that crashes LA and CHI
// mid-chain and partitions NY-CHI,
//
//   - every chopped chain settles (100%),
//   - money is conserved through crash, recovery, and redelivery,
//   - concurrent audits never deviate beyond the in-flight ε bound,
//   - at least one 2PC transaction is driven into timeout/presumed
//     abort on the very same schedule, and
//   - the fired fault timeline is identical run over run.
func TestChaosCrashStormSoak(t *testing.T) {
	cfg := soakCfg()
	epsilon := metric.Fuzz(cfg.Chains) * metric.Fuzz(cfg.Amount)
	var refFired []string
	for run := 0; run < 5; run++ {
		chop, err := RunChaosScenario(site.ChoppedQueues, ScenarioCrashStorm, cfg)
		if err != nil {
			t.Fatalf("run %d chopped: %v", run, err)
		}
		if chop.Settled != cfg.Chains {
			t.Errorf("run %d: settled %d/%d chopped chains (failed %d)",
				run, chop.Settled, cfg.Chains, chop.Failed)
		}
		if !chop.Conserved {
			t.Errorf("run %d: money not conserved under chopped queues", run)
		}
		if chop.MaxAuditDev > epsilon {
			t.Errorf("run %d: audit deviation %d exceeds ε bound %d",
				run, chop.MaxAuditDev, epsilon)
		}
		// Memory stays flat: the post-quiescence checkpoint folds each
		// site's journal down to (at most) one checkpoint entry plus any
		// batch that raced the fold.
		if chop.MaxJournalLen > 2 {
			t.Errorf("run %d: post-checkpoint journal length %d, want <= 2",
				run, chop.MaxJournalLen)
		}

		tpc, err := RunChaosScenario(site.TwoPhaseCommit, ScenarioCrashStorm, cfg)
		if err != nil {
			t.Fatalf("run %d 2pc: %v", run, err)
		}
		if tpc.TimeoutAborts < 1 {
			t.Errorf("run %d: expected ≥1 2PC timeout/presumed abort, got %d (settled %d, failed %d)",
				run, tpc.TimeoutAborts, tpc.Settled, tpc.Failed)
		}
		if !tpc.Conserved {
			t.Errorf("run %d: money not conserved under 2PC presumed abort", run)
		}

		// The seeded schedule must fire the same fault timeline each run.
		if run == 0 {
			refFired = chop.Fired
			if len(refFired) != 6 {
				t.Fatalf("crash-storm fired %d events, want 6: %v", len(refFired), refFired)
			}
			continue
		}
		if len(chop.Fired) != len(refFired) {
			t.Fatalf("run %d: fired %v, want %v", run, chop.Fired, refFired)
		}
		for i := range refFired {
			if chop.Fired[i] != refFired[i] {
				t.Errorf("run %d: fired[%d] = %q, want %q", run, i, chop.Fired[i], refFired[i])
			}
		}
	}
}

// TestChaosScenarioUnknown rejects bad scenario names.
func TestChaosScenarioUnknown(t *testing.T) {
	if _, err := ChaosSchedule("nope", 1); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}
