package experiments

import (
	"fmt"
	"strings"

	"asynctp/internal/core"
	"asynctp/internal/explore"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/oracle"
)

// ConformanceConfig parameterizes E8.
type ConformanceConfig struct {
	// Seed drives the scheduler sweeps and the fuzz campaign; one seed
	// reproduces the whole experiment, table and verdicts included.
	Seed int64
	// Seeds is how many scheduler seeds each scenario sweeps.
	Seeds int
	// Budget caps the oracle's serial-order enumeration per run.
	Budget int
	// FuzzChoppings and FuzzRuns size the fuzz campaign.
	FuzzChoppings int
	FuzzRuns      int
	// Plane, when non-nil, contributes a shared tracer and metrics
	// registry to every swept run (cmd/conformance wires it from
	// -trace/-metrics). Per-run ε-ledgers are independent of it.
	Plane *obs.Plane
}

// withDefaults fills zero fields.
func (cfg ConformanceConfig) withDefaults() ConformanceConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 200
	}
	if cfg.FuzzChoppings <= 0 {
		cfg.FuzzChoppings = 1000
	}
	if cfg.FuzzRuns <= 0 {
		cfg.FuzzRuns = 40
	}
	return cfg
}

// conformanceEps is the bank scenario's declared ε.
const conformanceEps = 600

// sweepRow sweeps one scenario and summarizes it into a table row plus
// aggregate facts.
type sweepRow struct {
	maxDivergence metric.Fuzz
	orders        int
	allOK         bool
	allExhaustive bool
	violations    int
	namedAudit    bool
	fingerprint   string
	// ε-provenance reconciliation facts (Ledger scenarios only):
	// ledgerOver counts runs where the ledger flagged at least one
	// over-budget query; flaggedMissed counts oracle-flagged queries the
	// ledger did NOT flag; uncovered counts explainable queries whose
	// ledger charges fell short of the oracle's measured divergence.
	ledgerOver    int
	flaggedMissed int
	uncovered     int
	// repairMismatch is the first repair self-check failure across the
	// sweep ("" when clean; repair stacks only — explore.Run verifies
	// every repaired install against a fresh full re-execution).
	repairMismatch string
	// recon is a representative (first violating, else first) run's
	// per-query budgeted / charged / measured table.
	recon *obs.Reconciliation
	// reconViolating records whether recon came from an oracle-violating
	// run (preferred: those rows show measured > ε next to the flag).
	reconViolating bool
}

func sweepScenario(sc explore.Scenario, cfg ConformanceConfig) (*sweepRow, error) {
	sc.Base = cfg.Plane
	ocfg := oracle.Config{MaxOrders: cfg.Budget, Seed: cfg.Seed}
	results, err := explore.Sweep(sc, cfg.Seeds, explore.StrategyConflict, ocfg)
	if err != nil {
		return nil, err
	}
	row := &sweepRow{allOK: true, allExhaustive: true}
	for _, r := range results {
		if d := r.Report.MaxQueryDivergence; d > row.maxDivergence {
			row.maxDivergence = d
		}
		if r.Report.Orders > row.orders {
			row.orders = r.Report.Orders
		}
		if !r.Report.OK {
			row.allOK = false
			row.violations++
			for _, v := range r.Report.Violations() {
				if v.Name == "audit" {
					row.namedAudit = true
				}
			}
		}
		if !r.Report.Exhaustive {
			row.allExhaustive = false
		}
		if r.RepairMismatch != "" && row.repairMismatch == "" {
			row.repairMismatch = r.RepairMismatch
		}
		if rec := r.Reconciliation; rec != nil {
			if len(rec.OverBudget) > 0 {
				row.ledgerOver++
			}
			for _, rr := range rec.Rows {
				if !rr.MeasuredOK && !rr.OverBudget {
					row.flaggedMissed++
				}
				if rr.MeasuredOK && !rr.Covered {
					row.uncovered++
				}
			}
			if row.recon == nil || (!r.Report.OK && !row.reconViolating) {
				row.recon = rec
				row.reconViolating = !r.Report.OK
			}
		}
	}
	if len(results) > 0 {
		row.fingerprint = results[0].Fingerprint()
	}
	return row, nil
}

// Conformance runs E8: the declared bank workload swept across every
// method (and the alternative engines for the unchopped DC baseline)
// under the deterministic scheduler, each run checked by the
// serial-replay ε-oracle; the deliberately mis-budgeted control (the
// BudgetScale knob) that the oracle must catch by query name; and the
// fuzz campaign cross-checking the chopping analyzer against brute
// force plus random end-to-end conformance runs.
func Conformance(cfg ConformanceConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "E8",
		Title: "Conformance — serial-replay ε-oracle over deterministic schedules",
		Table: newTable("scenario", "engine", "seeds", "max orders", "max divergence", "ε", "verdict"),
	}

	type stack struct {
		method core.Method
		engine core.EngineKind
	}
	stacks := make([]stack, 0, len(core.Methods())+4)
	for _, m := range core.Methods() {
		stacks = append(stacks, stack{m, core.EngineLocking})
	}
	stacks = append(stacks,
		stack{core.BaselineESRDC, core.EngineOptimistic},
		stack{core.BaselineESRDC, core.EngineTimestamp},
		stack{core.BaselineESRDC, core.EngineRepair},
		stack{core.BaselineESRDC, core.EngineRepairSkip},
	)

	cleanUncovered := 0
	for _, st := range stacks {
		sc := explore.BankScenario(st.method, st.engine, core.Static, conformanceEps)
		// The ε-provenance ledger rides the locking stacks and the repair
		// stacks: the lock arbiter and the rdc ε-skip both debit through
		// the plane's DC observer. The odc/tdc engines absorb inside
		// their own validation layer, which the ledger does not see.
		sc.Ledger = st.engine == core.EngineLocking ||
			st.engine == core.EngineRepair || st.engine == core.EngineRepairSkip
		row, err := sweepScenario(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", sc.Name, err)
		}
		verdict := "conforms"
		if !row.allOK {
			verdict = fmt.Sprintf("VIOLATION x%d", row.violations)
		}
		rep.Table.AddRow(sc.Name, st.engine.String(),
			fmt.Sprintf("%d", cfg.Seeds),
			fmt.Sprintf("%d", row.orders),
			fmt.Sprintf("%d", row.maxDivergence),
			fmt.Sprintf("%d", conformanceEps), verdict)
		rep.Notes = append(rep.Notes, check(row.allOK && row.maxDivergence <= conformanceEps,
			fmt.Sprintf("%s: every seed's measured divergence (max %d) within ε=%d",
				sc.Name, row.maxDivergence, conformanceEps)))
		if !row.allExhaustive {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: oracle fell back to sampled orders within budget %d", sc.Name, cfg.Budget))
		}
		if sc.Ledger {
			cleanUncovered += row.uncovered
		}
		if st.engine == core.EngineRepair || st.engine == core.EngineRepairSkip {
			msg := sc.Name + ": every repaired install matches a fresh full re-execution"
			if row.repairMismatch != "" {
				msg += ": " + row.repairMismatch
			}
			rep.Notes = append(rep.Notes, check(row.repairMismatch == "", msg))
		}
	}
	rep.Notes = append(rep.Notes, check(cleanUncovered == 0,
		"ε-ledger: charged fuzz covers the oracle's measured divergence on every conforming locking- and repair-stack query"))

	// Determinism: the first scenario re-swept must reproduce its
	// fingerprint exactly — one seed, one interleaving, one verdict.
	sc0 := explore.BankScenario(stacks[0].method, stacks[0].engine, core.Static, conformanceEps)
	first, err := sweepScenario(sc0, cfg)
	if err != nil {
		return nil, err
	}
	again, err := sweepScenario(sc0, cfg)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, check(first.fingerprint == again.fingerprint && first.fingerprint != "",
		fmt.Sprintf("deterministic replay: %s", first.fingerprint)))

	// Control pair: correctly budgeted run must never be flagged;
	// budget inflated 8× must be caught, naming the audit query. Both
	// carry the ε-provenance ledger: the clean control's accounts must
	// stay within budget, the inflated control must be flagged by the
	// ledger on (at least) every query the oracle flags — charged vs
	// budgeted exposes the BudgetScale gap without replaying anything.
	scGood := explore.MisbudgetScenario(1)
	scGood.Ledger = true
	good, err := sweepScenario(scGood, cfg)
	if err != nil {
		return nil, fmt.Errorf("E8 misbudget/x1: %w", err)
	}
	rep.Table.AddRow("misbudget/x1", "locking", fmt.Sprintf("%d", cfg.Seeds),
		fmt.Sprintf("%d", good.orders), fmt.Sprintf("%d", good.maxDivergence), "100",
		map[bool]string{true: "conforms", false: "VIOLATION"}[good.allOK])
	rep.Notes = append(rep.Notes, check(good.allOK,
		"correctly budgeted DC run never flagged by the oracle"))
	rep.Notes = append(rep.Notes, check(good.ledgerOver == 0,
		"correctly budgeted control: ledger charges every query within its declared ε"))

	// The mis-budgeted control sweeps more seeds: the violation needs a
	// conflict-window interleaving to surface, not every seed finds one.
	badCfg := cfg
	badCfg.Seeds = 4 * cfg.Seeds
	scBad := explore.MisbudgetScenario(8)
	scBad.Ledger = true
	bad, err := sweepScenario(scBad, badCfg)
	if err != nil {
		return nil, fmt.Errorf("E8 misbudget/x8: %w", err)
	}
	rep.Table.AddRow("misbudget/x8", "locking", fmt.Sprintf("%d", badCfg.Seeds),
		fmt.Sprintf("%d", bad.orders), fmt.Sprintf("%d", bad.maxDivergence), "100",
		map[bool]string{true: "MISSED", false: "caught"}[bad.allOK])
	rep.Notes = append(rep.Notes, check(!bad.allOK && bad.namedAudit,
		fmt.Sprintf("mis-budgeted DC control caught: divergence %d > ε=100, violation names the audit query",
			bad.maxDivergence)))
	rep.Notes = append(rep.Notes, check(bad.ledgerOver > 0 && bad.flaggedMissed == 0,
		"mis-budgeted control: ledger charges exceed the declared ε on every oracle-flagged query"))
	if bad.recon != nil {
		var b strings.Builder
		b.WriteString("per-query ε reconciliation (representative mis-budgeted run):\n")
		bad.recon.WriteTable(&b)
		rep.Notes = append(rep.Notes, strings.TrimRight(b.String(), "\n"))
	}

	// Fuzz campaign: analyzer vs brute force, plus random end-to-end.
	fz := explore.Fuzz(cfg.Seed, cfg.FuzzChoppings, cfg.FuzzRuns)
	rep.Table.AddRow("fuzz", "-", "-",
		fmt.Sprintf("%d choppings", fz.Choppings),
		fmt.Sprintf("%d runs", fz.Runs), "-",
		map[bool]string{true: "agrees", false: "DISAGREES"}[fz.OK()])
	rep.Notes = append(rep.Notes,
		check(len(fz.Disagreements) == 0,
			fmt.Sprintf("SC-cycle + restricted-piece analysis agrees with brute force on %d random choppings (%d with SC-cycles)",
				fz.Choppings, fz.WithSCCycle)),
		check(len(fz.Failures) == 0,
			fmt.Sprintf("%d random end-to-end runs all conform (%d workloads rejected off-line)",
				fz.Runs, fz.Skipped)))
	for _, d := range fz.Disagreements {
		rep.Notes = append(rep.Notes, "disagreement: "+d)
	}
	for _, f := range fz.Failures {
		rep.Notes = append(rep.Notes, "failure: "+f)
	}
	if cfg.Plane != nil {
		for _, line := range cfg.Plane.Summary() {
			rep.Notes = append(rep.Notes, "obs: "+line)
		}
	}
	return rep, nil
}
