package experiments

import (
	"fmt"

	"asynctp/internal/core"
	"asynctp/internal/explore"
	"asynctp/internal/metric"
	"asynctp/internal/oracle"
)

// ConformanceConfig parameterizes E8.
type ConformanceConfig struct {
	// Seed drives the scheduler sweeps and the fuzz campaign; one seed
	// reproduces the whole experiment, table and verdicts included.
	Seed int64
	// Seeds is how many scheduler seeds each scenario sweeps.
	Seeds int
	// Budget caps the oracle's serial-order enumeration per run.
	Budget int
	// FuzzChoppings and FuzzRuns size the fuzz campaign.
	FuzzChoppings int
	FuzzRuns      int
}

// withDefaults fills zero fields.
func (cfg ConformanceConfig) withDefaults() ConformanceConfig {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 5
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 200
	}
	if cfg.FuzzChoppings <= 0 {
		cfg.FuzzChoppings = 1000
	}
	if cfg.FuzzRuns <= 0 {
		cfg.FuzzRuns = 40
	}
	return cfg
}

// conformanceEps is the bank scenario's declared ε.
const conformanceEps = 600

// sweepRow sweeps one scenario and summarizes it into a table row plus
// aggregate facts.
type sweepRow struct {
	maxDivergence metric.Fuzz
	orders        int
	allOK         bool
	allExhaustive bool
	violations    int
	namedAudit    bool
	fingerprint   string
}

func sweepScenario(sc explore.Scenario, cfg ConformanceConfig) (*sweepRow, error) {
	ocfg := oracle.Config{MaxOrders: cfg.Budget, Seed: cfg.Seed}
	results, err := explore.Sweep(sc, cfg.Seeds, explore.StrategyConflict, ocfg)
	if err != nil {
		return nil, err
	}
	row := &sweepRow{allOK: true, allExhaustive: true}
	for _, r := range results {
		if d := r.Report.MaxQueryDivergence; d > row.maxDivergence {
			row.maxDivergence = d
		}
		if r.Report.Orders > row.orders {
			row.orders = r.Report.Orders
		}
		if !r.Report.OK {
			row.allOK = false
			row.violations++
			for _, v := range r.Report.Violations() {
				if v.Name == "audit" {
					row.namedAudit = true
				}
			}
		}
		if !r.Report.Exhaustive {
			row.allExhaustive = false
		}
	}
	if len(results) > 0 {
		row.fingerprint = results[0].Fingerprint()
	}
	return row, nil
}

// Conformance runs E8: the declared bank workload swept across every
// method (and the alternative engines for the unchopped DC baseline)
// under the deterministic scheduler, each run checked by the
// serial-replay ε-oracle; the deliberately mis-budgeted control (the
// BudgetScale knob) that the oracle must catch by query name; and the
// fuzz campaign cross-checking the chopping analyzer against brute
// force plus random end-to-end conformance runs.
func Conformance(cfg ConformanceConfig) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		ID:    "E8",
		Title: "Conformance — serial-replay ε-oracle over deterministic schedules",
		Table: newTable("scenario", "engine", "seeds", "max orders", "max divergence", "ε", "verdict"),
	}

	type stack struct {
		method core.Method
		engine core.EngineKind
	}
	stacks := make([]stack, 0, len(core.Methods())+2)
	for _, m := range core.Methods() {
		stacks = append(stacks, stack{m, core.EngineLocking})
	}
	stacks = append(stacks,
		stack{core.BaselineESRDC, core.EngineOptimistic},
		stack{core.BaselineESRDC, core.EngineTimestamp},
	)

	for _, st := range stacks {
		sc := explore.BankScenario(st.method, st.engine, core.Static, conformanceEps)
		row, err := sweepScenario(sc, cfg)
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", sc.Name, err)
		}
		verdict := "conforms"
		if !row.allOK {
			verdict = fmt.Sprintf("VIOLATION x%d", row.violations)
		}
		rep.Table.AddRow(sc.Name, st.engine.String(),
			fmt.Sprintf("%d", cfg.Seeds),
			fmt.Sprintf("%d", row.orders),
			fmt.Sprintf("%d", row.maxDivergence),
			fmt.Sprintf("%d", conformanceEps), verdict)
		rep.Notes = append(rep.Notes, check(row.allOK && row.maxDivergence <= conformanceEps,
			fmt.Sprintf("%s: every seed's measured divergence (max %d) within ε=%d",
				sc.Name, row.maxDivergence, conformanceEps)))
		if !row.allExhaustive {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%s: oracle fell back to sampled orders within budget %d", sc.Name, cfg.Budget))
		}
	}

	// Determinism: the first scenario re-swept must reproduce its
	// fingerprint exactly — one seed, one interleaving, one verdict.
	sc0 := explore.BankScenario(stacks[0].method, stacks[0].engine, core.Static, conformanceEps)
	first, err := sweepScenario(sc0, cfg)
	if err != nil {
		return nil, err
	}
	again, err := sweepScenario(sc0, cfg)
	if err != nil {
		return nil, err
	}
	rep.Notes = append(rep.Notes, check(first.fingerprint == again.fingerprint && first.fingerprint != "",
		fmt.Sprintf("deterministic replay: %s", first.fingerprint)))

	// Control pair: correctly budgeted run must never be flagged;
	// budget inflated 8× must be caught, naming the audit query.
	good, err := sweepScenario(explore.MisbudgetScenario(1), cfg)
	if err != nil {
		return nil, fmt.Errorf("E8 misbudget/x1: %w", err)
	}
	rep.Table.AddRow("misbudget/x1", "locking", fmt.Sprintf("%d", cfg.Seeds),
		fmt.Sprintf("%d", good.orders), fmt.Sprintf("%d", good.maxDivergence), "100",
		map[bool]string{true: "conforms", false: "VIOLATION"}[good.allOK])
	rep.Notes = append(rep.Notes, check(good.allOK,
		"correctly budgeted DC run never flagged by the oracle"))

	// The mis-budgeted control sweeps more seeds: the violation needs a
	// conflict-window interleaving to surface, not every seed finds one.
	badCfg := cfg
	badCfg.Seeds = 4 * cfg.Seeds
	bad, err := sweepScenario(explore.MisbudgetScenario(8), badCfg)
	if err != nil {
		return nil, fmt.Errorf("E8 misbudget/x8: %w", err)
	}
	rep.Table.AddRow("misbudget/x8", "locking", fmt.Sprintf("%d", badCfg.Seeds),
		fmt.Sprintf("%d", bad.orders), fmt.Sprintf("%d", bad.maxDivergence), "100",
		map[bool]string{true: "MISSED", false: "caught"}[bad.allOK])
	rep.Notes = append(rep.Notes, check(!bad.allOK && bad.namedAudit,
		fmt.Sprintf("mis-budgeted DC control caught: divergence %d > ε=100, violation names the audit query",
			bad.maxDivergence)))

	// Fuzz campaign: analyzer vs brute force, plus random end-to-end.
	fz := explore.Fuzz(cfg.Seed, cfg.FuzzChoppings, cfg.FuzzRuns)
	rep.Table.AddRow("fuzz", "-", "-",
		fmt.Sprintf("%d choppings", fz.Choppings),
		fmt.Sprintf("%d runs", fz.Runs), "-",
		map[bool]string{true: "agrees", false: "DISAGREES"}[fz.OK()])
	rep.Notes = append(rep.Notes,
		check(len(fz.Disagreements) == 0,
			fmt.Sprintf("SC-cycle + restricted-piece analysis agrees with brute force on %d random choppings (%d with SC-cycles)",
				fz.Choppings, fz.WithSCCycle)),
		check(len(fz.Failures) == 0,
			fmt.Sprintf("%d random end-to-end runs all conform (%d workloads rejected off-line)",
				fz.Runs, fz.Skipped)))
	for _, d := range fz.Disagreements {
		rep.Notes = append(rep.Notes, "disagreement: "+d)
	}
	for _, f := range fz.Failures {
		rep.Notes = append(rep.Notes, "failure: "+f)
	}
	return rep, nil
}
