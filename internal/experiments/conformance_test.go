package experiments

import (
	"strings"
	"testing"
)

// TestConformance is the E8 acceptance gate: every declared stack
// conforms, the mis-budgeted control is caught by name, and the fuzzer
// agrees with brute force. Fuzz sizes are trimmed for ordinary `go
// test`; the CLI and nightly run the full campaign.
func TestConformance(t *testing.T) {
	rep, err := Conformance(ConformanceConfig{
		Seed: 1, Seeds: 3, Budget: 200, FuzzChoppings: 200, FuzzRuns: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
	out := rep.String()
	if strings.Contains(out, "VIOLATION") || strings.Contains(out, "MISSED") || strings.Contains(out, "DISAGREES") {
		t.Errorf("E8 table reports a failure:\n%s", out)
	}
	if !strings.Contains(out, "caught") {
		t.Errorf("E8 table missing the caught mis-budget control:\n%s", out)
	}
}

// TestConformanceDeterministic renders E8 twice on one seed; the full
// report (table, fingerprints, verdicts) must be byte-identical. This is
// the regression CI pins.
func TestConformanceDeterministic(t *testing.T) {
	cfg := ConformanceConfig{Seed: 1, Seeds: 2, Budget: 200, FuzzChoppings: 100, FuzzRuns: 8}
	first, err := Conformance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Conformance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.String() != again.String() {
		t.Fatalf("E8 not deterministic:\n--- first\n%s\n--- again\n%s", first, again)
	}
}
