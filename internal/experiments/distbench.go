package experiments

// This file drives the distributed piece pipeline end to end over the
// simulated WAN and measures what the batching layer buys: settled
// chains per second, piece throughput, initiation/settlement latency
// percentiles, and the wire cost in frames vs application messages.
// cmd/distbench wraps it in a perfbench-compatible CLI; the committed
// BENCH_4.json gates the batched-vs-legacy ratio in CI.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/stats"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Distbench variants.
const (
	// VariantBatched is the default transport: coalesced frames,
	// cumulative piggybacked acks, adaptive retransmit, batch dequeue.
	VariantBatched = "batched"
	// VariantUnbatched is the pre-batching pipeline (site.WithLegacyWire):
	// one frame per message, one ack per frame, full-outbox
	// retransmission, per-activation dequeue, one report per piece.
	VariantUnbatched = "unbatched"
)

// DistBenchConfig parameterizes one distributed pipeline run.
type DistBenchConfig struct {
	// Variant selects the transport (VariantBatched / VariantUnbatched).
	Variant string
	// Latency is the simulated one-way WAN latency (default 1ms).
	Latency time.Duration
	// Jitter is the latency jitter fraction.
	Jitter float64
	// LossRate silently drops this fraction of frames in flight.
	LossRate float64
	// Seed drives the network RNG.
	Seed int64
	// Workers sizes each site's piece-worker pool (0 = site default).
	Workers int
	// Submitters is the closed-loop submitter count (default 32).
	Submitters int
	// Txns is the total number of chain transactions (default 1000).
	Txns int
	// Families is the number of disjoint key families; chains in
	// different families touch different keys, so the measured
	// throughput is pipeline cost, not lock contention (default 16).
	Families int
	// UseDC runs every site's lock manager under divergence control and
	// adds an ε-audit program per family (reading the family's three
	// keys under a declared budget); submitter 0 spaces cfg.Audits audit
	// submissions through its chain loop. Off by default so the
	// committed BENCH_4.json baseline measures the unchanged pipeline.
	UseDC bool
	// Audits is how many audit transactions to interleave (UseDC only;
	// default Txns/10).
	Audits int
	// Plane, when non-nil, observes the whole cluster: trace spans,
	// metrics, and the ε-provenance ledger all hang off it
	// (cmd/distbench wires it from -trace/-metrics/-ledger).
	Plane *obs.Plane
}

// withDefaults fills zero fields.
func (cfg DistBenchConfig) withDefaults() DistBenchConfig {
	if cfg.Variant == "" {
		cfg.Variant = VariantBatched
	}
	if cfg.Latency == 0 {
		cfg.Latency = time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Submitters <= 0 {
		cfg.Submitters = 32
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 1000
	}
	if cfg.Families <= 0 {
		cfg.Families = 16
	}
	if cfg.UseDC && cfg.Audits <= 0 {
		cfg.Audits = cfg.Txns / 10
	}
	return cfg
}

// DistBenchResult is one run's measurements.
type DistBenchResult struct {
	Variant string
	Workers int
	// Txns is the number of settled chain transactions.
	Txns int
	// Pieces is Txns x pieces-per-chain (3 sites, 3 pieces).
	Pieces  int
	Elapsed time.Duration
	// TPS is settled chains per second; PiecesPerSec is the distributed
	// piece commit rate — the headline number the batching layer moves.
	TPS          float64
	PiecesPerSec float64
	// Initiation percentiles: latency until the first piece committed
	// (the user-visible latency under chopping).
	InitP50, InitP99 time.Duration
	// Settlement percentiles: latency until every piece committed.
	SettleP50, SettleP99 time.Duration
	// FramesPerTxn is network frames sent per settled chain;
	// MsgsPerTxn is delivered application messages per settled chain
	// (their ratio is the coalescing factor).
	FramesPerTxn float64
	MsgsPerTxn   float64
	// Conserved reports the cross-site money supply was intact after
	// quiescence — a benchmark that corrupts the books measures nothing.
	Conserved bool
}

// distPlacement maps distbench keys to sites by prefix.
func distPlacement(k storage.Key) simnet.SiteID {
	switch {
	case len(k) >= 3 && k[:3] == "ny:":
		return "NY"
	case len(k) >= 3 && k[:3] == "la:":
		return "LA"
	default:
		return "CHI"
	}
}

// RunDistBench runs cfg.Txns three-site transfer chains (NY→LA→CHI,
// three pieces each) through the chopped-queue pipeline and measures
// throughput, latency, and wire cost. The unbatched variant runs the
// identical workload over the legacy transport for the A/B ratio.
func RunDistBench(cfg DistBenchConfig) (*DistBenchResult, error) {
	cfg = cfg.withDefaults()
	perKey := metric.Value(cfg.Txns) // never overdraw even if one family takes it all
	initial := map[simnet.SiteID]map[storage.Key]metric.Value{
		"NY": {}, "LA": {}, "CHI": {},
	}
	var programs []*txn.Program
	for f := 0; f < cfg.Families; f++ {
		ny := storage.Key(fmt.Sprintf("ny:A%d", f))
		la := storage.Key(fmt.Sprintf("la:B%d", f))
		chi := storage.Key(fmt.Sprintf("chi:C%d", f))
		initial["NY"][ny] = perKey
		initial["LA"][la] = perKey
		initial["CHI"][chi] = perKey
		programs = append(programs, txn.MustProgram(fmt.Sprintf("dist-chain-%d", f),
			txn.AddOp(ny, -1),
			txn.AddOp(la, 1), // passes through LA
			txn.AddOp(la, -1),
			txn.AddOp(chi, 1),
		))
	}
	if cfg.UseDC {
		// Generous budgets: the workload measures pipeline cost with DC
		// compiled in, not refusal behavior. Chains export, audits import.
		eps := metric.Fuzz(4 * cfg.Txns)
		spec := metric.Spec{Import: metric.LimitOf(eps), Export: metric.LimitOf(eps)}
		for i, p := range programs {
			programs[i] = p.WithSpec(spec)
		}
		for f := 0; f < cfg.Families; f++ {
			programs = append(programs, txn.MustProgram(fmt.Sprintf("dist-audit-%d", f),
				txn.ReadOp(storage.Key(fmt.Sprintf("ny:A%d", f))),
				txn.ReadOp(storage.Key(fmt.Sprintf("la:B%d", f))),
				txn.ReadOp(storage.Key(fmt.Sprintf("chi:C%d", f))),
			).WithSpec(spec))
		}
	}

	var opts []site.Option
	switch cfg.Variant {
	case VariantBatched:
		// defaults are the batched pipeline
	case VariantUnbatched:
		opts = append(opts, site.WithLegacyWire())
	default:
		return nil, fmt.Errorf("distbench: unknown variant %q", cfg.Variant)
	}
	if cfg.Workers > 0 {
		opts = append(opts, site.WithWorkers(cfg.Workers))
	}
	c, err := site.NewCluster(site.Config{
		Strategy:        site.ChoppedQueues,
		UseDC:           cfg.UseDC,
		Latency:         cfg.Latency,
		Jitter:          cfg.Jitter,
		LossRate:        cfg.LossRate,
		Seed:            cfg.Seed,
		Placement:       distPlacement,
		Initial:         initial,
		RetransmitEvery: 5 * time.Millisecond,
		Obs:             cfg.Plane,
	}, opts...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.RegisterPrograms(programs); err != nil {
		return nil, err
	}

	initRec := stats.NewRecorder()
	settleRec := stats.NewRecorder()
	var mu sync.Mutex
	var firstErr error
	before := c.Net.Stats()
	start := time.Now()
	var wg sync.WaitGroup
	per := cfg.Txns / cfg.Submitters
	extra := cfg.Txns % cfg.Submitters
	for sub := 0; sub < cfg.Submitters; sub++ {
		n := per
		if sub < extra {
			n++
		}
		if n == 0 {
			continue
		}
		// Submitter 0 spaces the ε-audits through its chain loop; with one
		// submitter the run stays sequential (and so trace-deterministic),
		// with many the audits overlap foreign chains and exercise DC.
		audits := 0
		if sub == 0 && cfg.UseDC {
			audits = cfg.Audits
		}
		wg.Add(1)
		go func(sub, n, audits int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
			defer cancel()
			auditStep := 1
			if audits > 0 && n > audits {
				auditStep = n / audits
			}
			submitAudit := func(i int) bool {
				res, err := c.Submit(ctx, cfg.Families+i%cfg.Families)
				if err != nil || !res.Committed {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("audit did not commit: %+v", res)
						}
						firstErr = err
					}
					mu.Unlock()
					return false
				}
				return true
			}
			for i := 0; i < n; i++ {
				res, err := c.Submit(ctx, (sub+i)%cfg.Families)
				if err != nil || !res.Committed {
					mu.Lock()
					if firstErr == nil {
						if err == nil {
							err = fmt.Errorf("chain did not commit: %+v", res)
						}
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				initRec.Add(res.Initiation)
				settleRec.Add(res.Settlement)
				mu.Unlock()
				if audits > 0 && i%auditStep == auditStep-1 {
					if !submitAudit(i) {
						return
					}
					audits--
				}
			}
			for ; audits > 0; audits-- { // leftovers from integer spacing
				if !submitAudit(audits) {
					return
				}
			}
		}(sub, n, audits)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}
	after := c.Net.Stats()

	// Quiescence + conservation: every settled chain's money is back on
	// the books (pass-through LA nets to zero; NY lost what CHI gained).
	want := metric.Value(3*cfg.Families) * perKey
	sum := func() metric.Value {
		var total metric.Value
		for id, keys := range initial {
			for k := range keys {
				total += c.Site(id).Store.Get(k)
			}
		}
		return total
	}
	deadline := time.Now().Add(10 * time.Second)
	for sum() != want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	const piecesPerChain = 3
	res := &DistBenchResult{
		Variant:      cfg.Variant,
		Workers:      cfg.Workers,
		Txns:         cfg.Txns,
		Pieces:       cfg.Txns * piecesPerChain,
		Elapsed:      elapsed,
		TPS:          float64(cfg.Txns) / elapsed.Seconds(),
		PiecesPerSec: float64(cfg.Txns*piecesPerChain) / elapsed.Seconds(),
		InitP50:      initRec.Percentile(50),
		InitP99:      initRec.Percentile(99),
		SettleP50:    settleRec.Percentile(50),
		SettleP99:    settleRec.Percentile(99),
		FramesPerTxn: float64(after.Sent-before.Sent) / float64(cfg.Txns),
		MsgsPerTxn:   float64(after.Payloads-before.Payloads) / float64(cfg.Txns),
		Conserved:    sum() == want,
	}
	return res, nil
}
