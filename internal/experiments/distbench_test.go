package experiments

import (
	"testing"
	"time"

	"asynctp/internal/site"
)

// TestDistBenchSmokeBothVariants runs a tiny distbench in each
// transport variant: both must settle every chain, conserve money, and
// the batched variant must pay fewer network frames per chain than the
// legacy wire on the identical workload.
func TestDistBenchSmokeBothVariants(t *testing.T) {
	cfg := DistBenchConfig{
		Latency:    200 * time.Microsecond,
		Seed:       9,
		Submitters: 8,
		Txns:       64,
		Families:   8,
	}
	results := map[string]*DistBenchResult{}
	for _, variant := range []string{VariantBatched, VariantUnbatched} {
		cfg.Variant = variant
		res, err := RunDistBench(cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if res.Txns != cfg.Txns {
			t.Errorf("%s: txns = %d, want %d", variant, res.Txns, cfg.Txns)
		}
		if !res.Conserved {
			t.Errorf("%s: money not conserved", variant)
		}
		if res.TPS <= 0 || res.PiecesPerSec <= 0 {
			t.Errorf("%s: degenerate throughput %+v", variant, res)
		}
		if res.SettleP50 < res.InitP50 {
			t.Errorf("%s: settlement p50 %v < initiation p50 %v",
				variant, res.SettleP50, res.InitP50)
		}
		results[variant] = res
	}
	b, u := results[VariantBatched], results[VariantUnbatched]
	if b.FramesPerTxn >= u.FramesPerTxn {
		t.Errorf("batched frames/txn %.1f >= unbatched %.1f: coalescing bought nothing",
			b.FramesPerTxn, u.FramesPerTxn)
	}
}

// TestDistBenchRejectsUnknownVariant keeps the CLI surface honest.
func TestDistBenchRejectsUnknownVariant(t *testing.T) {
	if _, err := RunDistBench(DistBenchConfig{Variant: "turbo", Txns: 1}); err == nil {
		t.Fatal("expected error for unknown variant")
	}
}

// TestChaosStormAcrossWorkerPools reruns the crash-storm scenario with
// the worker pool squeezed to 1 and widened to 8: the paper's safety
// argument is scheduling-independent, so both must settle every chain
// and conserve money, and the seeded fault timeline must be identical
// (satellite: WithWorkers under chaos).
func TestChaosStormAcrossWorkerPools(t *testing.T) {
	var refFired []string
	for _, workers := range []int{1, 8} {
		cfg := soakCfg()
		cfg.Workers = workers
		out, err := RunChaosScenario(site.ChoppedQueues, ScenarioCrashStorm, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out.Settled != cfg.Chains {
			t.Errorf("workers=%d: settled %d/%d (failed %d)",
				workers, out.Settled, cfg.Chains, out.Failed)
		}
		if !out.Conserved {
			t.Errorf("workers=%d: money not conserved", workers)
		}
		if refFired == nil {
			refFired = out.Fired
			continue
		}
		if len(out.Fired) != len(refFired) {
			t.Fatalf("workers=8 fired %v, workers=1 fired %v", out.Fired, refFired)
		}
		for i := range refFired {
			if out.Fired[i] != refFired[i] {
				t.Errorf("fired[%d] = %q with workers=8, %q with workers=1",
					i, out.Fired[i], refFired[i])
			}
		}
	}
}
