package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// nyLAPlacement puts ny:* keys in NY and everything else in LA.
func nyLAPlacement(k storage.Key) simnet.SiteID {
	if strings.HasPrefix(string(k), "ny:") {
		return "NY"
	}
	return "LA"
}

// newBranchCluster builds the Section 4 two-branch bank.
func newBranchCluster(strategy site.Strategy, useDC bool, oneWay time.Duration) (*site.Cluster, error) {
	return newBranchClusterDelay(strategy, useDC, oneWay, 0)
}

// newBranchClusterDelay adds per-operation work at each site so pieces
// overlap and runtime conflicts actually form.
func newBranchClusterDelay(strategy site.Strategy, useDC bool, oneWay, opDelay time.Duration) (*site.Cluster, error) {
	return site.NewCluster(site.Config{
		Strategy:  strategy,
		UseDC:     useDC,
		Obs:       obsPlane,
		Latency:   oneWay,
		Seed:      1,
		Placement: nyLAPlacement,
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY": {"ny:X": 10000000},
			"LA": {"la:Y": 10000000},
		},
		RetransmitEvery: 10 * time.Millisecond,
		OpDelay:         opDelay,
	})
}

// branchPrograms returns the cross-branch transfer and audit.
func branchPrograms(amount metric.Value, eps metric.Fuzz) []*txn.Program {
	spec := metric.Spec{Import: metric.LimitOf(eps), Export: metric.LimitOf(eps)}
	return []*txn.Program{
		txn.MustProgram("xfer",
			txn.AddOp("ny:X", -amount), txn.AddOp("la:Y", amount)).WithSpec(spec),
		txn.MustProgram("audit",
			txn.ReadOp("ny:X"), txn.ReadOp("la:Y")).WithSpec(spec),
	}
}

// Distributed2PCvsQueues runs E2: the same cross-branch transfer under
// blocking 2PC and under chopped pieces with recoverable queues, across
// a sweep of one-way WAN latencies. Reported: user-visible (initiation)
// latency, settlement latency, and one-way messages per transaction.
// The paper's claim: the chopped transfer saves the two message rounds
// of the commit protocol — "a few hundred milliseconds or a few seconds
// less than the traditional approach".
func Distributed2PCvsQueues(oneWays []time.Duration, perPoint int) (*Report, error) {
	if len(oneWays) == 0 {
		oneWays = []time.Duration{time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond}
	}
	if perPoint < 1 {
		perPoint = 5
	}
	rep := &Report{
		ID:    "E2",
		Title: "Section 4 — 2PC vs chopped recoverable queues across WAN latencies",
		Table: newTable("one-way", "strategy", "initiation (mean)", "settlement (mean)", "msgs/txn"),
	}
	for _, oneWay := range oneWays {
		var initChop, init2PC time.Duration
		for _, strategy := range []site.Strategy{site.TwoPhaseCommit, site.ChoppedQueues} {
			c, err := newBranchCluster(strategy, false, oneWay)
			if err != nil {
				return nil, err
			}
			if err := c.RegisterPrograms(branchPrograms(100, 0)); err != nil {
				c.Close()
				return nil, err
			}
			var sumInit, sumSettle time.Duration
			before := c.Net.Stats().Sent
			for i := 0; i < perPoint; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				res, err := c.Submit(ctx, 0)
				cancel()
				if err != nil {
					c.Close()
					return nil, fmt.Errorf("%s @%v: %w", strategy, oneWay, err)
				}
				sumInit += res.Initiation
				sumSettle += res.Settlement
			}
			// Let queue acks drain before counting messages.
			time.Sleep(4*oneWay + 50*time.Millisecond)
			msgs := float64(c.Net.Stats().Sent-before) / float64(perPoint)
			c.Close()
			meanInit := sumInit / time.Duration(perPoint)
			meanSettle := sumSettle / time.Duration(perPoint)
			if strategy == site.ChoppedQueues {
				initChop = meanInit
			} else {
				init2PC = meanInit
			}
			rep.Table.AddRow(
				oneWay.String(), strategy.String(),
				meanInit.Round(100*time.Microsecond).String(),
				meanSettle.Round(100*time.Microsecond).String(),
				fmt.Sprintf("%.1f", msgs),
			)
		}
		rep.Notes = append(rep.Notes, check(initChop < init2PC,
			fmt.Sprintf("@%v chopped initiation (%v) beats 2PC (%v) by ~2 message rounds",
				oneWay, initChop.Round(time.Millisecond), init2PC.Round(time.Millisecond))))
	}
	return rep, nil
}

// DistributedAvailability runs the E2 availability half: with the remote
// branch crashed, 2PC cannot commit anything, while chopped transfers
// keep initiating; after recovery the pieces settle and no money is
// lost.
func DistributedAvailability() (*Report, error) {
	rep := &Report{
		ID:    "E2b",
		Title: "Section 4 — availability during a remote-site crash",
		Table: newTable("strategy", "committed during crash", "settled after recovery", "money conserved"),
	}
	const attempts = 5

	// 2PC: every attempt during the crash fails.
	c2, err := newBranchCluster(site.TwoPhaseCommit, false, 0)
	if err != nil {
		return nil, err
	}
	if err := c2.RegisterPrograms(branchPrograms(100, 0)); err != nil {
		c2.Close()
		return nil, err
	}
	c2.Site("LA").Crash()
	committed2PC := 0
	for i := 0; i < attempts; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		if res, err := c2.Submit(ctx, 0); err == nil && res.Committed {
			committed2PC++
		}
		cancel()
	}
	c2.Site("LA").Recover()
	conserved2PC := c2.Site("NY").Store.Get("ny:X")+c2.Site("LA").Store.Get("la:Y") == 20000000
	c2.Close()
	rep.Table.AddRow("2pc", fmt.Sprintf("%d/%d", committed2PC, attempts), "n/a",
		fmt.Sprintf("%v", conserved2PC))

	// Chopped: initiations proceed during the crash; settlement follows
	// recovery.
	cc, err := newBranchCluster(site.ChoppedQueues, false, 0)
	if err != nil {
		return nil, err
	}
	if err := cc.RegisterPrograms(branchPrograms(100, 0)); err != nil {
		cc.Close()
		return nil, err
	}
	cc.Site("LA").Crash()
	var wg sync.WaitGroup
	settled := make(chan bool, attempts)
	initiated := 0
	for i := 0; i < attempts; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			res, err := cc.Submit(ctx, 0)
			settled <- err == nil && res != nil && res.Committed
		}()
	}
	// Wait until the NY debits land (initiation) while LA stays down.
	deadline := time.Now().Add(5 * time.Second)
	for cc.Site("NY").Store.Get("ny:X") != 10000000-attempts*100 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if cc.Site("NY").Store.Get("ny:X") == 10000000-attempts*100 {
		initiated = attempts
	}
	cc.Site("LA").Recover()
	wg.Wait()
	close(settled)
	settledCount := 0
	for ok := range settled {
		if ok {
			settledCount++
		}
	}
	conserved := cc.Site("NY").Store.Get("ny:X")+cc.Site("LA").Store.Get("la:Y") == 20000000
	cc.Close()
	rep.Table.AddRow("chopped-queues",
		fmt.Sprintf("%d/%d initiated", initiated, attempts),
		fmt.Sprintf("%d/%d", settledCount, attempts),
		fmt.Sprintf("%v", conserved))
	rep.Notes = append(rep.Notes,
		check(committed2PC == 0, "2PC commits nothing while a participant is down"),
		check(initiated == attempts, "chopped transfers initiate despite the crash"),
		check(settledCount == attempts, "all pieces settle after recovery"),
		check(conserved, "no money created or destroyed through crash and recovery"),
	)
	return rep, nil
}

// DistributedEpsilonSplit runs E3 (Section 4.1): transfer and audit each
// carry ε = $10,000 split $5,000 per branch piece. Transfers under the
// per-piece budget proceed through audit conflicts via local divergence
// control (fuzzy grants); transfers over it block as under 2PL.
func DistributedEpsilonSplit() (*Report, error) {
	rep := &Report{
		ID:    "E3",
		Title: "Section 4.1 — ε-spec split across branch pieces ($10,000 → $5,000 + $5,000)",
		Table: newTable("transfer amount", "per-piece ε", "fuzzy grants", "audit deviation ≤ in-flight"),
	}
	const eps = 1000000 // $10,000.00 in cents
	for _, amount := range []metric.Value{400000, 700000} {
		c, err := newBranchClusterDelay(site.ChoppedQueues, true, 0, 2*time.Millisecond)
		if err != nil {
			return nil, err
		}
		if err := c.RegisterPrograms(branchPrograms(amount, eps)); err != nil {
			c.Close()
			return nil, err
		}
		const xfers, audits = 10, 5
		var wg sync.WaitGroup
		devOK := true
		var devMu sync.Mutex
		for i := 0; i < xfers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				_, _ = c.Submit(ctx, 0)
			}()
		}
		for i := 0; i < audits; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				res, err := c.Submit(ctx, 1)
				if err != nil || res == nil {
					return
				}
				dev := metric.Distance(res.SumReads(), 20000000)
				devMu.Lock()
				if dev > metric.Fuzz(xfers)*metric.Fuzz(amount) {
					devOK = false
				}
				devMu.Unlock()
			}()
		}
		wg.Wait()
		grants := c.Site("NY").Locks().Stats().FuzzyGrants + c.Site("LA").Locks().Stats().FuzzyGrants
		c.Close()
		rep.Table.AddRow(
			fmt.Sprintf("%d", amount),
			fmt.Sprintf("%d", eps/2),
			fmt.Sprintf("%d", grants),
			fmt.Sprintf("%v", devOK),
		)
		if amount < eps/2 {
			rep.Notes = append(rep.Notes, check(true,
				fmt.Sprintf("transfers of %d (< per-piece ε %d) may proceed through audit conflicts", amount, eps/2)))
		}
	}
	return rep, nil
}
