package experiments

import (
	"context"
	"fmt"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
	"asynctp/internal/workload"
)

// interestWorkload builds the abort-prone case: every transaction posts
// 1% interest to both hot accounts with TransformOp (non-commutative).
func interestWorkload() (*workload.Workload, error) {
	grow := func(v metric.Value) metric.Value { return v + v/100 }
	w := &workload.Workload{
		Name: "interest",
		Initial: map[storage.Key]metric.Value{
			"hot1": 100000, "hot2": 100000,
		},
		Expected: map[int]metric.Value{},
	}
	spec := metric.SpecOf(50000)
	for i := 0; i < 2; i++ {
		key := storage.Key(fmt.Sprintf("hot%d", i+1))
		p := txn.MustProgram(fmt.Sprintf("interest%d", i),
			txn.TransformOp(key, grow, metric.LimitOf(2000)),
			txn.TransformOp(storage.Key(fmt.Sprintf("hot%d", 2-i)), grow, metric.LimitOf(2000)),
		).WithSpec(spec)
		w.Programs = append(w.Programs, p)
		w.Counts = append(w.Counts, 40)
	}
	audit := txn.MustProgram("audit",
		txn.ReadOp("hot1"), txn.ReadOp("hot2")).WithSpec(spec)
	w.Programs = append(w.Programs, audit)
	w.Counts = append(w.Counts, 10)
	return w, nil
}

// EngineComparison runs E5, an ablation beyond the paper's prototype:
// the same workloads under the three divergence-control families its
// reference [12] describes — lock-based (package dc), optimistic
// (package odc), and timestamp ordering (package tdc) — plus the
// repair family (package rdc, with and without ε-skip). Locking blocks
// at conflict time and never redoes work; optimistic and timestamp
// never block readers but pay aborts (validation failures /
// timestamp-order violations) under non-commuting write contention;
// repair re-executes only the stale ops, so contention costs repaired
// ops instead of whole-piece retries.
func EngineComparison(seed int64) (*Report, error) {
	rep := &Report{
		ID:    "E5",
		Title: "Ablation — lock-based vs optimistic divergence control",
		Table: newTable("workload", "engine", "tps", "retries", "absorbed", "max dev"),
	}
	type workloadCase struct {
		name string
		mk   func() (*workload.Workload, error)
	}
	cases := []workloadCase{
		{name: "bank (read-heavy)", mk: func() (*workload.Workload, error) {
			return workload.NewBank(workload.BankConfig{
				Branches: 1, AccountsPerBranch: 4,
				InitialBalance: 1000000, TransferAmount: 100,
				TransferTypes: 1, TransferCount: 20, AuditCount: 30,
				Epsilon: 8000, IntraBranch: true, Seed: seed,
			})
		}},
		{name: "bank (write-heavy)", mk: func() (*workload.Workload, error) {
			return workload.NewBank(workload.BankConfig{
				Branches: 1, AccountsPerBranch: 4,
				InitialBalance: 1000000, TransferAmount: 100,
				TransferTypes: 2, TransferCount: 40, AuditCount: 5,
				Epsilon: 8000, IntraBranch: true, Seed: seed,
			})
		}},
		// Non-commutative write contention: interest posting on two hot
		// accounts. Optimistic DC cannot absorb update-update conflicts
		// and must redo whole transactions; locking DC just queues.
		{name: "interest (non-commutative)", mk: interestWorkload},
	}
	for _, wc := range cases {
		w, err := wc.mk()
		if err != nil {
			return nil, err
		}
		for _, kind := range []core.EngineKind{
			core.EngineLocking, core.EngineOptimistic, core.EngineTimestamp,
			core.EngineRepair, core.EngineRepairSkip,
		} {
			engine := kind.String() + "-dc"
			cfg := workload.ConfigFor(w, core.BaselineESRDC, core.Static, false)
			cfg.OpDelay = 100 * time.Microsecond
			cfg.Engine = kind
			cfg.Obs = obsPlane
			r, err := core.NewRunner(cfg)
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			res, err := workload.Run(ctx, r, w, 12, seed)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", wc.name, engine, err)
			}
			var absorbed uint64
			switch kind {
			case core.EngineOptimistic:
				absorbed = r.ODCStats().Absorbed
			case core.EngineTimestamp:
				absorbed = r.TDCStats().Absorbed
			case core.EngineRepair, core.EngineRepairSkip:
				// The repair engines' counterpart to absorption is the
				// ε-skip: staleness charged to the budget instead of fixed.
				absorbed = r.RDCStats().Skips
			default:
				absorbed = r.DCStats().Absorbed
			}
			rep.Table.AddRow(
				wc.name, engine,
				fmt.Sprintf("%.0f", res.ThroughputTPS),
				fmt.Sprintf("%d", res.Retries),
				fmt.Sprintf("%d", absorbed),
				fmt.Sprintf("%d", res.MaxDeviation),
			)
			if res.MaxDeviation > 8000 {
				rep.Notes = append(rep.Notes,
					check(false, fmt.Sprintf("%s/%s exceeded ε: %d", wc.name, engine, res.MaxDeviation)))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"shape claim: optimistic DC wins when aborts are rare (commuting writes, read-mostly);",
		"non-commutative write contention turns into validation aborts (retries) that locking avoids;",
		"repair-dc keeps the optimistic read path but re-executes only stale ops on conflict,",
		"so its retry column stays near zero even on the non-commutative case",
	)
	return rep, nil
}
