// Package experiments regenerates every table and figure of the paper's
// evaluation, plus quantified versions of its prose performance claims.
// Each experiment returns a Report that the cmd tools print and the
// bench harness drives; EXPERIMENTS.md records paper-vs-measured.
//
// Index (see DESIGN.md §3):
//
//	T1 — Table 1: the off-line × on-line correctness matrix, verified
//	     empirically on recorded histories.
//	F1 — Figure 1: restricted/unrestricted marking and the static
//	     ε-distribution (51 → 17/17/17 with ∞ for p2, p4).
//	F2 — Figure 2: static vs dynamic vs naive ε-distribution ablation.
//	F3 — Figure 3: S-edge weight from C-edge weights (W_S = 2+8 = 10).
//	E1 — Section 5: method comparison under contention and ε sweep.
//	E2 — Section 4: 2PC vs chopped recoverable queues across WAN RTTs,
//	     message counts, and availability under a site crash.
//	E3 — Section 4.1: ε-spec splitting across branch pieces.
//	E4 — Section 3: the update-update hazard executed, money destroyed,
//	     and the chopping rejected by Definition 1.
//	E5 — (extension) the three divergence-control engine families
//	     compared on the same workloads.
//	E7 — (extension) chaos harness: chopped queues vs bounded-wait 2PC
//	     under scheduled faults.
//	E8 — (extension) conformance: the serial-replay ε-oracle over
//	     deterministic schedules, the mis-budgeted control it must
//	     catch, and the chopping fuzzer cross-checked vs brute force.
//	E9 — (extension) kill -9 durability: the chain workload over the
//	     disk WAL driver, SIGKILLed at storage crash points, restarted
//	     from its real files, and audited for conservation and
//	     exactly-once application.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"asynctp/internal/stats"
)

// Report is one regenerated table/figure.
type Report struct {
	// ID is the experiment identifier (T1, F1, ...).
	ID string
	// Title describes the experiment.
	Title string
	// Table is the regenerated table.
	Table *stats.Table
	// Notes carry findings and the paper-vs-measured comparison.
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// reportJSON is the machine-readable form of a Report.
type reportJSON struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON renders the report as indented JSON for downstream tooling.
func (r *Report) JSON() (string, error) {
	rj := reportJSON{ID: r.ID, Title: r.Title, Notes: r.Notes}
	if r.Table != nil {
		rj.Header = r.Table.Header()
		rj.Rows = r.Table.Rows()
	}
	out, err := json.MarshalIndent(rj, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Passed reports whether every note claim passed.
func (r *Report) Passed() bool {
	for _, n := range r.Notes {
		if strings.HasPrefix(n, "[FAIL]") {
			return false
		}
	}
	return true
}

// check annotates a pass/fail claim in report notes.
func check(ok bool, claim string) string {
	mark := "PASS"
	if !ok {
		mark = "FAIL"
	}
	return fmt.Sprintf("[%s] %s", mark, claim)
}
