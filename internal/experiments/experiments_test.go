package experiments

import (
	"strings"
	"testing"
	"time"

	"asynctp/internal/metric"
)

// assertAllPass fails on any [FAIL] note.
func assertAllPass(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Table == nil {
		t.Fatalf("%s: no table", rep.ID)
	}
	for _, n := range rep.Notes {
		if strings.HasPrefix(n, "[FAIL]") {
			t.Errorf("%s: %s", rep.ID, n)
		}
	}
	if out := rep.String(); !strings.Contains(out, rep.ID) {
		t.Errorf("report render missing ID:\n%s", out)
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(42)
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
	// The SR cell must classify as SR; the ESR cells as SR or bounded.
	out := rep.Table.String()
	if !strings.Contains(out, "SR") {
		t.Errorf("table lacks SR verdicts:\n%s", out)
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("correctness violation in Table 1:\n%s", out)
	}
}

func TestFigure1(t *testing.T) {
	rep, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
	out := rep.Table.String()
	if !strings.Contains(out, "17 / 17") || !strings.Contains(out, "inf / inf") {
		t.Errorf("Figure 1 static split missing paper numbers:\n%s", out)
	}
}

func TestFigure3(t *testing.T) {
	rep, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestFigure2Distribution(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	rep, err := Figure2Distribution(7)
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestMethodComparisonSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	rep, err := MethodComparison(7, []metric.Fuzz{4000})
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
	// Six methods, one ε → six rows.
	lines := strings.Count(rep.Table.String(), "\n")
	if lines < 8 {
		t.Errorf("expected 6 method rows:\n%s", rep.Table.String())
	}
}

func TestDistributed2PCvsQueuesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("latency run")
	}
	rep, err := Distributed2PCvsQueues([]time.Duration{5 * time.Millisecond}, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestDistributedAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("crash run")
	}
	rep, err := DistributedAvailability()
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestDistributedEpsilonSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster run")
	}
	rep, err := DistributedEpsilonSplit()
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestEngineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("workload run")
	}
	rep, err := EngineComparison(7)
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
}

func TestUpdateUpdateHazard(t *testing.T) {
	rep, err := UpdateUpdateHazard()
	if err != nil {
		t.Fatal(err)
	}
	assertAllPass(t, rep)
	if !strings.Contains(rep.Table.String(), "2190") {
		t.Errorf("hazard total should be 2190 (money destroyed):\n%s", rep.Table.String())
	}
}

func TestReportJSONAndPassed(t *testing.T) {
	rep, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id": "F3"`, `"header"`, `"rows"`, `"notes"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s:\n%s", want, out)
		}
	}
	if !rep.Passed() {
		t.Error("Figure3 should pass")
	}
	failing := &Report{ID: "x", Notes: []string{check(false, "nope")}}
	if failing.Passed() {
		t.Error("failing report reported passed")
	}
}

func TestReportStringWithoutTable(t *testing.T) {
	rep := &Report{ID: "X", Title: "no table", Notes: []string{"note only"}}
	out := rep.String()
	if !strings.Contains(out, "X") || !strings.Contains(out, "note only") {
		t.Errorf("render = %q", out)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js, `"rows"`) {
		t.Errorf("tableless JSON has rows: %s", js)
	}
}
