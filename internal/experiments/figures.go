package experiments

import (
	"context"
	"fmt"
	"time"

	"asynctp/internal/chop"
	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/stats"
	"asynctp/internal/workload"
)

// newTable builds a stats table (thin alias to keep call sites short).
func newTable(header ...string) *stats.Table {
	return stats.NewTable(header...)
}

// Figure1 regenerates Figure 1's analysis: the example SR-chopping, its
// restricted/unrestricted pieces, and the static ε-distribution
// (Limit 51 over three restricted pieces → 17 each; ∞ elsewhere).
func Figure1() (*Report, error) {
	set := chop.Figure1Example()
	a := chop.Analyze(set)
	assign := chop.StaticDistribution(a)

	rep := &Report{
		ID:    "F1",
		Title: "Figure 1 — SR-chopping with C-cycles: restricted pieces and static ε split",
		Table: newTable("piece", "restricted (on C-cycle)", "static limit (import/export)"),
	}
	for _, v := range set.TxnPieces(0) {
		rep.Table.AddRow(
			set.Piece(v).Program.Name,
			fmt.Sprintf("%v", a.Restricted[v]),
			fmt.Sprintf("%s / %s", assign[v].Import, assign[v].Export),
		)
	}
	want17 := 0
	wantInf := 0
	for _, v := range set.TxnPieces(0) {
		if a.Restricted[v] && assign[v].Export.Cmp(metric.LimitOf(17)) == 0 {
			want17++
		}
		if !a.Restricted[v] && assign[v].Export.IsInfinite() {
			wantInf++
		}
	}
	rep.Notes = append(rep.Notes,
		check(!a.HasSCCycle, "the chopping is an SR-chopping (no SC-cycle)"),
		check(want17 == 3, "three restricted pieces each get 51/3 = 17 (paper's numbers)"),
		check(wantInf == 2, "two unrestricted pieces (p2, p4) get ∞"),
	)
	return rep, nil
}

// Figure3 regenerates Figure 3's computation: the S-edge weight from the
// C-edge weights on the SC-cycle (W_S = 2 + 8 = 10) and the Method 3
// budget reservation Limit^DC = 100 − 10 = 90.
func Figure3() (*Report, error) {
	set := chop.Figure3Example()
	a := chop.Analyze(set)
	rep := &Report{
		ID:    "F3",
		Title: "Figure 3 — inter-sibling fuzziness: W_S(s) = Σ W_C over CE(s)",
		Table: newTable("edge", "kind", "keys", "weight", "on SC-cycle"),
	}
	for _, e := range a.Edges {
		keys := ""
		for i, k := range e.Keys {
			if i > 0 {
				keys += ","
			}
			keys += string(k)
		}
		rep.Table.AddRow(
			fmt.Sprintf("%s — %s", set.Piece(e.U).Program.Name, set.Piece(e.V).Program.Name),
			e.Kind.String(), keys, e.Weight.String(), fmt.Sprintf("%v", e.InSCCycle),
		)
	}
	sEdge, ok := a.SEdgeBetween(set.Vertex(0, 0), set.Vertex(0, 1))
	dcl := a.DCLimit(0)
	rep.Notes = append(rep.Notes,
		check(ok && sEdge.Weight.Cmp(metric.LimitOf(10)) == 0,
			"W_S(p1—p2) = 2 + 8 = 10 (c2, c3 on the cycle but not incident, excluded)"),
		check(a.InterSibling[0].Cmp(metric.LimitOf(10)) == 0, "Z^is(t1) = 10"),
		check(dcl.Import.Cmp(metric.LimitOf(90)) == 0,
			"Equation 6: Limit^DC(t1) = 100 − 10 = 90"),
		check(a.IsESR() && !a.IsSR(), "the chopping is ESR-correct but not SR-correct"),
	)
	return rep, nil
}

// Figure2Distribution runs the static vs dynamic vs naive ε-distribution
// ablation (Sections 2.2.1–2.2.2): under divergence control with a tight
// ε, the static split can strand budget on one piece while another
// starves (extra blocking/retries); dynamic distribution passes leftover
// budget down the dependency tree; the naive split wastes budget on
// unrestricted pieces. Reported: throughput, retries, fuzzy grants, and
// refused (blocked) conflicts.
func Figure2Distribution(seed int64) (*Report, error) {
	w, err := workload.NewBank(workload.BankConfig{
		Branches: 1, AccountsPerBranch: 4,
		InitialBalance: 100000, TransferAmount: 100,
		TransferTypes: 2, TransferCount: 40, AuditCount: 20,
		Epsilon: 6000, IntraBranch: true, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "F2",
		Title: "Figure 2 — ε-distribution policy ablation under Method 1 (SR-chop + DC)",
		Table: newTable("policy", "throughput (tps)", "retries", "fuzzy grants", "refused", "max deviation"),
	}
	type row struct {
		name string
		dist core.Distribution
		tps  float64
	}
	rows := []row{
		{name: "static (restricted-only)", dist: core.Static},
		{name: "dynamic (Figure 2)", dist: core.Dynamic},
		{name: "proportional (exposure)", dist: core.Proportional},
		{name: "naive (even over all)", dist: core.Naive},
	}
	for i := range rows {
		cfg := workload.ConfigFor(w, core.Method1SRChopDC, rows[i].dist, false)
		cfg.OpDelay = 100 * time.Microsecond
		cfg.Obs = obsPlane
		r, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		res, err := workload.Run(ctx, r, w, 12, seed)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("policy %s: %w", rows[i].name, err)
		}
		rows[i].tps = res.ThroughputTPS
		dcStats := r.DCStats()
		rep.Table.AddRow(
			rows[i].name,
			fmt.Sprintf("%.0f", res.ThroughputTPS),
			fmt.Sprintf("%d", res.Retries),
			fmt.Sprintf("%d", dcStats.Absorbed),
			fmt.Sprintf("%d", dcStats.Refused),
			fmt.Sprintf("%d", res.MaxDeviation),
		)
	}
	rep.Notes = append(rep.Notes,
		"shape claim: dynamic ≥ static ≥ naive in admitted concurrency; all bounded by ε",
		check(rows[1].tps > 0 && rows[0].tps > 0 && rows[2].tps > 0, "all policies complete the stream"),
	)
	return rep, nil
}
