package experiments

import (
	"context"
	"fmt"
	"time"

	"asynctp/internal/chop"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// UpdateUpdateHazard runs E4: the Section 3 example showing why
// Definition 1 forbids SC-cycles whose C edge joins two update pieces.
// It executes the paper's exact interleaving — p1¹ (debit X), then t2
// (post 10% interest to X and Y), then p1² (credit Y) — and shows the
// database ends in a state no serial order of {t1, t2} can produce:
// money is permanently destroyed. It then shows the ESR-chopping checker
// rejects the chopping statically.
func UpdateUpdateHazard() (*Report, error) {
	// X = Y = 1000, transfer 100, 10% interest — the paper's numbers.
	store := storage.NewFrom(map[storage.Key]metric.Value{"X": 1000, "Y": 1000})
	locks := lock.NewManager()
	exec := txn.NewExec(store, locks, nil)

	interest := func(v metric.Value) metric.Value { return v + v/10 }
	p11 := txn.MustProgram("t1/p1", txn.AddOp("X", -100))
	p12 := txn.MustProgram("t1/p2", txn.AddOp("Y", 100))
	t2 := txn.MustProgram("t2",
		txn.TransformOp("X", interest, metric.LimitOf(200)),
		txn.TransformOp("Y", interest, metric.LimitOf(200)),
	)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, p := range []*txn.Program{p11, t2, p12} {
		if _, err := exec.Run(ctx, lock.Owner(i+1), p); err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	gotX, gotY := store.Get("X"), store.Get("Y")
	gotTotal := gotX + gotY

	// The two serial executions.
	serialT1First := metric.Value(990 + 1210)  // (900, 1100) then +10% each
	serialT2First := metric.Value(1000 + 1200) // +10% each, then transfer
	isSerial := gotTotal == serialT1First || gotTotal == serialT2First

	rep := &Report{
		ID:    "E4",
		Title: "Section 3 — update-update SC-cycle hazard executed and rejected",
		Table: newTable("execution", "X", "Y", "total"),
	}
	rep.Table.AddRow("serial t1;t2", "990", "1210", "2200")
	rep.Table.AddRow("serial t2;t1", "1000", "1200", "2200")
	rep.Table.AddRow("hazard p1¹;t2;p1²",
		fmt.Sprintf("%d", gotX), fmt.Sprintf("%d", gotY), fmt.Sprintf("%d", gotTotal))

	rep.Notes = append(rep.Notes,
		check(!isSerial, fmt.Sprintf(
			"the interleaving produced total %d — permanently inconsistent (both serial orders give 2200)",
			gotTotal)),
	)

	// Static rejection: the chopping fails Definition 1.
	a := chop.Analyze(chop.HazardExample())
	violations := a.CheckESR()
	hasUU := false
	for _, v := range violations {
		if v.Kind == "update-update" {
			hasUU = true
		}
	}
	rep.Notes = append(rep.Notes,
		check(hasUU, "the ESR-chopping checker rejects this chopping (update-update C edge on an SC-cycle)"),
		check(!a.IsESR(), "Definition 1 fails as required"),
	)
	return rep, nil
}
