package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/storage/driver"
	"asynctp/internal/storage/wal"
	"asynctp/internal/txn"
)

// E9: kill -9 durability. The chaos schedules (E7) simulate crashes by
// discarding volatile state inside one process; this harness earns the
// same guarantees the hard way. A child process runs the three-branch
// chain workload over the disk driver and SIGKILLs itself at a WAL
// crash point — mid-append, pre-fsync, or right after writing a torn
// frame. The parent restarts it from the real files, cycle after
// cycle, then opens the image itself, drains the recovered traffic,
// and audits: money conserved, piece application exactly-once (the
// marker balance equations), chain completeness, and audit deviation
// within the in-flight ε bound.

// Environment variables carrying the child's parameters.
const (
	kill9EnvChild    = "ASYNCTP_KILL9_CHILD"
	kill9EnvDir      = "ASYNCTP_KILL9_DIR"
	kill9EnvSeed     = "ASYNCTP_KILL9_SEED"
	kill9EnvChains   = "ASYNCTP_KILL9_CHAINS"
	kill9EnvAmount   = "ASYNCTP_KILL9_AMOUNT"
	kill9EnvInstBase = "ASYNCTP_KILL9_INSTBASE"
	kill9EnvCrash    = "ASYNCTP_KILL9_CRASH"
)

// Kill9IsChild reports whether this process was spawned as a kill -9
// workload child (checked by main() before flag parsing).
func Kill9IsChild() bool { return os.Getenv(kill9EnvChild) == "1" }

// Kill9Config parameterizes the parent harness.
type Kill9Config struct {
	// Bin is the executable re-exec'd as the workload child (usually
	// os.Executable() of a binary that checks Kill9IsChild in main).
	Bin string
	// Args are prepended child arguments (a test harness passes
	// -test.run=<helper>; chaosbench passes nothing).
	Args []string
	// Dir roots the shared disk image (required).
	Dir string
	// Seed drives the simulated network; each cycle offsets it.
	Seed int64
	// Chains is the number of transfer chains submitted per cycle.
	Chains int
	// Amount is the per-chain transfer amount.
	Amount metric.Value
	// Cycles is the number of crash/restart cycles (default 3: one each
	// for the append, pre-fsync, and torn-write crash points).
	Cycles int
}

func (cfg Kill9Config) withDefaults() Kill9Config {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Chains <= 0 {
		cfg.Chains = 12
	}
	if cfg.Amount <= 0 {
		cfg.Amount = 5
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 3
	}
	return cfg
}

// kill9Spec rotates the crash point across cycles: lose a record
// entirely (append), lose the fsync (sync), and leave a real torn tail
// (torn). LA and CHI alternate so both downstream sites get killed.
func kill9Spec(cycle int) fault.KillSpec {
	specs := []fault.KillSpec{
		{Point: fault.KillAppend, Site: "LA", Hit: 15},
		{Point: fault.KillSync, Site: "CHI", Hit: 12},
		{Point: fault.KillTorn, Site: "LA", Hit: 18},
	}
	s := specs[cycle%len(specs)]
	s.Hit += 3 * (cycle / len(specs)) // drift later on extra laps
	return s
}

// kill9Hook adapts a KillSpec to the WAL crash-point hook: the Hit'th
// time the named site reaches the named point, the process SIGKILLs
// itself (for torn, the half-written frame goes down first).
func kill9Hook(spec fault.KillSpec) func(string, wal.CrashPoint) wal.Action {
	var hits atomic.Int64
	return func(siteID string, p wal.CrashPoint) wal.Action {
		if simnet.SiteID(siteID) != spec.Site {
			return wal.ActContinue
		}
		switch spec.Point {
		case fault.KillAppend:
			if p == wal.PointAppend && hits.Add(1) == int64(spec.Hit) {
				fault.SelfKill()
			}
		case fault.KillSync:
			if p == wal.PointSync && hits.Add(1) == int64(spec.Hit) {
				fault.SelfKill()
			}
		case fault.KillTorn:
			if p == wal.PointTorn {
				fault.SelfKill() // the torn frame is on disk; die on it
			}
			if p == wal.PointAppend && hits.Add(1) == int64(spec.Hit) {
				return wal.ActTorn
			}
		case fault.KillSnapshot:
			if p == wal.PointSnapshot && hits.Add(1) == int64(spec.Hit) {
				fault.SelfKill()
			}
		}
		return wal.ActContinue
	}
}

// kill9Cluster builds the three-branch chain cluster over the disk
// driver rooted at dir.
func kill9Cluster(dir string, seed int64, instBase uint64, hook func(string, wal.CrashPoint) wal.Action) (*site.Cluster, error) {
	drv, err := driver.New("disk", driver.Params{
		Dir:             dir,
		SyncEvery:       200 * time.Microsecond,
		CheckpointBytes: 256 << 10,
		Hook:            hook,
	})
	if err != nil {
		return nil, err
	}
	return site.NewCluster(site.Config{
		Strategy:     site.ChoppedQueues,
		Storage:      drv,
		InstanceBase: instBase,
		Latency:      500 * time.Microsecond,
		Jitter:       0.2,
		Seed:         seed,
		Placement:    chaosPlacement,
		Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
			"NY":  {"ny:A": 10000},
			"LA":  {"la:B": 10000},
			"CHI": {"chi:C": 10000},
		},
		RetransmitEvery: 5 * time.Millisecond,
	})
}

// kill9Sum reads the three branch balances.
func kill9Sum(c *site.Cluster) metric.Value {
	return c.Site("NY").Store.Get("ny:A") +
		c.Site("LA").Store.Get("la:B") +
		c.Site("CHI").Store.Get("chi:C")
}

// kill9Quiesce waits until the cluster is settled: the money sums to
// the initial total and every queue endpoint is drained, stably across
// several polls.
func kill9Quiesce(c *site.Cluster, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	stable := 0
	for time.Now().Before(deadline) {
		idle := kill9Sum(c) == chaosTotal
		for _, id := range chaosSites {
			if !c.Site(id).QueuesIdle() {
				idle = false
			}
		}
		if idle {
			if stable++; stable >= 5 {
				return nil
			}
		} else {
			stable = 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("experiments: cluster did not quiesce within %v (sum=%d)",
		timeout, kill9Sum(c))
}

// Kill9Child runs the workload child: it recovers the cluster from the
// shared disk image, re-stages recovered traffic, submits a fresh round
// of chains, and either dies at the injected crash point (the expected
// outcome) or quiesces and exits 0.
func Kill9Child() error {
	dir := os.Getenv(kill9EnvDir)
	if dir == "" {
		return errors.New("experiments: kill9 child needs " + kill9EnvDir)
	}
	seed, _ := strconv.ParseInt(os.Getenv(kill9EnvSeed), 10, 64)
	chains, _ := strconv.Atoi(os.Getenv(kill9EnvChains))
	amount, _ := strconv.ParseInt(os.Getenv(kill9EnvAmount), 10, 64)
	instBase, _ := strconv.ParseUint(os.Getenv(kill9EnvInstBase), 10, 64)
	var hook func(string, wal.CrashPoint) wal.Action
	if specStr := os.Getenv(kill9EnvCrash); specStr != "" {
		spec, err := fault.ParseKillSpec(specStr)
		if err != nil {
			return err
		}
		hook = kill9Hook(spec)
	}
	c, err := kill9Cluster(dir, seed, instBase, hook)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.RegisterPrograms(chaosPrograms(metric.Value(amount))); err != nil {
		return err
	}
	var wg sync.WaitGroup
	for i := 0; i < chains; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_, _ = c.Submit(ctx, 0) // settlement is audited from the files
		}(i)
	}
	wg.Wait()
	return kill9Quiesce(c, 20*time.Second)
}

// runKill9Child execs one workload child and reports whether it died by
// SIGKILL (the only acceptable death when a crash spec is armed).
func (cfg Kill9Config) runKill9Child(cycle int, spec string) error {
	cmd := exec.Command(cfg.Bin, cfg.Args...)
	cmd.Env = append(os.Environ(),
		kill9EnvChild+"=1",
		kill9EnvDir+"="+cfg.Dir,
		fmt.Sprintf("%s=%d", kill9EnvSeed, cfg.Seed+int64(cycle)),
		fmt.Sprintf("%s=%d", kill9EnvChains, cfg.Chains),
		fmt.Sprintf("%s=%d", kill9EnvAmount, cfg.Amount),
		fmt.Sprintf("%s=%d", kill9EnvInstBase, uint64(cycle+1)*1_000_000),
		kill9EnvCrash+"="+spec,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return fmt.Errorf("cycle %d: child quiesced; crash %s never fired\n%s", cycle, spec, out)
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL {
			return nil // the real thing: uncatchable, unflushed death
		}
	}
	return fmt.Errorf("cycle %d: child died without SIGKILL: %v\n%s", cycle, err, out)
}

// kill9Markers scans one site's store for `__applied/<inst>/<piece>`
// markers whose value tags the given program type, returning the
// instance set.
func kill9Markers(st *storage.Store, piece int, txType int) map[uint64]bool {
	insts := make(map[uint64]bool)
	suffix := fmt.Sprintf("/%d", piece)
	for _, key := range st.Keys() {
		name := string(key)
		rest, ok := strings.CutPrefix(name, "__applied/")
		if !ok || !strings.HasSuffix(rest, suffix) {
			continue
		}
		instStr := strings.TrimSuffix(rest, suffix)
		if strings.Contains(instStr, "/") {
			continue
		}
		inst, err := strconv.ParseUint(instStr, 10, 64)
		if err != nil || int(st.Get(key)) != txType+1 {
			continue
		}
		insts[inst] = true
	}
	return insts
}

// RunKill9 is the parent harness: Cycles child runs, each SIGKILLed at
// a rotating WAL crash point, then an in-process final incarnation that
// drains everything recovered from the files and verifies the paper's
// guarantees survived real process death.
func RunKill9(cfg Kill9Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Bin == "" || cfg.Dir == "" {
		return nil, errors.New("experiments: RunKill9 needs Bin and Dir")
	}
	rep := &Report{
		ID:    "E9",
		Title: "Kill -9 durability — WAL recovery through real process death",
		Table: newTable("cycle", "crash point", "outcome"),
	}
	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		spec := kill9Spec(cycle)
		if err := cfg.runKill9Child(cycle, spec.String()); err != nil {
			return nil, err
		}
		rep.Table.AddRow(fmt.Sprintf("%d", cycle), spec.String(), "SIGKILL; files kept")
	}

	// Final incarnation, in-process: recovery re-stages interrupted
	// chains, audits run against the draining cluster, and quiescence
	// must restore the conservation invariant.
	c, err := kill9Cluster(cfg.Dir, cfg.Seed+int64(cfg.Cycles), uint64(cfg.Cycles+1)*1_000_000, nil)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	var maxDev metric.Fuzz
	var audits int
	auditStop := make(chan struct{})
	var auditWG sync.WaitGroup
	auditWG.Add(1)
	go func() {
		defer auditWG.Done()
		for {
			select {
			case <-auditStop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			res, err := c.Submit(ctx, 1)
			cancel()
			if err != nil || res == nil || !res.Committed {
				continue
			}
			audits++
			if dev := metric.Distance(res.SumReads(), chaosTotal); dev > maxDev {
				maxDev = dev
			}
		}
	}()
	// RegisterPrograms re-stages the successors of every recovered
	// origin commit; redelivered queue traffic drains alongside.
	if err := c.RegisterPrograms(chaosPrograms(cfg.Amount)); err != nil {
		return nil, err
	}
	quiesceErr := kill9Quiesce(c, 30*time.Second)
	close(auditStop)
	auditWG.Wait()
	if quiesceErr != nil {
		return nil, quiesceErr
	}

	// The verification reads only durable state: balances and markers.
	ny := c.Site("NY").Store
	la := c.Site("LA").Store
	chi := c.Site("CHI").Store
	conserved := kill9Sum(c) == chaosTotal
	origins := kill9Markers(ny, 0, 0) // chain piece 0 commits at NY
	k := metric.Value(len(origins))
	exactlyOnce := ny.Get("ny:A") == 10000-k*cfg.Amount &&
		la.Get("la:B") == 10000 &&
		chi.Get("chi:C") == 10000+k*cfg.Amount
	laPieces := kill9Markers(la, 1, 0)
	chiPieces := kill9Markers(chi, 2, 0)
	complete := true
	for inst := range origins {
		if !laPieces[inst] || !chiPieces[inst] {
			complete = false
		}
	}
	// Every chain in flight across every incarnation bounds what an
	// audit can see missing.
	epsilon := metric.Fuzz(cfg.Cycles+1) * metric.Fuzz(cfg.Chains) * metric.Fuzz(cfg.Amount)

	rep.Table.AddRow("final", "none", fmt.Sprintf("%d chains settled", len(origins)))
	rep.Notes = append(rep.Notes,
		check(conserved, fmt.Sprintf("money conserved across %d SIGKILLs: sum == %d", cfg.Cycles, chaosTotal)),
		check(exactlyOnce, fmt.Sprintf("exactly-once: balances match %d durable origin markers (ny:A=%d la:B=%d chi:C=%d)",
			len(origins), ny.Get("ny:A"), la.Get("la:B"), chi.Get("chi:C"))),
		check(complete, "completeness: every origin commit settled its LA and CHI pieces"),
		check(maxDev <= epsilon, fmt.Sprintf("%d audits during drain; max deviation %d within ε bound %d",
			audits, maxDev, epsilon)),
	)
	return rep, nil
}

// RunDriverEquivalence runs the same deterministic sequential chain
// workload through the mem and disk drivers and compares the full
// post-run store snapshots — the acceptance check that the disk driver
// changes durability, not semantics.
func RunDriverEquivalence(dir string, chains int, amount metric.Value, seed int64) error {
	run := func(drv driver.Driver) (map[simnet.SiteID]map[storage.Key]metric.Value, error) {
		c, err := site.NewCluster(site.Config{
			Strategy:  site.ChoppedQueues,
			Storage:   drv,
			Latency:   500 * time.Microsecond,
			Jitter:    0.2,
			Seed:      seed,
			Placement: chaosPlacement,
			Initial: map[simnet.SiteID]map[storage.Key]metric.Value{
				"NY":  {"ny:A": 10000},
				"LA":  {"la:B": 10000},
				"CHI": {"chi:C": 10000},
			},
			RetransmitEvery: 5 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		defer c.Close()
		if err := c.RegisterPrograms([]*txn.Program{chaosPrograms(amount)[0]}); err != nil {
			return nil, err
		}
		for i := 0; i < chains; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			res, err := c.Submit(ctx, 0)
			cancel()
			if err != nil {
				return nil, err
			}
			if !res.Committed {
				return nil, fmt.Errorf("chain %d did not settle", i)
			}
		}
		out := make(map[simnet.SiteID]map[storage.Key]metric.Value, len(chaosSites))
		for _, id := range chaosSites {
			out[id] = c.Site(id).Store.Snapshot()
		}
		return out, nil
	}
	diskDrv, err := driver.New("disk", driver.Params{Dir: dir, SyncEvery: 200 * time.Microsecond})
	if err != nil {
		return err
	}
	memState, err := run(nil) // site default: mem driver
	if err != nil {
		return fmt.Errorf("mem run: %w", err)
	}
	diskState, err := run(diskDrv)
	if err != nil {
		return fmt.Errorf("disk run: %w", err)
	}
	for _, id := range chaosSites {
		m, d := memState[id], diskState[id]
		if len(m) != len(d) {
			return fmt.Errorf("site %s: mem has %d keys, disk %d", id, len(m), len(d))
		}
		for key, v := range m {
			if d[key] != v {
				return fmt.Errorf("site %s key %s: mem=%d disk=%d", id, key, v, d[key])
			}
		}
	}
	return nil
}
