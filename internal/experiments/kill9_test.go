package experiments

import (
	"os"
	"testing"
)

// TestKill9ChildHelper is not a test: it is the re-exec entry point for
// the kill -9 soak. RunKill9 spawns the test binary with -test.run
// pinned to this helper and the child environment set; the helper then
// runs the workload until the armed crash point SIGKILLs the process.
func TestKill9ChildHelper(t *testing.T) {
	if !Kill9IsChild() {
		t.Skip("kill9 re-exec helper; only runs as a spawned child")
	}
	if err := Kill9Child(); err != nil {
		t.Fatalf("kill9 child: %v", err)
	}
}

// TestKill9Soak runs the full E9 harness: three child processes
// SIGKILLed at the WAL-append, pre-fsync, and torn-write crash points,
// then in-process recovery from the surviving files with conservation,
// exactly-once, completeness, and ε-bound verification.
func TestKill9Soak(t *testing.T) {
	if testing.Short() {
		t.Skip("kill -9 soak spawns real child processes; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunKill9(Kill9Config{
		Bin:    bin,
		Args:   []string{"-test.run", "^TestKill9ChildHelper$"},
		Dir:    t.TempDir(),
		Seed:   42,
		Chains: 12,
		Amount: 5,
		Cycles: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("kill -9 claims failed:\n%s", rep)
	}
	t.Logf("\n%s", rep)
}

// TestDriverEquivalenceThroughPipeline is the acceptance check at the
// experiments level: the same deterministic workload through mem and
// disk drivers leaves byte-identical site state.
func TestDriverEquivalenceThroughPipeline(t *testing.T) {
	if err := RunDriverEquivalence(t.TempDir(), 6, 7, 42); err != nil {
		t.Fatal(err)
	}
}
