package experiments

import (
	"context"
	"fmt"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/workload"
)

// MethodComparison runs E1 (the Section 5 evaluation): all six methods
// over the same contended banking stream, for a sweep of ε budgets.
// Reported per (method, ε): committed throughput, p95 latency of query
// transactions, retries, fuzzy grants, and the worst query deviation.
//
// The paper's qualitative claims this quantifies:
//   - asynchrony helps: DC methods and finer choppings admit more
//     concurrency than the serializable baseline under contention;
//   - "there are scenarios where SR-chopping on DC wins and others in
//     which ESR-chopping on CC wins" — the winner flips with ε;
//   - inconsistency stays within ε everywhere.
func MethodComparison(seed int64, epsilons []metric.Fuzz) (*Report, error) {
	if len(epsilons) == 0 {
		epsilons = []metric.Fuzz{1000, 4000, 16000}
	}
	rep := &Report{
		ID:    "E1",
		Title: "Section 5 — method comparison under contention (ε sweep)",
		Table: newTable("ε", "method", "pieces", "tps", "query p95", "retries", "fuzzy grants", "max dev"),
	}
	for _, eps := range epsilons {
		w, err := workload.NewBank(workload.BankConfig{
			Branches: 1, AccountsPerBranch: 4,
			InitialBalance: 1000000, TransferAmount: 100,
			TransferTypes: 2, TransferCount: 40, AuditCount: 20,
			Epsilon: eps, IntraBranch: true, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		for _, method := range core.Methods() {
			cfg := workload.ConfigFor(w, method, core.Static, false)
			cfg.OpDelay = 100 * time.Microsecond
			cfg.Obs = obsPlane
			r, err := core.NewRunner(cfg)
			if err != nil {
				return nil, err
			}
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			res, err := workload.Run(ctx, r, w, 12, seed)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("%s ε=%d: %w", method, eps, err)
			}
			pieces := 0
			for ti := 0; ti < r.Set().NumTxns(); ti++ {
				pieces += r.Set().Chopping(ti).NumPieces()
			}
			rep.Table.AddRow(
				fmt.Sprintf("%d", eps),
				method.String(),
				fmt.Sprintf("%d", pieces),
				fmt.Sprintf("%.0f", res.ThroughputTPS),
				res.QueryLatency.Percentile(95).Round(10*time.Microsecond).String(),
				fmt.Sprintf("%d", res.Retries),
				fmt.Sprintf("%d", r.DCStats().Absorbed),
				fmt.Sprintf("%d", res.MaxDeviation),
			)
			if res.MaxDeviation > eps {
				rep.Notes = append(rep.Notes, check(false,
					fmt.Sprintf("%s ε=%d exceeded its bound: deviation %d", method, eps, res.MaxDeviation)))
			}
		}
	}
	rep.Notes = append(rep.Notes,
		"shape claim: baseline-sr-cc is the floor under contention; DC methods absorb query/update conflicts;",
		"larger ε keeps ESR-choppings finer (more pieces) and admits more fuzzy grants",
	)
	return rep, nil
}
