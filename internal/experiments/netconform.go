package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"asynctp/internal/fault"
	"asynctp/internal/metric"
	"asynctp/internal/simnet"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/transport"
	"asynctp/internal/txn"
)

// This file is the transport conformance harness: the same declared job
// stream, submitted under the same scenario, must settle to the SAME
// audit whether the pipeline runs over the in-process simulated network
// or over real TCP sockets on loopback. Timing differs between the two
// wires; settlement must not. The audited invariants are the ones the
// paper's correctness argument rests on — conservation of value,
// exactly-once piece application, chain completeness, bounded imported
// inconsistency — each of which is a deterministic function of the job
// stream, so any divergence between the twins is a transport bug, not
// scheduling noise.

// NetScenario is one conformance scenario: a job-stream size plus the
// network conditions it runs under. The zero knobs mean a clean
// network.
type NetScenario struct {
	Name string
	// Txns is the number of submissions per program class.
	Txns int
	// Seed drives the wire's loss/jitter RNG in both transports.
	Seed int64
	// LossRate silently drops this fraction of frames in flight.
	LossRate float64
	// Latency/Jitter delay every delivery (WAN emulation on loopback).
	Latency time.Duration
	Jitter  float64
	// Partition cuts NY–LA for a window mid-run (fault.Schedule); the
	// queues must carry every piece across the heal.
	Partition bool
	// UseDC runs the divergence controller so the audit can check the
	// ε bound on imported inconsistency.
	UseDC bool
}

// SettlementAudit is the transport-independent settlement outcome of a
// conformance run. Two runs of the same scenario over different wires
// must produce equal audits (Equal ignores nothing — every field is a
// deterministic function of the job stream).
type SettlementAudit struct {
	// Settled counts submissions that reached a terminal state.
	Settled int
	// Committed / RolledBack / Compensated count terminal outcomes.
	Committed   int
	RolledBack  int
	Compensated int
	// Ledger is the final value of every application key, all sites
	// merged. Transfers are fixed deltas and rollbacks compensate
	// exactly, so the final ledger is schedule-independent.
	Ledger map[string]metric.Value
	// Total is the ledger sum; Conserved asserts it equals the seeded
	// initial total (no value created or destroyed by the wire).
	Total     metric.Value
	Conserved bool
	// AppliedMarkers / CompMarkers / RolledMarkers count the durable
	// exactly-once markers across all sites: one per committed piece,
	// one per committed compensation, one per rollback decision.
	AppliedMarkers int
	CompMarkers    int
	RolledMarkers  int
	// EpsilonOK reports every result's imported inconsistency within
	// its program's declared ε-spec (trivially true without DC).
	EpsilonOK bool
}

// Equal reports field-for-field audit equality.
func (a *SettlementAudit) Equal(b *SettlementAudit) bool {
	if a.Settled != b.Settled || a.Committed != b.Committed ||
		a.RolledBack != b.RolledBack || a.Compensated != b.Compensated ||
		a.Total != b.Total || a.Conserved != b.Conserved ||
		a.AppliedMarkers != b.AppliedMarkers || a.CompMarkers != b.CompMarkers ||
		a.RolledMarkers != b.RolledMarkers || a.EpsilonOK != b.EpsilonOK ||
		len(a.Ledger) != len(b.Ledger) {
		return false
	}
	for k, v := range a.Ledger {
		if b.Ledger[k] != v {
			return false
		}
	}
	return true
}

// Diff renders the first differing fields (empty when equal) for test
// failure messages.
func (a *SettlementAudit) Diff(b *SettlementAudit) string {
	var d []string
	add := func(f string, x, y any) { d = append(d, fmt.Sprintf("%s: %v vs %v", f, x, y)) }
	if a.Settled != b.Settled {
		add("settled", a.Settled, b.Settled)
	}
	if a.Committed != b.Committed {
		add("committed", a.Committed, b.Committed)
	}
	if a.RolledBack != b.RolledBack {
		add("rolledback", a.RolledBack, b.RolledBack)
	}
	if a.Compensated != b.Compensated {
		add("compensated", a.Compensated, b.Compensated)
	}
	if a.Total != b.Total {
		add("total", a.Total, b.Total)
	}
	if a.Conserved != b.Conserved {
		add("conserved", a.Conserved, b.Conserved)
	}
	if a.AppliedMarkers != b.AppliedMarkers {
		add("applied-markers", a.AppliedMarkers, b.AppliedMarkers)
	}
	if a.CompMarkers != b.CompMarkers {
		add("comp-markers", a.CompMarkers, b.CompMarkers)
	}
	if a.RolledMarkers != b.RolledMarkers {
		add("rolled-markers", a.RolledMarkers, b.RolledMarkers)
	}
	if a.EpsilonOK != b.EpsilonOK {
		add("epsilon-ok", a.EpsilonOK, b.EpsilonOK)
	}
	keys := make([]string, 0, len(a.Ledger))
	for k := range a.Ledger {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a.Ledger[k] != b.Ledger[k] {
			add("ledger["+k+"]", a.Ledger[k], b.Ledger[k])
		}
	}
	for k := range b.Ledger {
		if _, ok := a.Ledger[k]; !ok {
			add("ledger["+k+"]", "<absent>", b.Ledger[k])
		}
	}
	return strings.Join(d, "; ")
}

// conformSites is the fixed three-site topology of the conformance job
// stream.
var conformSites = []simnet.SiteID{"NY", "LA", "CHI"}

// NewLoopbackNet builds a TCP transport hosting all three conformance
// sites in this process, every frame crossing a real loopback socket.
func NewLoopbackNet(seed int64, loss float64, latency time.Duration, jitter float64) *transport.Net {
	listen := make(map[simnet.SiteID]string, len(conformSites))
	for _, s := range conformSites {
		listen[s] = "127.0.0.1:0"
	}
	return transport.New(transport.Config{
		Listen:   listen,
		Seed:     seed,
		LossRate: loss,
		Latency:  latency,
		Jitter:   jitter,
	})
}

// conformPrograms declares the conformance job stream: per family, a
// two-piece transfer (NY→LA), a three-piece chain (NY→LA→CHI), and a
// compensable program whose final piece always hits its rollback
// statement — committed predecessors must be undone by inverse pieces.
// Every outcome is decided by program text alone, never by timing, so
// the terminal audit is transport-independent.
func conformPrograms(families, txns int, useDC bool) (map[simnet.SiteID]map[storage.Key]metric.Value, []*txn.Program, metric.Value) {
	perKey := metric.Value(10 * txns)
	initial := map[simnet.SiteID]map[storage.Key]metric.Value{
		"NY": {}, "LA": {}, "CHI": {},
	}
	var programs []*txn.Program
	for f := 0; f < families; f++ {
		ny := storage.Key(fmt.Sprintf("ny:A%d", f))
		la := storage.Key(fmt.Sprintf("la:B%d", f))
		chi := storage.Key(fmt.Sprintf("chi:C%d", f))
		initial["NY"][ny] = perKey
		initial["LA"][la] = perKey
		initial["CHI"][chi] = perKey
		programs = append(programs,
			txn.MustProgram(fmt.Sprintf("conform-pair-%d", f),
				txn.AddOp(ny, -2),
				txn.AddOp(la, 2),
			),
			txn.MustProgram(fmt.Sprintf("conform-chain-%d", f),
				txn.AddOp(ny, -3),
				txn.AddOp(la, 1),
				txn.AddOp(chi, 2),
			),
			// The rollback statement rides the last piece: pieces 0 and 1
			// commit first (the chain dependency), then CHI's predicate
			// fires unconditionally and their deltas must be compensated
			// away. Net ledger effect: zero.
			txn.MustProgram(fmt.Sprintf("conform-reject-%d", f),
				txn.AddOp(ny, -5),
				txn.AddOp(la, 5),
				txn.WithAbortIf(txn.AddOp(chi, 1), func(metric.Value) bool { return true }),
			),
		)
	}
	if useDC {
		// Generous budgets: the audit checks the accounting (imported ≤
		// spec), not refusal behavior.
		eps := metric.Fuzz(16 * txns * families)
		spec := metric.Spec{Import: metric.LimitOf(eps), Export: metric.LimitOf(eps)}
		for i, p := range programs {
			programs[i] = p.WithSpec(spec)
		}
	}
	total := metric.Value(len(conformSites)*families) * perKey
	return initial, programs, total
}

// RunNetConformance executes the scenario's job stream over the given
// wire (nil = the in-process simnet built from the scenario knobs) and
// returns the settlement audit.
func RunNetConformance(sc NetScenario, netw simnet.Net) (*SettlementAudit, error) {
	const families = 2
	initial, programs, total := conformPrograms(families, sc.Txns, sc.UseDC)
	c, err := site.NewCluster(site.Config{
		Strategy:          site.ChoppedQueues,
		UseDC:             sc.UseDC,
		Placement:         distPlacement,
		Initial:           initial,
		Net:               netw,
		Latency:           sc.Latency,
		Jitter:            sc.Jitter,
		LossRate:          sc.LossRate,
		Seed:              sc.Seed,
		RetransmitEvery:   5 * time.Millisecond,
		AllowCompensation: true,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.RegisterPrograms(programs); err != nil {
		return nil, err
	}

	var sched *fault.Schedule
	if sc.Partition {
		// Cut NY–LA before the first submission and heal 150ms in: every
		// cross-link piece activation must park in its recoverable queue
		// through the outage and settle after the heal, on both wires.
		c.SetPartitioned("NY", "LA", true)
		sched = fault.NewSchedule(sc.Seed).HealAt(150*time.Millisecond, "NY", "LA")
		sched.Run(c)
		defer sched.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	audit := &SettlementAudit{EpsilonOK: true}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	// Each submitter drains a strided slice of the job stream: every
	// program class runs sc.Txns times regardless of submitter count.
	const submitters = 4
	jobs := make(chan int)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ti := range jobs {
				res, err := c.Submit(ctx, ti)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = err
					}
				default:
					audit.Settled++
					if res.Committed {
						audit.Committed++
					}
					if res.RolledBack {
						audit.RolledBack++
					}
					if res.Compensated {
						audit.Compensated++
					}
					if sc.UseDC && !programs[ti].Spec.Import.Allows(res.Imported) {
						audit.EpsilonOK = false
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < sc.Txns; i++ {
		for ti := range programs {
			jobs <- ti
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Quiesce: settlement reports have all folded (Submit returned), but
	// final acks/retransmissions may still be in flight; the marker
	// audit below reads durable stores, which no ack can change, so a
	// short idle poll suffices.
	deadline := time.Now().Add(30 * time.Second)
	for {
		idle := true
		for _, id := range conformSites {
			if !c.Site(id).QueuesIdle() {
				idle = false
				break
			}
		}
		if idle || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	audit.Ledger = make(map[string]metric.Value)
	for _, id := range conformSites {
		st := c.Site(id).Store
		for _, key := range st.Keys() {
			name := string(key)
			switch {
			case strings.HasPrefix(name, "__applied/"):
				audit.AppliedMarkers++
			case strings.HasPrefix(name, "__comp/"):
				audit.CompMarkers++
			case strings.HasPrefix(name, "__rolled/"):
				audit.RolledMarkers++
			default:
				v := st.Get(key)
				audit.Ledger[name] = v
				audit.Total += v
			}
		}
	}
	audit.Conserved = audit.Total == total
	return audit, nil
}
