package experiments

import (
	"testing"
	"time"
)

// TestNetConformance is the transport-twin equivalence table: for each
// scenario, one seeded run over the in-process simnet and one over real
// TCP loopback sockets must produce identical settlement audits —
// outcome counts, final ledger, conservation, exactly-once marker
// counts, and the ε bound. The expected values are also asserted
// absolutely (they are pure functions of the job stream), so a bug that
// breaks BOTH transports the same way still fails.
func TestNetConformance(t *testing.T) {
	scenarios := []NetScenario{
		{Name: "clean-dc", Txns: 6, Seed: 11, UseDC: true},
		{Name: "loss", Txns: 5, Seed: 7, LossRate: 0.05},
		{Name: "latency", Txns: 5, Seed: 3, Latency: 2 * time.Millisecond, Jitter: 0.5},
		{Name: "partition", Txns: 4, Seed: 19, Partition: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			sim, err := RunNetConformance(sc, nil)
			if err != nil {
				t.Fatalf("simnet run: %v", err)
			}
			tcp, err := RunNetConformance(sc, NewLoopbackNet(sc.Seed, sc.LossRate, sc.Latency, sc.Jitter))
			if err != nil {
				t.Fatalf("tcp run: %v", err)
			}
			if !sim.Equal(tcp) {
				t.Fatalf("transports disagree on settlement:\n%s", sim.Diff(tcp))
			}

			// Absolute expectations, derived from the job stream: per
			// family (2) and per round (Txns), the pair and chain commit
			// (2+3 pieces) and the reject rolls back with pieces 0,1
			// committed then compensated.
			T := sc.Txns
			want := SettlementAudit{
				Settled:        6 * T,
				Committed:      4 * T,
				RolledBack:     2 * T,
				Compensated:    2 * T,
				AppliedMarkers: 14 * T,
				CompMarkers:    4 * T,
				RolledMarkers:  2 * T,
			}
			for name, got := range map[string][2]int{
				"settled":         {sim.Settled, want.Settled},
				"committed":       {sim.Committed, want.Committed},
				"rolledback":      {sim.RolledBack, want.RolledBack},
				"compensated":     {sim.Compensated, want.Compensated},
				"applied-markers": {sim.AppliedMarkers, want.AppliedMarkers},
				"comp-markers":    {sim.CompMarkers, want.CompMarkers},
				"rolled-markers":  {sim.RolledMarkers, want.RolledMarkers},
			} {
				if got[0] != got[1] {
					t.Errorf("%s = %d, want %d", name, got[0], got[1])
				}
			}
			if !sim.Conserved {
				t.Errorf("value not conserved: total %d", sim.Total)
			}
			if !sim.EpsilonOK {
				t.Errorf("imported inconsistency exceeded a program's ε-spec")
			}
		})
	}
}
