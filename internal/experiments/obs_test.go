package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"asynctp/internal/explore"
	"asynctp/internal/obs"
)

// distCanonicalTrace drives the full distributed pipeline (chopped
// queues, DC, audits) with a single sequential submitter — the
// trace-deterministic configuration — and returns the canonical export.
func distCanonicalTrace(t *testing.T) []byte {
	t.Helper()
	tr := obs.NewTracer(0)
	plane := obs.NewPlane(tr, obs.NewLedger(), nil)
	res, err := RunDistBench(DistBenchConfig{
		Variant:    VariantBatched,
		Latency:    200 * time.Microsecond,
		Seed:       7,
		Workers:    2,
		Submitters: 1,
		Txns:       12,
		Families:   4,
		UseDC:      true,
		Audits:     3,
		Plane:      plane,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Conserved {
		t.Fatal("money not conserved")
	}
	var buf bytes.Buffer
	if err := obs.ExportCanonical(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistPipelineCanonicalTraceDeterministic checks the acceptance
// claim end to end: a seeded distbench run's canonical Chrome trace
// shows the transaction → piece → lock → DC → queue → site span
// hierarchy and is byte-identical across two same-seed runs.
func TestDistPipelineCanonicalTraceDeterministic(t *testing.T) {
	a := distCanonicalTrace(t)
	b := distCanonicalTrace(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("distributed canonical exports differ across same-seed runs: len %d vs %d", len(a), len(b))
	}
	s := string(a)
	for _, want := range []string{
		`"cat":"txn"`, `"cat":"piece"`, `"cat":"lock"`,
		`"cat":"dc"`, `"cat":"queue"`, `"cat":"site"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("distributed canonical export missing %s events", want)
		}
	}
}

// TestLedgerReconciliationMisbudget is the ε-provenance control pair:
// the correctly budgeted run's ledger must charge every query within
// its declared budget, and under BudgetScale=8 the ledger's recorded
// charges must exceed the declared ε on (at least) every query the
// oracle flags — provenance agrees with ground truth about which
// queries went over and why.
func TestLedgerReconciliationMisbudget(t *testing.T) {
	cfg := ConformanceConfig{Seed: 1, Seeds: 8, Budget: 100}.withDefaults()

	good := explore.MisbudgetScenario(1)
	good.Ledger = true
	gRow, err := sweepScenario(good, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !gRow.allOK {
		t.Errorf("correctly budgeted control flagged by the oracle (%d violations)", gRow.violations)
	}
	if gRow.ledgerOver != 0 {
		t.Errorf("correctly budgeted control: ledger flagged %d runs over budget, want 0", gRow.ledgerOver)
	}

	bad := explore.MisbudgetScenario(8)
	bad.Ledger = true
	bRow, err := sweepScenario(bad, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bRow.allOK {
		t.Fatal("mis-budgeted control not caught by the oracle — test needs a hotter schedule")
	}
	if bRow.ledgerOver == 0 {
		t.Error("mis-budgeted control: ledger never flagged an over-budget query")
	}
	if bRow.flaggedMissed != 0 {
		t.Errorf("%d oracle-flagged queries were NOT over budget in the ledger — provenance lost charges",
			bRow.flaggedMissed)
	}
	if bRow.recon == nil {
		t.Fatal("no reconciliation captured")
	}
	var b strings.Builder
	bRow.recon.WriteTable(&b)
	if !strings.Contains(b.String(), "OVER-BUDGET") {
		t.Errorf("representative reconciliation table shows no OVER-BUDGET row:\n%s", b.String())
	}
}
