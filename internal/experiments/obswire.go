package experiments

import "asynctp/internal/obs"

// obsPlane is the package-default observability plane. The experiment
// entry points (Table1, Figure1..3, MethodComparison, EngineComparison,
// the distributed E2/E3 runs) predate the plane and keep their
// signatures; the bench CLIs (bankbench, distsim) thread their
// -trace/-metrics plane through here instead.
var obsPlane *obs.Plane

// SetObsPlane installs the plane every subsequently built runner or
// cluster in this package observes. Call it once, before running
// experiments, from the main goroutine. A nil plane (the default) keeps
// the instrumented pipeline's zero-cost disabled paths.
func SetObsPlane(p *obs.Plane) { obsPlane = p }
