package experiments

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/site"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// spanPlane builds a plane with only the distributed span store armed.
func spanPlane(proc string) *obs.Plane {
	p := obs.NewPlane(nil, nil, nil)
	p.EnableSpans(proc, 0)
	return p
}

// runSpanConform drives the conformance job stream (pair, chain, and
// compensating reject programs across three sites) sequentially over
// the given wire and returns the process's merged span set.
func runSpanConform(t *testing.T, seed int64, txns int, tcp bool) *obs.Merged {
	t.Helper()
	initial, programs, total := conformPrograms(2, txns, false)
	plane := spanPlane("p0")
	cfg := site.Config{
		Strategy:          site.ChoppedQueues,
		Placement:         distPlacement,
		Initial:           initial,
		Seed:              seed,
		RetransmitEvery:   5 * time.Millisecond,
		AllowCompensation: true,
		Obs:               plane,
	}
	if tcp {
		cfg.Net = NewLoopbackNet(seed, 0, 0, 0)
	}
	c, err := site.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RegisterPrograms(programs); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < txns; i++ {
		for ti := range programs {
			if _, err := c.Submit(ctx, ti); err != nil {
				t.Fatalf("submit program %d round %d: %v", ti, i, err)
			}
		}
	}
	// Quiesce before dumping: the last settlement acks (and their spans)
	// may still be in flight when the final Submit returns.
	deadline := time.Now().Add(30 * time.Second)
	for {
		idle := true
		for _, id := range conformSites {
			if !c.Site(id).QueuesIdle() {
				idle = false
				break
			}
		}
		if idle || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	var sum metric.Value
	for _, id := range conformSites {
		s := c.Site(id)
		for _, k := range s.Store.Keys() {
			if len(k) >= 2 && k[:2] == "__" {
				continue
			}
			sum += s.Store.Get(k)
		}
	}
	if sum != total {
		t.Fatalf("value not conserved: total %d, want %d", sum, total)
	}
	return obs.MergeSpans([]obs.ProcSpans{plane.Spans.Dump()})
}

// TestSpanTreesConnectedSimAndTCP is the wire-independence claim: a
// sequential conformance run — including compensating rollbacks — must
// produce one fully connected span tree per transaction with zero
// orphans, over the in-process simnet AND over real TCP loopback
// sockets, and the two wires' canonical span exports must be
// byte-identical (structural spans are a pure function of the job
// stream, not of the transport).
func TestSpanTreesConnectedSimAndTCP(t *testing.T) {
	const txns = 4
	exports := map[string][]byte{}
	for _, wire := range []string{"sim", "tcp"} {
		m := runSpanConform(t, 11, txns, wire == "tcp")
		if len(m.Traces) == 0 {
			t.Fatalf("%s: no traces recorded", wire)
		}
		for _, mt := range m.Traces {
			if !mt.Connected {
				t.Errorf("%s: trace %d not connected (%d spans, %d orphans, root %d)",
					wire, mt.Trace, len(mt.Spans), mt.Orphans, mt.Root)
			}
		}
		if m.Orphans != 0 {
			t.Errorf("%s: %d orphaned spans, want 0", wire, m.Orphans)
		}
		r := obs.AnalyzeCriticalPath(m, 0)
		if r.Attributed != r.Traces {
			t.Errorf("%s: attributed %d of %d traces", wire, r.Attributed, r.Traces)
		}
		if r.MaxSumErr > 0.05 {
			t.Errorf("%s: phase sums off by %.2f%%, tolerance 5%%", wire, 100*r.MaxSumErr)
		}
		var buf bytes.Buffer
		if err := obs.ExportCanonicalSpans(&buf, m); err != nil {
			t.Fatal(err)
		}
		exports[wire] = buf.Bytes()
	}
	if !bytes.Equal(exports["sim"], exports["tcp"]) {
		t.Errorf("canonical span exports differ between sim and tcp wires: len %d vs %d",
			len(exports["sim"]), len(exports["tcp"]))
	}
}

// TestSpanExportDeterministicAcrossRuns repeats the seeded sim run and
// requires byte-identical canonical exports: the export must not leak
// scheduling (instance IDs, timestamps, Lamport clocks).
func TestSpanExportDeterministicAcrossRuns(t *testing.T) {
	export := func() []byte {
		m := runSpanConform(t, 7, 3, false)
		var buf bytes.Buffer
		if err := obs.ExportCanonicalSpans(&buf, m); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical span exports differ across same-seed runs: len %d vs %d", len(a), len(b))
	}
}

// TestAttributionSumInvariantAcrossEngines is the property test behind
// the critical-path report: for every settled transaction, the
// per-phase durations must sum to the span tree's end-to-end duration
// (within 5% tolerance for interval clamping), across the locking,
// optimistic, and repair engines under real concurrency.
func TestAttributionSumInvariantAcrossEngines(t *testing.T) {
	engines := []struct {
		name   string
		engine core.EngineKind
	}{
		{"locking", core.EngineLocking},
		{"optimistic", core.EngineOptimistic},
		{"repair", core.EngineRepair},
	}
	for _, e := range engines {
		e := e
		t.Run(e.name, func(t *testing.T) {
			t.Parallel()
			store := storage.NewFrom(map[storage.Key]metric.Value{"X": 5000, "Y": 5000})
			xfer := txn.MustProgram("xfer", txn.AddOp("X", -10), txn.AddOp("Y", 10))
			audit := txn.MustProgram("audit", txn.ReadOp("X"), txn.ReadOp("Y"))
			plane := spanPlane("p0")
			r, err := core.NewRunner(core.Config{
				Method:   core.BaselineSRCC,
				Store:    store,
				Programs: []*txn.Program{xfer, audit},
				Counts:   []int{30, 10},
				Engine:   e.engine,
				Obs:      plane,
			})
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			var wg sync.WaitGroup
			errs := make(chan error, 40)
			submit := func(ti int) {
				defer wg.Done()
				if _, err := r.Submit(ctx, ti); err != nil {
					errs <- fmt.Errorf("program %d: %w", ti, err)
				}
			}
			for i := 0; i < 30; i++ {
				wg.Add(1)
				go submit(0)
			}
			for i := 0; i < 10; i++ {
				wg.Add(1)
				go submit(1)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			m := obs.MergeSpans([]obs.ProcSpans{plane.Spans.Dump()})
			rep := obs.AnalyzeCriticalPath(m, 0)
			if rep.Attributed != 40 {
				t.Errorf("attributed %d traces, want 40", rep.Attributed)
			}
			if rep.MaxSumErr > 0.05 {
				t.Errorf("phase sums off by %.2f%%, tolerance 5%%", 100*rep.MaxSumErr)
			}
			for _, a := range rep.All {
				if a.Sum() == 0 {
					t.Errorf("trace %d attributed nothing across %v total", a.Trace, a.Total)
				}
			}
		})
	}
}
