package experiments

import (
	"context"
	"fmt"
	"time"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/workload"
)

// table1Cell is one cell of the off-line × on-line matrix.
type table1Cell struct {
	method  core.Method
	offline string
	online  string
	paper   string // the class Table 1 claims
}

// Table1 regenerates Table 1 empirically: each cell's method runs the
// same declared banking stream with history recording; the recorded
// execution is then classified — serializable with respect to the
// original transactions (SR), or bounded-inconsistency (ESR) with the
// observed maximum query deviation within ε.
func Table1(seed int64) (*Report, error) {
	cells := []table1Cell{
		{method: core.SRChopCC, offline: "SR-chopping", online: "CC", paper: "SR"},
		{method: core.Method1SRChopDC, offline: "SR-chopping", online: "DC", paper: "ESR1"},
		{method: core.Method2ESRChopCC, offline: "ESR-chopping", online: "CC", paper: "ESR2"},
		{method: core.Method3ESRChopDC, offline: "ESR-chopping", online: "DC", paper: "ESR3"},
	}
	const (
		epsilon  = 6000
		xferAmt  = 100
		xferN    = 25
		auditN   = 10
		transfer = 2
	)
	w, err := workload.NewBank(workload.BankConfig{
		Branches: 1, AccountsPerBranch: 4,
		InitialBalance: 100000, TransferAmount: xferAmt,
		TransferTypes: transfer, TransferCount: xferN, AuditCount: auditN,
		Epsilon: epsilon, IntraBranch: true, Seed: seed,
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:    "T1",
		Title: "Table 1 — off-line chopping strategy × on-line control, classified empirically",
		Table: newTable("off-line", "on-line", "paper says", "pieces", "serializable w.r.t. T", "max query deviation", "ε", "verdict"),
	}
	for _, cell := range cells {
		cfg := workload.ConfigFor(w, cell.method, core.Static, true)
		// Operations take time while locks are held, so concurrent
		// interleavings (and hence fuzzy reads under DC) actually occur.
		cfg.OpDelay = 200 * time.Microsecond
		cfg.Obs = obsPlane
		r, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		res, err := workload.Run(ctx, r, w, 12, seed)
		cancel()
		if err != nil {
			return nil, fmt.Errorf("cell %s: %w", cell.method, err)
		}
		grouped := r.Recorder().CheckGrouped(r.GroupOf())
		pieces := 0
		for ti := 0; ti < r.Set().NumTxns(); ti++ {
			pieces += r.Set().Chopping(ti).NumPieces()
		}
		verdict := classify(grouped.Serializable, res.MaxDeviation, epsilon)
		rep.Table.AddRow(
			cell.offline, cell.online, cell.paper,
			fmt.Sprintf("%d", pieces),
			fmt.Sprintf("%v", grouped.Serializable),
			fmt.Sprintf("%d", res.MaxDeviation),
			fmt.Sprintf("%d", epsilon),
			verdict,
		)
		switch cell.paper {
		case "SR":
			rep.Notes = append(rep.Notes, check(grouped.Serializable && res.MaxDeviation == 0,
				fmt.Sprintf("%s/%s executes serializably w.r.t. the originals", cell.offline, cell.online)))
		default:
			rep.Notes = append(rep.Notes, check(res.MaxDeviation <= epsilon,
				fmt.Sprintf("%s/%s keeps every query within ε=%d (observed %d)",
					cell.offline, cell.online, epsilon, res.MaxDeviation)))
		}
	}
	return rep, nil
}

// classify labels an observed execution.
func classify(serializable bool, maxDev metric.Fuzz, epsilon metric.Fuzz) string {
	switch {
	case serializable && maxDev == 0:
		return "SR"
	case maxDev <= epsilon:
		return "ESR (bounded)"
	default:
		return "VIOLATION"
	}
}
