package explore

import (
	"context"
	"fmt"
	"hash/fnv"

	"asynctp/internal/core"
	"asynctp/internal/history"
	"asynctp/internal/metric"
	"asynctp/internal/obs"
	"asynctp/internal/oracle"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Scenario is one declared conformance workload: a job stream plus the
// method × engine combination to run it under.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Initial is the starting database state.
	Initial map[storage.Key]metric.Value
	// Programs is the declared transaction mix (each carries its ε-spec).
	Programs []*txn.Program
	// Submissions lists the instances to run, as indices into Programs.
	// Each submission becomes one scheduled worker.
	Submissions []int
	// Method, Distribution, Engine select the execution stack.
	Method       core.Method
	Distribution core.Distribution
	Engine       core.EngineKind
	// BudgetScale is the test-only mis-budget knob (core.Config).
	BudgetScale int
	// LockStripes overrides the lock manager's stripe count
	// (core.Config.LockStripes). Zero uses the default. The determinism
	// regression sweep runs the same seeds at 1 and at many stripes and
	// requires byte-identical fingerprints.
	LockStripes int
	// Ledger attaches a per-run ε-provenance ledger (obs.Ledger) and
	// reconciles it against the oracle's verdicts: Result.Reconciliation
	// then carries the per-query budgeted / charged / measured rows.
	Ledger bool
	// Base, when non-nil, contributes a shared tracer and metrics
	// registry to every run's plane (cmd/conformance wires it from
	// -trace/-metrics). The ledger stays per-run: reconciliation needs
	// one run's charges against that run's oracle verdicts.
	Base *obs.Plane
}

// Result is one explored run, fully checked.
type Result struct {
	// Scenario and Seed identify the run; one (scenario, seed, strategy)
	// triple reproduces one interleaving exactly.
	Scenario string
	Seed     int64
	Strategy Strategy
	// Steps is the number of scheduling decisions the run took.
	Steps int
	// Instances are the per-submission outcomes, in submission order.
	Instances []*core.InstanceResult
	// InstanceErrs holds per-submission errors (nil when clean).
	InstanceErrs []error
	// Report is the serial-replay ε-oracle's finding.
	Report *oracle.Report
	// Grouped is the grouped conflict-graph analysis of the same history.
	Grouped history.GroupedAnalysis
	// Reconciliation is the ledger-vs-oracle per-query view (nil unless
	// Scenario.Ledger).
	Reconciliation *obs.Reconciliation
	// RepairMismatch is the repair engine's first self-check failure:
	// every explored run executes with core.Config.VerifyRepairs, so a
	// repaired outcome that differs from a fresh full re-execution is
	// reported here ("" when clean or not a repair engine).
	RepairMismatch string
	// fingerprint material
	hash uint64
}

// Fingerprint returns a stable digest of the recorded history and the
// oracle verdict: two runs with equal fingerprints observed identical
// interleavings. The determinism regression check compares fingerprints
// across repeated runs of one seed.
func (r *Result) Fingerprint() string {
	return fmt.Sprintf("%s/seed=%d/%s/steps=%d/h=%016x/ok=%v",
		r.Scenario, r.Seed, r.Strategy, r.Steps, r.hash, r.Report.OK)
}

// Run executes sc once under the deterministic scheduler with the given
// seed and strategy, then checks the recorded history with the oracle
// and the grouped conflict checker.
func Run(sc Scenario, seed int64, strategy Strategy, ocfg oracle.Config) (*Result, error) {
	store := storage.NewFrom(sc.Initial)
	initial := store.Snapshot()
	sched := NewScheduler(seed, strategy)

	counts := make([]int, len(sc.Programs))
	for _, ti := range sc.Submissions {
		if ti < 0 || ti >= len(sc.Programs) {
			return nil, fmt.Errorf("explore: submission index %d out of range", ti)
		}
		counts[ti]++
	}
	for i := range counts {
		if counts[i] == 0 {
			counts[i] = 1 // declared but unsubmitted types still need a count
		}
	}
	var plane *obs.Plane
	if sc.Ledger || sc.Base != nil {
		var tr *obs.Tracer
		var reg *obs.Registry
		if sc.Base != nil {
			tr, reg = sc.Base.Tracer, sc.Base.Metrics
		}
		var lg *obs.Ledger
		if sc.Ledger {
			lg = obs.NewLedger()
		}
		plane = obs.NewPlane(tr, lg, reg)
	}
	runner, err := core.NewRunner(core.Config{
		Method:           sc.Method,
		Distribution:     sc.Distribution,
		Store:            store,
		Programs:         sc.Programs,
		Counts:           counts,
		Record:           true,
		Engine:           sc.Engine,
		StepHook:         sched,
		WaitObserver:     sched,
		SequentialPieces: true,
		BudgetScale:      sc.BudgetScale,
		LockStripes:      sc.LockStripes,
		Obs:              plane,
		VerifyRepairs:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("explore: %s: %w", sc.Name, err)
	}

	res := &Result{
		Scenario:     sc.Name,
		Seed:         seed,
		Strategy:     strategy,
		Instances:    make([]*core.InstanceResult, len(sc.Submissions)),
		InstanceErrs: make([]error, len(sc.Submissions)),
	}
	ctx := context.Background()
	for i, ti := range sc.Submissions {
		i, ti := i, ti
		sched.Go(func() {
			out, err := runner.Submit(ctx, ti)
			// Safe without extra locking: exactly one worker runs at a
			// time and Run() synchronizes on the scheduler mutex.
			res.Instances[i] = out
			res.InstanceErrs[i] = err
		})
	}
	if err := sched.Run(); err != nil {
		return nil, fmt.Errorf("explore: %s seed %d: %w", sc.Name, seed, err)
	}
	res.Steps = sched.Steps()

	// Map each submission's group to its ORIGINAL program for the oracle.
	groupOf := runner.GroupOf()
	programs := make(map[history.Group]*txn.Program)
	for i, ti := range sc.Submissions {
		out := res.Instances[i]
		if out == nil || len(out.Outcomes) == 0 || out.Outcomes[0] == nil {
			continue
		}
		if g, ok := groupOf[out.Outcomes[0].Owner]; ok {
			programs[g] = sc.Programs[ti]
		}
	}
	txns, ops := runner.Recorder().Snapshot()
	rep, err := oracle.Check(oracle.Input{
		Txns: txns, Ops: ops,
		GroupOf: groupOf, Programs: programs, Initial: initial,
	}, ocfg)
	if err != nil {
		return nil, fmt.Errorf("explore: %s seed %d: oracle: %w", sc.Name, seed, err)
	}
	res.Report = rep
	res.Grouped = runner.Recorder().CheckGrouped(groupOf)
	if plane != nil {
		res.Reconciliation = plane.Ledger.Reconcile(rep)
	}
	res.RepairMismatch = runner.RepairVerifyFailure()
	res.hash = historyHash(ops)
	return res, nil
}

// historyHash digests the recorded operation sequence.
func historyHash(ops []history.Op) uint64 {
	h := fnv.New64a()
	for _, op := range ops {
		fmt.Fprintf(h, "%d:%d:%d:%s:%d:%d;", op.Seq, op.Owner, op.Kind, op.Key, op.Value, op.Old)
	}
	return h.Sum64()
}

// Sweep runs sc over seeds [1, seeds] with the given strategy and
// returns every result. It stops early and returns what it has when a
// run fails mechanically (scheduler error), never on an oracle FAIL —
// collecting violations is the point.
func Sweep(sc Scenario, seeds int, strategy Strategy, ocfg oracle.Config) ([]*Result, error) {
	var out []*Result
	for seed := int64(1); seed <= int64(seeds); seed++ {
		r, err := Run(sc, seed, strategy, ocfg)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
