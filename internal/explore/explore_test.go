package explore

import (
	"testing"

	"asynctp/internal/core"
	"asynctp/internal/oracle"
)

func run(t *testing.T, sc Scenario, seed int64, strategy Strategy) *Result {
	t.Helper()
	res, err := Run(sc, seed, strategy, oracle.Config{Seed: seed})
	if err != nil {
		t.Fatalf("Run(%s, seed %d): %v", sc.Name, seed, err)
	}
	return res
}

func TestBankConformsAcrossMethods(t *testing.T) {
	for _, method := range core.Methods() {
		sc := BankScenario(method, core.EngineLocking, core.Static, 600)
		for seed := int64(1); seed <= 5; seed++ {
			res := run(t, sc, seed, StrategyConflict)
			if !res.Report.OK {
				t.Errorf("%s seed %d: oracle FAIL: %s", sc.Name, seed, res.Report)
			}
			for i, err := range res.InstanceErrs {
				if err != nil {
					t.Errorf("%s seed %d: instance %d: %v", sc.Name, seed, i, err)
				}
			}
		}
	}
}

func TestBankConformsAcrossEngines(t *testing.T) {
	for _, engine := range []core.EngineKind{core.EngineOptimistic, core.EngineTimestamp} {
		for _, method := range []core.Method{core.BaselineESRDC, core.Method1SRChopDC} {
			sc := BankScenario(method, engine, core.Static, 600)
			for seed := int64(1); seed <= 5; seed++ {
				res := run(t, sc, seed, StrategyConflict)
				if !res.Report.OK {
					t.Errorf("%s seed %d: oracle FAIL: %s", sc.Name, seed, res.Report)
				}
			}
		}
	}
}

func TestDynamicDistributionConforms(t *testing.T) {
	sc := BankScenario(core.Method3ESRChopDC, core.EngineLocking, core.Dynamic, 600)
	for seed := int64(1); seed <= 5; seed++ {
		res := run(t, sc, seed, StrategyRandom)
		if !res.Report.OK {
			t.Errorf("%s seed %d: oracle FAIL: %s", sc.Name, seed, res.Report)
		}
	}
}

func TestOneSeedOneInterleaving(t *testing.T) {
	sc := BankScenario(core.Method1SRChopDC, core.EngineLocking, core.Static, 600)
	first := run(t, sc, 7, StrategyConflict)
	for i := 0; i < 4; i++ {
		again := run(t, sc, 7, StrategyConflict)
		if again.Fingerprint() != first.Fingerprint() {
			t.Fatalf("run %d diverged:\n  %s\n  %s", i, again.Fingerprint(), first.Fingerprint())
		}
	}
	// Different seeds should (for this scenario) find different
	// interleavings at least once — otherwise the scheduler isn't
	// actually exploring.
	varied := false
	for seed := int64(1); seed <= 8 && !varied; seed++ {
		if run(t, sc, seed, StrategyConflict).Fingerprint() != first.Fingerprint() {
			varied = true
		}
	}
	if !varied {
		t.Error("8 seeds produced identical interleavings; exploration looks stuck")
	}
}

func TestCorrectBudgetIsNeverFlagged(t *testing.T) {
	sc := MisbudgetScenario(1) // scale 1 = the declared (correct) budgets
	for seed := int64(1); seed <= 10; seed++ {
		res := run(t, sc, seed, StrategyConflict)
		if !res.Report.OK {
			t.Errorf("seed %d: correctly budgeted run flagged: %s", seed, res.Report)
		}
		if res.Report.MaxQueryDivergence > 100 {
			t.Errorf("seed %d: divergence %d exceeds ε=100", seed, res.Report.MaxQueryDivergence)
		}
	}
}

func TestMisbudgetedRunIsCaught(t *testing.T) {
	sc := MisbudgetScenario(8)
	caught := false
	for seed := int64(1); seed <= 20 && !caught; seed++ {
		res := run(t, sc, seed, StrategyConflict)
		if res.Report.OK {
			continue
		}
		caught = true
		viol := res.Report.Violations()
		if len(viol) == 0 || viol[0].Name != "audit" {
			t.Fatalf("seed %d: violation does not name the audit query: %+v", seed, viol)
		}
		if viol[0].Divergence <= 100 {
			t.Fatalf("seed %d: flagged divergence %d not above ε=100", seed, viol[0].Divergence)
		}
	}
	if !caught {
		t.Fatal("mis-budgeted run never caught across 20 seeds")
	}
}
