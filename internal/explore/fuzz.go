package explore

import (
	"fmt"
	"math/rand"

	"asynctp/internal/chop"
	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/oracle"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// The chopping fuzzer has two halves, both driven by one seed:
//
//   - FuzzChoppings cross-checks the biconnected-block SC-cycle
//     analysis and the restricted-piece computation against the
//     brute-force simple-cycle references (chop.ReferenceSCCycle,
//     chop.ReferenceRestricted) over random chopping sets.
//   - FuzzRuns drives random well-specified workloads end to end —
//     random programs, random method × engine × distribution, the
//     deterministic scheduler, the serial-replay ε-oracle — and demands
//     that every run conforms: a correctly budgeted stack must never
//     exceed its declared ε, whatever the workload.

// FuzzStats aggregates one fuzzing campaign.
type FuzzStats struct {
	// Choppings is the number of chopping sets analyzed; WithSCCycle
	// counts those containing an SC-cycle (coverage indicator).
	Choppings   int
	WithSCCycle int
	// Disagreements lists analysis-vs-reference mismatches, one message
	// each. Empty means the fast analysis agrees with brute force.
	Disagreements []string
	// Runs counts end-to-end explorations; Skipped counts workloads the
	// chopping search rejected (no valid ESR/SR chopping — not a bug).
	Runs    int
	Skipped int
	// Failures lists end-to-end conformance failures (oracle FAIL or
	// mechanical error), one message each.
	Failures []string
}

// OK reports whether the campaign found no disagreement and no failure.
func (st *FuzzStats) OK() bool {
	return len(st.Disagreements) == 0 && len(st.Failures) == 0
}

// String summarizes the campaign.
func (st *FuzzStats) String() string {
	verdict := "OK"
	if !st.OK() {
		verdict = "FAIL"
	}
	return fmt.Sprintf("fuzz %s: %d choppings (%d with SC-cycle, %d disagreements), %d runs (%d skipped, %d failures)",
		verdict, st.Choppings, st.WithSCCycle, len(st.Disagreements), st.Runs, st.Skipped, len(st.Failures))
}

var fuzzKeys = []storage.Key{"a", "b", "c", "d"}

// randomProgram builds a random 1..4-op program. Conflicts come from
// TransformOp (non-commuting writes); AddOps commute away and ReadOps
// only conflict with writes — mixing all three exercises every edge
// classification in conflictKeysAndWeight.
func randomProgram(rng *rand.Rand, name string) *txn.Program {
	nOps := rng.Intn(4) + 1
	ops := make([]txn.Op, 0, nOps)
	for oi := 0; oi < nOps; oi++ {
		key := fuzzKeys[rng.Intn(len(fuzzKeys))]
		switch rng.Intn(3) {
		case 0:
			ops = append(ops, txn.ReadOp(key))
		case 1:
			ops = append(ops, txn.AddOp(key, metric.Value(rng.Intn(7)-3)))
		default:
			d := metric.Value(rng.Intn(3) + 1)
			ops = append(ops, txn.TransformOp(key,
				func(v metric.Value) metric.Value { return v + d },
				metric.LimitOf(metric.Fuzz(d))))
		}
	}
	return txn.MustProgram(name, ops...)
}

// randomChopped chops p randomly: whole, finest, or a random cut set.
// Invalid cut sets (rollback-unsafe) fall back to the whole program —
// the point is graph variety, not cut validity.
func randomChopped(rng *rand.Rand, p *txn.Program) *chop.Chopped {
	switch rng.Intn(3) {
	case 0:
		return chop.Whole(p)
	case 1:
		return chop.Finest(p)
	default:
		var cuts []int
		for i := 1; i < len(p.Ops); i++ {
			if rng.Intn(2) == 0 {
				cuts = append(cuts, i)
			}
		}
		c, err := chop.FromCuts(p, cuts)
		if err != nil {
			return chop.Whole(p)
		}
		return c
	}
}

// FuzzChoppings analyzes n random chopping sets and cross-checks the
// SC-cycle verdict and the restricted-piece set against the brute-force
// references. Deterministic per seed.
func FuzzChoppings(seed int64, n int, st *FuzzStats) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		nProgs := rng.Intn(3) + 2
		chopped := make([]*chop.Chopped, nProgs)
		for pi := range chopped {
			chopped[pi] = randomChopped(rng, randomProgram(rng, fmt.Sprintf("p%d", pi)))
		}
		set, err := chop.NewSet(chopped...)
		if err != nil {
			// Programs are well-formed by construction; a Set error is a bug.
			st.Disagreements = append(st.Disagreements,
				fmt.Sprintf("chopping %d: NewSet: %v", i, err))
			continue
		}
		a := chop.Analyze(set)
		st.Choppings++
		if a.HasSCCycle {
			st.WithSCCycle++
		}
		if want := chop.ReferenceSCCycle(a); a.HasSCCycle != want {
			st.Disagreements = append(st.Disagreements,
				fmt.Sprintf("chopping %d: HasSCCycle=%v, reference=%v", i, a.HasSCCycle, want))
		}
		wantR := chop.ReferenceRestricted(a)
		for v := range wantR {
			if a.Restricted[v] != wantR[v] {
				st.Disagreements = append(st.Disagreements,
					fmt.Sprintf("chopping %d: Restricted[%d]=%v, reference=%v",
						i, v, a.Restricted[v], wantR[v]))
			}
		}
	}
}

// fuzzMethods and fuzzEngines are the stacks the end-to-end fuzzer
// samples. Alternative engines only run the DC baselines (they do not
// implement chopping-aware budget assignment).
var fuzzMethods = []core.Method{
	core.BaselineSRCC, core.BaselineESRDC, core.SRChopCC,
	core.Method1SRChopDC, core.Method2ESRChopCC, core.Method3ESRChopDC,
}

// randomScenario builds a random well-specified workload: 2–3 program
// types (updates with full ε-specs, possible read-only queries with
// import-only specs) and 2–4 submissions. ε is sampled generously above
// zero so divergence control has room to work and the conformance claim
// stays non-trivial.
func randomScenario(rng *rand.Rand, name string) Scenario {
	eps := metric.Fuzz(rng.Intn(600) + 200)
	nProgs := rng.Intn(2) + 2
	programs := make([]*txn.Program, nProgs)
	for pi := range programs {
		p := randomProgram(rng, fmt.Sprintf("f%d", pi))
		if p.Class() == txn.Query {
			p = p.WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
		} else {
			p = p.WithSpec(metric.SpecOf(eps))
		}
		programs[pi] = p
	}
	nSubs := rng.Intn(3) + 2
	subs := make([]int, nSubs)
	for i := range subs {
		subs[i] = rng.Intn(nProgs)
	}
	initial := make(map[storage.Key]metric.Value, len(fuzzKeys))
	for _, k := range fuzzKeys {
		initial[k] = metric.Value(rng.Intn(1000) + 100)
	}
	method := fuzzMethods[rng.Intn(len(fuzzMethods))]
	engine := core.EngineLocking
	if !method.UsesChopping() && rng.Intn(3) == 0 {
		engine = []core.EngineKind{
			core.EngineOptimistic, core.EngineTimestamp,
			core.EngineRepair, core.EngineRepairSkip,
		}[rng.Intn(4)]
	}
	dist := core.Static
	if method.UsesDC() && rng.Intn(2) == 0 {
		dist = core.Dynamic
	}
	return Scenario{
		Name:         name,
		Initial:      initial,
		Programs:     programs,
		Submissions:  subs,
		Method:       method,
		Distribution: dist,
		Engine:       engine,
	}
}

// FuzzRuns drives n random workloads end to end under the deterministic
// scheduler and demands oracle conformance for every one. Workloads the
// chopping search rejects (no valid ESR/SR chopping exists) are skipped
// and counted; everything else must conform. Deterministic per seed.
func FuzzRuns(seed int64, n int, st *FuzzStats) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		sc := randomScenario(rng, fmt.Sprintf("fuzz/%d", i))
		runSeed := rng.Int63n(1 << 30)
		strategy := StrategyConflict
		if rng.Intn(3) == 0 {
			strategy = StrategyRandom
		}
		res, err := Run(sc, runSeed, strategy, oracle.Config{Seed: runSeed})
		if err != nil {
			// The chopping search legitimately rejects some streams (e.g.
			// update-update SC-cycles with no safe cut). That is the
			// analyzer doing its job, not a conformance failure.
			st.Skipped++
			continue
		}
		st.Runs++
		if !res.Report.OK {
			st.Failures = append(st.Failures,
				fmt.Sprintf("run %d (%s/%s/%s seed %d): %s",
					i, sc.Method, sc.Engine, sc.Distribution, runSeed, res.Report))
		}
		if !res.Grouped.Serializable && sc.Method == core.BaselineSRCC {
			st.Failures = append(st.Failures,
				fmt.Sprintf("run %d: SRCC produced non-serializable grouped history", i))
		}
		if res.RepairMismatch != "" {
			st.Failures = append(st.Failures,
				fmt.Sprintf("run %d (%s/%s seed %d): repair verify: %s",
					i, sc.Method, sc.Engine, runSeed, res.RepairMismatch))
		}
	}
}

// Fuzz runs the full campaign: choppings cross-checks plus runs
// end-to-end explorations, all derived from one seed.
func Fuzz(seed int64, choppings, runs int) *FuzzStats {
	st := &FuzzStats{}
	FuzzChoppings(seed, choppings, st)
	FuzzRuns(seed+1, runs, st)
	return st
}
