package explore

import (
	"testing"
)

// TestFuzzChoppingsAgreeWithReference is the acceptance gate for the
// chopping analyzer: 1000 random chopping sets, zero disagreements with
// the brute-force SC-cycle and restricted-piece references.
func TestFuzzChoppingsAgreeWithReference(t *testing.T) {
	st := &FuzzStats{}
	FuzzChoppings(20260806, 1000, st)
	if st.Choppings != 1000 {
		t.Fatalf("analyzed %d choppings, want 1000", st.Choppings)
	}
	for _, d := range st.Disagreements {
		t.Error(d)
	}
	// Coverage sanity: the generator must actually produce SC-cycles,
	// otherwise agreement is vacuous.
	if st.WithSCCycle < 50 {
		t.Errorf("only %d/1000 choppings had SC-cycles; generator too tame", st.WithSCCycle)
	}
}

// TestFuzzRunsAllConform drives random workloads end to end: every run
// the stack accepts must pass the serial-replay ε-oracle.
func TestFuzzRunsAllConform(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	st := &FuzzStats{}
	FuzzRuns(20260806, n, st)
	for _, f := range st.Failures {
		t.Error(f)
	}
	if st.Runs == 0 {
		t.Fatalf("all %d workloads skipped; generator produces nothing runnable", n)
	}
	t.Logf("%s", st)
}

// TestFuzzIsDeterministic pins the campaign digest: same seed, same
// stats, run to run.
func TestFuzzIsDeterministic(t *testing.T) {
	first := Fuzz(7, 50, 5)
	for i := 0; i < 2; i++ {
		again := Fuzz(7, 50, 5)
		if again.String() != first.String() {
			t.Fatalf("campaign diverged:\n  %s\n  %s", again, first)
		}
	}
}
