package explore

import (
	"fmt"
	"math/rand"
	"testing"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/oracle"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// randomRepairProgram builds a random 1..5-op program slanted toward
// the repair engine's hard cases: reads feeding AbortIf predicates
// (the rollback decision must survive repair), chains of commutative
// increments, and non-commuting transforms, all on the same four hot
// keys so interleavings conflict constantly.
func randomRepairProgram(rng *rand.Rand, name string) *txn.Program {
	nOps := rng.Intn(5) + 1
	ops := make([]txn.Op, 0, nOps)
	for oi := 0; oi < nOps; oi++ {
		key := fuzzKeys[rng.Intn(len(fuzzKeys))]
		switch rng.Intn(4) {
		case 0:
			ops = append(ops, txn.ReadOp(key))
		case 1:
			ops = append(ops, txn.AddOp(key, metric.Value(rng.Intn(7)-3)))
		case 2:
			d := metric.Value(rng.Intn(3) + 1)
			ops = append(ops, txn.TransformOp(key,
				func(v metric.Value) metric.Value { return v + d },
				metric.LimitOf(metric.Fuzz(d))))
		default:
			// A guarded withdrawal: the predicate decision depends on the
			// input value, so a repair that refreshes the input must also
			// re-decide the rollback.
			amt := metric.Value(rng.Intn(50) + 1)
			threshold := metric.Value(rng.Intn(200))
			ops = append(ops, txn.WithAbortIf(txn.AddOp(key, -amt),
				func(v metric.Value) bool { return v < threshold }))
		}
	}
	return txn.MustProgram(name, ops...)
}

// randomRepairScenario builds a workload for the repair engines only:
// DC baseline methods (no chopping), a per-run ε-ledger, and programs
// heavy on AbortIf and increment chains.
func randomRepairScenario(rng *rand.Rand, name string) Scenario {
	eps := metric.Fuzz(rng.Intn(600) + 200)
	nProgs := rng.Intn(2) + 2
	programs := make([]*txn.Program, nProgs)
	for pi := range programs {
		p := randomRepairProgram(rng, fmt.Sprintf("r%d", pi))
		if p.Class() == txn.Query {
			p = p.WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
		} else {
			p = p.WithSpec(metric.SpecOf(eps))
		}
		programs[pi] = p
	}
	nSubs := rng.Intn(3) + 2
	subs := make([]int, nSubs)
	for i := range subs {
		subs[i] = rng.Intn(nProgs)
	}
	initial := make(map[storage.Key]metric.Value, len(fuzzKeys))
	for _, k := range fuzzKeys {
		initial[k] = metric.Value(rng.Intn(1000) + 100)
	}
	method := core.BaselineSRCC
	if rng.Intn(2) == 0 {
		method = core.BaselineESRDC
	}
	engine := core.EngineRepair
	if rng.Intn(2) == 0 {
		engine = core.EngineRepairSkip
	}
	return Scenario{
		Name:        name,
		Initial:     initial,
		Programs:    programs,
		Submissions: subs,
		Method:      method,
		Engine:      engine,
		Ledger:      true,
	}
}

// FuzzRepair drives random programs through random deterministic
// interleavings on the repair engines and holds them to three oaths:
// the self-check (every repaired outcome byte-identical to a fresh full
// re-execution — core.Config.VerifyRepairs, wired by explore.Run), the
// serial-replay ε-oracle (no divergence beyond budget; zero under SR
// specs), and ledger reconciliation (charged ≥ measured for every
// explainable query, so ε-skips are honestly priced).
func FuzzRepair(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 7, 42, 1995, 65599} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			sc := randomRepairScenario(rng, fmt.Sprintf("repair/%d", i))
			runSeed := rng.Int63n(1 << 30)
			strategy := StrategyConflict
			if rng.Intn(3) == 0 {
				strategy = StrategyRandom
			}
			res, err := Run(sc, runSeed, strategy, oracle.Config{Seed: runSeed})
			if err != nil {
				t.Fatalf("%s/%s seed %d: %v", sc.Engine, sc.Method, runSeed, err)
			}
			if res.RepairMismatch != "" {
				t.Fatalf("%s/%s seed %d: repaired run diverged from fresh re-execution: %s",
					sc.Engine, sc.Method, runSeed, res.RepairMismatch)
			}
			if !res.Report.OK {
				t.Fatalf("%s/%s seed %d: oracle: %s", sc.Engine, sc.Method, runSeed, res.Report)
			}
			if res.Reconciliation != nil && !res.Reconciliation.AllCovered {
				t.Fatalf("%s/%s seed %d: ledger charged < measured ε", sc.Engine, sc.Method, runSeed)
			}
		}
	})
}
