package explore

import (
	"fmt"

	"asynctp/internal/core"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// BankScenario is the canonical conformance workload: two transfer
// types moving amount between disjoint account pairs, plus one audit
// query reading every account, all under ε-spec eps. Submissions: two
// instances of each transfer and one audit — five workers, small enough
// for the oracle's exhaustive enumeration.
func BankScenario(method core.Method, engine core.EngineKind, dist core.Distribution, eps metric.Fuzz) Scenario {
	const amount = 100
	initial := map[storage.Key]metric.Value{
		"a0": 1000, "a1": 1000, "a2": 1000, "a3": 1000,
	}
	spec := metric.SpecOf(eps)
	t01 := txn.MustProgram("transfer-01",
		txn.AddOp("a0", -amount), txn.AddOp("a1", amount)).WithSpec(spec)
	t23 := txn.MustProgram("transfer-23",
		txn.AddOp("a2", -amount), txn.AddOp("a3", amount)).WithSpec(spec)
	audit := txn.MustProgram("audit",
		txn.ReadOp("a0"), txn.ReadOp("a1"), txn.ReadOp("a2"), txn.ReadOp("a3")).
		WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	return Scenario{
		Name:         fmt.Sprintf("bank/%s/%s", method, engine),
		Initial:      initial,
		Programs:     []*txn.Program{t01, t23, audit},
		Submissions:  []int{0, 1, 2, 0, 1},
		Method:       method,
		Distribution: dist,
		Engine:       engine,
	}
}

// MisbudgetScenario is the deliberately mis-budgeted divergence-control
// run: a transfer whose per-key delta (300) exceeds the audit's declared
// ε (100). With scale <= 1 the controller correctly refuses to absorb
// the read-write conflicts and the run serializes (divergence 0). With
// scale > 1 (the core.Config.BudgetScale test knob) the controller
// works with inflated budgets and absorbs conflicts the declared spec
// forbids — the serial-replay oracle must flag the audit by name.
func MisbudgetScenario(scale int) Scenario {
	const (
		amount = 300
		eps    = 100
	)
	initial := map[storage.Key]metric.Value{"a": 1000, "b": 1000}
	transfer := txn.MustProgram("transfer",
		txn.AddOp("a", -amount), txn.AddOp("b", amount)).
		WithSpec(metric.Spec{Import: metric.Zero, Export: metric.LimitOf(eps)})
	audit := txn.MustProgram("audit", txn.ReadOp("a"), txn.ReadOp("b")).
		WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	return Scenario{
		Name:        fmt.Sprintf("misbudget/x%d", scale),
		Initial:     initial,
		Programs:    []*txn.Program{transfer, audit},
		Submissions: []int{0, 1},
		Method:      core.BaselineESRDC,
		Engine:      core.EngineLocking,
		BudgetScale: scale,
	}
}
