// Package explore implements the deterministic schedule explorer of the
// conformance harness: it drives concurrent transaction executions
// through a seeded cooperative scheduler so that one seed reproduces one
// interleaving exactly, then hands the recorded history to the
// serial-replay ε-oracle (package oracle).
//
// Determinism comes from three ingredients:
//
//   - Engines expose every scheduling point through txn.StepHook (lock
//     request, operation effect, commit) and the lock manager reports
//     wait transitions through lock.WaitObserver.
//   - The Scheduler lets exactly ONE worker run between scheduling
//     points. A worker parks at every step; lock waits park it too
//     (Blocked → not runnable, Woken → in transit, Resumed → parked
//     again before executing anything).
//   - All scheduling choices come from one seeded PRNG over a sorted
//     ready set, so the decision sequence — and hence the recorded
//     history — is a pure function of the seed.
//
// Two strategies are provided: StrategyRandom permutes steps uniformly;
// StrategyConflict prefers workers whose pending step touches a key some
// other live worker has already touched, steering runs into the
// read-write conflict windows that divergence control must price.
package explore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"asynctp/internal/lock"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Strategy selects how the scheduler picks among runnable workers.
type Strategy int

// Strategies.
const (
	// StrategyRandom picks uniformly among runnable workers.
	StrategyRandom Strategy = iota + 1
	// StrategyConflict prefers workers about to touch a key another live
	// worker has touched — targeted conflict-window interleavings.
	StrategyConflict
)

// String renders the strategy name.
func (s Strategy) String() string {
	switch s {
	case StrategyRandom:
		return "random"
	case StrategyConflict:
		return "conflict"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// DefaultMaxSteps bounds a single exploration run; exceeding it reports
// a livelock instead of hanging the test suite.
const DefaultMaxSteps = 1 << 20

// workerState is a worker's scheduling state.
type workerState int

const (
	// wReady: parked at a scheduling point, runnable.
	wReady workerState = iota + 1
	// wRunning: the one worker currently executing.
	wRunning
	// wBlocked: waiting for a lock grant; not runnable.
	wBlocked
	// wWaking: lock grant issued, goroutine not yet re-parked.
	wWaking
	// wDone: finished.
	wDone
)

// worker is one scheduled goroutine (one transaction instance).
type worker struct {
	id      int
	state   workerState
	pending txn.Step // the step it is parked at (valid after first park)
	parked  bool     // pending is valid
	touched map[storage.Key]bool
}

// Scheduler is the deterministic cooperative scheduler. It implements
// txn.StepHook and lock.WaitObserver; install it on the engines via
// core.Config.StepHook / core.Config.WaitObserver.
type Scheduler struct {
	mu       sync.Mutex
	cond     *sync.Cond
	rng      *rand.Rand
	strategy Strategy
	maxSteps int

	workers []*worker
	byOwner map[lock.Owner]*worker
	current *worker
	steps   int
	started bool
}

var (
	_ txn.StepHook      = (*Scheduler)(nil)
	_ lock.WaitObserver = (*Scheduler)(nil)
)

// NewScheduler returns a scheduler seeded with seed.
func NewScheduler(seed int64, strategy Strategy) *Scheduler {
	if strategy == 0 {
		strategy = StrategyRandom
	}
	s := &Scheduler{
		rng:      rand.New(rand.NewSource(seed)),
		strategy: strategy,
		maxSteps: DefaultMaxSteps,
		byOwner:  make(map[lock.Owner]*worker),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// SetMaxSteps overrides the livelock bound (<= 0 restores the default).
func (s *Scheduler) SetMaxSteps(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = DefaultMaxSteps
	}
	s.maxSteps = n
}

// Steps returns the number of scheduling decisions made so far.
func (s *Scheduler) Steps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steps
}

// Go registers one worker and starts its goroutine. The function does
// not begin executing until the scheduler picks the worker. Go must be
// called before Run.
func (s *Scheduler) Go(fn func()) {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		panic("explore: Go after Run")
	}
	w := &worker{id: len(s.workers), state: wReady, touched: make(map[storage.Key]bool)}
	s.workers = append(s.workers, w)
	s.mu.Unlock()

	go func() {
		s.mu.Lock()
		for w.state != wRunning {
			s.cond.Wait()
		}
		s.mu.Unlock()
		fn()
		s.mu.Lock()
		w.state = wDone
		if s.current == w {
			s.current = nil
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
}

// Run drives the scheduling loop until every worker finishes. It
// returns an error on livelock (step bound exceeded) or when all
// remaining workers are lock-blocked with nobody left to wake them.
func (s *Scheduler) Run() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("explore: Run called twice")
	}
	s.started = true
	for {
		// Quiescence: nobody running, no wakeup in flight.
		for s.current != nil || s.anyWakingLocked() {
			s.cond.Wait()
		}
		ready := s.readyLocked()
		if len(ready) == 0 {
			if s.allDoneLocked() {
				return nil
			}
			return fmt.Errorf("explore: no runnable workers (%d lock-blocked) — undetected deadlock", s.countLocked(wBlocked))
		}
		if s.steps >= s.maxSteps {
			return fmt.Errorf("explore: step bound %d exceeded (livelock?)", s.maxSteps)
		}
		w := s.pickLocked(ready)
		w.state = wRunning
		s.current = w
		s.steps++
		s.cond.Broadcast()
	}
}

// anyWakingLocked reports whether some wakeup has not re-parked yet.
func (s *Scheduler) anyWakingLocked() bool {
	for _, w := range s.workers {
		if w.state == wWaking {
			return true
		}
	}
	return false
}

// readyLocked returns the runnable workers, sorted by id.
func (s *Scheduler) readyLocked() []*worker {
	var out []*worker
	for _, w := range s.workers {
		if w.state == wReady {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// allDoneLocked reports whether every worker finished.
func (s *Scheduler) allDoneLocked() bool {
	for _, w := range s.workers {
		if w.state != wDone {
			return false
		}
	}
	return true
}

// countLocked counts workers in the given state.
func (s *Scheduler) countLocked(st workerState) int {
	n := 0
	for _, w := range s.workers {
		if w.state == st {
			n++
		}
	}
	return n
}

// pickLocked chooses the next worker to run.
func (s *Scheduler) pickLocked(ready []*worker) *worker {
	if s.strategy == StrategyConflict {
		var hot []*worker
		for _, w := range ready {
			if w.parked && w.pending.Key != "" && s.keyHotElsewhereLocked(w) {
				hot = append(hot, w)
			}
		}
		if len(hot) > 0 {
			return hot[s.rng.Intn(len(hot))]
		}
	}
	return ready[s.rng.Intn(len(ready))]
}

// keyHotElsewhereLocked reports whether w's pending key was touched by
// another live worker.
func (s *Scheduler) keyHotElsewhereLocked(w *worker) bool {
	for _, o := range s.workers {
		if o == w || o.state == wDone {
			continue
		}
		if o.touched[w.pending.Key] {
			return true
		}
	}
	return false
}

// bindLocked resolves owner to its worker, binding unknown owners to the
// currently running worker — sound because exactly one worker runs at a
// time and owners are created on the running worker's goroutine.
func (s *Scheduler) bindLocked(owner lock.Owner) *worker {
	if w := s.byOwner[owner]; w != nil {
		return w
	}
	w := s.current
	if w == nil {
		panic(fmt.Sprintf("explore: event for unknown owner %d with no worker running", owner))
	}
	s.byOwner[owner] = w
	return w
}

// parkLocked parks w at step st and waits until it is scheduled again.
func (s *Scheduler) parkLocked(w *worker, st txn.Step, record bool) {
	if record {
		w.pending, w.parked = st, true
		if st.Key != "" {
			w.touched[st.Key] = true
		}
	}
	w.state = wReady
	if s.current == w {
		s.current = nil
	}
	s.cond.Broadcast()
	for w.state != wRunning {
		s.cond.Wait()
	}
}

// OnStep implements txn.StepHook: every engine scheduling point parks
// the worker until the scheduler picks it again.
func (s *Scheduler) OnStep(st txn.Step) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.bindLocked(st.Owner)
	s.parkLocked(w, st, true)
}

// Blocked implements lock.WaitObserver: the worker is about to wait for
// a lock grant, so it stops being runnable. Called with the lock
// manager's mutex held; only scheduler state is touched.
func (s *Scheduler) Blocked(owner lock.Owner, key storage.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.bindLocked(owner)
	w.state = wBlocked
	if s.current == w {
		s.current = nil
	}
	s.cond.Broadcast()
}

// Woken implements lock.WaitObserver: a release (or cancellation)
// resolved the wait. The worker is in transit until Resumed re-parks it,
// and the scheduler must not declare quiescence in between.
func (s *Scheduler) Woken(owner lock.Owner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if w := s.byOwner[owner]; w != nil && w.state == wBlocked {
		w.state = wWaking
	}
}

// Resumed implements lock.WaitObserver: the waiter's goroutine regained
// control; park it before it executes anything else.
func (s *Scheduler) Resumed(owner lock.Owner) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w := s.byOwner[owner]
	if w == nil {
		return
	}
	s.parkLocked(w, txn.Step{}, false)
}
