package explore

import (
	"testing"

	"asynctp/internal/core"
)

// TestStripingPreservesDeterminism is the E8 striping regression: the
// same (scenario, seed, strategy) triple must produce a byte-identical
// fingerprint whether the lock table runs as a single-mutex table
// (stripes=1) or fully striped (stripes=16). The explorer runs exactly
// one worker at a time, so per-stripe locking may never change which
// conflicts arise, who blocks, or who is picked as deadlock victim.
func TestStripingPreservesDeterminism(t *testing.T) {
	for _, method := range []core.Method{core.BaselineSRCC, core.Method1SRChopDC, core.Method3ESRChopDC} {
		for _, strategy := range []Strategy{StrategyConflict, StrategyRandom} {
			for seed := int64(1); seed <= 6; seed++ {
				one := BankScenario(method, core.EngineLocking, core.Static, 600)
				one.LockStripes = 1
				many := BankScenario(method, core.EngineLocking, core.Static, 600)
				many.LockStripes = 16

				resOne := run(t, one, seed, strategy)
				resMany := run(t, many, seed, strategy)
				if resOne.Fingerprint() != resMany.Fingerprint() {
					t.Errorf("%s/%s seed %d: stripes=1 and stripes=16 diverged:\n  1:  %s\n  16: %s",
						method, strategy, seed, resOne.Fingerprint(), resMany.Fingerprint())
				}
			}
		}
	}
}
