package explore

import (
	"bytes"
	"strings"
	"testing"

	"asynctp/internal/core"
	"asynctp/internal/obs"
	"asynctp/internal/oracle"
)

// canonicalTrace runs the DC bank scenario over a few scheduler seeds
// with a fresh tracer and returns the canonical Chrome trace-event
// export. The canonical export is specified to be a pure function of
// (scenario, seeds, strategy): logical events only, synthetic
// timestamps, content-signature group identity.
func canonicalTrace(t *testing.T, seeds int) []byte {
	t.Helper()
	tr := obs.NewTracer(0)
	base := obs.NewPlane(tr, nil, nil)
	sc := BankScenario(core.Method3ESRChopDC, core.EngineLocking, core.Static, 600)
	sc.Ledger = true
	sc.Base = base
	for seed := 1; seed <= seeds; seed++ {
		if _, err := Run(sc, int64(seed), StrategyConflict, oracle.Config{MaxOrders: 50, Seed: 1}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := obs.ExportCanonical(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCanonicalTraceDeterministic is the trace-determinism regression:
// two complete runs of the same seeded scenario sweep must export
// byte-identical canonical traces (CI repeats the same check end to
// end through cmd/distbench and diffs the files).
func TestCanonicalTraceDeterministic(t *testing.T) {
	a := canonicalTrace(t, 3)
	b := canonicalTrace(t, 3)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical exports differ across identical seeded runs:\nlen %d vs %d", len(a), len(b))
	}
	s := string(a)
	for _, want := range []string{`"cat":"txn"`, `"cat":"piece"`, `"cat":"lock"`, `"cat":"dc"`} {
		if !strings.Contains(s, want) {
			t.Errorf("canonical export missing %s events", want)
		}
	}
}
