// Package fault turns the repro's failure *primitives* (SetDown,
// SetPartitioned, loss rates) into a failure *discipline*: a
// deterministic, seeded Schedule of timed and step-triggered events
// that drives site crashes, restarts, partitions, heals, drop-rate
// changes, and latency spikes against a running cluster.
//
// The package exists so chaos runs are reproducible experiments rather
// than hand-toggled demos: the same seed and schedule produce the same
// fault sequence, which is what lets the harness assert — in ordinary
// `go test` — that 100% of chopped chains settle through a crash storm
// while 2PC measurably times out and presumes abort under the very same
// schedule (the paper's Section 4 availability argument).
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"asynctp/internal/simnet"
)

// Kind enumerates fault actions.
type Kind int

// Fault actions.
const (
	// CrashSite fail-stops a site: volatile state is lost, messages to
	// and from it drop, workers halt.
	CrashSite Kind = iota + 1
	// RestartSite recovers a crashed site from its durable state.
	RestartSite
	// Partition cuts the (undirected) link between two sites.
	Partition
	// Heal restores a previously cut link.
	Heal
	// DropRate sets the network's silent in-flight loss fraction.
	DropRate
	// LatencySpike changes the network's base one-way latency/jitter
	// (use a second event to restore the original values).
	LatencySpike
)

// String renders the action kind.
func (k Kind) String() string {
	switch k {
	case CrashSite:
		return "crash"
	case RestartSite:
		return "restart"
	case Partition:
		return "partition"
	case Heal:
		return "heal"
	case DropRate:
		return "droprate"
	case LatencySpike:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Injector is the surface a Schedule drives. *site.Cluster implements
// it; tests may substitute fakes.
type Injector interface {
	// CrashSite fail-stops the site.
	CrashSite(id simnet.SiteID)
	// RestartSite recovers the site from durable state.
	RestartSite(id simnet.SiteID)
	// SetPartitioned cuts (true) or heals (false) a link.
	SetPartitioned(a, b simnet.SiteID, cut bool)
	// SetLossRate sets the silent in-flight loss fraction.
	SetLossRate(rate float64)
	// SetLatency sets the base one-way latency and jitter fraction.
	SetLatency(base time.Duration, jitter float64)
}

// Event is one scheduled fault action. An event fires either at a time
// offset from Run (At) or when the harness's step counter reaches
// AfterStep (whichever trigger is set; AfterStep > 0 wins).
type Event struct {
	// At is the time offset from Run at which the event fires.
	At time.Duration
	// AfterStep, when > 0, fires the event on the AfterStep'th call to
	// Step instead of on the clock.
	AfterStep int
	// Kind selects the action.
	Kind Kind
	// Site is the target of CrashSite/RestartSite.
	Site simnet.SiteID
	// A, B name the link for Partition/Heal.
	A, B simnet.SiteID
	// Rate is the DropRate fraction.
	Rate float64
	// Latency and Jitter are the LatencySpike parameters.
	Latency time.Duration
	Jitter  float64
}

// describe renders an event for the fired-event log.
func (e Event) describe() string {
	trigger := e.At.String()
	if e.AfterStep > 0 {
		trigger = fmt.Sprintf("step %d", e.AfterStep)
	}
	switch e.Kind {
	case CrashSite, RestartSite:
		return fmt.Sprintf("%s %s @%s", e.Kind, e.Site, trigger)
	case Partition, Heal:
		return fmt.Sprintf("%s %s-%s @%s", e.Kind, e.A, e.B, trigger)
	case DropRate:
		return fmt.Sprintf("%s %.2f @%s", e.Kind, e.Rate, trigger)
	case LatencySpike:
		return fmt.Sprintf("%s %v/%.2f @%s", e.Kind, e.Latency, e.Jitter, trigger)
	default:
		return fmt.Sprintf("%s @%s", e.Kind, trigger)
	}
}

// Schedule is a deterministic fault plan: a set of events plus an
// optional seeded time perturbation. Build it with the fluent methods,
// then Run it against an Injector. A Schedule is single-use: build a
// fresh one per run (scenario constructors make this cheap).
type Schedule struct {
	seed   int64
	jitter float64 // fraction of each event's At to perturb, seeded
	events []Event

	mu      sync.Mutex
	steps   int
	stepEvs []Event
	fired   []string
	running bool
	stop    chan struct{}
	done    chan struct{}
	inj     Injector
}

// NewSchedule builds an empty schedule. The seed drives the optional
// time perturbation (WithTimeJitter) deterministically.
func NewSchedule(seed int64) *Schedule {
	return &Schedule{seed: seed}
}

// WithTimeJitter perturbs every time-triggered event's offset by up to
// ±frac of its value, deterministically from the schedule seed, so
// repeated seeds explore slightly different interleavings while any one
// seed stays reproducible.
func (s *Schedule) WithTimeJitter(frac float64) *Schedule {
	s.jitter = frac
	return s
}

// Add appends a raw event.
func (s *Schedule) Add(e Event) *Schedule {
	s.events = append(s.events, e)
	return s
}

// CrashAt crashes site at offset d.
func (s *Schedule) CrashAt(d time.Duration, site simnet.SiteID) *Schedule {
	return s.Add(Event{At: d, Kind: CrashSite, Site: site})
}

// RestartAt recovers site at offset d.
func (s *Schedule) RestartAt(d time.Duration, site simnet.SiteID) *Schedule {
	return s.Add(Event{At: d, Kind: RestartSite, Site: site})
}

// PartitionAt cuts the a-b link at offset d.
func (s *Schedule) PartitionAt(d time.Duration, a, b simnet.SiteID) *Schedule {
	return s.Add(Event{At: d, Kind: Partition, A: a, B: b})
}

// HealAt restores the a-b link at offset d.
func (s *Schedule) HealAt(d time.Duration, a, b simnet.SiteID) *Schedule {
	return s.Add(Event{At: d, Kind: Heal, A: a, B: b})
}

// DropRateAt sets the loss fraction at offset d.
func (s *Schedule) DropRateAt(d time.Duration, rate float64) *Schedule {
	return s.Add(Event{At: d, Kind: DropRate, Rate: rate})
}

// LatencySpikeAt sets base latency/jitter at offset d.
func (s *Schedule) LatencySpikeAt(d time.Duration, base time.Duration, jitter float64) *Schedule {
	return s.Add(Event{At: d, Kind: LatencySpike, Latency: base, Jitter: jitter})
}

// CrashAtStep crashes site when the harness's step counter reaches n.
func (s *Schedule) CrashAtStep(n int, site simnet.SiteID) *Schedule {
	return s.Add(Event{AfterStep: n, Kind: CrashSite, Site: site})
}

// RestartAtStep recovers site when the step counter reaches n.
func (s *Schedule) RestartAtStep(n int, site simnet.SiteID) *Schedule {
	return s.Add(Event{AfterStep: n, Kind: RestartSite, Site: site})
}

// Len returns the number of scheduled events.
func (s *Schedule) Len() int { return len(s.events) }

// Horizon returns the latest time-triggered offset (after perturbation
// this is still the nominal bound since jitter is applied at Run).
func (s *Schedule) Horizon() time.Duration {
	var max time.Duration
	for _, e := range s.events {
		if e.AfterStep == 0 && e.At > max {
			max = e.At
		}
	}
	return max
}

// apply executes one event against the injector and logs it.
func (s *Schedule) apply(e Event) {
	switch e.Kind {
	case CrashSite:
		s.inj.CrashSite(e.Site)
	case RestartSite:
		s.inj.RestartSite(e.Site)
	case Partition:
		s.inj.SetPartitioned(e.A, e.B, true)
	case Heal:
		s.inj.SetPartitioned(e.A, e.B, false)
	case DropRate:
		s.inj.SetLossRate(e.Rate)
	case LatencySpike:
		s.inj.SetLatency(e.Latency, e.Jitter)
	}
	s.mu.Lock()
	s.fired = append(s.fired, e.describe())
	s.mu.Unlock()
}

// Run starts executing the schedule against inj. Time-triggered events
// fire from a single goroutine in offset order (deterministic relative
// order); step-triggered events fire synchronously inside Step. Call
// Wait to block until every time event has fired, and Stop to cancel
// early. Run panics if called twice.
func (s *Schedule) Run(inj Injector) {
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("fault: Schedule.Run called twice")
	}
	s.running = true
	s.inj = inj
	s.stop = make(chan struct{})
	s.done = make(chan struct{})

	var timed []Event
	for _, e := range s.events {
		if e.AfterStep > 0 {
			s.stepEvs = append(s.stepEvs, e)
		} else {
			timed = append(timed, e)
		}
	}
	// Deterministic seeded perturbation of the timeline.
	if s.jitter > 0 {
		rng := rand.New(rand.NewSource(s.seed))
		for i := range timed {
			frac := (rng.Float64()*2 - 1) * s.jitter // [-j, +j]
			timed[i].At += time.Duration(frac * float64(timed[i].At))
			if timed[i].At < 0 {
				timed[i].At = 0
			}
		}
	}
	sort.SliceStable(timed, func(i, j int) bool { return timed[i].At < timed[j].At })
	s.mu.Unlock()

	go func() {
		defer close(s.done)
		start := time.Now()
		for _, e := range timed {
			wait := e.At - time.Since(start)
			if wait > 0 {
				select {
				case <-time.After(wait):
				case <-s.stop:
					return
				}
			} else {
				select {
				case <-s.stop:
					return
				default:
				}
			}
			s.apply(e)
		}
	}()
}

// Step advances the harness step counter (e.g. once per submitted chain
// or executed piece) and fires any step-triggered events that just came
// due, synchronously in the caller.
func (s *Schedule) Step() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	s.steps++
	n := s.steps
	var due []Event
	rest := s.stepEvs[:0]
	for _, e := range s.stepEvs {
		if e.AfterStep <= n {
			due = append(due, e)
		} else {
			rest = append(rest, e)
		}
	}
	s.stepEvs = rest
	s.mu.Unlock()
	for _, e := range due {
		s.apply(e)
	}
}

// Wait blocks until every time-triggered event has fired (or Stop was
// called). It does not wait for step events.
func (s *Schedule) Wait() {
	s.mu.Lock()
	done := s.done
	s.mu.Unlock()
	if done != nil {
		<-done
	}
}

// Stop cancels pending time events and waits for the runner to exit.
func (s *Schedule) Stop() {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	done := s.done
	s.mu.Unlock()
	<-done
}

// Fired returns descriptions of the events applied so far, in order.
func (s *Schedule) Fired() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.fired...)
}
