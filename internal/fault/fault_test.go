package fault

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// fakeInjector records applied actions.
type fakeInjector struct {
	mu  sync.Mutex
	log []string
}

func (f *fakeInjector) record(s string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.log = append(f.log, s)
}

func (f *fakeInjector) CrashSite(id simnet.SiteID)   { f.record("crash:" + string(id)) }
func (f *fakeInjector) RestartSite(id simnet.SiteID) { f.record("restart:" + string(id)) }
func (f *fakeInjector) SetPartitioned(a, b simnet.SiteID, cut bool) {
	if cut {
		f.record("cut:" + string(a) + "-" + string(b))
	} else {
		f.record("heal:" + string(a) + "-" + string(b))
	}
}
func (f *fakeInjector) SetLossRate(rate float64) {
	if rate > 0 {
		f.record("loss:on")
	} else {
		f.record("loss:off")
	}
}
func (f *fakeInjector) SetLatency(base time.Duration, jitter float64) {
	f.record("latency:" + base.String())
}

func (f *fakeInjector) snapshot() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.log...)
}

func TestScheduleFiresTimedEventsInOrder(t *testing.T) {
	inj := &fakeInjector{}
	s := NewSchedule(1).
		CrashAt(10*time.Millisecond, "LA").
		PartitionAt(20*time.Millisecond, "NY", "CHI").
		HealAt(30*time.Millisecond, "NY", "CHI").
		RestartAt(40*time.Millisecond, "LA")
	s.Run(inj)
	s.Wait()
	want := []string{"crash:LA", "cut:NY-CHI", "heal:NY-CHI", "restart:LA"}
	if got := inj.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("log = %v, want %v", got, want)
	}
	if got := len(s.Fired()); got != 4 {
		t.Errorf("fired = %d events, want 4", got)
	}
}

func TestScheduleStepEventsFireSynchronously(t *testing.T) {
	inj := &fakeInjector{}
	s := NewSchedule(1).
		CrashAtStep(2, "LA").
		RestartAtStep(4, "LA")
	s.Run(inj)
	defer s.Stop()
	s.Step() // 1: nothing
	if got := inj.snapshot(); len(got) != 0 {
		t.Fatalf("fired early: %v", got)
	}
	s.Step() // 2: crash
	if got := inj.snapshot(); !reflect.DeepEqual(got, []string{"crash:LA"}) {
		t.Fatalf("after step 2: %v", got)
	}
	s.Step() // 3
	s.Step() // 4: restart
	want := []string{"crash:LA", "restart:LA"}
	if got := inj.snapshot(); !reflect.DeepEqual(got, want) {
		t.Errorf("after step 4: %v, want %v", got, want)
	}
}

func TestScheduleStopCancelsPending(t *testing.T) {
	inj := &fakeInjector{}
	s := NewSchedule(1).CrashAt(5*time.Second, "LA")
	s.Run(inj)
	s.Stop()
	if got := inj.snapshot(); len(got) != 0 {
		t.Errorf("events fired after Stop: %v", got)
	}
	// Stop is idempotent.
	s.Stop()
}

func TestScheduleTimeJitterIsDeterministic(t *testing.T) {
	// Same seed → identical perturbed order and fire log; the schedule
	// is a reproducible experiment, not a fuzzer.
	build := func(seed int64) []string {
		inj := &fakeInjector{}
		s := NewSchedule(seed).WithTimeJitter(0.5).
			CrashAt(8*time.Millisecond, "A").
			CrashAt(9*time.Millisecond, "B").
			CrashAt(10*time.Millisecond, "C").
			CrashAt(11*time.Millisecond, "D")
		s.Run(inj)
		s.Wait()
		return inj.snapshot()
	}
	a, b := build(42), build(42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestScheduleHorizon(t *testing.T) {
	s := NewSchedule(1).
		CrashAt(10*time.Millisecond, "A").
		RestartAt(70*time.Millisecond, "A").
		CrashAtStep(100, "B")
	if got := s.Horizon(); got != 70*time.Millisecond {
		t.Errorf("Horizon = %v, want 70ms", got)
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
}

func TestCrashOnceFiresExactlyOnce(t *testing.T) {
	h := &CrashOnce{Point: PointPreAck, Site: "LA", Piece: 1}
	if h.ShouldCrash(PointPreAck, "NY", 1, 1, false) {
		t.Error("fired for wrong site")
	}
	if h.ShouldCrash(PointPreAck, "LA", 1, 0, false) {
		t.Error("fired for wrong piece")
	}
	if h.ShouldCrash(PointPreReport, "LA", 1, 1, false) {
		t.Error("fired for wrong point")
	}
	if !h.ShouldCrash(PointPreAck, "LA", 1, 1, false) {
		t.Error("did not fire on match")
	}
	if h.ShouldCrash(PointPreAck, "LA", 2, 1, false) {
		t.Error("fired twice")
	}
	if !h.Fired() {
		t.Error("Fired() = false after firing")
	}
	if got := h.Hits(); got != 2 {
		t.Errorf("Hits = %d, want 2 (fire + redelivery)", got)
	}
}

func TestCrashOnceAnyPiece(t *testing.T) {
	h := &CrashOnce{Point: PointPreAck, Site: "LA", Piece: -1, Compensate: true}
	if h.ShouldCrash(PointPreAck, "LA", 1, 3, false) {
		t.Error("fired for non-compensating piece")
	}
	if !h.ShouldCrash(PointPreAck, "LA", 1, 3, true) {
		t.Error("wildcard piece did not fire")
	}
}
