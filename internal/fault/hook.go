package fault

import (
	"sync"

	"asynctp/internal/simnet"
)

// Point names an injection point inside a site's piece pipeline. Points
// target the windows the paper's at-least-once argument cares about:
// the instants where durable state and queue acknowledgement have
// diverged, so recovery must rely on redelivery plus idempotence.
type Point int

// Injection points.
const (
	// PointPreAck fires after a piece (or compensation) has committed
	// locally and staged its successors/report, but before its queue
	// delivery is acknowledged. A crash here forces the activation to be
	// redelivered after recovery: the dedup table must absorb it.
	PointPreAck Point = iota + 1
	// PointPreReport fires after a piece has committed but before its
	// settlement report and successor activations are staged. A crash
	// here forces the redelivered activation to re-stage them.
	PointPreReport
	// PointPreBatchFlush fires inside the queue layer: the flushed
	// messages are already durable in the outbox, but the coalesced
	// batch frame has not reached the network. A crash here loses the
	// volatile coalescing buffer; recovery must replay the staged batch
	// from the durable outbox via retransmission. Consulted with
	// inst = 0 and piece = -1 (the queue layer is below piece identity).
	PointPreBatchFlush
)

// String renders the injection point.
func (p Point) String() string {
	switch p {
	case PointPreAck:
		return "pre-ack"
	case PointPreReport:
		return "pre-report"
	case PointPreBatchFlush:
		return "pre-batch-flush"
	default:
		return "point(?)"
	}
}

// Hook decides, at each injection point a site passes through, whether
// the site should crash right there. Implementations must be safe for
// concurrent use (worker goroutines consult the hook).
type Hook interface {
	// ShouldCrash reports whether the site should fail-stop at point p
	// while handling piece (inst, piece); compensate marks compensating
	// (inverse) pieces.
	ShouldCrash(p Point, site simnet.SiteID, inst uint64, piece int, compensate bool) bool
}

// CrashOnce is a Hook that requests exactly one crash: the first time
// the matching site reaches the matching point with the matching piece
// index (and compensation flag), it fires; every later call is false.
type CrashOnce struct {
	// Point is the injection point to match.
	Point Point
	// Site is the site to crash.
	Site simnet.SiteID
	// Piece is the piece index to match; -1 matches any piece.
	Piece int
	// Compensate must match the activation's compensation flag.
	Compensate bool

	mu    sync.Mutex
	hits  int
	fired bool
}

// ShouldCrash implements Hook.
func (c *CrashOnce) ShouldCrash(p Point, site simnet.SiteID, _ uint64, piece int, compensate bool) bool {
	if p != c.Point || site != c.Site || compensate != c.Compensate {
		return false
	}
	if c.Piece >= 0 && piece != c.Piece {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	if c.fired {
		return false
	}
	c.fired = true
	return true
}

// Fired reports whether the crash has been requested.
func (c *CrashOnce) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}

// Hits returns how many matching arrivals the hook has seen (including
// the one that fired): > 1 proves the activation was redelivered.
func (c *CrashOnce) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}
