package fault

import (
	"fmt"
	"strconv"
	"strings"
	"syscall"

	"asynctp/internal/simnet"
)

// This file is the kill -9 grade of fault injection. The Hook/Schedule
// machinery simulates crashes in-process (volatile state is rebuilt by
// the same process); a KillSpec instead names a storage-layer crash
// point at which a child process sends itself SIGKILL — no deferred
// cleanup, no flushing, no atexit. The parent harness restarts the
// child from its real on-disk files, which is the only honest test of
// write-ahead logging.

// Kill points — where in the durable-storage pipeline the process dies.
const (
	// KillAppend dies before a committed batch's WAL frame is written:
	// the record is wholly lost; the sender's retransmission and the
	// piece dedup must absorb the redelivery.
	KillAppend = "append"
	// KillSync dies after WAL frames are written but before fsync: the
	// records may or may not survive the page cache; replay must accept
	// either world.
	KillSync = "sync"
	// KillTorn dies immediately after a deliberately half-written frame
	// has been written and synced: replay must truncate the torn tail at
	// the CRC break and keep everything before it.
	KillTorn = "torn"
	// KillSnapshot dies after a checkpoint snapshot's temp file is
	// written but before the atomic rename: recovery must fall back to
	// the previous snapshot + WAL.
	KillSnapshot = "snapshot"
)

// KillSpec names one self-SIGKILL: the Hit'th time site reaches the
// named storage crash point, the process dies. The wire form is
// "point:site:hit", e.g. "append:LA:15".
type KillSpec struct {
	Point string
	Site  simnet.SiteID
	Hit   int
}

// ParseKillSpec parses "point:site:hit".
func ParseKillSpec(s string) (KillSpec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return KillSpec{}, fmt.Errorf("fault: kill spec %q is not point:site:hit", s)
	}
	switch parts[0] {
	case KillAppend, KillSync, KillTorn, KillSnapshot:
	default:
		return KillSpec{}, fmt.Errorf("fault: unknown kill point %q", parts[0])
	}
	hit, err := strconv.Atoi(parts[2])
	if err != nil || hit < 1 {
		return KillSpec{}, fmt.Errorf("fault: kill spec %q needs a positive hit count", s)
	}
	return KillSpec{Point: parts[0], Site: simnet.SiteID(parts[1]), Hit: hit}, nil
}

// String renders the wire form.
func (k KillSpec) String() string {
	return fmt.Sprintf("%s:%s:%d", k.Point, k.Site, k.Hit)
}

// SelfKill sends the current process SIGKILL: an un-catchable,
// un-flushable death, the real thing a WAL must survive. It does not
// return.
func SelfKill() {
	_ = syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be handled
}
