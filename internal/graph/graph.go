// Package graph implements the small undirected-multigraph toolkit used by
// the chopping analyzer.
//
// Chopping graphs (Shasha et al.) mix S edges (siblings) and C edges
// (conflicts). The correctness theorems reduce to classic graph structure:
//
//   - An SC-cycle exists iff two distinct sibling pieces are connected in
//     the C-edge-only subgraph (S edges form a clique among siblings, so a
//     C-path between siblings closes a simple SC-cycle).
//   - Two edges lie on a common simple cycle iff they belong to the same
//     biconnected block; hence a C edge "is in an SC-cycle" iff its block
//     in the full graph contains an S edge.
//   - A vertex lies on a simple cycle of C edges (a C-cycle) iff it is in
//     a block of the C-only subgraph that contains a cycle (any block with
//     more than one edge).
//
// The package therefore provides connected components under edge filters,
// biconnected blocks (Tarjan), bridges, and shortest filtered paths for
// producing human-readable cycle witnesses.
package graph

import "fmt"

// EdgeFilter selects a subgraph by edge ID. A nil filter keeps every edge.
type EdgeFilter func(edge int) bool

// Graph is an undirected multigraph over vertices 0..N-1. Self-loops are
// rejected: a chopping graph never relates a piece to itself, and a
// self-loop is never part of a *simple* cycle with two edge kinds.
type Graph struct {
	adj   [][]half
	edges []edge
}

type edge struct{ u, v int }

// half is one direction of an edge in an adjacency list.
type half struct {
	to int
	id int
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]half, n)}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of edges added so far.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddEdge adds an undirected edge between u and v and returns its edge ID.
// Parallel edges are allowed; self-loops are not.
func (g *Graph) AddEdge(u, v int) (int, error) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return 0, fmt.Errorf("graph: vertex out of range: (%d, %d) with n=%d", u, v, len(g.adj))
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop on vertex %d rejected", u)
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{u: u, v: v})
	g.adj[u] = append(g.adj[u], half{to: v, id: id})
	g.adj[v] = append(g.adj[v], half{to: u, id: id})
	return id, nil
}

// Endpoints returns the two endpoints of edge id.
func (g *Graph) Endpoints(id int) (u, v int) {
	e := g.edges[id]
	return e.u, e.v
}

// Degree returns the number of edge-ends incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// keep reports whether the filter admits edge id.
func keep(f EdgeFilter, id int) bool { return f == nil || f(id) }

// Components labels each vertex with a component ID in the subgraph
// selected by filter. IDs are dense, starting at 0, in order of first
// discovery. Isolated vertices get their own component.
func (g *Graph) Components(filter EdgeFilter) []int {
	comp := make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	stack := make([]int, 0, len(g.adj))
	for start := range g.adj {
		if comp[start] != -1 {
			continue
		}
		comp[start] = next
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, h := range g.adj[v] {
				if !keep(filter, h.id) || comp[h.to] != -1 {
					continue
				}
				comp[h.to] = next
				stack = append(stack, h.to)
			}
		}
		next++
	}
	return comp
}

// SameComponent reports whether u and v are connected in the filtered
// subgraph.
func (g *Graph) SameComponent(u, v int, filter EdgeFilter) bool {
	comp := g.Components(filter)
	return comp[u] == comp[v]
}

// ShortestPath returns the edge IDs of a shortest u→v path in the filtered
// subgraph, or nil if v is unreachable from u. A path from u to itself is
// the empty (non-nil) slice.
func (g *Graph) ShortestPath(u, v int, filter EdgeFilter) []int {
	if u == v {
		return []int{}
	}
	prevEdge := make([]int, len(g.adj))
	prevVert := make([]int, len(g.adj))
	seen := make([]bool, len(g.adj))
	for i := range prevEdge {
		prevEdge[i] = -1
	}
	queue := []int{u}
	seen[u] = true
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, h := range g.adj[x] {
			if !keep(filter, h.id) || seen[h.to] {
				continue
			}
			seen[h.to] = true
			prevEdge[h.to] = h.id
			prevVert[h.to] = x
			if h.to == v {
				var path []int
				for at := v; at != u; at = prevVert[at] {
					path = append(path, prevEdge[at])
				}
				// Reverse into u→v order.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, h.to)
		}
	}
	return nil
}

// Blocks returns the biconnected components ("blocks") of the filtered
// subgraph as lists of edge IDs. Every admitted edge appears in exactly one
// block; a block consisting of a single edge is a bridge.
func (g *Graph) Blocks(filter EdgeFilter) [][]int {
	n := len(g.adj)
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var (
		blocks    [][]int
		edgeStack []int
		timer     int
	)

	// Iterative DFS frame: vertex, the edge we arrived on, and a cursor
	// into the adjacency list.
	type frame struct {
		v       int
		inEdge  int
		nextAdj int
	}
	var stack []frame

	for root := range g.adj {
		if disc[root] != -1 {
			continue
		}
		stack = append(stack[:0], frame{v: root, inEdge: -1})
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			advanced := false
			for f.nextAdj < len(g.adj[f.v]) {
				h := g.adj[f.v][f.nextAdj]
				f.nextAdj++
				if !keep(filter, h.id) || h.id == f.inEdge {
					continue
				}
				if disc[h.to] == -1 {
					edgeStack = append(edgeStack, h.id)
					disc[h.to] = timer
					low[h.to] = timer
					timer++
					stack = append(stack, frame{v: h.to, inEdge: h.id})
					advanced = true
					break
				}
				if disc[h.to] < disc[f.v] {
					// Back edge to an ancestor.
					edgeStack = append(edgeStack, h.id)
					if disc[h.to] < low[f.v] {
						low[f.v] = disc[h.to]
					}
				}
			}
			if advanced {
				continue
			}
			// f.v is fully explored: fold it into its parent.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.v] < low[p.v] {
				low[p.v] = low[f.v]
			}
			if low[f.v] >= disc[p.v] {
				// p.v is an articulation point (or the root): pop one block.
				var block []int
				for {
					top := edgeStack[len(edgeStack)-1]
					edgeStack = edgeStack[:len(edgeStack)-1]
					block = append(block, top)
					if top == f.inEdge {
						break
					}
				}
				blocks = append(blocks, block)
			}
		}
	}
	return blocks
}

// BlockOfEdge returns, for each edge, the index of its block in the
// filtered subgraph, or -1 for edges the filter excludes.
func (g *Graph) BlockOfEdge(filter EdgeFilter) []int {
	owner := make([]int, len(g.edges))
	for i := range owner {
		owner[i] = -1
	}
	for bi, block := range g.Blocks(filter) {
		for _, e := range block {
			owner[e] = bi
		}
	}
	return owner
}

// Bridges returns the edge IDs that are bridges of the filtered subgraph
// (blocks of size one).
func (g *Graph) Bridges(filter EdgeFilter) []int {
	var bridges []int
	for _, block := range g.Blocks(filter) {
		if len(block) == 1 {
			bridges = append(bridges, block[0])
		}
	}
	return bridges
}

// EdgesOnCycle reports, for each edge, whether it lies on some simple cycle
// of the filtered subgraph — i.e. whether its block has more than one edge.
// (Two parallel edges form a simple cycle in a multigraph.)
func (g *Graph) EdgesOnCycle(filter EdgeFilter) []bool {
	on := make([]bool, len(g.edges))
	for _, block := range g.Blocks(filter) {
		if len(block) < 2 {
			continue
		}
		for _, e := range block {
			on[e] = true
		}
	}
	return on
}

// VerticesOnCycle reports, for each vertex, whether it lies on some simple
// cycle of the filtered subgraph.
func (g *Graph) VerticesOnCycle(filter EdgeFilter) []bool {
	on := make([]bool, len(g.adj))
	for _, block := range g.Blocks(filter) {
		if len(block) < 2 {
			continue
		}
		for _, e := range block {
			u, v := g.Endpoints(e)
			on[u] = true
			on[v] = true
		}
	}
	return on
}
