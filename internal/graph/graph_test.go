package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// mustEdge adds an edge or fails the test.
func mustEdge(t *testing.T, g *Graph, u, v int) int {
	t.Helper()
	id, err := g.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d, %d): %v", u, v, err)
	}
	return id
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(-1, 2); err == nil {
		t.Error("negative vertex accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges = %d after failed adds, want 0", g.NumEdges())
	}
}

func TestEndpointsAndDegree(t *testing.T) {
	g := New(4)
	e := mustEdge(t, g, 1, 3)
	u, v := g.Endpoints(e)
	if u != 1 || v != 3 {
		t.Errorf("Endpoints = (%d, %d), want (1, 3)", u, v)
	}
	mustEdge(t, g, 1, 2)
	if g.Degree(1) != 2 || g.Degree(0) != 0 {
		t.Errorf("Degree(1)=%d Degree(0)=%d, want 2, 0", g.Degree(1), g.Degree(0))
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	comp := g.Components(nil)
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("0,1,2 should share a component: %v", comp)
	}
	if comp[3] != comp[4] {
		t.Errorf("3,4 should share a component: %v", comp)
	}
	if comp[0] == comp[3] || comp[0] == comp[5] || comp[3] == comp[5] {
		t.Errorf("components should be distinct: %v", comp)
	}
}

func TestComponentsWithFilter(t *testing.T) {
	g := New(3)
	e0 := mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	// Exclude edge 0-1: vertex 0 becomes isolated.
	comp := g.Components(func(e int) bool { return e != e0 })
	if comp[0] == comp[1] {
		t.Errorf("filtered edge still connects: %v", comp)
	}
	if comp[1] != comp[2] {
		t.Errorf("1 and 2 should stay connected: %v", comp)
	}
	if !g.SameComponent(1, 2, func(e int) bool { return e != e0 }) {
		t.Error("SameComponent(1,2) = false under filter")
	}
	if g.SameComponent(0, 2, func(e int) bool { return e != e0 }) {
		t.Error("SameComponent(0,2) = true under filter")
	}
}

func TestShortestPath(t *testing.T) {
	g := New(5)
	e01 := mustEdge(t, g, 0, 1)
	e12 := mustEdge(t, g, 1, 2)
	e23 := mustEdge(t, g, 2, 3)
	e03 := mustEdge(t, g, 0, 3)
	_ = e01

	path := g.ShortestPath(0, 3, nil)
	if len(path) != 1 || path[0] != e03 {
		t.Errorf("ShortestPath(0,3) = %v, want [%d]", path, e03)
	}
	// Forbid the direct edge: must take the long way.
	path = g.ShortestPath(0, 3, func(e int) bool { return e != e03 })
	want := []int{e01, e12, e23}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Errorf("filtered ShortestPath(0,3) = %v, want %v", path, want)
	}
	if p := g.ShortestPath(0, 4, nil); p != nil {
		t.Errorf("path to isolated vertex = %v, want nil", p)
	}
	if p := g.ShortestPath(2, 2, nil); p == nil || len(p) != 0 {
		t.Errorf("path to self = %v, want empty non-nil", p)
	}
}

func TestBlocksTriangleWithTail(t *testing.T) {
	// 0-1-2-0 triangle with a tail 2-3.
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	tail := mustEdge(t, g, 2, 3)

	blocks := g.Blocks(nil)
	if len(blocks) != 2 {
		t.Fatalf("got %d blocks, want 2: %v", len(blocks), blocks)
	}
	sizes := []int{len(blocks[0]), len(blocks[1])}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("block sizes = %v, want [1 3]", sizes)
	}
	bridges := g.Bridges(nil)
	if len(bridges) != 1 || bridges[0] != tail {
		t.Errorf("Bridges = %v, want [%d]", bridges, tail)
	}
}

func TestBlocksParallelEdges(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 1)
	blocks := g.Blocks(nil)
	if len(blocks) != 1 || len(blocks[0]) != 2 {
		t.Fatalf("parallel edges: blocks = %v, want one block of 2", blocks)
	}
	on := g.EdgesOnCycle(nil)
	if !on[0] || !on[1] {
		t.Errorf("parallel edges should be on a cycle: %v", on)
	}
	if len(g.Bridges(nil)) != 0 {
		t.Error("parallel edges reported as bridges")
	}
}

func TestEdgesOnCycle(t *testing.T) {
	// Two triangles joined by a bridge: 0-1-2-0, 3-4-5-3, bridge 2-3.
	g := New(6)
	var tri []int
	tri = append(tri, mustEdge(t, g, 0, 1), mustEdge(t, g, 1, 2), mustEdge(t, g, 2, 0))
	bridge := mustEdge(t, g, 2, 3)
	tri = append(tri, mustEdge(t, g, 3, 4), mustEdge(t, g, 4, 5), mustEdge(t, g, 5, 3))

	on := g.EdgesOnCycle(nil)
	for _, e := range tri {
		if !on[e] {
			t.Errorf("triangle edge %d not on cycle", e)
		}
	}
	if on[bridge] {
		t.Error("bridge reported on cycle")
	}
}

func TestVerticesOnCycle(t *testing.T) {
	// Triangle 0-1-2 with tails 2-3-4.
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 2, 3)
	mustEdge(t, g, 3, 4)
	on := g.VerticesOnCycle(nil)
	want := []bool{true, true, true, false, false}
	for v, w := range want {
		if on[v] != w {
			t.Errorf("VerticesOnCycle[%d] = %v, want %v", v, on[v], w)
		}
	}
}

func TestBlockOfEdgeWithFilter(t *testing.T) {
	g := New(4)
	a := mustEdge(t, g, 0, 1)
	b := mustEdge(t, g, 1, 2)
	c := mustEdge(t, g, 2, 0)
	d := mustEdge(t, g, 2, 3)
	owner := g.BlockOfEdge(func(e int) bool { return e != d })
	if owner[d] != -1 {
		t.Errorf("excluded edge has block %d, want -1", owner[d])
	}
	if owner[a] != owner[b] || owner[b] != owner[c] {
		t.Errorf("triangle split across blocks: %v", owner)
	}
}

func TestBlocksCoverEveryEdgeExactlyOnce(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 2
		m := int(mRaw % 40)
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			if _, err := g.AddEdge(u, v); err != nil {
				return false
			}
		}
		count := make([]int, g.NumEdges())
		for _, block := range g.Blocks(nil) {
			for _, e := range block {
				count[e]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBridgeRemovalDisconnectsProperty(t *testing.T) {
	// For every bridge e=(u,v), removing e must disconnect u from v; for
	// every non-bridge, removal must keep its endpoints connected.
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%15) + 2
		m := int(mRaw % 30)
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if _, err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		isBridge := make([]bool, g.NumEdges())
		for _, e := range g.Bridges(nil) {
			isBridge[e] = true
		}
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.Endpoints(e)
			without := func(x int) bool { return x != e }
			connected := g.SameComponent(u, v, without)
			if isBridge[e] && connected {
				return false
			}
			if !isBridge[e] && !connected {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyAndSingletonGraphs(t *testing.T) {
	g := New(0)
	if got := g.Blocks(nil); len(got) != 0 {
		t.Errorf("empty graph blocks = %v", got)
	}
	if got := g.Components(nil); len(got) != 0 {
		t.Errorf("empty graph components = %v", got)
	}
	g = New(1)
	if got := g.Components(nil); len(got) != 1 || got[0] != 0 {
		t.Errorf("singleton components = %v", got)
	}
	g = New(-3)
	if g.NumVertices() != 0 {
		t.Errorf("New(-3) has %d vertices", g.NumVertices())
	}
}

// enumerateCycleEdges brute-forces which edges lie on at least one simple
// cycle by DFS path enumeration (small graphs only).
func enumerateCycleEdges(g *Graph) []bool {
	on := make([]bool, g.NumEdges())
	n := g.NumVertices()
	// For each start vertex, walk all simple paths and close cycles back
	// to the start.
	var walk func(start, at int, usedV map[int]bool, usedE []bool, path []int)
	walk = func(start, at int, usedV map[int]bool, usedE []bool, path []int) {
		for e := 0; e < g.NumEdges(); e++ {
			if usedE[e] {
				continue
			}
			u, v := g.Endpoints(e)
			var to int
			switch at {
			case u:
				to = v
			case v:
				to = u
			default:
				continue
			}
			if to == start && len(path) >= 1 {
				// Simple cycle: path + e (length >= 2 edges).
				for _, pe := range path {
					on[pe] = true
				}
				on[e] = true
				continue
			}
			if usedV[to] {
				continue
			}
			usedV[to] = true
			usedE[e] = true
			walk(start, to, usedV, usedE, append(path, e))
			usedV[to] = false
			usedE[e] = false
		}
	}
	for start := 0; start < n; start++ {
		walk(start, start, map[int]bool{start: true}, make([]bool, g.NumEdges()), nil)
	}
	return on
}

func TestEdgesOnCycleMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%6) + 2
		m := int(mRaw % 9)
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 0; i < m; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				if _, err := g.AddEdge(u, v); err != nil {
					return false
				}
			}
		}
		fast := g.EdgesOnCycle(nil)
		slow := enumerateCycleEdges(g)
		for e := range fast {
			if fast[e] != slow[e] {
				t.Logf("seed %d: edge %d fast=%v slow=%v", seed, e, fast[e], slow[e])
				return false
			}
		}
		// Vertex version must agree too: a vertex is on a cycle iff it is
		// an endpoint of an on-cycle edge.
		fastV := g.VerticesOnCycle(nil)
		slowV := make([]bool, n)
		for e, on := range slow {
			if on {
				u, v := g.Endpoints(e)
				slowV[u], slowV[v] = true, true
			}
		}
		for v := range fastV {
			if fastV[v] != slowV[v] {
				t.Logf("seed %d: vertex %d fast=%v slow=%v", seed, v, fastV[v], slowV[v])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
