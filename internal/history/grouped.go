package history

import (
	"fmt"
	"sort"
	"strings"

	"asynctp/internal/lock"
	"asynctp/internal/storage"
)

// Group identifies an original transaction whose chopped pieces executed
// as separate owners. Grouping lets the checker ask the paper's real
// question: is the execution of CHOP(T) serializable (or epsilon
// serializable) *with respect to the original transaction set T*?
type Group int64

// GroupedAnalysis is the conflict-graph analysis after merging each
// group's pieces into a single node.
type GroupedAnalysis struct {
	// Serializable reports whether the grouped conflict graph is acyclic,
	// i.e. the piece execution is equivalent to a serializable execution
	// of the original transactions.
	Serializable bool
	// Edges are the grouped conflict edges (between distinct groups).
	Edges []GroupEdge
	// Cycle is a witness cycle of groups when not serializable.
	Cycle []Group
}

// GroupEdge is a conflict edge between two original transactions.
type GroupEdge struct {
	From, To Group
	Key      storage.Key
}

// CheckGrouped analyzes the committed projection with owners merged by
// groupOf. Owners missing from groupOf form singleton groups keyed by
// their owner ID (so ungrouped transactions still participate).
//
// Ordering edges inside one group are ignored: sibling pieces of one
// original transaction are free to interleave with each other.
func (r *Recorder) CheckGrouped(groupOf map[lock.Owner]Group) GroupedAnalysis {
	txns, ops := r.Snapshot()
	committed := make(map[lock.Owner]bool, len(txns))
	for _, t := range txns {
		if t.Status == Committed {
			committed[t.Owner] = true
		}
	}
	group := func(o lock.Owner) Group {
		if g, ok := groupOf[o]; ok {
			return g
		}
		return Group(-int64(o)) // singleton, disjoint from explicit groups
	}

	byKey := make(map[storage.Key][]Op)
	for _, op := range ops {
		if committed[op.Owner] {
			byKey[op.Key] = append(byKey[op.Key], op)
		}
	}
	type edgeKey struct {
		from, to Group
		key      storage.Key
	}
	seen := make(map[edgeKey]bool)
	nodes := make(map[Group]bool)
	for o := range committed {
		nodes[group(o)] = true
	}
	adjSet := make(map[Group]map[Group]bool)
	var edges []GroupEdge
	for key, list := range byKey {
		sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				ga, gb := group(a.Owner), group(b.Owner)
				if ga == gb {
					continue
				}
				if !opsConflict(a, b) {
					continue
				}
				ek := edgeKey{from: ga, to: gb, key: key}
				if seen[ek] {
					continue
				}
				seen[ek] = true
				edges = append(edges, GroupEdge{From: ga, To: gb, Key: key})
				set := adjSet[ga]
				if set == nil {
					set = make(map[Group]bool)
					adjSet[ga] = set
				}
				set[gb] = true
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})

	cycle := findGroupCycle(nodes, adjSet)
	return GroupedAnalysis{Serializable: cycle == nil, Edges: edges, Cycle: cycle}
}

// findGroupCycle returns one cycle (first == last) or nil.
func findGroupCycle(nodes map[Group]bool, adj map[Group]map[Group]bool) []Group {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Group]int, len(nodes))
	parent := make(map[Group]Group)
	ordered := make([]Group, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var cycle []Group
	var dfs func(u Group) bool
	dfs = func(u Group) bool {
		color[u] = gray
		next := make([]Group, 0, len(adj[u]))
		for v := range adj[u] {
			next = append(next, v)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, v := range next {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				cycle = []Group{v}
				for at := u; at != v; at = parent[at] {
					cycle = append(cycle, at)
				}
				cycle = append(cycle, v)
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range ordered {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

// DOT renders the grouped conflict graph in Graphviz format for
// debugging non-serializable executions: one node per group, one edge
// per conflicting key pair, cycle edges highlighted.
func (ga *GroupedAnalysis) DOT() string {
	var b strings.Builder
	b.WriteString("digraph conflicts {\n")
	onCycle := make(map[[2]Group]bool)
	for i := 0; i+1 < len(ga.Cycle); i++ {
		onCycle[[2]Group{ga.Cycle[i], ga.Cycle[i+1]}] = true
	}
	for _, e := range ga.Edges {
		attr := ""
		if onCycle[[2]Group{e.From, e.To}] {
			attr = ", color=red, penwidth=2"
		}
		fmt.Fprintf(&b, "  g%d -> g%d [label=%q%s];\n", e.From, e.To, string(e.Key), attr)
	}
	b.WriteString("}\n")
	return b.String()
}
