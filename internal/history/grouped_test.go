package history

import (
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ev is one scripted recorder event for the table-driven grouped tests.
type ev struct {
	owner  lock.Owner
	kind   string // "begin", "r", "w", "commit", "abort"
	key    storage.Key
	v, old metric.Value
}

func playScript(events []ev) *Recorder {
	r := NewRecorder()
	for _, e := range events {
		switch e.kind {
		case "begin":
			r.Begin(e.owner, "t", txn.Update)
		case "r":
			r.Read(e.owner, e.key, e.v)
		case "w":
			r.Write(e.owner, e.key, e.old, e.v, false)
		case "commit":
			r.Commit(e.owner)
		case "abort":
			r.Abort(e.owner, nil)
		}
	}
	return r
}

// TestCheckGroupedEdgeCases covers the corners of the grouped conflict
// checker: singleton groups for unmapped owners, aborted pieces dropped
// from the committed projection, and cycle witnesses that cross group
// boundaries.
func TestCheckGroupedEdgeCases(t *testing.T) {
	cases := []struct {
		name         string
		events       []ev
		groupOf      map[lock.Owner]Group
		serializable bool
		wantEdges    int
		// wantInCycle lists groups that must all appear in the witness.
		wantInCycle []Group
	}{
		{
			name: "singleton groups: two unmapped owners in a plain cycle",
			events: []ev{
				{owner: 1, kind: "begin"}, {owner: 2, kind: "begin"},
				{owner: 1, kind: "w", key: "x", old: 0, v: 1},
				{owner: 2, kind: "r", key: "x", v: 1},
				{owner: 2, kind: "w", key: "y", old: 0, v: 1},
				{owner: 1, kind: "r", key: "y", v: 1},
				{owner: 1, kind: "commit"}, {owner: 2, kind: "commit"},
			},
			groupOf:      nil, // everything singleton
			serializable: false,
			wantEdges:    2,
			wantInCycle:  []Group{Group(-1), Group(-2)},
		},
		{
			name: "singleton group id never collides with explicit groups",
			events: []ev{
				{owner: 1, kind: "begin"}, {owner: 2, kind: "begin"},
				{owner: 1, kind: "w", key: "x", old: 0, v: 1},
				{owner: 2, kind: "r", key: "x", v: 1},
				{owner: 1, kind: "commit"}, {owner: 2, kind: "commit"},
			},
			// Owner 1 is mapped; owner 2 falls back to singleton -2,
			// which must stay distinct from explicit group 1.
			groupOf:      map[lock.Owner]Group{1: 1},
			serializable: true,
			wantEdges:    1,
		},
		{
			name: "aborted piece excluded: its conflicts do not close the cycle",
			events: []ev{
				// Transfer pieces 10 (commits) and 11 (aborts); audit 20
				// reads between them. With 11 aborted only the 10→20 edge
				// survives: acyclic.
				{owner: 10, kind: "begin"},
				{owner: 10, kind: "w", key: "x", old: 1000, v: 900},
				{owner: 10, kind: "commit"},
				{owner: 20, kind: "begin"},
				{owner: 20, kind: "r", key: "x", v: 900},
				{owner: 20, kind: "r", key: "y", v: 500},
				{owner: 20, kind: "commit"},
				{owner: 11, kind: "begin"},
				{owner: 11, kind: "w", key: "y", old: 500, v: 600},
				{owner: 11, kind: "abort"},
			},
			groupOf:      map[lock.Owner]Group{10: 1, 11: 1},
			serializable: true,
			wantEdges:    1,
		},
		{
			name: "same script with the second piece committed is cyclic",
			events: []ev{
				{owner: 10, kind: "begin"},
				{owner: 10, kind: "w", key: "x", old: 1000, v: 900},
				{owner: 10, kind: "commit"},
				{owner: 20, kind: "begin"},
				{owner: 20, kind: "r", key: "x", v: 900},
				{owner: 20, kind: "r", key: "y", v: 500},
				{owner: 20, kind: "commit"},
				{owner: 11, kind: "begin"},
				{owner: 11, kind: "w", key: "y", old: 500, v: 600},
				{owner: 11, kind: "commit"},
			},
			groupOf:      map[lock.Owner]Group{10: 1, 11: 1},
			serializable: false,
			wantEdges:    2,
			wantInCycle:  []Group{1, Group(-20)},
		},
		{
			name: "cycle witness crosses group boundaries: chopped vs chopped",
			events: []ev{
				// Group 1 = {1, 2}, group 2 = {3, 4}. Piece 1 precedes
				// piece 3 on x; piece 4 precedes piece 2 on y: the witness
				// must name both groups even though no single piece pair is
				// cyclic.
				{owner: 1, kind: "begin"}, {owner: 3, kind: "begin"},
				{owner: 1, kind: "w", key: "x", old: 0, v: 1},
				{owner: 1, kind: "commit"},
				{owner: 3, kind: "r", key: "x", v: 1},
				{owner: 3, kind: "commit"},
				{owner: 4, kind: "begin"},
				{owner: 4, kind: "w", key: "y", old: 0, v: 1},
				{owner: 4, kind: "commit"},
				{owner: 2, kind: "begin"},
				{owner: 2, kind: "r", key: "y", v: 1},
				{owner: 2, kind: "commit"},
			},
			groupOf:      map[lock.Owner]Group{1: 1, 2: 1, 3: 2, 4: 2},
			serializable: false,
			wantEdges:    2,
			wantInCycle:  []Group{1, 2},
		},
		{
			name: "all pieces aborted: empty committed projection",
			events: []ev{
				{owner: 1, kind: "begin"},
				{owner: 1, kind: "w", key: "x", old: 0, v: 1},
				{owner: 1, kind: "abort"},
				{owner: 2, kind: "begin"},
				{owner: 2, kind: "r", key: "x", v: 1},
				{owner: 2, kind: "abort"},
			},
			groupOf:      map[lock.Owner]Group{1: 1, 2: 2},
			serializable: true,
			wantEdges:    0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			an := playScript(tc.events).CheckGrouped(tc.groupOf)
			if an.Serializable != tc.serializable {
				t.Fatalf("Serializable = %v, want %v (cycle %v)",
					an.Serializable, tc.serializable, an.Cycle)
			}
			if len(an.Edges) != tc.wantEdges {
				t.Errorf("edges = %+v, want %d", an.Edges, tc.wantEdges)
			}
			if len(tc.wantInCycle) > 0 {
				if len(an.Cycle) < 3 || an.Cycle[0] != an.Cycle[len(an.Cycle)-1] {
					t.Fatalf("cycle %v is not a closed walk", an.Cycle)
				}
				seen := map[Group]bool{}
				for _, g := range an.Cycle {
					seen[g] = true
				}
				for _, g := range tc.wantInCycle {
					if !seen[g] {
						t.Errorf("cycle %v missing group %d", an.Cycle, g)
					}
				}
			}
		})
	}
}

// TestRecorderReset verifies a reset recorder is indistinguishable from
// a fresh one: sequence numbers restart, old transactions vanish, and
// histories recorded after the reset digest identically.
func TestRecorderReset(t *testing.T) {
	script := []ev{
		{owner: 1, kind: "begin"},
		{owner: 1, kind: "w", key: "x", old: 0, v: 1},
		{owner: 1, kind: "commit"},
	}
	fresh := playScript(script)
	wantTxns, wantOps := fresh.Snapshot()

	r := playScript([]ev{
		{owner: 9, kind: "begin"},
		{owner: 9, kind: "r", key: "z", v: 42},
		{owner: 9, kind: "abort"},
	})
	r.Reset()
	if txns, ops := r.Snapshot(); len(txns) != 0 || len(ops) != 0 {
		t.Fatalf("reset recorder not empty: %d txns, %d ops", len(txns), len(ops))
	}
	if c, a, act := r.Counts(); c+a+act != 0 {
		t.Fatalf("reset counts = %d/%d/%d", c, a, act)
	}

	for _, e := range script {
		switch e.kind {
		case "begin":
			r.Begin(e.owner, "t", txn.Update)
		case "w":
			r.Write(e.owner, e.key, e.old, e.v, false)
		case "commit":
			r.Commit(e.owner)
		}
	}
	gotTxns, gotOps := r.Snapshot()
	if len(gotTxns) != len(wantTxns) || len(gotOps) != len(wantOps) {
		t.Fatalf("replay after reset: %d txns/%d ops, want %d/%d",
			len(gotTxns), len(gotOps), len(wantTxns), len(wantOps))
	}
	for i := range gotOps {
		if gotOps[i] != wantOps[i] {
			t.Errorf("op %d = %+v, want %+v (sequence must restart)", i, gotOps[i], wantOps[i])
		}
	}
}
