// Package history records execution histories and checks them for
// conflict serializability.
//
// The recorder implements txn.Observer: every read, write, commit, and
// abort lands in one global sequence. The checker builds the conflict
// (serialization) graph over committed transactions — an edge t1→t2 for
// each pair of conflicting operations where t1's came first — and reports
// the history serializable iff the graph is acyclic. Under plain
// concurrency control the graph must always be acyclic; under divergence
// control cycles are expected, and the cycles' participants are exactly
// the paper's runtime conflict cycles ("t C*_SR t") whose inconsistency
// the ε-specs bound.
package history

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// OpKind is the kind of a recorded operation.
type OpKind int

// Recorded operation kinds.
const (
	// OpRead is a recorded read.
	OpRead OpKind = iota + 1
	// OpWrite is a recorded write.
	OpWrite
)

// Op is one recorded operation.
type Op struct {
	// Seq is the global sequence number (total order of events).
	Seq uint64
	// Owner is the executing transaction.
	Owner lock.Owner
	// Kind is read or write.
	Kind OpKind
	// Key is the item touched.
	Key storage.Key
	// Value is the value read, or written (new value).
	Value metric.Value
	// Old is the overwritten value (writes only).
	Old metric.Value
	// Commutative marks writes that commute with other commutative
	// writes (increments); such write pairs do not conflict.
	Commutative bool
}

// Status is a transaction's final state.
type Status int

// Transaction statuses.
const (
	// Active transactions have begun and not finished.
	Active Status = iota + 1
	// Committed transactions finished successfully.
	Committed
	// Aborted transactions rolled back.
	Aborted
)

// Txn is one recorded transaction.
type Txn struct {
	Owner  lock.Owner
	Name   string
	Class  txn.Class
	Status Status
	// Ops are indices into the recorder's op list, in execution order.
	Ops []int
	// AbortReason holds the error passed to Abort, if any.
	AbortReason error
}

// txnRec is one transaction's record plus its private op buffer. Ops
// land here under the record's own mutex, so transactions recording
// concurrently never share a lock; the global total order comes from
// the recorder's atomic sequence counter and is reassembled by merging
// the buffers at Snapshot.
type txnRec struct {
	mu          sync.Mutex
	owner       lock.Owner
	name        string
	class       txn.Class
	status      Status
	abortReason error
	ops         []Op
}

// recShard is one shard of the owner→record map.
type recShard struct {
	mu   sync.Mutex
	txns map[lock.Owner]*txnRec
}

// recShardCount is the recorder's shard count.
const recShardCount = 32

// Recorder accumulates a history. It is safe for concurrent use and
// implements txn.Observer. Sequence numbers come from one atomic
// counter while each transaction's operations buffer under a per-owner
// lock, so recording is low-contention; Snapshot merges the buffers by
// sequence number into the familiar single total order.
type Recorder struct {
	seq    atomic.Uint64
	shards [recShardCount]*recShard
}

var _ txn.Observer = (*Recorder)(nil)

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	for i := range r.shards {
		r.shards[i] = &recShard{txns: make(map[lock.Owner]*txnRec)}
	}
	return r
}

// shardFor returns owner's shard.
func (r *Recorder) shardFor(owner lock.Owner) *recShard {
	return r.shards[uint64(owner)%recShardCount]
}

// rec returns owner's record, creating it (with the given hint) if
// absent.
func (r *Recorder) rec(owner lock.Owner, create func() *txnRec) *txnRec {
	sh := r.shardFor(owner)
	sh.mu.Lock()
	t := sh.txns[owner]
	if t == nil && create != nil {
		t = create()
		sh.txns[owner] = t
	}
	sh.mu.Unlock()
	return t
}

// Begin implements txn.Observer.
func (r *Recorder) Begin(owner lock.Owner, name string, class txn.Class) {
	sh := r.shardFor(owner)
	sh.mu.Lock()
	sh.txns[owner] = &txnRec{owner: owner, name: name, class: class, status: Active}
	sh.mu.Unlock()
}

func (r *Recorder) record(owner lock.Owner, kind OpKind, key storage.Key, value, old metric.Value, commutative bool) {
	t := r.rec(owner, func() *txnRec {
		// An operation without Begin: synthesize the transaction so the
		// history stays checkable rather than panicking mid-run.
		return &txnRec{owner: owner, name: fmt.Sprintf("anon-%d", owner), status: Active}
	})
	t.mu.Lock()
	t.ops = append(t.ops, Op{
		Seq: r.seq.Add(1), Owner: owner, Kind: kind, Key: key,
		Value: value, Old: old, Commutative: commutative,
	})
	t.mu.Unlock()
}

// Read implements txn.Observer.
func (r *Recorder) Read(owner lock.Owner, key storage.Key, value metric.Value) {
	r.record(owner, OpRead, key, value, 0, false)
}

// Write implements txn.Observer.
func (r *Recorder) Write(owner lock.Owner, key storage.Key, old, new metric.Value, commutative bool) {
	r.record(owner, OpWrite, key, new, old, commutative)
}

// Commit implements txn.Observer.
func (r *Recorder) Commit(owner lock.Owner) {
	if t := r.rec(owner, nil); t != nil {
		t.mu.Lock()
		t.status = Committed
		t.mu.Unlock()
	}
}

// Abort implements txn.Observer.
func (r *Recorder) Abort(owner lock.Owner, reason error) {
	if t := r.rec(owner, nil); t != nil {
		t.mu.Lock()
		t.status = Aborted
		t.abortReason = reason
		t.mu.Unlock()
	}
}

// Snapshot returns copies of the recorded transactions and operations:
// operations in one total order (ascending Seq) and each transaction's
// Ops holding indices into it, exactly as the single-buffer recorder
// produced. Snapshot is intended for quiescent points (between runs);
// concurrent recording is safe but a racing op may or may not be
// included.
func (r *Recorder) Snapshot() ([]Txn, []Op) {
	type frozen struct {
		t   Txn
		ops []Op
	}
	var frz []frozen
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, t := range sh.txns {
			t.mu.Lock()
			frz = append(frz, frozen{
				t: Txn{
					Owner: t.owner, Name: t.name, Class: t.class,
					Status: t.status, AbortReason: t.abortReason,
				},
				ops: append([]Op(nil), t.ops...),
			})
			t.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	sort.Slice(frz, func(i, j int) bool { return frz[i].t.Owner < frz[j].t.Owner })

	total := 0
	for _, f := range frz {
		total += len(f.ops)
	}
	ops := make([]Op, 0, total)
	for _, f := range frz {
		ops = append(ops, f.ops...)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i].Seq < ops[j].Seq })
	index := make(map[uint64]int, len(ops))
	for i, op := range ops {
		index[op.Seq] = i
	}
	txns := make([]Txn, 0, len(frz))
	for _, f := range frz {
		t := f.t
		if len(f.ops) > 0 {
			t.Ops = make([]int, len(f.ops))
			for i, op := range f.ops {
				t.Ops[i] = index[op.Seq]
			}
		}
		txns = append(txns, t)
	}
	return txns, ops
}

// Reset clears the recorder back to empty: all transactions and
// operations are dropped and the sequence counter restarts at zero, so
// a reused recorder produces histories indistinguishable from a fresh
// one. Sweep harnesses reuse one recorder across runs instead of
// allocating per seed.
func (r *Recorder) Reset() {
	for _, sh := range r.shards {
		sh.mu.Lock()
		sh.txns = make(map[lock.Owner]*txnRec)
		sh.mu.Unlock()
	}
	r.seq.Store(0)
}

// Counts returns (committed, aborted, active) transaction counts.
func (r *Recorder) Counts() (committed, aborted, active int) {
	for _, sh := range r.shards {
		sh.mu.Lock()
		for _, t := range sh.txns {
			t.mu.Lock()
			switch t.status {
			case Committed:
				committed++
			case Aborted:
				aborted++
			default:
				active++
			}
			t.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return committed, aborted, active
}

// ConflictEdge is one conflict-graph edge: From's operation preceded a
// conflicting operation of To.
type ConflictEdge struct {
	From, To lock.Owner
	Key      storage.Key
}

// Analysis is the result of checking a history.
type Analysis struct {
	// Serializable reports whether the committed projection's conflict
	// graph is acyclic.
	Serializable bool
	// Edges are the conflict-graph edges (deduplicated).
	Edges []ConflictEdge
	// Cycle is one witness cycle (a sequence of owners, first == last)
	// when the history is not serializable.
	Cycle []lock.Owner
	// Order is a serialization order (topological) when serializable.
	Order []lock.Owner
}

// Check analyzes the committed projection of the recorded history.
func (r *Recorder) Check() Analysis {
	txns, ops := r.Snapshot()
	committed := make(map[lock.Owner]bool, len(txns))
	for _, t := range txns {
		if t.Status == Committed {
			committed[t.Owner] = true
		}
	}
	return checkOps(committed, ops)
}

// opsConflict applies the chopper's conflict model to recorded ops: at
// least one write, and not two commuting writes.
func opsConflict(a, b Op) bool {
	if a.Kind == OpRead && b.Kind == OpRead {
		return false
	}
	if a.Kind == OpWrite && b.Kind == OpWrite && a.Commutative && b.Commutative {
		return false
	}
	return true
}

// checkOps builds the conflict graph over committed owners and analyzes
// it.
func checkOps(committed map[lock.Owner]bool, ops []Op) Analysis {
	// Per-key op lists in sequence order.
	byKey := make(map[storage.Key][]Op)
	for _, op := range ops {
		if committed[op.Owner] {
			byKey[op.Key] = append(byKey[op.Key], op)
		}
	}
	type edgeKey struct {
		from, to lock.Owner
		key      storage.Key
	}
	seen := make(map[edgeKey]bool)
	adj := make(map[lock.Owner][]lock.Owner)
	var edges []ConflictEdge
	nodes := make(map[lock.Owner]bool)
	for o := range committed {
		nodes[o] = true
	}
	for key, list := range byKey {
		sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.Owner == b.Owner {
					continue
				}
				if !opsConflict(a, b) {
					continue
				}
				ek := edgeKey{from: a.Owner, to: b.Owner, key: key}
				if seen[ek] {
					continue
				}
				seen[ek] = true
				edges = append(edges, ConflictEdge{From: a.Owner, To: b.Owner, Key: key})
				adj[a.Owner] = append(adj[a.Owner], b.Owner)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})

	cycle := findCycle(nodes, adj)
	an := Analysis{Serializable: cycle == nil, Edges: edges, Cycle: cycle}
	if an.Serializable {
		an.Order = topoOrder(nodes, adj)
	}
	return an
}

// findCycle returns one cycle (first == last) or nil.
func findCycle(nodes map[lock.Owner]bool, adj map[lock.Owner][]lock.Owner) []lock.Owner {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[lock.Owner]int, len(nodes))
	parent := make(map[lock.Owner]lock.Owner)

	ordered := make([]lock.Owner, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	var cycle []lock.Owner
	var dfs func(u lock.Owner) bool
	dfs = func(u lock.Owner) bool {
		color[u] = gray
		next := append([]lock.Owner(nil), adj[u]...)
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, v := range next {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a cycle v → ... → u → v.
				cycle = []lock.Owner{v}
				for at := u; at != v; at = parent[at] {
					cycle = append(cycle, at)
				}
				cycle = append(cycle, v)
				// Reverse to get forward edge order v → ... → v.
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range ordered {
		if color[n] == white && dfs(n) {
			return cycle
		}
	}
	return nil
}

// topoOrder returns a topological order of the acyclic graph.
func topoOrder(nodes map[lock.Owner]bool, adj map[lock.Owner][]lock.Owner) []lock.Owner {
	indeg := make(map[lock.Owner]int, len(nodes))
	for n := range nodes {
		indeg[n] = 0
	}
	for _, outs := range adj {
		for _, v := range outs {
			indeg[v]++
		}
	}
	var ready []lock.Owner
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order []lock.Owner
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range adj[u] {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	}
	return order
}
