package history

import (
	"errors"
	"strings"
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/txn"
)

func TestEmptyHistoryIsSerializable(t *testing.T) {
	r := NewRecorder()
	an := r.Check()
	if !an.Serializable || len(an.Edges) != 0 || an.Cycle != nil {
		t.Errorf("empty history analysis = %+v", an)
	}
}

func TestSequentialHistorySerializable(t *testing.T) {
	r := NewRecorder()
	r.Begin(1, "t1", txn.Update)
	r.Write(1, "x", 0, 10, false)
	r.Commit(1)
	r.Begin(2, "t2", txn.Query)
	r.Read(2, "x", 10)
	r.Commit(2)

	an := r.Check()
	if !an.Serializable {
		t.Fatalf("sequential history not serializable: cycle %v", an.Cycle)
	}
	if len(an.Edges) != 1 || an.Edges[0].From != 1 || an.Edges[0].To != 2 || an.Edges[0].Key != "x" {
		t.Errorf("edges = %+v", an.Edges)
	}
	if len(an.Order) != 2 || an.Order[0] != 1 || an.Order[1] != 2 {
		t.Errorf("order = %v", an.Order)
	}
}

// buildFuzzyRead records the classic non-serializable interleaving: query
// reads x before and y after an update writes both.
func buildFuzzyRead() *Recorder {
	r := NewRecorder()
	r.Begin(1, "xfer", txn.Update)
	r.Begin(2, "audit", txn.Query)
	r.Read(2, "x", 1000) // audit reads x first
	r.Write(1, "x", 1000, 900, false)
	r.Write(1, "y", 500, 600, false)
	r.Read(2, "y", 600) // audit reads y after xfer's write
	r.Commit(1)
	r.Commit(2)
	return r
}

func TestNonSerializableInterleavingDetected(t *testing.T) {
	r := buildFuzzyRead()
	an := r.Check()
	if an.Serializable {
		t.Fatal("fuzzy interleaving reported serializable")
	}
	if len(an.Cycle) < 3 || an.Cycle[0] != an.Cycle[len(an.Cycle)-1] {
		t.Errorf("cycle witness = %v", an.Cycle)
	}
	// The cycle must involve exactly txns 1 and 2.
	seen := map[lock.Owner]bool{}
	for _, o := range an.Cycle {
		seen[o] = true
	}
	if !seen[1] || !seen[2] || len(seen) != 2 {
		t.Errorf("cycle participants = %v", an.Cycle)
	}
}

func TestAbortedTransactionsExcluded(t *testing.T) {
	r := buildFuzzyRead()
	// Same shape, but the query aborts: committed projection is just the
	// update, hence serializable.
	r.Abort(2, errors.New("client gave up"))
	an := r.Check()
	if !an.Serializable {
		t.Errorf("aborted txn still creates cycle: %v", an.Cycle)
	}
}

func TestReadReadDoesNotConflict(t *testing.T) {
	r := NewRecorder()
	r.Begin(1, "q1", txn.Query)
	r.Begin(2, "q2", txn.Query)
	r.Read(1, "x", 5)
	r.Read(2, "x", 5)
	r.Read(1, "x", 5)
	r.Commit(1)
	r.Commit(2)
	an := r.Check()
	if len(an.Edges) != 0 {
		t.Errorf("read-read produced edges: %+v", an.Edges)
	}
}

func TestCountsAndSnapshot(t *testing.T) {
	r := NewRecorder()
	r.Begin(1, "a", txn.Update)
	r.Write(1, "x", 0, 1, false)
	r.Commit(1)
	r.Begin(2, "b", txn.Query)
	r.Abort(2, errors.New("nope"))
	r.Begin(3, "c", txn.Query)

	committed, aborted, active := r.Counts()
	if committed != 1 || aborted != 1 || active != 1 {
		t.Errorf("counts = %d, %d, %d", committed, aborted, active)
	}
	txns, ops := r.Snapshot()
	if len(txns) != 3 || len(ops) != 1 {
		t.Errorf("snapshot: %d txns, %d ops", len(txns), len(ops))
	}
	if txns[1].AbortReason == nil {
		t.Error("abort reason lost")
	}
	if ops[0].Old != 0 || ops[0].Value != 1 {
		t.Errorf("write op = %+v", ops[0])
	}
}

func TestOpWithoutBeginSynthesizesTxn(t *testing.T) {
	r := NewRecorder()
	r.Read(42, "x", 1)
	r.Commit(42)
	txns, _ := r.Snapshot()
	if len(txns) != 1 || txns[0].Status != Committed {
		t.Errorf("synthesized txn = %+v", txns)
	}
}

func TestThreeWayCycle(t *testing.T) {
	// t1 → t2 on x, t2 → t3 on y, t3 → t1 on z.
	r := NewRecorder()
	for o := lock.Owner(1); o <= 3; o++ {
		r.Begin(o, "t", txn.Update)
	}
	r.Write(1, "x", 0, 1, false)
	r.Read(2, "x", 1)
	r.Write(2, "y", 0, 1, false)
	r.Read(3, "y", 1)
	r.Write(3, "z", 0, 1, false)
	// t1 reads z after t3's write? No: for the edge t3→t1 we need t3's op
	// before t1's conflicting op. t1 reads z now (seq after t3's write):
	// that's t3→t1. Wait, that gives t3 before t1... and we already have
	// t1→t2→t3, so the cycle closes.
	r.Read(1, "z", 1)
	for o := lock.Owner(1); o <= 3; o++ {
		r.Commit(o)
	}
	an := r.Check()
	if an.Serializable {
		t.Fatal("3-cycle not detected")
	}
	if len(an.Cycle) != 4 {
		t.Errorf("cycle = %v, want 3 distinct + repeat", an.Cycle)
	}
}

func TestGroupedMergesSiblingPieces(t *testing.T) {
	// Chopped transfer: p1 (owner 10) debits x, p2 (owner 11) credits y.
	// An audit (owner 20) runs entirely between them. Piece-level graph
	// is acyclic (each piece is atomic), but grouped by original
	// transaction the audit sits inside the transfer: a cycle.
	r := NewRecorder()
	r.Begin(10, "xfer:p1", txn.Update)
	r.Write(10, "x", 1000, 900, false)
	r.Commit(10)
	r.Begin(20, "audit", txn.Query)
	r.Read(20, "x", 900)
	r.Read(20, "y", 500)
	r.Commit(20)
	r.Begin(11, "xfer:p2", txn.Update)
	r.Write(11, "y", 500, 600, false)
	r.Commit(11)

	if an := r.Check(); !an.Serializable {
		t.Fatalf("piece-level history should be serializable, cycle %v", an.Cycle)
	}
	grouped := r.CheckGrouped(map[lock.Owner]Group{10: 1, 11: 1})
	if grouped.Serializable {
		t.Fatal("grouped history should show the audit inside the transfer")
	}
	seen := map[Group]bool{}
	for _, g := range grouped.Cycle {
		seen[g] = true
	}
	if !seen[1] {
		t.Errorf("cycle %v should include group 1", grouped.Cycle)
	}
}

func TestGroupedSerializableWhenAuditOutside(t *testing.T) {
	// Same pieces, but the audit runs entirely after both pieces: grouped
	// graph stays acyclic.
	r := NewRecorder()
	r.Begin(10, "xfer:p1", txn.Update)
	r.Write(10, "x", 1000, 900, false)
	r.Commit(10)
	r.Begin(11, "xfer:p2", txn.Update)
	r.Write(11, "y", 500, 600, false)
	r.Commit(11)
	r.Begin(20, "audit", txn.Query)
	r.Read(20, "x", 900)
	r.Read(20, "y", 600)
	r.Commit(20)

	grouped := r.CheckGrouped(map[lock.Owner]Group{10: 1, 11: 1})
	if !grouped.Serializable {
		t.Fatalf("audit-after history grouped cycle: %v", grouped.Cycle)
	}
	if len(grouped.Edges) == 0 {
		t.Error("expected grouped edges between transfer and audit")
	}
}

func TestGroupedIgnoresIntraGroupConflicts(t *testing.T) {
	// Two pieces of one transaction conflict on the same key; grouped
	// analysis must not create a self-edge or cycle.
	r := NewRecorder()
	r.Begin(10, "p1", txn.Update)
	r.Write(10, "x", 0, 1, false)
	r.Commit(10)
	r.Begin(11, "p2", txn.Update)
	r.Write(11, "x", 1, 2, false)
	r.Commit(11)
	grouped := r.CheckGrouped(map[lock.Owner]Group{10: 7, 11: 7})
	if !grouped.Serializable || len(grouped.Edges) != 0 {
		t.Errorf("intra-group conflict leaked: %+v", grouped)
	}
}

func TestGroupedSingletonsForUngroupedOwners(t *testing.T) {
	r := buildFuzzyRead()
	grouped := r.CheckGrouped(nil)
	// With no grouping, the grouped check must agree with the flat check.
	if grouped.Serializable {
		t.Error("ungrouped analysis lost the cycle")
	}
}

func TestGroupedDOT(t *testing.T) {
	r := buildFuzzyRead()
	grouped := r.CheckGrouped(nil)
	dot := grouped.DOT()
	if !strings.Contains(dot, "digraph conflicts") {
		t.Errorf("DOT header missing:\n%s", dot)
	}
	// The cycle edges are highlighted.
	if !grouped.Serializable && !strings.Contains(dot, "color=red") {
		t.Errorf("cycle edges not highlighted:\n%s", dot)
	}
	if !strings.Contains(dot, `"x"`) || !strings.Contains(dot, `"y"`) {
		t.Errorf("conflict keys missing:\n%s", dot)
	}
}
