package history

import (
	"sync"
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// TestRecorderConcurrentOwners drives many owners through the recorder
// in parallel (the striped per-owner buffers' contention case) and
// checks the merged snapshot: a gap-free global Seq order, per-owner op
// order preserved, and every transaction's Ops indices pointing at its
// own operations. Run under -race this is the recorder's contention
// regression test.
func TestRecorderConcurrentOwners(t *testing.T) {
	r := NewRecorder()
	const owners = 48
	const opsPerOwner = 50
	var wg sync.WaitGroup
	for i := 0; i < owners; i++ {
		wg.Add(1)
		go func(o lock.Owner) {
			defer wg.Done()
			r.Begin(o, "t", txn.Update)
			for j := 0; j < opsPerOwner; j++ {
				if j%2 == 0 {
					r.Read(o, "k", metric.Value(j))
				} else {
					r.Write(o, "k", metric.Value(j-1), metric.Value(j), false)
				}
			}
			r.Commit(o)
		}(lock.Owner(i + 1))
	}
	wg.Wait()

	txns, ops := r.Snapshot()
	if len(txns) != owners {
		t.Fatalf("snapshot has %d txns, want %d", len(txns), owners)
	}
	if len(ops) != owners*opsPerOwner {
		t.Fatalf("snapshot has %d ops, want %d", len(ops), owners*opsPerOwner)
	}
	// Global order: strictly increasing, gap-free Seq.
	seen := make(map[uint64]bool, len(ops))
	for i, op := range ops {
		if i > 0 && ops[i-1].Seq >= op.Seq {
			t.Fatalf("ops[%d].Seq=%d not increasing after %d", i, op.Seq, ops[i-1].Seq)
		}
		seen[op.Seq] = true
	}
	for s := uint64(1); s <= uint64(len(ops)); s++ {
		if !seen[s] {
			t.Fatalf("global sequence has a gap at %d", s)
		}
	}
	// Per-transaction view: indices valid, owned, and in program order.
	committed, aborted, active := r.Counts()
	if committed != owners || aborted != 0 || active != 0 {
		t.Fatalf("counts = (%d,%d,%d), want (%d,0,0)", committed, aborted, active, owners)
	}
	for _, tx := range txns {
		if len(tx.Ops) != opsPerOwner {
			t.Fatalf("txn %d has %d ops, want %d", tx.Owner, len(tx.Ops), opsPerOwner)
		}
		lastVal := metric.Value(-1)
		for _, idx := range tx.Ops {
			if idx < 0 || idx >= len(ops) {
				t.Fatalf("txn %d op index %d out of range", tx.Owner, idx)
			}
			op := ops[idx]
			if op.Owner != tx.Owner {
				t.Fatalf("txn %d points at op owned by %d", tx.Owner, op.Owner)
			}
			if op.Value <= lastVal {
				t.Fatalf("txn %d ops out of program order: %d after %d", tx.Owner, op.Value, lastVal)
			}
			lastVal = op.Value
		}
	}
	// The merged history is one key written by everyone: the checker must
	// still terminate and produce a verdict over the merged snapshot.
	an := r.Check()
	if an.Serializable && len(an.Order) != owners {
		t.Fatalf("serialization order covers %d txns, want %d", len(an.Order), owners)
	}
	_ = storage.Key("k")
}
