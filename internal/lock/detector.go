package lock

import "sync"

// detector is the dedicated waits-for deadlock detector shared by every
// stripe of the lock table.
//
// Each stripe pushes an owner's outgoing waits-for edges into the
// detector synchronously, while holding that stripe's mutex, at the
// moment the owner is about to wait (Acquire) or stays waiting after a
// re-evaluation (wake). The detector therefore always holds the union
// of the per-stripe ground truth: an edge o→h exists iff o is enqueued
// behind holder h on some key right now.
//
// Correctness of cycle detection over this snapshot-by-construction
// graph: a real deadlock is a cycle o1→o2→…→o1 in the waits-for
// relation. Edges are only added by setEdges, which runs under the
// detector mutex and checks reachability immediately. Consider the last
// edge set that completes the cycle: at that moment every other edge of
// the cycle is already present (their owners are still blocked — a
// blocked owner's edges are only removed by the stripe that wakes or
// cancels it, and waking requires the holder to release, which a
// deadlocked holder never does). The completing setEdges call therefore
// observes the full cycle and reports it, and its caller aborts the
// requester — the same "victim is the requester closing the cycle"
// policy the process-global manager had. Conversely, a reported cycle
// consists only of currently-live edges, so there are no false victims
// from stale edges: edges are replaced atomically per owner and removed
// before the owner's wait ends.
//
// Lock ordering: stripe.mu → detector.mu. The detector never calls back
// into any stripe.
type detector struct {
	mu    sync.Mutex
	waits map[Owner]map[Owner]struct{}
}

func newDetector() *detector {
	return &detector{waits: make(map[Owner]map[Owner]struct{})}
}

// setEdges replaces owner's outgoing waits-for edges and reports whether
// the new edges close a cycle back to owner. On a cycle all of owner's
// edges are dropped: the caller aborts the requester as the deadlock
// victim, so it stops waiting entirely.
func (d *detector) setEdges(owner Owner, targets []HolderInfo) bool {
	edges := make(map[Owner]struct{}, len(targets))
	for _, h := range targets {
		edges[h.Owner] = struct{}{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.waits[owner] = edges
	if d.cycleFromLocked(owner) {
		delete(d.waits, owner)
		return true
	}
	return false
}

// clear removes owner's outgoing edges (its wait ended or it released).
func (d *detector) clear(owner Owner) {
	d.mu.Lock()
	delete(d.waits, owner)
	d.mu.Unlock()
}

// cycleFromLocked reports whether owner can reach itself.
func (d *detector) cycleFromLocked(owner Owner) bool {
	seen := make(map[Owner]struct{})
	var stack []Owner
	for t := range d.waits[owner] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == owner {
			return true
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		for t := range d.waits[v] {
			stack = append(stack, t)
		}
	}
	return false
}

// WaitGraph returns a copy of the current waits-for edges, for tests
// and debugging.
func (d *detector) WaitGraph() map[Owner][]Owner {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[Owner][]Owner, len(d.waits))
	for o, es := range d.waits {
		for t := range es {
			out[o] = append(out[o], t)
		}
	}
	return out
}
