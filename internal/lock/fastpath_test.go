package lock

import (
	"context"
	"testing"
)

// The lock manager's uncontended hot path must stay lean with no wait
// observer installed (the default): the observability shims are nil
// checks, never boxed events. The only steady-state allocations in an
// acquire/release cycle are the per-owner held-keys slice that
// ReleaseAll hands back (one slice + one growth for two keys); anything
// beyond that budget means the instrumentation leaked onto the fast
// path.

func TestAcquireReleaseNoObserverZeroAlloc(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	// Warm the table: entries persist across ReleaseAll.
	if err := m.Acquire(ctx, 1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "y", Shared); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.Acquire(ctx, 1, "x", Exclusive); err != nil {
			t.Fatal(err)
		}
		if err := m.Acquire(ctx, 1, "y", Shared); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(1)
	})
	const heldSliceBudget = 2 // os.held[owner] slice rebuilt after ReleaseAll
	if allocs > heldSliceBudget {
		t.Errorf("uncontended acquire/release with nil observer: %.1f allocs/op, want <= %d",
			allocs, heldSliceBudget)
	}
}

func TestReacquireHeldLockZeroAlloc(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "x", Exclusive); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if err := m.Acquire(ctx, 1, "x", Exclusive); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("re-acquire of a held lock: %.1f allocs/op, want 0", allocs)
	}
}
