// Package lock implements the lock manager shared by concurrency control
// and divergence control.
//
// It provides shared/exclusive locks over storage keys with strict
// two-phase semantics (a transaction releases everything at end), a
// waits-for-graph deadlock detector that aborts the requester closing a
// cycle, and — the hook divergence control plugs into — a conflict
// Arbiter: before a conflicting request blocks, the arbiter may "absorb"
// the conflict, granting incompatible locks simultaneously. Two-phase
// locking divergence control (Wu-Yu-Pu) is exactly ordinary 2PL with an
// arbiter that admits query/update read-write conflicts while the
// import/export fuzziness accounts stay within their ε-specs.
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"asynctp/internal/storage"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared is the read lock.
	Shared Mode = iota + 1
	// Exclusive is the write lock.
	Exclusive
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports classic S/X compatibility.
func Compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Owner identifies a lock owner (a transaction or piece execution).
type Owner int64

// ErrDeadlock is returned to the requester chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock victim")

// HolderInfo describes one conflicting holder passed to the Arbiter.
type HolderInfo struct {
	Owner Owner
	Mode  Mode
}

// ConflictInfo describes a request that conflicts with current holders.
type ConflictInfo struct {
	Key       storage.Key
	Requester Owner
	Mode      Mode
	// Holders lists only the holders the request is incompatible with.
	Holders []HolderInfo
}

// WaitObserver is notified of every wait-state transition a request goes
// through, so that a deterministic scheduler can account for lock-blocked
// transactions exactly.
//
// Blocked and Woken are called with the manager's internal mutex held and
// must not call back into the manager; they should only update scheduler
// state. Woken runs on the *releasing* goroutine, synchronously with the
// release, so a scheduler learns about the wakeup before the releaser's
// turn ends. Resumed runs on the waiter's own goroutine, with no manager
// mutex held, immediately after it receives its grant and before it
// executes anything else — it MAY block, which is exactly how a schedule
// explorer turns lock wakeups into scheduling points.
type WaitObserver interface {
	// Blocked fires when owner enqueues to wait for key.
	Blocked(owner Owner, key storage.Key)
	// Woken fires when a blocked owner is resolved (granted or chosen as
	// deadlock victim) by another transaction's release.
	Woken(owner Owner)
	// Resumed fires on owner's goroutine right after its wait ends.
	Resumed(owner Owner)
}

// Arbiter decides whether a conflicting request may be granted anyway.
//
// Absorb must atomically account for the conflict (e.g. charge fuzziness
// to both sides) and return true, or leave all state unchanged and return
// false. It is called with the lock manager's internal mutex held and must
// not call back into the manager.
type Arbiter interface {
	Absorb(ConflictInfo) bool
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Grants      uint64 // requests granted without conflict
	FuzzyGrants uint64 // conflicting requests absorbed by the arbiter
	Blocks      uint64 // requests that had to wait at least once
	Deadlocks   uint64 // requests aborted as deadlock victims
}

// waiter is a blocked request.
type waiter struct {
	owner Owner
	mode  Mode
	// grant is closed exactly once with the outcome.
	grant chan error
	// granted/cancelled mark the waiter resolved so late wakeups skip it.
	done bool
}

// entry is the lock table row for one key.
type entry struct {
	holders map[Owner]Mode
	queue   []*waiter
}

// Manager is the lock manager.
type Manager struct {
	mu      sync.Mutex
	table   map[storage.Key]*entry
	held    map[Owner]map[storage.Key]struct{}
	waits   map[Owner]map[Owner]struct{} // waits-for edges
	arbiter Arbiter
	waitObs WaitObserver
	stats   Stats
}

// Option configures a Manager.
type Option func(*Manager)

// WithArbiter installs a conflict arbiter (divergence control).
func WithArbiter(a Arbiter) Option {
	return func(m *Manager) { m.arbiter = a }
}

// WithWaitObserver installs a wait observer (schedule exploration).
func WithWaitObserver(o WaitObserver) Option {
	return func(m *Manager) { m.waitObs = o }
}

// NewManager returns a lock manager. With no options it implements plain
// strict two-phase locking.
func NewManager(opts ...Option) *Manager {
	m := &Manager{
		table: make(map[storage.Key]*entry),
		held:  make(map[Owner]map[storage.Key]struct{}),
		waits: make(map[Owner]map[Owner]struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// conflicts returns the holders incompatible with owner requesting mode.
func (e *entry) conflicts(owner Owner, mode Mode) []HolderInfo {
	var out []HolderInfo
	for h, hm := range e.holders {
		if h == owner {
			continue
		}
		if !Compatible(mode, hm) {
			out = append(out, HolderInfo{Owner: h, Mode: hm})
		}
	}
	return out
}

// grantLocked records owner holding key in at least mode.
func (m *Manager) grantLocked(e *entry, key storage.Key, owner Owner, mode Mode) {
	if cur, ok := e.holders[owner]; !ok || mode > cur {
		e.holders[owner] = mode
	}
	hs := m.held[owner]
	if hs == nil {
		hs = make(map[storage.Key]struct{})
		m.held[owner] = hs
	}
	hs[key] = struct{}{}
}

// setWaitEdges replaces owner's outgoing waits-for edges and reports
// whether the new edges close a cycle back to owner.
func (m *Manager) setWaitEdges(owner Owner, targets []HolderInfo) bool {
	edges := make(map[Owner]struct{}, len(targets))
	for _, h := range targets {
		edges[h.Owner] = struct{}{}
	}
	m.waits[owner] = edges
	return m.cycleFrom(owner)
}

// cycleFrom reports whether owner can reach itself in the waits-for graph.
func (m *Manager) cycleFrom(owner Owner) bool {
	seen := make(map[Owner]struct{})
	var stack []Owner
	for t := range m.waits[owner] {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == owner {
			return true
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		for t := range m.waits[v] {
			stack = append(stack, t)
		}
	}
	return false
}

// Acquire obtains key in mode for owner, blocking while conflicting locks
// are held. It returns ErrDeadlock if granting would require waiting in a
// waits-for cycle, or ctx.Err() if the context ends first. Re-acquiring a
// held lock (including S→X upgrade) is supported.
func (m *Manager) Acquire(ctx context.Context, owner Owner, key storage.Key, mode Mode) error {
	m.mu.Lock()
	e := m.table[key]
	if e == nil {
		e = &entry{holders: make(map[Owner]Mode)}
		m.table[key] = e
	}
	if cur, ok := e.holders[owner]; ok && cur >= mode {
		m.mu.Unlock()
		return nil // already held in a sufficient mode
	}
	conf := e.conflicts(owner, mode)
	if len(conf) == 0 {
		m.grantLocked(e, key, owner, mode)
		m.stats.Grants++
		m.mu.Unlock()
		return nil
	}
	if m.arbiter != nil && m.arbiter.Absorb(ConflictInfo{
		Key: key, Requester: owner, Mode: mode, Holders: conf,
	}) {
		m.grantLocked(e, key, owner, mode)
		m.stats.FuzzyGrants++
		m.mu.Unlock()
		return nil
	}
	// Must wait. Check for a deadlock the new edges would create.
	if m.setWaitEdges(owner, conf) {
		delete(m.waits, owner)
		m.stats.Deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	w := &waiter{owner: owner, mode: mode, grant: make(chan error, 1)}
	e.queue = append(e.queue, w)
	m.stats.Blocks++
	if m.waitObs != nil {
		m.waitObs.Blocked(owner, key)
	}
	m.mu.Unlock()

	select {
	case err := <-w.grant:
		if m.waitObs != nil {
			m.waitObs.Resumed(owner)
		}
		return err
	case <-ctx.Done():
		m.mu.Lock()
		if !w.done {
			w.done = true
			m.removeWaiterLocked(e, w)
			delete(m.waits, owner)
			if m.waitObs != nil {
				m.waitObs.Woken(owner)
			}
			m.mu.Unlock()
			if m.waitObs != nil {
				m.waitObs.Resumed(owner)
			}
			return ctx.Err()
		}
		m.mu.Unlock()
		// Resolved concurrently with cancellation: honor the resolution.
		err := <-w.grant
		if m.waitObs != nil {
			m.waitObs.Resumed(owner)
		}
		return err
	}
}

// removeWaiterLocked drops w from e's queue.
func (m *Manager) removeWaiterLocked(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll releases every lock owner holds and wakes whatever can now
// run. It is the "end of transaction" of strict two-phase locking.
func (m *Manager) ReleaseAll(owner Owner) {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := m.held[owner]
	delete(m.held, owner)
	delete(m.waits, owner)
	for key := range keys {
		e := m.table[key]
		if e == nil {
			continue
		}
		delete(e.holders, owner)
		m.wakeLocked(e, key)
		if len(e.holders) == 0 && len(e.queue) == 0 {
			delete(m.table, key)
		}
	}
}

// wakeLocked re-evaluates e's wait queue in order, granting every waiter
// that is now compatible (or absorbed), and refreshing waits-for edges for
// those that remain blocked. A waiter whose refreshed edges close a cycle
// is aborted as a deadlock victim.
func (m *Manager) wakeLocked(e *entry, key storage.Key) {
	var remaining []*waiter
	for _, w := range e.queue {
		if w.done {
			continue
		}
		conf := e.conflicts(w.owner, w.mode)
		switch {
		case len(conf) == 0:
			m.grantLocked(e, key, w.owner, w.mode)
			delete(m.waits, w.owner)
			w.done = true
			if m.waitObs != nil {
				m.waitObs.Woken(w.owner)
			}
			w.grant <- nil
		case m.arbiter != nil && m.arbiter.Absorb(ConflictInfo{
			Key: key, Requester: w.owner, Mode: w.mode, Holders: conf,
		}):
			m.grantLocked(e, key, w.owner, w.mode)
			m.stats.FuzzyGrants++
			delete(m.waits, w.owner)
			w.done = true
			if m.waitObs != nil {
				m.waitObs.Woken(w.owner)
			}
			w.grant <- nil
		default:
			if m.setWaitEdges(w.owner, conf) {
				delete(m.waits, w.owner)
				m.stats.Deadlocks++
				w.done = true
				if m.waitObs != nil {
					m.waitObs.Woken(w.owner)
				}
				w.grant <- ErrDeadlock
				continue
			}
			remaining = append(remaining, w)
		}
	}
	e.queue = remaining
}

// HoldsLock reports whether owner currently holds key in at least mode.
func (m *Manager) HoldsLock(owner Owner, key storage.Key, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.table[key]
	if e == nil {
		return false
	}
	cur, ok := e.holders[owner]
	return ok && cur >= mode
}

// HeldKeys returns the keys owner currently holds (any mode).
func (m *Manager) HeldKeys(owner Owner) []storage.Key {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []storage.Key
	for k := range m.held[owner] {
		out = append(out, k)
	}
	return out
}
