// Package lock implements the lock manager shared by concurrency control
// and divergence control.
//
// It provides shared/exclusive locks over storage keys with strict
// two-phase semantics (a transaction releases everything at end), a
// waits-for-graph deadlock detector that aborts the requester closing a
// cycle, and — the hook divergence control plugs into — a conflict
// Arbiter: before a conflicting request blocks, the arbiter may "absorb"
// the conflict, granting incompatible locks simultaneously. Two-phase
// locking divergence control (Wu-Yu-Pu) is exactly ordinary 2PL with an
// arbiter that admits query/update read-write conflicts while the
// import/export fuzziness accounts stay within their ε-specs.
//
// # Striping
//
// The lock table is sharded by key hash into N stripes, each with its
// own mutex and wait queues, so requests on unrelated keys never touch
// the same mutex. Per-owner held-key sets live in a separate shard
// layer keyed by owner, and the waits-for deadlock detector is a
// dedicated component (see detector.go) that stripes push edges into
// synchronously. Counters are atomics. The observable semantics —
// grant/block/absorb decisions, the deadlock victim policy, and the
// WaitObserver event order under a serial scheduler — are identical to
// the previous process-global implementation; only the contention
// domain shrinks from "the whole manager" to "one key's stripe".
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"asynctp/internal/storage"
)

// Mode is a lock mode.
type Mode int

// Lock modes.
const (
	// Shared is the read lock.
	Shared Mode = iota + 1
	// Exclusive is the write lock.
	Exclusive
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports classic S/X compatibility.
func Compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Owner identifies a lock owner (a transaction or piece execution).
type Owner int64

// ErrDeadlock is returned to the requester chosen as deadlock victim.
var ErrDeadlock = errors.New("lock: deadlock victim")

// HolderInfo describes one conflicting holder passed to the Arbiter.
type HolderInfo struct {
	Owner Owner
	Mode  Mode
}

// ConflictInfo describes a request that conflicts with current holders.
type ConflictInfo struct {
	Key       storage.Key
	Requester Owner
	Mode      Mode
	// Holders lists only the holders the request is incompatible with.
	Holders []HolderInfo
}

// WaitObserver is notified of every wait-state transition a request goes
// through, so that a deterministic scheduler can account for lock-blocked
// transactions exactly.
//
// Blocked and Woken are called with the key's stripe mutex held and
// must not call back into the manager; they should only update scheduler
// state. Woken runs on the *releasing* goroutine, synchronously with the
// release, so a scheduler learns about the wakeup before the releaser's
// turn ends. Resumed runs on the waiter's own goroutine, with no stripe
// mutex held, immediately after it receives its grant and before it
// executes anything else — it MAY block, which is exactly how a schedule
// explorer turns lock wakeups into scheduling points.
type WaitObserver interface {
	// Blocked fires when owner enqueues to wait for key.
	Blocked(owner Owner, key storage.Key)
	// Woken fires when a blocked owner is resolved (granted or chosen as
	// deadlock victim) by another transaction's release.
	Woken(owner Owner)
	// Resumed fires on owner's goroutine right after its wait ends.
	Resumed(owner Owner)
}

// Arbiter decides whether a conflicting request may be granted anyway.
//
// Absorb must atomically account for the conflict (e.g. charge fuzziness
// to both sides) and return true, or leave all state unchanged and return
// false. It is called with the key's stripe mutex held and must not call
// back into the manager.
type Arbiter interface {
	Absorb(ConflictInfo) bool
}

// Stats are cumulative lock-manager counters.
type Stats struct {
	Grants      uint64 // requests granted without conflict
	FuzzyGrants uint64 // conflicting requests absorbed by the arbiter
	Blocks      uint64 // requests that had to wait at least once
	Deadlocks   uint64 // requests aborted as deadlock victims
}

// waiter is a blocked request.
type waiter struct {
	owner Owner
	mode  Mode
	// grant is closed exactly once with the outcome.
	grant chan error
	// granted/cancelled mark the waiter resolved so late wakeups skip it.
	done bool
}

// entry is the lock table row for one key.
type entry struct {
	holders map[Owner]Mode
	queue   []*waiter
}

// stripe is one shard of the lock table: the keys hashing to it, their
// holders, and their wait queues, under one mutex.
type stripe struct {
	mu    sync.Mutex
	table map[storage.Key]*entry
}

// ownerShard is one shard of the per-owner held-key index. Held keys
// are kept as a sorted slice: transactions hold few keys, membership is
// a binary search, and ReleaseAll walks the slice directly — no map
// allocation per transaction and no sort at release time.
type ownerShard struct {
	mu   sync.Mutex
	held map[Owner][]storage.Key
}

// DefaultStripes is the default lock-table stripe count.
const DefaultStripes = 16

// entryCacheCap bounds how many empty entries a stripe keeps cached to
// avoid re-allocating the table row (and its holder map) for hot keys.
// Beyond the cap, entries with no holders and no waiters are deleted,
// so key-churn workloads do not grow the table without bound.
const entryCacheCap = 1024

// Manager is the lock manager.
type Manager struct {
	stripes []*stripe
	owners  []*ownerShard
	det     *detector
	arbiter Arbiter
	waitObs WaitObserver

	grants      atomic.Uint64
	fuzzyGrants atomic.Uint64
	blocks      atomic.Uint64
	deadlocks   atomic.Uint64
}

// Option configures a Manager.
type Option func(*Manager)

// WithArbiter installs a conflict arbiter (divergence control).
func WithArbiter(a Arbiter) Option {
	return func(m *Manager) { m.arbiter = a }
}

// WithWaitObserver installs a wait observer (schedule exploration).
func WithWaitObserver(o WaitObserver) Option {
	return func(m *Manager) { m.waitObs = o }
}

// WithStripes sets the lock-table stripe count (n < 1 selects
// DefaultStripes). The stripe count changes only the contention domain,
// never the grant/block/victim decisions: a serial test driven with 1
// stripe and with 64 stripes observes byte-identical histories.
func WithStripes(n int) Option {
	return func(m *Manager) {
		if n < 1 {
			n = DefaultStripes
		}
		m.stripes = make([]*stripe, n)
	}
}

// NewManager returns a lock manager. With no options it implements plain
// strict two-phase locking.
func NewManager(opts ...Option) *Manager {
	m := &Manager{det: newDetector()}
	for _, opt := range opts {
		opt(m)
	}
	if m.stripes == nil {
		m.stripes = make([]*stripe, DefaultStripes)
	}
	for i := range m.stripes {
		m.stripes[i] = &stripe{table: make(map[storage.Key]*entry)}
	}
	// Owner shards track per-transaction held sets; size them with the
	// stripe count (the two layers scale together).
	m.owners = make([]*ownerShard, len(m.stripes))
	for i := range m.owners {
		m.owners[i] = &ownerShard{held: make(map[Owner][]storage.Key)}
	}
	return m
}

// Stripes returns the configured stripe count.
func (m *Manager) Stripes() int { return len(m.stripes) }

// stripeFor returns key's stripe (FNV-1a over the key bytes).
func (m *Manager) stripeFor(key storage.Key) *stripe {
	if len(m.stripes) == 1 {
		return m.stripes[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return m.stripes[h%uint64(len(m.stripes))]
}

// ownerShardFor returns owner's shard in the held-key index.
func (m *Manager) ownerShardFor(owner Owner) *ownerShard {
	return m.owners[uint64(owner)%uint64(len(m.owners))]
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Grants:      m.grants.Load(),
		FuzzyGrants: m.fuzzyGrants.Load(),
		Blocks:      m.blocks.Load(),
		Deadlocks:   m.deadlocks.Load(),
	}
}

// WaitGraph returns a copy of the current waits-for edges (tests and
// debugging).
func (m *Manager) WaitGraph() map[Owner][]Owner { return m.det.WaitGraph() }

// conflicts returns the holders incompatible with owner requesting mode.
func (e *entry) conflicts(owner Owner, mode Mode) []HolderInfo {
	var out []HolderInfo
	for h, hm := range e.holders {
		if h == owner {
			continue
		}
		if !Compatible(mode, hm) {
			out = append(out, HolderInfo{Owner: h, Mode: hm})
		}
	}
	return out
}

// grantLocked records owner holding key in at least mode. The key's
// stripe mutex is held; the owner shard mutex nests inside it.
func (m *Manager) grantLocked(e *entry, key storage.Key, owner Owner, mode Mode) {
	if cur, ok := e.holders[owner]; !ok || mode > cur {
		e.holders[owner] = mode
	}
	os := m.ownerShardFor(owner)
	os.mu.Lock()
	os.held[owner] = insertKey(os.held[owner], key)
	os.mu.Unlock()
}

// insertKey inserts key into the sorted slice if absent.
func insertKey(keys []storage.Key, key storage.Key) []storage.Key {
	// Binary search for the insertion point (manual loop: no closure).
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == key {
		return keys // already held
	}
	keys = append(keys, "")
	copy(keys[lo+1:], keys[lo:])
	keys[lo] = key
	return keys
}

// Acquire obtains key in mode for owner, blocking while conflicting locks
// are held. It returns ErrDeadlock if granting would require waiting in a
// waits-for cycle, or ctx.Err() if the context ends first. Re-acquiring a
// held lock (including S→X upgrade) is supported.
func (m *Manager) Acquire(ctx context.Context, owner Owner, key storage.Key, mode Mode) error {
	s := m.stripeFor(key)
	s.mu.Lock()
	e := s.table[key]
	if e == nil {
		e = &entry{holders: make(map[Owner]Mode)}
		s.table[key] = e
	}
	if cur, ok := e.holders[owner]; ok && cur >= mode {
		s.mu.Unlock()
		return nil // already held in a sufficient mode
	}
	conf := e.conflicts(owner, mode)
	if len(conf) == 0 {
		m.grantLocked(e, key, owner, mode)
		m.grants.Add(1)
		s.mu.Unlock()
		return nil
	}
	if m.arbiter != nil && m.arbiter.Absorb(ConflictInfo{
		Key: key, Requester: owner, Mode: mode, Holders: conf,
	}) {
		m.grantLocked(e, key, owner, mode)
		m.fuzzyGrants.Add(1)
		s.mu.Unlock()
		return nil
	}
	// Must wait. Push the new waits-for edges into the detector; if they
	// close a cycle the requester is the victim. The holders cannot
	// release key concurrently (that needs this stripe's mutex), so the
	// edges are live when set.
	if m.det.setEdges(owner, conf) {
		m.deadlocks.Add(1)
		s.mu.Unlock()
		return ErrDeadlock
	}
	w := &waiter{owner: owner, mode: mode, grant: make(chan error, 1)}
	e.queue = append(e.queue, w)
	m.blocks.Add(1)
	if m.waitObs != nil {
		m.waitObs.Blocked(owner, key)
	}
	s.mu.Unlock()

	select {
	case err := <-w.grant:
		if m.waitObs != nil {
			m.waitObs.Resumed(owner)
		}
		return err
	case <-ctx.Done():
		s.mu.Lock()
		if !w.done {
			w.done = true
			removeWaiter(e, w)
			m.det.clear(owner)
			if m.waitObs != nil {
				m.waitObs.Woken(owner)
			}
			s.mu.Unlock()
			if m.waitObs != nil {
				m.waitObs.Resumed(owner)
			}
			return ctx.Err()
		}
		s.mu.Unlock()
		// Resolved concurrently with cancellation: honor the resolution.
		err := <-w.grant
		if m.waitObs != nil {
			m.waitObs.Resumed(owner)
		}
		return err
	}
}

// removeWaiter drops w from e's queue (the stripe mutex is held).
func removeWaiter(e *entry, w *waiter) {
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll releases every lock owner holds and wakes whatever can now
// run. It is the "end of transaction" of strict two-phase locking.
//
// Keys are processed in sorted order (the held slice's invariant), one
// stripe lock at a time, so the wake/absorb sequence a release triggers
// is a deterministic function of the held set (the process-global
// implementation iterated a map).
func (m *Manager) ReleaseAll(owner Owner) {
	os := m.ownerShardFor(owner)
	os.mu.Lock()
	keys := os.held[owner]
	delete(os.held, owner)
	os.mu.Unlock()
	m.det.clear(owner)
	for _, key := range keys {
		s := m.stripeFor(key)
		s.mu.Lock()
		e := s.table[key]
		if e == nil {
			s.mu.Unlock()
			continue
		}
		delete(e.holders, owner)
		m.wakeLocked(s, e, key)
		if len(e.holders) == 0 && len(e.queue) == 0 && len(s.table) > entryCacheCap {
			delete(s.table, key)
		}
		s.mu.Unlock()
	}
}

// wakeLocked re-evaluates e's wait queue in order, granting every waiter
// that is now compatible (or absorbed), and refreshing waits-for edges for
// those that remain blocked. A waiter whose refreshed edges close a cycle
// is aborted as a deadlock victim. The stripe mutex is held.
func (m *Manager) wakeLocked(s *stripe, e *entry, key storage.Key) {
	var remaining []*waiter
	for _, w := range e.queue {
		if w.done {
			continue
		}
		conf := e.conflicts(w.owner, w.mode)
		switch {
		case len(conf) == 0:
			m.grantLocked(e, key, w.owner, w.mode)
			m.det.clear(w.owner)
			w.done = true
			if m.waitObs != nil {
				m.waitObs.Woken(w.owner)
			}
			w.grant <- nil
		case m.arbiter != nil && m.arbiter.Absorb(ConflictInfo{
			Key: key, Requester: w.owner, Mode: w.mode, Holders: conf,
		}):
			m.grantLocked(e, key, w.owner, w.mode)
			m.fuzzyGrants.Add(1)
			m.det.clear(w.owner)
			w.done = true
			if m.waitObs != nil {
				m.waitObs.Woken(w.owner)
			}
			w.grant <- nil
		default:
			if m.det.setEdges(w.owner, conf) {
				m.deadlocks.Add(1)
				w.done = true
				if m.waitObs != nil {
					m.waitObs.Woken(w.owner)
				}
				w.grant <- ErrDeadlock
				continue
			}
			remaining = append(remaining, w)
		}
	}
	e.queue = remaining
}

// HoldsLock reports whether owner currently holds key in at least mode.
func (m *Manager) HoldsLock(owner Owner, key storage.Key, mode Mode) bool {
	s := m.stripeFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.table[key]
	if e == nil {
		return false
	}
	cur, ok := e.holders[owner]
	return ok && cur >= mode
}

// HeldKeys returns the keys owner currently holds (any mode).
func (m *Manager) HeldKeys(owner Owner) []storage.Key {
	os := m.ownerShardFor(owner)
	os.mu.Lock()
	defer os.mu.Unlock()
	held := os.held[owner]
	out := make([]storage.Key, len(held))
	copy(out, held)
	return out
}
