package lock

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"asynctp/internal/storage"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if !m.HoldsLock(1, "k", Shared) || !m.HoldsLock(2, "k", Shared) {
		t.Error("both owners should hold S")
	}
}

func TestExclusiveBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- m.Acquire(ctx, 2, "k", Shared) }()
	select {
	case err := <-acquired:
		t.Fatalf("S granted while X held: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(1)
	if err := <-acquired; err != nil {
		t.Fatalf("S after release: %v", err)
	}
	if !m.HoldsLock(2, "k", Shared) {
		t.Error("owner 2 should hold S")
	}
	if m.HoldsLock(1, "k", Shared) {
		t.Error("owner 1 should hold nothing")
	}
}

func TestReacquireAndUpgrade(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	// Re-acquiring S and upgrading to X while alone must not block.
	if err := m.Acquire(ctx, 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.HoldsLock(1, "k", Exclusive) {
		t.Error("upgrade to X failed")
	}
	// X implies S.
	if !m.HoldsLock(1, "k", Shared) {
		t.Error("X should satisfy HoldsLock(S)")
	}
}

func TestUpgradeWaitsForReaders(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	up := make(chan error, 1)
	go func() { up <- m.Acquire(ctx, 1, "k", Exclusive) }()
	select {
	case err := <-up:
		t.Fatalf("upgrade granted with another reader: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-up; err != nil {
		t.Fatalf("upgrade after reader left: %v", err)
	}
}

func TestDeadlockDetectedTwoKeys(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	t1 := make(chan error, 1)
	go func() { t1 <- m.Acquire(ctx, 1, "b", Exclusive) }()
	time.Sleep(30 * time.Millisecond) // let owner 1 block on b
	err2 := m.Acquire(ctx, 2, "a", Exclusive)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("owner 2 got %v, want ErrDeadlock", err2)
	}
	// Victim releases; owner 1 proceeds.
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatalf("owner 1 after victim release: %v", err)
	}
	if got := m.Stats().Deadlocks; got != 1 {
		t.Errorf("Deadlocks = %d, want 1", got)
	}
}

func TestUpgradeDeadlock(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "k", Shared); err != nil {
		t.Fatal(err)
	}
	t1 := make(chan error, 1)
	go func() { t1 <- m.Acquire(ctx, 1, "k", Exclusive) }()
	time.Sleep(30 * time.Millisecond)
	err2 := m.Acquire(ctx, 2, "k", Exclusive)
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("upgrade-upgrade got %v, want ErrDeadlock", err2)
	}
	m.ReleaseAll(2)
	if err := <-t1; err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellationRemovesWaiter(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(context.Background(), 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- m.Acquire(ctx, 2, "k", Shared) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-res; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// The cancelled waiter must not be granted later.
	m.ReleaseAll(1)
	time.Sleep(20 * time.Millisecond)
	if m.HoldsLock(2, "k", Shared) {
		t.Error("cancelled waiter was granted")
	}
}

// absorbAll is an arbiter that absorbs everything and records calls.
type absorbAll struct {
	mu    sync.Mutex
	calls []ConflictInfo
}

func (a *absorbAll) Absorb(ci ConflictInfo) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.calls = append(a.calls, ci)
	return true
}

func TestArbiterAbsorbsConflict(t *testing.T) {
	arb := &absorbAll{}
	m := NewManager(WithArbiter(arb))
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	// A conflicting S request is granted immediately via the arbiter.
	if err := m.Acquire(ctx, 2, "k", Shared); err != nil {
		t.Fatalf("absorbed acquire: %v", err)
	}
	if !m.HoldsLock(1, "k", Exclusive) || !m.HoldsLock(2, "k", Shared) {
		t.Error("fuzzy co-holding not recorded")
	}
	if got := m.Stats().FuzzyGrants; got != 1 {
		t.Errorf("FuzzyGrants = %d, want 1", got)
	}
	arb.mu.Lock()
	defer arb.mu.Unlock()
	if len(arb.calls) != 1 {
		t.Fatalf("arbiter calls = %d, want 1", len(arb.calls))
	}
	ci := arb.calls[0]
	if ci.Key != "k" || ci.Requester != 2 || ci.Mode != Shared ||
		len(ci.Holders) != 1 || ci.Holders[0].Owner != 1 || ci.Holders[0].Mode != Exclusive {
		t.Errorf("conflict info = %+v", ci)
	}
}

// absorbNth absorbs only from the nth call on.
type absorbNth struct {
	mu   sync.Mutex
	n    int
	seen int
}

func (a *absorbNth) Absorb(ConflictInfo) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seen++
	return a.seen >= a.n
}

func TestArbiterConsultedAgainOnWake(t *testing.T) {
	// First consult (at request) refuses; the waiter blocks. When a
	// holder releases and one conflicting holder remains, the arbiter is
	// consulted again and absorbs.
	arb := &absorbNth{n: 2}
	m := NewManager(WithArbiter(arb))
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "k", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 3, "q", Exclusive); err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() { res <- m.Acquire(ctx, 2, "k", Shared) }()
	time.Sleep(30 * time.Millisecond)
	select {
	case err := <-res:
		t.Fatalf("granted too early: %v", err)
	default:
	}
	// Releasing an unrelated key does not wake k's queue; releasing a
	// related holder does. Owner 1 re-acquires nothing; instead grab k
	// with a second conflicting holder to exercise re-evaluation.
	m.ReleaseAll(1)
	if err := <-res; err != nil {
		t.Fatalf("wake grant: %v", err)
	}
	m.ReleaseAll(3)
}

func TestReleaseAllIsIdempotentAndScoped(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(1)
	m.ReleaseAll(1) // idempotent
	if m.HoldsLock(1, "a", Shared) {
		t.Error("owner 1 still holds a")
	}
	if !m.HoldsLock(2, "b", Exclusive) {
		t.Error("owner 2 lost b")
	}
	m.ReleaseAll(99) // never held anything
}

func TestHeldKeys(t *testing.T) {
	m := NewManager()
	ctx := ctxT(t)
	if err := m.Acquire(ctx, 1, "a", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	keys := m.HeldKeys(1)
	if len(keys) != 2 {
		t.Errorf("HeldKeys = %v, want 2 keys", keys)
	}
}

func TestStressNoLostGrantsOrLeaks(t *testing.T) {
	// Many owners acquire random key sets in sorted order (deadlock-free)
	// and release; every acquire must eventually succeed and the table
	// must drain empty.
	m := NewManager()
	keys := []storage.Key{"a", "b", "c", "d", "e"}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for it := 0; it < 50; it++ {
				owner := Owner(id*1000 + it)
				start := rng.Intn(len(keys))
				for j := start; j < len(keys); j++ {
					mode := Shared
					if rng.Intn(2) == 0 {
						mode = Exclusive
					}
					if err := m.Acquire(context.Background(), owner, keys[j], mode); err != nil {
						errs <- err
						return
					}
				}
				m.ReleaseAll(owner)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("stress acquire: %v", err)
	}
	// Empty entries may stay cached (entryCacheCap), but none may retain
	// holders or waiters, and the per-owner index must be fully drained.
	for _, s := range m.stripes {
		s.mu.Lock()
		for k, e := range s.table {
			if len(e.holders) != 0 || len(e.queue) != 0 {
				t.Errorf("lock entry %q not drained: %d holders, %d waiters", k, len(e.holders), len(e.queue))
			}
		}
		s.mu.Unlock()
	}
	for _, sh := range m.owners {
		sh.mu.Lock()
		if len(sh.held) != 0 {
			t.Errorf("held map not drained: %d owners", len(sh.held))
		}
		sh.mu.Unlock()
	}
}

func TestStressWithDeadlocksResolves(t *testing.T) {
	// Random (unordered) acquisition across few keys with retries: the
	// detector must keep the system live.
	m := NewManager()
	keys := []storage.Key{"a", "b", "c"}
	var wg sync.WaitGroup
	var done sync.Map
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) + 7))
			for it := 0; it < 30; it++ {
				owner := Owner(id*1000 + it)
			retry:
				for {
					order := rng.Perm(len(keys))
					ok := true
					for _, j := range order[:2] {
						if err := m.Acquire(context.Background(), owner, keys[j], Exclusive); err != nil {
							m.ReleaseAll(owner)
							ok = false
							break
						}
					}
					if ok {
						break retry
					}
				}
				m.ReleaseAll(owner)
			}
			done.Store(id, true)
		}(i)
	}
	ok := make(chan struct{})
	go func() { wg.Wait(); close(ok) }()
	select {
	case <-ok:
	case <-time.After(20 * time.Second):
		t.Fatal("stress with deadlocks did not finish: likely lost wakeup")
	}
}
