package lock

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"asynctp/internal/storage"
)

// TestWithStripesValidation pins the option's clamping and accessor.
func TestWithStripesValidation(t *testing.T) {
	if got := NewManager().Stripes(); got != DefaultStripes {
		t.Errorf("default stripes = %d, want %d", got, DefaultStripes)
	}
	if got := NewManager(WithStripes(1)).Stripes(); got != 1 {
		t.Errorf("stripes = %d, want 1", got)
	}
	if got := NewManager(WithStripes(0)).Stripes(); got != DefaultStripes {
		t.Errorf("stripes(0) = %d, want default %d", got, DefaultStripes)
	}
	if got := NewManager(WithStripes(-3)).Stripes(); got != DefaultStripes {
		t.Errorf("stripes(-3) = %d, want default %d", got, DefaultStripes)
	}
}

// TestStressStripeCounts hammers the manager at several stripe counts
// with two deliberately different key populations:
//
//   - "hot": a single key, so every request lands on ONE stripe and the
//     striped manager degenerates to the old single-mutex behaviour;
//   - "spread": many keys, so requests fan out across stripes and the
//     per-stripe mutexes, per-owner shards, and the shared deadlock
//     detector all run concurrently.
//
// Acquisition is in sorted key order (deadlock-free), so every acquire
// must succeed and the table must drain. Run under -race this is the
// striping data-race regression test.
func TestStressStripeCounts(t *testing.T) {
	for _, stripes := range []int{1, 4, 16} {
		for _, pop := range []struct {
			name string
			keys []storage.Key
		}{
			{"hot", []storage.Key{"hot"}},
			{"spread", func() []storage.Key {
				ks := make([]storage.Key, 32)
				for i := range ks {
					ks[i] = storage.Key(fmt.Sprintf("k%02d", i))
				}
				return ks
			}()},
		} {
			t.Run(fmt.Sprintf("stripes=%d/%s", stripes, pop.name), func(t *testing.T) {
				m := NewManager(WithStripes(stripes))
				var wg sync.WaitGroup
				errs := make(chan error, 16)
				for g := 0; g < 16; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(g)))
						for it := 0; it < 40; it++ {
							owner := Owner(g*1000 + it)
							start := rng.Intn(len(pop.keys))
							for j := start; j < len(pop.keys); j++ {
								mode := Shared
								if rng.Intn(2) == 0 {
									mode = Exclusive
								}
								if err := m.Acquire(context.Background(), owner, pop.keys[j], mode); err != nil {
									errs <- err
									return
								}
							}
							m.ReleaseAll(owner)
						}
					}(g)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatalf("stress acquire: %v", err)
				}
				for _, s := range m.stripes {
					s.mu.Lock()
					for k, e := range s.table {
						if len(e.holders) != 0 || len(e.queue) != 0 {
							t.Errorf("entry %q not drained: %d holders, %d waiters", k, len(e.holders), len(e.queue))
						}
					}
					s.mu.Unlock()
				}
				st := m.Stats()
				if st.Grants == 0 {
					t.Error("no grants recorded")
				}
				if st.Deadlocks != 0 {
					t.Errorf("sorted-order acquisition deadlocked %d times", st.Deadlocks)
				}
				if wf := m.WaitGraph(); len(wf) != 0 {
					t.Errorf("waits-for graph not drained: %v", wf)
				}
			})
		}
	}
}
