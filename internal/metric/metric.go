// Package metric defines the metric-space value model used throughout the
// library.
//
// Epsilon serializability (ESR) is defined over database state spaces that
// carry a distance measure. Following the paper's banking examples, the
// canonical value type is an integer amount (cents), with distance
// |a - b|. The package also provides the epsilon-specification (ε-spec)
// types that bound how much inconsistency an epsilon transaction may
// import or export, including the ∞ limit assigned to unrestricted pieces.
package metric

import (
	"fmt"
	"math"
)

// Value is a point in the database's metric space. The paper's examples use
// money amounts; we represent them as integer cents so that distances are
// exact.
type Value int64

// Distance returns the metric-space distance |v - w|.
//
// Distance is the d(x, y) of the ESR definition: the fuzziness a
// read/write conflict can introduce is the distance between the value a
// query observed and the value a serializable execution would have shown.
func Distance(v, w Value) Fuzz {
	d := int64(v) - int64(w)
	if d < 0 {
		d = -d
	}
	return Fuzz(d)
}

// Fuzz is an amount of inconsistency (fuzziness), measured in the same
// units as the value space. Fuzz values accumulate additively: the
// fuzziness of a transaction is the sum of the fuzziness of its conflicts
// (Lemma 1 extends this to the sum over chopped pieces).
type Fuzz int64

// Add returns f + g, saturating instead of overflowing.
func (f Fuzz) Add(g Fuzz) Fuzz {
	s := int64(f) + int64(g)
	if s < int64(f) || s < int64(g) {
		return Fuzz(math.MaxInt64)
	}
	return Fuzz(s)
}

// Limit is an inconsistency limit (an ε-spec component). A Limit is either
// a finite fuzz bound or infinite. The zero value is the finite limit 0,
// i.e. "no inconsistency allowed", which makes divergence control degrade
// to ordinary concurrency control — the upward-compatibility of ESR.
type Limit struct {
	// bound is the finite bound; ignored when infinite is set.
	bound Fuzz
	// infinite marks the ∞ limit given to unrestricted pieces.
	infinite bool
}

// Infinite is the unbounded limit (∞). The paper assigns it to
// unrestricted pieces so that divergence control never blocks them: they
// cannot take part in any conflict cycle, so their accounted fuzziness is
// an over-estimate that must be ignored.
var Infinite = Limit{infinite: true}

// LimitOf returns a finite limit of f. Negative bounds are clamped to 0.
func LimitOf(f Fuzz) Limit {
	if f < 0 {
		f = 0
	}
	return Limit{bound: f}
}

// Zero is the finite limit 0: classic serializability.
var Zero = LimitOf(0)

// IsInfinite reports whether l is the ∞ limit.
func (l Limit) IsInfinite() bool { return l.infinite }

// Bound returns the finite bound. It panics on the infinite limit; callers
// must check IsInfinite first.
func (l Limit) Bound() Fuzz {
	if l.infinite {
		panic("metric: Bound() on infinite limit")
	}
	return l.bound
}

// Allows reports whether accumulated fuzziness f is permitted under l,
// i.e. f <= l (Condition 1, Safe(p)).
func (l Limit) Allows(f Fuzz) bool {
	return l.infinite || f <= l.bound
}

// Sub returns the limit l - f (the "leftover" limit LO_p = Limit - Z_p of
// the dynamic distribution algorithm, Figure 2). Subtracting from ∞ yields
// ∞; finite results are clamped at 0.
func (l Limit) Sub(f Fuzz) Limit {
	if l.infinite {
		return l
	}
	if f >= l.bound {
		return Limit{}
	}
	return Limit{bound: l.bound - f}
}

// AddLimit returns l + m, where adding anything to ∞ yields ∞.
func (l Limit) AddLimit(m Limit) Limit {
	if l.infinite || m.infinite {
		return Infinite
	}
	return Limit{bound: l.bound.Add(m.bound)}
}

// Div returns l split n ways (the static distribution Limit_t / |CHOP_R(t)|,
// Section 2.2.1). Dividing ∞ yields ∞. Div panics if n <= 0.
func (l Limit) Div(n int) Limit {
	if n <= 0 {
		panic("metric: Div by non-positive count")
	}
	if l.infinite {
		return l
	}
	return Limit{bound: l.bound / Fuzz(n)}
}

// Mul returns l scaled by n, saturating instead of overflowing.
// Multiplying ∞ yields ∞. Mul panics if n <= 0. The conformance
// harness uses it to inflate budgets on purpose (mis-budgeted runs).
func (l Limit) Mul(n int) Limit {
	if n <= 0 {
		panic("metric: Mul by non-positive count")
	}
	if l.infinite {
		return l
	}
	if l.bound > 0 && int64(l.bound) > math.MaxInt64/int64(n) {
		return Limit{bound: Fuzz(math.MaxInt64)}
	}
	return Limit{bound: l.bound * Fuzz(n)}
}

// Cmp compares two limits: -1 if l < m, 0 if equal, +1 if l > m. ∞ compares
// greater than every finite limit and equal to itself.
func (l Limit) Cmp(m Limit) int {
	switch {
	case l.infinite && m.infinite:
		return 0
	case l.infinite:
		return 1
	case m.infinite:
		return -1
	case l.bound < m.bound:
		return -1
	case l.bound > m.bound:
		return 1
	default:
		return 0
	}
}

// String renders the limit for logs and reports.
func (l Limit) String() string {
	if l.infinite {
		return "inf"
	}
	return fmt.Sprintf("%d", int64(l.bound))
}

// Spec is a full ε-spec for an epsilon transaction: how much fuzziness it
// may import (relevant to query ETs) and export (relevant to update ETs).
type Spec struct {
	// Import bounds the inconsistency the ET may observe.
	Import Limit
	// Export bounds the inconsistency the ET may cause others to observe.
	Export Limit
}

// SpecOf builds a Spec with the same finite bound for import and export.
func SpecOf(f Fuzz) Spec {
	return Spec{Import: LimitOf(f), Export: LimitOf(f)}
}

// Strict is the ε-spec of a classic serializable transaction: no import,
// no export.
var Strict = Spec{Import: Zero, Export: Zero}

// Unbounded is the ε-spec that never restricts execution.
var Unbounded = Spec{Import: Infinite, Export: Infinite}

// String renders the spec for logs and reports.
func (s Spec) String() string {
	return fmt.Sprintf("{import:%s export:%s}", s.Import, s.Export)
}
