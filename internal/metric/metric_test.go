package metric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	tests := []struct {
		name string
		v, w Value
		want Fuzz
	}{
		{"zero", 0, 0, 0},
		{"positive gap", 10, 3, 7},
		{"negative gap", 3, 10, 7},
		{"both negative", -5, -9, 4},
		{"across zero", -5, 5, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Distance(tt.v, tt.w); got != tt.want {
				t.Errorf("Distance(%d, %d) = %d, want %d", tt.v, tt.w, got, tt.want)
			}
		})
	}
}

func TestDistanceMetricAxioms(t *testing.T) {
	symmetric := func(a, b int32) bool {
		return Distance(Value(a), Value(b)) == Distance(Value(b), Value(a))
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a int32) bool {
		return Distance(Value(a), Value(a)) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c int32) bool {
		ab := Distance(Value(a), Value(b))
		bc := Distance(Value(b), Value(c))
		ac := Distance(Value(a), Value(c))
		return ac <= ab.Add(bc)
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestFuzzAddSaturates(t *testing.T) {
	big := Fuzz(math.MaxInt64 - 1)
	if got := big.Add(big); got != Fuzz(math.MaxInt64) {
		t.Errorf("saturating add = %d, want MaxInt64", got)
	}
	if got := Fuzz(1).Add(2); got != 3 {
		t.Errorf("small add = %d, want 3", got)
	}
}

func TestLimitAllows(t *testing.T) {
	tests := []struct {
		name  string
		limit Limit
		fuzz  Fuzz
		want  bool
	}{
		{"zero allows zero", Zero, 0, true},
		{"zero rejects one", Zero, 1, false},
		{"finite at bound", LimitOf(10), 10, true},
		{"finite above bound", LimitOf(10), 11, false},
		{"infinite allows huge", Infinite, Fuzz(math.MaxInt64), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.limit.Allows(tt.fuzz); got != tt.want {
				t.Errorf("%s.Allows(%d) = %v, want %v", tt.limit, tt.fuzz, got, tt.want)
			}
		})
	}
}

func TestLimitSub(t *testing.T) {
	if got := LimitOf(51).Sub(20); got.Cmp(LimitOf(31)) != 0 {
		t.Errorf("51 - 20 = %s, want 31", got)
	}
	if got := LimitOf(10).Sub(15); got.Cmp(Zero) != 0 {
		t.Errorf("10 - 15 = %s, want 0 (clamped)", got)
	}
	if got := Infinite.Sub(1 << 40); !got.IsInfinite() {
		t.Errorf("inf - x = %s, want inf", got)
	}
}

func TestLimitDiv(t *testing.T) {
	// The paper's Figure 1 example: Limit_t = 51 split over 3 restricted
	// pieces gives 17 each.
	if got := LimitOf(51).Div(3); got.Cmp(LimitOf(17)) != 0 {
		t.Errorf("51/3 = %s, want 17", got)
	}
	if got := Infinite.Div(4); !got.IsInfinite() {
		t.Errorf("inf/4 = %s, want inf", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Div(0) did not panic")
		}
	}()
	LimitOf(1).Div(0)
}

func TestLimitAddLimit(t *testing.T) {
	if got := LimitOf(3).AddLimit(LimitOf(4)); got.Cmp(LimitOf(7)) != 0 {
		t.Errorf("3+4 = %s, want 7", got)
	}
	if got := LimitOf(3).AddLimit(Infinite); !got.IsInfinite() {
		t.Errorf("3+inf = %s, want inf", got)
	}
}

func TestLimitCmp(t *testing.T) {
	tests := []struct {
		name string
		l, m Limit
		want int
	}{
		{"less", LimitOf(1), LimitOf(2), -1},
		{"equal", LimitOf(2), LimitOf(2), 0},
		{"greater", LimitOf(3), LimitOf(2), 1},
		{"finite vs inf", LimitOf(1 << 50), Infinite, -1},
		{"inf vs finite", Infinite, LimitOf(0), 1},
		{"inf vs inf", Infinite, Infinite, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.l.Cmp(tt.m); got != tt.want {
				t.Errorf("Cmp = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestLimitSubLeftoverProperty(t *testing.T) {
	// LO_p = Limit - Z_p must always be allowed under the original limit
	// and must never be negative.
	prop := func(bound, used uint16) bool {
		l := LimitOf(Fuzz(bound))
		lo := l.Sub(Fuzz(used))
		if lo.IsInfinite() {
			return false
		}
		return lo.Bound() >= 0 && lo.Bound() <= l.Bound()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLimitBoundPanicsOnInfinite(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Bound() on Infinite did not panic")
		}
	}()
	Infinite.Bound()
}

func TestLimitOfClampsNegative(t *testing.T) {
	if got := LimitOf(-5); got.Cmp(Zero) != 0 {
		t.Errorf("LimitOf(-5) = %s, want 0", got)
	}
}

func TestSpecStrings(t *testing.T) {
	if got := Strict.String(); got != "{import:0 export:0}" {
		t.Errorf("Strict.String() = %q", got)
	}
	if got := Unbounded.String(); got != "{import:inf export:inf}" {
		t.Errorf("Unbounded.String() = %q", got)
	}
	if got := SpecOf(100).String(); got != "{import:100 export:100}" {
		t.Errorf("SpecOf(100).String() = %q", got)
	}
}
