package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Attribution decomposes one settled transaction's end-to-end latency
// (its root span interval) into the fixed phase vocabulary. The
// decomposition is exhaustive by construction — the analyzer sweeps
// the root interval and charges every segment to exactly one phase —
// so Sum() equals Total up to clamping of skewed child intervals; the
// property test pins the tolerance.
type Attribution struct {
	Trace     uint64
	Name      string
	Committed bool
	Total     time.Duration
	Phases    [NumPhases]time.Duration
}

// Sum returns the total attributed time across phases.
func (a *Attribution) Sum() time.Duration {
	var s time.Duration
	for _, d := range a.Phases {
		s += d
	}
	return s
}

// AttributeTrace walks one merged trace's span tree and attributes the
// root interval to phases. Returns false when the trace has no root or
// a degenerate (non-positive) interval.
//
// Algorithm: every instant of [root.Start, root.End] is charged to the
// deepest span active at that instant (ties broken toward the later-
// starting, then higher-ID span), with child intervals clamped into
// the root's. Chains in this system are sequential — piece → wire →
// mailbox → next piece — so "deepest active" traces exactly the
// critical path; where siblings overlap (parallel branch pieces) the
// deeper/later claimant is the one still holding up settlement.
// Root-claimed time before the first child span is admission wait;
// root-claimed time after that is the root's residual phase
// (settlement ack wait, or 2PC decision wait).
func AttributeTrace(t *MergedTrace) (Attribution, bool) {
	if t.Root < 0 {
		return Attribution{}, false
	}
	root := t.Spans[t.Root]
	lo, hi := root.Start, root.End
	if hi <= lo {
		return Attribution{}, false
	}
	a := Attribution{Trace: t.Trace, Name: root.Name, Committed: root.Committed,
		Total: time.Duration(hi - lo)}

	// Resolve edges and BFS depths from the root (same edge rule as
	// the merge; orphans stay unreachable and are not attributed).
	present := make(map[spanKey]int, len(t.Spans))
	for i, sp := range t.Spans {
		present[spanKey{sp.Proc, sp.ID}] = i
	}
	children := make(map[int][]int, len(t.Spans))
	for i, sp := range t.Spans {
		if i == t.Root || sp.Parent == 0 {
			continue
		}
		pp := sp.ParentProc
		if pp == "" {
			pp = sp.Proc
		}
		if pi, ok := present[spanKey{pp, sp.Parent}]; ok {
			children[pi] = append(children[pi], i)
		}
	}
	type active struct {
		start, end int64
		depth      int
		phase      Phase
		id         uint64
	}
	var nodes []active
	queue := []int{t.Root}
	depth := map[int]int{t.Root: 0}
	firstChild := hi
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		sp := t.Spans[i]
		s, e := sp.Start, sp.End
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if i != t.Root && e > s && s < firstChild {
			firstChild = s
		}
		if e > s {
			nodes = append(nodes, active{start: s, end: e, depth: depth[i], phase: sp.Phase, id: sp.ID})
		}
		for _, c := range children[i] {
			depth[c] = depth[i] + 1
			queue = append(queue, c)
		}
	}

	// Sweep the root interval over all span boundaries.
	bounds := make([]int64, 0, 2*len(nodes))
	for _, n := range nodes {
		bounds = append(bounds, n.start, n.end)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	prev := lo
	for _, b := range append(bounds, hi) {
		if b <= prev {
			continue
		}
		if b > hi {
			b = hi
		}
		// Claimant for [prev, b): deepest active span.
		best := -1
		for i, n := range nodes {
			if n.start <= prev && b <= n.end {
				if best < 0 ||
					n.depth > nodes[best].depth ||
					(n.depth == nodes[best].depth && (n.start > nodes[best].start ||
						(n.start == nodes[best].start && n.id > nodes[best].id))) {
					best = i
				}
			}
		}
		d := time.Duration(b - prev)
		switch {
		case best < 0 || nodes[best].depth == 0:
			// Root-only time: admission before any child ran,
			// residual (ack / 2PC decision wait) after.
			if b <= firstChild {
				a.Phases[PhaseAdmit] += d
			} else {
				a.Phases[root.Phase] += d
			}
		default:
			a.Phases[nodes[best].phase] += d
		}
		prev = b
		if prev >= hi {
			break
		}
	}
	// Any tail uncovered by boundaries (all children before hi).
	if prev < hi {
		a.Phases[root.Phase] += time.Duration(hi - prev)
	}
	return a, true
}

// CritReport aggregates the critical-path analysis over a merged
// trace set.
type CritReport struct {
	// Traces / Attributed / Connected count the population.
	Traces     int
	Attributed int
	Connected  int
	// PhaseTotals accumulates attributed time per phase across all
	// attributed traces.
	PhaseTotals [NumPhases]time.Duration
	// TotalLatency is the summed end-to-end latency of attributed
	// traces; MaxSumErr is the worst |Sum-Total|/Total observed — the
	// attribution invariant violation, ~0 by construction.
	TotalLatency time.Duration
	MaxSumErr    float64
	// TopN holds the slowest attributed traces, slowest first. All
	// holds every attribution (population bounded by the span ring).
	TopN []Attribution
	All  []Attribution
}

// AnalyzeCriticalPath attributes every trace in the merge and returns
// the aggregate report with the topN slowest transactions broken down.
func AnalyzeCriticalPath(m *Merged, topN int) *CritReport {
	r := &CritReport{Traces: len(m.Traces)}
	var all []Attribution
	for _, t := range m.Traces {
		if t.Connected {
			r.Connected++
		}
		a, ok := AttributeTrace(t)
		if !ok {
			continue
		}
		r.Attributed++
		r.TotalLatency += a.Total
		for ph, d := range a.Phases {
			r.PhaseTotals[ph] += d
		}
		if a.Total > 0 {
			err := float64(a.Sum()-a.Total) / float64(a.Total)
			if err < 0 {
				err = -err
			}
			if err > r.MaxSumErr {
				r.MaxSumErr = err
			}
		}
		all = append(all, a)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Total > all[j].Total })
	r.All = all
	if topN > len(all) {
		topN = len(all)
	}
	if topN > 0 {
		r.TopN = append(r.TopN, all[:topN]...)
	}
	return r
}

// FeedMetrics surfaces the per-phase attribution through the metrics
// registry as one histogram per phase (seconds per transaction).
func (r *CritReport) FeedMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		h := reg.Histogram("asynctp_phase_seconds",
			"Critical-path time attributed per settled transaction.", nil,
			"phase", ph.String())
		for _, a := range r.All {
			if a.Phases[ph] > 0 {
				h.ObserveDuration(a.Phases[ph])
			}
		}
	}
}

// WriteText renders the human report: aggregate phase shares first,
// then the top-N slowest transactions with their breakdowns.
func (r *CritReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "critical path: %d traces, %d connected (%.2f%%), %d attributed, max sum error %.3f%%\n",
		r.Traces, r.Connected, 100*float64(r.Connected)/float64(max(1, r.Traces)),
		r.Attributed, 100*r.MaxSumErr)
	if r.TotalLatency > 0 {
		fmt.Fprintf(w, "  phase shares of %v total settled latency:\n", r.TotalLatency.Round(time.Millisecond))
		for ph := Phase(0); ph < NumPhases; ph++ {
			d := r.PhaseTotals[ph]
			if d == 0 {
				continue
			}
			fmt.Fprintf(w, "    %-8s %10v  %5.1f%%\n", ph.String(), d.Round(time.Microsecond),
				100*float64(d)/float64(r.TotalLatency))
		}
	}
	for i, a := range r.TopN {
		fmt.Fprintf(w, "  #%d trace %d %s total %v:", i+1, a.Trace, a.Name, a.Total.Round(time.Microsecond))
		for ph := Phase(0); ph < NumPhases; ph++ {
			if a.Phases[ph] > 0 {
				fmt.Fprintf(w, " %s=%v", ph.String(), a.Phases[ph].Round(time.Microsecond))
			}
		}
		fmt.Fprintln(w)
	}
}
