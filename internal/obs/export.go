package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// This file implements the trace exports.
//
// Two Chrome trace-event JSON modes exist:
//
//   - ExportCanonical: the seed-deterministic view. Only logical event
//     kinds enter it, every aborted piece attempt's span is dropped
//     (retries leave exactly the committed attempt), instances are
//     re-identified by a content signature instead of their runtime
//     group numbers, and timestamps are synthetic integer microseconds.
//     Two runs of the same seeded scenario produce byte-identical
//     output — this is what the determinism gate diffs.
//
//   - ExportWall: the debugging view. Every event (including waits,
//     debits, flushes, retransmits and 2PC rounds) with its real
//     wall-clock timestamp. Not deterministic, not gated.
//
// WriteText renders the raw event stream as a human text timeline in
// arrival order.

// category maps a kind to its Chrome "cat" field.
func category(k Kind) string {
	switch k {
	case EvTxnBegin, EvTxnEnd:
		return "txn"
	case EvPieceBegin, EvPieceCommit, EvPieceAbort:
		return "piece"
	case EvLockAcquire, EvLockBlocked, EvLockResumed:
		return "lock"
	case EvDCDebit, EvDCRefuse, EvDCAccount:
		return "dc"
	case EvQueueSend, EvQueueFlush, EvQueueRetransmit, EvQueueDeliver:
		return "queue"
	case EvActivationBegin, EvActivationEnd:
		return "site"
	case EvCommitRound, EvCommitDecision:
		return "2pc"
	}
	return "other"
}

// jargs renders alternating key, value pairs as a JSON object body
// ("k":v,...) with deterministic ordering (the call-site order).
func jargs(kv ...any) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		v := kv[i+1]
		// Drop zero values so the export stays compact.
		switch x := v.(type) {
		case string:
			if x == "" {
				continue
			}
		case int64:
			if x == 0 {
				continue
			}
		case int:
			if x == 0 {
				continue
			}
		case uint64:
			if x == 0 {
				continue
			}
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(kv[i].(string)))
		b.WriteByte(':')
		switch x := v.(type) {
		case string:
			b.WriteString(strconv.Quote(x))
		case int64:
			b.WriteString(strconv.FormatInt(x, 10))
		case int:
			b.WriteString(strconv.Itoa(x))
		case uint64:
			b.WriteString(strconv.FormatUint(x, 10))
		case bool:
			if x {
				b.WriteString("true")
			} else {
				b.WriteString("false")
			}
		}
	}
	return b.String()
}

// emitter accumulates trace-event JSON objects.
type emitter struct {
	b     strings.Builder
	first bool
}

func newEmitter() *emitter {
	e := &emitter{first: true}
	e.b.WriteString(`{"traceEvents":[`)
	return e
}

func (e *emitter) raw(s string) {
	if !e.first {
		e.b.WriteByte(',')
	}
	e.first = false
	e.b.WriteString(s)
}

// span emits one "X" complete event.
func (e *emitter) span(name, cat string, pid, tid int, ts, dur int64, args string) {
	var b strings.Builder
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote(name))
	b.WriteString(`,"cat":`)
	b.WriteString(strconv.Quote(cat))
	b.WriteString(`,"ph":"X","pid":`)
	b.WriteString(strconv.Itoa(pid))
	b.WriteString(`,"tid":`)
	b.WriteString(strconv.Itoa(tid))
	b.WriteString(`,"ts":`)
	b.WriteString(strconv.FormatInt(ts, 10))
	b.WriteString(`,"dur":`)
	b.WriteString(strconv.FormatInt(dur, 10))
	if args != "" {
		b.WriteString(`,"args":{`)
		b.WriteString(args)
		b.WriteByte('}')
	}
	b.WriteByte('}')
	e.raw(b.String())
}

// meta emits one "M" metadata event (process/thread naming).
func (e *emitter) meta(kind string, pid, tid int, name string) {
	e.raw(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":%q,"args":{"name":%q}}`,
		pid, tid, kind, name))
}

func (e *emitter) finish(w io.Writer) error {
	e.b.WriteString("]}\n")
	_, err := io.WriteString(w, e.b.String())
	return err
}

// cPiece is one canonical piece: its identity plus its leaf events in
// per-owner arrival order (a piece executes on one goroutine, so this
// order is a function of the seed).
type cPiece struct {
	index  int32
	site   string
	name   string
	class  string
	leaves []Event
}

// cGroup is one canonical transaction instance.
type cGroup struct {
	name      string
	committed bool
	hasEnd    bool
	pieces    map[int32]*cPiece
	sig       string
}

// cWire is one canonical queue track (sender→destination/queue), its
// sends and first deliveries keyed by the gapless wire sequence number.
type cWire struct {
	key     string
	send    map[int64]Event
	deliver map[int64]Event
}

func (g *cGroup) sortedPieces() []*cPiece {
	idx := make([]int32, 0, len(g.pieces))
	for i := range g.pieces {
		idx = append(idx, i)
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	out := make([]*cPiece, len(idx))
	for i, ix := range idx {
		out[i] = g.pieces[ix]
	}
	return out
}

// signature renders the group's full logical content; instances with
// equal signatures are interchangeable, so sorting groups by signature
// re-identifies them deterministically.
func (g *cGroup) signature() string {
	var b strings.Builder
	b.WriteString(g.name)
	if g.committed {
		b.WriteString("|C")
	} else if g.hasEnd {
		b.WriteString("|A")
	}
	for _, p := range g.sortedPieces() {
		fmt.Fprintf(&b, "|p%d@%s:%s:%s[", p.index, p.site, p.name, p.class)
		for _, lv := range p.leaves {
			fmt.Fprintf(&b, "%s,%s,%s,%d,%d;", lv.Kind, lv.Key, lv.Arg, lv.Aux, lv.Aux2)
		}
		b.WriteByte(']')
	}
	return b.String()
}

// canonicalize folds the raw event stream into deterministic group and
// wire structures.
func canonicalize(events []Event) ([]*cGroup, []*cWire) {
	aborted := make(map[int64]bool)
	for _, ev := range events {
		if ev.Kind == EvPieceAbort && ev.Owner != 0 {
			aborted[ev.Owner] = true
		}
	}
	type oinfo struct {
		group uint64
		piece int32
	}
	ownerOf := make(map[int64]oinfo)
	groups := make(map[uint64]*cGroup)
	wires := make(map[string]*cWire)
	getG := func(id uint64) *cGroup {
		g := groups[id]
		if g == nil {
			g = &cGroup{pieces: make(map[int32]*cPiece)}
			groups[id] = g
		}
		return g
	}
	getP := func(g *cGroup, idx int32) *cPiece {
		p := g.pieces[idx]
		if p == nil {
			p = &cPiece{index: idx}
			g.pieces[idx] = p
		}
		return p
	}
	getW := func(key string) *cWire {
		wr := wires[key]
		if wr == nil {
			wr = &cWire{key: key, send: make(map[int64]Event), deliver: make(map[int64]Event)}
			wires[key] = wr
		}
		return wr
	}
	for _, ev := range events {
		if !ev.Kind.logical() {
			continue
		}
		if ev.Owner != 0 && aborted[ev.Owner] {
			continue
		}
		switch ev.Kind {
		case EvTxnBegin:
			getG(ev.Group).name = ev.Name
		case EvTxnEnd:
			g := getG(ev.Group)
			g.hasEnd = true
			g.committed = ev.Aux == 1
		case EvPieceBegin:
			ownerOf[ev.Owner] = oinfo{ev.Group, ev.Piece}
			p := getP(getG(ev.Group), ev.Piece)
			p.site, p.name, p.class = ev.Site, ev.Name, ev.Arg
		case EvQueueSend:
			getW(ev.Site + ">" + ev.Arg + "/" + ev.Name).send[ev.Aux] = ev
		case EvQueueDeliver:
			getW(ev.Arg + ">" + ev.Site + "/" + ev.Name).deliver[ev.Aux] = ev
		case EvActivationBegin, EvActivationEnd:
			p := getP(getG(ev.Group), ev.Piece)
			p.leaves = append(p.leaves, ev)
		default: // EvPieceCommit, EvLockAcquire, EvDCAccount: owner-joined.
			oi, ok := ownerOf[ev.Owner]
			if !ok {
				continue
			}
			p := getP(getG(oi.group), oi.piece)
			p.leaves = append(p.leaves, ev)
		}
	}
	gs := make([]*cGroup, 0, len(groups))
	for _, g := range groups {
		g.sig = g.signature()
		gs = append(gs, g)
	}
	sort.Slice(gs, func(a, b int) bool { return gs[a].sig < gs[b].sig })
	ws := make([]*cWire, 0, len(wires))
	for _, wr := range wires {
		ws = append(ws, wr)
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].key < ws[b].key })
	return gs, ws
}

// leafArgs renders the canonical args for a leaf event.
func leafArgs(ev Event) string {
	switch ev.Kind {
	case EvLockAcquire:
		return jargs("key", ev.Key, "write", ev.Aux)
	case EvDCAccount:
		return jargs("imported", ev.Aux, "exported", ev.Aux2)
	case EvActivationBegin, EvActivationEnd:
		return jargs("site", ev.Site)
	}
	return ""
}

// ExportCanonical writes the seed-deterministic Chrome trace-event JSON
// view of the event stream: pid 1 carries one thread per transaction
// instance (transaction → piece → lock/DC leaves), pid 2 one thread per
// queue wire track (send → deliver per sequence number). Output is
// byte-identical across runs of the same seeded scenario.
func ExportCanonical(w io.Writer, events []Event) error {
	groups, wires := canonicalize(events)
	e := newEmitter()
	e.meta("process_name", 1, 0, "transactions")
	if len(wires) > 0 {
		e.meta("process_name", 2, 0, "wire")
	}
	cur := int64(0)
	for r, g := range groups {
		tid := r + 1
		name := g.name
		if name == "" {
			name = "txn"
		}
		e.meta("thread_name", 1, tid, fmt.Sprintf("%s #%d", name, tid))
		gStart := cur
		cur++
		type laid struct {
			ev Event
			ts int64
		}
		type pl struct {
			p      *cPiece
			start  int64
			end    int64
			leaves []laid
		}
		var pieces []pl
		for _, p := range g.sortedPieces() {
			pStart := cur
			cur++
			var lv []laid
			for _, l := range p.leaves {
				lv = append(lv, laid{l, cur})
				cur++
			}
			pieces = append(pieces, pl{p: p, start: pStart, end: cur, leaves: lv})
			cur++
		}
		gEnd := cur
		cur++
		e.span("txn "+name, "txn", 1, tid, gStart, gEnd-gStart+1,
			jargs("committed", g.committed, "pieces", len(g.pieces)))
		for _, pp := range pieces {
			e.span(fmt.Sprintf("piece %d", pp.p.index), "piece", 1, tid,
				pp.start, pp.end-pp.start+1,
				jargs("site", pp.p.site, "class", pp.p.class, "name", pp.p.name))
			for _, l := range pp.leaves {
				e.span(l.ev.Kind.String(), category(l.ev.Kind), 1, tid, l.ts, 1, leafArgs(l.ev))
			}
		}
		cur += 4
	}
	for wi, wr := range wires {
		tid := wi + 1
		e.meta("thread_name", 2, tid, wr.key)
		seqSet := make(map[int64]bool)
		for s := range wr.send {
			seqSet[s] = true
		}
		for s := range wr.deliver {
			seqSet[s] = true
		}
		seqs := make([]int64, 0, len(seqSet))
		for s := range seqSet {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
		for i, s := range seqs {
			base := int64(i) * 3
			if _, ok := wr.send[s]; ok {
				e.span("queue.send", "queue", 2, tid, base, 1, jargs("seq", s))
			}
			if _, ok := wr.deliver[s]; ok {
				e.span("queue.deliver", "queue", 2, tid, base+1, 1, jargs("seq", s))
			}
		}
	}
	return e.finish(w)
}

// ExportWall writes the wall-clock Chrome trace-event JSON view: every
// event, real timestamps (microseconds since tracer start). Useful for
// latency debugging; not deterministic.
func ExportWall(w io.Writer, events []Event) error {
	// Join owner-only events onto their instance for thread placement.
	ownerGroup := make(map[int64]uint64)
	for _, ev := range events {
		if ev.Kind == EvPieceBegin && ev.Owner != 0 {
			ownerGroup[ev.Owner] = ev.Group
		}
	}
	siteTrack := make(map[string]int)
	trackOf := func(site string) int {
		if id, ok := siteTrack[site]; ok {
			return id
		}
		id := len(siteTrack) + 1
		siteTrack[site] = id
		return id
	}
	e := newEmitter()
	e.meta("process_name", 1, 0, "transactions")
	e.meta("process_name", 2, 0, "sites")
	for _, ev := range events {
		pid, tid := 1, int(ev.Group)
		if ev.Group == 0 {
			if g, ok := ownerGroup[ev.Owner]; ok {
				tid = int(g)
			} else {
				pid, tid = 2, trackOf(ev.Site)
			}
		}
		ts := ev.TS / 1e3
		dur := ev.Dur / 1e3
		if dur < 1 {
			dur = 1
		}
		e.span(ev.Kind.String(), category(ev.Kind), pid, tid, ts, dur,
			jargs("owner", ev.Owner, "group", ev.Group, "piece", int64(ev.Piece),
				"site", ev.Site, "key", ev.Key, "name", ev.Name, "arg", ev.Arg,
				"aux", ev.Aux, "aux2", ev.Aux2))
	}
	return e.finish(w)
}

// WriteText renders the raw event stream as a human timeline in arrival
// order, one line per event, zero-valued fields omitted.
func WriteText(w io.Writer, events []Event) error {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "[%7d] %12.6f %-22s", ev.Seq, float64(ev.TS)/1e9, ev.Kind.String())
		if ev.Owner != 0 {
			fmt.Fprintf(&b, " owner=%d", ev.Owner)
		}
		if ev.Group != 0 {
			fmt.Fprintf(&b, " group=%d", ev.Group)
		}
		if ev.Piece >= 0 && (ev.Kind == EvPieceBegin || ev.Kind == EvActivationBegin || ev.Kind == EvActivationEnd) {
			fmt.Fprintf(&b, " piece=%d", ev.Piece)
		}
		if ev.Site != "" {
			fmt.Fprintf(&b, " site=%s", ev.Site)
		}
		if ev.Key != "" {
			fmt.Fprintf(&b, " key=%s", ev.Key)
		}
		if ev.Name != "" {
			fmt.Fprintf(&b, " name=%s", ev.Name)
		}
		if ev.Arg != "" {
			fmt.Fprintf(&b, " arg=%s", ev.Arg)
		}
		if ev.Aux != 0 {
			fmt.Fprintf(&b, " aux=%d", ev.Aux)
		}
		if ev.Aux2 != 0 {
			fmt.Fprintf(&b, " aux2=%d", ev.Aux2)
		}
		if ev.Dur > 0 {
			fmt.Fprintf(&b, " dur=%s", time.Duration(ev.Dur))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
