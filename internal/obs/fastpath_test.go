package obs

import (
	"testing"

	"asynctp/internal/metric"
	"asynctp/internal/txn"
)

// The whole observability plane is built to be compiled in but free
// when disabled: a nil *Plane, a nil *Tracer, and nil metric handles
// must all no-op without boxing an Event or capturing a closure. These
// tests pin that contract with testing.AllocsPerRun so a refactor that
// accidentally allocates on the disabled path fails CI, not a perf run.

func TestNilPlaneSpanHooksZeroAlloc(t *testing.T) {
	var p *Plane
	end := p.ActivationBegin(1, 0, "NY")
	allocs := testing.AllocsPerRun(1000, func() {
		p.TxnBegin(1, "xfer")
		p.BindBudget(1, "xfer", "update", "static", metric.Infinite)
		p.PieceBegin(2, 1, 0, "NY", "xfer/p1", txn.Update, 0, 0, "")
		p.PieceSettle(2, 0, 0)
		p.TxnEnd(1, true)
		end()
	})
	if allocs > 0 {
		t.Errorf("nil-plane span hooks: %.1f allocs/op, want 0", allocs)
	}
}

// Distributed-span hooks ride the piece hot path (every activation,
// every settlement report). With tracing disabled — nil plane, or a
// plane built without EnableSpans — they must stay branch-only.
func TestDisabledSpanHooksZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plane *Plane
	}{
		{"nil-plane", nil},
		{"plane-without-spans", NewPlane(nil, nil, nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.plane
			var ctx = p.SpanCtx(1, RootSpanID(1))
			allocs := testing.AllocsPerRun(1000, func() {
				_ = p.SpanCtx(1, RootSpanID(1))
				p.SpanActivationHop(1, 1, false, ctx, 12345)
				p.SpanReportHop(1, 1, false, ctx, 12345)
				p.SpanFsync(1, PieceSpanID(1, 0, false), 0, false, 100, 200)
				p.SpanRepair(2, 5)
				p.SpanAdmit(1, 100, 200)
				_ = p.SpansOn()
				p.TriggerFlight("")
			})
			if allocs > 0 {
				t.Errorf("disabled span hooks: %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

func TestNilSpanStoreZeroAlloc(t *testing.T) {
	var s *SpanStore
	allocs := testing.AllocsPerRun(1000, func() {
		s.Add(Span{Trace: 1})
		s.Tick()
		s.Observe(7)
		_ = s.NextID()
		_ = s.Ctx(1, 2, 3)
	})
	if allocs > 0 {
		t.Errorf("nil span store: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilPlaneTenantHooksZeroAlloc(t *testing.T) {
	var p *Plane
	allocs := testing.AllocsPerRun(1000, func() {
		p.TenantAdmit("t1")
		p.TenantDegrade("t1", 500)
		p.TenantShed("t1")
		p.WatchPartition("0", nil, nil)
		p.WatchPool("0", nil)
	})
	if allocs > 0 {
		t.Errorf("nil-plane tenant hooks: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilVecHandlesZeroAlloc(t *testing.T) {
	var cv *CounterVec
	var gv *GaugeVec
	allocs := testing.AllocsPerRun(1000, func() {
		cv.With("t").Inc()
		gv.With("t").Set(1)
	})
	if allocs > 0 {
		t.Errorf("nil vec handles: %.1f allocs/op, want 0", allocs)
	}
}

// Enabled-vec steady state: a cached handle lookup is a read-locked map
// hit — no per-observation allocation once the series exists.
func TestEnabledVecSteadyStateZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("asynctp_test_total", "help", "tenant")
	vec.With("t").Inc() // register the series
	allocs := testing.AllocsPerRun(1000, func() {
		vec.With("t").Inc()
	})
	if allocs > 0 {
		t.Errorf("enabled vec steady-state With+Inc: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilPlaneObserverConstructorsCollapse(t *testing.T) {
	var p *Plane
	if p.ExecObserver() != nil || p.WaitObserver() != nil || p.DCObserver() != nil ||
		p.QueueObserver("NY") != nil || p.CommitObserver("NY") != nil {
		t.Fatal("nil plane must hand out nil observers so call sites skip the hook entirely")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = p.ExecObserver()
		_ = p.WaitObserver()
		_ = p.DCObserver()
		_ = p.QueueObserver("NY")
		_ = p.CommitObserver("NY")
	})
	if allocs > 0 {
		t.Errorf("nil-plane observer constructors: %.1f allocs/op, want 0", allocs)
	}
}

func TestTeeHelpersCollapseToNil(t *testing.T) {
	if TeeTxnObserver(nil, nil) != nil {
		t.Error("TeeTxnObserver(nil, nil) must be nil")
	}
	if TeeWaitObserver(nil, nil) != nil {
		t.Error("TeeWaitObserver(nil, nil) must be nil")
	}
	if TeeDCObserver(nil, nil) != nil {
		t.Error("TeeDCObserver(nil, nil) must be nil")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		_ = TeeTxnObserver(nil, nil)
		_ = TeeWaitObserver(nil, nil)
		_ = TeeDCObserver(nil, nil)
	})
	if allocs > 0 {
		t.Errorf("collapsed tee helpers: %.1f allocs/op, want 0", allocs)
	}
}

func TestNilTracerEmitZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvLockAcquire, Owner: 7, Key: "x"})
	})
	if allocs > 0 {
		t.Errorf("nil tracer Emit: %.1f allocs/op, want 0", allocs)
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer accessors must report empty")
	}
}

func TestNilMetricHandlesZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
	})
	if allocs > 0 {
		t.Errorf("nil metric handles: %.1f allocs/op, want 0", allocs)
	}
}

// Enabled-tracer steady state: once the ring has grown, Emit is a slot
// write behind a mutex — no per-event allocation.
func TestEnabledTracerSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer(1 << 16)
	for i := 0; i < 4096; i++ { // pre-grow the buffer
		tr.Emit(Event{Kind: EvLockAcquire, Owner: int64(i)})
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: EvLockAcquire, Owner: 1, Key: "x"})
	})
	// Amortized slice growth can surface as <1 alloc/op; the guard is
	// against per-event boxing (>=1 every call).
	if allocs >= 1 {
		t.Errorf("enabled tracer steady-state Emit: %.1f allocs/op, want < 1", allocs)
	}
}
