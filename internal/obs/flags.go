package obs

import (
	"flag"
	"fmt"
	"os"
	"time"
)

// Flags is the shared -trace/-metrics CLI surface every bench command
// registers (cmd/perfbench, distbench, chaosbench, conformance,
// bankbench, distsim). All destinations are optional; with none set,
// Build returns a nil plane and the instrumented pipeline keeps its
// zero-cost disabled paths.
type Flags struct {
	// Trace is the canonical (seed-deterministic) Chrome trace-event
	// JSON destination.
	Trace string
	// TraceWall is the wall-clock Chrome trace-event JSON destination.
	TraceWall string
	// TraceText is the human text timeline destination.
	TraceText string
	// Metrics is the Prometheus exposition listen address (e.g.
	// "127.0.0.1:9090"); empty disables the listener.
	Metrics string
	// MetricsDump is a file to write one final Prometheus exposition
	// snapshot to at stop time (usable without the listener).
	MetricsDump string
	// Ledger forces the ε-provenance ledger on even when no trace
	// destination is set (the conformance harness reads it directly).
	Ledger bool
	// Spans is the canonical (deterministic) merged span export
	// destination; SpansWall is the wall-clock Chrome export. Either
	// enables the distributed span store. CritPath prints the top-N
	// slowest transactions' phase breakdowns (0 disables the report).
	Spans     string
	SpansWall string
	CritPath  int
	// SpanProc names this process's span store in the merge (defaults
	// to "p0"); SpanLimit bounds the ring (0 = DefaultSpanLimit).
	SpanProc  string
	SpanLimit int
	// FlightDump arms the anomaly flight recorder: on the first trigger
	// (chain stall, invariant violation) the recent span tail is dumped
	// to this path ("-" = stderr). StallAfter arms the chain-stall
	// watchdog: any transaction unsettled past this age fires the
	// recorder. Either implies span recording.
	FlightDump string
	StallAfter time.Duration
}

// Register adds the observability flags to fs and returns the struct
// they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write canonical (deterministic) Chrome trace-event JSON to file")
	fs.StringVar(&f.TraceWall, "tracewall", "", "write wall-clock Chrome trace-event JSON to file")
	fs.StringVar(&f.TraceText, "tracetext", "", "write human trace timeline to file")
	fs.StringVar(&f.Metrics, "metrics", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9090)")
	fs.StringVar(&f.MetricsDump, "metricsdump", "", "write a final Prometheus exposition snapshot to file")
	fs.StringVar(&f.Spans, "spans", "", "write canonical (deterministic) merged distributed-span export to file")
	fs.StringVar(&f.SpansWall, "spanswall", "", "write wall-clock merged span Chrome trace-event JSON to file")
	fs.IntVar(&f.CritPath, "criticalpath", 0, "print phase breakdowns for the N slowest transactions (enables span recording)")
	fs.IntVar(&f.SpanLimit, "spanlimit", 0, "bound the per-process span ring (0 = default)")
	fs.StringVar(&f.FlightDump, "flightdump", "", "dump recent spans here on the first anomaly (\"-\" = stderr; enables span recording)")
	fs.DurationVar(&f.StallAfter, "stallafter", 0, "fire the flight recorder when a transaction is unsettled past this age (enables span recording)")
	return f
}

// SpansEnabled reports whether any span consumer was requested.
func (f *Flags) SpansEnabled() bool {
	return f.Spans != "" || f.SpansWall != "" || f.CritPath > 0 ||
		f.FlightDump != "" || f.StallAfter > 0
}

// enabled reports whether any observability consumer was requested.
func (f *Flags) enabled() bool {
	return f.Trace != "" || f.TraceWall != "" || f.TraceText != "" ||
		f.Metrics != "" || f.MetricsDump != "" || f.Ledger || f.SpansEnabled()
}

// Build assembles the requested plane and starts the metrics listener
// if one was asked for. It returns a nil plane (and a no-op stop) when
// nothing was requested. The stop function writes the requested
// exports and shuts the listener down; call it exactly once, after the
// measured work.
func (f *Flags) Build() (*Plane, func() error, error) {
	if !f.enabled() {
		return nil, func() error { return nil }, nil
	}
	var tr *Tracer
	if f.Trace != "" || f.TraceWall != "" || f.TraceText != "" {
		tr = NewTracer(0)
	}
	var lg *Ledger
	if f.Ledger || tr != nil {
		lg = NewLedger()
	}
	var reg *Registry
	var closeHTTP func() error
	if f.Metrics != "" || f.MetricsDump != "" {
		reg = NewRegistry()
	}
	if f.Metrics != "" {
		addr, closeFn, err := reg.Serve(f.Metrics)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: metrics listener: %w", err)
		}
		closeHTTP = closeFn
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", addr)
	}
	p := NewPlane(tr, lg, reg)
	stopWatch := func() {}
	if f.SpansEnabled() {
		proc := f.SpanProc
		if proc == "" {
			proc = "p0"
		}
		p.EnableSpans(proc, f.SpanLimit)
		if f.FlightDump != "" || f.StallAfter > 0 {
			p.EnableFlightRecorder(f.FlightDump, 256)
			if f.StallAfter > 0 {
				stopWatch = p.StartStallWatch(f.StallAfter, 0)
			}
		}
	}
	stop := func() error {
		stopWatch()
		var firstErr error
		writeFile := func(path string, write func(f *os.File) error) {
			if path == "" {
				return
			}
			out, err := os.Create(path)
			if err == nil {
				err = write(out)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		events := tr.Events()
		writeFile(f.Trace, func(out *os.File) error { return ExportCanonical(out, events) })
		writeFile(f.TraceWall, func(out *os.File) error { return ExportWall(out, events) })
		writeFile(f.TraceText, func(out *os.File) error { return WriteText(out, events) })
		writeFile(f.MetricsDump, func(out *os.File) error { return reg.WriteProm(out) })
		if p.Spans != nil {
			m := MergeSpans([]ProcSpans{p.Spans.Dump()})
			writeFile(f.Spans, func(out *os.File) error { return ExportCanonicalSpans(out, m) })
			writeFile(f.SpansWall, func(out *os.File) error { return ExportWallSpans(out, m) })
			fmt.Fprintf(os.Stderr, "obs: spans: %d in %d traces, %.2f%% connected, %d orphaned, %d evicted\n",
				m.Spans, len(m.Traces), 100*m.ConnectedFraction(), m.Orphans, m.Evicted)
			if f.CritPath > 0 {
				r := AnalyzeCriticalPath(m, f.CritPath)
				r.FeedMetrics(reg)
				r.WriteText(os.Stderr)
			}
		}
		if tr != nil && tr.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "obs: trace buffer overflow, %d events dropped\n", tr.Dropped())
		}
		if closeHTTP != nil {
			if err := closeHTTP(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return p, stop, nil
}
