package obs

import (
	"flag"
	"fmt"
	"os"
)

// Flags is the shared -trace/-metrics CLI surface every bench command
// registers (cmd/perfbench, distbench, chaosbench, conformance,
// bankbench, distsim). All destinations are optional; with none set,
// Build returns a nil plane and the instrumented pipeline keeps its
// zero-cost disabled paths.
type Flags struct {
	// Trace is the canonical (seed-deterministic) Chrome trace-event
	// JSON destination.
	Trace string
	// TraceWall is the wall-clock Chrome trace-event JSON destination.
	TraceWall string
	// TraceText is the human text timeline destination.
	TraceText string
	// Metrics is the Prometheus exposition listen address (e.g.
	// "127.0.0.1:9090"); empty disables the listener.
	Metrics string
	// MetricsDump is a file to write one final Prometheus exposition
	// snapshot to at stop time (usable without the listener).
	MetricsDump string
	// Ledger forces the ε-provenance ledger on even when no trace
	// destination is set (the conformance harness reads it directly).
	Ledger bool
}

// Register adds the observability flags to fs and returns the struct
// they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Trace, "trace", "", "write canonical (deterministic) Chrome trace-event JSON to file")
	fs.StringVar(&f.TraceWall, "tracewall", "", "write wall-clock Chrome trace-event JSON to file")
	fs.StringVar(&f.TraceText, "tracetext", "", "write human trace timeline to file")
	fs.StringVar(&f.Metrics, "metrics", "", "serve Prometheus metrics on this address (e.g. 127.0.0.1:9090)")
	fs.StringVar(&f.MetricsDump, "metricsdump", "", "write a final Prometheus exposition snapshot to file")
	return f
}

// enabled reports whether any observability consumer was requested.
func (f *Flags) enabled() bool {
	return f.Trace != "" || f.TraceWall != "" || f.TraceText != "" ||
		f.Metrics != "" || f.MetricsDump != "" || f.Ledger
}

// Build assembles the requested plane and starts the metrics listener
// if one was asked for. It returns a nil plane (and a no-op stop) when
// nothing was requested. The stop function writes the requested
// exports and shuts the listener down; call it exactly once, after the
// measured work.
func (f *Flags) Build() (*Plane, func() error, error) {
	if !f.enabled() {
		return nil, func() error { return nil }, nil
	}
	var tr *Tracer
	if f.Trace != "" || f.TraceWall != "" || f.TraceText != "" {
		tr = NewTracer(0)
	}
	var lg *Ledger
	if f.Ledger || tr != nil {
		lg = NewLedger()
	}
	var reg *Registry
	var closeHTTP func() error
	if f.Metrics != "" || f.MetricsDump != "" {
		reg = NewRegistry()
	}
	if f.Metrics != "" {
		addr, closeFn, err := reg.Serve(f.Metrics)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: metrics listener: %w", err)
		}
		closeHTTP = closeFn
		fmt.Fprintf(os.Stderr, "obs: serving metrics on http://%s/metrics\n", addr)
	}
	p := NewPlane(tr, lg, reg)
	stop := func() error {
		var firstErr error
		writeFile := func(path string, write func(f *os.File) error) {
			if path == "" {
				return
			}
			out, err := os.Create(path)
			if err == nil {
				err = write(out)
				if cerr := out.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		events := tr.Events()
		writeFile(f.Trace, func(out *os.File) error { return ExportCanonical(out, events) })
		writeFile(f.TraceWall, func(out *os.File) error { return ExportWall(out, events) })
		writeFile(f.TraceText, func(out *os.File) error { return WriteText(out, events) })
		writeFile(f.MetricsDump, func(out *os.File) error { return reg.WriteProm(out) })
		if tr != nil && tr.Dropped() > 0 {
			fmt.Fprintf(os.Stderr, "obs: trace buffer overflow, %d events dropped\n", tr.Dropped())
		}
		if closeHTTP != nil {
			if err := closeHTTP(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	return p, stop, nil
}
