package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// FlightRecorder dumps the tail of the span ring when an anomaly
// fires: a chain stalled past a threshold (the watchdog below) or a
// chaosbench invariant violation. It dumps at most once — the first
// trigger wins, later ones only bump the counter — so a cascade of
// violations doesn't grind the run writing the same spans repeatedly.
type FlightRecorder struct {
	store  *SpanStore
	path   string
	recent int

	mu       sync.Mutex
	fired    bool
	triggers int
	reason   string
}

// NewFlightRecorder arms a recorder over store: on trigger it writes
// the most recent `recent` spans (0 = all buffered) to path ("-" or
// "" = stderr).
func NewFlightRecorder(store *SpanStore, path string, recent int) *FlightRecorder {
	return &FlightRecorder{store: store, path: path, recent: recent}
}

// Trigger fires the recorder with a reason. The first call dumps and
// returns true; subsequent calls only count. Nil-safe.
func (f *FlightRecorder) Trigger(reason string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	f.triggers++
	if f.fired {
		f.mu.Unlock()
		return false
	}
	f.fired = true
	f.reason = reason
	f.mu.Unlock()

	spans := f.store.Spans()
	if f.recent > 0 && len(spans) > f.recent {
		spans = spans[len(spans)-f.recent:]
	}
	var w io.Writer = os.Stderr
	var c io.Closer
	if f.path != "" && f.path != "-" {
		file, err := os.Create(f.path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder: %v\n", err)
			return true
		}
		w, c = file, file
	}
	writeFlightDump(w, f.store.Proc(), reason, spans)
	if c != nil {
		_ = c.Close()
	}
	return true
}

// Triggers returns how many anomalies fired (dumped or not). Nil-safe.
func (f *FlightRecorder) Triggers() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.triggers
}

// writeFlightDump renders the recent-span tail as text, newest last,
// grouped so a stalled chain reads as one block.
func writeFlightDump(w io.Writer, proc, reason string, spans []Span) {
	fmt.Fprintf(w, "=== flight recorder dump (proc %s): %s ===\n", proc, reason)
	fmt.Fprintf(w, "%d recent spans:\n", len(spans))
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		return spans[i].Start < spans[j].Start
	})
	for _, sp := range spans {
		d := time.Duration(sp.End - sp.Start)
		fmt.Fprintf(w, "  trace=%d %s/%s piece=%d site=%s %v [clock %d]\n",
			sp.Trace, sp.Kind, sp.Phase.String(), sp.Piece, sp.Site, d.Round(time.Microsecond), sp.Clock)
	}
	fmt.Fprintf(w, "=== end flight dump ===\n")
}

// StartStallWatch runs a watchdog that triggers the plane's flight
// recorder when any open (unsettled) root span exceeds threshold age.
// Returns a stop function; no-op (returns an inert stop) when the
// plane, its span store, or its flight recorder is absent.
func (p *Plane) StartStallWatch(threshold, every time.Duration) func() {
	if p == nil || p.Spans == nil || p.flight == nil {
		return func() {}
	}
	if every <= 0 {
		every = threshold / 4
	}
	if every <= 0 {
		every = time.Second
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				now := time.Now().UnixNano()
				p.spanMu.Lock()
				var stalled uint64
				var age time.Duration
				for trace, r := range p.openRoots {
					if a := time.Duration(now - r.start); a > threshold && a > age {
						stalled, age = trace, a
					}
				}
				p.spanMu.Unlock()
				if stalled != 0 {
					p.flight.Trigger(fmt.Sprintf("chain stall: trace %d unsettled for %v (threshold %v)",
						stalled, age.Round(time.Millisecond), threshold))
				}
			}
		}
	}()
	return func() { close(done) }
}
