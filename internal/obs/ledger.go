package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"asynctp/internal/metric"
	"asynctp/internal/oracle"
)

// Ledger is the ε-provenance ledger: it accounts every fuzziness debit
// divergence control grants back to its source conflict, per epsilon
// transaction (per submitted instance — the oracle's "group").
//
// The paper's correctness story is pure accounting — every query is
// within Limit_t of a serializable result because each absorbed
// read-write conflict debits its declared write bound from both sides —
// but the dc controller only keeps per-piece running sums. The ledger
// keeps the receipts: which key, which peer transaction, which piece,
// which direction, under which budget-distribution policy. Reconcile
// then lines the receipts up against the serial-replay oracle's
// *measured* divergence, yielding the three-column
// budgeted / charged / measured view the conformance report prints.
//
// Invariant on clean runs: measured ≤ charged (the oracle can never
// measure more divergence than DC priced, because DC prices worst-case
// write bounds) and charged is within budgeted. A mis-budgeted run
// (core.Config.BudgetScale) breaks the second inequality on exactly the
// queries whose inflated accounts let DC over-absorb — the ledger flags
// them without needing the oracle.
type Ledger struct {
	mu       sync.Mutex
	seq      int64
	binds    map[int64]bindRef
	accounts map[int64]*Account
	// pending buffers each in-flight piece attempt's receipts, keyed by
	// owner. They fold into the attempt's account only at Settle: an
	// aborted attempt (deadlock, validation failure, rollback) never
	// committed its reads, so its receipts are voided, not charged —
	// otherwise retries would over-flag correctly budgeted runs.
	pending map[int64][]pendingCharge
}

// bindRef locates a piece attempt inside its epsilon transaction.
type bindRef struct {
	group int64
	piece int32
}

// pendingCharge is one buffered receipt awaiting its attempt's settle.
// The peer is resolved at debit time, while both attempts are bound.
type pendingCharge struct {
	dir  Direction
	key  string
	cost metric.Fuzz
	peer bindRef
}

// Direction distinguishes the two sides of an absorbed conflict.
type Direction uint8

// Charge directions.
const (
	// DirImport marks fuzziness observed by the charged account (it is
	// the query side of the conflict).
	DirImport Direction = iota + 1
	// DirExport marks fuzziness the charged account caused others to
	// observe (it is the update side).
	DirExport
)

// String renders the direction.
func (d Direction) String() string {
	if d == DirExport {
		return "export"
	}
	return "import"
}

// Charge is one fuzziness debit attributed to one account.
type Charge struct {
	// Seq orders charges ledger-wide (arrival order of debits).
	Seq int64
	// Dir is the charged side: import (query) or export (update).
	Dir Direction
	// Key is the conflicted storage key.
	Key string
	// Cost is the fuzziness charged (the update's declared write bound).
	Cost metric.Fuzz
	// Piece is the charged account's piece executing when the conflict
	// was absorbed (-1 if unknown).
	Piece int32
	// Peer is the conflicting transaction's group (0 if unknown —
	// e.g. an unregistered or already-settled peer).
	Peer int64
	// PeerPiece is the peer's piece (-1 if unknown).
	PeerPiece int32
}

// Account is one epsilon transaction's ledger page.
type Account struct {
	// Group is the instance identity (matches oracle verdict groups).
	Group int64
	// Name is the original program name; Class its class; Mode the
	// ε-budget distribution policy it ran under.
	Name  string
	Class string
	Mode  string
	// Budget is the ORIGINAL Limit_t of the program (never the
	// BudgetScale-inflated runtime budget): the bound the user was
	// promised, against which over-charging is flagged.
	Budget metric.Limit
	// Charged sums the import debits (fuzziness this instance observed,
	// as priced conflict-by-conflict).
	Charged metric.Fuzz
	// Exported sums the export debits (fuzziness this instance caused).
	Exported metric.Fuzz
	// Settled and SettledExport sum the per-piece dc account totals at
	// unregister; on a consistent run Settled == Charged (the ledger's
	// conflict receipts add up to the controller's running sums).
	Settled       metric.Fuzz
	SettledExport metric.Fuzz
	// Charges are the receipts, in debit order.
	Charges []Charge
}

// DebitPair is one query/update decomposition of an absorbed conflict,
// in owner terms (the dc observer's view).
type DebitPair struct {
	Query  int64
	Update int64
	Cost   metric.Fuzz
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		binds:    make(map[int64]bindRef),
		accounts: make(map[int64]*Account),
		pending:  make(map[int64][]pendingCharge),
	}
}

// account returns (creating) group's page. Caller holds l.mu.
func (l *Ledger) account(group int64) *Account {
	a := l.accounts[group]
	if a == nil {
		a = &Account{Group: group}
		l.accounts[group] = a
	}
	return a
}

// BindGroup declares one epsilon transaction: its identity, its
// ORIGINAL budget (Limit_t), and the distribution policy in force.
// Nil-safe.
func (l *Ledger) BindGroup(group int64, name, class, mode string, budget metric.Limit) {
	if l == nil {
		return
	}
	l.mu.Lock()
	a := l.account(group)
	a.Name, a.Class, a.Mode, a.Budget = name, class, mode, budget
	l.mu.Unlock()
}

// BindPiece maps a piece attempt's owner onto its epsilon transaction,
// so debits arriving in owner terms can be attributed. Nil-safe.
func (l *Ledger) BindPiece(owner, group int64, piece int32) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.binds[owner] = bindRef{group: group, piece: piece}
	l.mu.Unlock()
}

// resolve returns owner's bind (group 0, piece -1 when unknown).
// Caller holds l.mu.
func (l *Ledger) resolve(owner int64) bindRef {
	if b, ok := l.binds[owner]; ok {
		return b
	}
	return bindRef{group: 0, piece: -1}
}

// Debit buffers one absorbed conflict: every query/update pair pends an
// import receipt on the query attempt and an export receipt on the
// update attempt. The receipts charge their accounts only when the
// attempt settles (Settle); an aborted attempt voids them. Nil-safe.
func (l *Ledger) Debit(key string, pairs []DebitPair) {
	if l == nil || len(pairs) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pairs {
		q, u := l.resolve(p.Query), l.resolve(p.Update)
		// Only bound owners accumulate receipts: the repair engine's
		// ε-skips name a writer that already settled, and pending entries
		// for retired owners would never be folded or voided.
		if _, ok := l.binds[p.Query]; ok {
			l.pending[p.Query] = append(l.pending[p.Query],
				pendingCharge{dir: DirImport, key: key, cost: p.Cost, peer: u})
		}
		if _, ok := l.binds[p.Update]; ok {
			l.pending[p.Update] = append(l.pending[p.Update],
				pendingCharge{dir: DirExport, key: key, cost: p.Cost, peer: q})
		}
	}
}

// Settle folds a piece attempt's receipts and final dc account totals
// into its epsilon transaction and retires the owner binding. Nil-safe.
func (l *Ledger) Settle(owner int64, imported, exported metric.Fuzz) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	pend := l.pending[owner]
	delete(l.pending, owner)
	b, ok := l.binds[owner]
	if !ok {
		return
	}
	delete(l.binds, owner)
	a := l.account(b.group)
	a.Settled = a.Settled.Add(imported)
	a.SettledExport = a.SettledExport.Add(exported)
	for _, pc := range pend {
		l.seq++
		ch := Charge{
			Seq: l.seq, Dir: pc.dir, Key: pc.key, Cost: pc.cost,
			Piece: b.piece, Peer: pc.peer.group, PeerPiece: pc.peer.piece,
		}
		if pc.dir == DirImport {
			a.Charged = a.Charged.Add(pc.cost)
		} else {
			a.Exported = a.Exported.Add(pc.cost)
		}
		a.Charges = append(a.Charges, ch)
	}
}

// Void discards a piece attempt's pending receipts and binding: the
// attempt aborted, so its observed fuzziness never entered the
// committed history. Nil-safe.
func (l *Ledger) Void(owner int64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	delete(l.pending, owner)
	delete(l.binds, owner)
	l.mu.Unlock()
}

// Accounts returns a deep copy of every page, sorted by group.
func (l *Ledger) Accounts() []Account {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Account, 0, len(l.accounts))
	for _, a := range l.accounts {
		cp := *a
		cp.Charges = append([]Charge(nil), a.Charges...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// OverBudget returns the accounts whose charged import fuzziness
// exceeds their ORIGINAL budget — the ledger-side flag a mis-budgeted
// run (BudgetScale) must raise. Accounts that never declared a budget
// (group 0 fallthrough, CC methods) are skipped.
func (l *Ledger) OverBudget() []Account {
	var out []Account
	for _, a := range l.Accounts() {
		if a.Name == "" {
			continue
		}
		if !a.Budget.Allows(a.Charged) {
			out = append(out, a)
		}
	}
	return out
}

// ReconRow is one query's budgeted / charged / measured line.
type ReconRow struct {
	// Group and Name identify the query instance.
	Group int64
	Name  string
	// Budgeted is the declared Limit_t (original, unscaled).
	Budgeted metric.Limit
	// Charged is what DC's accounting debited (ledger import receipts).
	Charged metric.Fuzz
	// Measured is the oracle's replay divergence (distance to the
	// nearest examined serial order; oracle.Unexplained if none fits).
	Measured metric.Fuzz
	// MeasuredOK is the oracle's verdict for the query.
	MeasuredOK bool
	// OverBudget reports Charged beyond Budgeted (ledger flag).
	OverBudget bool
	// Covered reports Charged ≥ Measured (accounting covers reality);
	// vacuously false when Measured is Unexplained.
	Covered bool
}

// Reconciliation is the ledger-vs-oracle view of one run.
type Reconciliation struct {
	// Rows holds one line per query group the oracle examined, sorted.
	Rows []ReconRow
	// AllCovered reports Charged ≥ Measured on every explainable row.
	AllCovered bool
	// OverBudget lists the rows the ledger flags (charged > budgeted).
	OverBudget []ReconRow
}

// Reconcile lines the ledger's receipts up against the oracle's
// measured divergences. Only query groups get rows; update groups are
// accounting peers, not ε consumers. Nil-safe (nil ledger still
// produces measured-only rows with zero charges).
func (l *Ledger) Reconcile(rep *oracle.Report) *Reconciliation {
	rec := &Reconciliation{AllCovered: true}
	if rep == nil {
		return rec
	}
	var pages map[int64]Account
	if l != nil {
		pages = make(map[int64]Account)
		for _, a := range l.Accounts() {
			pages[a.Group] = a
		}
	}
	for _, v := range rep.Verdicts {
		if v.Class.String() != "query" {
			continue
		}
		row := ReconRow{
			Group:      int64(v.Group),
			Name:       v.Name,
			Budgeted:   v.Limit,
			Measured:   v.Divergence,
			MeasuredOK: v.OK,
		}
		if a, ok := pages[int64(v.Group)]; ok {
			row.Charged = a.Charged
			if a.Name != "" {
				row.Budgeted = a.Budget
			}
		}
		row.OverBudget = !row.Budgeted.Allows(row.Charged)
		row.Covered = v.Divergence != oracle.Unexplained && row.Charged >= v.Divergence
		if !row.Covered {
			rec.AllCovered = false
		}
		if row.OverBudget {
			rec.OverBudget = append(rec.OverBudget, row)
		}
		rec.Rows = append(rec.Rows, row)
	}
	sort.Slice(rec.Rows, func(i, j int) bool { return rec.Rows[i].Group < rec.Rows[j].Group })
	return rec
}

// fuzzStr renders a fuzz value, with Unexplained as "?".
func fuzzStr(f metric.Fuzz) string {
	if f == oracle.Unexplained {
		return "?"
	}
	return fmt.Sprintf("%d", int64(f))
}

// WriteTable renders the reconciliation as the conformance report's
// per-query budgeted / charged / measured table.
func (r *Reconciliation) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-6s %-24s %10s %10s %10s %-8s %s\n",
		"group", "query", "budgeted", "charged", "measured", "oracle", "ledger"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		oracleCol := "ok"
		if !row.MeasuredOK {
			oracleCol = "VIOLATE"
		}
		ledgerCol := "ok"
		if row.OverBudget {
			ledgerCol = "OVER-BUDGET"
		} else if !row.Covered {
			ledgerCol = "uncovered"
		}
		if _, err := fmt.Fprintf(w, "%-6d %-24s %10s %10s %10s %-8s %s\n",
			row.Group, row.Name, row.Budgeted.String(), fuzzStr(row.Charged),
			fuzzStr(row.Measured), oracleCol, ledgerCol); err != nil {
			return err
		}
	}
	return nil
}
