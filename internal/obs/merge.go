package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ProcSpans is one process's span-store dump: the unit the loadbench
// -multi barrier ships from children to the parent for merging.
type ProcSpans struct {
	Proc    string `json:"proc"`
	Spans   []Span `json:"spans"`
	Total   uint64 `json:"total"`
	Evicted uint64 `json:"evicted"`
}

// mergedSpan is a span qualified by the store that recorded it.
type mergedSpan struct {
	Span
	Proc string
}

// spanKey globally identifies a span: IDs are only unique per store.
type spanKey struct {
	proc string
	id   uint64
}

// MergedTrace is one transaction's reassembled cross-process span
// tree.
type MergedTrace struct {
	Trace uint64
	// Spans holds every span of the trace (duplicates collapsed),
	// qualified by recording process.
	Spans []mergedSpan
	// Root indexes the txn span in Spans, -1 when the root was lost
	// (evicted or never recorded).
	Root int
	// Orphans counts spans whose parent edge dangles: the parent span
	// is absent from the merge (evicted from its store's bounded ring,
	// or the sender traced with spans off). These are the propagation
	// failures the bounded buffer can silently create; the merge
	// counts them instead.
	Orphans int
	// Connected reports a complete tree: a root exists and every span
	// reaches it through parent edges.
	Connected bool
}

// Merged is the canonical cross-process trace: every trace reassembled
// from the per-process dumps, plus the propagation-failure accounting.
type Merged struct {
	Traces []*MergedTrace
	Procs  []string
	// Spans counts merged spans; Orphans counts dangling parent edges
	// across all traces; Evicted sums the per-process ring evictions.
	Spans   int
	Orphans int
	Evicted uint64
}

// ConnectedFraction returns the fraction of traces that have a fully
// connected span tree (1.0 when there are no traces).
func (m *Merged) ConnectedFraction() float64 {
	if len(m.Traces) == 0 {
		return 1.0
	}
	n := 0
	for _, t := range m.Traces {
		if t.Connected {
			n++
		}
	}
	return float64(n) / float64(len(m.Traces))
}

// MergeSpans reassembles one cross-process trace set from per-process
// span dumps. Duplicate spans (same store, same ID — redelivered hops
// re-recorded after a crash) collapse to the last copy. The result is
// deterministic: traces sort by ID, spans within a trace by a stable
// structural key.
func MergeSpans(dumps []ProcSpans) *Merged {
	m := &Merged{}
	byTrace := make(map[uint64]map[spanKey]mergedSpan)
	for _, d := range dumps {
		m.Procs = append(m.Procs, d.Proc)
		m.Evicted += d.Evicted
		for _, sp := range d.Spans {
			t := byTrace[sp.Trace]
			if t == nil {
				t = make(map[spanKey]mergedSpan)
				byTrace[sp.Trace] = t
			}
			t[spanKey{d.Proc, sp.ID}] = mergedSpan{Span: sp, Proc: d.Proc}
		}
	}
	sort.Strings(m.Procs)
	for trace, set := range byTrace {
		mt := &MergedTrace{Trace: trace, Root: -1}
		for _, sp := range set {
			mt.Spans = append(mt.Spans, sp)
		}
		sort.Slice(mt.Spans, func(i, j int) bool {
			a, b := &mt.Spans[i], &mt.Spans[j]
			if a.ID != b.ID {
				return a.ID < b.ID
			}
			return a.Proc < b.Proc
		})
		// Resolve parent edges and find the root.
		children := make(map[spanKey][]int, len(mt.Spans))
		for i := range mt.Spans {
			sp := &mt.Spans[i]
			if sp.Kind == SpanTxn && sp.Parent == 0 {
				mt.Root = i
				continue
			}
			pp := sp.ParentProc
			if pp == "" {
				pp = sp.Proc
			}
			pk := spanKey{pp, sp.Parent}
			if sp.Parent == 0 {
				// Parentless non-root: the sender never stamped a
				// context (tracing off upstream) — a dangling edge.
				mt.Orphans++
				continue
			}
			if _, ok := set[pk]; !ok {
				mt.Orphans++
				continue
			}
			children[pk] = append(children[pk], i)
		}
		// Connectivity: BFS from the root over resolved edges.
		reach := 0
		if mt.Root >= 0 {
			queue := []int{mt.Root}
			for len(queue) > 0 {
				i := queue[0]
				queue = queue[1:]
				reach++
				k := spanKey{mt.Spans[i].Proc, mt.Spans[i].ID}
				queue = append(queue, children[k]...)
			}
		}
		mt.Connected = mt.Root >= 0 && reach == len(mt.Spans)
		m.Orphans += mt.Orphans
		m.Spans += len(mt.Spans)
		m.Traces = append(m.Traces, mt)
	}
	sort.Slice(m.Traces, func(i, j int) bool { return m.Traces[i].Trace < m.Traces[j].Trace })
	return m
}

// spanSig renders the seed-deterministic content of one structural
// span: everything except timestamps, Lamport clocks, and raw IDs
// (which depend on scheduling, not on the seed).
func spanSig(sp mergedSpan) string {
	var b strings.Builder
	b.WriteString(sp.Kind)
	b.WriteString("/ph=")
	b.WriteString(sp.Phase.String())
	b.WriteString("/pc=")
	b.WriteString(strconv.Itoa(int(sp.Piece)))
	if sp.Comp {
		b.WriteString("/comp")
	}
	if sp.Site != "" {
		b.WriteString("/site=")
		b.WriteString(sp.Site)
	}
	if sp.Name != "" {
		b.WriteString("/name=")
		b.WriteString(sp.Name)
	}
	b.WriteString("/proc=")
	b.WriteString(sp.Proc)
	if sp.Kind == SpanTxn {
		if sp.Committed {
			b.WriteString("/ok")
		} else {
			b.WriteString("/aborted")
		}
	}
	return b.String()
}

// ExportCanonicalSpans writes the seed-deterministic span export: only
// structural spans (deterministic IDs — roots, pieces, hops), with
// content signatures in place of timestamps, traces re-identified by
// signature so instance-ID assignment order doesn't leak in. Two runs
// of the same seeded scenario produce byte-identical output; CI diffs
// them with cmp.
func ExportCanonicalSpans(w io.Writer, m *Merged) error {
	type canonTrace struct {
		sig   string
		spans []string
	}
	traces := make([]canonTrace, 0, len(m.Traces))
	for _, mt := range m.Traces {
		var spans []string
		for _, sp := range mt.Spans {
			if !LogicalSpan(sp.Span) {
				continue
			}
			spans = append(spans, spanSig(sp))
		}
		if len(spans) == 0 {
			continue
		}
		sort.Strings(spans)
		traces = append(traces, canonTrace{sig: strings.Join(spans, "|"), spans: spans})
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].sig < traces[j].sig })

	var b strings.Builder
	b.WriteString("{\"spanTraces\":[")
	for i, ct := range traces {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "{\"id\":\"t%d\",\"spans\":[", i)
		for j, s := range ct.spans {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(s))
		}
		b.WriteString("]}")
	}
	fmt.Fprintf(&b, "],\"traces\":%d}\n", len(traces))
	_, err := io.WriteString(w, b.String())
	return err
}

// ExportWallSpans writes the merged trace as Chrome trace-event JSON
// with real wall-clock timestamps: one pid per process, one tid per
// trace, spans as complete events. Load it in chrome://tracing or
// Perfetto.
func ExportWallSpans(w io.Writer, m *Merged) error {
	e := newEmitter()
	procID := make(map[string]int, len(m.Procs))
	for i, p := range m.Procs {
		procID[p] = i + 1
		e.meta("process_name", i+1, 0, "proc "+p)
	}
	var t0 int64
	for _, mt := range m.Traces {
		for _, sp := range mt.Spans {
			if t0 == 0 || (sp.Start > 0 && sp.Start < t0) {
				t0 = sp.Start
			}
		}
	}
	tid := 0
	for _, mt := range m.Traces {
		tid++
		for _, sp := range mt.Spans {
			pid := procID[sp.Proc]
			if pid == 0 {
				pid = 1
			}
			name := sp.Kind
			if sp.Name != "" {
				name = sp.Kind + ":" + sp.Name
			}
			dur := (sp.End - sp.Start) / 1e3
			if dur < 0 {
				dur = 0
			}
			args := fmt.Sprintf(`"trace":%d,"phase":%q,"piece":%d,"site":%q`,
				mt.Trace, sp.Phase.String(), sp.Piece, sp.Site)
			e.span(name, sp.Phase.String(), pid, tid, (sp.Start-t0)/1e3, dur, args)
		}
	}
	return e.finish(w)
}
