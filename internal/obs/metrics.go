package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a lightweight metrics registry: counters, gauges (direct
// and callback-backed), and fixed-bucket histograms, with Prometheus
// text exposition. It is deliberately tiny — no dependency, no label
// indexing machinery: a metric's identity is its family name plus a
// canonical label block, rendered once at registration.
//
// Hot paths hold pre-registered *Counter / *Histogram handles, so an
// observation is one or two atomic adds; the registry mutex is touched
// only at registration and exposition time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one metric family: a type, a help string, and its series.
type family struct {
	name   string
	kind   string // "counter", "gauge", "histogram"
	help   string
	series map[string]any // label block -> *Counter/*Gauge/gaugeFunc/*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelBlock renders alternating key,value pairs canonically:
// {a="x",b="y"} with keys in the given order. Empty labels render "".
func labelBlock(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// register adds (or returns the existing) series for name+labels.
func (r *Registry) register(kind, name, help string, labels []string, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, kind: kind, help: help, series: make(map[string]any)}
		r.families[name] = fam
	}
	lb := labelBlock(labels)
	if s, ok := fam.series[lb]; ok {
		return s
	}
	s := mk()
	fam.series[lb] = s
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. Nil-safe: a nil counter (metrics disabled) is a no-op.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n. Nil-safe.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n. Nil-safe.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// gaugeFunc is a callback-backed gauge, sampled at exposition time.
type gaugeFunc func() float64

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomic.Int64 // micro-units (1e-6) to stay integral
	count  atomic.Int64
}

// DefaultLatencyBuckets are seconds-scale bounds suited to the
// simulation's µs..s latencies.
var DefaultLatencyBuckets = []float64{
	0.000025, 0.0001, 0.00025, 0.001, 0.0025, 0.01, 0.025, 0.1, 0.25, 1, 2.5,
}

// Observe records v (in the histogram's unit, conventionally seconds).
// Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(int64(v * 1e6))
}

// ObserveDuration records d in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Count returns the number of observations. Nil-safe (0).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Counter registers (or fetches) a counter series. Nil-safe: a nil
// registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.register("counter", name, help, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) a gauge series. Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register("gauge", name, help, labels, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a callback-backed gauge series sampled at
// exposition time; re-registering the same series replaces the
// callback. Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, kind: "gauge", help: help, series: make(map[string]any)}
		r.families[name] = fam
	}
	fam.series[labelBlock(labels)] = gaugeFunc(fn)
}

// Histogram registers (or fetches) a histogram series with the given
// ascending upper bounds (nil selects DefaultLatencyBuckets). Nil-safe.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return r.register("histogram", name, help, labels, func() any {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	}).(*Histogram)
}

// CounterVec is a one-label family of counters: the label value is
// chosen per observation (per tenant, per partition) instead of at
// registration. With caches handles so a steady-state observation is a
// read-locked map hit plus one atomic add — no per-tenant registry
// plumbing at the call sites. Nil-safe end to end: a nil vec hands out
// nil counters whose methods no-op.
type CounterVec struct {
	reg   *Registry
	name  string
	help  string
	label string

	mu     sync.RWMutex
	series map[string]*Counter
}

// CounterVec registers (or fetches the registration surface of) a
// one-label counter family. Nil-safe.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{reg: r, name: name, help: help, label: label, series: make(map[string]*Counter)}
}

// With returns the counter for one label value, registering it on first
// use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.series[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	c = v.reg.Counter(v.name, v.help, v.label, value)
	v.mu.Lock()
	v.series[value] = c
	v.mu.Unlock()
	return c
}

// Snapshot returns the current value per label. Nil-safe (nil map).
func (v *CounterVec) Snapshot() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.series))
	for lv, c := range v.series {
		out[lv] = c.Value()
	}
	return out
}

// GaugeVec is the gauge analogue of CounterVec.
type GaugeVec struct {
	reg   *Registry
	name  string
	help  string
	label string

	mu     sync.RWMutex
	series map[string]*Gauge
}

// GaugeVec registers a one-label gauge family. Nil-safe.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{reg: r, name: name, help: help, label: label, series: make(map[string]*Gauge)}
}

// With returns the gauge for one label value, registering it on first
// use. Nil-safe.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	g := v.series[value]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	g = v.reg.Gauge(v.name, v.help, v.label, value)
	v.mu.Lock()
	v.series[value] = g
	v.mu.Unlock()
	return g
}

// Snapshot returns the current value per label. Nil-safe (nil map).
func (v *GaugeVec) Snapshot() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.series))
	for lv, g := range v.series {
		out[lv] = g.Value()
	}
	return out
}

// formatFloat renders a sample value without scientific notation noise.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

// WriteProm writes the registry in Prometheus text exposition format,
// families and series in sorted order so the output is stable.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type snap struct {
		fam    *family
		blocks []string
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		fam := r.families[name]
		blocks := make([]string, 0, len(fam.series))
		for lb := range fam.series {
			blocks = append(blocks, lb)
		}
		sort.Strings(blocks)
		snaps = append(snaps, snap{fam: fam, blocks: blocks})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, sn := range snaps {
		fam := sn.fam
		if fam.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.kind)
		for _, lb := range sn.blocks {
			switch s := fam.series[lb].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, lb, s.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, lb, s.Value())
			case gaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, lb, formatFloat(s()))
			case *Histogram:
				cum := int64(0)
				for i, bound := range s.bounds {
					cum += s.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name,
						mergeLabels(lb, fmt.Sprintf("le=%q", formatFloat(bound))), cum)
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", fam.name, mergeLabels(lb, `le="+Inf"`), s.count.Load())
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.name, lb, formatFloat(float64(s.sum.Load())/1e6))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.name, lb, s.count.Load())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels inserts extra into an existing label block.
func mergeLabels(lb, extra string) string {
	if lb == "" {
		return "{" + extra + "}"
	}
	return lb[:len(lb)-1] + "," + extra + "}"
}

// ServeHTTP implements http.Handler: GET anything returns the
// exposition.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteProm(w)
}

// Serve starts an HTTP listener exposing the registry at /metrics (and
// at /), plus the runtime pprof handlers under /debug/pprof/ — one mux,
// so a saturated run can be profiled through the same listener the
// metrics already use. It returns the bound address and a shutdown
// function.
func (r *Registry) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", r)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
