package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"asynctp/internal/metric"
)

// httpGet fetches a URL and returns (body, status).
func httpGet(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), resp.StatusCode
}

// truncate clips s for error messages.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// The label vectors exist so the tenant layer can charge per-tenant
// counters without one registry (or one pre-registration ceremony) per
// tenant: With() is the only call site API, handles are cached, and the
// whole surface collapses to no-ops when metrics are disabled.

func TestCounterVecRegistersAndCaches(t *testing.T) {
	reg := NewRegistry()
	vec := reg.CounterVec("asynctp_test_total", "help", "tenant")
	a1 := vec.With("alice")
	a1.Add(3)
	if a2 := vec.With("alice"); a2 != a1 {
		t.Error("With must return the cached handle for a repeated label")
	}
	vec.With("bob").Inc()

	snap := vec.Snapshot()
	if snap["alice"] != 3 || snap["bob"] != 1 {
		t.Errorf("snapshot = %v, want alice=3 bob=1", snap)
	}

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	prom := b.String()
	for _, want := range []string{
		`asynctp_test_total{tenant="alice"} 3`,
		`asynctp_test_total{tenant="bob"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %q:\n%s", want, prom)
		}
	}
}

func TestGaugeVecRegistersAndSnapshots(t *testing.T) {
	reg := NewRegistry()
	vec := reg.GaugeVec("asynctp_test_depth", "help", "partition")
	vec.With("0").Set(7)
	vec.With("1").Add(2)
	vec.With("1").Add(-1)
	snap := vec.Snapshot()
	if snap["0"] != 7 || snap["1"] != 1 {
		t.Errorf("snapshot = %v, want 0:7 1:1", snap)
	}
}

func TestNilVecsCollapse(t *testing.T) {
	var reg *Registry
	cv := reg.CounterVec("x", "h", "l")
	gv := reg.GaugeVec("x", "h", "l")
	if cv != nil || gv != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	cv.With("t").Inc() // must not panic
	gv.With("t").Set(1)
	if cv.Snapshot() != nil || gv.Snapshot() != nil {
		t.Error("nil vec snapshots must be nil")
	}
}

func TestPlaneTenantHooksAndSummary(t *testing.T) {
	p := NewPlane(nil, nil, NewRegistry())
	p.TenantAdmit("t1")
	p.TenantAdmit("t1")
	p.TenantDegrade("t1", metric.Fuzz(500))
	p.TenantShed("t2")
	var found1, found2 bool
	for _, line := range p.Summary() {
		if strings.Contains(line, "tenant t1:") {
			found1 = true
			if !strings.Contains(line, "2 admitted") || !strings.Contains(line, "1 degraded") ||
				!strings.Contains(line, "500 ε charged") {
				t.Errorf("t1 summary line wrong: %q", line)
			}
		}
		if strings.Contains(line, "tenant t2:") {
			found2 = true
			if !strings.Contains(line, "1 shed") {
				t.Errorf("t2 summary line wrong: %q", line)
			}
		}
	}
	if !found1 || !found2 {
		t.Errorf("summary missing tenant lines (t1=%v t2=%v):\n%s",
			found1, found2, strings.Join(p.Summary(), "\n"))
	}
}

func TestSummaryOmitsTenantLinesWhenUnused(t *testing.T) {
	p := NewPlane(nil, nil, NewRegistry())
	for _, line := range p.Summary() {
		if strings.Contains(line, "tenant ") {
			t.Errorf("unexpected tenant line in single-workload summary: %q", line)
		}
	}
}

func TestServeExposesPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("asynctp_test_up", "help").Inc()
	addr, stop, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for path, want := range map[string]string{
		"/metrics":                       "asynctp_test_up",
		"/debug/pprof/cmdline":           "obs.test", // argv[0] of the test binary
		"/debug/pprof/symbol":            "num_symbols",
		"/debug/pprof/profile?seconds=0": "", // parameter error is fine; just must answer
	} {
		body, status := httpGet(t, "http://"+addr+path)
		if status == 404 {
			t.Errorf("GET %s: 404 — handler not on the mux", path)
			continue
		}
		if want != "" && !strings.Contains(body, want) {
			t.Errorf("GET %s: body %q missing %q", path, truncate(body, 120), want)
		}
	}
}
