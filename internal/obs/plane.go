package obs

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asynctp/internal/commit"
	"asynctp/internal/dc"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/queue"
	"asynctp/internal/simnet"
	"asynctp/internal/storage"
	"asynctp/internal/storage/driver"
	"asynctp/internal/tracectx"
	"asynctp/internal/txn"
)

// Plane bundles the three observability consumers — tracer, ε-ledger,
// metrics registry — behind the hook shims the engine packages expose.
// Any of the three may be nil; a nil *Plane disables everything, and
// the engines keep their nil-observer fast paths because the wiring
// layers (core, site, the bench CLIs) only install the shims when a
// plane exists.
type Plane struct {
	Tracer  *Tracer
	Ledger  *Ledger
	Metrics *Registry

	// Spans is the process-local distributed-span store, nil unless
	// EnableSpans ran. Every span hook below checks it first, so the
	// disabled path stays branch-only and allocation-free.
	Spans *SpanStore

	m planeMetrics

	// waitMu/waitAt time lock waits for the wait-duration histogram.
	waitMu sync.Mutex
	waitAt map[int64]time.Time

	// spanMu guards the open-interval state the span hooks assemble
	// spans from: roots open between TxnBegin/TxnEnd, piece attempts
	// open between PieceBegin and the exec observer's Commit/Abort.
	spanMu     sync.Mutex
	openRoots  map[uint64]*openRoot
	openPieces map[int64]*openPiece

	flight *FlightRecorder
}

// openRoot is an unsettled transaction's root span under assembly.
type openRoot struct {
	start int64
	name  string
	mode  string
}

// openPiece is a piece execution attempt under assembly, keyed by
// owner (each attempt has a fresh owner, and one goroutine runs it).
type openPiece struct {
	span       uint64
	parent     uint64
	parentProc string
	trace      uint64
	piece      int32
	comp       bool
	site       string
	name       string
	start      int64
}

// planeMetrics holds the pre-registered hot-path metric handles. All
// handles are nil (no-op) when the registry is nil.
type planeMetrics struct {
	txnBegun     *Counter
	txnCommitted *Counter
	txnAborted   *Counter

	pieceCommits       *Counter
	pieceAbortDeadlock *Counter
	pieceAbortRollback *Counter
	pieceAbortOther    *Counter

	lockWaits   *Counter
	lockWaitDur *Histogram

	dcAbsorbed *Counter
	dcRefused  *Counter
	dcCharged  *Counter
	dcImported *Counter
	dcExported *Counter

	queueSent        *Counter
	queueDelivered   *Counter
	queueRetransmits *Counter
	queueFlushes     *Counter
	queueBatchSize   *Histogram

	activations   *Counter
	activationDur *Histogram

	commitRoundVote *Histogram
	commitRoundAck  *Histogram
	commitCommits   *Counter
	commitAborts    *Counter

	walFsyncs       *Counter
	walSyncedRecs   *Counter
	walCohortSize   *Histogram
	storRecoveries  *Counter
	storReplayed    *Counter
	storTornBytes   *Counter
	storCheckpoints *Counter
	storPruned      *Counter

	tenantAdmitted *CounterVec
	tenantDegraded *CounterVec
	tenantShed     *CounterVec
	tenantEps      *CounterVec
}

// NewPlane assembles a plane from its (individually optional) parts.
func NewPlane(tr *Tracer, lg *Ledger, reg *Registry) *Plane {
	p := &Plane{Tracer: tr, Ledger: lg, Metrics: reg, waitAt: make(map[int64]time.Time)}
	if reg != nil {
		batchBuckets := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
		p.m = planeMetrics{
			txnBegun:     reg.Counter("asynctp_txn_begun_total", "Transaction instances submitted."),
			txnCommitted: reg.Counter("asynctp_txn_settled_total", "Transaction instances settled.", "outcome", "committed"),
			txnAborted:   reg.Counter("asynctp_txn_settled_total", "Transaction instances settled.", "outcome", "aborted"),

			pieceCommits:       reg.Counter("asynctp_piece_commits_total", "Piece attempts committed."),
			pieceAbortDeadlock: reg.Counter("asynctp_piece_aborts_total", "Piece attempts aborted.", "reason", "deadlock"),
			pieceAbortRollback: reg.Counter("asynctp_piece_aborts_total", "Piece attempts aborted.", "reason", "rollback"),
			pieceAbortOther:    reg.Counter("asynctp_piece_aborts_total", "Piece attempts aborted.", "reason", "other"),

			lockWaits:   reg.Counter("asynctp_lock_waits_total", "Lock requests that blocked."),
			lockWaitDur: reg.Histogram("asynctp_lock_wait_seconds", "Lock wait durations.", nil),

			dcAbsorbed: reg.Counter("asynctp_dc_absorbed_total", "Read-write conflicts absorbed by divergence control."),
			dcRefused:  reg.Counter("asynctp_dc_refused_total", "Conflicts refused (fell back to blocking)."),
			dcCharged:  reg.Counter("asynctp_dc_charged_fuzz_total", "Total fuzziness charged across absorbed conflicts."),
			dcImported: reg.Counter("asynctp_dc_imported_fuzz_total", "Fuzziness imported, settled at piece unregister."),
			dcExported: reg.Counter("asynctp_dc_exported_fuzz_total", "Fuzziness exported, settled at piece unregister."),

			queueSent:        reg.Counter("asynctp_queue_sent_total", "Messages committed to durable outboxes."),
			queueDelivered:   reg.Counter("asynctp_queue_delivered_total", "Messages first-delivered (post-dedup)."),
			queueRetransmits: reg.Counter("asynctp_queue_retransmitted_total", "Messages retransmitted."),
			queueFlushes:     reg.Counter("asynctp_queue_flushes_total", "Batch flushes."),
			queueBatchSize:   reg.Histogram("asynctp_queue_batch_size", "Messages coalesced per flushed batch.", batchBuckets),

			activations:   reg.Counter("asynctp_site_activations_total", "Piece activations processed by site workers."),
			activationDur: reg.Histogram("asynctp_site_activation_seconds", "Activation processing durations (worker busy time).", nil),

			commitRoundVote: reg.Histogram("asynctp_2pc_round_seconds", "2PC round latencies.", nil, "round", "vote"),
			commitRoundAck:  reg.Histogram("asynctp_2pc_round_seconds", "2PC round latencies.", nil, "round", "ack"),
			commitCommits:   reg.Counter("asynctp_2pc_decisions_total", "Logged 2PC decisions.", "decision", "commit"),
			commitAborts:    reg.Counter("asynctp_2pc_decisions_total", "Logged 2PC decisions.", "decision", "abort"),

			walFsyncs:       reg.Counter("asynctp_wal_fsyncs_total", "WAL fsync batches (group commits)."),
			walSyncedRecs:   reg.Counter("asynctp_wal_synced_records_total", "WAL records made durable across all fsyncs."),
			walCohortSize:   reg.Histogram("asynctp_wal_cohort_size", "Records covered per fsync (group-commit batch size).", batchBuckets),
			storRecoveries:  reg.Counter("asynctp_storage_recoveries_total", "Site stores rebuilt from the durable image."),
			storReplayed:    reg.Counter("asynctp_storage_replayed_entries_total", "WAL entries replayed over snapshots during recovery."),
			storTornBytes:   reg.Counter("asynctp_storage_torn_bytes_total", "Torn-tail bytes discarded during recovery."),
			storCheckpoints: reg.Counter("asynctp_storage_checkpoints_total", "Snapshot+truncation checkpoint passes."),
			storPruned:      reg.Counter("asynctp_storage_pruned_segments_total", "WAL segment files deleted by checkpoints."),

			tenantAdmitted: reg.CounterVec("asynctp_tenant_admitted_total", "Requests admitted to a tenant's partition queue.", "tenant"),
			tenantDegraded: reg.CounterVec("asynctp_tenant_degraded_total", "Queries served via the ε-spending stale-read fast path.", "tenant"),
			tenantShed:     reg.CounterVec("asynctp_tenant_shed_total", "Requests shed after the degrade path was exhausted.", "tenant"),
			tenantEps:      reg.CounterVec("asynctp_tenant_epsilon_spent_fuzz_total", "Fuzziness charged for degraded (stale-read) serves.", "tenant"),
		}
		if lg != nil {
			reg.GaugeFunc("asynctp_epsilon_charged_fuzz", "Ledger: total import fuzziness charged across accounts.",
				func() float64 {
					var total metric.Fuzz
					for _, a := range lg.Accounts() {
						total = total.Add(a.Charged)
					}
					return float64(total)
				})
			reg.GaugeFunc("asynctp_epsilon_remaining_fuzz", "Ledger: total unspent budget across bounded accounts.",
				func() float64 {
					var total float64
					for _, a := range lg.Accounts() {
						if a.Name == "" || a.Budget.IsInfinite() {
							continue
						}
						if rem := a.Budget.Bound() - a.Charged; rem > 0 {
							total += float64(rem)
						}
					}
					return total
				})
		}
	}
	return p
}

// EnableSpans attaches a distributed span store identified as proc
// (the merge-level process name; must be unique per OS process in a
// multi-process run) bounded to limit spans (DefaultSpanLimit when
// <= 0). Returns the store for export. Safe to call once, before the
// plane is shared.
func (p *Plane) EnableSpans(proc string, limit int) *SpanStore {
	if p == nil {
		return nil
	}
	p.Spans = NewSpanStore(proc, limit)
	p.openRoots = make(map[uint64]*openRoot)
	p.openPieces = make(map[int64]*openPiece)
	return p.Spans
}

// EnableFlightRecorder arms the anomaly dump over the span store: on
// TriggerFlight (or the stall watchdog) the most recent `recent` spans
// are written to path ("-"/"" = stderr), once. Requires EnableSpans.
func (p *Plane) EnableFlightRecorder(path string, recent int) {
	if p == nil || p.Spans == nil {
		return
	}
	p.flight = NewFlightRecorder(p.Spans, path, recent)
}

// TriggerFlight fires the flight recorder (e.g. chaosbench calls it on
// an invariant violation). Returns true when this call produced the
// dump. Nil-safe.
func (p *Plane) TriggerFlight(reason string) bool {
	if p == nil {
		return false
	}
	return p.flight.Trigger(reason)
}

// Flight returns the recorder (nil when disarmed). Nil-safe.
func (p *Plane) Flight() *FlightRecorder {
	if p == nil {
		return nil
	}
	return p.flight
}

// SpansOn reports whether distributed span recording is enabled
// (nil-safe), so call sites can gate span-only work like timing the
// persistence path.
func (p *Plane) SpansOn() bool { return p != nil && p.Spans != nil }

// SpanCtx mints the trace context to stamp on an outgoing message:
// trace plus the parent span (a deterministic structural ID recorded
// by this process). Zero Ctx when spans are off — receivers skip it.
func (p *Plane) SpanCtx(trace, parentSpan uint64) tracectx.Ctx {
	if p == nil || p.Spans == nil {
		return tracectx.Ctx{}
	}
	return p.Spans.Ctx(trace, parentSpan, time.Now().UnixNano())
}

// SpanActivationHop records the receiver-side hop spans for one piece
// activation: the wire span (sender SentAt → local admission) and the
// mailbox span (admission → now, the moment a worker picked it up).
// Call when processing begins. No-op when spans are off or the sender
// stamped no context.
func (p *Plane) SpanActivationHop(trace uint64, piece int, comp bool, ctx tracectx.Ctx, arrivedNS int64) {
	if p == nil || p.Spans == nil || !ctx.Valid() {
		return
	}
	p.Spans.Observe(ctx.Clock)
	now := time.Now().UnixNano()
	if arrivedNS == 0 {
		arrivedNS = now
	}
	wire := WireSpanID(trace, piece, comp)
	if ctx.SentAt > 0 {
		p.Spans.Add(Span{
			Trace: trace, ID: wire, Parent: ctx.Span, ParentProc: ctx.Proc,
			Kind: SpanWire, Phase: PhaseWire, Piece: int32(piece), Comp: comp,
			Start: ctx.SentAt, End: arrivedNS,
		})
	}
	p.Spans.Add(Span{
		Trace: trace, ID: MailboxSpanID(trace, piece, comp), Parent: wire,
		Kind: SpanMailbox, Phase: PhaseMailbox, Piece: int32(piece), Comp: comp,
		Start: arrivedNS, End: now,
	})
}

// SpanReportHop records the origin-side hop spans for one settlement
// report: the report wire span (reporter SentAt → local admission) and
// the ack span (admission → now, the tracker settle). Call at
// recordDone. No-op for local reports (no context) or spans off.
func (p *Plane) SpanReportHop(trace uint64, piece int, comp bool, ctx tracectx.Ctx, arrivedNS int64) {
	if p == nil || p.Spans == nil || !ctx.Valid() {
		return
	}
	p.Spans.Observe(ctx.Clock)
	now := time.Now().UnixNano()
	if arrivedNS == 0 {
		arrivedNS = now
	}
	rw := ReportWireSpanID(trace, piece, comp)
	if ctx.SentAt > 0 {
		p.Spans.Add(Span{
			Trace: trace, ID: rw, Parent: ctx.Span, ParentProc: ctx.Proc,
			Kind: SpanReportWire, Phase: PhaseWire, Piece: int32(piece), Comp: comp,
			Start: ctx.SentAt, End: arrivedNS,
		})
	}
	p.Spans.Add(Span{
		Trace: trace, ID: AckSpanID(trace, piece, comp), Parent: rw,
		Kind: SpanAck, Phase: PhaseAck, Piece: int32(piece), Comp: comp,
		Start: arrivedNS, End: now,
	})
}

// SpanFsync records a durability wait (queue-image/WAL persistence on
// the commit path) as a child of the piece span that paid it. No-op
// when spans are off or the wait was immeasurable.
func (p *Plane) SpanFsync(trace uint64, pieceSpan uint64, piece int, comp bool, startNS, endNS int64) {
	if p == nil || p.Spans == nil || endNS <= startNS {
		return
	}
	p.Spans.Add(Span{
		Trace: trace, ID: p.Spans.NextID(), Parent: pieceSpan,
		Kind: SpanFsync, Phase: PhaseFsync, Piece: int32(piece), Comp: comp,
		Start: startNS, End: endNS,
	})
}

// SpanRepair records conflict-repair work inside the owner's open
// piece attempt (the rdc engine reports the rounds' duration at
// install time). No-op when spans are off or the owner has no open
// attempt.
func (p *Plane) SpanRepair(owner int64, d time.Duration) {
	if p == nil || p.Spans == nil || d <= 0 {
		return
	}
	p.spanMu.Lock()
	op := p.openPieces[owner]
	p.spanMu.Unlock()
	if op == nil {
		return
	}
	now := time.Now().UnixNano()
	p.Spans.Add(Span{
		Trace: op.trace, ID: p.Spans.NextID(), Parent: op.span,
		Kind: SpanRepair, Phase: PhaseRepair, Piece: op.piece, Comp: op.comp,
		Site: op.site, Start: now - int64(d), End: now,
	})
}

// SpanAdmit records admission/mailbox wait ahead of a transaction's
// first piece (the tenant serving layer measures enqueue → runner
// pickup). Parented to the root span so sweep attribution lands it in
// the admit phase. No-op when spans are off.
func (p *Plane) SpanAdmit(trace uint64, startNS, endNS int64) {
	if p == nil || p.Spans == nil || endNS <= startNS {
		return
	}
	// The mailbox wait predates TxnBegin (the runner only mints the
	// instance after pickup), so rewind the open root to cover it —
	// otherwise the sweep clamps the admit interval away.
	p.spanMu.Lock()
	if r, ok := p.openRoots[trace]; ok && startNS < r.start {
		r.start = startNS
	}
	p.spanMu.Unlock()
	p.Spans.Add(Span{
		Trace: trace, ID: p.Spans.NextID(), Parent: RootSpanID(trace),
		Kind: SpanAdmit, Phase: PhaseAdmit, Piece: -1,
		Start: startNS, End: endNS,
	})
}

// Summary renders the plane's headline counters as human lines for
// folding into bench reports. Nil-safe (nil plane returns nil).
func (p *Plane) Summary() []string {
	if p == nil {
		return nil
	}
	var out []string
	if p.Metrics != nil {
		m := &p.m
		out = append(out,
			fmt.Sprintf("txns: %d begun, %d committed, %d aborted",
				m.txnBegun.Value(), m.txnCommitted.Value(), m.txnAborted.Value()),
			fmt.Sprintf("pieces: %d commits, %d aborts (deadlock %d, rollback %d, other %d)",
				m.pieceCommits.Value(),
				m.pieceAbortDeadlock.Value()+m.pieceAbortRollback.Value()+m.pieceAbortOther.Value(),
				m.pieceAbortDeadlock.Value(), m.pieceAbortRollback.Value(), m.pieceAbortOther.Value()),
			fmt.Sprintf("locks: %d waits", m.lockWaits.Value()),
			fmt.Sprintf("dc: %d absorbed, %d refused, %d fuzz charged",
				m.dcAbsorbed.Value(), m.dcRefused.Value(), m.dcCharged.Value()),
			fmt.Sprintf("queue: %d sent, %d delivered, %d retransmitted, %d flushes",
				m.queueSent.Value(), m.queueDelivered.Value(),
				m.queueRetransmits.Value(), m.queueFlushes.Value()),
			fmt.Sprintf("2pc: %d commits, %d aborts",
				m.commitCommits.Value(), m.commitAborts.Value()),
		)
		// Durability counters only appear when a disk driver actually ran
		// (a mem-driver bench would print a row of zeros otherwise).
		if m.walFsyncs.Value() > 0 || m.storRecoveries.Value() > 0 {
			out = append(out,
				fmt.Sprintf("wal: %d fsyncs covering %d records, %d recoveries (%d entries replayed, %d torn bytes), %d checkpoints (%d segments pruned)",
					m.walFsyncs.Value(), m.walSyncedRecs.Value(),
					m.storRecoveries.Value(), m.storReplayed.Value(), m.storTornBytes.Value(),
					m.storCheckpoints.Value(), m.storPruned.Value()),
			)
		}
		// Per-tenant breakdown, present only when the tenant serving
		// layer ran (a single-workload bench stays at the headline lines).
		admitted := m.tenantAdmitted.Snapshot()
		degraded := m.tenantDegraded.Snapshot()
		shed := m.tenantShed.Snapshot()
		eps := m.tenantEps.Snapshot()
		if len(admitted) > 0 || len(degraded) > 0 || len(shed) > 0 {
			names := make(map[string]bool)
			for t := range admitted {
				names[t] = true
			}
			for t := range degraded {
				names[t] = true
			}
			for t := range shed {
				names[t] = true
			}
			sorted := make([]string, 0, len(names))
			for t := range names {
				sorted = append(sorted, t)
			}
			sort.Strings(sorted)
			for _, t := range sorted {
				out = append(out, fmt.Sprintf("tenant %s: %d admitted, %d degraded, %d shed, %d ε charged",
					t, admitted[t], degraded[t], shed[t], eps[t]))
			}
		}
	}
	if p.Tracer != nil {
		out = append(out, fmt.Sprintf("trace: %d events (%d dropped)",
			p.Tracer.Len(), p.Tracer.Dropped()))
	}
	if p.Spans != nil {
		out = append(out, fmt.Sprintf("spans: %d recorded, %d buffered, %d evicted (evictions orphan children in the merge)",
			p.Spans.Total(), p.Spans.Len(), p.Spans.Evicted()))
		if p.flight != nil {
			if n := p.flight.Triggers(); n > 0 {
				out = append(out, fmt.Sprintf("flight recorder: %d anomaly trigger(s), first dump written", n))
			}
		}
	}
	if p.Ledger != nil {
		accts := p.Ledger.Accounts()
		over := p.Ledger.OverBudget()
		out = append(out, fmt.Sprintf("ledger: %d accounts, %d over budget",
			len(accts), len(over)))
	}
	return out
}

// emit forwards one event to the tracer (nil-safe on both levels).
func (p *Plane) emit(ev Event) {
	if p == nil {
		return
	}
	p.Tracer.Emit(ev)
}

// TxnBegin marks a transaction instance submission and opens the root
// span when distributed tracing is on.
func (p *Plane) TxnBegin(group int64, name string) {
	if p == nil {
		return
	}
	p.m.txnBegun.Inc()
	if p.Spans != nil {
		p.spanMu.Lock()
		p.openRoots[uint64(group)] = &openRoot{start: time.Now().UnixNano(), name: name}
		p.spanMu.Unlock()
	}
	p.emit(Event{Kind: EvTxnBegin, Group: uint64(group), Piece: -1, Name: name})
}

// TxnEnd marks an instance settlement and closes the root span. The
// root's phase is its residual bucket in the critical-path sweep:
// 2PC-wait for commit-protocol transactions, settlement-ack wait
// otherwise.
func (p *Plane) TxnEnd(group int64, committed bool) {
	if p == nil {
		return
	}
	if committed {
		p.m.txnCommitted.Inc()
	} else {
		p.m.txnAborted.Inc()
	}
	if p.Spans != nil {
		p.spanMu.Lock()
		r := p.openRoots[uint64(group)]
		delete(p.openRoots, uint64(group))
		p.spanMu.Unlock()
		if r != nil {
			ph := PhaseAck
			if r.mode == "2pc" {
				ph = Phase2PC
			}
			p.Spans.Add(Span{
				Trace: uint64(group), ID: RootSpanID(uint64(group)),
				Kind: SpanTxn, Phase: ph, Piece: -1, Name: r.name,
				Start: r.start, End: time.Now().UnixNano(), Committed: committed,
			})
		}
	}
	aux := int64(0)
	if committed {
		aux = 1
	}
	p.emit(Event{Kind: EvTxnEnd, Group: uint64(group), Piece: -1, Aux: aux})
}

// BindBudget declares an instance's identity and ORIGINAL ε budget to
// the ledger (see Ledger.BindGroup), and tags the open root span's
// mode so the analyzer picks the right residual phase.
func (p *Plane) BindBudget(group int64, name, class, mode string, budget metric.Limit) {
	if p == nil {
		return
	}
	if p.Spans != nil {
		p.spanMu.Lock()
		if r := p.openRoots[uint64(group)]; r != nil {
			r.mode = mode
		}
		p.spanMu.Unlock()
	}
	p.Ledger.BindGroup(group, name, class, mode, budget)
}

// PieceBegin marks one piece execution attempt starting and binds the
// attempt's owner to its instance for ledger attribution. When
// distributed tracing is on, span names the attempt's structural span
// ID (PieceSpanID) and parent/parentProc its tree edge — the root span
// for origin and single-process pieces, the mailbox span for
// activation-delivered ones; the span is recorded when the attempt
// commits (aborted attempts leave no span, the retry re-begins).
func (p *Plane) PieceBegin(owner int64, group int64, piece int, site, name string, class txn.Class,
	span, parent uint64, parentProc string) {
	if p == nil {
		return
	}
	if p.Spans != nil && span != 0 {
		p.spanMu.Lock()
		p.openPieces[owner] = &openPiece{
			span: span, parent: parent, parentProc: parentProc,
			trace: uint64(group), piece: int32(piece), comp: span&(0x80<<8) != 0,
			site: site, name: name, start: time.Now().UnixNano(),
		}
		p.spanMu.Unlock()
	}
	p.Ledger.BindPiece(owner, group, int32(piece))
	p.emit(Event{
		Kind: EvPieceBegin, Owner: owner, Group: uint64(group), Piece: int32(piece),
		Site: site, Name: name, Arg: class.String(),
	})
}

// PieceSettle marks a piece attempt's fuzziness account settling at
// unregister (the DC level of the span hierarchy).
func (p *Plane) PieceSettle(owner int64, imported, exported metric.Fuzz) {
	if p == nil {
		return
	}
	p.m.dcImported.Add(int64(imported))
	p.m.dcExported.Add(int64(exported))
	p.Ledger.Settle(owner, imported, exported)
	p.emit(Event{Kind: EvDCAccount, Owner: owner, Piece: -1, Aux: int64(imported), Aux2: int64(exported)})
}

// ActivationBegin marks a site worker starting a queued piece
// activation; the returned function marks it processed.
func (p *Plane) ActivationBegin(group int64, piece int, site string) func() {
	if p == nil {
		return func() {}
	}
	p.emit(Event{Kind: EvActivationBegin, Group: uint64(group), Piece: int32(piece), Site: site})
	start := time.Now()
	return func() {
		p.m.activations.Inc()
		p.m.activationDur.ObserveDuration(time.Since(start))
		p.emit(Event{Kind: EvActivationEnd, Group: uint64(group), Piece: int32(piece), Site: site})
	}
}

// TenantAdmit marks one request admitted to a tenant's partition
// mailbox on the normal (engine) path. Nil-safe, zero-alloc when
// disabled.
func (p *Plane) TenantAdmit(tenant string) {
	if p == nil {
		return
	}
	p.m.tenantAdmitted.With(tenant).Inc()
}

// TenantDegrade marks one query served via the ε-spending stale-read
// fast path, with the fuzziness charged for it. Nil-safe.
func (p *Plane) TenantDegrade(tenant string, charged metric.Fuzz) {
	if p == nil {
		return
	}
	p.m.tenantDegraded.With(tenant).Inc()
	p.m.tenantEps.With(tenant).Add(int64(charged))
	p.emit(Event{Kind: EvDCDebit, Piece: -1, Name: tenant, Arg: "degrade", Aux: int64(charged)})
}

// TenantShed marks one request shed after the degrade path was
// exhausted (rate limit and mailbox full, or ε budget empty). Nil-safe.
func (p *Plane) TenantShed(tenant string) {
	if p == nil {
		return
	}
	p.m.tenantShed.With(tenant).Inc()
}

// WatchPartition registers exposition-time gauges over one serving
// partition: instantaneous mailbox depth and total served count. The
// tenant layer calls it once per partition at construction. No-op
// without a registry.
func (p *Plane) WatchPartition(partition string, depth, served func() float64) {
	if p == nil || p.Metrics == nil {
		return
	}
	if depth != nil {
		p.Metrics.GaugeFunc("asynctp_partition_queue_depth", "Queued requests in the partition mailbox.",
			depth, "partition", partition)
	}
	if served != nil {
		p.Metrics.GaugeFunc("asynctp_partition_served_total", "Requests executed by the partition runner.",
			served, "partition", partition)
	}
}

// WatchPool registers an exposition-time saturation gauge over one
// shared worker pool: the fraction of its workers currently busy.
// No-op without a registry.
func (p *Plane) WatchPool(pool string, saturation func() float64) {
	if p == nil || p.Metrics == nil || saturation == nil {
		return
	}
	p.Metrics.GaugeFunc("asynctp_pool_saturation", "Fraction of pool workers busy executing.",
		saturation, "pool", pool)
}

// WatchQueue registers exposition-time gauges over a queue endpoint
// (outbox depth, dedup sparse size toward its busiest peer is left to
// tests). No-op without a registry.
func (p *Plane) WatchQueue(site string, m *queue.Manager) {
	if p == nil || p.Metrics == nil || m == nil {
		return
	}
	p.Metrics.GaugeFunc("asynctp_queue_outbox_depth", "Committed, unacknowledged outbox messages.",
		func() float64 { return float64(m.OutboxLen()) }, "site", site)
}

// --- txn.Observer shim -------------------------------------------------

// execObserver adapts the plane to the executor's Observer seam: each
// admitted operation becomes a lock.acquire leaf, commit/abort settle
// the piece attempt.
type execObserver struct{ p *Plane }

// ExecObserver returns the txn.Observer shim (nil when disabled, so
// callers can hand it straight to code with nil fast paths).
func (p *Plane) ExecObserver() txn.Observer {
	if p == nil {
		return nil
	}
	return execObserver{p: p}
}

func (o execObserver) Begin(owner lock.Owner, name string, class txn.Class) {}

func (o execObserver) Read(owner lock.Owner, key storage.Key, value metric.Value) {
	o.p.emit(Event{Kind: EvLockAcquire, Owner: int64(owner), Piece: -1, Key: string(key)})
}

func (o execObserver) Write(owner lock.Owner, key storage.Key, old, new metric.Value, commutative bool) {
	o.p.emit(Event{Kind: EvLockAcquire, Owner: int64(owner), Piece: -1, Key: string(key), Aux: 1})
}

func (o execObserver) Commit(owner lock.Owner) {
	o.p.m.pieceCommits.Inc()
	if o.p.Spans != nil {
		o.p.spanMu.Lock()
		op := o.p.openPieces[int64(owner)]
		delete(o.p.openPieces, int64(owner))
		o.p.spanMu.Unlock()
		if op != nil {
			o.p.Spans.Add(Span{
				Trace: op.trace, ID: op.span, Parent: op.parent, ParentProc: op.parentProc,
				Kind: SpanPiece, Phase: PhaseExec, Piece: op.piece, Comp: op.comp,
				Site: op.site, Name: op.name,
				Start: op.start, End: time.Now().UnixNano(), Committed: true,
			})
		}
	}
	o.p.emit(Event{Kind: EvPieceCommit, Owner: int64(owner), Piece: -1})
}

func (o execObserver) Abort(owner lock.Owner, reason error) {
	// An aborted attempt leaves no span: the retry re-begins with a
	// fresh owner and the committed attempt is the one the merged
	// trace keeps (abort/retry time shows up as exec-phase residue
	// inside the committed chain's gaps).
	if o.p.Spans != nil {
		o.p.spanMu.Lock()
		delete(o.p.openPieces, int64(owner))
		o.p.spanMu.Unlock()
	}
	// An aborted attempt's fuzziness never committed: void its pending
	// ledger receipts so retries don't over-charge the account.
	o.p.Ledger.Void(int64(owner))
	switch {
	case errors.Is(reason, lock.ErrDeadlock):
		o.p.m.pieceAbortDeadlock.Inc()
		o.p.emit(Event{Kind: EvPieceAbort, Owner: int64(owner), Piece: -1, Arg: "deadlock"})
	case errors.Is(reason, txn.ErrRollback):
		o.p.m.pieceAbortRollback.Inc()
		o.p.emit(Event{Kind: EvPieceAbort, Owner: int64(owner), Piece: -1, Arg: "rollback"})
	default:
		o.p.m.pieceAbortOther.Inc()
		o.p.emit(Event{Kind: EvPieceAbort, Owner: int64(owner), Piece: -1, Arg: "other"})
	}
}

// --- lock.WaitObserver shim --------------------------------------------

type waitObserver struct{ p *Plane }

// WaitObserver returns the lock.WaitObserver shim (nil when disabled).
func (p *Plane) WaitObserver() lock.WaitObserver {
	if p == nil {
		return nil
	}
	return waitObserver{p: p}
}

func (o waitObserver) Blocked(owner lock.Owner, key storage.Key) {
	o.p.m.lockWaits.Inc()
	o.p.waitMu.Lock()
	o.p.waitAt[int64(owner)] = time.Now()
	o.p.waitMu.Unlock()
	o.p.emit(Event{Kind: EvLockBlocked, Owner: int64(owner), Piece: -1, Key: string(key)})
}

func (o waitObserver) Woken(owner lock.Owner) {}

func (o waitObserver) Resumed(owner lock.Owner) {
	o.p.waitMu.Lock()
	start, ok := o.p.waitAt[int64(owner)]
	delete(o.p.waitAt, int64(owner))
	o.p.waitMu.Unlock()
	var d time.Duration
	if ok {
		d = time.Since(start)
		o.p.m.lockWaitDur.ObserveDuration(d)
	}
	if o.p.Spans != nil && d > 0 {
		o.p.spanMu.Lock()
		op := o.p.openPieces[int64(owner)]
		o.p.spanMu.Unlock()
		if op != nil {
			now := time.Now().UnixNano()
			o.p.Spans.Add(Span{
				Trace: op.trace, ID: o.p.Spans.NextID(), Parent: op.span,
				Kind: SpanLock, Phase: PhaseLock, Piece: op.piece, Comp: op.comp,
				Site: op.site, Start: now - int64(d), End: now,
			})
		}
	}
	o.p.emit(Event{Kind: EvLockResumed, Owner: int64(owner), Piece: -1, Dur: int64(d)})
}

// --- dc observer shim --------------------------------------------------

// DCObserver returns the divergence-control observer shim: debits feed
// the trace, the metrics, and — pair by pair — the ε-provenance ledger.
// Nil when disabled.
func (p *Plane) DCObserver() func(dc.Event) {
	if p == nil {
		return nil
	}
	return func(ev dc.Event) {
		if !ev.Absorbed {
			p.m.dcRefused.Inc()
			p.emit(Event{Kind: EvDCRefuse, Owner: int64(ev.Requester), Piece: -1, Key: string(ev.Key)})
			return
		}
		p.m.dcAbsorbed.Inc()
		p.m.dcCharged.Add(int64(ev.Cost))
		p.emit(Event{Kind: EvDCDebit, Owner: int64(ev.Requester), Piece: -1, Key: string(ev.Key), Aux: int64(ev.Cost)})
		if p.Ledger != nil && len(ev.Pairs) > 0 {
			pairs := make([]DebitPair, len(ev.Pairs))
			for i, pr := range ev.Pairs {
				pairs[i] = DebitPair{Query: int64(pr.Query), Update: int64(pr.Update), Cost: pr.Cost}
			}
			p.Ledger.Debit(string(ev.Key), pairs)
		}
	}
}

// --- queue.Observer shim -----------------------------------------------

type queueObserver struct {
	p    *Plane
	site string
}

// QueueObserver returns the transport observer shim for one site's
// queue endpoint. Nil when disabled.
func (p *Plane) QueueObserver(site simnet.SiteID) queue.Observer {
	if p == nil {
		return nil
	}
	return queueObserver{p: p, site: string(site)}
}

func (o queueObserver) Sent(to simnet.SiteID, msg queue.Msg) {
	o.p.m.queueSent.Inc()
	o.p.emit(Event{
		Kind: EvQueueSend, Piece: -1, Site: string(msg.From), Arg: string(to),
		Name: msg.Queue, Key: msg.ID, Aux: int64(msg.Seq),
	})
}

func (o queueObserver) Flushed(to simnet.SiteID, msgs, acks int) {
	o.p.m.queueFlushes.Inc()
	if msgs > 0 {
		o.p.m.queueBatchSize.Observe(float64(msgs))
	}
	o.p.emit(Event{
		Kind: EvQueueFlush, Piece: -1, Site: o.site, Arg: string(to),
		Aux: int64(msgs), Aux2: int64(acks),
	})
}

func (o queueObserver) Retransmitted(to simnet.SiteID, msgs int) {
	o.p.m.queueRetransmits.Add(int64(msgs))
	o.p.emit(Event{Kind: EvQueueRetransmit, Piece: -1, Site: o.site, Arg: string(to), Aux: int64(msgs)})
}

func (o queueObserver) Delivered(msg queue.Msg) {
	o.p.m.queueDelivered.Inc()
	o.p.emit(Event{
		Kind: EvQueueDeliver, Piece: -1, Site: o.site, Arg: string(msg.From),
		Name: msg.Queue, Key: msg.ID, Aux: int64(msg.Seq),
	})
}

// --- storage driver.Observer shim --------------------------------------

type storageObserver struct{ p *Plane }

// StorageObserver returns the durability observer shim for the storage
// driver layer: WAL fsync cohorts, recoveries from the durable image,
// and checkpoint passes. Nil when disabled.
func (p *Plane) StorageObserver() driver.Observer {
	if p == nil {
		return nil
	}
	return storageObserver{p: p}
}

func (o storageObserver) WALSynced(site string, records int) {
	o.p.m.walFsyncs.Inc()
	o.p.m.walSyncedRecs.Add(int64(records))
	if records > 0 {
		o.p.m.walCohortSize.Observe(float64(records))
	}
}

func (o storageObserver) Recovered(site string, entries int, tornBytes int64) {
	o.p.m.storRecoveries.Inc()
	o.p.m.storReplayed.Add(int64(entries))
	o.p.m.storTornBytes.Add(tornBytes)
}

func (o storageObserver) Checkpointed(site string, prunedSegments int) {
	o.p.m.storCheckpoints.Inc()
	o.p.m.storPruned.Add(int64(prunedSegments))
}

// --- commit.Observer shim ----------------------------------------------

type commitObserver struct {
	p    *Plane
	site string
}

// CommitObserver returns the 2PC protocol observer shim for one site's
// coordinator endpoint. Nil when disabled.
func (p *Plane) CommitObserver(site simnet.SiteID) commit.Observer {
	if p == nil {
		return nil
	}
	return commitObserver{p: p, site: string(site)}
}

func (o commitObserver) Round(txid, kind string, attempts int, d time.Duration) {
	if kind == "vote" {
		o.p.m.commitRoundVote.ObserveDuration(d)
	} else {
		o.p.m.commitRoundAck.ObserveDuration(d)
	}
	// 2PC round spans hang off the root: txids are "name-inst", so the
	// trace recovers from the suffix.
	if o.p.Spans != nil && d > 0 {
		if i := strings.LastIndexByte(txid, '-'); i >= 0 {
			if trace, err := strconv.ParseUint(txid[i+1:], 10, 64); err == nil && trace != 0 {
				now := time.Now().UnixNano()
				o.p.Spans.Add(Span{
					Trace: trace, ID: o.p.Spans.NextID(), Parent: RootSpanID(trace),
					Kind: Span2PC, Phase: Phase2PC, Piece: -1, Site: o.site, Name: kind,
					Start: now - int64(d), End: now,
				})
			}
		}
	}
	o.p.emit(Event{
		Kind: EvCommitRound, Piece: -1, Site: o.site, Name: txid, Arg: kind,
		Aux: int64(attempts), Dur: int64(d),
	})
}

func (o commitObserver) Decision(txid string, committed bool) {
	aux := int64(0)
	if committed {
		aux = 1
		o.p.m.commitCommits.Inc()
	} else {
		o.p.m.commitAborts.Inc()
	}
	o.p.emit(Event{Kind: EvCommitDecision, Piece: -1, Site: o.site, Name: txid, Aux: aux})
}

// --- tee helpers -------------------------------------------------------

// TeeTxnObserver fans execution events out to every non-nil observer.
// It returns nil when none are non-nil, preserving the engines' nil
// fast paths, and the single observer unchanged when only one is.
func TeeTxnObserver(list ...txn.Observer) txn.Observer {
	var live []txn.Observer
	for _, o := range list {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTxn(live)
}

type teeTxn []txn.Observer

func (t teeTxn) Begin(owner lock.Owner, name string, class txn.Class) {
	for _, o := range t {
		o.Begin(owner, name, class)
	}
}

func (t teeTxn) Read(owner lock.Owner, key storage.Key, value metric.Value) {
	for _, o := range t {
		o.Read(owner, key, value)
	}
}

func (t teeTxn) Write(owner lock.Owner, key storage.Key, old, new metric.Value, commutative bool) {
	for _, o := range t {
		o.Write(owner, key, old, new, commutative)
	}
}

func (t teeTxn) Commit(owner lock.Owner) {
	for _, o := range t {
		o.Commit(owner)
	}
}

func (t teeTxn) Abort(owner lock.Owner, reason error) {
	for _, o := range t {
		o.Abort(owner, reason)
	}
}

// TeeWaitObserver fans wait transitions out to every non-nil observer,
// with the same nil-collapsing behavior as TeeTxnObserver.
func TeeWaitObserver(list ...lock.WaitObserver) lock.WaitObserver {
	var live []lock.WaitObserver
	for _, o := range list {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeWait(live)
}

type teeWait []lock.WaitObserver

func (t teeWait) Blocked(owner lock.Owner, key storage.Key) {
	for _, o := range t {
		o.Blocked(owner, key)
	}
}

func (t teeWait) Woken(owner lock.Owner) {
	for _, o := range t {
		o.Woken(owner)
	}
}

func (t teeWait) Resumed(owner lock.Owner) {
	for _, o := range t {
		o.Resumed(owner)
	}
}

// TeeDCObserver fans dc arbitration events out to every non-nil
// callback, collapsing to nil / the single callback like the other
// tees.
func TeeDCObserver(list ...func(dc.Event)) func(dc.Event) {
	var live []func(dc.Event)
	for _, fn := range list {
		if fn != nil {
			live = append(live, fn)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev dc.Event) {
		for _, fn := range live {
			fn(ev)
		}
	}
}
