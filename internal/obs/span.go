package obs

import (
	"sync"

	"asynctp/internal/tracectx"
)

// Phase is the fixed critical-path vocabulary: every nanosecond of a
// settled transaction's end-to-end latency is attributed to exactly one
// of these buckets by the analyzer in critpath.go.
type Phase uint8

const (
	// PhaseAdmit is time between submission and the first piece
	// starting: admission control, mailbox entry, scheduler pickup.
	PhaseAdmit Phase = iota
	// PhaseMailbox is time an activation sat admitted in the receiving
	// site's queue before a worker picked it up.
	PhaseMailbox
	// PhaseLock is time blocked in the lock manager.
	PhaseLock
	// PhaseExec is piece execution proper (op reads/writes, validation).
	PhaseExec
	// PhaseRepair is conflict-repair rounds re-executing stale ops.
	PhaseRepair
	// PhaseFsync is durability waits: WAL/queue-image persistence on
	// the commit path.
	PhaseFsync
	// PhaseWire is transport time: sender commit-send to receiver
	// admission, measured sender SentAt → receiver ArrivedAt (one host
	// clock in loopback runs).
	PhaseWire
	// PhaseAck is settlement-report handling at the origin: report
	// arrival to tracker settle, plus the chopped root's residual wait
	// (the tail between the last recorded span and the settle
	// notification).
	PhaseAck
	// Phase2PC is bounded-wait commit-protocol time: vote/ack rounds
	// and the coordinator's decision wait.
	Phase2PC
	// NumPhases sizes per-phase accumulation arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"admit", "mailbox", "lock", "exec", "repair", "fsync", "wire", "ack", "2pc-wait",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one timed node of a distributed trace tree. Start/End are
// wall-clock UnixNano: within one process they come from one clock, and
// a loadbench -multi run's processes share the host clock, so merged
// spans are directly comparable (the analyzer still clamps children
// into their root's interval to absorb residual skew).
//
// A span's identity is (recording store, ID); Parent/ParentProc name
// the parent edge, with ParentProc == "" meaning "same store". Spans
// with structural roles (root, piece, hop) get deterministic IDs
// derived from the trace and piece ordinal — see RootSpanID — so the
// two processes on either side of a wire hop agree on the edge without
// any coordination, and so redelivered duplicates collapse in the
// merge. Timing-dependent detail spans (lock waits, repair rounds,
// fsync cohorts) get store-local counter IDs with the high bit set and
// are excluded from the canonical (deterministic) export.
type Span struct {
	Trace      uint64 `json:"t"`
	ID         uint64 `json:"i"`
	Parent     uint64 `json:"p,omitempty"`
	ParentProc string `json:"pp,omitempty"`
	Kind       string `json:"k"`
	Phase      Phase  `json:"ph"`
	Piece      int32  `json:"pc"`
	Comp       bool   `json:"c,omitempty"`
	Site       string `json:"s,omitempty"`
	Name       string `json:"n,omitempty"`
	Start      int64  `json:"a"`
	End        int64  `json:"b"`
	Clock      uint64 `json:"lc"`
	Committed  bool   `json:"ok,omitempty"`
}

// Span kind names. The kind is descriptive (export/report labels); the
// analyzer switches on Phase.
const (
	SpanTxn        = "txn"
	SpanPiece      = "piece"
	SpanWire       = "wire"
	SpanMailbox    = "mailbox"
	SpanLock       = "lock"
	SpanRepair     = "repair"
	SpanFsync      = "fsync"
	SpanReportWire = "report-wire"
	SpanAck        = "ack"
	SpanAdmit      = "admit"
	Span2PC        = "2pc"
)

// spanCounterBit marks store-local counter-minted span IDs; IDs with
// the bit clear are deterministic structural IDs.
const spanCounterBit = uint64(1) << 63

// Structural span ID tags (low byte of a deterministic ID).
const (
	spanTagRoot       = 0x01
	spanTagPiece      = 0x02
	spanTagWire       = 0x03
	spanTagMailbox    = 0x04
	spanTagReportWire = 0x05
	spanTagAck        = 0x06
)

// spanPieceBits packs a piece ordinal and compensation flag into the
// second byte of a deterministic span ID. Piece ordinals are masked to
// 7 bits; chopped transactions cut at site boundaries, so real chains
// stay far below 128 pieces.
func spanPieceBits(piece int, comp bool) uint64 {
	p := uint64(piece) & 0x7f
	if comp {
		p |= 0x80
	}
	return p
}

// RootSpanID is the deterministic span ID of a trace's root (txn)
// span. Deterministic IDs are trace<<16 | pieceBits<<8 | tag, which
// requires trace IDs below 2^47 — loadbench's per-process
// InstanceBase layout ((proc+1)<<40 | seq) stays well inside that.
func RootSpanID(trace uint64) uint64 { return trace<<16 | spanTagRoot }

// PieceSpanID is the deterministic ID of the committed execution
// attempt of one piece (forward or compensating) of a trace.
func PieceSpanID(trace uint64, piece int, comp bool) uint64 {
	return trace<<16 | spanPieceBits(piece, comp)<<8 | spanTagPiece
}

// WireSpanID / MailboxSpanID are the deterministic IDs of the hop
// spans the receiving process records for a piece activation.
func WireSpanID(trace uint64, piece int, comp bool) uint64 {
	return trace<<16 | spanPieceBits(piece, comp)<<8 | spanTagWire
}

// MailboxSpanID is the queue-wait span between activation admission
// and a worker picking it up.
func MailboxSpanID(trace uint64, piece int, comp bool) uint64 {
	return trace<<16 | spanPieceBits(piece, comp)<<8 | spanTagMailbox
}

// ReportWireSpanID / AckSpanID are the deterministic IDs of the
// settlement-report hop spans the origin process records.
func ReportWireSpanID(trace uint64, piece int, comp bool) uint64 {
	return trace<<16 | spanPieceBits(piece, comp)<<8 | spanTagReportWire
}

// AckSpanID is the report-handling span at the origin (arrival →
// tracker settle).
func AckSpanID(trace uint64, piece int, comp bool) uint64 {
	return trace<<16 | spanPieceBits(piece, comp)<<8 | spanTagAck
}

// LogicalSpan reports whether a span has a deterministic structural ID
// (and therefore belongs in the canonical export).
func LogicalSpan(sp Span) bool { return sp.ID&spanCounterBit == 0 }

// DefaultSpanLimit bounds a process's span store: a ring of this many
// recent spans (~32 MB). Spans evicted past the bound surface as
// propagation failures (orphans) in the merge report rather than
// silently vanishing.
const DefaultSpanLimit = 1 << 18

// SpanStore is one process's bounded span buffer plus the Lamport
// clock and ID counter that qualify its spans. All methods are
// nil-safe so call sites stay branch-only when tracing is off.
type SpanStore struct {
	proc  string
	limit int

	mu      sync.Mutex
	buf     []Span
	next    int // ring write index once len(buf) == limit
	total   uint64
	clock   uint64
	counter uint64
}

// NewSpanStore creates a store identified as proc (the process/shard
// name used to qualify span IDs across the merge) holding at most
// limit spans (DefaultSpanLimit when <= 0).
func NewSpanStore(proc string, limit int) *SpanStore {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &SpanStore{proc: proc, limit: limit}
}

// Proc returns the store identity ("" for a nil store).
func (s *SpanStore) Proc() string {
	if s == nil {
		return ""
	}
	return s.proc
}

// NextID mints a store-local counter span ID (high bit set).
func (s *SpanStore) NextID() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	s.counter++
	id := spanCounterBit | s.counter
	s.mu.Unlock()
	return id
}

// Tick advances the Lamport clock and returns the new value.
func (s *SpanStore) Tick() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	s.clock++
	c := s.clock
	s.mu.Unlock()
	return c
}

// Observe folds a remote Lamport clock value into the local one
// (receive rule: clock = max(local, remote) + 1).
func (s *SpanStore) Observe(remote uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if remote > s.clock {
		s.clock = remote
	}
	s.clock++
	s.mu.Unlock()
}

// Add records a span, stamping its Lamport clock, evicting the oldest
// span once the ring is full.
func (s *SpanStore) Add(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.clock++
	sp.Clock = s.clock
	s.total++
	if len(s.buf) < s.limit {
		s.buf = append(s.buf, sp)
	} else {
		s.buf[s.next] = sp
		s.next = (s.next + 1) % s.limit
	}
	s.mu.Unlock()
}

// Len returns the number of buffered spans.
func (s *SpanStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Total returns the number of spans ever recorded.
func (s *SpanStore) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Evicted returns how many spans the bounded ring has dropped; every
// eviction is a potential orphaned child in the merged trace, so the
// count is reported instead of silently losing the parents.
func (s *SpanStore) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total - uint64(len(s.buf))
}

// Spans returns a copy of the buffered spans, oldest first.
func (s *SpanStore) Spans() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.buf))
	if len(s.buf) == s.limit {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// Dump packages the store for the cross-process merge.
func (s *SpanStore) Dump() ProcSpans {
	if s == nil {
		return ProcSpans{}
	}
	return ProcSpans{Proc: s.proc, Spans: s.Spans(), Total: s.Total(), Evicted: s.Evicted()}
}

// Ctx mints an outgoing trace context naming span (recorded in this
// store) as the remote parent. SentAt is stamped by the caller (the
// queue layer stamps arrival; the site layer stamps send) so this
// method stays clock-free and cheap. Returns the zero Ctx on a nil
// store, which receivers ignore.
func (s *SpanStore) Ctx(trace, span uint64, sentAt int64) tracectx.Ctx {
	if s == nil {
		return tracectx.Ctx{}
	}
	return tracectx.Ctx{Trace: trace, Span: span, Proc: s.proc, Clock: s.Tick(), SentAt: sentAt}
}
