package obs

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// Span identity is the load-bearing invariant of the cross-process
// merge: both sides of a hop derive the same deterministic ID without
// coordination, and no two structural roles collide.

func TestDeterministicSpanIDsDistinct(t *testing.T) {
	seen := map[uint64]string{}
	record := func(id uint64, what string) {
		if prev, ok := seen[id]; ok {
			t.Fatalf("span ID collision: %s and %s both map to %#x", prev, what, id)
		}
		seen[id] = what
	}
	for _, trace := range []uint64{1, 7, (3 << 40) | 12345} {
		record(RootSpanID(trace), "root")
		for piece := 0; piece < 4; piece++ {
			for _, comp := range []bool{false, true} {
				record(PieceSpanID(trace, piece, comp), "piece")
				record(WireSpanID(trace, piece, comp), "wire")
				record(MailboxSpanID(trace, piece, comp), "mailbox")
				record(ReportWireSpanID(trace, piece, comp), "report-wire")
				record(AckSpanID(trace, piece, comp), "ack")
			}
		}
	}
	for id := range seen {
		if !LogicalSpan(Span{ID: id}) {
			t.Errorf("structural ID %#x not classified as logical", id)
		}
	}
	st := NewSpanStore("p0", 0)
	if id := st.NextID(); LogicalSpan(Span{ID: id}) {
		t.Errorf("counter ID %#x classified as logical", id)
	}
}

func TestSpanStoreRingEviction(t *testing.T) {
	st := NewSpanStore("p0", 4)
	for i := 1; i <= 10; i++ {
		st.Add(Span{Trace: uint64(i)})
	}
	if got := st.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	if got := st.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := st.Evicted(); got != 6 {
		t.Errorf("Evicted = %d, want 6", got)
	}
	spans := st.Spans()
	for i, sp := range spans {
		if want := uint64(7 + i); sp.Trace != want {
			t.Errorf("ring slot %d holds trace %d, want %d (oldest first)", i, sp.Trace, want)
		}
	}
	// Lamport clocks must be strictly increasing in recording order.
	for i := 1; i < len(spans); i++ {
		if spans[i].Clock <= spans[i-1].Clock {
			t.Errorf("clock not monotone: %d then %d", spans[i-1].Clock, spans[i].Clock)
		}
	}
}

func TestSpanStoreLamportObserve(t *testing.T) {
	st := NewSpanStore("p0", 0)
	st.Tick()
	st.Observe(100)
	if c := st.Tick(); c <= 100 {
		t.Errorf("clock after observing 100 = %d, want > 100", c)
	}
}

// twoProcDumps builds a canonical two-process trace: the root and first
// piece on the origin, the wire/mailbox/piece chain on the sibling, and
// the settlement report back at the origin.
func twoProcDumps(trace uint64) []ProcSpans {
	const (
		t0 = int64(1000)
	)
	origin := []Span{
		{Trace: trace, ID: RootSpanID(trace), Kind: SpanTxn, Phase: PhaseAck,
			Name: "xfer", Start: t0, End: t0 + 100, Committed: true},
		{Trace: trace, ID: PieceSpanID(trace, 0, false), Parent: RootSpanID(trace),
			Kind: SpanPiece, Phase: PhaseExec, Site: "NY", Start: t0 + 5, End: t0 + 20},
		{Trace: trace, ID: ReportWireSpanID(trace, 1, false), Parent: PieceSpanID(trace, 1, false),
			ParentProc: "LA", Kind: SpanReportWire, Phase: PhaseWire, Piece: 1,
			Start: t0 + 70, End: t0 + 85},
		{Trace: trace, ID: AckSpanID(trace, 1, false), Parent: ReportWireSpanID(trace, 1, false),
			Kind: SpanAck, Phase: PhaseAck, Piece: 1, Start: t0 + 85, End: t0 + 90},
	}
	sibling := []Span{
		{Trace: trace, ID: WireSpanID(trace, 1, false), Parent: PieceSpanID(trace, 0, false),
			ParentProc: "NY", Kind: SpanWire, Phase: PhaseWire, Piece: 1,
			Start: t0 + 20, End: t0 + 40},
		{Trace: trace, ID: MailboxSpanID(trace, 1, false), Parent: WireSpanID(trace, 1, false),
			Kind: SpanMailbox, Phase: PhaseMailbox, Piece: 1, Start: t0 + 40, End: t0 + 50},
		{Trace: trace, ID: PieceSpanID(trace, 1, false), Parent: MailboxSpanID(trace, 1, false),
			Kind: SpanPiece, Phase: PhaseExec, Site: "LA", Piece: 1, Start: t0 + 50, End: t0 + 70},
	}
	return []ProcSpans{
		{Proc: "NY", Spans: origin, Total: uint64(len(origin))},
		{Proc: "LA", Spans: sibling, Total: uint64(len(sibling))},
	}
}

func TestMergeSpansConnectsAcrossProcesses(t *testing.T) {
	m := MergeSpans(twoProcDumps(42))
	if len(m.Traces) != 1 {
		t.Fatalf("merged %d traces, want 1", len(m.Traces))
	}
	mt := m.Traces[0]
	if !mt.Connected {
		t.Errorf("cross-process trace not connected (%d orphans, root %d)", mt.Orphans, mt.Root)
	}
	if mt.Orphans != 0 || m.Orphans != 0 {
		t.Errorf("orphans = %d, want 0", mt.Orphans)
	}
	if len(mt.Spans) != 7 {
		t.Errorf("merged %d spans, want 7", len(mt.Spans))
	}
	if f := m.ConnectedFraction(); f != 1.0 {
		t.Errorf("ConnectedFraction = %v, want 1.0", f)
	}
}

func TestMergeSpansCountsOrphans(t *testing.T) {
	dumps := twoProcDumps(42)
	// Evict the origin's piece-0 span: the sibling's wire span now has a
	// dangling cross-process parent edge.
	dumps[0].Spans = append(dumps[0].Spans[:1:1], dumps[0].Spans[2:]...)
	dumps[0].Evicted = 1
	m := MergeSpans(dumps)
	mt := m.Traces[0]
	if mt.Connected {
		t.Error("trace with a dangling edge reported connected")
	}
	if mt.Orphans != 1 {
		t.Errorf("orphans = %d, want 1", mt.Orphans)
	}
	if m.Evicted != 1 {
		t.Errorf("merged eviction count = %d, want 1", m.Evicted)
	}
	if f := m.ConnectedFraction(); f != 0 {
		t.Errorf("ConnectedFraction = %v, want 0", f)
	}
}

func TestMergeSpansDedupsRedeliveredSpans(t *testing.T) {
	dumps := twoProcDumps(42)
	// A crash-redelivered activation re-records the same deterministic
	// hop span; the merge must collapse it.
	dumps[1].Spans = append(dumps[1].Spans, dumps[1].Spans[0])
	m := MergeSpans(dumps)
	if n := len(m.Traces[0].Spans); n != 7 {
		t.Errorf("deduped merge has %d spans, want 7", n)
	}
	if !m.Traces[0].Connected {
		t.Error("deduped trace not connected")
	}
}

func TestCanonicalSpanExportOrderIndependent(t *testing.T) {
	a := twoProcDumps(42)
	b := []ProcSpans{a[1], a[0]} // dump order reversed
	// Reverse span order inside one dump too.
	rev := make([]Span, len(a[0].Spans))
	for i, sp := range a[0].Spans {
		rev[len(rev)-1-i] = sp
	}
	b[1] = ProcSpans{Proc: a[0].Proc, Spans: rev, Total: a[0].Total}
	var bufA, bufB bytes.Buffer
	if err := ExportCanonicalSpans(&bufA, MergeSpans(a)); err != nil {
		t.Fatal(err)
	}
	if err := ExportCanonicalSpans(&bufB, MergeSpans(b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Errorf("canonical export depends on dump order:\n%s\nvs\n%s", bufA.String(), bufB.String())
	}
}

func TestAttributeTraceExactSweep(t *testing.T) {
	m := MergeSpans(twoProcDumps(42))
	a, ok := AttributeTrace(m.Traces[0])
	if !ok {
		t.Fatal("trace not attributable")
	}
	if a.Total != 100 {
		t.Fatalf("total = %v, want 100ns", a.Total)
	}
	if a.Sum() != a.Total {
		t.Errorf("phase sum %v != total %v", a.Sum(), a.Total)
	}
	want := map[Phase]time.Duration{
		PhaseAdmit:   5,  // root time before piece 0 starts
		PhaseExec:    35, // piece 0 (15) + piece 1 (20)
		PhaseWire:    35, // activation wire (20) + report wire (15)
		PhaseMailbox: 10,
		PhaseAck:     15, // ack span (5) + root residual (10)
	}
	for ph, d := range want {
		if a.Phases[ph] != d {
			t.Errorf("phase %s = %v, want %v", ph, a.Phases[ph], d)
		}
	}
	if !a.Committed {
		t.Error("committed flag not carried")
	}
}

func TestAttributeTraceClampsSkewedChildren(t *testing.T) {
	trace := uint64(9)
	spans := []Span{
		{Trace: trace, ID: RootSpanID(trace), Kind: SpanTxn, Phase: PhaseAck,
			Start: 1000, End: 1100},
		// A child whose clock-skewed interval spills past the root on
		// both sides must be clamped, not inflate the attribution.
		{Trace: trace, ID: PieceSpanID(trace, 0, false), Parent: RootSpanID(trace),
			Kind: SpanPiece, Phase: PhaseExec, Start: 900, End: 1300},
	}
	m := MergeSpans([]ProcSpans{{Proc: "p0", Spans: spans}})
	a, ok := AttributeTrace(m.Traces[0])
	if !ok {
		t.Fatal("trace not attributable")
	}
	if a.Sum() != a.Total {
		t.Errorf("clamped sum %v != total %v", a.Sum(), a.Total)
	}
	if a.Phases[PhaseExec] != 100 {
		t.Errorf("exec = %v, want full clamped interval 100", a.Phases[PhaseExec])
	}
}

func TestAnalyzeCriticalPathAggregates(t *testing.T) {
	dumps := append(twoProcDumps(42), twoProcDumps(43)...)
	m := MergeSpans(dumps)
	r := AnalyzeCriticalPath(m, 1)
	if r.Traces != 2 || r.Attributed != 2 || r.Connected != 2 {
		t.Errorf("report population = %d/%d/%d, want 2/2/2", r.Traces, r.Attributed, r.Connected)
	}
	if r.MaxSumErr != 0 {
		t.Errorf("MaxSumErr = %v, want 0 on synthetic exact trees", r.MaxSumErr)
	}
	if len(r.TopN) != 1 || len(r.All) != 2 {
		t.Errorf("TopN/All = %d/%d, want 1/2", len(r.TopN), len(r.All))
	}
	var sum time.Duration
	for _, d := range r.PhaseTotals {
		sum += d
	}
	if sum != r.TotalLatency {
		t.Errorf("phase totals %v != total latency %v", sum, r.TotalLatency)
	}
}

func TestFlightRecorderFiresOnce(t *testing.T) {
	st := NewSpanStore("p0", 0)
	st.Add(Span{Trace: 1, Kind: SpanTxn})
	path := t.TempDir() + "/flight.txt"
	f := NewFlightRecorder(st, path, 8)
	if !f.Trigger("first anomaly") {
		t.Fatal("first trigger did not dump")
	}
	if f.Trigger("second anomaly") {
		t.Error("second trigger dumped again")
	}
	if f.Triggers() != 2 {
		t.Errorf("trigger count = %d, want 2", f.Triggers())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte("first anomaly")) {
		t.Errorf("dump missing reason: %s", data)
	}
}
