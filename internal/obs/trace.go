// Package obs is the observability plane of the chopped-transaction
// pipeline: a seed-deterministic structured trace subsystem, an
// ε-provenance ledger that accounts every fuzziness debit back to its
// source conflict, and a lightweight metrics registry with Prometheus
// text exposition.
//
// The package sits ABOVE the engine packages in the import graph: it
// implements their observer seams (txn.StepHook, txn.Observer,
// lock.WaitObserver, the dc observer callback, queue.Observer,
// commit.Observer) but none of them import obs — when no Plane is
// configured, the engines keep their nil-observer fast paths and the
// whole subsystem costs nothing (proved by AllocsPerRun pins).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind names a trace event. The split into "logical" and
// "timing-dependent" kinds is what makes the canonical export
// deterministic: logical events (what the run did) are a function of
// the seed; timing events (when and how it waited) are not, and only
// appear in the wall-clock export.
type Kind uint8

// Trace event kinds.
const (
	// EvTxnBegin marks a transaction instance submission. Group, Name.
	EvTxnBegin Kind = iota + 1
	// EvTxnEnd marks instance settlement. Group; Aux=1 when committed.
	EvTxnEnd
	// EvPieceBegin marks one piece execution attempt starting. Owner,
	// Group, Piece, Site, Name, Arg=class.
	EvPieceBegin
	// EvPieceCommit marks the attempt committing. Owner.
	EvPieceCommit
	// EvPieceAbort marks the attempt aborting. Owner, Arg=reason. The
	// canonical export drops the aborted attempt's whole span.
	EvPieceAbort
	// EvLockAcquire marks an operation admitted (its lock granted or its
	// admission validated). Owner, Key; Aux=1 for writes.
	EvLockAcquire
	// EvLockBlocked marks a lock wait starting (wall-clock only). Owner, Key.
	EvLockBlocked
	// EvLockResumed marks a lock wait ending (wall-clock only). Owner.
	EvLockResumed
	// EvDCDebit marks an absorbed read-write conflict charging fuzziness.
	// Owner=requester, Key, Aux=total cost (wall-clock only: whether a
	// conflict window opened is timing-dependent).
	EvDCDebit
	// EvDCRefuse marks a refused conflict falling back to blocking
	// (wall-clock only). Owner=requester, Key.
	EvDCRefuse
	// EvDCAccount marks a piece's fuzziness account settling at
	// unregister. Owner; Aux=imported, Aux2=exported.
	EvDCAccount
	// EvQueueSend marks a message committed to the durable outbox.
	// Site=sender, Arg=destination site, Name=queue, Key=msg ID, Aux=seq.
	EvQueueSend
	// EvQueueFlush marks a batch flush (wall-clock only). Site, Arg=dest,
	// Aux=messages, Aux2=acks.
	EvQueueFlush
	// EvQueueRetransmit marks a retransmission (wall-clock only). Site,
	// Arg=dest, Aux=messages.
	EvQueueRetransmit
	// EvQueueDeliver marks first delivery (post-dedup) at the receiver.
	// Site=receiver, Arg=sender, Name=queue, Key=msg ID, Aux=seq.
	EvQueueDeliver
	// EvActivationBegin marks a site worker starting a queued piece
	// activation. Group, Piece, Site.
	EvActivationBegin
	// EvActivationEnd marks the activation processed. Group, Piece, Site.
	EvActivationEnd
	// EvCommitRound marks one 2PC round completing (wall-clock only).
	// Site, Name=txid, Arg="vote"|"ack", Aux=attempt, Dur set.
	EvCommitRound
	// EvCommitDecision marks a logged 2PC decision (wall-clock only).
	// Site, Name=txid; Aux=1 for commit.
	EvCommitDecision
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case EvTxnBegin:
		return "txn.begin"
	case EvTxnEnd:
		return "txn.end"
	case EvPieceBegin:
		return "piece.begin"
	case EvPieceCommit:
		return "piece.commit"
	case EvPieceAbort:
		return "piece.abort"
	case EvLockAcquire:
		return "lock.acquire"
	case EvLockBlocked:
		return "lock.blocked"
	case EvLockResumed:
		return "lock.resumed"
	case EvDCDebit:
		return "dc.debit"
	case EvDCRefuse:
		return "dc.refuse"
	case EvDCAccount:
		return "dc.account"
	case EvQueueSend:
		return "queue.send"
	case EvQueueFlush:
		return "queue.flush"
	case EvQueueRetransmit:
		return "queue.retransmit"
	case EvQueueDeliver:
		return "queue.deliver"
	case EvActivationBegin:
		return "site.activation.begin"
	case EvActivationEnd:
		return "site.activation.end"
	case EvCommitRound:
		return "2pc.round"
	case EvCommitDecision:
		return "2pc.decision"
	default:
		return "unknown"
	}
}

// logical reports whether the kind is seed-deterministic (a function of
// what the run did, not of when it waited). Only logical kinds enter
// the canonical export.
func (k Kind) logical() bool {
	switch k {
	case EvTxnBegin, EvTxnEnd, EvPieceBegin, EvPieceCommit, EvPieceAbort,
		EvLockAcquire, EvDCAccount, EvQueueSend, EvQueueDeliver,
		EvActivationBegin, EvActivationEnd:
		return true
	}
	return false
}

// Event is one trace record, passed by value (no per-event allocation
// beyond the tracer's buffer growth).
type Event struct {
	// Seq is the arrival order (1-based).
	Seq uint64
	// TS is nanoseconds since the tracer started.
	TS int64
	// Dur is a span duration in nanoseconds (0 for instants).
	Dur int64
	// Kind is the event kind.
	Kind Kind
	// Owner is the executing piece attempt (lock owner), 0 if n/a.
	Owner int64
	// Group is the transaction instance (history group / dist inst).
	Group uint64
	// Piece is the piece index within the instance (-1 if n/a).
	Piece int32
	// Site is the simulated site, "" for single-site runs.
	Site string
	// Key is the storage key or message ID involved.
	Key string
	// Name is the program / queue / txid name.
	Name string
	// Arg is auxiliary text (destination site, class, reason, round).
	Arg string
	// Aux and Aux2 are auxiliary numbers (cost, seq, batch size, flag).
	Aux  int64
	Aux2 int64
}

// DefaultTraceLimit bounds the tracer's in-memory event buffer; beyond
// it events are counted as dropped instead of stored.
const DefaultTraceLimit = 1 << 21

// Tracer collects trace events. A nil *Tracer is the disabled state:
// Emit on nil is an immediate return, and the engine seams are only
// installed when a tracer (or ledger/metrics consumer) exists at all,
// so the disabled pipeline keeps its zero-alloc fast paths.
type Tracer struct {
	start   time.Time
	limit   int
	dropped atomic.Uint64
	seq     atomic.Uint64

	mu     sync.Mutex
	events []Event
}

// NewTracer returns an enabled tracer (limit < 1 selects
// DefaultTraceLimit).
func NewTracer(limit int) *Tracer {
	if limit < 1 {
		limit = DefaultTraceLimit
	}
	return &Tracer{start: time.Now(), limit: limit}
}

// Emit records one event. Nil-safe: a nil tracer is a no-op.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	ev.TS = int64(time.Since(t.start))
	ev.Seq = t.seq.Add(1)
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a snapshot of the collected events in arrival order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of stored events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many events were discarded over the limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
