package odc

import (
	"context"
	"fmt"
	"testing"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// BenchmarkValidateDeepWindow measures validation cost against a deep
// validation window: a parked reader pins `depth` committed writers in
// the window, then each iteration validates a one-read transaction on
// an uncontended key. With the linear window scan this is O(depth) per
// validation; with the per-key version index it is O(readSet).
func BenchmarkValidateDeepWindow(b *testing.B) {
	for _, depth := range []int{64, 1024, 4096} {
		b.Run(fmt.Sprintf("window=%d", depth), func(b *testing.B) {
			e := NewEngine(storage.NewFrom(map[storage.Key]metric.Value{"probe": 1}), nil)

			// Park a transaction whose start seq predates every writer so
			// end()'s GC cannot prune the window underneath the benchmark.
			started := make(chan struct{})
			release := make(chan struct{})
			done := make(chan struct{})
			hold := txn.MustProgram("hold",
				txn.Op{Kind: txn.OpRead, Key: "hold", AbortIf: func(metric.Value) bool {
					close(started)
					<-release
					return false
				}},
			)
			go func() {
				defer close(done)
				_, _, _ = e.Run(context.Background(), 1, hold, metric.SpecOf(100000), txn.Query)
			}()
			<-started

			wSpec := metric.Spec{Import: metric.Zero, Export: metric.LimitOf(1000)}
			for i := 0; i < depth; i++ {
				p := txn.MustProgram("w", txn.AddOp(storage.Key(fmt.Sprintf("w%04d", i)), 1))
				if _, _, err := e.Run(context.Background(), lock.Owner(100+i), p, wSpec, txn.Update); err != nil {
					b.Fatal(err)
				}
			}
			if got := e.Stats().GCRetained; got < depth {
				b.Fatalf("window = %d, want ≥ %d pinned", got, depth)
			}

			read := txn.MustProgram("r", txn.ReadOp("probe"))
			rSpec := metric.Spec{Import: metric.LimitOf(100000), Export: metric.Zero}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Run(context.Background(), lock.Owner(1000000+i), read, rSpec, txn.Query); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(release)
			<-done
		})
	}
}
