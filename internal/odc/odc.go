// Package odc implements optimistic (validation-based) divergence
// control — the second family of DC algorithms described in the paper's
// reference [12] (Wu, Yu, Pu: "Divergence control for epsilon-
// serializability"), provided here as an alternative on-line engine to
// the lock-based controller in package dc.
//
// Execution is classic backward-validation OCC with an ESR twist:
//
//   - Read phase: reads go straight to the committed store (writes are
//     buffered, so there are never dirty reads); writes are buffered.
//   - Validation (critical section): the transaction is checked against
//     every transaction that committed after it started. A committed
//     update that wrote a key this transaction read is a read-write
//     conflict: under plain OCC it would force an abort, but a query ET
//     may *absorb* it by importing the writer's declared bound — charged
//     against the query's import limit and against the writer's export
//     limit (tracked post-commit on its validation record). Update ETs
//     stay serializable among themselves: write-write conflicts on
//     non-commutative ops always abort.
//   - Install: buffered writes apply atomically; commutative increments
//     are re-applied against the current value, so concurrent adds never
//     invalidate each other (the same commutativity the chopper uses).
package odc

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ErrValidation is the system abort returned when validation fails; the
// caller retries, as with lock deadlocks.
var ErrValidation = errors.New("odc: validation failed")

// bufWrite is one buffered write: the op plus the value computed during
// the read phase (re-derived at install for commutative ops).
type bufWrite struct {
	op    txn.Op
	value metric.Value
}

// committed is a validation record for one committed transaction.
type committed struct {
	seq   int64
	class txn.Class
	// writes maps written keys to the writer's declared bound (conflict
	// price) and whether the write was commutative.
	writes map[storage.Key]writeInfo
	// exported accumulates post-commit export charges; bounded by limit.
	exported    metric.Fuzz
	exportLimit metric.Limit
}

type writeInfo struct {
	bound       metric.Limit
	commutative bool
}

// idxEntry is one committed write in a key's version chain (the per-key
// validation index). Entries are appended in commit order, so each
// chain is sorted by seq.
type idxEntry struct {
	seq int64
	wi  writeInfo
	rec *committed
}

// Stats counts engine events.
type Stats struct {
	Commits    uint64
	Aborts     uint64 // validation failures
	Absorbed   uint64 // conflicts absorbed by ε accounting
	ReExecuted uint64 // commutative writes re-applied at install
	GCRetained int    // current size of the validation window
}

// Engine is the optimistic divergence-control executor for one store.
type Engine struct {
	store   *storage.Store
	obs     txn.Observer
	opDelay time.Duration
	step    txn.StepHook

	mu     sync.Mutex
	seq    int64
	recent []*committed
	// index maps each key to its committed writes still in the window,
	// sorted by seq: validation probes the transaction's own read and
	// write sets instead of scanning every window record, so its cost is
	// O(readSet + writeSet), not O(window × writes).
	index  map[storage.Key][]idxEntry
	active map[lock.Owner]int64 // owner → start seq (for GC)
	stats  Stats
}

// NewEngine builds an engine over store; obs may be nil.
func NewEngine(store *storage.Store, obs txn.Observer) *Engine {
	return &Engine{
		store:  store,
		obs:    obs,
		index:  make(map[storage.Key][]idxEntry),
		active: make(map[lock.Owner]int64),
	}
}

// SetOpDelay makes every operation take d of simulated work during the
// read phase (matching txn.Exec.SetOpDelay, but without any lock held —
// the optimistic engine's whole point).
func (e *Engine) SetOpDelay(d time.Duration) { e.opDelay = d }

// SetStepHook installs a step hook consulted before every read-phase
// operation and before the validate-and-install critical section. Nil
// (the default) disables gating.
func (e *Engine) SetStepHook(h txn.StepHook) { e.step = h }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.GCRetained = len(e.recent)
	return st
}

// Run executes p once under the given ε-spec and class, returning the
// outcome plus the fuzziness imported by this execution. ErrValidation
// aborts are retryable; rollback statements return txn.ErrRollback.
func (e *Engine) Run(
	ctx context.Context,
	owner lock.Owner,
	p *txn.Program,
	spec metric.Spec,
	class txn.Class,
) (*txn.Outcome, metric.Fuzz, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if e.obs != nil {
		e.obs.Begin(owner, p.Name, class)
	}
	start := e.begin(owner)
	defer e.end(owner)

	out := &txn.Outcome{Owner: owner}
	readSet := make(map[storage.Key]bool)
	var writes []bufWrite
	// local mirrors buffered writes so the program reads its own writes.
	local := make(map[storage.Key]metric.Value)

	// readKey fetches a value for computation; observe marks keys whose
	// committed value the transaction semantically depends on. A pure
	// commutative increment computes old+δ but its effect (the δ) does
	// not depend on old, so it joins the read set only when a rollback
	// predicate inspects the value. A read served from the local
	// workspace still observes: the buffered value is base+δ where base
	// is the committed snapshot, so the value handed to the program
	// depends on that base even though the store is not touched —
	// without this, two concurrent "add k; read k" updates both read
	// snapshot+own-δ, both validate (their writes commute), and the
	// history is not serializable with respect to the read values.
	readKey := func(k storage.Key, observe bool) metric.Value {
		if observe {
			readSet[k] = true
		}
		if v, ok := local[k]; ok {
			return v
		}
		return e.store.Get(k)
	}
	for i, op := range p.Ops {
		if e.step != nil {
			e.step.OnStep(txn.Step{
				Owner: owner, Program: p.Name, Op: i, Kind: txn.StepApply,
				Key: op.Key, Write: op.Kind == txn.OpWrite,
			})
		}
		if e.opDelay > 0 {
			txn.SimWork(e.opDelay)
		}
		observe := op.Kind == txn.OpRead || op.AbortIf != nil ||
			(op.Kind == txn.OpWrite && !op.Commutative)
		old := readKey(op.Key, observe)
		if op.AbortIf != nil && op.AbortIf(old) {
			if e.obs != nil {
				e.obs.Abort(owner, txn.ErrRollback)
			}
			return out, 0, fmt.Errorf("op on %q: %w", op.Key, txn.ErrRollback)
		}
		switch op.Kind {
		case txn.OpRead:
			out.Reads = append(out.Reads, txn.ReadRec{Key: op.Key, Value: old})
			if e.obs != nil {
				e.obs.Read(owner, op.Key, old)
			}
		case txn.OpWrite:
			val := op.Update(old)
			local[op.Key] = val
			writes = append(writes, bufWrite{op: op, value: val})
		}
	}

	if e.step != nil {
		e.step.OnStep(txn.Step{Owner: owner, Program: p.Name, Op: -1, Kind: txn.StepCommit})
	}
	imported, err := e.validateAndInstall(owner, p, spec, class, start, readSet, writes, out)
	if err != nil {
		if e.obs != nil {
			e.obs.Abort(owner, err)
		}
		return out, 0, err
	}
	out.Committed = true
	if e.obs != nil {
		e.obs.Commit(owner)
	}
	return out, imported, nil
}

// begin registers an active transaction and returns its start sequence.
func (e *Engine) begin(owner lock.Owner) int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active[owner] = e.seq
	return e.seq
}

// end unregisters and garbage-collects the validation window: records
// no active transaction can conflict with are dropped, and the per-key
// index chains are pruned alongside.
func (e *Engine) end(owner lock.Owner) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.active, owner)
	min := e.seq
	for _, s := range e.active {
		if s < min {
			min = s
		}
	}
	// recent is sorted by seq: when even the oldest record is still
	// needed, skip the rebuild so a pinned window costs O(1) per end.
	if len(e.recent) == 0 || e.recent[0].seq > min {
		return
	}
	keep := e.recent[:0]
	for _, c := range e.recent {
		if c.seq > min {
			keep = append(keep, c)
			continue
		}
		for key := range c.writes {
			ent := e.index[key]
			n := 0
			for n < len(ent) && ent[n].seq <= min {
				n++
			}
			switch {
			case n == len(ent):
				delete(e.index, key)
			case n > 0:
				e.index[key] = append(ent[:0:0], ent[n:]...)
			}
		}
	}
	e.recent = keep
}

// conflictsAfter returns key's committed writes with seq > start.
func (e *Engine) conflictsAfter(key storage.Key, start int64) []idxEntry {
	ent := e.index[key]
	i := sort.Search(len(ent), func(i int) bool { return ent[i].seq > start })
	return ent[i:]
}

// validateAndInstall is the critical section: backward validation with
// ε absorption, then atomic install.
func (e *Engine) validateAndInstall(
	owner lock.Owner,
	p *txn.Program,
	spec metric.Spec,
	class txn.Class,
	start int64,
	readSet map[storage.Key]bool,
	writes []bufWrite,
	out *txn.Outcome,
) (metric.Fuzz, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	// Phase 1: price the conflicts without mutating any account. The
	// per-key index is probed once per read key and once per written
	// key, so validation cost is independent of the window depth.
	var imported metric.Fuzz
	type charge struct {
		c    *committed
		cost metric.Fuzz
	}
	var charges []charge
	for key := range readSet {
		for _, ent := range e.conflictsAfter(key, start) {
			// Read-write conflict with a later committer.
			if class != txn.Query || ent.rec.class != txn.Update {
				e.stats.Aborts++
				return 0, fmt.Errorf("odc: r/w conflict on %q: %w", key, ErrValidation)
			}
			if ent.wi.bound.IsInfinite() {
				e.stats.Aborts++
				return 0, fmt.Errorf("odc: unbounded conflict on %q: %w", key, ErrValidation)
			}
			cost := ent.wi.bound.Bound()
			imported = imported.Add(cost)
			charges = append(charges, charge{c: ent.rec, cost: cost})
		}
	}
	checkedWW := make(map[storage.Key]bool, len(writes))
	for _, w := range writes {
		key := w.op.Key
		// A key both read and written takes the r/w branch above, as the
		// record-scan formulation did.
		if readSet[key] || checkedWW[key] {
			continue
		}
		checkedWW[key] = true
		for _, ent := range e.conflictsAfter(key, start) {
			if writtenNonCommutative(writes, key, ent.wi) {
				// Write-write conflict not covered by commutativity.
				e.stats.Aborts++
				return 0, fmt.Errorf("odc: w/w conflict on %q: %w", key, ErrValidation)
			}
		}
	}
	if !spec.Import.Allows(imported) {
		e.stats.Aborts++
		return 0, fmt.Errorf("odc: import limit %s exceeded by %d: %w", spec.Import, imported, ErrValidation)
	}
	for _, ch := range charges {
		if !ch.c.exportLimit.Allows(ch.c.exported.Add(ch.cost)) {
			e.stats.Aborts++
			return 0, fmt.Errorf("odc: writer export limit exhausted: %w", ErrValidation)
		}
	}
	// Phase 2: commit — charge, install, record.
	for _, ch := range charges {
		ch.c.exported = ch.c.exported.Add(ch.cost)
		e.stats.Absorbed++
	}
	rec := &committed{
		class:       class,
		writes:      make(map[storage.Key]writeInfo, len(writes)),
		exportLimit: spec.Export,
	}
	finals := make(map[storage.Key]metric.Value, len(writes))
	for _, w := range writes {
		val := w.value
		if w.op.Commutative {
			// Re-apply the increment against the current committed value:
			// concurrent adds compose instead of clobbering.
			cur := w.value
			if v, ok := finals[w.op.Key]; ok {
				cur = w.op.Update(v)
			} else {
				cur = w.op.Update(e.store.Get(w.op.Key))
			}
			if cur != val {
				e.stats.ReExecuted++
			}
			val = cur
		}
		old := e.store.Get(w.op.Key)
		finals[w.op.Key] = val
		rec.writes[w.op.Key] = writeInfo{bound: w.op.Bound, commutative: w.op.Commutative}
		if e.obs != nil {
			e.obs.Write(owner, w.op.Key, old, val, w.op.Commutative)
		}
	}
	batch := make([]storage.Write, 0, len(finals))
	for k, v := range finals {
		batch = append(batch, storage.Write{Key: k, Value: v})
		e.store.Set(k, v)
	}
	if err := e.store.Apply(batch); err != nil {
		return 0, err
	}
	e.seq++
	rec.seq = e.seq
	if len(rec.writes) > 0 {
		e.recent = append(e.recent, rec)
		for key, wi := range rec.writes {
			e.index[key] = append(e.index[key], idxEntry{seq: rec.seq, wi: wi, rec: rec})
		}
	}
	out.Writes = batch
	e.stats.Commits++
	return imported, nil
}

// writtenNonCommutative reports whether this transaction writes key in a
// way that does not commute with the committed writer's write.
func writtenNonCommutative(writes []bufWrite, key storage.Key, wi writeInfo) bool {
	for _, w := range writes {
		if w.op.Key != key {
			continue
		}
		if !(w.op.Commutative && wi.commutative) {
			return true
		}
	}
	return false
}

// Retryable reports whether err is a validation abort worth retrying.
func Retryable(err error) bool { return errors.Is(err, ErrValidation) }
