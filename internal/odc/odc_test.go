package odc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

func newEngineT(init map[storage.Key]metric.Value) *Engine {
	return NewEngine(storage.NewFrom(init), nil)
}

func TestCommitSimpleTransfer(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "y": 0})
	p := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	out, imported, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Committed || imported != 0 {
		t.Errorf("out=%+v imported=%d", out, imported)
	}
	if e.store.Get("x") != 900 || e.store.Get("y") != 100 {
		t.Errorf("state: x=%d y=%d", e.store.Get("x"), e.store.Get("y"))
	}
	if st := e.Stats(); st.Commits != 1 || st.Aborts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestReadsOwnWrites(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	p := txn.MustProgram("t",
		txn.AddOp("x", 5),
		txn.ReadOp("x"),
	)
	out, _, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := out.ReadValue("x"); !ok || v != 15 {
		t.Errorf("read own write = %d", v)
	}
}

func TestRollbackLeavesNoEffect(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 50})
	p := txn.MustProgram("w",
		txn.AddOp("staging", 1),
		txn.WithAbortIf(txn.AddOp("x", -100), func(v metric.Value) bool { return v < 100 }),
	)
	_, _, err := e.Run(context.Background(), 1, p, metric.Strict, txn.Update)
	if !errors.Is(err, txn.ErrRollback) {
		t.Fatalf("err = %v", err)
	}
	if e.store.Has("staging") {
		t.Error("buffered write leaked to store")
	}
}

func TestQueryAbsorbsCommittedWriterWithinBudget(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "y": 0})
	xfer := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("x"), txn.ReadOp("y"))

	// Interleave manually: start the audit (reads x), commit a transfer,
	// then let the audit validate. We simulate by starting the audit
	// via a goroutine that pauses between reads using a custom program.
	var wg sync.WaitGroup
	started := make(chan struct{})
	release := make(chan struct{})
	slowAudit := txn.MustProgram("slowaudit",
		txn.ReadOp("x"),
		txn.Op{Kind: txn.OpRead, Key: "y", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
	)
	var auditImported metric.Fuzz
	var auditErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The audit observes both x and y; the transfer writes both with
		// bound 100 each, so the conflict costs 200.
		_, auditImported, auditErr = e.Run(context.Background(), 10, slowAudit,
			metric.Spec{Import: metric.LimitOf(200), Export: metric.Zero}, txn.Query)
	}()
	<-started
	// Transfer commits while the audit is mid-flight.
	if _, _, err := e.Run(context.Background(), 11, xfer,
		metric.SpecOf(1000), txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()
	if auditErr != nil {
		t.Fatalf("audit: %v", auditErr)
	}
	if auditImported != 200 {
		t.Errorf("imported = %d, want 200 (x and y conflicts absorbed)", auditImported)
	}
	if got := e.Stats().Absorbed; got != 2 {
		t.Errorf("Absorbed = %d, want 2", got)
	}
	_ = audit
}

func TestQueryAbortsBeyondImportBudget(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000, "y": 0})
	xfer := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))

	started := make(chan struct{})
	release := make(chan struct{})
	slowAudit := txn.MustProgram("slowaudit",
		txn.ReadOp("x"),
		txn.Op{Kind: txn.OpRead, Key: "y", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 10, slowAudit,
			metric.Spec{Import: metric.LimitOf(50), Export: metric.Zero}, txn.Query)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 11, xfer, metric.SpecOf(1000), txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; !Retryable(err) {
		t.Fatalf("audit err = %v, want validation abort", err)
	}
}

func TestWriterExportBudgetEnforced(t *testing.T) {
	// The committed writer's export limit caps how many queries may
	// absorb against it.
	e := newEngineT(map[storage.Key]metric.Value{"x": 1000})
	xfer := txn.MustProgram("upd", txn.AddOp("x", -100))

	// Two slow queries start, writer (export limit 100 = one absorption)
	// commits, then both validate: one absorbs, one aborts.
	const queries = 2
	var started, release [queries]chan struct{}
	errs := make(chan error, queries)
	for i := range started {
		started[i] = make(chan struct{})
		release[i] = make(chan struct{})
	}
	for i := 0; i < queries; i++ {
		i := i
		slow := txn.MustProgram("q",
			txn.Op{Kind: txn.OpRead, Key: "x", AbortIf: func(metric.Value) bool {
				close(started[i])
				<-release[i]
				return false
			}},
		)
		go func() {
			_, _, err := e.Run(context.Background(), lock.Owner(20+i), slow,
				metric.Spec{Import: metric.LimitOf(1000), Export: metric.Zero}, txn.Query)
			errs <- err
		}()
	}
	for i := range started {
		<-started[i]
	}
	if _, _, err := e.Run(context.Background(), 30, xfer,
		metric.Spec{Import: metric.Zero, Export: metric.LimitOf(100)}, txn.Update); err != nil {
		t.Fatal(err)
	}
	for i := range release {
		close(release[i])
	}
	var ok, aborted int
	for i := 0; i < queries; i++ {
		if err := <-errs; err == nil {
			ok++
		} else if Retryable(err) {
			aborted++
		} else {
			t.Fatalf("unexpected: %v", err)
		}
	}
	if ok != 1 || aborted != 1 {
		t.Errorf("ok=%d aborted=%d, want 1/1 (export exhausted)", ok, aborted)
	}
}

func TestConcurrentCommutativeAddsAllApply(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				owner := lock.Owner(i*1000 + j)
				for {
					_, _, err := e.Run(context.Background(), owner, p, metric.Strict, txn.Update)
					if err == nil {
						break
					}
					if !Retryable(err) {
						t.Errorf("inc: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x"); got != 800 {
		t.Errorf("x = %d, want 800 (no lost increments)", got)
	}
}

func TestNonCommutativeWriteConflictAborts(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 1})
	double := txn.MustProgram("double",
		txn.TransformOp("x", func(v metric.Value) metric.Value { return v * 2 }, metric.Infinite))

	started := make(chan struct{})
	release := make(chan struct{})
	slowDouble := txn.MustProgram("slowdouble",
		txn.Op{
			Kind: txn.OpWrite, Key: "x",
			Update: func(v metric.Value) metric.Value { return v * 2 },
			Bound:  metric.Infinite,
			AbortIf: func(metric.Value) bool {
				close(started)
				<-release
				return false
			},
		},
	)
	errCh := make(chan error, 1)
	go func() {
		_, _, err := e.Run(context.Background(), 1, slowDouble, metric.Strict, txn.Update)
		errCh <- err
	}()
	<-started
	if _, _, err := e.Run(context.Background(), 2, double, metric.Strict, txn.Update); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := <-errCh; !Retryable(err) {
		t.Fatalf("err = %v, want validation abort", err)
	}
	// x was doubled exactly once (the slow one aborted).
	if got := e.store.Get("x"); got != 2 {
		t.Errorf("x = %d, want 2", got)
	}
}

func TestValidationWindowGC(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 0})
	p := txn.MustProgram("inc", txn.AddOp("x", 1))
	for i := 0; i < 100; i++ {
		if _, _, err := e.Run(context.Background(), lock.Owner(i+1), p, metric.Strict, txn.Update); err != nil {
			t.Fatal(err)
		}
	}
	// With no active transactions, the window must be empty.
	if got := e.Stats().GCRetained; got != 0 {
		t.Errorf("validation window = %d entries after quiescence", got)
	}
}

func TestContextCancellation(t *testing.T) {
	e := newEngineT(nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := txn.MustProgram("t", txn.ReadOp("x"))
	if _, _, err := e.Run(ctx, 1, p, metric.Strict, txn.Query); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestInvalidProgramRejected(t *testing.T) {
	e := newEngineT(nil)
	if _, _, err := e.Run(context.Background(), 1, &txn.Program{Name: "bad"}, metric.Strict, txn.Query); err == nil {
		t.Error("invalid program accepted")
	}
}

// TestReadOfOwnAddObservesBase is the regression test for a hole the
// end-to-end fuzzer found (explore.FuzzRuns): a read served from the
// local workspace returns base+δ, where base is the committed snapshot
// the buffered increment was computed over — so the read depends on
// that base and must join the read set even though the store is never
// touched. Without this, two concurrent "add x; read x" updates both
// read snapshot+δ, both validate (their writes commute), and the
// history is not serializable: one of them must observe the other's
// increment in any serial order.
func TestReadOfOwnAddObservesBase(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 10})
	started := make(chan struct{})
	release := make(chan struct{})
	slow := txn.MustProgram("slow",
		txn.AddOp("x", 3),
		txn.Op{Kind: txn.OpRead, Key: "x", AbortIf: func(metric.Value) bool {
			close(started)
			<-release
			return false
		}},
	)
	fast := txn.MustProgram("fast", txn.AddOp("x", 3), txn.ReadOp("x"))

	type res struct {
		out *txn.Outcome
		err error
	}
	ch := make(chan res, 1)
	go func() {
		out, _, err := e.Run(context.Background(), 1, slow, metric.SpecOf(1000), txn.Update)
		ch <- res{out, err}
	}()
	<-started
	// fast commits x=13 while slow is paused between its add and read.
	fastOut, _, err := e.Run(context.Background(), 2, fast, metric.SpecOf(1000), txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := fastOut.ReadValue("x"); v != 13 {
		t.Errorf("fast read %d, want 13", v)
	}
	close(release)
	r := <-ch
	// slow read its own workspace value 13 = stale base 10 + own 3; it
	// must fail validation (update-class r/w conflict), not commit a
	// read value no serial order can produce.
	if !Retryable(r.err) {
		t.Fatalf("slow: err = %v, want retryable validation abort", r.err)
	}
	// The retry observes fast's committed increment.
	out, _, err := e.Run(context.Background(), 3, slow2(t), metric.SpecOf(1000), txn.Update)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := out.ReadValue("x"); v != 16 {
		t.Errorf("retry read %d, want 16", v)
	}
	if got := e.store.Get("x"); got != 16 {
		t.Errorf("x = %d, want 16", got)
	}
}

// slow2 is the retry body of TestReadOfOwnAddObservesBase's slow
// transaction: same ops, no pause.
func slow2(t *testing.T) *txn.Program {
	t.Helper()
	return txn.MustProgram("slow", txn.AddOp("x", 3), txn.ReadOp("x"))
}

func TestStressMixedWorkloadConserved(t *testing.T) {
	e := newEngineT(map[storage.Key]metric.Value{"x": 100000, "y": 100000})
	xfer := txn.MustProgram("xfer", txn.AddOp("x", -100), txn.AddOp("y", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("x"), txn.ReadOp("y"))
	spec := metric.SpecOf(10000)
	var wg sync.WaitGroup
	deadline := time.Now().Add(2 * time.Second)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := lock.Owner(i * 100000)
			for n := 0; n < 100 && time.Now().Before(deadline); n++ {
				owner++
				p, class := xfer, txn.Update
				if i%2 == 0 {
					p, class = audit, txn.Query
				}
				for {
					out, imported, err := e.Run(context.Background(), owner, p, spec, class)
					if err == nil {
						if class == txn.Query {
							dev := metric.Distance(out.SumReads(), 200000)
							if metric.Fuzz(dev) > 10000 {
								t.Errorf("deviation %d > ε", dev)
							}
							_ = imported
						}
						break
					}
					if !Retryable(err) {
						t.Errorf("run: %v", err)
						return
					}
					owner++
				}
			}
		}(i)
	}
	wg.Wait()
	if got := e.store.Get("x") + e.store.Get("y"); got != 200000 {
		t.Errorf("total = %d, want 200000", got)
	}
}
