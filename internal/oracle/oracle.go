// Package oracle implements the serial-replay ε-oracle of the
// conformance harness: an independent, after-the-fact check that an
// execution kept every query within its declared ε-spec.
//
// The on-line engines (dc, odc, tdc) *account* fuzziness with declared
// write bounds — a worst-case price. The oracle instead *measures* it:
// given the recorded history of a run, the owner→group mapping (chopped
// pieces back to their original transactions), and the original
// programs, it
//
//  1. reconstructs the committed groups and the partial order their
//     execution intervals impose (group A precedes group B iff every
//     committed operation of A has a smaller global sequence number than
//     every committed operation of B — concurrent groups stay unordered);
//  2. enumerates serial orders consistent with that partial order
//     (bounded by Config.MaxOrders; when the bound is hit, canonical and
//     seeded-random linear extensions serve as a fallback sample);
//  3. replays the ORIGINAL programs serially in each order against the
//     initial database state; and
//  4. reports, for every group, the minimum over examined orders of the
//     positional read divergence Σ|observed − replayed| — the measured
//     distance between what the run's queries saw and what the nearest
//     examined serializable execution would have shown them.
//
// A query group conforms iff its measured divergence is allowed by its
// program's import limit (Limit_t). Update groups are reported for
// information; their mutual serializability is the grouped conflict
// check's job (history.CheckGrouped).
//
// The check is sound in one direction: a divergence of 0 proves the run
// indistinguishable from one of the examined serial orders. When the
// enumeration is not exhaustive the reported divergence is an upper
// bound on the true distance-to-nearest-serial-order, so a FAIL verdict
// on a tiny, fully-enumerated scenario is a real ESR violation, while on
// huge traces it is a (deliberately conservative) alarm.
//
// Replay assumes that, within one group, the committed reads' global
// sequence order equals program order. Sequential piece execution
// (core.Config.SequentialPieces, which the conformance harness always
// sets) guarantees this; with concurrently executing sibling pieces the
// comparison is again a conservative over-approximation.
package oracle

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"asynctp/internal/history"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// Unexplained is the divergence reported when no examined serial order
// can explain a group's committed execution at all (e.g. every order
// makes its program hit a rollback statement).
const Unexplained = metric.Fuzz(math.MaxInt64)

// Input is one recorded run, ready for checking.
type Input struct {
	// Txns and Ops are the recorder's snapshot (history.Recorder.Snapshot).
	Txns []history.Txn
	Ops  []history.Op
	// GroupOf maps piece owners to their original transaction's group
	// (core.Runner.GroupOf). Owners missing from the map form singleton
	// groups, mirroring history.CheckGrouped.
	GroupOf map[lock.Owner]history.Group
	// Programs maps each group to the ORIGINAL (unchopped) program that
	// produced it. Every committed group must be mapped.
	Programs map[history.Group]*txn.Program
	// Initial is the database state before the run (storage.Store.Snapshot
	// taken before submitting).
	Initial map[storage.Key]metric.Value
}

// Config tunes the order enumeration.
type Config struct {
	// MaxOrders bounds the number of serial orders examined by the
	// exhaustive enumeration. <= 0 selects DefaultMaxOrders.
	MaxOrders int
	// RandomOrders is how many seeded-random linear extensions to sample
	// when the exhaustive enumeration is cut off. < 0 disables; 0 selects
	// DefaultRandomOrders.
	RandomOrders int
	// Seed seeds the random-extension sampler (and nothing else): one
	// seed, one verdict.
	Seed int64
}

// Enumeration defaults.
const (
	DefaultMaxOrders    = 4096
	DefaultRandomOrders = 64
)

// Verdict is the oracle's finding for one group.
type Verdict struct {
	// Group identifies the original transaction instance.
	Group history.Group
	// Name is the original program's name.
	Name string
	// Class is the original program's class.
	Class txn.Class
	// Reads is how many committed reads the group performed.
	Reads int
	// Divergence is the minimum, over examined serial orders, of the
	// summed positional read distance (Unexplained if no order fits).
	Divergence metric.Fuzz
	// Limit is the program's import limit (Limit_t).
	Limit metric.Limit
	// OK reports conformance: query groups must have Divergence within
	// Limit; update groups are informational and always OK.
	OK bool
}

// Report is the oracle's overall finding.
type Report struct {
	// Groups is the number of committed groups checked.
	Groups int
	// Orders is the number of serial orders examined (enumerated plus
	// fallback candidates).
	Orders int
	// ValidOrders is how many examined orders could explain the run (no
	// replayed rollback contradicting a commit).
	ValidOrders int
	// Exhaustive reports whether every linear extension of the interval
	// partial order was examined.
	Exhaustive bool
	// Verdicts holds one entry per committed group, sorted by group.
	Verdicts []Verdict
	// MaxQueryDivergence is the largest divergence among query groups.
	MaxQueryDivergence metric.Fuzz
	// OK reports whether every query group conforms.
	OK bool
}

// Violations returns the names+groups of non-conforming verdicts.
func (r *Report) Violations() []Verdict {
	var out []Verdict
	for _, v := range r.Verdicts {
		if !v.OK {
			out = append(out, v)
		}
	}
	return out
}

// String renders a one-line summary.
func (r *Report) String() string {
	verdict := "PASS"
	if !r.OK {
		verdict = fmt.Sprintf("FAIL (%d violations)", len(r.Violations()))
	}
	mode := "exhaustive"
	if !r.Exhaustive {
		mode = "sampled"
	}
	return fmt.Sprintf("oracle: %s — %d groups, %d orders (%s), max query divergence %d",
		verdict, r.Groups, r.Orders, mode, int64(r.MaxQueryDivergence))
}

// group is the oracle's working record for one committed group.
type group struct {
	id       history.Group
	prog     *txn.Program
	min, max uint64         // committed-op sequence interval
	observed []metric.Value // committed reads, in sequence order
}

// Check runs the serial-replay oracle over in.
func Check(in Input, cfg Config) (*Report, error) {
	if cfg.MaxOrders <= 0 {
		cfg.MaxOrders = DefaultMaxOrders
	}
	if cfg.RandomOrders == 0 {
		cfg.RandomOrders = DefaultRandomOrders
	}

	groups, err := collectGroups(in)
	if err != nil {
		return nil, err
	}
	rep := &Report{Groups: len(groups), Exhaustive: true, OK: true}
	if len(groups) == 0 {
		return rep, nil
	}

	// Interval partial order: i ≺ j iff i's last committed op precedes
	// j's first. succ[i] lists the groups that must come after i.
	n := len(groups)
	succ := make([][]int, n)
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && groups[i].max < groups[j].min {
				succ[i] = append(succ[i], j)
				indeg[j]++
			}
		}
	}

	best := make([]metric.Fuzz, n)
	for i := range best {
		best[i] = Unexplained
	}
	consider := func(order []int) {
		rep.Orders++
		reads, ok := replay(in.Initial, groups, order)
		if !ok {
			return
		}
		rep.ValidOrders++
		for i := range groups {
			d := divergence(groups[i].observed, reads[i])
			if d < best[i] {
				best[i] = d
			}
		}
	}
	allZero := func() bool {
		for _, b := range best {
			if b != 0 {
				return false
			}
		}
		return true
	}

	// Exhaustive enumeration of linear extensions, budgeted.
	deg := append([]int(nil), indeg...)
	order := make([]int, 0, n)
	used := make([]bool, n)
	var enumerate func() bool // false → budget exhausted, stop
	enumerate = func() bool {
		if len(order) == n {
			consider(order)
			if allZero() {
				return false // cannot improve; also ends the fallback
			}
			return rep.Orders < cfg.MaxOrders
		}
		for i := 0; i < n; i++ {
			if used[i] || deg[i] != 0 {
				continue
			}
			used[i] = true
			order = append(order, i)
			for _, j := range succ[i] {
				deg[j]--
			}
			cont := enumerate()
			for _, j := range succ[i] {
				deg[j]++
			}
			order = order[:len(order)-1]
			used[i] = false
			if !cont {
				return false
			}
		}
		return true
	}
	finished := enumerate()
	if !finished && !allZero() {
		rep.Exhaustive = false
		// Fallback sample: canonical extensions plus seeded-random ones.
		consider(extension(indeg, succ, func(ready []int) int { return ready[0] }))
		consider(extension(indeg, succ, func(ready []int) int { return ready[len(ready)-1] }))
		if cfg.RandomOrders > 0 {
			rng := rand.New(rand.NewSource(cfg.Seed))
			for k := 0; k < cfg.RandomOrders && !allZero(); k++ {
				consider(extension(indeg, succ, func(ready []int) int {
					return ready[rng.Intn(len(ready))]
				}))
			}
		}
	} else if !finished {
		// Stopped early because every divergence hit 0: still exhaustive
		// in the sense that more orders cannot change the verdict.
		rep.Exhaustive = true
	}

	// Verdicts.
	for i, g := range groups {
		v := Verdict{
			Group:      g.id,
			Name:       g.prog.Name,
			Class:      g.prog.Class(),
			Reads:      len(g.observed),
			Divergence: best[i],
			Limit:      g.prog.Spec.Import,
			OK:         true,
		}
		if v.Class == txn.Query {
			v.OK = best[i] != Unexplained && v.Limit.Allows(best[i])
			if best[i] > rep.MaxQueryDivergence && best[i] != Unexplained {
				rep.MaxQueryDivergence = best[i]
			}
			if best[i] == Unexplained {
				rep.MaxQueryDivergence = Unexplained
			}
		}
		if !v.OK {
			rep.OK = false
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	return rep, nil
}

// collectGroups builds the per-group records from the snapshot.
func collectGroups(in Input) ([]*group, error) {
	committed := make(map[lock.Owner]bool, len(in.Txns))
	for _, t := range in.Txns {
		if t.Status == history.Committed {
			committed[t.Owner] = true
		}
	}
	groupOf := func(o lock.Owner) history.Group {
		if g, ok := in.GroupOf[o]; ok {
			return g
		}
		return history.Group(-int64(o))
	}
	byGroup := make(map[history.Group]*group)
	for _, op := range in.Ops {
		if !committed[op.Owner] {
			continue
		}
		gid := groupOf(op.Owner)
		g := byGroup[gid]
		if g == nil {
			prog := in.Programs[gid]
			if prog == nil {
				return nil, fmt.Errorf("oracle: committed group %d has no program", gid)
			}
			g = &group{id: gid, prog: prog, min: op.Seq, max: op.Seq}
			byGroup[gid] = g
		}
		if op.Seq < g.min {
			g.min = op.Seq
		}
		if op.Seq > g.max {
			g.max = op.Seq
		}
	}
	groups := make([]*group, 0, len(byGroup))
	for _, g := range byGroup {
		groups = append(groups, g)
	}
	// Deterministic working order: by first committed op, then group id.
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].min != groups[j].min {
			return groups[i].min < groups[j].min
		}
		return groups[i].id < groups[j].id
	})
	// Observed reads in global sequence order (ops are already recorded
	// in sequence order).
	for _, op := range in.Ops {
		if op.Kind != history.OpRead || !committed[op.Owner] {
			continue
		}
		g := byGroup[groupOf(op.Owner)]
		g.observed = append(g.observed, op.Value)
	}
	return groups, nil
}

// replay executes the original programs serially in the given order
// against a copy of initial, returning each group's replayed reads. ok
// is false when some program hits a rollback statement — that order
// cannot explain an execution in which the group committed.
func replay(initial map[storage.Key]metric.Value, groups []*group, order []int) ([][]metric.Value, bool) {
	state := make(map[storage.Key]metric.Value, len(initial))
	for k, v := range initial {
		state[k] = v
	}
	reads := make([][]metric.Value, len(groups))
	for _, gi := range order {
		g := groups[gi]
		for _, op := range g.prog.Ops {
			cur := state[op.Key]
			if op.AbortIf != nil && op.AbortIf(cur) {
				return nil, false
			}
			switch op.Kind {
			case txn.OpRead:
				reads[gi] = append(reads[gi], cur)
			case txn.OpWrite:
				state[op.Key] = op.Update(cur)
			}
		}
	}
	return reads, true
}

// divergence sums the positional distance between the observed reads and
// the replayed ones. Partially committed groups (observed is a prefix of
// the full program's reads) compare the prefix; an observed surplus
// cannot be explained and reports Unexplained.
func divergence(observed, replayed []metric.Value) metric.Fuzz {
	if len(observed) > len(replayed) {
		return Unexplained
	}
	var total metric.Fuzz
	for i, v := range observed {
		total = total.Add(metric.Distance(v, replayed[i]))
	}
	return total
}

// extension builds one linear extension of the partial order, choosing
// among ready groups with pick (called with a non-empty ascending list).
func extension(indeg []int, succ [][]int, pick func(ready []int) int) []int {
	n := len(indeg)
	deg := append([]int(nil), indeg...)
	var ready []int
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		i := pick(ready)
		// Remove i from ready.
		for k, v := range ready {
			if v == i {
				ready = append(ready[:k], ready[k+1:]...)
				break
			}
		}
		order = append(order, i)
		for _, j := range succ[i] {
			deg[j]--
			if deg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	return order
}
