package oracle

import (
	"testing"

	"asynctp/internal/history"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// record builds a recorder-backed Input from a scripted run.
type script struct {
	rec      *history.Recorder
	groupOf  map[lock.Owner]history.Group
	programs map[history.Group]*txn.Program
	initial  map[storage.Key]metric.Value
}

func newScript(initial map[storage.Key]metric.Value) *script {
	return &script{
		rec:      history.NewRecorder(),
		groupOf:  make(map[lock.Owner]history.Group),
		programs: make(map[history.Group]*txn.Program),
		initial:  initial,
	}
}

func (s *script) begin(o lock.Owner, g history.Group, p *txn.Program) {
	s.groupOf[o] = g
	s.programs[g] = p
	s.rec.Begin(o, p.Name, p.Class())
}

func (s *script) input() Input {
	txns, ops := s.rec.Snapshot()
	return Input{
		Txns: txns, Ops: ops,
		GroupOf: s.groupOf, Programs: s.programs, Initial: s.initial,
	}
}

func check(t *testing.T, in Input, cfg Config) *Report {
	t.Helper()
	rep, err := Check(in, cfg)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	return rep
}

func TestSerializableRunHasZeroDivergence(t *testing.T) {
	transfer := txn.MustProgram("transfer", txn.AddOp("a", -100), txn.AddOp("b", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("a"), txn.ReadOp("b")).
		WithSpec(metric.Spec{Import: metric.LimitOf(0), Export: metric.Zero})

	s := newScript(map[storage.Key]metric.Value{"a": 500, "b": 500})
	s.begin(1, 1, transfer)
	s.rec.Write(1, "a", 500, 400, true)
	s.rec.Write(1, "b", 500, 600, true)
	s.rec.Commit(1)
	s.begin(2, 2, audit)
	s.rec.Read(2, "a", 400)
	s.rec.Read(2, "b", 600)
	s.rec.Commit(2)

	rep := check(t, s.input(), Config{})
	if !rep.OK || rep.MaxQueryDivergence != 0 {
		t.Fatalf("serial run flagged: %s", rep)
	}
	if !rep.Exhaustive || rep.Groups != 2 {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestFuzzyReadMeasuredExactly(t *testing.T) {
	transfer := txn.MustProgram("transfer", txn.AddOp("a", -100), txn.AddOp("b", 100))
	mkAudit := func(eps metric.Fuzz) *txn.Program {
		return txn.MustProgram("audit", txn.ReadOp("a"), txn.ReadOp("b")).
			WithSpec(metric.Spec{Import: metric.LimitOf(eps), Export: metric.Zero})
	}
	// The query reads a AFTER the debit but b BEFORE the credit: it
	// observes (400, 500) — 100 away from both serial orders.
	run := func(audit *txn.Program) Input {
		s := newScript(map[storage.Key]metric.Value{"a": 500, "b": 500})
		s.begin(1, 1, transfer)
		s.begin(2, 2, audit)
		s.rec.Write(1, "a", 500, 400, true)
		s.rec.Read(2, "a", 400)
		s.rec.Read(2, "b", 500)
		s.rec.Write(1, "b", 500, 600, true)
		s.rec.Commit(1)
		s.rec.Commit(2)
		return s.input()
	}

	rep := check(t, run(mkAudit(100)), Config{})
	if !rep.OK {
		t.Fatalf("ε=100 run should conform: %s", rep)
	}
	if rep.MaxQueryDivergence != 100 {
		t.Fatalf("divergence = %d, want 100", rep.MaxQueryDivergence)
	}

	rep = check(t, run(mkAudit(99)), Config{})
	if rep.OK {
		t.Fatalf("ε=99 run should be flagged: %s", rep)
	}
	viol := rep.Violations()
	if len(viol) != 1 || viol[0].Name != "audit" {
		t.Fatalf("violations = %+v, want the audit query", viol)
	}
}

func TestRollbackExcludesImpossibleOrders(t *testing.T) {
	// The guarded program rolls back when "a" is still 500 — so the only
	// serial order explaining its commit runs the debit first. In that
	// order the query's observed read of 500 is impossible, so the
	// impossible orders must not dilute the divergence.
	debit := txn.MustProgram("debit", txn.AddOp("a", -100))
	guarded := txn.MustProgram("guarded",
		txn.WithAbortIf(txn.ReadOp("a"), func(v metric.Value) bool { return v >= 500 }))

	s := newScript(map[storage.Key]metric.Value{"a": 500})
	s.begin(1, 1, debit)
	s.begin(2, 2, guarded)
	s.rec.Write(1, "a", 500, 400, true)
	s.rec.Read(2, "a", 400)
	s.rec.Commit(1)
	s.rec.Commit(2)

	rep := check(t, s.input(), Config{})
	if !rep.OK {
		t.Fatalf("run should conform: %s", rep)
	}
	// Two groups, overlapping intervals → 2 linear extensions, but only
	// the debit-first one survives replay.
	if rep.ValidOrders != 1 {
		t.Fatalf("ValidOrders = %d, want 1 (guarded-first order must be excluded)", rep.ValidOrders)
	}
}

func TestObservedSurplusIsUnexplained(t *testing.T) {
	// A group with more committed reads than its program could have
	// produced can never be explained by replay.
	audit := txn.MustProgram("audit", txn.ReadOp("a"))
	s := newScript(map[storage.Key]metric.Value{"a": 1})
	s.begin(1, 1, audit)
	s.rec.Read(1, "a", 1)
	s.rec.Read(1, "a", 1)
	s.rec.Commit(1)

	rep := check(t, s.input(), Config{})
	if rep.OK {
		t.Fatalf("surplus reads should be flagged: %s", rep)
	}
	if rep.Verdicts[0].Divergence != Unexplained {
		t.Fatalf("divergence = %d, want Unexplained", rep.Verdicts[0].Divergence)
	}
}

func TestPartialCommitComparesPrefix(t *testing.T) {
	// Only the first piece of the audit committed (a crash took the
	// rest): the observed single read compares against the replayed
	// prefix.
	audit := txn.MustProgram("audit", txn.ReadOp("a"), txn.ReadOp("b")).
		WithSpec(metric.Spec{Import: metric.LimitOf(0), Export: metric.Zero})
	s := newScript(map[storage.Key]metric.Value{"a": 7, "b": 9})
	s.begin(1, 1, audit)
	s.rec.Read(1, "a", 7)
	s.rec.Commit(1)

	rep := check(t, s.input(), Config{})
	if !rep.OK || rep.Verdicts[0].Divergence != 0 {
		t.Fatalf("prefix compare failed: %+v", rep.Verdicts[0])
	}
}

func TestPrecedenceRespectsIntervals(t *testing.T) {
	// T1 finishes entirely before T2 starts: the only admissible serial
	// order is T1;T2, so a query observing T1's effects conforms even
	// though the reverse order would diverge.
	transfer := txn.MustProgram("transfer", txn.AddOp("a", -100), txn.AddOp("b", 100))
	audit := txn.MustProgram("audit", txn.ReadOp("a"), txn.ReadOp("b")).
		WithSpec(metric.Spec{Import: metric.LimitOf(0), Export: metric.Zero})

	s := newScript(map[storage.Key]metric.Value{"a": 500, "b": 500})
	s.begin(1, 1, transfer)
	s.rec.Write(1, "a", 500, 400, true)
	s.rec.Write(1, "b", 500, 600, true)
	s.rec.Commit(1)
	s.begin(2, 2, audit)
	s.rec.Read(2, "a", 400)
	s.rec.Read(2, "b", 600)
	s.rec.Commit(2)

	rep := check(t, s.input(), Config{})
	if rep.Orders != 1 {
		t.Fatalf("Orders = %d, want exactly 1 (interval precedence)", rep.Orders)
	}
	if !rep.OK {
		t.Fatalf("run should conform: %s", rep)
	}
}

func TestBudgetedEnumerationIsDeterministic(t *testing.T) {
	// Seven mutually concurrent groups → 5040 extensions, beyond the
	// tiny budget; the fallback sample must be deterministic per seed.
	progs := make([]*txn.Program, 7)
	s := newScript(map[storage.Key]metric.Value{"k": 0})
	for i := range progs {
		progs[i] = txn.MustProgram("inc", txn.AddOp("k", 1), txn.AddOp("k", 1))
	}
	// Every group's first write precedes every group's second write, so
	// all execution intervals overlap pairwise: no precedence at all.
	for i := range progs {
		o := lock.Owner(i + 1)
		s.begin(o, history.Group(i+1), progs[i])
		s.rec.Write(o, "k", metric.Value(i), metric.Value(i+1), true)
	}
	for i := range progs {
		o := lock.Owner(i + 1)
		s.rec.Write(o, "k", metric.Value(7+i), metric.Value(8+i), true)
	}
	// One query observing an intermediate sum keeps divergence > 0 so
	// the early-exit cannot kick in.
	audit := txn.MustProgram("audit", txn.ReadOp("k")).
		WithSpec(metric.Spec{Import: metric.LimitOf(10), Export: metric.Zero})
	s.begin(100, 100, audit)
	s.rec.Read(100, "k", 3)
	for i := range progs {
		s.rec.Commit(lock.Owner(i + 1))
	}
	s.rec.Commit(100)

	cfg := Config{MaxOrders: 50, RandomOrders: 16, Seed: 42}
	first := check(t, s.input(), cfg)
	if first.Exhaustive {
		t.Fatalf("expected budget exhaustion with MaxOrders=50")
	}
	for i := 0; i < 4; i++ {
		rep := check(t, s.input(), cfg)
		if rep.Orders != first.Orders || rep.MaxQueryDivergence != first.MaxQueryDivergence || rep.OK != first.OK {
			t.Fatalf("run %d disagrees: %s vs %s", i, rep, first)
		}
	}
}

func TestMissingProgramErrors(t *testing.T) {
	s := newScript(nil)
	s.rec.Begin(1, "anon", txn.Update)
	s.rec.Write(1, "a", 0, 1, false)
	s.rec.Commit(1)
	in := s.input()
	in.Programs = nil
	if _, err := Check(in, Config{}); err == nil {
		t.Fatal("expected error for committed group without program")
	}
}
