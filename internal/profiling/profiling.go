// Package profiling wires the standard pprof profiles into the bench
// CLIs. Each command exposes -cpuprofile, -memprofile, and -mutexprofile
// flags; Start begins collection and the returned stop function writes
// whatever was requested. Empty paths disable the corresponding profile
// at zero cost, so the flags are always safe to plumb through.
package profiling

import (
	"flag"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags holds the three profile destinations.
type Flags struct {
	CPU   string
	Mem   string
	Mutex string
}

// Register adds the standard -cpuprofile/-memprofile/-mutexprofile flags
// to fs and returns the struct they populate.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.CPU, "cpuprofile", "", "write CPU profile to file")
	fs.StringVar(&f.Mem, "memprofile", "", "write heap profile to file")
	fs.StringVar(&f.Mutex, "mutexprofile", "", "write mutex-contention profile to file")
	return f
}

// mutexFraction is the sampling rate handed to SetMutexProfileFraction
// while a mutex profile is requested: 1-in-5 contention events.
const mutexFraction = 5

// Start begins the requested profiles. The returned stop function
// finishes the CPU profile and writes the heap and mutex profiles; call
// it exactly once, after the measured work.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuF *os.File
	if f.CPU != "" {
		cpuF, err = os.Create(f.CPU)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	if f.Mutex != "" {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return err
			}
		}
		if f.Mutex != "" {
			out, err := os.Create(f.Mutex)
			if err != nil {
				return err
			}
			defer out.Close()
			if err := pprof.Lookup("mutex").WriteTo(out, 0); err != nil {
				return err
			}
		}
		if f.Mem != "" {
			out, err := os.Create(f.Mem)
			if err != nil {
				return err
			}
			defer out.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(out); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
