package queue

import (
	"context"
	"fmt"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// startRouters wires both managers' inboxes to Handle and registers
// cleanup, mirroring newPair's plumbing for hand-built pairs.
func startRouters(t *testing.T, p *pair, nyInbox, laInbox <-chan simnet.Message) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	route := func(inbox <-chan simnet.Message, m *Manager) {
		defer p.routerWG.Done()
		for {
			select {
			case msg := <-inbox:
				m.Handle(msg)
			case <-ctx.Done():
				return
			}
		}
	}
	p.routerWG.Add(2)
	go route(nyInbox, p.ny)
	go route(laInbox, p.la)
	t.Cleanup(func() {
		p.ny.Close()
		p.la.Close()
		cancel()
		p.routerWG.Wait()
		p.net.Close()
	})
}

// newPairOpts is newPair with per-manager options (both sides get the
// same options).
func newPairOpts(t *testing.T, netOpts []simnet.Option, mgrOpts ...Option) *pair {
	t.Helper()
	net := simnet.New(netOpts...)
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{
		net: net,
		ny:  NewManager("NY", net, 20*time.Millisecond, mgrOpts...),
		la:  NewManager("LA", net, 20*time.Millisecond, mgrOpts...),
	}
	startRouters(t, p, nyInbox, laInbox)
	return p
}

// TestBatchCoalescesFrames proves the wire win: N messages committed
// together cross the network as ~N/maxBatch frames, not N — and the
// acks come back cumulatively, not one frame per message.
func TestBatchCoalescesFrames(t *testing.T) {
	const n = 64
	p := newPairOpts(t, nil, WithMaxBatch(64), WithFlushDelay(time.Millisecond))
	buf := p.ny.Buffer()
	for i := 0; i < n; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	got := map[int]bool{}
	for len(got) < n {
		b, err := p.la.DequeueBatch(ctx, "q", n)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range b.Deliveries {
			v := d.Msg.Payload.(int)
			if got[v] {
				t.Fatalf("payload %d delivered twice", v)
			}
			got[v] = true
		}
		b.Ack()
	}
	// Wait for the cumulative ack to drain NY's outbox.
	deadline := time.Now().Add(5 * time.Second)
	for p.ny.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox stuck at %d", p.ny.OutboxLen())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := p.net.Stats()
	// 64 messages + their acks in <= a handful of frames (1 data frame +
	// 1..2 ack frames + maybe a retransmission); far below the legacy
	// 64 data + 64 ack frames.
	if st.Sent > 16 {
		t.Errorf("frames sent = %d, want <= 16 for %d messages (batching broken)", st.Sent, n)
	}
	if st.Payloads < n {
		t.Errorf("payloads delivered = %d, want >= %d", st.Payloads, n)
	}
}

// TestLostBatchFrameRedeliveredExactlyOnce cuts the link so the first
// batch frame dies in flight; retransmission must redeliver every
// message exactly once after the link heals (satellite: batch-fault).
func TestLostBatchFrameRedeliveredExactlyOnce(t *testing.T) {
	p := newPairOpts(t, nil, WithFlushDelay(0))
	p.net.SetPartitioned("NY", "LA", true)
	const n = 5
	buf := p.ny.Buffer()
	for i := 0; i < n; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf) // frame dropped at the partition
	if p.ny.OutboxLen() != n {
		t.Fatalf("outbox = %d, want %d durable after lost frame", p.ny.OutboxLen(), n)
	}
	time.Sleep(30 * time.Millisecond)
	p.net.SetPartitioned("NY", "LA", false)
	ctx := ctxT(t)
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		d, err := p.la.Dequeue(ctx, "q")
		if err != nil {
			t.Fatal(err)
		}
		v := d.Msg.Payload.(int)
		if got[v] {
			t.Fatalf("payload %d delivered twice after retransmit", v)
		}
		got[v] = true
		d.Ack()
	}
	// No duplicates sneak in afterwards.
	time.Sleep(60 * time.Millisecond)
	if depth := p.la.Depth("q"); depth != 0 {
		t.Errorf("depth = %d after drain, want 0", depth)
	}
}

// TestPartialAckLeavesUnackedInOutbox acks a strict subset of a batch
// and checks exactly the unacked IDs stay durable for retransmission
// (satellite: batch-fault).
func TestPartialAckLeavesUnackedInOutbox(t *testing.T) {
	p := newPairOpts(t, nil, WithFlushDelay(time.Hour)) // never auto-flush
	buf := p.ny.Buffer()
	for i := 0; i < 3; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf)
	p.ny.mu.Lock()
	if len(p.ny.outbox) != 3 {
		p.ny.mu.Unlock()
		t.Fatalf("outbox = %d, want 3", len(p.ny.outbox))
	}
	var acked []string
	var kept string
	for id := range p.ny.outbox {
		if len(acked) < 2 {
			acked = append(acked, id)
		} else {
			kept = id
		}
	}
	p.ny.mu.Unlock()
	// A cumulative ack frame for two of the three.
	p.ny.Handle(simnet.Message{
		From: "LA", To: "NY", Kind: KindAckBatch, Payload: AckFrame{IDs: acked},
	})
	p.ny.mu.Lock()
	defer p.ny.mu.Unlock()
	if len(p.ny.outbox) != 1 {
		t.Fatalf("outbox = %d after partial ack, want 1", len(p.ny.outbox))
	}
	if _, ok := p.ny.outbox[kept]; !ok {
		t.Errorf("surviving outbox entry is not the unacked ID %q", kept)
	}
}

// TestWatermarkBoundsDedupMemory drives a long in-order stream and
// checks the dedup state stays a bare watermark (no per-message
// entries); an out-of-order arrival parks in the sparse set and is
// retired the moment the gap fills (satellite: bounded dedup).
func TestWatermarkBoundsDedupMemory(t *testing.T) {
	la := NewManager("LA", simnet.New(), time.Hour)
	defer la.Close()
	mk := func(seq uint64) Msg {
		return Msg{
			ID:    fmt.Sprintf("NY>LA-%d", seq),
			Seq:   seq,
			From:  "NY",
			Queue: "q",
		}
	}
	frame := func(seqs ...uint64) simnet.Message {
		var msgs []Msg
		for _, s := range seqs {
			msgs = append(msgs, mk(s))
		}
		return simnet.Message{From: "NY", To: "LA", Kind: KindEnqueueBatch, Payload: BatchFrame{Msgs: msgs}}
	}
	// 1..500 in order: watermark advances, sparse stays empty.
	for s := uint64(1); s <= 500; s++ {
		la.Handle(frame(s))
	}
	if got := la.DedupPrefix("NY"); got != 500 {
		t.Fatalf("prefix = %d, want 500", got)
	}
	if got := la.DedupSparseLen("NY"); got != 0 {
		t.Fatalf("sparse = %d after in-order stream, want 0", got)
	}
	// A gap: 502 and 503 park out of order.
	la.Handle(frame(502, 503))
	if got := la.DedupSparseLen("NY"); got != 2 {
		t.Fatalf("sparse = %d with gap open, want 2", got)
	}
	// The gap fills: watermark jumps, sparse drains.
	la.Handle(frame(501))
	if got := la.DedupPrefix("NY"); got != 503 {
		t.Errorf("prefix = %d after gap fill, want 503", got)
	}
	if got := la.DedupSparseLen("NY"); got != 0 {
		t.Errorf("sparse = %d after gap fill, want 0", got)
	}
	if got := la.Depth("q"); got != 503 {
		t.Errorf("depth = %d, want 503 exactly-once", got)
	}
}

// TestDedupSurvivesCrashRestore replays old frames against a restored
// manager: the snapshotted watermark must keep absorbing them
// (satellite: dedup across crash/restore).
func TestDedupSurvivesCrashRestore(t *testing.T) {
	net := simnet.New()
	la := NewManager("LA", net, time.Hour)
	defer la.Close()
	frame := simnet.Message{
		From: "NY", To: "LA", Kind: KindEnqueueBatch,
		Payload: BatchFrame{Msgs: []Msg{
			{ID: "NY>LA-1", Seq: 1, From: "NY", Queue: "q", Payload: "a"},
			{ID: "NY>LA-2", Seq: 2, From: "NY", Queue: "q", Payload: "b"},
		}},
	}
	la.Handle(frame)
	snap := la.Snapshot()
	if len(snap.Seen["NY"].Sparse) != 0 || snap.Seen["NY"].Prefix != 2 {
		t.Fatalf("snapshot watermark = %+v, want prefix 2 / empty sparse", snap.Seen["NY"])
	}
	// The crashed site's replacement restores the durable image, then the
	// sender (which never saw an ack) retransmits the same frame.
	la2 := NewManager("LA2", net, time.Hour)
	defer la2.Close()
	la2.Restore(snap)
	la2.Handle(frame)
	if got := la2.Depth("q"); got != 2 {
		t.Errorf("depth = %d after replayed frame, want 2 (dedup across restore)", got)
	}
	if got := la2.DedupPrefix("NY"); got != 2 {
		t.Errorf("prefix = %d, want 2", got)
	}
}

// TestAdaptiveBackoffCapsResends points a message at a partitioned
// destination and counts transmission attempts: exponential backoff
// must keep them logarithmic in the outage, not one per tick.
func TestAdaptiveBackoffCapsResends(t *testing.T) {
	p := newPairOpts(t, nil, WithFlushDelay(0))
	p.net.SetPartitioned("NY", "LA", true)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", "stuck")
	p.ny.CommitSend(buf)
	// 20 retransmit intervals pass; a tick-based resender would attempt
	// ~20 times. Backoff doubles 20ms→40→80→160→320 (maxBackoff), so at
	// most ~7 attempts fit in 400ms, plus slack for timing noise.
	time.Sleep(400 * time.Millisecond)
	p.ny.mu.Lock()
	attempts := 0
	for _, om := range p.ny.outbox {
		attempts = om.attempts
	}
	p.ny.mu.Unlock()
	if attempts == 0 {
		t.Fatal("no retransmission attempts at all")
	}
	if attempts > 10 {
		t.Errorf("attempts = %d over 20 intervals, want backoff-bounded (<= 10)", attempts)
	}
	// And the message still arrives after the partition heals.
	p.net.SetPartitioned("NY", "LA", false)
	d, err := p.la.Dequeue(ctxT(t), "q")
	if err != nil {
		t.Fatal(err)
	}
	d.Ack()
}

// TestRetransmitSoakNotQuadratic pushes 10k messages through a healthy
// link and checks the wire cost stayed near-linear in frames: the
// legacy transport resent the whole outbox per CommitSend, which on
// this shape goes quadratic in payload-sends.
func TestRetransmitSoakNotQuadratic(t *testing.T) {
	const n = 10000
	p := newPairOpts(t, nil, WithMaxBatch(128), WithFlushDelay(200*time.Microsecond))
	go func() {
		for i := 0; i < n; i++ {
			buf := p.ny.Buffer()
			buf.Enqueue("LA", "q", i)
			p.ny.CommitSend(buf)
		}
	}()
	ctx := ctxT(t)
	seen := 0
	for seen < n {
		b, err := p.la.DequeueBatch(ctx, "q", 512)
		if err != nil {
			t.Fatal(err)
		}
		seen += b.Len()
		b.Ack()
	}
	deadline := time.Now().Add(10 * time.Second)
	for p.ny.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox stuck at %d", p.ny.OutboxLen())
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := p.net.Stats()
	// Every payload delivered exactly once...
	if st.Payloads < n {
		t.Fatalf("payloads = %d, want >= %d", st.Payloads, n)
	}
	// ...in a near-linear number of frames. The legacy full-outbox
	// resend sends O(n * outbox-depth) payloads; this bound fails it.
	if st.Sent > 2*n {
		t.Errorf("frames = %d for %d messages, wire cost not linear", st.Sent, n)
	}
}

// TestPerQueueWakeupIsolation parks a waiter on an idle queue and
// floods a busy one: the idle waiter's wakeup channel must survive
// untouched — deliveries wake only their own queue (satellite:
// per-queue wakeups).
func TestPerQueueWakeupIsolation(t *testing.T) {
	la := NewManager("LA", simnet.New(), time.Hour)
	defer la.Close()
	ctx := ctxT(t)
	started := make(chan struct{})
	go func() {
		close(started)
		// Blocks until cancel: "idle" never gets traffic.
		_, _ = la.Dequeue(ctx, "idle")
	}()
	<-started
	// Wait until the waiter has registered its wakeup channel.
	deadline := time.Now().Add(2 * time.Second)
	for {
		la.mu.Lock()
		_, registered := la.notify["idle"]
		la.mu.Unlock()
		if registered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle waiter never registered")
		}
		time.Sleep(time.Millisecond)
	}
	la.mu.Lock()
	idleCh := la.notify["idle"]
	la.mu.Unlock()
	// Flood the busy queue.
	for s := uint64(1); s <= 100; s++ {
		la.Handle(simnet.Message{
			From: "NY", To: "LA", Kind: KindEnqueueBatch,
			Payload: BatchFrame{Msgs: []Msg{{
				ID: fmt.Sprintf("NY>LA-%d", s), Seq: s, From: "NY", Queue: "busy",
			}}},
		})
	}
	la.mu.Lock()
	stillThere := la.notify["idle"] == idleCh
	la.mu.Unlock()
	if !stillThere {
		t.Error("busy-queue traffic disturbed the idle queue's waiter (broadcast wakeup?)")
	}
	select {
	case <-idleCh:
		t.Error("idle waiter was woken by busy-queue traffic")
	default:
	}
}

// TestFlushCrashReplaysFromOutbox simulates fault.PointPreBatchFlush at
// the queue layer: the hook eats the first flush (volatile coalescing
// buffer lost), but the messages are already durable in the outbox and
// the retransmitter replays them — exactly once after dedup (satellite:
// batch-fault, crash mid-flush).
func TestFlushCrashReplaysFromOutbox(t *testing.T) {
	fired := false
	hook := func() bool {
		if fired {
			return false
		}
		fired = true
		return true
	}
	net := simnet.New()
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{
		net: net,
		ny:  NewManager("NY", net, 20*time.Millisecond, WithFlushDelay(0), WithFlushCrash(hook)),
		la:  NewManager("LA", net, 20*time.Millisecond),
	}
	startRouters(t, p, nyInbox, laInbox)

	const n = 3
	buf := p.ny.Buffer()
	for i := 0; i < n; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf) // flush crashes: nothing reaches the wire
	if !fired {
		t.Fatal("flush-crash hook never consulted")
	}
	if got := p.ny.OutboxLen(); got != n {
		t.Fatalf("outbox = %d after crashed flush, want %d (durability)", got, n)
	}
	// Retransmission replays the staged batch from the durable outbox.
	ctx := ctxT(t)
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		d, err := p.la.Dequeue(ctx, "q")
		if err != nil {
			t.Fatal(err)
		}
		v := d.Msg.Payload.(int)
		if got[v] {
			t.Fatalf("payload %d delivered twice", v)
		}
		got[v] = true
		d.Ack()
	}
}

// TestAckPiggybacksOnReverseTraffic checks the piggyback path: when the
// receiver has reverse data to send, its acks ride the data frame
// instead of paying their own frame.
func TestAckPiggybacksOnReverseTraffic(t *testing.T) {
	p := newPairOpts(t, nil, WithFlushDelay(5*time.Millisecond))
	ctx := ctxT(t)
	// NY -> LA data.
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", "ping")
	p.ny.CommitSend(buf)
	d, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	d.Ack()
	// LA immediately has reverse traffic: the pending ack for "ping"
	// must ride this frame.
	buf = p.la.Buffer()
	buf.Enqueue("NY", "q", "pong")
	p.la.CommitSend(buf)
	d, err = p.ny.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	d.Ack()
	deadline := time.Now().Add(5 * time.Second)
	for p.ny.OutboxLen()+p.la.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outboxes stuck: ny=%d la=%d", p.ny.OutboxLen(), p.la.OutboxLen())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestDequeueBatchReturnsUpToMax checks batch dequeue caps and order.
func TestDequeueBatchReturnsUpToMax(t *testing.T) {
	p := newPairOpts(t, nil, WithFlushDelay(0))
	buf := p.ny.Buffer()
	for i := 0; i < 10; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	deadline := time.Now().Add(5 * time.Second)
	for p.la.Depth("q") < 10 {
		if time.Now().After(deadline) {
			t.Fatalf("depth = %d, want 10", p.la.Depth("q"))
		}
		time.Sleep(2 * time.Millisecond)
	}
	b, err := p.la.DequeueBatch(ctx, "q", 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 4 {
		t.Fatalf("batch len = %d, want 4", b.Len())
	}
	for i, d := range b.Deliveries {
		if d.Msg.Payload.(int) != i {
			t.Errorf("delivery %d = %v, want %d (order)", i, d.Msg.Payload, i)
		}
	}
	// Nack restores front-of-queue order.
	b.Nack()
	b2, err := p.la.DequeueBatch(ctx, "q", 10)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Len() != 10 {
		t.Fatalf("batch len = %d, want 10 after nack", b2.Len())
	}
	for i, d := range b2.Deliveries {
		if d.Msg.Payload.(int) != i {
			t.Errorf("post-nack delivery %d = %v, want %d", i, d.Msg.Payload, i)
		}
	}
	b2.Ack()
}

// TestLegacyWireInterop checks the compatibility claim: a legacy-wire
// sender delivers to a batched receiver and vice versa (every endpoint
// accepts both dialects).
func TestLegacyWireInterop(t *testing.T) {
	net := simnet.New()
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{
		net: net,
		ny:  NewManager("NY", net, 20*time.Millisecond, WithLegacyWire()),
		la:  NewManager("LA", net, 20*time.Millisecond), // batched
	}
	startRouters(t, p, nyInbox, laInbox)
	ctx := ctxT(t)

	// legacy -> batched
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", "old-to-new")
	p.ny.CommitSend(buf)
	d, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d.Msg.Payload.(string) != "old-to-new" {
		t.Errorf("payload = %v", d.Msg.Payload)
	}
	d.Ack()

	// batched -> legacy
	buf = p.la.Buffer()
	buf.Enqueue("NY", "q", "new-to-old")
	p.la.CommitSend(buf)
	d, err = p.ny.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d.Msg.Payload.(string) != "new-to-old" {
		t.Errorf("payload = %v", d.Msg.Payload)
	}
	d.Ack()

	deadline := time.Now().Add(5 * time.Second)
	for p.ny.OutboxLen()+p.la.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outboxes stuck: ny=%d la=%d", p.ny.OutboxLen(), p.la.OutboxLen())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestWakeHasNoAllocWhenNoWaiter pins the cost of the per-queue wakeup
// on the hot admit path: with no waiter parked, waking is a map lookup,
// zero allocations (satellite: per-queue wakeups).
func TestWakeHasNoAllocWhenNoWaiter(t *testing.T) {
	m := NewManager("LA", simnet.New(), time.Hour)
	defer m.Close()
	allocs := testing.AllocsPerRun(1000, func() {
		m.mu.Lock()
		m.wakeLocked("nobody-waiting")
		m.mu.Unlock()
	})
	if allocs > 0 {
		t.Errorf("wakeLocked allocs = %.1f, want 0", allocs)
	}
}
