// Package queue implements recoverable queues: the transactional,
// durable, inter-site channels that let chopped pieces of a distributed
// transaction commit asynchronously without a commit protocol
// (Section 4, after Bernstein-Hsu-Mann).
//
// Semantics reproduced from the paper:
//
//   - Messages staged by a transaction become deliverable only when the
//     sending transaction commits (CommitSend); an aborted sender
//     delivers nothing (the buffer is simply dropped).
//   - A committed message survives site and link failures: it sits in a
//     durable outbox and is retransmitted until the destination
//     acknowledges it; receivers deduplicate by per-sender sequence
//     number.
//   - A delivered message must be consumed by a transaction that
//     eventually commits: Dequeue hands out a Delivery that the consumer
//     Acks on commit or Nacks on abort, which puts the message back.
//   - Crash recovery (Snapshot/Restore) returns in-flight deliveries to
//     the queue — at-least-once consumption, which is exactly what makes
//     resubmit-until-commit of rollback-safe pieces sound.
//
// Transport: the endpoint is batch-first. Committed sends coalesce per
// destination (size- and delay-bounded) into a single queue.enq.batch
// frame; receivers acknowledge a whole frame with one cumulative
// queue.ack.batch and piggyback pending acks on outgoing data frames.
// Unacknowledged messages are retransmitted per-message on a deadline
// with exponential backoff (batched by destination when due), instead
// of re-sending the entire outbox every tick. WithLegacyWire restores
// the pre-batching transport — one frame per message, one ack per
// frame, full-outbox retransmission — as an A/B baseline for distbench.
package queue

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"asynctp/internal/simnet"
	"asynctp/internal/tracectx"
)

// Msg is one queued message.
type Msg struct {
	// ID is globally unique (site- and destination-qualified); acks and
	// the outbox are keyed on it.
	ID string
	// Seq is the per-(sender, destination) sequence number, 1-based and
	// gapless in commit order. Receivers dedup on (From, Seq) with a
	// contiguous-prefix watermark, which is what lets them retire old
	// entries instead of remembering every ID forever.
	Seq uint64
	// From is the sending site.
	From simnet.SiteID
	// Queue names the destination queue at the receiving site.
	Queue string
	// Payload is the application content.
	Payload any
	// Ctx is the distributed trace context stamped by the sender at
	// stage time (zero when tracing is off). It rides the wire inside
	// BatchFrame/legacy frames like any other Msg field, which is what
	// lets span trees survive the TCP hop.
	Ctx tracectx.Ctx
	// ArrivedAt is the receiver's wall clock (UnixNano) at first
	// admission, stamped locally on delivery — never by the sender.
	// With Ctx.SentAt it bounds the wire+queue time of the hop. It is
	// volatile receiver state: retransmitted copies of an admitted
	// message never overwrite it (dedup drops them first).
	ArrivedAt int64
}

// Message kinds on the wire.
const (
	// KindEnqueue carries a single Msg to the destination queue (legacy
	// wire format; still accepted by every endpoint).
	KindEnqueue = "queue.enq"
	// KindAck acknowledges a single received Msg ID back to the sender
	// (legacy wire format).
	KindAck = "queue.ack"
	// KindEnqueueBatch carries a BatchFrame: the coalesced committed
	// sends for one destination plus piggybacked acks.
	KindEnqueueBatch = "queue.enq.batch"
	// KindAckBatch carries an AckFrame: one cumulative acknowledgement
	// of many received Msg IDs.
	KindAckBatch = "queue.ack.batch"
)

// IsQueueKind reports whether a message kind belongs to the queue layer
// (site dispatch loops route these to Manager.Handle).
func IsQueueKind(kind string) bool {
	switch kind {
	case KindEnqueue, KindAck, KindEnqueueBatch, KindAckBatch:
		return true
	}
	return false
}

// IsEnqueueKind reports whether the kind carries queue messages (as
// opposed to pure acknowledgements); sites persist their durable queue
// image after handling one.
func IsEnqueueKind(kind string) bool {
	return kind == KindEnqueue || kind == KindEnqueueBatch
}

// BatchFrame is the wire payload of one batched transfer: every
// committed message coalesced for one destination since the last flush,
// plus piggybacked cumulative acks for traffic in the opposite
// direction. The network treats the frame as a unit (one loss/latency
// draw — see simnet.Frame), so a frame is lost or delivered whole.
type BatchFrame struct {
	Msgs []Msg
	// Acks acknowledges messages previously received FROM the frame's
	// destination — the piggyback path that makes steady bidirectional
	// piece traffic ack itself for free.
	Acks []string
}

// FrameLen implements simnet.Frame.
func (f BatchFrame) FrameLen() int {
	if n := len(f.Msgs); n > 0 {
		return n
	}
	return 1
}

// AckFrame is the wire payload of a standalone cumulative
// acknowledgement (sent when there is no reverse traffic to piggyback
// on).
type AckFrame struct {
	IDs []string
}

// outMsg is a committed, not-yet-acknowledged outgoing message plus its
// volatile retransmission state.
type outMsg struct {
	msg Msg
	to  simnet.SiteID
	// nextSend is the retransmission deadline: the message is re-sent
	// when it passes without an ack.
	nextSend time.Time
	// backoff is the current deadline increment; it doubles per attempt
	// up to the manager's cap, so a long-unreachable destination costs
	// O(log) retransmissions instead of one per tick.
	backoff time.Duration
	// attempts counts (re)transmissions after the first flush.
	attempts int
}

// TxBuffer stages messages inside a transaction. It is not safe for
// concurrent use; each transaction owns one buffer.
type TxBuffer struct {
	staged []outMsg
}

// Enqueue stages payload for the named queue at site to. Nothing is
// visible until the owning transaction commits the buffer.
func (b *TxBuffer) Enqueue(to simnet.SiteID, queueName string, payload any) {
	b.staged = append(b.staged, outMsg{to: to, msg: Msg{Queue: queueName, Payload: payload}})
}

// EnqueueCtx stages payload with a distributed trace context attached.
// A zero ctx is identical to Enqueue.
func (b *TxBuffer) EnqueueCtx(to simnet.SiteID, queueName string, payload any, ctx tracectx.Ctx) {
	b.staged = append(b.staged, outMsg{to: to, msg: Msg{Queue: queueName, Payload: payload, Ctx: ctx}})
}

// Len returns the number of staged messages.
func (b *TxBuffer) Len() int { return len(b.staged) }

// seenSet is the per-sender dedup state: a contiguous-prefix watermark
// plus a sparse set for out-of-order arrivals beyond it. Because a
// sender numbers each destination's messages gaplessly and retransmits
// until acked, every gap eventually fills, the prefix advances, and the
// sparse set drains — memory stays bounded by the in-flight window, not
// by the lifetime message count.
type seenSet struct {
	prefix uint64
	sparse map[uint64]bool
}

// has reports whether seq was already delivered here.
func (s *seenSet) has(seq uint64) bool {
	if seq == 0 {
		return false
	}
	return seq <= s.prefix || s.sparse[seq]
}

// add records seq, advancing the watermark over any contiguous run.
func (s *seenSet) add(seq uint64) {
	if seq == 0 || s.has(seq) {
		return
	}
	if seq == s.prefix+1 {
		s.prefix++
		for s.sparse[s.prefix+1] {
			delete(s.sparse, s.prefix+1)
			s.prefix++
		}
		return
	}
	if s.sparse == nil {
		s.sparse = make(map[uint64]bool)
	}
	s.sparse[seq] = true
}

// Observer receives transport events from a Manager. Implementations
// must be fast and must not call back into the manager: Sent and
// Delivered run with the manager mutex held. A nil observer (the
// default) costs one nil check per event site.
type Observer interface {
	// Sent fires when a message commits into the durable outbox (its
	// sequence number and ID are final).
	Sent(to simnet.SiteID, msg Msg)
	// Flushed fires once per destination per batch flush, with the
	// number of coalesced messages and piggybacked acks.
	Flushed(to simnet.SiteID, msgs, acks int)
	// Retransmitted fires once per destination per retransmission round
	// with the number of re-sent messages.
	Retransmitted(to simnet.SiteID, msgs int)
	// Delivered fires on first (post-dedup) delivery of a message at
	// the receiving endpoint.
	Delivered(msg Msg)
}

// Option tunes a Manager.
type Option func(*Manager)

// WithObserver installs a transport observer (see Observer). Nil, the
// default, disables it.
func WithObserver(o Observer) Option {
	return func(m *Manager) { m.obs = o }
}

// WithMaxBatch caps the number of messages coalesced into one
// queue.enq.batch frame (default 64).
func WithMaxBatch(n int) Option {
	return func(m *Manager) {
		if n > 0 {
			m.maxBatch = n
		}
	}
}

// WithFlushDelay sets the coalescing window: committed sends and
// pending acks wait up to d for company before the buffer flushes
// (default 200µs). d <= 0 flushes synchronously on every commit and
// receipt — no added latency, no coalescing beyond what one CommitSend
// carries.
func WithFlushDelay(d time.Duration) Option {
	return func(m *Manager) { m.flushDelay = d }
}

// WithMaxBackoff caps the per-message retransmission backoff (default
// 16x the retransmit interval).
func WithMaxBackoff(d time.Duration) Option {
	return func(m *Manager) {
		if d > 0 {
			m.maxBackoff = d
		}
	}
}

// WithLegacyWire selects the pre-batching transport: one KindEnqueue
// frame per message, an immediate KindAck per receipt, and
// full-outbox retransmission every tick with no backoff. Kept as the
// measured baseline for the batched pipeline (cmd/distbench) and as a
// compatibility reference — every endpoint accepts both dialects.
func WithLegacyWire() Option {
	return func(m *Manager) { m.legacy = true }
}

// WithFlushCrash installs a fault-injection hook consulted once per
// batch flush, after the flushed messages are durable in the outbox but
// before any frame reaches the network (fault.PointPreBatchFlush). A
// true answer drops the flush on the floor — the volatile coalescing
// buffers are cleared, simulating a site that fail-stopped mid-flush —
// and the caller is expected to crash the site; recovery replays the
// staged messages from the durable outbox via retransmission.
func WithFlushCrash(hook func() bool) Option {
	return func(m *Manager) { m.flushCrash = hook }
}

// Manager is the per-site recoverable-queue endpoint.
type Manager struct {
	site simnet.SiteID
	net  simnet.Sender

	interval   time.Duration // base retransmit interval
	maxBatch   int
	flushDelay time.Duration
	maxBackoff time.Duration
	legacy     bool
	flushCrash func() bool
	persist    func(State) error // receive-side durability barrier (WithPersist)
	obs        Observer

	mu      sync.Mutex
	closed  bool
	nextSeq map[simnet.SiteID]uint64
	outbox  map[string]*outMsg // committed, unacked
	queues  map[string][]Msg   // deliverable, arrival order
	// inflight holds dequeued, not yet consumer-acked messages.
	inflight map[string]Msg
	// seen is the per-sender watermark dedup state.
	seen map[simnet.SiteID]*seenSet
	// notify holds one wakeup channel per queue with blocked Dequeue
	// waiters; closing it (and deleting the entry) wakes exactly that
	// queue's waiters, so done-queue consumers stop paying for pieces
	// traffic.
	notify map[string]chan struct{}
	// pendingOut is the per-destination coalescing buffer: IDs committed
	// to the outbox but not yet flushed into a first frame. Volatile —
	// a crash loses it and retransmission recovers from the outbox.
	pendingOut map[simnet.SiteID][]string
	// pendingAcks is the per-destination cumulative-ack buffer.
	pendingAcks map[simnet.SiteID][]string
	flushArmed  bool

	stop chan struct{}
	done chan struct{}
}

// NewManager builds the endpoint for site and starts the retransmitter.
// retransmitEvery is both the tick granularity and the initial
// per-message retransmission deadline. Close must be called to stop it.
func NewManager(site simnet.SiteID, net simnet.Sender, retransmitEvery time.Duration, opts ...Option) *Manager {
	if retransmitEvery <= 0 {
		retransmitEvery = 50 * time.Millisecond
	}
	m := &Manager{
		site:        site,
		net:         net,
		interval:    retransmitEvery,
		maxBatch:    64,
		flushDelay:  200 * time.Microsecond,
		nextSeq:     make(map[simnet.SiteID]uint64),
		outbox:      make(map[string]*outMsg),
		queues:      make(map[string][]Msg),
		inflight:    make(map[string]Msg),
		seen:        make(map[simnet.SiteID]*seenSet),
		notify:      make(map[string]chan struct{}),
		pendingOut:  make(map[simnet.SiteID][]string),
		pendingAcks: make(map[simnet.SiteID][]string),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.maxBackoff <= 0 {
		m.maxBackoff = 16 * m.interval
	}
	go m.retransmitLoop(retransmitEvery)
	return m
}

// Close stops the retransmitter and waits for it to exit.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		<-m.done
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}

// retransmitLoop periodically re-sends due unacked outbox messages.
func (m *Manager) retransmitLoop(every time.Duration) {
	defer close(m.done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if m.legacy {
				m.legacyTransmitOutbox()
			} else {
				m.retransmitDue()
			}
		case <-m.stop:
			return
		}
	}
}

// legacyTransmitOutbox is the pre-batching retransmitter: every unacked
// message, one frame each, every tick.
func (m *Manager) legacyTransmitOutbox() {
	m.mu.Lock()
	pending := make([]outMsg, 0, len(m.outbox))
	for _, om := range m.outbox {
		pending = append(pending, *om)
	}
	m.mu.Unlock()
	for _, om := range pending {
		// Errors are expected while partitioned/down; the tick retries.
		_ = m.net.Send(simnet.Message{
			From: m.site, To: om.to, Kind: KindEnqueue, Payload: om.msg,
		})
	}
}

// retransmitDue re-sends exactly the outbox messages whose deadline
// passed, coalesced per destination, and pushes their deadlines out
// with exponential backoff. An n-message soak therefore costs O(due)
// per tick, not O(n) — and a crashed destination converges to one
// batched resend per maxBackoff instead of hammering every tick.
func (m *Manager) retransmitDue() {
	now := time.Now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	byDest := make(map[simnet.SiteID][]Msg)
	for _, om := range m.outbox {
		if om.nextSend.After(now) {
			continue
		}
		om.attempts++
		om.backoff *= 2
		if om.backoff > m.maxBackoff {
			om.backoff = m.maxBackoff
		}
		om.nextSend = now.Add(om.backoff)
		byDest[om.to] = append(byDest[om.to], om.msg)
	}
	frames := make([]simnet.Message, 0, len(byDest))
	for to, msgs := range byDest {
		// Stable resend order (by sequence) keeps seeded runs reproducible
		// and helps the receiver's watermark advance contiguously.
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
		acks := m.pendingAcks[to]
		delete(m.pendingAcks, to)
		frames = append(frames, m.framesForLocked(to, msgs, acks)...)
	}
	obs := m.obs
	m.mu.Unlock()
	if obs != nil {
		for to, msgs := range byDest {
			obs.Retransmitted(to, len(msgs))
		}
	}
	for _, f := range frames {
		_ = m.net.Send(f)
	}
}

// framesForLocked chunks msgs (plus piggybacked acks on the first
// chunk) into wire frames for destination to. Callers hold m.mu.
func (m *Manager) framesForLocked(to simnet.SiteID, msgs []Msg, acks []string) []simnet.Message {
	var frames []simnet.Message
	for len(msgs) > 0 || len(acks) > 0 {
		if len(msgs) == 0 {
			frames = append(frames, simnet.Message{
				From: m.site, To: to, Kind: KindAckBatch, Payload: AckFrame{IDs: acks},
			})
			break
		}
		n := len(msgs)
		if n > m.maxBatch {
			n = m.maxBatch
		}
		frames = append(frames, simnet.Message{
			From: m.site, To: to, Kind: KindEnqueueBatch,
			Payload: BatchFrame{Msgs: msgs[:n:n], Acks: acks},
		})
		msgs = msgs[n:]
		acks = nil
	}
	return frames
}

// Buffer returns a fresh transactional staging buffer.
func (m *Manager) Buffer() *TxBuffer { return &TxBuffer{} }

// CommitSend makes the buffer's messages durable and deliverable: the
// moment the sending piece commits. The messages enter the outbox (they
// now survive crashes via Snapshot/Restore) and the per-destination
// coalescing buffer; the buffer flushes immediately when a destination
// reaches the batch cap (or the flush delay is zero), else after the
// coalescing window.
func (m *Manager) CommitSend(b *TxBuffer) {
	m.mu.Lock()
	now := time.Now()
	flushNow := m.flushDelay <= 0
	for _, om := range b.staged {
		m.nextSeq[om.to]++
		seq := m.nextSeq[om.to]
		om.msg.Seq = seq
		om.msg.ID = fmt.Sprintf("%s>%s-%d", m.site, om.to, seq)
		om.msg.From = m.site
		o := &outMsg{msg: om.msg, to: om.to, nextSend: now.Add(m.interval), backoff: m.interval}
		m.outbox[o.msg.ID] = o
		if m.obs != nil {
			m.obs.Sent(om.to, o.msg)
		}
		if m.legacy {
			continue
		}
		m.pendingOut[om.to] = append(m.pendingOut[om.to], o.msg.ID)
		if len(m.pendingOut[om.to]) >= m.maxBatch {
			flushNow = true
		}
	}
	if !m.legacy && !flushNow {
		m.armFlushLocked()
	}
	m.mu.Unlock()
	b.staged = nil
	if m.legacy {
		// Pre-batching behavior, preserved for the A/B baseline: every
		// commit re-sends the entire unacked outbox, one frame each.
		m.legacyTransmitOutbox()
		return
	}
	if flushNow {
		m.flush()
	}
}

// armFlushLocked schedules a flush after the coalescing window unless
// one is already pending. Callers hold m.mu.
func (m *Manager) armFlushLocked() {
	if m.flushArmed || m.closed {
		return
	}
	m.flushArmed = true
	time.AfterFunc(m.flushDelay, func() {
		m.mu.Lock()
		m.flushArmed = false
		m.mu.Unlock()
		m.flush()
	})
}

// flush drains the coalescing buffers into wire frames and sends them.
// In legacy mode it degenerates to one frame per pending message with
// immediate single acks.
func (m *Manager) flush() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	if m.flushCrash != nil &&
		(len(m.pendingOut) > 0 || len(m.pendingAcks) > 0) && m.flushCrash() {
		// Injected crash mid-flush: the volatile coalescing buffers die
		// with the site. The messages themselves stay durable in the
		// outbox; after Restore the retransmitter replays them.
		m.pendingOut = make(map[simnet.SiteID][]string)
		m.pendingAcks = make(map[simnet.SiteID][]string)
		m.mu.Unlock()
		return
	}
	var frames []simnet.Message
	type flushed struct {
		to         simnet.SiteID
		msgs, acks int
	}
	var report []flushed
	for to, ids := range m.pendingOut {
		msgs := make([]Msg, 0, len(ids))
		for _, id := range ids {
			if om, ok := m.outbox[id]; ok { // acked-before-flush entries skip
				msgs = append(msgs, om.msg)
			}
		}
		delete(m.pendingOut, to)
		acks := m.pendingAcks[to]
		delete(m.pendingAcks, to)
		frames = append(frames, m.framesForLocked(to, msgs, acks)...)
		if m.obs != nil {
			report = append(report, flushed{to: to, msgs: len(msgs), acks: len(acks)})
		}
	}
	for to, acks := range m.pendingAcks {
		delete(m.pendingAcks, to)
		frames = append(frames, simnet.Message{
			From: m.site, To: to, Kind: KindAckBatch, Payload: AckFrame{IDs: acks},
		})
		if m.obs != nil {
			report = append(report, flushed{to: to, msgs: 0, acks: len(acks)})
		}
	}
	obs := m.obs
	m.mu.Unlock()
	if obs != nil {
		for _, f := range report {
			obs.Flushed(f.to, f.msgs, f.acks)
		}
	}
	for _, f := range frames {
		// Errors are expected while partitioned/down; retransmit retries.
		_ = m.net.Send(f)
	}
}

// seqOf recovers a message's dedup sequence, falling back to the ID
// suffix for messages minted before the Seq field existed.
func seqOf(qm Msg) uint64 {
	if qm.Seq != 0 {
		return qm.Seq
	}
	if i := strings.LastIndexByte(qm.ID, '-'); i >= 0 {
		if n, err := strconv.ParseUint(qm.ID[i+1:], 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// admitLocked dedups and enqueues one received message, waking that
// queue's waiters on first delivery. Callers hold m.mu.
func (m *Manager) admitLocked(qm Msg) {
	ss := m.seen[qm.From]
	if ss == nil {
		ss = &seenSet{}
		m.seen[qm.From] = ss
	}
	seq := seqOf(qm)
	if ss.has(seq) {
		return
	}
	ss.add(seq)
	qm.ArrivedAt = time.Now().UnixNano()
	m.queues[qm.Queue] = append(m.queues[qm.Queue], qm)
	if m.obs != nil {
		m.obs.Delivered(qm)
	}
	m.wakeLocked(qm.Queue)
}

// Handle processes a network message addressed to this site; the site's
// dispatch loop routes Kind == queue.* here (see IsQueueKind). Unknown
// kinds are ignored.
func (m *Manager) Handle(msg simnet.Message) {
	switch msg.Kind {
	case KindEnqueue:
		qm, ok := msg.Payload.(Msg)
		if !ok {
			return
		}
		m.mu.Lock()
		m.admitLocked(qm)
		var snap State
		if m.persist != nil {
			snap = m.snapshotLocked()
		}
		m.mu.Unlock()
		if m.persist != nil {
			if err := m.persist(snap); err != nil {
				// Not durable: withhold the ack so the sender retransmits.
				return
			}
		}
		// Legacy dialect: always ack immediately and individually, even
		// duplicates — the first ack may have been lost.
		_ = m.net.Send(simnet.Message{
			From: m.site, To: msg.From, Kind: KindAck, Payload: qm.ID,
		})
	case KindEnqueueBatch:
		frame, ok := msg.Payload.(BatchFrame)
		if !ok {
			return
		}
		m.mu.Lock()
		for _, qm := range frame.Msgs {
			m.admitLocked(qm)
		}
		for _, id := range frame.Acks {
			delete(m.outbox, id)
		}
		var snap State
		if m.persist != nil && len(frame.Msgs) > 0 {
			snap = m.snapshotLocked()
		}
		m.mu.Unlock()
		if m.persist != nil && len(frame.Msgs) > 0 {
			// Durability barrier before the ack: the sender deletes its
			// outbox copy on ack, so the admitted messages must be in the
			// durable queue image first. On error no ack is staged and the
			// sender's retransmission redelivers (dedup absorbs it).
			if err := m.persist(snap); err != nil {
				return
			}
		}
		m.mu.Lock()
		// One cumulative ack covers the whole frame — duplicates
		// included, since the previous ack may have been lost. It rides
		// the next outgoing batch to msg.From if one is pending, else a
		// standalone ack frame after the coalescing window.
		if len(frame.Msgs) > 0 {
			ids := make([]string, len(frame.Msgs))
			for i, qm := range frame.Msgs {
				ids[i] = qm.ID
			}
			m.pendingAcks[msg.From] = append(m.pendingAcks[msg.From], ids...)
		}
		flushNow := m.flushDelay <= 0
		if !flushNow {
			m.armFlushLocked()
		}
		m.mu.Unlock()
		if flushNow {
			m.flush()
		}
	case KindAck:
		id, ok := msg.Payload.(string)
		if !ok {
			return
		}
		m.mu.Lock()
		delete(m.outbox, id)
		m.mu.Unlock()
	case KindAckBatch:
		frame, ok := msg.Payload.(AckFrame)
		if !ok {
			return
		}
		m.mu.Lock()
		for _, id := range frame.IDs {
			delete(m.outbox, id)
		}
		m.mu.Unlock()
	}
}

// Delivery is one dequeued message pending consumer commit.
type Delivery struct {
	Msg Msg
	mgr *Manager
	// settled guards double Ack/Nack.
	settled bool
}

// Ack marks the message consumed: the receiving transaction committed.
func (d *Delivery) Ack() {
	d.mgr.mu.Lock()
	defer d.mgr.mu.Unlock()
	if d.settled {
		return
	}
	d.settled = true
	delete(d.mgr.inflight, d.Msg.ID)
}

// Nack returns the message to the front of its queue: the receiving
// transaction aborted and the message remains deliverable.
func (d *Delivery) Nack() {
	d.mgr.mu.Lock()
	defer d.mgr.mu.Unlock()
	if d.settled {
		return
	}
	d.settled = true
	delete(d.mgr.inflight, d.Msg.ID)
	d.mgr.queues[d.Msg.Queue] = append([]Msg{d.Msg}, d.mgr.queues[d.Msg.Queue]...)
	d.mgr.wakeLocked(d.Msg.Queue)
}

// Batch is a group of deliveries dequeued together from one queue; the
// site worker pool drains activations in batches to amortize per-wakeup
// and per-persist costs. Ack and Nack settle every delivery in the
// group (Nack restores original front-of-queue order); individual
// deliveries may also be settled one by one.
type Batch struct {
	Deliveries []*Delivery
}

// Len returns the number of deliveries in the batch.
func (b *Batch) Len() int { return len(b.Deliveries) }

// Ack acks every unsettled delivery in the batch.
func (b *Batch) Ack() {
	for _, d := range b.Deliveries {
		d.Ack()
	}
}

// Nack returns every unsettled delivery to the queue, preserving their
// original order at the front.
func (b *Batch) Nack() {
	for i := len(b.Deliveries) - 1; i >= 0; i-- {
		b.Deliveries[i].Nack()
	}
}

// wakeLocked wakes the named queue's Dequeue waiters; callers hold m.mu.
func (m *Manager) wakeLocked(queueName string) {
	if ch, ok := m.notify[queueName]; ok {
		close(ch)
		delete(m.notify, queueName)
	}
}

// wakeAllLocked wakes every waiter (Restore); callers hold m.mu.
func (m *Manager) wakeAllLocked() {
	for q, ch := range m.notify {
		close(ch)
		delete(m.notify, q)
	}
}

// waitChanLocked returns the named queue's wakeup channel, creating it
// on first use. Callers hold m.mu.
func (m *Manager) waitChanLocked(queueName string) chan struct{} {
	ch, ok := m.notify[queueName]
	if !ok {
		ch = make(chan struct{})
		m.notify[queueName] = ch
	}
	return ch
}

// Dequeue blocks until a message is available on queueName and returns
// it as an in-flight Delivery.
func (m *Manager) Dequeue(ctx context.Context, queueName string) (*Delivery, error) {
	b, err := m.DequeueBatch(ctx, queueName, 1)
	if err != nil {
		return nil, err
	}
	return b.Deliveries[0], nil
}

// DequeueBatch blocks until at least one message is available on
// queueName, then returns up to max of them (in delivery order) as a
// Batch of in-flight Deliveries.
func (m *Manager) DequeueBatch(ctx context.Context, queueName string, max int) (*Batch, error) {
	if max < 1 {
		max = 1
	}
	for {
		m.mu.Lock()
		if q := m.queues[queueName]; len(q) > 0 {
			n := len(q)
			if n > max {
				n = max
			}
			batch := &Batch{Deliveries: make([]*Delivery, 0, n)}
			for i := 0; i < n; i++ {
				m.inflight[q[i].ID] = q[i]
				batch.Deliveries = append(batch.Deliveries, &Delivery{Msg: q[i], mgr: m})
			}
			m.queues[queueName] = q[n:]
			m.mu.Unlock()
			return batch, nil
		}
		wait := m.waitChanLocked(queueName)
		m.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Depth returns the number of deliverable messages on queueName.
func (m *Manager) Depth(queueName string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[queueName])
}

// OutboxLen returns the number of committed, unacknowledged messages.
func (m *Manager) OutboxLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.outbox)
}

// InflightLen returns the number of delivered-but-unacknowledged
// messages (handed to a consumer, neither Acked nor Nacked yet).
func (m *Manager) InflightLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.inflight)
}

// DedupPrefix returns the contiguous-prefix watermark for sender from:
// every sequence number at or below it has been delivered and retired
// from memory.
func (m *Manager) DedupPrefix(from simnet.SiteID) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ss := m.seen[from]; ss != nil {
		return ss.prefix
	}
	return 0
}

// DedupSparseLen returns the number of out-of-order dedup entries held
// for sender from — the only part of the dedup state that costs memory
// per entry. Tests bound it to prove long soaks don't leak.
func (m *Manager) DedupSparseLen(from simnet.SiteID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ss := m.seen[from]; ss != nil {
		return len(ss.sparse)
	}
	return 0
}

// State is the durable image of a Manager for crash simulation.
// Retransmission deadlines and the coalescing buffers are volatile and
// deliberately absent: recovery marks everything due immediately.
type State struct {
	NextSeq  map[simnet.SiteID]uint64
	Outbox   map[string]OutboxMsg
	Queues   map[string][]Msg
	Inflight map[string]Msg
	Seen     map[simnet.SiteID]SeenState
}

// OutboxMsg mirrors outMsg for the exported State.
type OutboxMsg struct {
	Msg Msg
	To  simnet.SiteID
}

// SeenState is the durable form of one sender's dedup watermark.
type SeenState struct {
	Prefix uint64
	Sparse []uint64
}

// Snapshot captures the durable state: committed outbox, deliverable
// queues, in-flight deliveries, and the dedup watermarks. Cost is
// proportional to live state — the watermark keeps the dedup component
// O(in-flight window) rather than O(messages ever received).
func (m *Manager) Snapshot() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked()
}

// Restore reloads a snapshot after a crash. In-flight deliveries whose
// consumers never committed return to the front of their queues
// (at-least-once); restored outbox messages are due for immediate
// retransmission on the next tick.
func (m *Manager) Restore(st State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	m.nextSeq = make(map[simnet.SiteID]uint64, len(st.NextSeq))
	for to, seq := range st.NextSeq {
		m.nextSeq[to] = seq
	}
	m.outbox = make(map[string]*outMsg, len(st.Outbox))
	for id, om := range st.Outbox {
		m.outbox[id] = &outMsg{msg: om.Msg, to: om.To, nextSend: now, backoff: m.interval}
	}
	m.queues = make(map[string][]Msg, len(st.Queues))
	for q, msgs := range st.Queues {
		m.queues[q] = append([]Msg(nil), msgs...)
	}
	for _, msg := range st.Inflight {
		m.queues[msg.Queue] = append([]Msg{msg}, m.queues[msg.Queue]...)
	}
	m.inflight = make(map[string]Msg)
	m.seen = make(map[simnet.SiteID]*seenSet, len(st.Seen))
	for from, snap := range st.Seen {
		ss := &seenSet{prefix: snap.Prefix}
		for _, seq := range snap.Sparse {
			ss.add(seq)
		}
		m.seen[from] = ss
	}
	// The coalescing buffers are volatile: whatever was pending either
	// made it to the wire or is replayed from the outbox.
	m.pendingOut = make(map[simnet.SiteID][]string)
	m.pendingAcks = make(map[simnet.SiteID][]string)
	m.wakeAllLocked()
}
