// Package queue implements recoverable queues: the transactional,
// durable, inter-site channels that let chopped pieces of a distributed
// transaction commit asynchronously without a commit protocol
// (Section 4, after Bernstein-Hsu-Mann).
//
// Semantics reproduced from the paper:
//
//   - Messages staged by a transaction become deliverable only when the
//     sending transaction commits (CommitSend); an aborted sender
//     delivers nothing (the buffer is simply dropped).
//   - A committed message survives site and link failures: it sits in a
//     durable outbox and is retransmitted until the destination
//     acknowledges it; receivers deduplicate by message ID.
//   - A delivered message must be consumed by a transaction that
//     eventually commits: Dequeue hands out a Delivery that the consumer
//     Acks on commit or Nacks on abort, which puts the message back.
//   - Crash recovery (Snapshot/Restore) returns in-flight deliveries to
//     the queue — at-least-once consumption, which is exactly what makes
//     resubmit-until-commit of rollback-safe pieces sound.
package queue

import (
	"context"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/simnet"
)

// Msg is one queued message.
type Msg struct {
	// ID is globally unique (site-qualified); receivers dedupe on it.
	ID string
	// From is the sending site.
	From simnet.SiteID
	// Queue names the destination queue at the receiving site.
	Queue string
	// Payload is the application content.
	Payload any
}

// Message kinds on the wire.
const (
	// KindEnqueue carries a Msg to the destination queue.
	KindEnqueue = "queue.enq"
	// KindAck acknowledges a received Msg ID back to the sender.
	KindAck = "queue.ack"
)

// outMsg is a committed, not-yet-acknowledged outgoing message.
type outMsg struct {
	msg Msg
	to  simnet.SiteID
}

// TxBuffer stages messages inside a transaction. It is not safe for
// concurrent use; each transaction owns one buffer.
type TxBuffer struct {
	staged []outMsg
}

// Enqueue stages payload for the named queue at site to. Nothing is
// visible until the owning transaction commits the buffer.
func (b *TxBuffer) Enqueue(to simnet.SiteID, queueName string, payload any) {
	b.staged = append(b.staged, outMsg{to: to, msg: Msg{Queue: queueName, Payload: payload}})
}

// Len returns the number of staged messages.
func (b *TxBuffer) Len() int { return len(b.staged) }

// Manager is the per-site recoverable-queue endpoint.
type Manager struct {
	site simnet.SiteID
	net  *simnet.Network

	mu       sync.Mutex
	nextID   uint64
	outbox   map[string]outMsg // committed, unacked
	queues   map[string][]Msg  // deliverable, arrival order
	inflight map[string]Msg    // dequeued, not yet acked by consumer
	seen     map[string]bool   // IDs ever enqueued here (dedup)
	// notify is closed and replaced whenever a queue gains a message — a
	// broadcast that cannot lose wakeups across waiters on different
	// queues.
	notify chan struct{}

	stop chan struct{}
	done chan struct{}
}

// NewManager builds the endpoint for site and starts the retransmitter,
// which resends unacknowledged outbox messages every interval until
// acked. Close must be called to stop it.
func NewManager(site simnet.SiteID, net *simnet.Network, retransmitEvery time.Duration) *Manager {
	if retransmitEvery <= 0 {
		retransmitEvery = 50 * time.Millisecond
	}
	m := &Manager{
		site:     site,
		net:      net,
		outbox:   make(map[string]outMsg),
		queues:   make(map[string][]Msg),
		inflight: make(map[string]Msg),
		seen:     make(map[string]bool),
		notify:   make(chan struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go m.retransmitLoop(retransmitEvery)
	return m
}

// Close stops the retransmitter and waits for it to exit.
func (m *Manager) Close() {
	close(m.stop)
	<-m.done
}

// retransmitLoop periodically resends every unacked outbox message.
func (m *Manager) retransmitLoop(every time.Duration) {
	defer close(m.done)
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			m.transmitOutbox()
		case <-m.stop:
			return
		}
	}
}

// transmitOutbox sends every unacked message once; unreachable
// destinations are retried on the next tick.
func (m *Manager) transmitOutbox() {
	m.mu.Lock()
	pending := make([]outMsg, 0, len(m.outbox))
	for _, om := range m.outbox {
		pending = append(pending, om)
	}
	m.mu.Unlock()
	for _, om := range pending {
		// Errors are expected while partitioned/down; the tick retries.
		_ = m.net.Send(simnet.Message{
			From: m.site, To: om.to, Kind: KindEnqueue, Payload: om.msg,
		})
	}
}

// Buffer returns a fresh transactional staging buffer.
func (m *Manager) Buffer() *TxBuffer { return &TxBuffer{} }

// CommitSend makes the buffer's messages durable and deliverable: the
// moment the sending piece commits. The messages enter the outbox (they
// now survive crashes via Snapshot/Restore) and a first transmission is
// attempted immediately.
func (m *Manager) CommitSend(b *TxBuffer) {
	m.mu.Lock()
	for _, om := range b.staged {
		m.nextID++
		om.msg.ID = fmt.Sprintf("%s-%d", m.site, m.nextID)
		om.msg.From = m.site
		m.outbox[om.msg.ID] = om
	}
	m.mu.Unlock()
	b.staged = nil
	m.transmitOutbox()
}

// Handle processes a network message addressed to this site; the site's
// dispatch loop routes Kind == queue.* here. Unknown kinds are ignored.
func (m *Manager) Handle(msg simnet.Message) {
	switch msg.Kind {
	case KindEnqueue:
		qm, ok := msg.Payload.(Msg)
		if !ok {
			return
		}
		m.mu.Lock()
		if !m.seen[qm.ID] {
			m.seen[qm.ID] = true
			m.queues[qm.Queue] = append(m.queues[qm.Queue], qm)
			m.broadcastLocked()
		}
		m.mu.Unlock()
		// Always ack, even duplicates: the first ack may have been lost.
		_ = m.net.Send(simnet.Message{
			From: m.site, To: msg.From, Kind: KindAck, Payload: qm.ID,
		})
	case KindAck:
		id, ok := msg.Payload.(string)
		if !ok {
			return
		}
		m.mu.Lock()
		delete(m.outbox, id)
		m.mu.Unlock()
	}
}

// Delivery is one dequeued message pending consumer commit.
type Delivery struct {
	Msg Msg
	mgr *Manager
	// settled guards double Ack/Nack.
	settled bool
}

// Ack marks the message consumed: the receiving transaction committed.
func (d *Delivery) Ack() {
	d.mgr.mu.Lock()
	defer d.mgr.mu.Unlock()
	if d.settled {
		return
	}
	d.settled = true
	delete(d.mgr.inflight, d.Msg.ID)
}

// Nack returns the message to its queue: the receiving transaction
// aborted and the message remains deliverable.
func (d *Delivery) Nack() {
	d.mgr.mu.Lock()
	defer d.mgr.mu.Unlock()
	if d.settled {
		return
	}
	d.settled = true
	delete(d.mgr.inflight, d.Msg.ID)
	d.mgr.queues[d.Msg.Queue] = append([]Msg{d.Msg}, d.mgr.queues[d.Msg.Queue]...)
	d.mgr.broadcastLocked()
}

// broadcastLocked wakes every Dequeue waiter; callers hold m.mu.
func (m *Manager) broadcastLocked() {
	close(m.notify)
	m.notify = make(chan struct{})
}

// Dequeue blocks until a message is available on queueName and returns
// it as an in-flight Delivery.
func (m *Manager) Dequeue(ctx context.Context, queueName string) (*Delivery, error) {
	for {
		m.mu.Lock()
		if q := m.queues[queueName]; len(q) > 0 {
			msg := q[0]
			m.queues[queueName] = q[1:]
			m.inflight[msg.ID] = msg
			m.mu.Unlock()
			return &Delivery{Msg: msg, mgr: m}, nil
		}
		wait := m.notify
		m.mu.Unlock()
		select {
		case <-wait:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Depth returns the number of deliverable messages on queueName.
func (m *Manager) Depth(queueName string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queues[queueName])
}

// OutboxLen returns the number of committed, unacknowledged messages.
func (m *Manager) OutboxLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.outbox)
}

// State is the durable image of a Manager for crash simulation.
type State struct {
	NextID   uint64
	Outbox   map[string]outMsgState
	Queues   map[string][]Msg
	Inflight map[string]Msg
	Seen     map[string]bool
}

// outMsgState mirrors outMsg for the exported State.
type outMsgState struct {
	Msg Msg
	To  simnet.SiteID
}

// Snapshot captures the durable state: committed outbox, deliverable
// queues, in-flight deliveries, and the dedup set.
func (m *Manager) Snapshot() State {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := State{
		NextID:   m.nextID,
		Outbox:   make(map[string]outMsgState, len(m.outbox)),
		Queues:   make(map[string][]Msg, len(m.queues)),
		Inflight: make(map[string]Msg, len(m.inflight)),
		Seen:     make(map[string]bool, len(m.seen)),
	}
	for id, om := range m.outbox {
		st.Outbox[id] = outMsgState{Msg: om.msg, To: om.to}
	}
	for q, msgs := range m.queues {
		st.Queues[q] = append([]Msg(nil), msgs...)
	}
	for id, msg := range m.inflight {
		st.Inflight[id] = msg
	}
	for id := range m.seen {
		st.Seen[id] = true
	}
	return st
}

// Restore reloads a snapshot after a crash. In-flight deliveries whose
// consumers never committed return to the front of their queues
// (at-least-once).
func (m *Manager) Restore(st State) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID = st.NextID
	m.outbox = make(map[string]outMsg, len(st.Outbox))
	for id, om := range st.Outbox {
		m.outbox[id] = outMsg{msg: om.Msg, to: om.To}
	}
	m.queues = make(map[string][]Msg, len(st.Queues))
	for q, msgs := range st.Queues {
		m.queues[q] = append([]Msg(nil), msgs...)
	}
	for _, msg := range st.Inflight {
		m.queues[msg.Queue] = append([]Msg{msg}, m.queues[msg.Queue]...)
	}
	m.inflight = make(map[string]Msg)
	m.seen = make(map[string]bool, len(st.Seen))
	for id := range st.Seen {
		m.seen[id] = true
	}
	m.broadcastLocked()
}
