package queue

import (
	"context"
	"sync"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// pair wires two sites with queue managers and a router goroutine per
// site; cleanup tears everything down.
type pair struct {
	net      *simnet.Network
	ny, la   *Manager
	routerWG sync.WaitGroup
	cancel   context.CancelFunc
}

func newPair(t *testing.T, opts ...simnet.Option) *pair {
	t.Helper()
	net := simnet.New(opts...)
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}
	p := &pair{
		net: net,
		ny:  NewManager("NY", net, 20*time.Millisecond),
		la:  NewManager("LA", net, 20*time.Millisecond),
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	route := func(inbox <-chan simnet.Message, m *Manager) {
		defer p.routerWG.Done()
		for {
			select {
			case msg := <-inbox:
				m.Handle(msg)
			case <-ctx.Done():
				return
			}
		}
	}
	p.routerWG.Add(2)
	go route(nyInbox, p.ny)
	go route(laInbox, p.la)
	t.Cleanup(func() {
		p.ny.Close()
		p.la.Close()
		cancel()
		p.routerWG.Wait()
		net.Close()
	})
	return p
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCommitSendDelivers(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "credits", 100)
	if buf.Len() != 1 {
		t.Fatalf("staged = %d", buf.Len())
	}
	p.ny.CommitSend(buf)
	d, err := p.la.Dequeue(ctxT(t), "credits")
	if err != nil {
		t.Fatal(err)
	}
	if d.Msg.Payload.(int) != 100 || d.Msg.From != "NY" {
		t.Errorf("msg = %+v", d.Msg)
	}
	d.Ack()
	// The ack eventually clears NY's outbox.
	deadline := time.Now().Add(2 * time.Second)
	for p.ny.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("outbox never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAbortedSenderDeliversNothing(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "credits", 1)
	// The sending transaction aborts: the buffer is dropped, never
	// committed.
	buf = nil
	_ = buf
	time.Sleep(50 * time.Millisecond)
	if got := p.la.Depth("credits"); got != 0 {
		t.Errorf("aborted send delivered %d messages", got)
	}
	if p.ny.OutboxLen() != 0 {
		t.Error("aborted send reached the outbox")
	}
}

func TestNackRedelivers(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", "payload")
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	d, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	d.Nack() // consumer aborted
	d2, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Msg.ID != d.Msg.ID {
		t.Errorf("redelivered ID %s, want %s", d2.Msg.ID, d.Msg.ID)
	}
	d2.Ack()
	// Settled deliveries ignore late calls.
	d2.Nack()
	if got := p.la.Depth("q"); got != 0 {
		t.Errorf("depth after double settle = %d", got)
	}
}

func TestDeliveryThroughPartition(t *testing.T) {
	p := newPair(t)
	p.net.SetPartitioned("NY", "LA", true)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", 7)
	p.ny.CommitSend(buf) // transmit fails silently; retransmitter takes over
	time.Sleep(60 * time.Millisecond)
	if got := p.la.Depth("q"); got != 0 {
		t.Fatalf("message crossed a partition: %d", got)
	}
	p.net.SetPartitioned("NY", "LA", false)
	d, err := p.la.Dequeue(ctxT(t), "q")
	if err != nil {
		t.Fatal(err)
	}
	if d.Msg.Payload.(int) != 7 {
		t.Errorf("payload = %v", d.Msg.Payload)
	}
	d.Ack()
}

func TestRetransmissionDedupes(t *testing.T) {
	// Partition AFTER delivery but before the ack returns: the sender
	// keeps retransmitting; the receiver must not enqueue a duplicate.
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", 1)
	p.ny.CommitSend(buf)
	d, err := p.la.Dequeue(ctxT(t), "q")
	if err != nil {
		t.Fatal(err)
	}
	d.Ack()
	// Let several retransmit ticks pass (acks may race; dedup must hold).
	time.Sleep(100 * time.Millisecond)
	if got := p.la.Depth("q"); got != 0 {
		t.Errorf("duplicate enqueued: depth = %d", got)
	}
}

func TestCrashRecoveryRedeliversInflight(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", "x")
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	d, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	// LA crashes with the delivery in flight (consumer never committed).
	snap := p.la.Snapshot()
	p.la.Restore(snap)
	_ = d // the old delivery handle is dead with the crash
	d2, err := p.la.Dequeue(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Msg.Payload.(string) != "x" {
		t.Errorf("redelivered payload = %v", d2.Msg.Payload)
	}
	d2.Ack()
}

func TestSnapshotCarriesOutbox(t *testing.T) {
	p := newPair(t)
	p.net.SetPartitioned("NY", "LA", true)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "q", 9)
	p.ny.CommitSend(buf)
	snap := p.ny.Snapshot()
	if len(snap.Outbox) != 1 {
		t.Fatalf("snapshot outbox = %d", len(snap.Outbox))
	}
	// NY crashes and recovers; the committed message must still go out.
	p.ny.Restore(snap)
	p.net.SetPartitioned("NY", "LA", false)
	d, err := p.la.Dequeue(ctxT(t), "q")
	if err != nil {
		t.Fatal(err)
	}
	if d.Msg.Payload.(int) != 9 {
		t.Errorf("payload = %v", d.Msg.Payload)
	}
	d.Ack()
}

func TestMultipleQueuesIndependentWaiters(t *testing.T) {
	p := newPair(t)
	ctx := ctxT(t)
	results := make(chan string, 2)
	var wg sync.WaitGroup
	for _, q := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			d, err := p.la.Dequeue(ctx, q)
			if err != nil {
				t.Errorf("dequeue %s: %v", q, err)
				return
			}
			results <- d.Msg.Payload.(string)
			d.Ack()
		}(q)
	}
	// Deliver beta first, then alpha: both waiters must wake.
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "beta", "B")
	p.ny.CommitSend(buf)
	buf = p.ny.Buffer()
	buf.Enqueue("LA", "alpha", "A")
	p.ny.CommitSend(buf)
	wg.Wait()
	close(results)
	got := map[string]bool{}
	for r := range results {
		got[r] = true
	}
	if !got["A"] || !got["B"] {
		t.Errorf("results = %v", got)
	}
}

func TestDequeueHonorsContext(t *testing.T) {
	p := newPair(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := p.la.Dequeue(ctx, "empty"); err == nil {
		t.Error("dequeue on empty queue returned without message")
	}
}

func TestBatchDeliveredExactlyOnce(t *testing.T) {
	// Delivery order across the simulated WAN is not guaranteed, but
	// every committed message arrives exactly once.
	p := newPair(t)
	buf := p.ny.Buffer()
	for i := 0; i < 5; i++ {
		buf.Enqueue("LA", "q", i)
	}
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	got := map[int]bool{}
	for i := 0; i < 5; i++ {
		d, err := p.la.Dequeue(ctx, "q")
		if err != nil {
			t.Fatal(err)
		}
		v := d.Msg.Payload.(int)
		if got[v] {
			t.Fatalf("payload %d delivered twice", v)
		}
		got[v] = true
		d.Ack()
	}
	// Give retransmit ticks a chance to create (forbidden) duplicates.
	time.Sleep(80 * time.Millisecond)
	if depth := p.la.Depth("q"); depth != 0 {
		t.Errorf("queue depth after drain = %d", depth)
	}
}

func TestDeliveryThroughLossyNetwork(t *testing.T) {
	// 40% silent message loss: retransmission + dedup must still deliver
	// every committed message exactly once.
	p := newPair(t, simnet.WithLossRate(0.4), simnet.WithSeed(13))
	const n = 20
	buf := p.ny.Buffer()
	for i := 0; i < n; i++ {
		buf.Enqueue("LA", "lossy", i)
	}
	p.ny.CommitSend(buf)
	ctx := ctxT(t)
	got := map[int]bool{}
	for i := 0; i < n; i++ {
		d, err := p.la.Dequeue(ctx, "lossy")
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		v := d.Msg.Payload.(int)
		if got[v] {
			t.Fatalf("payload %d delivered twice", v)
		}
		got[v] = true
		d.Ack()
	}
	// Outbox eventually drains despite lost acks.
	deadline := time.Now().Add(5 * time.Second)
	for p.ny.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox stuck at %d through lossy acks", p.ny.OutboxLen())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCrashWindowRedelivery exercises the crash window between a
// consumer's Dequeue and its Ack: the durable Snapshot taken with the
// delivery in flight is Restored onto a fresh Manager (the crashed
// site's replacement), which must redeliver the unacked message exactly
// once and at the front, keep the Msg.ID dedup set so retransmitted
// duplicates stay out, and preserve Nack front-of-queue ordering.
func TestCrashWindowRedelivery(t *testing.T) {
	net := simnet.New()
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}
	ny := NewManager("NY", net, 20*time.Millisecond)
	la := NewManager("LA", net, 20*time.Millisecond)
	var laMu sync.Mutex
	currentLA := func() *Manager {
		laMu.Lock()
		defer laMu.Unlock()
		return la
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case msg := <-nyInbox:
				ny.Handle(msg)
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case msg := <-laInbox:
				currentLA().Handle(msg)
			case <-ctx.Done():
				return
			}
		}
	}()
	t.Cleanup(func() {
		ny.Close()
		currentLA().Close()
		cancel()
		wg.Wait()
		net.Close()
	})

	buf := ny.Buffer()
	for i := 0; i < 3; i++ {
		buf.Enqueue("LA", "q", i)
	}
	ny.CommitSend(buf)
	deadline := time.Now().Add(5 * time.Second)
	for la.Depth("q") != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth %d, want 3", la.Depth("q"))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Dequeue the first message but crash before acking.
	tctx := ctxT(t)
	d, err := la.Dequeue(tctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	first := d.Msg
	snap := la.Snapshot()
	if len(snap.Inflight) != 1 {
		t.Fatalf("snapshot holds %d in-flight deliveries, want 1", len(snap.Inflight))
	}

	// Crash: the replacement Manager restores the durable image.
	old := la
	fresh := NewManager("LA", net, 20*time.Millisecond)
	fresh.Restore(snap)
	laMu.Lock()
	la = fresh
	laMu.Unlock()
	old.Close()

	// The unacked delivery is redelivered exactly once, at the front.
	d0, err := fresh.Dequeue(tctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d0.Msg.ID != first.ID {
		t.Fatalf("first redelivery = %q, want unacked %q", d0.Msg.ID, first.ID)
	}
	delivered := map[int]bool{d0.Msg.Payload.(int): true}
	d0.Ack()

	// The Msg.ID dedup set survived the restore: a retransmitted
	// duplicate of the consumed message must not re-queue it.
	fresh.Handle(simnet.Message{From: "NY", To: "LA", Kind: KindEnqueue, Payload: first})
	if depth := fresh.Depth("q"); depth != 2 {
		t.Fatalf("duplicate re-queued after restore: depth %d, want 2", depth)
	}

	// Nack puts the message back at the front, ahead of later arrivals.
	d1, err := fresh.Dequeue(tctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	d1.Nack()
	d1b, err := fresh.Dequeue(tctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if d1b.Msg.ID != d1.Msg.ID {
		t.Fatalf("after Nack got %q, want %q redelivered first", d1b.Msg.ID, d1.Msg.ID)
	}
	if delivered[d1b.Msg.Payload.(int)] {
		t.Fatalf("payload %v delivered twice", d1b.Msg.Payload)
	}
	delivered[d1b.Msg.Payload.(int)] = true
	d1b.Ack()
	d2, err := fresh.Dequeue(tctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if delivered[d2.Msg.Payload.(int)] {
		t.Fatalf("payload %v delivered twice", d2.Msg.Payload)
	}
	delivered[d2.Msg.Payload.(int)] = true
	d2.Ack()
	for i := 0; i < 3; i++ {
		if !delivered[i] {
			t.Errorf("payload %d never delivered", i)
		}
	}
	if depth := fresh.Depth("q"); depth != 0 {
		t.Fatalf("queue not drained: depth %d", depth)
	}
}
