package queue

import (
	"bytes"
	"encoding/gob"

	"asynctp/internal/simnet"
)

// This file gives State a durable wire form. The mem driver keeps State
// objects in memory, but the disk driver must serialize the queue image
// into its write-ahead log; gob carries the nested maps, the sparse
// dedup sets, and — via RegisterPayloadType — the application payload
// types inside Msg.

// RegisterPayloadType registers a concrete payload type carried in
// Msg.Payload so EncodeState/DecodeState can round-trip it. Call it from
// an init function in the package that owns the payload type; both the
// encoding and the decoding process must have registered the same types.
func RegisterPayloadType(v any) { gob.Register(v) }

// The queue layer's own wire payloads must round-trip through any
// gob-based transport codec (the TCP transport frames whole
// simnet.Messages): register them once, here, for every process.
func init() {
	gob.Register(Msg{})
	gob.Register(BatchFrame{})
	gob.Register(AckFrame{})
	gob.Register("") // legacy single-message acks carry the Msg ID
}

// Encode serializes the state for a durable store.
func (st State) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeState parses a blob produced by Encode. Nil maps in the result
// are valid (Restore treats them as empty).
func DecodeState(data []byte) (State, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return State{}, err
	}
	return st, nil
}

// WithPersist installs the receive-side durability barrier: after a
// frame's messages are admitted, the endpoint snapshots its state and
// calls persist before staging the frame's acknowledgement. Only a
// successful persist stages acks — on error the sender keeps the
// messages in its outbox and retransmits, and the watermark dedup
// absorbs the redelivery. Without this barrier a group-commit fsync
// slower than the ack coalescing window could acknowledge a message
// whose durable queue image never hit disk: kill -9 in that window
// would lose the message at the receiver after the sender forgot it.
func WithPersist(persist func(State) error) Option {
	return func(m *Manager) { m.persist = persist }
}

// snapshotLocked is Snapshot's body; callers hold m.mu.
func (m *Manager) snapshotLocked() State {
	st := State{
		NextSeq:  make(map[simnet.SiteID]uint64, len(m.nextSeq)),
		Outbox:   make(map[string]OutboxMsg, len(m.outbox)),
		Queues:   make(map[string][]Msg, len(m.queues)),
		Inflight: make(map[string]Msg, len(m.inflight)),
		Seen:     make(map[simnet.SiteID]SeenState, len(m.seen)),
	}
	for to, seq := range m.nextSeq {
		st.NextSeq[to] = seq
	}
	for id, om := range m.outbox {
		st.Outbox[id] = OutboxMsg{Msg: om.msg, To: om.to}
	}
	for q, msgs := range m.queues {
		st.Queues[q] = append([]Msg(nil), msgs...)
	}
	for id, msg := range m.inflight {
		st.Inflight[id] = msg
	}
	for from, ss := range m.seen {
		snap := SeenState{Prefix: ss.prefix}
		for seq := range ss.sparse {
			snap.Sparse = append(snap.Sparse, seq)
		}
		st.Seen[from] = snap
	}
	return st
}
