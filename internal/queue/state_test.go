package queue

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"asynctp/internal/simnet"
)

// statePayload is a concrete payload type for serialization tests.
type statePayload struct {
	Inst  uint64
	Piece int
}

func init() { RegisterPayloadType(statePayload{}) }

func TestStateEncodeDecodeRoundTrip(t *testing.T) {
	st := State{
		NextSeq: map[simnet.SiteID]uint64{"LA": 7, "CHI": 2},
		Outbox: map[string]OutboxMsg{
			"NY>LA-7": {Msg: Msg{ID: "NY>LA-7", Seq: 7, From: "NY", Queue: "pieces", Payload: statePayload{Inst: 3, Piece: 1}}, To: "LA"},
		},
		Queues: map[string][]Msg{
			"pieces": {{ID: "LA>NY-4", Seq: 4, From: "LA", Queue: "pieces", Payload: statePayload{Inst: 2, Piece: 2}}},
		},
		Inflight: map[string]Msg{
			"CHI>NY-1": {ID: "CHI>NY-1", Seq: 1, From: "CHI", Queue: "done", Payload: statePayload{Inst: 1}},
		},
		Seen: map[simnet.SiteID]SeenState{
			"LA":  {Prefix: 4, Sparse: []uint64{7, 9}},
			"CHI": {Prefix: 1},
		},
	}
	blob, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.NextSeq, st.NextSeq) {
		t.Errorf("NextSeq = %v, want %v", got.NextSeq, st.NextSeq)
	}
	if !reflect.DeepEqual(got.Outbox, st.Outbox) {
		t.Errorf("Outbox = %v, want %v", got.Outbox, st.Outbox)
	}
	if !reflect.DeepEqual(got.Queues, st.Queues) {
		t.Errorf("Queues = %v, want %v", got.Queues, st.Queues)
	}
	if !reflect.DeepEqual(got.Inflight, st.Inflight) {
		t.Errorf("Inflight = %v, want %v", got.Inflight, st.Inflight)
	}
	// Sparse sets are unordered (snapshot ranges a map).
	for from, want := range st.Seen {
		g := got.Seen[from]
		sort.Slice(g.Sparse, func(i, j int) bool { return g.Sparse[i] < g.Sparse[j] })
		if g.Prefix != want.Prefix || !reflect.DeepEqual(g.Sparse, want.Sparse) {
			t.Errorf("Seen[%s] = %+v, want %+v", from, g, want)
		}
	}
}

func TestStateEncodeDecodeEmptyWatermark(t *testing.T) {
	// The empty-state edge case: fresh site, nothing seen, no sparse
	// entries. The decoded image must restore cleanly into a manager.
	st := State{
		NextSeq:  map[simnet.SiteID]uint64{},
		Outbox:   map[string]OutboxMsg{},
		Queues:   map[string][]Msg{},
		Inflight: map[string]Msg{},
		Seen:     map[simnet.SiteID]SeenState{"LA": {Prefix: 0, Sparse: nil}},
	}
	blob, err := st.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seen["LA"].Prefix != 0 || len(got.Seen["LA"].Sparse) != 0 {
		t.Errorf("empty watermark round trip = %+v", got.Seen["LA"])
	}

	// Restoring decoded (possibly nil) maps must not wedge the manager.
	net := simnet.New()
	defer net.Close()
	if _, err := net.AddSite("NY"); err != nil {
		t.Fatal(err)
	}
	m := NewManager("NY", net, time.Hour)
	defer m.Close()
	m.Restore(got)
	if m.OutboxLen() != 0 || m.DedupPrefix("LA") != 0 {
		t.Errorf("restore of empty state: outbox=%d prefix=%d", m.OutboxLen(), m.DedupPrefix("LA"))
	}
}

func TestStateRoundTripThroughManager(t *testing.T) {
	// Drive a real manager, snapshot, encode, decode, restore into a
	// fresh manager: watermark prefix + sparse set must survive exactly.
	net := simnet.New()
	defer net.Close()
	for _, id := range []simnet.SiteID{"NY", "LA"} {
		if _, err := net.AddSite(id); err != nil {
			t.Fatal(err)
		}
	}
	m := NewManager("NY", net, time.Hour, WithFlushDelay(0))
	defer m.Close()

	// Out-of-order arrivals: 1, 2, then 5 and 9 (gap at 3-4, 6-8).
	for _, seq := range []uint64{1, 2, 5, 9} {
		m.Handle(simnet.Message{From: "LA", To: "NY", Kind: KindEnqueueBatch, Payload: BatchFrame{
			Msgs: []Msg{{ID: "x", Seq: seq, From: "LA", Queue: "pieces", Payload: statePayload{Inst: seq}}},
		}})
	}
	if m.DedupPrefix("LA") != 2 || m.DedupSparseLen("LA") != 2 {
		t.Fatalf("setup: prefix=%d sparse=%d", m.DedupPrefix("LA"), m.DedupSparseLen("LA"))
	}
	blob, err := m.Snapshot().Encode()
	if err != nil {
		t.Fatal(err)
	}
	st, err := DecodeState(blob)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager("NY", net, time.Hour)
	defer m2.Close()
	m2.Restore(st)
	if m2.DedupPrefix("LA") != 2 || m2.DedupSparseLen("LA") != 2 {
		t.Errorf("restored: prefix=%d sparse=%d, want 2/2", m2.DedupPrefix("LA"), m2.DedupSparseLen("LA"))
	}
	// Redelivering an already-seen sequence must still dedup.
	before := m2.Depth("pieces")
	m2.Handle(simnet.Message{From: "LA", To: "NY", Kind: KindEnqueueBatch, Payload: BatchFrame{
		Msgs: []Msg{{ID: "dup", Seq: 5, From: "LA", Queue: "pieces"}},
	}})
	if m2.Depth("pieces") != before {
		t.Error("restored watermark failed to dedup a replayed sequence")
	}
	// And the gap must still admit.
	m2.Handle(simnet.Message{From: "LA", To: "NY", Kind: KindEnqueueBatch, Payload: BatchFrame{
		Msgs: []Msg{{ID: "gap", Seq: 3, From: "LA", Queue: "pieces"}},
	}})
	if m2.Depth("pieces") != before+1 {
		t.Error("restored watermark rejected an unseen sequence")
	}
}

func TestPersistGatesAcks(t *testing.T) {
	net := simnet.New()
	nyInbox, err := net.AddSite("NY")
	if err != nil {
		t.Fatal(err)
	}
	laInbox, err := net.AddSite("LA")
	if err != nil {
		t.Fatal(err)
	}

	persistErr := errors.New("disk full")
	var mu sync.Mutex
	persisted := 0
	fail := true
	m := NewManager("NY", net, 20*time.Millisecond, WithFlushDelay(0),
		WithPersist(func(st State) error {
			mu.Lock()
			defer mu.Unlock()
			if fail {
				return persistErr
			}
			persisted++
			return nil
		}))
	sender := NewManager("LA", net, 20*time.Millisecond, WithFlushDelay(0))

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	route := func(inbox <-chan simnet.Message, mgr *Manager) {
		defer wg.Done()
		for {
			select {
			case msg := <-inbox:
				mgr.Handle(msg)
			case <-ctx.Done():
				return
			}
		}
	}
	wg.Add(2)
	go route(nyInbox, m)
	go route(laInbox, sender)
	t.Cleanup(func() {
		m.Close()
		sender.Close()
		cancel()
		wg.Wait()
		net.Close()
	})

	buf := sender.Buffer()
	buf.Enqueue("NY", "pieces", statePayload{Inst: 1})
	sender.CommitSend(buf)

	// Wait for delivery; the ack must never arrive while persist fails.
	deadline := time.Now().Add(2 * time.Second)
	for m.Depth("pieces") != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("message not admitted: depth=%d", m.Depth("pieces"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // a few retransmit rounds
	if sender.OutboxLen() != 1 {
		t.Fatalf("ack escaped a failed persist: outbox=%d", sender.OutboxLen())
	}
	if m.Depth("pieces") != 1 {
		t.Fatalf("retransmissions not deduped: depth=%d", m.Depth("pieces"))
	}

	// Persist recovers: the next retransmission is persisted and acked,
	// and the sender's outbox drains.
	mu.Lock()
	fail = false
	mu.Unlock()
	deadline = time.Now().Add(2 * time.Second)
	for sender.OutboxLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox never drained after persist recovered: %d", sender.OutboxLen())
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if persisted == 0 {
		t.Error("persist callback never saw a state after recovery")
	}
	if m.Depth("pieces") != 1 {
		t.Errorf("final depth = %d, want exactly one delivery", m.Depth("pieces"))
	}
}
