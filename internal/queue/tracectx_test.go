package queue

import (
	"testing"
	"time"

	"asynctp/internal/tracectx"
)

// The trace context must survive the full queue round trip — staged in
// a TxBuffer, committed, shipped, and admitted — and the receiver must
// stamp its own arrival time (sender wall clocks never ride as arrival).
func TestEnqueueCtxRoundTrip(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	want := tracectx.Ctx{Trace: 42, Span: 0x2a0003, Proc: "NY", Clock: 7, SentAt: time.Now().UnixNano()}
	buf.EnqueueCtx("LA", "credits", 100, want)
	p.ny.CommitSend(buf)

	d, err := p.la.Dequeue(ctxT(t), "credits")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Ack()
	if d.Msg.Ctx != want {
		t.Errorf("ctx = %+v, want %+v", d.Msg.Ctx, want)
	}
	if d.Msg.ArrivedAt < want.SentAt {
		t.Errorf("ArrivedAt %d precedes SentAt %d (receiver did not stamp arrival)",
			d.Msg.ArrivedAt, want.SentAt)
	}
}

// Plain Enqueue leaves the context zero — receivers must be able to
// tell "tracing off upstream" from a real context.
func TestEnqueueWithoutCtxStaysInvalid(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	buf.Enqueue("LA", "credits", 1)
	p.ny.CommitSend(buf)
	d, err := p.la.Dequeue(ctxT(t), "credits")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Ack()
	if d.Msg.Ctx.Valid() {
		t.Errorf("untraced message carries a valid ctx: %+v", d.Msg.Ctx)
	}
	if d.Msg.ArrivedAt == 0 {
		t.Error("arrival not stamped on untraced message")
	}
}

// A redelivered (nacked) message keeps its context: repair and crash
// recovery must not orphan the retried piece's spans.
func TestNackPreservesCtx(t *testing.T) {
	p := newPair(t)
	buf := p.ny.Buffer()
	want := tracectx.Ctx{Trace: 9, Span: 0x90004, Proc: "NY", Clock: 3, SentAt: 1}
	buf.EnqueueCtx("LA", "credits", 5, want)
	p.ny.CommitSend(buf)

	d, err := p.la.Dequeue(ctxT(t), "credits")
	if err != nil {
		t.Fatal(err)
	}
	d.Nack()
	d2, err := p.la.Dequeue(ctxT(t), "credits")
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Ack()
	if d2.Msg.Ctx != want {
		t.Errorf("redelivered ctx = %+v, want %+v", d2.Msg.Ctx, want)
	}
}
