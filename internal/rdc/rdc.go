// Package rdc implements repair-based divergence control — the fourth
// on-line engine family, after the lock-arbiter (dc), backward-
// validation OCC (odc), and timestamp ordering (tdc). It follows the
// transaction-repair idea (Veldhuizen, "Transaction Repair: Full
// Serializability Without Locks"): instead of aborting on a validation
// failure and redoing the whole piece, re-execute only the operations
// whose inputs changed.
//
// Execution is optimistic with fine-grained provenance:
//
//   - Read phase: every operation records where its input value came
//     from — a committed version of its key (tracked by a per-key
//     last-committed-version counter) or an earlier operation of the
//     same program (reads of own buffered writes thread through the
//     local workspace). Writes are buffered; reads never block.
//   - Validation (critical section): an op is stale when its committed
//     input's version moved, and dirtiness propagates down the local
//     dependency chain. No stale ops → install as-is. A short dirty
//     suffix is *repaired* inside the critical section: only the dirty
//     ops re-execute against the now-frozen committed state, rollback
//     predicates are re-evaluated on the fresh inputs (a flipped
//     decision surfaces as txn.ErrRollback, exactly as a fresh run
//     would decide), and the result is installed — full
//     serializability, no work thrown away. A long dirty suffix is
//     re-executed outside the lock and re-validated, a bounded number
//     of rounds, before falling back to a retryable abort.
//   - ε-skip (the ESR twist, queries only): when every stale op is a
//     plain read, the repair's value delta — the exact distance between
//     the stale value and the committed one — can be priced against the
//     query's remaining import budget. If it fits (and the last
//     writer's export account can carry it), the repair is skipped: the
//     stale values commit as-is and the delta is charged through the
//     DC-event observer into the ε-provenance ledger.
//
// Observer events (reads, writes) are emitted inside the install
// critical section with the final post-repair values, so the recorded
// history — and hence the serial-replay oracle — judges what actually
// committed, not the read-phase snapshots.
package rdc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"asynctp/internal/dc"
	"asynctp/internal/lock"
	"asynctp/internal/metric"
	"asynctp/internal/storage"
	"asynctp/internal/txn"
)

// ErrValidation is the retryable abort returned when a repair exceeds
// its round budget; the caller re-runs the piece from scratch.
var ErrValidation = errors.New("rdc: repair fallback")

// Default repair bounds: at most defaultInline dirty ops re-execute
// inside the critical section (each paying the simulated op cost while
// every other commit waits); larger repairs run outside the lock for at
// most defaultRounds rounds before falling back to a full re-run.
//
// "Short" is a wall-clock judgment, not just an op count:
// inlineWorkBudget caps the simulated work a repair may perform while
// holding e.mu. With per-op delays at I/O scale even a one-op repair
// would convoy every other committer behind the lock, so such repairs
// take the out-of-lock rounds path instead.
const (
	defaultInline    = 4
	defaultRounds    = 3
	inlineWorkBudget = 100 * time.Microsecond
)

// opRec is one operation's provenance record: where its input came
// from and the values the execution computed from it.
type opRec struct {
	op txn.Op
	// local is the index of the program op whose buffered write produced
	// this op's input (reads of own writes), or -1 when the input came
	// from the committed store.
	local int
	// ver is the committed version of op.Key observed at read time
	// (local < 0 only). Version 0 means "never written by this engine".
	ver int64
	// in and out are the input value used and the value produced (the
	// written value, or the input itself for reads).
	in, out metric.Value
}

// commitRec is one committed transaction's validation-window record; the
// per-key index points into it for ε-skip export accounting.
type commitRec struct {
	seq         int64
	owner       lock.Owner
	keys        []storage.Key
	exported    metric.Fuzz
	exportLimit metric.Limit
}

// verEntry is one committed write in a key's version chain.
type verEntry struct {
	seq int64
	rec *commitRec
}

// Stats counts engine events.
type Stats struct {
	Commits uint64
	// Aborts counts repair fallbacks returned as retryable aborts.
	Aborts uint64
	// Repairs counts commits that re-executed at least one op instead of
	// aborting; RepairedOps counts the ops re-executed.
	Repairs     uint64
	RepairedOps uint64
	// RepairRounds counts out-of-lock repair rounds (dirty suffix too
	// long for the critical section).
	RepairRounds uint64
	// Skips counts ε-skip commits (stale reads committed and charged);
	// SkippedFuzz is the total fuzziness those skips imported.
	Skips       uint64
	SkippedFuzz metric.Fuzz
	// ReApplied counts stale commutative increments refreshed at install
	// instead of repaired (the odc engine's re-application, kept for
	// engine parity: a pure unobserved increment's effect is independent
	// of its input, so staleness needs no repair round).
	ReApplied uint64
	// VerifyFailures counts self-check mismatches (verify mode only):
	// repaired outcomes that differ from a fresh full re-execution.
	VerifyFailures uint64
	// GCRetained is the current validation-window size.
	GCRetained int
}

// Engine is the repair-based divergence-control executor for one store.
type Engine struct {
	store   *storage.Store
	obs     txn.Observer
	opDelay time.Duration
	step    txn.StepHook
	dcObs   func(dc.Event)
	repObs  func(owner lock.Owner, d time.Duration)
	skip    bool
	verify  bool
	inline  int
	rounds  int

	// vers maps each key to the seq of its last committed write. Read
	// lock-free during the read phase: the version is loaded BEFORE the
	// value, and installs bump it AFTER writing the value, so a racing
	// read can only look stale (and get repaired to the same value),
	// never silently clean.
	vers sync.Map // storage.Key → int64

	mu        sync.Mutex
	seq       int64
	index     map[storage.Key][]verEntry
	window    []*commitRec
	active    map[lock.Owner]int64 // owner → start seq (for GC)
	stats     Stats
	verifyMsg string
}

// NewEngine builds an engine over store; obs may be nil.
func NewEngine(store *storage.Store, obs txn.Observer) *Engine {
	return &Engine{
		store:  store,
		obs:    obs,
		inline: defaultInline,
		rounds: defaultRounds,
		index:  make(map[storage.Key][]verEntry),
		active: make(map[lock.Owner]int64),
	}
}

// SetOpDelay makes every operation take d of simulated work — during
// the read phase, and again for every op a repair re-executes (repaired
// work is not free; that is the point of repairing less of it).
func (e *Engine) SetOpDelay(d time.Duration) { e.opDelay = d }

// SetStepHook installs a step hook consulted before every read-phase
// operation and before the validate-and-install critical section.
func (e *Engine) SetStepHook(h txn.StepHook) { e.step = h }

// SetSkip enables ε-skip: repairs whose value delta fits the query's
// remaining import budget are charged to the ledger instead of executed.
func (e *Engine) SetSkip(enabled bool) { e.skip = enabled }

// SetDCObserver installs the divergence-control event observer; ε-skips
// emit one absorbed dc.Event per skipped read so the obs plane's ledger
// and metrics see the charge.
func (e *Engine) SetDCObserver(f func(dc.Event)) { e.dcObs = f }

// SetRepairObserver installs a callback timing each repair pass (both
// inline and out-of-lock rounds); the obs plane turns these into
// repair spans on the owning transaction's critical path.
func (e *Engine) SetRepairObserver(f func(owner lock.Owner, d time.Duration)) { e.repObs = f }

// SetVerify enables the repair self-check (TEST-ONLY): before every
// non-skip install, the whole program is re-executed from scratch
// against the current committed state and the result must match the
// provenance-repaired records exactly. Mismatches count in
// Stats.VerifyFailures and the first is kept for VerifyFailure.
func (e *Engine) SetVerify(enabled bool) { e.verify = enabled }

// SetRepairLimits overrides the repair bounds: inline is the largest
// dirty-op count repaired inside the critical section, rounds the
// number of out-of-lock repair rounds before the fallback abort.
// Values < 0 leave the corresponding bound unchanged.
func (e *Engine) SetRepairLimits(inline, rounds int) {
	if inline >= 0 {
		e.inline = inline
	}
	if rounds >= 0 {
		e.rounds = rounds
	}
}

// VerifyFailure returns the first self-check mismatch ("" when clean).
func (e *Engine) VerifyFailure() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.verifyMsg
}

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.GCRetained = len(e.window)
	return st
}

// verOf returns key's last committed version (0 if never written here).
func (e *Engine) verOf(k storage.Key) int64 {
	if v, ok := e.vers.Load(k); ok {
		return v.(int64)
	}
	return 0
}

// Run executes p once under the given ε-spec and class, returning the
// outcome plus the fuzziness imported (ε-skips only; repaired commits
// are fully serializable and import nothing). ErrValidation aborts are
// retryable; rollback statements return txn.ErrRollback.
func (e *Engine) Run(
	ctx context.Context,
	owner lock.Owner,
	p *txn.Program,
	spec metric.Spec,
	class txn.Class,
) (*txn.Outcome, metric.Fuzz, error) {
	if err := p.Validate(); err != nil {
		return nil, 0, err
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if e.obs != nil {
		e.obs.Begin(owner, p.Name, class)
	}
	e.begin(owner)
	defer e.end(owner)

	out := &txn.Outcome{Owner: owner}
	recs := make([]opRec, len(p.Ops))
	// producer maps keys to the op index that last buffered a write, so
	// reads of own writes record a local dependency, not a version.
	producer := make(map[storage.Key]int)
	for i, op := range p.Ops {
		if e.step != nil {
			e.step.OnStep(txn.Step{
				Owner: owner, Program: p.Name, Op: i, Kind: txn.StepApply,
				Key: op.Key, Write: op.Kind == txn.OpWrite,
			})
		}
		if e.opDelay > 0 {
			txn.SimWork(e.opDelay)
		}
		rec := opRec{op: op, local: -1}
		if j, ok := producer[op.Key]; ok {
			rec.local = j
			rec.in = recs[j].out
		} else {
			rec.ver = e.verOf(op.Key) // version first, value second
			rec.in = e.store.Get(op.Key)
		}
		if op.AbortIf != nil && op.AbortIf(rec.in) {
			if e.obs != nil {
				e.obs.Abort(owner, txn.ErrRollback)
			}
			return out, 0, fmt.Errorf("op on %q: %w", op.Key, txn.ErrRollback)
		}
		rec.out = rec.in
		if op.Kind == txn.OpWrite {
			rec.out = op.Update(rec.in)
			producer[op.Key] = i
		}
		recs[i] = rec
	}

	if e.step != nil {
		e.step.OnStep(txn.Step{Owner: owner, Program: p.Name, Op: -1, Kind: txn.StepCommit})
	}
	imported, err := e.commit(owner, spec, class, recs, out)
	if err != nil {
		if e.obs != nil {
			e.obs.Abort(owner, err)
		}
		return out, 0, err
	}
	out.Committed = true
	if e.obs != nil {
		e.obs.Commit(owner)
	}
	return out, imported, nil
}

// begin registers an active transaction for window GC.
func (e *Engine) begin(owner lock.Owner) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active[owner] = e.seq
}

// end unregisters and garbage-collects the validation window: committed
// records no active transaction can conflict with are dropped, and the
// per-key version chains are pruned alongside. The version counters
// (vers) are never pruned — staleness checks need them forever.
func (e *Engine) end(owner lock.Owner) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.active, owner)
	min := e.seq
	for _, s := range e.active {
		if s < min {
			min = s
		}
	}
	// window is sorted by seq: when even the oldest record is still
	// needed, skip the rebuild so a pinned window costs O(1) per end.
	if len(e.window) == 0 || e.window[0].seq > min {
		return
	}
	keep := e.window[:0]
	for _, c := range e.window {
		if c.seq > min {
			keep = append(keep, c)
			continue
		}
		for _, k := range c.keys {
			ent := e.index[k]
			n := 0
			for n < len(ent) && ent[n].seq <= min {
				n++
			}
			switch {
			case n == len(ent):
				delete(e.index, k)
			case n > 0:
				e.index[k] = append(ent[:0:0], ent[n:]...)
			}
		}
	}
	e.window = keep
}

// commit validates, repairs or ε-skips as needed, and installs.
func (e *Engine) commit(
	owner lock.Owner,
	spec metric.Spec,
	class txn.Class,
	recs []opRec,
	out *txn.Outcome,
) (metric.Fuzz, error) {
	dirty := make([]bool, len(recs))
	var repairedOps uint64
	for round := 0; ; round++ {
		e.mu.Lock()
		nDirty := 0
		for i := range recs {
			rec := &recs[i]
			if rec.local >= 0 {
				// A repaired producer changes its output, so consumers of
				// the local workspace inherit its dirtiness.
				dirty[i] = dirty[rec.local]
			} else {
				dirty[i] = e.verOf(rec.op.Key) != rec.ver && !reappliable(recs, i)
			}
			if dirty[i] {
				nDirty++
			}
		}
		if nDirty == 0 {
			err := e.installLocked(owner, spec, recs, out, repairedOps, false)
			e.mu.Unlock()
			return 0, err
		}
		if e.skip && class == txn.Query {
			if imported, ok := e.trySkipLocked(owner, spec, recs, dirty); ok {
				// Commit the stale values as-is; the delta is charged.
				err := e.installLocked(owner, spec, recs, out, repairedOps, true)
				e.mu.Unlock()
				return imported, err
			}
		}
		if nDirty <= e.inline && time.Duration(nDirty)*e.opDelay <= inlineWorkBudget {
			// Short repair inside the critical section: the committed
			// state is frozen by e.mu, so one pass settles it.
			n, err := e.timedRepairPass(owner, recs, dirty)
			repairedOps += n
			if err != nil {
				e.stats.RepairedOps += repairedOps
				e.mu.Unlock()
				return 0, err
			}
			err = e.installLocked(owner, spec, recs, out, repairedOps, false)
			e.mu.Unlock()
			return 0, err
		}
		if round >= e.rounds {
			e.stats.RepairedOps += repairedOps
			e.stats.Aborts++
			e.mu.Unlock()
			return 0, fmt.Errorf("rdc: %d-op repair exceeded %d rounds: %w", nDirty, e.rounds, ErrValidation)
		}
		e.stats.RepairRounds++
		e.mu.Unlock()
		// Long repair outside the lock: re-execute the dirty ops against
		// a racing store, then loop to re-validate what we produced.
		n, err := e.timedRepairPass(owner, recs, dirty)
		repairedOps += n
		if err != nil {
			e.mu.Lock()
			e.stats.RepairedOps += repairedOps
			e.mu.Unlock()
			return 0, err
		}
	}
}

// reappliable reports whether recs[i] can take install-time
// re-application instead of repair: a committed-input commutative write
// with no rollback predicate whose workspace value no later op consumes.
// Its effect (the increment) is independent of its input, so the install
// refreshes it against the current value — the odc engine's commutative
// re-application, costing no repair round and no simulated work.
func reappliable(recs []opRec, i int) bool {
	rec := &recs[i]
	if rec.local >= 0 || rec.op.Kind != txn.OpWrite || !rec.op.Commutative || rec.op.AbortIf != nil {
		return false
	}
	for j := i + 1; j < len(recs); j++ {
		if recs[j].local == i {
			return false
		}
	}
	return true
}

// repairPass re-executes every dirty op in program order: committed
// inputs are re-read (version before value, as in the read phase),
// local inputs come from the already-repaired producer, and rollback
// predicates are re-evaluated on the fresh input — a flipped decision
// returns txn.ErrRollback. Each re-executed op pays the simulated op
// cost. Returns the number of ops repaired.
// timedRepairPass wraps repairPass with the repair observer so the
// tracing plane can attribute repair work to the owning transaction.
// The timer is only armed when an observer is installed, keeping the
// untraced path free of clock reads.
func (e *Engine) timedRepairPass(owner lock.Owner, recs []opRec, dirty []bool) (uint64, error) {
	if e.repObs == nil {
		return e.repairPass(recs, dirty)
	}
	t0 := time.Now()
	n, err := e.repairPass(recs, dirty)
	e.repObs(owner, time.Since(t0))
	return n, err
}

func (e *Engine) repairPass(recs []opRec, dirty []bool) (uint64, error) {
	var n uint64
	for i := range recs {
		if !dirty[i] {
			continue
		}
		rec := &recs[i]
		if rec.local >= 0 {
			rec.in = recs[rec.local].out
		} else {
			rec.ver = e.verOf(rec.op.Key)
			rec.in = e.store.Get(rec.op.Key)
		}
		if e.opDelay > 0 {
			txn.SimWork(e.opDelay)
		}
		n++
		if rec.op.AbortIf != nil && rec.op.AbortIf(rec.in) {
			return n, fmt.Errorf("repair of op on %q: %w", rec.op.Key, txn.ErrRollback)
		}
		rec.out = rec.in
		if rec.op.Kind == txn.OpWrite {
			rec.out = rec.op.Update(rec.in)
		}
	}
	return n, nil
}

// trySkipLocked prices committing the stale values as-is. Skippable
// only when every dirty op is a plain committed read (no write derives
// from a stale input, no rollback predicate decided on one): then the
// exact per-read delta is charged against the query's import budget and
// the last writer's export account. Caller holds e.mu.
func (e *Engine) trySkipLocked(
	owner lock.Owner,
	spec metric.Spec,
	recs []opRec,
	dirty []bool,
) (metric.Fuzz, bool) {
	type skipCharge struct {
		key    storage.Key
		writer *commitRec
		cost   metric.Fuzz
	}
	var (
		charges []skipCharge
		total   metric.Fuzz
	)
	tentative := make(map[*commitRec]metric.Fuzz)
	for i := range recs {
		if !dirty[i] {
			continue
		}
		rec := &recs[i]
		if rec.op.Kind != txn.OpRead || rec.op.AbortIf != nil || rec.local >= 0 {
			return 0, false
		}
		entries := e.index[rec.op.Key]
		if len(entries) == 0 {
			// The writer outran the window — cannot attribute the export.
			return 0, false
		}
		w := entries[len(entries)-1].rec
		cost := metric.Distance(e.store.Get(rec.op.Key), rec.in)
		next := tentative[w].Add(cost)
		if !w.exportLimit.Allows(w.exported.Add(next)) {
			return 0, false
		}
		tentative[w] = next
		total = total.Add(cost)
		charges = append(charges, skipCharge{key: rec.op.Key, writer: w, cost: cost})
	}
	if !spec.Import.Allows(total) {
		return 0, false
	}
	for _, ch := range charges {
		ch.writer.exported = ch.writer.exported.Add(ch.cost)
	}
	e.stats.Skips++
	e.stats.SkippedFuzz = e.stats.SkippedFuzz.Add(total)
	if e.dcObs != nil {
		for _, ch := range charges {
			e.dcObs(dc.Event{
				Key:       ch.key,
				Requester: owner,
				Absorbed:  true,
				Cost:      ch.cost,
				Pairs:     []dc.Pair{{Query: owner, Update: ch.writer.owner, Cost: ch.cost}},
			})
		}
	}
	return total, true
}

// installLocked emits the observer events with the final values,
// applies the buffered writes, and records the commit in the version
// index and validation window. Caller holds e.mu.
func (e *Engine) installLocked(
	owner lock.Owner,
	spec metric.Spec,
	recs []opRec,
	out *txn.Outcome,
	repairedOps uint64,
	skipped bool,
) error {
	for i := range recs {
		rec := &recs[i]
		if e.verOf(rec.op.Key) != rec.ver && reappliable(recs, i) {
			rec.ver = e.verOf(rec.op.Key)
			rec.in = e.store.Get(rec.op.Key)
			rec.out = rec.op.Update(rec.in)
			e.stats.ReApplied++
		}
	}
	if e.verify && !skipped {
		if msg := e.verifyLocked(recs); msg != "" {
			e.stats.VerifyFailures++
			if e.verifyMsg == "" {
				e.verifyMsg = msg
			}
		}
	}
	finals := make(map[storage.Key]metric.Value)
	var keys []storage.Key
	for i := range recs {
		rec := &recs[i]
		switch rec.op.Kind {
		case txn.OpRead:
			out.Reads = append(out.Reads, txn.ReadRec{Key: rec.op.Key, Value: rec.out})
			if e.obs != nil {
				e.obs.Read(owner, rec.op.Key, rec.out)
			}
		case txn.OpWrite:
			if _, ok := finals[rec.op.Key]; !ok {
				keys = append(keys, rec.op.Key)
			}
			finals[rec.op.Key] = rec.out
			if e.obs != nil {
				// No write has been installed yet, so Get still returns
				// the pre-transaction committed value.
				e.obs.Write(owner, rec.op.Key, e.store.Get(rec.op.Key), rec.out, rec.op.Commutative)
			}
		}
	}
	batch := make([]storage.Write, 0, len(keys))
	for _, k := range keys {
		batch = append(batch, storage.Write{Key: k, Value: finals[k]})
		e.store.Set(k, finals[k])
	}
	if err := e.store.Apply(batch); err != nil {
		return err
	}
	out.Writes = batch
	e.seq++
	if len(keys) > 0 {
		rec := &commitRec{seq: e.seq, owner: owner, keys: keys, exportLimit: spec.Export}
		for _, k := range keys {
			// Value first (Set above), version second: see vers.
			e.vers.Store(k, e.seq)
			e.index[k] = append(e.index[k], verEntry{seq: e.seq, rec: rec})
		}
		e.window = append(e.window, rec)
	}
	e.stats.Commits++
	e.stats.RepairedOps += repairedOps
	if repairedOps > 0 {
		e.stats.Repairs++
	}
	return nil
}

// verifyLocked re-executes the whole program from scratch against the
// current committed state and demands the result match the provenance-
// repaired records exactly — "byte-identical to a fresh full
// re-execution". Caller holds e.mu.
func (e *Engine) verifyLocked(recs []opRec) string {
	local := make(map[storage.Key]metric.Value)
	for i := range recs {
		rec := &recs[i]
		in, ok := local[rec.op.Key]
		if !ok {
			in = e.store.Get(rec.op.Key)
		}
		if in != rec.in {
			return fmt.Sprintf("op %d on %q: committed input %d, fresh run reads %d",
				i, rec.op.Key, rec.in, in)
		}
		if rec.op.AbortIf != nil && rec.op.AbortIf(in) {
			return fmt.Sprintf("op %d on %q: fresh run rolls back, repaired run committed",
				i, rec.op.Key)
		}
		out := in
		if rec.op.Kind == txn.OpWrite {
			out = rec.op.Update(in)
			local[rec.op.Key] = out
		}
		if out != rec.out {
			return fmt.Sprintf("op %d on %q: committed output %d, fresh run computes %d",
				i, rec.op.Key, rec.out, out)
		}
	}
	return ""
}

// Retryable reports whether err is a repair fallback worth retrying.
func Retryable(err error) bool { return errors.Is(err, ErrValidation) }
